#!/usr/bin/env python3
"""Tourist district on game day: broadcast a hot region, never transmit.

When thousands of devices browse the same neighbourhood (a stadium
district, a festival), serving each one point-to-point burns every
device's transmitter and the server's uplink.  The alternative the paper's
related work sketches (Imielinski et al., "Energy Efficient Indexing on
Air"): the base station cyclically *broadcasts* the hot region; devices
tune in, cache the chunks, and browse locally — their radios transmit
nothing at all.

This example builds a hot region around a busy intersection, replays a
browse session under three strategies, and prints the per-device energy:

* ask-the-server   — a round trip per query (transmitter keyed each time);
* tune per query   — wait for the chunk on every query (no cache);
* tune once, cache — receive once, browse from memory.

Run:  python examples/hot_region_broadcast.py [--queries 80] [--chunks 16]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import Policy, Session, quick_environment
from repro.constants import MBPS
from repro.core import RangeQuery, Scheme, SchemeConfig
from repro.core.broadcast import BroadcastClient, BroadcastSchedule
from repro.core.executor import Environment
from repro.spatial.extract import coverage_rect, extract_range
from repro.spatial.mbr import MBR

ON_DEMAND = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    # Full-scale default: the hot region's spatial compactness (and with it
    # the chunk cache's hit rate) depends on the atlas's true density.
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--queries", type=int, default=80)
    ap.add_argument("--chunks", type=int, default=16)
    ap.add_argument("--region-kb", type=int, default=150)
    ap.add_argument("--bandwidth", type=float, default=2.0)
    args = ap.parse_args()

    env = quick_environment("PA", scale=args.scale)
    policy = Policy().with_bandwidth(args.bandwidth * MBPS)

    # Build the hot region: the neighbourhood of a busy intersection.
    ds = env.dataset
    i = ds.size // 2
    ax = float(ds.x1[i] + ds.x2[i]) / 2.0
    ay = float(ds.y1[i] + ds.y2[i]) / 2.0
    seed_rect = MBR(ax - 500, ay - 500, ax + 500, ay + 500)
    cands = env.tree.range_filter(seed_rect)
    extraction = extract_range(env.tree, cands, ax, ay, args.region_kb * 1024)
    cov = coverage_rect(env.tree, seed_rect, extraction.entry_lo, extraction.entry_hi)
    hot = ds.subset(extraction.global_ids, name="hot-district")
    hot_env = Environment.create(hot)
    session = Session(env)
    hot_session = Session(hot_env)
    print(
        f"hot region: {hot.size} segments, "
        f"{extraction.total_bytes / 1024:.0f} KB, covering "
        f"{cov.width / 1000:.1f} x {cov.height / 1000:.1f} km "
        f"of {ds.name} (x{args.scale:g})"
    )

    # A browse session inside the covered district.
    rng = np.random.default_rng(3)
    queries = []
    for _ in range(args.queries):
        w = cov.width * rng.uniform(0.05, 0.2)
        h = cov.height * rng.uniform(0.05, 0.2)
        x = rng.uniform(cov.xmin, cov.xmax - w)
        y = rng.uniform(cov.ymin, cov.ymax - h)
        queries.append(RangeQuery(MBR(x, y, x + w, y + h)))

    sched = BroadcastSchedule(hot_env, n_chunks=args.chunks, network=policy.network)
    print(
        f"broadcast cycle: {args.chunks} chunks + air index = "
        f"{sched.cycle_seconds:.2f} s at {args.bandwidth:g} Mbps\n"
    )

    od = session.price(session.plan(queries, ON_DEMAND), policy)[0]
    print(
        f"ask-the-server   : {od.energy.total() * 1e3:8.1f} mJ "
        f"(tx {od.energy.nic_tx * 1e3:7.1f} mJ) {od.wall_seconds:6.2f} s"
    )
    cached_energy = None
    for label, kwargs in (
        ("tune per query  ", dict(air_index=True)),
        ("tune once, cache", dict(air_index=True, cache_chunks=True)),
    ):
        client = BroadcastClient(sched, **kwargs)
        plans = client.plan_workload(queries, seed=11)
        r = hot_session.price(plans, policy)[0]
        if kwargs.get("cache_chunks"):
            cached_energy = r.energy.total()
        print(
            f"{label} : {r.energy.total() * 1e3:8.1f} mJ "
            f"(tx     0.0 mJ) {r.wall_seconds:6.2f} s "
            f"[{client.receptions} reception(s)]"
        )
    if cached_energy is not None and cached_energy < od.energy.total():
        print(
            "\nTune-once-and-cache wins on battery while never keying the "
            "transmitter — and the base station serves every device in range "
            "with the same airtime."
        )
    else:
        print(
            "\nHere per-device battery still favors on-demand (the browse "
            "didn't amortize the slot waits) — but broadcast keeps the "
            "transmitter silent and serves any number of devices with the "
            "same airtime; try --chunks 4 or more --queries."
        )


if __name__ == "__main__":
    main()
