#!/usr/bin/env python3
"""A realistic road-atlas session: which partitioning scheme should the
device use for each interaction?

Simulates the workload the paper's introduction motivates — a user on the
road with a PDA: tapping streets (point queries), magnifying map regions
(range queries), and asking for the closest street to a landmark (NN
queries) — and, for every interaction, executes it under each legal
work-partitioning scheme, reporting the energy/performance winners.

The output reproduces the paper's headline qualitative findings in one
screen: point/NN interactions should stay on the device; magnification
(range) benefits from the server, with *energy* and *performance* choosing
different schemes.

Run:  python examples/road_atlas_session.py [--bandwidth 4] [--distance 1000]
"""

from __future__ import annotations

import argparse

from repro import Policy, execute, quick_environment
from repro.constants import MBPS
from repro.core import NNQuery, PointQuery, Query, RangeQuery, Scheme, SchemeConfig
from repro.core.queries import QueryKind
from repro.data.workloads import nn_queries, point_queries, range_queries

PHASE_SCHEMES = (
    SchemeConfig(Scheme.FULLY_CLIENT),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
    SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=True),
    SchemeConfig(Scheme.FILTER_SERVER_REFINE_CLIENT, data_at_client=True),
)
FULL_SCHEMES = (
    SchemeConfig(Scheme.FULLY_CLIENT),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
)


def interact(env, query: Query, label: str, policy: Policy) -> None:
    """Run one user interaction under every legal scheme; print winners."""
    schemes = (
        FULL_SCHEMES
        if query.kind is QueryKind.NEAREST_NEIGHBOR
        else PHASE_SCHEMES
    )
    results = []
    for cfg in schemes:
        env.reset_caches()
        r = execute(query, cfg, env, policy)
        results.append((cfg, r))
    best_energy = min(results, key=lambda t: t[1].energy.total())
    best_cycles = min(results, key=lambda t: t[1].cycles.total())
    print(f"\n{label} ({len(results[0][1].answer_ids)} answer(s))")
    for cfg, r in results:
        tags = []
        if cfg is best_energy[0]:
            tags.append("BEST ENERGY")
        if cfg is best_cycles[0]:
            tags.append("BEST TIME")
        tag = f"  <- {', '.join(tags)}" if tags else ""
        print(
            f"   {cfg.label:62s} {r.energy.total() * 1e3:9.3f} mJ"
            f"  {r.wall_seconds * 1e3:9.2f} ms{tag}"
        )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bandwidth", type=float, default=4.0, help="Mbps")
    ap.add_argument("--distance", type=float, default=1000.0, help="meters")
    ap.add_argument("--scale", type=float, default=0.25, help="dataset scale")
    args = ap.parse_args()

    env = quick_environment("PA", scale=args.scale)
    policy = (
        Policy()
        .with_bandwidth(args.bandwidth * MBPS)
        .with_distance(args.distance)
    )
    print(
        f"Session on {env.dataset.name} ({env.dataset.size} segments) at "
        f"{args.bandwidth:.0f} Mbps, {args.distance:.0f} m from the base station"
    )

    # A short session: the user taps a corner, magnifies twice, then asks
    # for the closest street to a dropped pin.
    tap = point_queries(env.dataset, 1, seed=101)[0]
    interact(env, tap, "Tap on a street corner (point query)", policy)

    for i, zoom in enumerate(range_queries(env.dataset, 2, seed=103), 1):
        interact(env, zoom, f"Magnify region #{i} (range query)", policy)

    pin = nn_queries(env.dataset, 1, seed=105)[0]
    interact(env, pin, "Closest street to dropped pin (NN query)", policy)

    print(
        "\nNote how the point/NN taps never leave the device, while the "
        "magnifications split between schemes depending on whether you "
        "optimize battery or latency — the paper's central observation."
    )


if __name__ == "__main__":
    main()
