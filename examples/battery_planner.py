#!/usr/bin/env python3
"""Battery planner: map the best scheme over the (bandwidth, distance) grid.

For a given query workload, sweeps the wireless conditions the paper
studies — effective bandwidth 2..11 Mbps and base-station distance 100 m /
1 km — and prints, per grid cell, which work-partitioning scheme a
battery-optimizing and a latency-optimizing device should pick, plus the
battery-life implication of choosing wrong.

This is the decision tool a mobile SDBMS would embed: the paper's figures,
reduced to a policy table.

Run:  python examples/battery_planner.py [--query range|point|nn]
"""

from __future__ import annotations

import argparse

from repro import Policy, Session, quick_environment
from repro.constants import BANDWIDTHS_MBPS, MBPS
from repro.core import Scheme, SchemeConfig
from repro.data.workloads import nn_queries, point_queries, range_queries

SCHEMES = {
    "FC": SchemeConfig(Scheme.FULLY_CLIENT),
    "FS": SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
    "F@C": SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=True),
    "F@S": SchemeConfig(Scheme.FILTER_SERVER_REFINE_CLIENT, data_at_client=True),
}
FULL_ONLY = {"FC": SCHEMES["FC"], "FS": SCHEMES["FS"]}

#: A PDA-class battery: 2 x AAA NiMH ~ 2.4 Wh ~ 8.6 kJ.
BATTERY_J = 8_640.0


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--query", choices=("range", "point", "nn"), default="range")
    ap.add_argument("--runs", type=int, default=40)
    ap.add_argument("--scale", type=float, default=0.25)
    args = ap.parse_args()

    env = quick_environment("PA", scale=args.scale)
    if args.query == "range":
        qs = range_queries(env.dataset, args.runs)
        schemes = SCHEMES
    elif args.query == "point":
        qs = point_queries(env.dataset, args.runs)
        schemes = {k: v for k, v in SCHEMES.items() if k != "F@C"} | {
            "F@C": SchemeConfig(
                Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=False
            )
        }
    else:
        qs = nn_queries(env.dataset, args.runs)
        schemes = FULL_ONLY

    session = Session(env)
    plans = {k: session.plan(qs, cfg) for k, cfg in schemes.items()}
    # One batched pricing pass per scheme covers the whole condition grid.
    grid = [(d, bw) for d in (100.0, 1000.0) for bw in BANDWIDTHS_MBPS]
    policies = [
        Policy().with_bandwidth(bw * MBPS).with_distance(d) for d, bw in grid
    ]
    priced = {k: session.price(p, policies) for k, p in plans.items()}

    print(
        f"{args.runs} {args.query} queries on {env.dataset.name} "
        f"({env.dataset.size} segments); legend: "
        + ", ".join(f"{k}={cfg.label}" for k, cfg in schemes.items())
    )
    header = f"{'distance':>9} {'Mbps':>5}  {'battery pick':>12} {'latency pick':>13}  {'queries/charge':>15} {'penalty if wrong':>17}"
    print(header)
    print("-" * len(header))
    for idx, (distance, bw) in enumerate(grid):
            cells = {k: priced[k][idx] for k in plans}
            e_best = min(cells, key=lambda k: cells[k].energy.total())
            c_best = min(cells, key=lambda k: cells[k].cycles.total())
            per_query_j = cells[e_best].energy.total() / args.runs
            queries_per_charge = BATTERY_J / per_query_j
            # Energy penalty of running the latency-optimal scheme instead.
            penalty = (
                cells[c_best].energy.total() / cells[e_best].energy.total() - 1.0
            )
            print(
                f"{distance:7.0f} m {bw:5.1f}  {e_best:>12} {c_best:>13}"
                f"  {queries_per_charge:15,.0f} {penalty:16.0%}"
            )
    print(
        "\nReading the table: when the battery pick and the latency pick "
        "differ, the last column is the battery cost of chasing latency — "
        "the energy/performance tension of the paper's Figures 5 and 10."
    )


if __name__ == "__main__":
    main()
