#!/usr/bin/env python3
"""Driving directions on a memory-constrained device.

The paper's road-atlas motivation lists "driving directions (shortest path
problem)" first among the operations users run.  This example combines the
whole stack:

1. build the street graph from the segment dataset (networkx, nodes =
   street intersections, edges = segments weighted by length);
2. compute a shortest route between two towns;
3. *drive* it: the device issues a range query ("show my surroundings")
   every few hundred meters along the route, under the insufficient-memory
   cached-client scheme — the sequence of nearby windows is exactly the
   spatial-proximity workload of the paper's section 6.2, so the server's
   shipped regions amortize over many route steps;
4. compare against shipping every window query to the server, in both
   energy and latency.

Run:  python examples/driving_directions.py [--scale 0.25] [--budget-kb 512]
"""

from __future__ import annotations

import argparse
import math

import networkx as nx
import numpy as np

from repro import Policy, Session, quick_environment
from repro.constants import MBPS
from repro.core import RangeQuery, Scheme, SchemeConfig
from repro.data.tiger import street_name
from repro.spatial.mbr import MBR

SERVER = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False)


def build_street_graph(ds) -> nx.Graph:
    """Street intersections as nodes (coordinates rounded to merge shared
    endpoints), segments as length-weighted edges."""
    g = nx.Graph()
    for i in range(ds.size):
        a = (round(float(ds.x1[i]), 3), round(float(ds.y1[i]), 3))
        b = (round(float(ds.x2[i]), 3), round(float(ds.y2[i]), 3))
        length = math.hypot(b[0] - a[0], b[1] - a[1])
        if length == 0:
            continue
        g.add_edge(a, b, weight=length, seg_id=i)
    return g


def pick_route(g: nx.Graph, rng: np.random.Generator):
    """A long route within the graph's largest connected component."""
    comp = max(nx.connected_components(g), key=len)
    nodes = sorted(comp)
    # Farthest-apart pair among a sample, for a representative drive.
    sample = [nodes[int(i)] for i in rng.integers(0, len(nodes), 40)]
    src, dst = max(
        ((a, b) for a in sample for b in sample),
        key=lambda ab: math.hypot(ab[0][0] - ab[1][0], ab[0][1] - ab[1][1]),
    )
    return nx.shortest_path(g, src, dst, weight="weight")


def windows_along(route, every_m: float, half_m: float):
    """A map window centered on the route every ``every_m`` meters."""
    out = []
    acc = 0.0
    prev = route[0]
    out.append(prev)
    for node in route[1:]:
        acc += math.hypot(node[0] - prev[0], node[1] - prev[1])
        if acc >= every_m:
            out.append(node)
            acc = 0.0
        prev = node
    return [
        RangeQuery(MBR(x - half_m, y - half_m, x + half_m, y + half_m))
        for x, y in out
    ]


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=0.25)
    ap.add_argument("--budget-kb", type=int, default=512)
    ap.add_argument("--bandwidth", type=float, default=11.0)
    ap.add_argument("--every-m", type=float, default=400.0)
    ap.add_argument("--window-m", type=float, default=600.0)
    args = ap.parse_args()

    env = quick_environment("PA", scale=args.scale)
    session = Session(env)
    rng = np.random.default_rng(29)
    print(f"building street graph over {env.dataset.size} segments ...")
    g = build_street_graph(env.dataset)
    route = pick_route(g, rng)
    route_km = sum(
        math.hypot(b[0] - a[0], b[1] - a[1]) for a, b in zip(route, route[1:])
    ) / 1000.0
    first_edge = g.edges[route[0], route[1]]
    print(
        f"route: {len(route)} intersections, {route_km:.1f} km, starting on "
        f"{street_name(first_edge['seg_id'])}"
    )

    queries = windows_along(route, args.every_m, args.window_m / 2)
    print(f"driving it: {len(queries)} map windows, one every ~{args.every_m:.0f} m\n")
    policy = Policy().with_bandwidth(args.bandwidth * MBPS)

    # Strategy A: every window to the server.
    server = session.price(session.plan(queries, SERVER), policy)[0]
    print(
        f"ask-the-server : {server.energy.total() * 1e3:8.2f} mJ, "
        f"{server.wall_seconds:6.2f} s, {len(queries)} round trips"
    )

    # Strategy B: cached regions shipped along the way (section 6.2).
    plans, cache = session.plan_cached(queries, args.budget_kb * 1024)
    cached = session.price(plans, policy)[0]
    total_e = cached.energy.total()
    total_s = cached.wall_seconds
    print(
        f"cached regions : {total_e * 1e3:8.2f} mJ, {total_s:6.2f} s, "
        f"{cache.misses} shipment(s) + {cache.local_hits} local windows"
    )
    hits_per_ship = cache.local_hits / max(1, cache.misses)
    print(
        f"\nEn route, a linear corridor crosses many of the server's "
        f"(blob-shaped) shipment regions: only {hits_per_ship:.1f} local "
        f"windows per shipment, below the ~{args.budget_kb // 10} needed to "
        f"amortize a {args.budget_kb} KB transfer — so the drive itself "
        f"favors ask-the-server.  The paper's section 6.2 locality shows up "
        f"when the car *stops*:"
    )

    # Phase 2: arrive and browse around the destination (the section 6.2
    # regime) — the already-shipped region now absorbs everything.
    dest = route[-1]
    rng2 = np.random.default_rng(31)
    browse = []
    for _ in range(80):
        dx, dy = rng2.uniform(-400, 400, 2)
        half = args.window_m / 2
        browse.append(
            RangeQuery(
                MBR(dest[0] + dx - half, dest[1] + dy - half,
                    dest[0] + dx + half, dest[1] + dy + half)
            )
        )
    misses_before = cache.misses
    browse_plans = cache.plan_sequence(browse)
    browse_e = session.price(browse_plans, policy)[0].energy.total()
    browse_server = session.price(session.plan(browse, SERVER), policy)[0]
    print(
        f"\nbrowsing 80 windows around the destination:\n"
        f"  ask-the-server : {browse_server.energy.total() * 1e3:8.2f} mJ\n"
        f"  cached region  : {browse_e * 1e3:8.2f} mJ "
        f"({cache.misses - misses_before} shipment(s) for 80 windows)"
    )
    winner = (
        "cached region" if browse_e < browse_server.energy.total()
        else "ask-the-server"
    )
    print(
        f"\nAt the destination, '{winner}' wins: stop-and-browse has the "
        f"spatial proximity that Figure 10 rewards, while the drive itself "
        f"does not — locality, not caching per se, is what pays."
    )


if __name__ == "__main__":
    main()
