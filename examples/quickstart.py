#!/usr/bin/env python3
"""Quickstart: build a road atlas, run the three query types, compare the
cost of answering on the device versus at the server.

Walks the public API end to end on a small synthetic PA-like dataset:

1. generate a dataset and build its Hilbert-packed R-tree,
2. run a point, a range, and a nearest-neighbor query locally,
3. execute the same range query under two work-partitioning schemes and
   print the client's energy/cycle breakdowns.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Policy, execute, quick_environment
from repro.core import NNQuery, PointQuery, RangeQuery, Scheme, SchemeConfig
from repro.data.tiger import street_name
from repro.spatial.mbr import MBR
from repro.spatial.stats import tree_stats


def main() -> None:
    # 1. A ready-made environment: dataset + packed R-tree + client/server
    #    hardware models.  scale=0.1 -> ~13 900 street segments.
    env = quick_environment("PA", scale=0.1)
    ds, tree = env.dataset, env.tree
    print(f"dataset: {ds.name}, {ds.size} segments, extent {ds.extent.width / 1000:.0f} "
          f"x {ds.extent.height / 1000:.0f} km")
    print(f"index  : {tree_stats(tree)}\n")

    # 2. Plain local queries through the engine.
    i = ds.size // 2
    px, py = float(ds.x1[i]), float(ds.y1[i])
    hits = env.engine.answer(PointQuery(px, py))
    print(f"point query at a street corner -> {len(hits.ids)} street(s):")
    for seg_id in hits.ids[:4]:
        print(f"   {street_name(int(seg_id))}")

    cx, cy = ds.extent.center()
    nn = env.engine.answer(NNQuery(cx, cy))
    print(f"nearest street to the map center -> {street_name(int(nn.ids[0]))}")

    window = MBR(px - 1500, py - 1000, px + 1500, py + 1000)
    ranged = env.engine.answer(RangeQuery(window))
    print(f"3 x 2 km window around the corner -> {len(ranged.ids)} segments\n")

    # 3. The same range query under two partitioning schemes, with the full
    #    client-side energy/cycle accounting, at 2 Mbps / 1 km defaults.
    policy = Policy()
    for config in (
        SchemeConfig(Scheme.FULLY_CLIENT),
        SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
    ):
        r = execute(RangeQuery(window), config, env, policy)
        e, c = r.energy, r.cycles
        print(f"{config.label}:")
        print(f"   energy {e.total() * 1e3:7.3f} mJ  "
              f"(processor {e.processor * 1e3:.3f}, NIC tx {e.nic_tx * 1e3:.3f}, "
              f"rx {e.nic_rx * 1e3:.3f}, idle {e.nic_idle * 1e3:.3f})")
        print(f"   cycles {c.total():10.0f}     "
              f"(compute {c.processor:.0f}, tx {c.nic_tx:.0f}, "
              f"rx {c.nic_rx:.0f}, wait {c.wait:.0f})")
    print("\nTry flipping Policy(bandwidth/distance) and watch the winner change —")
    print("examples/battery_planner.py automates exactly that.")


if __name__ == "__main__":
    main()
