#!/usr/bin/env python3
"""A driving tour with a memory-constrained device (paper section 6.2).

The device cannot hold the atlas.  As the user drives, they browse around
their current location (spatially proximate range queries), occasionally
jumping to a new area.  Two strategies compete:

* **always-ask-the-server** — every query is a wireless round trip;
* **cached region** — on a miss, the server ships the neighbourhood of the
  query (data + a fresh packed index) sized to the device's memory; nearby
  follow-ups are answered locally.

The script replays the tour under both strategies for 1 MB and 2 MB
buffers, prints the running energy/latency totals and the cache behaviour,
and reports the break-even browsing depth — the Figure 10 experiment as a
narrative.

Run:  python examples/insufficient_memory_tour.py [--stops 4] [--browse 60]
"""

from __future__ import annotations

import argparse

from repro import Policy, Session, quick_environment
from repro.constants import MBPS
from repro.core import Scheme, SchemeConfig
from repro.data.workloads import proximity_sequence

SERVER = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--stops", type=int, default=3, help="tour stops (cache misses)")
    ap.add_argument("--browse", type=int, default=60, help="queries browsed per stop")
    ap.add_argument("--bandwidth", type=float, default=11.0, help="Mbps")
    ap.add_argument("--scale", type=float, default=0.5, help="dataset scale")
    args = ap.parse_args()

    env = quick_environment("PA", scale=args.scale)
    session = Session(env)
    policy = Policy().with_bandwidth(args.bandwidth * MBPS)
    tour = proximity_sequence(
        env.dataset, y=args.browse, n_groups=args.stops, seed=7
    )
    print(
        f"Tour: {args.stops} stops x (1 + {args.browse}) queries over "
        f"{env.dataset.name} ({env.dataset.size} segments, "
        f"{env.dataset.data_bytes() / 1e6:.1f} MB data) at {args.bandwidth:.0f} Mbps\n"
    )

    # Baseline: every query at the server.
    server = session.price(session.plan(tour, SERVER), policy)[0]
    print(
        f"always-at-server : {server.energy.total():7.3f} J, "
        f"{server.wall_seconds:6.2f} s total"
    )

    for budget_mb in (1, 2):
        budget = budget_mb << 20
        plans, cache = session.plan_cached(tour, budget)
        cached = session.price(plans, policy)[0]
        verdict = (
            "saves energy"
            if cached.energy.total() < server.energy.total()
            else "costs more energy"
        )
        print(
            f"cached {budget_mb} MB region: {cached.energy.total():7.3f} J, "
            f"{cached.wall_seconds:6.2f} s total "
            f"({cache.local_hits} local hits / {cache.misses} misses) "
            f"-> {verdict}, {server.wall_seconds / cached.wall_seconds:.2f}x "
            f"the server strategy's speed"
        )

    # Break-even browsing depth for the 1 MB device.
    print("\nBreak-even browsing depth (1 MB buffer):")
    for browse in (10, 40, 80, 120, 160, 200):
        seq = proximity_sequence(env.dataset, y=browse, n_groups=1, seed=7)
        plans, _ = session.plan_cached(seq, 1 << 20)
        cached = session.price(plans, policy)[0]
        srv = session.price(session.plan(seq, SERVER), policy)[0]
        winner = "CACHED" if cached.energy.total() < srv.energy.total() else "server"
        print(
            f"   browse {browse:4d} queries/stop: cached "
            f"{cached.energy.total():6.3f} J vs server "
            f"{srv.energy.total():6.3f} J -> {winner}"
        )
    print(
        "\nWith enough browsing around each stop, the one-time shipment "
        "amortizes and the cached device wins on battery — while the server "
        "strategy stays faster end-to-end (the paper's Figure 10 tension)."
    )


if __name__ == "__main__":
    main()
