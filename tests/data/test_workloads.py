"""Query workload generators (paper sections 5.4 / 6.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.queries import NNQuery, PointQuery, RangeQuery
from repro.data.workloads import (
    locality_workload,
    nn_queries,
    point_queries,
    proximity_sequence,
    range_queries,
)
from repro.spatial import bruteforce as bf


class TestPointQueries:
    def test_count_and_type(self, pa_small):
        qs = point_queries(pa_small, 30)
        assert len(qs) == 30
        assert all(isinstance(q, PointQuery) for q in qs)

    def test_anchored_on_endpoints_guarantees_hits(self, pa_small):
        """The paper picks segment endpoints, so every query has answers."""
        for q in point_queries(pa_small, 25, seed=3):
            assert len(bf.point_query(pa_small, q.x, q.y, q.eps)) >= 1

    def test_deterministic(self, pa_small):
        assert point_queries(pa_small, 5, seed=1) == point_queries(pa_small, 5, seed=1)

    def test_invalid_count(self, pa_small):
        with pytest.raises(ValueError):
            point_queries(pa_small, 0)


class TestRangeQueries:
    def test_count_and_type(self, pa_small):
        qs = range_queries(pa_small, 30)
        assert len(qs) == 30
        assert all(isinstance(q, RangeQuery) for q in qs)

    def test_windows_inside_extent(self, pa_small):
        for q in range_queries(pa_small, 40, seed=5):
            assert pa_small.extent.contains(q.rect)

    def test_area_range_respected(self, pa_small):
        lo, hi = 0.0001, 0.001
        ext_area = pa_small.extent.area()
        for q in range_queries(pa_small, 40, seed=5, min_area_frac=lo, max_area_frac=hi):
            frac = q.rect.area() / ext_area
            # Clamping at the extent boundary can only shrink the window.
            assert frac <= hi * 1.0001
            assert frac >= lo * 0.2

    def test_aspect_ratio_range(self, pa_small):
        for q in range_queries(pa_small, 40, seed=5):
            ar = q.rect.width / q.rect.height
            assert 0.2 <= ar <= 5.0  # 0.25..4 modulo boundary clamping

    def test_density_weighted_placement(self, pa_small):
        """Most windows land where the data is: the mean candidate count
        must far exceed what uniform placement would give."""
        qs = range_queries(pa_small, 50, seed=7)
        hits = [len(bf.range_filter(pa_small, q.rect)) for q in qs]
        assert np.mean(hits) > 0.5  # non-degenerate
        nonempty = sum(1 for h in hits if h > 0)
        assert nonempty >= 45  # density anchoring: almost never empty

    def test_invalid_fracs(self, pa_small):
        with pytest.raises(ValueError):
            range_queries(pa_small, 5, min_area_frac=0.1, max_area_frac=0.01)
        with pytest.raises(ValueError):
            range_queries(pa_small, 5, min_area_frac=0.0)


class TestNNQueries:
    def test_count_type_extent(self, pa_small):
        qs = nn_queries(pa_small, 30)
        assert len(qs) == 30
        for q in qs:
            assert isinstance(q, NNQuery)
            assert pa_small.extent.contains_point(q.x, q.y)


class TestProximitySequence:
    def test_group_structure(self, pa_small):
        qs = proximity_sequence(pa_small, y=5, n_groups=3, seed=9)
        assert len(qs) == 3 * (1 + 5)
        assert all(isinstance(q, RangeQuery) for q in qs)

    def test_y_zero_gives_anchors_only(self, pa_small):
        qs = proximity_sequence(pa_small, y=0, n_groups=4, seed=9)
        assert len(qs) == 4

    def test_followups_cluster_around_anchor(self, pa_small):
        qs = proximity_sequence(
            pa_small, y=8, n_groups=1, seed=11, local_radius_frac=0.01
        )
        anchor = qs[0].rect.center()
        radius = 0.01 * min(pa_small.extent.width, pa_small.extent.height)
        for q in qs[1:]:
            c = q.rect.center()
            d = np.hypot(c[0] - anchor[0], c[1] - anchor[1])
            # Center offset bounded by the radius plus the window halfwidth
            # and boundary clamping.
            assert d <= radius + max(q.rect.width, q.rect.height) + 1e-6

    def test_invalid_params(self, pa_small):
        with pytest.raises(ValueError):
            proximity_sequence(pa_small, y=-1)
        with pytest.raises(ValueError):
            proximity_sequence(pa_small, y=1, n_groups=0)


class TestLocalityWorkload:
    def test_seed_deterministic(self, pa_small):
        a = locality_workload(pa_small, 10, 3, seed=5)
        b = locality_workload(pa_small, 10, 3, seed=5)
        assert len(a) == len(b)
        for qa, qb in zip(a, b):
            assert type(qa) is type(qb)
            assert qa == qb

    def test_different_seeds_differ(self, pa_small):
        a = locality_workload(pa_small, 10, 3, seed=5)
        b = locality_workload(pa_small, 10, 3, seed=6)
        assert a != b

    def test_query_types_and_counts(self, pa_small):
        qs = locality_workload(pa_small, 12, 2, seed=9)
        assert all(isinstance(q, (RangeQuery, PointQuery)) for q in qs)
        # At most (1 + zoom_depth) queries per group.
        assert len(qs) <= 12 * 3
        assert len(qs) >= 12

    def test_zooms_strictly_contained_and_points_inside(self, pa_small):
        qs = locality_workload(
            pa_small, 12, 3, seed=11, repeat_fraction=0.0
        )
        win = None
        for q in qs:
            if isinstance(q, RangeQuery):
                r = q.rect
                if win is not None and (
                    r.xmin >= win.xmin and r.ymin >= win.ymin
                    and r.xmax <= win.xmax and r.ymax <= win.ymax
                    and (r.xmax - r.xmin) < (win.xmax - win.xmin)
                ):
                    win = r  # a zoom: strictly smaller, inside parent
                else:
                    win = r  # a new base window opens a group
            else:
                assert win is not None
                assert win.xmin <= q.x <= win.xmax
                assert win.ymin <= q.y <= win.ymax

    def test_zoom_windows_shrink(self, pa_small):
        # With no repeats and no points every non-base window is strictly
        # inside its predecessor.
        qs = locality_workload(
            pa_small, 8, 3, seed=13, repeat_fraction=0.0, point_fraction=0.0
        )
        groups = 0
        prev = None
        for q in qs:
            r = q.rect
            if prev is not None and (
                r.xmin >= prev.xmin and r.ymin >= prev.ymin
                and r.xmax <= prev.xmax and r.ymax <= prev.ymax
            ):
                assert (r.xmax - r.xmin) < (prev.xmax - prev.xmin)
                assert (r.ymax - r.ymin) < (prev.ymax - prev.ymin)
            else:
                groups += 1
            prev = r
        assert groups == 8

    def test_repeats_come_from_history(self, pa_small):
        qs = locality_workload(
            pa_small, 30, 0, seed=17, repeat_fraction=0.9
        )
        seen = set()
        repeats = 0
        for q in qs:
            key = (q.rect.xmin, q.rect.ymin, q.rect.xmax, q.rect.ymax)
            if key in seen:
                repeats += 1
            seen.add(key)
        assert repeats > 0

    def test_windows_inside_extent(self, pa_small):
        ext = pa_small.extent
        for q in locality_workload(pa_small, 10, 2, seed=19):
            if isinstance(q, RangeQuery):
                r = q.rect
                assert r.xmin >= ext.xmin and r.xmax <= ext.xmax
                assert r.ymin >= ext.ymin and r.ymax <= ext.ymax

    def test_invalid_params(self, pa_small):
        with pytest.raises(ValueError):
            locality_workload(pa_small, 0, 3)
        with pytest.raises(ValueError):
            locality_workload(pa_small, 4, -1)
        with pytest.raises(ValueError):
            locality_workload(pa_small, 4, 1, repeat_fraction=1.5)
        with pytest.raises(ValueError):
            locality_workload(pa_small, 4, 1, point_fraction=-0.1)
        with pytest.raises(ValueError):
            locality_workload(pa_small, 4, 1, min_area_frac=0.5,
                              max_area_frac=0.1)
