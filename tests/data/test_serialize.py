"""Wire encodings: sizes must equal the cost model's byte figures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import DEFAULT_COSTS
from repro.data import serialize as ser
from repro.spatial.rtree import PackedRTree


class TestSegmentRecords:
    def test_size_matches_cost_model(self, pa_small):
        blob = ser.encode_segment(pa_small, 7)
        assert len(blob) == DEFAULT_COSTS.segment_record_bytes == 76

    def test_roundtrip(self, pa_small):
        for i in (0, 13, pa_small.size - 1):
            x1, y1, x2, y2, seg_id, name = ser.decode_segment(
                ser.encode_segment(pa_small, i)
            )
            want = pa_small.segment(i)
            assert (x1, y1, x2, y2) == pytest.approx(want, rel=1e-6)
            assert seg_id == i
            assert len(name) > 0

    def test_bulk_size(self, pa_small):
        ids = list(range(40))
        blob = ser.encode_segments(pa_small, ids)
        assert len(blob) == pa_small.data_bytes(40)


class TestObjectRefs:
    def test_size_matches_cost_model(self, pa_small):
        blob = ser.encode_object_ref(pa_small, 3)
        assert len(blob) == DEFAULT_COSTS.object_id_bytes == 16

    def test_roundtrip_id_and_approximate_mbr(self, pa_small):
        for i in (0, 101, pa_small.size - 1):
            seg_id, mbr = ser.decode_object_ref(
                ser.encode_object_ref(pa_small, i), pa_small.extent
            )
            assert seg_id == i
            want = pa_small.segment_mbr(i)
            # Grid precision: extent/2^24 per axis.
            tol = max(pa_small.extent.width, pa_small.extent.height) / (1 << 23)
            assert mbr.xmin == pytest.approx(want.xmin, abs=tol)
            assert mbr.ymax == pytest.approx(want.ymax, abs=tol)

    def test_bulk_size(self, pa_small):
        blob = ser.encode_object_refs(pa_small, range(25))
        assert len(blob) == pa_small.id_bytes(25)


class TestQuantization:
    @given(
        st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
        st.floats(min_value=-1e5, max_value=-1.0),
        st.floats(min_value=1.0, max_value=1e5),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_within_one_cell(self, v, lo, hi):
        q = ser.quantize_coord(v, lo, hi)
        back = ser.dequantize_coord(q, lo, hi)
        clamped = min(max(v, lo), hi)
        cell = (hi - lo) / ((1 << 24) - 1)
        assert abs(back - clamped) <= cell

    def test_degenerate_interval_raises(self):
        with pytest.raises(ValueError):
            ser.quantize_coord(0.5, 1.0, 1.0)

    def test_clamping(self):
        assert ser.quantize_coord(-10.0, 0.0, 1.0) == 0
        assert ser.quantize_coord(10.0, 0.0, 1.0) == (1 << 24) - 1


class TestIndexEncoding:
    def test_encoded_length_equals_index_bytes(self, pa_small, pa_small_tree):
        blob = ser.encode_index(pa_small_tree)
        assert len(blob) == pa_small_tree.index_bytes()

    def test_matches_for_other_capacities(self, pa_small):
        for cap in (5, 40):
            tree = PackedRTree.build(pa_small, node_capacity=cap)
            assert len(ser.encode_index(tree)) == tree.index_bytes()

    def test_extraction_budget_is_physical(self, pa_small, pa_small_tree):
        """The shipment budgeting adds modeled data and index bytes; the
        actual encodings must sum to the same figure."""
        from repro.spatial.extract import extract_range

        rect_center = pa_small.extent.center()
        candidates = pa_small_tree.range_filter(pa_small.extent)
        ext = extract_range(
            pa_small_tree, candidates[:50], *rect_center, budget_bytes=128 * 1024
        )
        sub = pa_small.subset(ext.global_ids)
        sub_tree = PackedRTree.build(sub, node_capacity=pa_small_tree.node_capacity)
        data_blob = ser.encode_segments(sub, range(sub.size))
        index_blob = ser.encode_index(sub_tree)
        assert len(data_blob) == ext.data_bytes
        assert len(index_blob) == ext.index_bytes
