"""Synthetic TIGER-like dataset generators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.data import tiger


class TestCardinality:
    def test_pa_full_matches_paper(self):
        # Build once at full scale (fast: fully vectorized).
        ds = tiger.pa_dataset(scale=1.0)
        assert ds.size == tiger.PA_SEGMENTS == 139_006

    def test_nyc_full_matches_paper(self):
        ds = tiger.nyc_dataset(scale=1.0)
        assert ds.size == tiger.NYC_SEGMENTS == 38_778

    def test_scaled_counts(self):
        ds = tiger.pa_dataset(scale=0.01)
        assert ds.size == round(tiger.PA_SEGMENTS * 0.01)

    def test_minimum_floor(self):
        assert tiger.pa_dataset(scale=0.0001).size >= 200

    def test_bad_scale_raises(self):
        with pytest.raises(ValueError):
            tiger.pa_dataset(scale=0.0)
        with pytest.raises(ValueError):
            tiger.nyc_dataset(scale=1.5)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = tiger.pa_dataset(scale=0.01, seed=7)
        b = tiger.pa_dataset(scale=0.01, seed=7)
        assert np.array_equal(a.x1, b.x1) and np.array_equal(a.y2, b.y2)

    def test_different_seed_different_data(self):
        a = tiger.pa_dataset(scale=0.01, seed=7)
        b = tiger.pa_dataset(scale=0.01, seed=8)
        assert not np.array_equal(a.x1, b.x1)


class TestRealism:
    def test_segments_are_street_scale(self, pa_small):
        """Median segment length is tens-to-hundreds of meters."""
        lengths = np.hypot(pa_small.x2 - pa_small.x1, pa_small.y2 - pa_small.y1)
        med = float(np.median(lengths))
        assert 20.0 < med < 500.0

    def test_clustered_density(self, pa_small):
        """Town clustering: a random uniform grid cell is often empty while
        some cells are dense (the density-weighted workload needs this)."""
        ds = pa_small
        ext = ds.extent
        nx = ny = 16
        cx = ((ds.x1 + ds.x2) / 2 - ext.xmin) / ext.width * nx
        cy = ((ds.y1 + ds.y2) / 2 - ext.ymin) / ext.height * ny
        cells = (np.clip(cx.astype(int), 0, nx - 1) * ny
                 + np.clip(cy.astype(int), 0, ny - 1))
        counts = np.bincount(cells, minlength=nx * ny)
        assert (counts == 0).mean() > 0.3  # lots of empty countryside
        assert counts.max() > ds.size / 20  # and dense towns

    def test_streets_share_endpoints(self, pa_small):
        """Grid intersections: several segments meet at the same endpoint
        (the point-query workload relies on this)."""
        pts = np.concatenate(
            [
                np.stack([pa_small.x1, pa_small.y1], axis=1),
                np.stack([pa_small.x2, pa_small.y2], axis=1),
            ]
        )
        _, counts = np.unique(np.round(pts, 6), axis=0, return_counts=True)
        assert counts.max() >= 3  # a T-junction or crossroads exists

    def test_data_bytes_near_paper_sizes(self):
        pa = tiger.pa_dataset(scale=1.0)
        # 10.06 MB published; our byte model should land within 15%.
        assert pa.data_bytes() == pytest.approx(10.06e6, rel=0.15)
        nyc = tiger.nyc_dataset(scale=1.0)
        # NYC published at 7.09 MB including more per-record attributes; our
        # fixed 76-byte record gives ~2.9 MB — documented divergence, checked
        # loosely here so a generator regression still trips.
        assert nyc.data_bytes() == pytest.approx(
            tiger.NYC_SEGMENTS * 76, rel=0.01
        )


class TestGridTown:
    def test_segment_count_formula(self, rng):
        x1, y1, x2, y2 = tiger.grid_town(rng, 0, 0, rows=4, cols=5, cell=100.0)
        # rows*(cols+1) vertical-ish + (rows+1)*cols horizontal-ish edges.
        assert len(x1) == 4 * (5 + 1) + (4 + 1) * 5

    def test_rotation_preserves_count(self, rng):
        a = tiger.grid_town(rng, 0, 0, 3, 3, 50.0, angle=None)
        b = tiger.grid_town(rng, 0, 0, 3, 3, 50.0, angle=math.radians(29))
        assert len(a[0]) == len(b[0])

    def test_invalid_dims_raise(self, rng):
        with pytest.raises(ValueError):
            tiger.grid_town(rng, 0, 0, 0, 3, 50.0)


class TestStreetNames:
    def test_deterministic(self):
        assert tiger.street_name(42) == tiger.street_name(42)

    def test_varies(self):
        names = {tiger.street_name(i) for i in range(200)}
        assert len(names) > 100

    def test_format(self):
        assert "(" in tiger.street_name(0)
