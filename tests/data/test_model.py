"""SegmentDataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.model import SegmentDataset


def _tiny():
    return SegmentDataset(
        "t",
        x1=np.array([0.0, 2.0, -1.0]),
        y1=np.array([0.0, 2.0, 5.0]),
        x2=np.array([1.0, 3.0, -2.0]),
        y2=np.array([1.0, 1.0, 6.0]),
    )


class TestConstruction:
    def test_extent_derived(self):
        ds = _tiny()
        assert ds.extent.as_tuple() == (-2.0, 0.0, 3.0, 6.0)

    def test_length(self):
        assert len(_tiny()) == 3
        assert _tiny().size == 3

    def test_mismatched_columns_raise(self):
        with pytest.raises(ValueError):
            SegmentDataset("bad", np.zeros(2), np.zeros(3), np.zeros(2), np.zeros(2))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SegmentDataset("bad", np.zeros(0), np.zeros(0), np.zeros(0), np.zeros(0))

    def test_columns_contiguous_float64(self):
        ds = SegmentDataset(
            "t",
            x1=np.array([0, 1], dtype=np.int32),
            y1=np.array([0, 1], dtype=np.int32),
            x2=np.array([1, 2], dtype=np.int32),
            y2=np.array([1, 2], dtype=np.int32),
        )
        assert ds.x1.dtype == np.float64
        assert ds.x1.flags["C_CONTIGUOUS"]


class TestAccessors:
    def test_segment(self):
        assert _tiny().segment(1) == (2.0, 2.0, 3.0, 1.0)

    def test_segment_mbr_orders_coords(self):
        assert _tiny().segment_mbr(1).as_tuple() == (2.0, 1.0, 3.0, 2.0)

    def test_centers(self):
        cx, cy = _tiny().centers()
        assert cx[0] == pytest.approx(0.5)
        assert cy[1] == pytest.approx(1.5)


class TestSubset:
    def test_subset_selects_and_rederives_extent(self):
        sub = _tiny().subset([0, 1])
        assert sub.size == 2
        assert sub.extent.as_tuple() == (0.0, 0.0, 3.0, 2.0)

    def test_subset_default_name(self):
        assert _tiny().subset([0]).name == "t-subset"

    def test_empty_subset_raises(self):
        with pytest.raises(ValueError):
            _tiny().subset([])


class TestByteModel:
    def test_data_bytes_whole(self):
        ds = _tiny()
        assert ds.data_bytes() == 3 * ds.costs.segment_record_bytes

    def test_data_bytes_count(self):
        ds = _tiny()
        assert ds.data_bytes(10) == 10 * ds.costs.segment_record_bytes

    def test_id_bytes(self):
        ds = _tiny()
        assert ds.id_bytes(7) == 7 * ds.costs.object_id_bytes
