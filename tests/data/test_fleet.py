"""Fleet generator and arrival stream: validation, determinism, structure."""

from __future__ import annotations

import math

import pytest

from repro.constants import BANDWIDTHS_MBPS, MBPS
from repro.core.executor import Policy
from repro.core.queries import NNQuery, PointQuery
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data.workloads import (
    QUERY_KINDS,
    ClientProfile,
    QueryRequest,
    client_fleet,
    fleet_query_stream,
)

FS = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True)
FCRS = SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=True)
POLICY = Policy().with_bandwidth(2 * MBPS)


class TestClientProfile:
    def test_defaults(self):
        p = ClientProfile(client_id=3, policy=POLICY, scheme=FS)
        assert p.rate_qps == 1.0
        assert p.mix == ("point", "range")
        assert math.isinf(p.battery_j)

    @pytest.mark.parametrize(
        "kw",
        [
            {"client_id": -1},
            {"rate_qps": 0.0},
            {"mix": ()},
            {"mix": ("warp",)},
            {"battery_j": 0.0},
        ],
    )
    def test_invalid_values(self, kw):
        base = dict(client_id=0, policy=POLICY, scheme=FS)
        base.update(kw)
        with pytest.raises(ValueError):
            ClientProfile(**base)

    def test_invalid_types(self):
        with pytest.raises(TypeError):
            ClientProfile(client_id=0, policy="fast", scheme=FS)
        with pytest.raises(TypeError):
            ClientProfile(client_id=0, policy=POLICY, scheme="FS")

    def test_nn_illegal_under_filter_split(self):
        with pytest.raises(ValueError, match="cannot serve NN"):
            ClientProfile(
                client_id=0, policy=POLICY, scheme=FCRS, mix=("nn",)
            )
        with pytest.raises(ValueError, match="cannot serve NN"):
            ClientProfile(
                client_id=0, policy=POLICY, scheme=FCRS, mix=("point", "knn")
            )


class TestQueryRequest:
    def test_validation(self):
        q = PointQuery(0.0, 0.0)
        with pytest.raises(TypeError):
            QueryRequest(client_id=0, query="north", arrival_s=0.0)
        with pytest.raises(ValueError):
            QueryRequest(client_id=0, query=q, arrival_s=-1.0)


class TestClientFleet:
    def test_shape_and_ids(self):
        fleet = client_fleet(40, seed=3)
        assert len(fleet) == 40
        assert [p.client_id for p in fleet] == list(range(40))

    def test_deterministic(self):
        assert client_fleet(12, seed=5) == client_fleet(12, seed=5)
        assert client_fleet(12, seed=5) != client_fleet(12, seed=6)

    def test_draws_stay_inside_grids(self):
        fleet = client_fleet(60, seed=7)
        labels = {cfg.label for cfg in ADEQUATE_MEMORY_CONFIGS}
        for p in fleet:
            assert p.scheme.label in labels
            assert p.policy.network.bandwidth_bps / MBPS in BANDWIDTHS_MBPS
            assert 0.5 <= p.rate_qps <= 2.0
            assert set(p.mix) <= set(QUERY_KINDS)

    def test_schemes_override(self):
        fleet = client_fleet(10, seed=9, schemes=[FS])
        assert all(p.scheme == FS for p in fleet)

    def test_battery_fraction(self):
        fleet = client_fleet(
            40, seed=11, battery_j=5.0, low_battery_fraction=0.5
        )
        finite = [p for p in fleet if math.isfinite(p.battery_j)]
        assert 0 < len(finite) < len(fleet)
        for p in finite:
            assert 2.5 <= p.battery_j <= 7.5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            client_fleet(0)
        with pytest.raises(ValueError):
            client_fleet(4, rate_qps=(2.0, 1.0))
        with pytest.raises(ValueError):
            client_fleet(4, schemes=[])
        with pytest.raises(ValueError):
            client_fleet(4, low_battery_fraction=2.0)


class TestFleetQueryStream:
    def test_sorted_and_bounded(self, pa_small):
        fleet = client_fleet(8, seed=13)
        reqs = fleet_query_stream(pa_small, fleet, duration_s=5.0, seed=17)
        assert reqs
        times = [(r.arrival_s, r.client_id) for r in reqs]
        assert times == sorted(times)
        assert all(0.0 <= r.arrival_s < 5.0 for r in reqs)
        assert {r.client_id for r in reqs} <= set(range(8))

    def test_deterministic(self, pa_small):
        fleet = client_fleet(5, seed=13)
        a = fleet_query_stream(pa_small, fleet, duration_s=3.0, seed=19)
        b = fleet_query_stream(pa_small, fleet, duration_s=3.0, seed=19)
        assert [(r.client_id, r.arrival_s, repr(r.query)) for r in a] == [
            (r.client_id, r.arrival_s, repr(r.query)) for r in b
        ]

    def test_subfleet_stream_is_independent_of_fleet_size(self, pa_small):
        """Client c's arrivals depend only on (seed, c), not on the fleet."""
        fleet = client_fleet(6, seed=13)
        full = fleet_query_stream(pa_small, fleet, duration_s=3.0, seed=19)
        sub = fleet_query_stream(
            pa_small, fleet[:2], duration_s=3.0, seed=19
        )
        restricted = [r for r in full if r.client_id < 2]
        assert [(r.client_id, r.arrival_s, repr(r.query)) for r in sub] == [
            (r.client_id, r.arrival_s, repr(r.query)) for r in restricted
        ]

    def test_hot_queries_repeat_across_clients(self, pa_small):
        # Hot pools exist for point/range only, so pin the mix; every
        # arrival must then come from the 2-per-kind shared pool.
        fleet = [
            ClientProfile(
                client_id=c, policy=POLICY, scheme=FS,
                mix=("point", "range"), rate_qps=2.0,
            )
            for c in range(6)
        ]
        reqs = fleet_query_stream(
            pa_small, fleet, duration_s=5.0, seed=19,
            hot_fraction=1.0, hot_pool=2,
        )
        assert len(reqs) > 4
        assert len({repr(r.query) for r in reqs}) <= 4

    def test_mix_respected(self, pa_small):
        fleet = [
            ClientProfile(
                client_id=0, policy=POLICY, scheme=FS, mix=("nn",),
                rate_qps=4.0,
            )
        ]
        reqs = fleet_query_stream(
            pa_small, fleet, duration_s=4.0, seed=21, hot_fraction=0.9
        )
        assert reqs
        assert all(isinstance(r.query, NNQuery) for r in reqs)

    def test_rate_scales_arrivals(self, pa_small):
        slow = [
            ClientProfile(
                client_id=0, policy=POLICY, scheme=FS, rate_qps=0.5
            )
        ]
        fast = [
            ClientProfile(
                client_id=0, policy=POLICY, scheme=FS, rate_qps=8.0
            )
        ]
        n_slow = len(
            fleet_query_stream(pa_small, slow, duration_s=30.0, seed=23)
        )
        n_fast = len(
            fleet_query_stream(pa_small, fast, duration_s=30.0, seed=23)
        )
        assert n_fast > 4 * n_slow

    def test_invalid_params(self, pa_small):
        fleet = client_fleet(2, seed=13)
        with pytest.raises(ValueError):
            fleet_query_stream(pa_small, [], duration_s=1.0)
        with pytest.raises(ValueError):
            fleet_query_stream(pa_small, fleet, duration_s=0.0)
        with pytest.raises(ValueError):
            fleet_query_stream(
                pa_small, fleet, duration_s=1.0, hot_fraction=1.5
            )
        with pytest.raises(ValueError):
            fleet_query_stream(
                pa_small, fleet, duration_s=1.0, hot_pool=-1
            )
