"""Shared fixtures: scaled-down datasets, trees and environments.

Unit and property tests run on ~2% scale synthetic datasets (a few thousand
segments) so the whole suite stays fast; the integration *shape* tests in
``tests/integration`` build the full-scale datasets once per session because
the paper's crossover bandwidths only emerge at full cardinality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import Environment
from repro.data import tiger
from repro.data.model import SegmentDataset
from repro.spatial.rtree import PackedRTree


@pytest.fixture(scope="session")
def pa_small() -> SegmentDataset:
    """A ~2800-segment PA-like dataset."""
    return tiger.pa_dataset(scale=0.02, seed=1)


@pytest.fixture(scope="session")
def nyc_small() -> SegmentDataset:
    """A ~780-segment NYC-like dataset."""
    return tiger.nyc_dataset(scale=0.02, seed=2)


@pytest.fixture(scope="session")
def pa_small_tree(pa_small) -> PackedRTree:
    """Packed R-tree over the small PA dataset."""
    return PackedRTree.build(pa_small)


@pytest.fixture()
def env_small(pa_small, pa_small_tree) -> Environment:
    """A fresh environment per test (CPU cache state is per-test)."""
    return Environment.create(pa_small, tree=pa_small_tree)


@pytest.fixture(scope="session")
def pa_full() -> SegmentDataset:
    """The full 139 006-segment PA dataset (integration tests only)."""
    return tiger.pa_dataset(scale=1.0, seed=1)


@pytest.fixture(scope="session")
def nyc_full() -> SegmentDataset:
    """The full 38 778-segment NYC dataset (integration tests only)."""
    return tiger.nyc_dataset(scale=1.0, seed=2)


@pytest.fixture(scope="session")
def pa_full_env(pa_full) -> Environment:
    """Environment over the full PA dataset, shared across shape tests.

    Shape tests must call ``reset_caches()`` before planning workloads.
    """
    return Environment.create(pa_full)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic per-test RNG."""
    return np.random.default_rng(12345)


def make_segments(
    rng: np.random.Generator, n: int, extent=(0.0, 0.0, 1000.0, 1000.0)
) -> SegmentDataset:
    """Random short segments inside ``extent`` (test helper)."""
    xmin, ymin, xmax, ymax = extent
    cx = rng.uniform(xmin, xmax, n)
    cy = rng.uniform(ymin, ymax, n)
    dx = rng.normal(0, (xmax - xmin) * 0.01, n)
    dy = rng.normal(0, (ymax - ymin) * 0.01, n)
    return SegmentDataset(
        name="random", x1=cx - dx, y1=cy - dy, x2=cx + dx, y2=cy + dy
    )
