"""Set-associative LRU cache simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import CacheSim


class TestGeometry:
    def test_sets_computed(self):
        c = CacheSim(8 * 1024, 4, 32)
        assert c.n_sets == 64

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            CacheSim(0, 4, 32)
        with pytest.raises(ValueError):
            CacheSim(1000, 3, 32)  # not divisible


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        c = CacheSim(1024, 2, 32)
        assert not c.access_line(0)
        assert c.access_line(0)
        assert (c.hits, c.misses) == (1, 1)

    def test_lru_eviction(self):
        # 2-way set: lines 0, n_sets, 2*n_sets map to set 0.
        c = CacheSim(128, 2, 32)  # 2 sets
        n = c.n_sets
        c.access_line(0)
        c.access_line(n)      # set 0 now holds {0, n}
        c.access_line(2 * n)  # evicts LRU (0)
        assert not c.access_line(0)   # 0 was evicted
        assert c.access_line(2 * n)   # still resident

    def test_lru_refresh_on_hit(self):
        c = CacheSim(128, 2, 32)
        n = c.n_sets
        c.access_line(0)
        c.access_line(n)
        c.access_line(0)       # refresh 0 -> LRU is now n
        c.access_line(2 * n)   # evicts n
        assert c.access_line(0)
        assert not c.access_line(n)

    def test_access_spans_lines(self):
        c = CacheSim(1024, 2, 32)
        h, m = c.access(0, 64)  # exactly two lines
        assert (h, m) == (0, 2)
        h, m = c.access(16, 32)  # straddles lines 0 and 1, both resident
        assert (h, m) == (2, 0)

    def test_zero_byte_access_is_noop(self):
        c = CacheSim(1024, 2, 32)
        assert c.access(0, 0) == (0, 0)
        assert c.accesses == 0

    def test_reset(self):
        c = CacheSim(1024, 2, 32)
        c.access(0, 128)
        c.reset()
        assert c.accesses == 0
        assert not c.access_line(0)  # cold again

    def test_run_trace(self):
        c = CacheSim(1024, 2, 32)
        h, m = c.run_trace([(0, 32), (0, 32), (32, 32)])
        assert (h, m) == (1, 2)

    def test_miss_rate(self):
        c = CacheSim(1024, 2, 32)
        assert c.miss_rate == 0.0
        c.access(0, 32)
        c.access(0, 32)
        assert c.miss_rate == pytest.approx(0.5)


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 20),
                st.integers(min_value=1, max_value=256),
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses_equals_line_touches(self, trace):
        c = CacheSim(2048, 4, 32)
        expected = sum(
            (addr + nb - 1) // 32 - addr // 32 + 1 for addr, nb in trace
        )
        c.run_trace(trace)
        assert c.hits + c.misses == expected

    @given(
        st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300)
    )
    @settings(max_examples=40, deadline=None)
    def test_small_working_set_always_fits(self, lines):
        """A working set smaller than one way-set worth of lines never
        conflicts in a fully covering cache."""
        c = CacheSim(64 * 32, 64, 32)  # fully associative, 64 lines
        for line in lines:
            c.access_line(line)
        # Each distinct line misses exactly once (compulsory misses only).
        assert c.misses == len(set(lines))

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_higher_associativity_never_misses_more(self, lines):
        """LRU is a stack algorithm: with the same set mapping, adding ways
        can only remove misses (the inclusion property)."""
        small = CacheSim(1024, 4, 32)  # 8 sets, 4 ways
        big = CacheSim(4096, 16, 32)  # 8 sets, 16 ways — same mapping
        for line in lines:
            small.access_line(line)
            big.access_line(line)
        assert big.misses <= small.misses
