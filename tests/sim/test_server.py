"""Server CPU model: the client/server asymmetry."""

from __future__ import annotations

import pytest

from repro.constants import DEFAULT_SERVER
from repro.sim.cpu import ClientCPU
from repro.sim.server import ServerCost, ServerCPU
from repro.sim.trace import OpCounter

from tests.sim.test_cpu import _range_counter


class TestServerCycles:
    def test_far_cheaper_than_client_on_refinement(self):
        """Native FP + superscalar issue: the server runs the same counter
        at a small fraction of the client's cycles.  This asymmetry is the
        premise of offloading refinement."""
        server = ServerCPU()
        client = ClientCPU()
        counter = _range_counter(20, 200)
        s = server.compute(counter)
        counter2 = _range_counter(20, 200)
        c = client.compute(counter2)
        assert s.cycles < c.cycles / 20

    def test_wait_cycles_much_smaller_than_transfer(self):
        """At 1 GHz the server's w2 converts to few client cycles — the
        paper's figures show negligible wait bars."""
        server = ServerCPU()
        s = server.compute(_range_counter(20, 200))
        wait_seconds = server.seconds(s.cycles)
        assert wait_seconds < 0.001  # sub-millisecond per query

    def test_ipc_scaling(self):
        low_ipc = ServerCPU(config=DEFAULT_SERVER.__class__(effective_ipc=1.0))
        high_ipc = ServerCPU(config=DEFAULT_SERVER.__class__(effective_ipc=4.0))
        c1 = low_ipc.compute(_range_counter(trace=False))
        c2 = high_ipc.compute(_range_counter(trace=False))
        assert c2.cycles == pytest.approx(c1.cycles / 4.0, rel=0.2)

    def test_zero_counter(self):
        assert ServerCPU().compute(OpCounter()).cycles == 0

    def test_cache_warmup(self):
        server = ServerCPU()
        first = server.compute(_range_counter())
        second = server.compute(_range_counter())
        assert second.l1_misses < first.l1_misses
        server.reset_cache()
        third = server.compute(_range_counter())
        assert third.l1_misses == first.l1_misses

    def test_traceless_fallback(self):
        cost = ServerCPU().compute(_range_counter(trace=False))
        assert cost.l1_accesses > 0


class TestServerCostAlgebra:
    def test_add_and_zero(self):
        a = ServerCost(1, 2, 3, 4)
        b = ServerCost(10, 20, 30, 40)
        assert a + b == ServerCost(11, 22, 33, 44)
        assert a + ServerCost.zero() == a

    def test_seconds(self):
        assert ServerCPU().seconds(1e9) == pytest.approx(1.0)
