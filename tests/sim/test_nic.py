"""NIC power-state machine: transitions, ledger conservation, Table 2."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import DEFAULT_NIC_POWER
from repro.sim.nic import NIC, NICState


class TestTable2:
    def test_published_powers(self):
        t = DEFAULT_NIC_POWER
        assert t.transmit_1km_w == pytest.approx(3.0891)
        assert t.transmit_100m_w == pytest.approx(1.0891)
        assert t.receive_w == pytest.approx(0.165)
        assert t.idle_w == pytest.approx(0.100)
        assert t.sleep_w == pytest.approx(0.0198)
        assert t.sleep_exit_latency_s == pytest.approx(470e-6)


class TestStateMachine:
    def test_starts_asleep(self):
        assert NIC().state is NICState.SLEEP

    def test_transmit_wakes_and_charges_exit_latency(self):
        nic = NIC(distance_m=1000.0)
        elapsed = nic.transmit(2_000_000, 2_000_000)
        assert elapsed == pytest.approx(1.0 + 470e-6)
        assert nic.sleep_exits == 1
        # Exit latency is billed at idle power.
        assert nic.energy_j[NICState.IDLE] == pytest.approx(0.100 * 470e-6)
        assert nic.energy_j[NICState.TRANSMIT] == pytest.approx(3.0891, rel=1e-3)

    def test_no_exit_latency_when_already_awake(self):
        nic = NIC()
        nic.idle(0.1)
        assert nic.sleep_exits == 1
        t = nic.transmit(1000, 1e6)
        assert t == pytest.approx(0.001)
        assert nic.sleep_exits == 1

    def test_receive_from_sleep_raises(self):
        nic = NIC()
        with pytest.raises(RuntimeError):
            nic.receive(1000, 1e6)

    def test_receive_after_idle(self):
        nic = NIC()
        nic.idle(0.5)
        t = nic.receive(165_000, 1_000_000)
        assert t == pytest.approx(0.165)
        assert nic.energy_j[NICState.RECEIVE] == pytest.approx(0.165 * 0.165)

    def test_receive_power_independent_of_distance(self):
        near = NIC(distance_m=100.0)
        far = NIC(distance_m=1000.0)
        for nic in (near, far):
            nic.idle(0.0)
            nic.receive(1_000_000, 1_000_000)
        assert near.energy_j[NICState.RECEIVE] == pytest.approx(
            far.energy_j[NICState.RECEIVE]
        )

    def test_transmit_power_depends_on_distance(self):
        near = NIC(distance_m=100.0)
        far = NIC(distance_m=1000.0)
        near.transmit(1_000_000, 1_000_000)
        far.transmit(1_000_000, 1_000_000)
        ratio = far.energy_j[NICState.TRANSMIT] / near.energy_j[NICState.TRANSMIT]
        assert ratio == pytest.approx(3.0891 / 1.0891, rel=1e-6)

    def test_invalid_arguments_raise(self):
        nic = NIC()
        with pytest.raises(ValueError):
            nic.transmit(-1, 1e6)
        with pytest.raises(ValueError):
            nic.transmit(100, 0)
        with pytest.raises(ValueError):
            nic.sleep(-1)


class TestLedgerConservation:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["tx", "rx", "idle", "sleep"]),
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_energy_equals_power_times_time(self, ops):
        """Over any activity sequence: per-state energy = power x time, and
        total elapsed equals the sum of state times."""
        nic = NIC(distance_m=1000.0)
        elapsed = 0.0
        for kind, amount in ops:
            if kind == "tx":
                elapsed += nic.transmit(amount * 1e6, 2e6)
            elif kind == "rx":
                if nic.state is NICState.SLEEP:
                    elapsed += nic.idle(0.0)
                elapsed += nic.receive(amount * 1e6, 2e6)
            elif kind == "idle":
                elapsed += nic.idle(amount)
            else:
                elapsed += nic.sleep(amount)
        assert nic.total_time_s() == pytest.approx(elapsed, rel=1e-9, abs=1e-12)
        powers = {
            NICState.TRANSMIT: nic.radio.transmit_power_w(1000.0),
            NICState.RECEIVE: nic.power_table.receive_w,
            NICState.IDLE: nic.power_table.idle_w,
            NICState.SLEEP: nic.power_table.sleep_w,
        }
        for state, p in powers.items():
            assert nic.energy_j[state] == pytest.approx(
                p * nic.time_s[state], rel=1e-9, abs=1e-12
            )
