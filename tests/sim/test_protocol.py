"""TCP/IP packetization: framing, byte conservation, transfer timing."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import DEFAULT_NETWORK, NetworkConfig
from repro.sim.protocol import packetize, protocol_instructions, transfer_seconds


class TestPacketize:
    def test_empty_payload_is_one_frame(self):
        msg = packetize(0)
        assert msg.n_frames == 1
        assert msg.payload_bytes == 0
        assert msg.wire_bytes == msg.header_bytes

    def test_single_frame(self):
        net = DEFAULT_NETWORK
        cap = net.mtu_bytes - net.tcp_header_bytes - net.ip_header_bytes
        msg = packetize(cap)
        assert msg.n_frames == 1

    def test_boundary_rolls_to_second_frame(self):
        net = DEFAULT_NETWORK
        cap = net.mtu_bytes - net.tcp_header_bytes - net.ip_header_bytes
        assert packetize(cap + 1).n_frames == 2

    def test_negative_payload_raises(self):
        with pytest.raises(ValueError):
            packetize(-1)

    def test_mtu_too_small_raises(self):
        net = NetworkConfig(mtu_bytes=30)
        with pytest.raises(ValueError):
            packetize(100, net)

    @given(st.integers(min_value=0, max_value=5_000_000))
    @settings(max_examples=60, deadline=None)
    def test_byte_conservation(self, payload):
        """wire = payload + frames x per-frame-overhead, exactly."""
        net = DEFAULT_NETWORK
        msg = packetize(payload, net)
        per_frame = (
            net.tcp_header_bytes + net.ip_header_bytes + net.link_header_bytes
        )
        cap = net.mtu_bytes - net.tcp_header_bytes - net.ip_header_bytes
        assert msg.n_frames == max(1, math.ceil(payload / cap))
        assert msg.header_bytes == msg.n_frames * per_frame
        assert msg.wire_bytes == payload + msg.header_bytes
        assert msg.wire_bits == msg.wire_bytes * 8

    @given(
        st.integers(min_value=0, max_value=1_000_000),
        st.integers(min_value=0, max_value=1_000_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_payload(self, a, b):
        small, large = sorted((a, b))
        assert packetize(small).wire_bytes <= packetize(large).wire_bytes


class TestTransfer:
    def test_transfer_time(self):
        msg = packetize(250_000)
        # wire bits / bandwidth
        assert transfer_seconds(msg, 2_000_000) == pytest.approx(
            msg.wire_bits / 2_000_000
        )

    def test_higher_bandwidth_is_faster(self):
        msg = packetize(100_000)
        assert transfer_seconds(msg, 11e6) < transfer_seconds(msg, 2e6)

    def test_zero_bandwidth_raises(self):
        with pytest.raises(ValueError):
            transfer_seconds(packetize(10), 0)


class TestProtocolInstructions:
    def test_fixed_floor_for_empty_message(self):
        net = DEFAULT_NETWORK
        instr = protocol_instructions(packetize(0, net), net)
        assert instr == net.per_message_instructions + net.per_frame_instructions

    def test_scales_with_frames_and_bytes(self):
        net = DEFAULT_NETWORK
        small = protocol_instructions(packetize(100, net), net)
        big = protocol_instructions(packetize(100_000, net), net)
        assert big > small
        # Per-byte component present:
        assert big - small >= (100_000 - 100) * net.per_byte_instructions
