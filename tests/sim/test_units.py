"""Unit-conversion helpers."""

from __future__ import annotations

import pytest

from repro.sim import units as u


class TestConversions:
    def test_bandwidth(self):
        assert u.mbps_to_bps(2) == 2_000_000
        assert u.bps_to_mbps(11_000_000) == 11

    def test_clock(self):
        assert u.mhz_to_hz(125) == 125_000_000
        assert u.hz_to_mhz(1_000_000_000) == 1000

    def test_power(self):
        assert u.mw_to_w(3089.1) == pytest.approx(3.0891)
        assert u.w_to_mw(0.165) == pytest.approx(165)

    def test_time(self):
        assert u.us_to_s(470) == pytest.approx(470e-6)
        assert u.s_to_us(0.001) == pytest.approx(1000)

    def test_bits_bytes(self):
        assert u.bytes_to_bits(1500) == 12_000
        assert u.bits_to_bytes(8) == 1

    def test_roundtrips(self):
        assert u.bps_to_mbps(u.mbps_to_bps(7.5)) == pytest.approx(7.5)
        assert u.bits_to_bytes(u.bytes_to_bits(123)) == 123


class TestCyclesTime:
    def test_cycles_to_seconds(self):
        assert u.cycles_to_seconds(125_000_000, 125e6) == pytest.approx(1.0)

    def test_seconds_to_cycles(self):
        assert u.seconds_to_cycles(2.0, 1e9) == pytest.approx(2e9)

    def test_zero_clock_raises(self):
        with pytest.raises(ValueError):
            u.cycles_to_seconds(100, 0)
        with pytest.raises(ValueError):
            u.seconds_to_cycles(1, -1)


class TestJoules:
    def test_energy(self):
        assert u.joules(3.0891, 2.0) == pytest.approx(6.1782)

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError):
            u.joules(1.0, -0.1)
