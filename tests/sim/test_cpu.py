"""Client CPU cost/energy model."""

from __future__ import annotations

import pytest

from repro.constants import DEFAULT_CLIENT, DEFAULT_COSTS, CostModel
from repro.sim.cpu import ClientCPU, ComputeCost, instruction_counts
from repro.sim.protocol import packetize
from repro.sim.trace import REGION_DATA, REGION_INDEX, OpCounter


def _range_counter(n_nodes=10, n_cand=50, trace=True) -> OpCounter:
    c = OpCounter(record_trace=trace)
    for i in range(n_nodes):
        c.visit_node(i, 508)
    c.mbr_tests = n_nodes * 25
    c.entries_scanned = n_cand
    for i in range(n_cand):
        c.refine_candidate(i, 76)
    c.range_refine_tests = n_cand
    c.results_produced = n_cand
    return c


class TestInstructionCounts:
    def test_zero_counter(self):
        int_i, fp = instruction_counts(OpCounter(), DEFAULT_COSTS)
        assert int_i == 0 and fp == 0

    def test_linear_in_counts(self):
        a = _range_counter(10, 50)
        b = _range_counter(20, 100)
        ia, fa = instruction_counts(a, DEFAULT_COSTS)
        ib, fb = instruction_counts(b, DEFAULT_COSTS)
        assert ib == pytest.approx(2 * ia)
        assert fb == pytest.approx(2 * fa)

    def test_query_kind_pricing_differs(self):
        """A range refinement test costs more FP than a point test."""
        pt = OpCounter()
        pt.point_refine_tests = 100
        rg = OpCounter()
        rg.range_refine_tests = 100
        _, fp_pt = instruction_counts(pt, DEFAULT_COSTS)
        _, fp_rg = instruction_counts(rg, DEFAULT_COSTS)
        assert fp_rg > fp_pt


class TestCompute:
    def test_fp_emulation_dominates(self):
        """The client's software-FP factor must make refinement the bulk of
        the cycles — the asymmetry the paper's partitioning exploits."""
        cpu = ClientCPU()
        counter = _range_counter()
        int_i, fp = instruction_counts(counter, DEFAULT_COSTS)
        cost = cpu.compute(counter)
        assert cost.instructions == pytest.approx(
            int_i + fp * DEFAULT_COSTS.client_fp_emulation_cycles
        )
        assert fp * DEFAULT_COSTS.client_fp_emulation_cycles > int_i

    def test_cycles_include_miss_stalls(self):
        cpu = ClientCPU()
        cost = cpu.compute(_range_counter())
        assert cost.cycles == pytest.approx(
            cost.instructions
            + cost.dcache_misses * DEFAULT_CLIENT.memory_latency_cycles
        )

    def test_cache_warmup_reduces_cost(self):
        """Replaying the same trace twice: the second pass hits."""
        cpu = ClientCPU()
        first = cpu.compute(_range_counter())
        second = cpu.compute(_range_counter())
        assert second.dcache_misses < first.dcache_misses
        assert second.cycles < first.cycles
        assert second.energy_j < first.energy_j

    def test_reset_cache_restores_cold_cost(self):
        cpu = ClientCPU()
        first = cpu.compute(_range_counter())
        cpu.compute(_range_counter())
        cpu.reset_cache()
        third = cpu.compute(_range_counter())
        assert third.dcache_misses == first.dcache_misses

    def test_traceless_counter_uses_fallback(self):
        cpu = ClientCPU()
        cost = cpu.compute(_range_counter(trace=False))
        assert cost.dcache_accesses > 0
        assert cost.cycles > 0

    def test_energy_positive_and_composed(self):
        cpu = ClientCPU()
        cost = cpu.compute(_range_counter())
        floor = (
            cost.cycles * DEFAULT_COSTS.energy_per_cycle_j
            + cost.instructions * DEFAULT_COSTS.energy_per_icache_access_j
        )
        assert cost.energy_j >= floor

    def test_zero_counter_costs_nothing(self):
        cpu = ClientCPU()
        cost = cpu.compute(OpCounter())
        assert cost.cycles == 0
        assert cost.energy_j == 0

    def test_implied_power_plausible(self):
        """Average compute power should be within 3x of the nominal figure
        the analytic model uses (keeps the two models consistent)."""
        cpu = ClientCPU()
        cost = cpu.compute(_range_counter(50, 400))
        seconds = cost.cycles / cpu.clock_hz
        implied_w = cost.energy_j / seconds
        nominal = DEFAULT_CLIENT.nominal_power_w
        assert nominal / 3 < implied_w < nominal * 3


class TestProtocolPricing:
    def test_scales_with_payload(self):
        cpu = ClientCPU()
        small = cpu.protocol(packetize(100))
        big = cpu.protocol(packetize(100_000))
        assert big.cycles > small.cycles
        assert big.energy_j > small.energy_j

    def test_deterministic_and_stateless(self):
        cpu = ClientCPU()
        a = cpu.protocol(packetize(50_000))
        b = cpu.protocol(packetize(50_000))
        assert a == b


class TestBlockedEnergy:
    def test_lowpower_below_busywait(self):
        cpu = ClientCPU()
        assert cpu.blocked_energy_j(1.0) < cpu.blocked_energy_j(1.0, busy_wait=True)

    def test_busywait_is_nominal_power(self):
        cpu = ClientCPU()
        assert cpu.blocked_energy_j(2.0, busy_wait=True) == pytest.approx(
            2.0 * DEFAULT_CLIENT.nominal_power_w
        )

    def test_lowpower_fraction(self):
        cpu = ClientCPU()
        assert cpu.blocked_energy_j(1.0) == pytest.approx(
            DEFAULT_CLIENT.nominal_power_w * DEFAULT_CLIENT.lowpower_fraction
        )

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError):
            ClientCPU().blocked_energy_j(-1.0)


class TestClockScaling:
    def test_seconds_inverse_to_clock(self):
        from repro.constants import MHZ

        slow = ClientCPU(config=DEFAULT_CLIENT.with_clock(125 * MHZ))
        fast = ClientCPU(config=DEFAULT_CLIENT.with_clock(500 * MHZ))
        assert slow.seconds(1e8) == pytest.approx(4 * fast.seconds(1e8))

    def test_cycles_unchanged_by_clock(self):
        """Cycle counts are clock-invariant (only their duration changes) —
        the paper's Figure 8 relies on this."""
        from repro.constants import MHZ

        slow = ClientCPU(config=DEFAULT_CLIENT.with_clock(125 * MHZ))
        fast = ClientCPU(config=DEFAULT_CLIENT.with_clock(500 * MHZ))
        assert (
            slow.compute(_range_counter()).cycles
            == fast.compute(_range_counter()).cycles
        )


class TestComputeCostAlgebra:
    def test_add(self):
        a = ComputeCost(1, 2, 3.0, 4, 5)
        b = ComputeCost(10, 20, 30.0, 40, 50)
        s = a + b
        assert (s.instructions, s.cycles, s.energy_j) == (11, 22, 33.0)
        assert (s.dcache_accesses, s.dcache_misses) == (44, 55)

    def test_zero_identity(self):
        a = ComputeCost(1, 2, 3.0, 4, 5)
        assert a + ComputeCost.zero() == a
