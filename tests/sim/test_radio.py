"""Distance-dependent transmit power model."""

from __future__ import annotations

import pytest

from repro.sim.radio import RadioModel


class TestAnchors:
    def test_exact_at_100m(self):
        assert RadioModel().transmit_power_w(100.0) == pytest.approx(1.0891)

    def test_exact_at_1km(self):
        assert RadioModel().transmit_power_w(1000.0) == pytest.approx(3.0891)

    def test_anchors_exact_for_any_exponent(self):
        for alpha in (1.0, 2.0, 3.5, 4.0):
            m = RadioModel(path_loss_exponent=alpha)
            assert m.transmit_power_w(100.0) == pytest.approx(1.0891)
            assert m.transmit_power_w(1000.0) == pytest.approx(3.0891)


class TestShape:
    def test_monotone_increasing(self):
        m = RadioModel()
        samples = [m.transmit_power_w(d) for d in (10, 50, 100, 300, 1000, 2000)]
        assert samples == sorted(samples)

    def test_electronics_floor_at_short_range(self):
        """Very short range power approaches the electronics term, staying
        positive and below the 100 m anchor."""
        p = RadioModel().transmit_power_w(1.0)
        assert 0 < p < 1.0891

    def test_nonpositive_distance_raises(self):
        with pytest.raises(ValueError):
            RadioModel().transmit_power_w(0.0)
        with pytest.raises(ValueError):
            RadioModel().transmit_power_w(-5.0)

    def test_bad_anchor_order_raises(self):
        m = RadioModel(near_anchor_m=1000.0, far_anchor_m=100.0)
        with pytest.raises(ValueError):
            m.transmit_power_w(500.0)

    def test_near_tripling_from_100m_to_1km(self):
        """The paper: 'changing the transmission distance from 100 meters to
        1 kilometer can nearly triple the transmitter power'."""
        m = RadioModel()
        ratio = m.transmit_power_w(1000.0) / m.transmit_power_w(100.0)
        assert 2.5 < ratio < 3.0
