"""Configuration tables: published values and internal consistency."""

from __future__ import annotations

import pytest

from repro import constants as C


class TestSweepGrids:
    def test_bandwidths_match_paper(self):
        assert C.BANDWIDTHS_MBPS == (2.0, 4.0, 6.0, 8.0, 11.0)

    def test_clock_ratios_match_paper(self):
        assert C.CLIENT_CLOCK_RATIOS == (1 / 8, 1 / 4, 1 / 2, 1 / 1)

    def test_distances_match_paper(self):
        assert C.DISTANCES_M == (100.0, 1000.0)

    def test_buffers_match_paper(self):
        assert C.BUFFER_SIZES_BYTES == (1 << 20, 2 << 20)


class TestClientConfig:
    def test_table3_values(self):
        c = C.DEFAULT_CLIENT
        assert c.clock_hz == 125e6  # MhzS / 8
        assert c.icache_bytes == 16 * 1024
        assert c.dcache_bytes == 8 * 1024
        assert c.cache_assoc == 4
        assert c.cache_line_bytes == 32
        assert c.memory_latency_cycles == 100
        assert c.memory_bytes == 32 << 20
        assert c.supply_voltage == 3.3

    def test_power_scales_with_clock(self):
        c = C.DEFAULT_CLIENT
        assert c.power_at(250e6) == pytest.approx(2 * c.power_at(125e6))

    def test_with_clock_preserves_everything_else(self):
        c = C.DEFAULT_CLIENT.with_clock(500e6)
        assert c.clock_hz == 500e6
        assert c.dcache_bytes == C.DEFAULT_CLIENT.dcache_bytes

    def test_lowpower_fraction_in_unit_interval(self):
        assert 0 < C.DEFAULT_CLIENT.lowpower_fraction < 1


class TestServerConfig:
    def test_table4_values(self):
        s = C.DEFAULT_SERVER
        assert s.clock_hz == 1e9
        assert s.issue_width == 4
        assert s.memory_bytes == 128 << 20
        assert 1.0 <= s.effective_ipc <= s.issue_width

    def test_client_server_clock_ratio_default(self):
        assert C.DEFAULT_SERVER.clock_hz / C.DEFAULT_CLIENT.clock_hz == 8.0


class TestCostModel:
    def test_fp_asymmetry(self):
        m = C.DEFAULT_COSTS
        assert m.client_fp_emulation_cycles >= 50 * m.server_fp_cycles

    def test_refinement_costlier_than_filtering_per_unit(self):
        """One exact range test must dwarf one MBR test on the client —
        the premise of offloading refinement first."""
        m = C.DEFAULT_COSTS
        refine = m.instr_per_refine_setup + (
            m.fp_per_range_refine * m.client_fp_emulation_cycles
        )
        filt = m.instr_per_mbr_test + m.fp_per_mbr_test * m.client_fp_emulation_cycles
        assert refine > 50 * filt

    def test_byte_model_ordering(self):
        m = C.DEFAULT_COSTS
        assert m.object_id_bytes < m.index_entry_bytes < m.segment_record_bytes

    def test_energies_positive(self):
        m = C.DEFAULT_COSTS
        assert min(
            m.energy_per_cycle_j,
            m.energy_per_icache_access_j,
            m.energy_per_dcache_access_j,
            m.energy_per_memory_access_j,
        ) > 0
        # A DRAM access must cost far more than a cache hit.
        assert m.energy_per_memory_access_j > 10 * m.energy_per_dcache_access_j

    def test_fp_cycle_helpers(self):
        m = C.DEFAULT_COSTS
        assert m.client_cycles_for_fp(10) == 10 * m.client_fp_emulation_cycles
        assert m.server_cycles_for_fp(10) == 10 * m.server_fp_cycles


class TestNetworkConfig:
    def test_mtu_fits_headers(self):
        n = C.DEFAULT_NETWORK
        assert n.mtu_bytes > n.tcp_header_bytes + n.ip_header_bytes

    def test_default_operating_point(self):
        n = C.DEFAULT_NETWORK
        assert n.bandwidth_bps == 2 * C.MBPS
        assert n.distance_m == 1000.0
