"""Energy/cycle breakdown records."""

from __future__ import annotations

import pytest

from repro.sim.metrics import CycleBreakdown, EnergyBreakdown


class TestEnergyBreakdown:
    def test_total(self):
        e = EnergyBreakdown(1, 2, 3, 4, 5)
        assert e.total() == 15
        assert e.nic_total() == 14

    def test_add(self):
        a = EnergyBreakdown(processor=1.0, nic_tx=2.0)
        b = EnergyBreakdown(processor=0.5, nic_rx=3.0)
        s = a + b
        assert s.processor == 1.5
        assert s.nic_tx == 2.0
        assert s.nic_rx == 3.0
        assert s.total() == pytest.approx(6.5)

    def test_scaled(self):
        e = EnergyBreakdown(1, 2, 3, 4, 5).scaled(0.5)
        assert e.total() == pytest.approx(7.5)

    def test_default_is_zero(self):
        assert EnergyBreakdown().total() == 0.0

    def test_as_dict_keys(self):
        d = EnergyBreakdown().as_dict()
        assert set(d) == {"processor", "nic_tx", "nic_rx", "nic_idle", "nic_sleep"}


class TestCycleBreakdown:
    def test_total(self):
        c = CycleBreakdown(1, 2, 3, 4)
        assert c.total() == 10

    def test_add_and_scale(self):
        a = CycleBreakdown(processor=100, wait=50)
        b = CycleBreakdown(nic_tx=25)
        assert (a + b).total() == 175
        assert a.scaled(2).total() == 300

    def test_seconds(self):
        c = CycleBreakdown(processor=125_000_000)
        assert c.seconds(125e6) == pytest.approx(1.0)

    def test_seconds_invalid_clock(self):
        with pytest.raises(ValueError):
            CycleBreakdown().seconds(0)

    def test_as_dict_keys(self):
        assert set(CycleBreakdown().as_dict()) == {
            "processor",
            "nic_tx",
            "nic_rx",
            "wait",
        }
