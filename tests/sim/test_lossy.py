"""Lossy channel: closed forms, the seeded sampler, and validation.

The closed forms in :func:`repro.sim.lossy.expected_retx` are what both
pricing engines charge for a lossy link, so they are pinned three ways:
against hand-derived values for every branch, against a brute-force
numeric summation of the defining series, and against the sample mean of
:class:`repro.sim.lossy.LossyChannel` — the very process the Monte-Carlo
oracle replays.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import NetworkConfig
from repro.sim.lossy import LossyChannel, RetxExpectation, expected_retx
from repro.sim.metrics import LossStats
from repro.sim.nic import NIC, NICState
from repro.sim.protocol import packetize, transfer_seconds


def net(**kw) -> NetworkConfig:
    return NetworkConfig(**kw)


def brute_force_dwell(p: float, q: float, t0: float, g: float, cap: float,
                      terms: int = 4096) -> float:
    """Directly sum E[D] = sum_i p * q**i * min(t0 * g**i, cap)."""
    total = 0.0
    weight = p
    b = t0
    for _ in range(terms):
        total += weight * min(b, cap)
        weight *= q
        if b < cap:  # stop growing once clamped, else g**i overflows
            b *= g
    return total


class TestClosedForms:
    def test_ideal_channel_is_exactly_zero(self):
        r = expected_retx(net(loss_rate=0.0))
        assert r.retx_per_frame == 0.0
        assert r.backoff_per_frame_s == 0.0
        assert r.lossless

    def test_bernoulli_retx_is_p_over_1_minus_p(self):
        r = expected_retx(net(loss_rate=0.2))
        assert r.retx_per_frame == pytest.approx(0.2 / 0.8)
        assert not r.lossless

    def test_burst_retx_is_p_times_mean_burst_length(self):
        # E[R] = p / (1 - q) with q = 1 - 1/L collapses to p * L.
        r = expected_retx(net(loss_rate=0.1, loss_burst_frames=5.0))
        assert r.retx_per_frame == pytest.approx(0.5)

    def test_burst_length_one_is_special_case(self):
        # L = 1 means q = 0: every retransmission succeeds, so exactly
        # p retransmissions and p * t0 dwell per frame.
        r = expected_retx(net(loss_rate=0.3, loss_burst_frames=1.0))
        assert r.retx_per_frame == pytest.approx(0.3)
        assert r.backoff_per_frame_s == pytest.approx(0.3 * 0.02)

    def test_constant_timeout_dwell(self):
        # g = 1: every retry waits t0, so E[D] = p * t0 / (1 - q).
        r = expected_retx(
            net(loss_rate=0.25, retx_timeout_s=0.04, retx_backoff=1.0)
        )
        assert r.backoff_per_frame_s == pytest.approx(0.25 * 0.04 / 0.75)

    def test_timeout_born_capped(self):
        # t0 >= cap: the min() clamps every term to the cap.
        r = expected_retx(
            net(loss_rate=0.25, retx_timeout_s=2.0, retx_timeout_cap_s=0.5)
        )
        assert r.backoff_per_frame_s == pytest.approx(0.25 * 0.5 / 0.75)

    def test_zero_timeout_means_zero_dwell(self):
        r = expected_retx(net(loss_rate=0.5, retx_timeout_s=0.0))
        assert r.retx_per_frame == pytest.approx(1.0)
        assert r.backoff_per_frame_s == 0.0

    def test_zero_cap_means_zero_dwell(self):
        r = expected_retx(net(loss_rate=0.5, retx_timeout_cap_s=0.0))
        assert r.backoff_per_frame_s == 0.0

    def test_general_dwell_matches_brute_force_series(self):
        cfg = net(
            loss_rate=0.3,
            retx_timeout_s=0.02,
            retx_backoff=2.0,
            retx_timeout_cap_s=1.0,
        )
        r = expected_retx(cfg)
        assert r.backoff_per_frame_s == pytest.approx(
            brute_force_dwell(0.3, 0.3, 0.02, 2.0, 1.0), rel=1e-12
        )

    @given(
        p=st.floats(0.001, 0.95),
        burst=st.one_of(st.none(), st.floats(1.0, 20.0)),
        t0=st.floats(0.0, 0.5),
        g=st.floats(1.0, 4.0),
        cap=st.floats(0.0, 2.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_dwell_always_matches_series(self, p, burst, t0, g, cap):
        cfg = net(
            loss_rate=p,
            loss_burst_frames=burst,
            retx_timeout_s=t0,
            retx_backoff=g,
            retx_timeout_cap_s=cap,
        )
        q = p if burst is None else 1.0 - 1.0 / burst
        r = expected_retx(cfg)
        assert r.retx_per_frame == pytest.approx(p / (1.0 - q), rel=1e-12)
        want = brute_force_dwell(p, q, t0, g, cap, terms=8192)
        assert r.backoff_per_frame_s == pytest.approx(
            want, rel=1e-9, abs=1e-15
        )


class TestLossyChannelSampler:
    @pytest.mark.parametrize(
        "cfg",
        [
            net(loss_rate=0.1),
            net(loss_rate=0.3, retx_backoff=1.0),
            net(loss_rate=0.2, loss_burst_frames=5.0),
            net(loss_rate=0.5, retx_timeout_s=2.0, retx_timeout_cap_s=0.5),
        ],
        ids=["bernoulli", "constant-timeout", "burst", "born-capped"],
    )
    def test_sample_mean_converges_to_closed_forms(self, cfg):
        n = 60_000
        chan = LossyChannel(cfg, np.random.default_rng(7))
        for _ in range(n):
            chan.frame_attempts()
        want = expected_retx(cfg)
        assert chan.frames_sent == n
        assert chan.retransmissions / n == pytest.approx(
            want.retx_per_frame, rel=0.05
        )
        assert chan.backoff_s / n == pytest.approx(
            want.backoff_per_frame_s, rel=0.05
        )

    def test_ideal_channel_never_retransmits(self):
        chan = LossyChannel(net(), np.random.default_rng(0))
        for _ in range(1000):
            assert chan.frame_attempts() == (0, 0.0)
        assert chan.retransmissions == 0
        assert chan.backoff_s == 0.0

    def test_same_seed_same_samples(self):
        cfg = net(loss_rate=0.4)
        a = LossyChannel(cfg, np.random.default_rng(42))
        b = LossyChannel(cfg, np.random.default_rng(42))
        assert [a.frame_attempts() for _ in range(500)] == [
            b.frame_attempts() for _ in range(500)
        ]

    def test_backoff_dwell_grows_then_caps(self):
        # Force three consecutive losses: dwell must be t0 + t0*g + cap.
        cfg = net(
            loss_rate=0.9,
            retx_timeout_s=0.1,
            retx_backoff=4.0,
            retx_timeout_cap_s=0.5,
        )

        class Rigged:
            def __init__(self, draws):
                self.draws = iter(draws)

            def random(self):
                return next(self.draws)

        chan = LossyChannel(cfg, Rigged([0.0, 0.0, 0.0, 1.0]))
        n, dwell = chan.frame_attempts()
        assert n == 3
        assert dwell == pytest.approx(0.1 + 0.4 + 0.5)


class TestValidation:
    @pytest.mark.parametrize("rate", [-0.1, 1.0, 1.5])
    def test_loss_rate_must_be_a_probability_below_one(self, rate):
        with pytest.raises(ValueError, match="loss_rate"):
            net(loss_rate=rate)

    @pytest.mark.parametrize("burst", [0.0, 0.5, -3.0, float("inf"), float("nan")])
    def test_burst_length_must_be_finite_and_at_least_one(self, burst):
        with pytest.raises(ValueError, match="loss_burst_frames"):
            net(loss_rate=0.1, loss_burst_frames=burst)

    @pytest.mark.parametrize("field", ["retx_timeout_s", "retx_timeout_cap_s"])
    def test_timeouts_must_be_nonnegative(self, field):
        with pytest.raises(ValueError, match=field):
            net(**{field: -0.01})

    def test_backoff_factor_must_not_shrink(self):
        with pytest.raises(ValueError, match="retx_backoff"):
            net(retx_backoff=0.5)

    @pytest.mark.parametrize("bw", [0.0, -1.0])
    def test_bandwidth_must_be_positive(self, bw):
        with pytest.raises(ValueError, match="bandwidth_bps"):
            net(bandwidth_bps=bw)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError, match="distance_m"):
            net(distance_m=-5.0)


class TestNICRetransmission:
    def test_retransmit_charges_transmit_state_and_counts_frames(self):
        lossy, ideal = NIC(distance_m=1000.0), NIC(distance_m=1000.0)
        t_lossy = lossy.retransmit(1_000_000, 2_000_000, frames=3.0)
        t_ideal = ideal.transmit(1_000_000, 2_000_000)
        assert t_lossy == t_ideal
        assert lossy.energy_j == ideal.energy_j
        assert lossy.tx_retx_frames == 3.0
        assert ideal.tx_retx_frames == 0.0

    def test_rereceive_charges_receive_state_and_counts_frames(self):
        lossy, ideal = NIC(), NIC()
        lossy.idle(0.0)  # receive() requires an awake NIC
        ideal.idle(0.0)
        t_lossy = lossy.rereceive(500_000, 2_000_000, frames=2.5)
        t_ideal = ideal.receive(500_000, 2_000_000)
        assert t_lossy == t_ideal
        assert lossy.energy_j == ideal.energy_j
        assert lossy.rx_retx_frames == 2.5

    def test_backoff_is_idle_dwell_tracked_separately(self):
        lossy, ideal = NIC(), NIC()
        t_lossy = lossy.backoff(0.25)
        t_ideal = ideal.idle(0.25)
        assert t_lossy == t_ideal
        assert lossy.energy_j[NICState.IDLE] == ideal.energy_j[NICState.IDLE]
        assert lossy.backoff_s == 0.25

    @pytest.mark.parametrize("method", ["retransmit", "rereceive"])
    def test_negative_frames_rejected(self, method):
        with pytest.raises(ValueError, match="negative frame count"):
            getattr(NIC(), method)(1000, 1e6, frames=-1.0)


class TestTransferSeconds:
    def test_retx_multiplies_wire_time(self):
        msg = packetize(10_000)
        base = transfer_seconds(msg, 2_000_000)
        assert transfer_seconds(msg, 2_000_000, retx_per_frame=0.5) == (
            pytest.approx(base * 1.5)
        )

    def test_default_is_the_ideal_channel(self):
        msg = packetize(10_000)
        assert transfer_seconds(msg, 2_000_000) == transfer_seconds(
            msg, 2_000_000, retx_per_frame=0.0
        )

    def test_negative_retx_rejected(self):
        with pytest.raises(ValueError, match="retx_per_frame"):
            transfer_seconds(packetize(1), 1e6, retx_per_frame=-0.1)


class TestLossStats:
    def test_defaults_are_zero(self):
        s = LossStats()
        assert s.total_retx_frames() == 0.0
        assert s.as_dict() == {
            "retx_tx_frames": 0.0,
            "retx_rx_frames": 0.0,
            "backoff_s": 0.0,
        }

    def test_addition_is_fieldwise(self):
        a = LossStats(retx_tx_frames=1.0, retx_rx_frames=2.0, backoff_s=0.5)
        b = LossStats(retx_tx_frames=0.25, retx_rx_frames=0.75, backoff_s=1.5)
        c = a + b
        assert c == LossStats(
            retx_tx_frames=1.25, retx_rx_frames=2.75, backoff_s=2.0
        )
        assert c.total_retx_frames() == pytest.approx(4.0)
