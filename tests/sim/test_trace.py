"""Operation counters and access traces."""

from __future__ import annotations

from repro.sim.trace import REGION_DATA, REGION_INDEX, Access, OpCounter


class TestRecording:
    def test_visit_node_counts_and_traces(self):
        c = OpCounter()
        c.visit_node(7, 512)
        assert c.nodes_visited == 1
        assert c.trace == [Access(REGION_INDEX, 7, 512)]

    def test_refine_candidate(self):
        c = OpCounter()
        c.refine_candidate(42, 76)
        assert c.candidates_refined == 1
        assert c.trace == [Access(REGION_DATA, 42, 76)]

    def test_trace_disabled(self):
        c = OpCounter(record_trace=False)
        c.visit_node(7, 512)
        c.touch(REGION_DATA, 1, 76)
        assert c.nodes_visited == 1
        assert c.trace == []


class TestMerge:
    def _sample(self, k):
        c = OpCounter()
        c.nodes_visited = k
        c.mbr_tests = 2 * k
        c.results_produced = 3 * k
        c.touch(REGION_INDEX, k, 100)
        return c

    def test_merge_adds_counts_and_concatenates_traces(self):
        a, b = self._sample(1), self._sample(10)
        a.merge(b)
        assert a.nodes_visited == 11
        assert a.mbr_tests == 22
        assert a.results_produced == 33
        assert len(a.trace) == 2

    def test_merge_is_lossless_over_many(self):
        total = OpCounter()
        for k in range(1, 20):
            total.merge(self._sample(k))
        assert total.nodes_visited == sum(range(1, 20))
        assert len(total.trace) == 19

    def test_merge_into_traceless_drops_trace_only(self):
        a = OpCounter(record_trace=False)
        b = self._sample(5)
        a.merge(b)
        assert a.nodes_visited == 5
        assert a.trace == []

    def test_copy_counts_drops_trace(self):
        c = self._sample(4)
        cp = c.copy_counts()
        assert cp.nodes_visited == 4
        assert cp.trace == []
        assert cp.record_trace is False


class TestIntrospection:
    def test_counts_dict_fields(self):
        c = OpCounter()
        d = c.counts_dict()
        assert set(d) == set(OpCounter._COUNT_FIELDS)
        assert all(v == 0 for v in d.values())

    def test_total_events(self):
        c = OpCounter()
        assert c.total_events() == 0
        c.heap_ops = 3
        c.distance_evals = 2
        assert c.total_events() == 5

    def test_iter_trace_order(self):
        c = OpCounter()
        c.touch(REGION_DATA, 1, 10)
        c.touch(REGION_DATA, 2, 10)
        assert [a.object_id for a in c.iter_trace()] == [1, 2]
