"""BatchedLRU vs the scalar CacheSim — bit-for-bit differential tests.

The batched planner's cache verdicts come from
:class:`repro.sim.cache.BatchedLRU`, which replaces the per-access Python
loop with a closed-form LRU stack-distance computation (associativities up
to 4) or a generational state-matrix replay (above 4).  Both paths must
reproduce the scalar simulator's hit/miss verdicts AND final cache state
exactly, including under warm-start seeding.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.cache import BatchedLRU, CacheSim


def _scalar_reference(lines, n_sets, assoc, seed_sets=None):
    """Per-access verdicts + final state from a hand-rolled scalar LRU."""
    sets = (
        [list(s) for s in seed_sets]
        if seed_sets is not None
        else [[] for _ in range(n_sets)]
    )
    hits = np.zeros(len(lines), dtype=bool)
    for k, line in enumerate(lines):
        s = int(line) % n_sets
        tag = int(line) // n_sets
        ways = sets[s]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            hits[k] = True
        else:
            ways.append(tag)
            if len(ways) > assoc:
                ways.pop(0)
    return hits, sets


def _random_trace(rng, n, hot_lines):
    """A skewed trace: mostly a hot set, with a uniform cold tail."""
    hot = rng.integers(0, hot_lines, size=n)
    cold = rng.integers(0, hot_lines * 64, size=n)
    pick = rng.random(n) < 0.75
    return np.where(pick, hot, cold).astype(np.int64)


GEOMETRIES = [
    (16, 1),  # direct-mapped
    (64, 2),  # the client dcache shape (8KB/4way/32B -> 64 sets, but 2-way here)
    (64, 4),  # the client dcache associativity
    (256, 2),  # the server L1 shape
    (8, 3),  # odd associativity (closed-form second case)
    (8, 5),  # generational fallback
    (4, 8),  # generational fallback, deep sets
]


@pytest.mark.parametrize("n_sets,assoc", GEOMETRIES)
def test_cold_start_matches_scalar(n_sets, assoc):
    rng = np.random.default_rng(n_sets * 100 + assoc)
    batch = BatchedLRU()
    traces = [_random_trace(rng, rng.integers(1, 2000), n_sets * assoc * 2)
              for _ in range(5)]
    handles = [batch.add_stream(t, n_sets, assoc) for t in traces]
    batch.run()
    for h, t in zip(handles, traces):
        ref_hits, ref_sets = _scalar_reference(t, n_sets, assoc)
        assert np.array_equal(batch.hits_of(h), ref_hits)
        assert batch.final_sets(h) == ref_sets


@pytest.mark.parametrize("n_sets,assoc", GEOMETRIES)
def test_warm_seed_matches_scalar(n_sets, assoc):
    rng = np.random.default_rng(7000 + n_sets * 10 + assoc)
    warm = _random_trace(rng, 500, n_sets * assoc * 2)
    work = _random_trace(rng, 800, n_sets * assoc * 2)
    _, seed = _scalar_reference(warm, n_sets, assoc)

    batch = BatchedLRU()
    h = batch.add_stream(work, n_sets, assoc, seed_sets=[list(s) for s in seed])
    batch.run()
    ref_hits, ref_sets = _scalar_reference(work, n_sets, assoc, seed_sets=seed)
    assert np.array_equal(batch.hits_of(h), ref_hits)
    assert batch.final_sets(h) == ref_sets


def test_matches_cachesim_class(n_sets=64, assoc=4, line_bytes=32):
    """End-to-end against the production CacheSim, not just the reference."""
    rng = np.random.default_rng(42)
    lines = _random_trace(rng, 3000, n_sets * assoc * 2)
    sim = CacheSim(n_sets * assoc * line_bytes, assoc, line_bytes)
    scalar_hits = np.array([sim.access_line(int(l)) for l in lines])

    batch = BatchedLRU()
    h = batch.add_stream(lines, n_sets, assoc)
    batch.run()
    assert np.array_equal(batch.hits_of(h), scalar_hits)
    assert batch.final_sets(h) == sim._sets


def test_mixed_geometries_one_batch():
    """Streams with different geometries (closed-form + fallback triggers)."""
    rng = np.random.default_rng(9)
    specs = [(16, 1), (64, 4), (256, 2), (8, 3)]
    batch = BatchedLRU()
    traces = []
    for n_sets, assoc in specs:
        t = _random_trace(rng, 1200, n_sets * assoc * 2)
        traces.append((batch.add_stream(t, n_sets, assoc), t, n_sets, assoc))
    batch.run()
    for h, t, n_sets, assoc in traces:
        ref_hits, ref_sets = _scalar_reference(t, n_sets, assoc)
        assert np.array_equal(batch.hits_of(h), ref_hits)
        assert batch.final_sets(h) == ref_sets


def test_repeat_heavy_trace_dup_collapse():
    """Immediate same-line repeats (the collapse fast path) stay exact."""
    rng = np.random.default_rng(5)
    base = _random_trace(rng, 200, 64)
    lines = np.repeat(base, rng.integers(1, 6, size=len(base)))
    batch = BatchedLRU()
    h = batch.add_stream(lines, 16, 2)
    batch.run()
    ref_hits, ref_sets = _scalar_reference(lines, 16, 2)
    assert np.array_equal(batch.hits_of(h), ref_hits)
    assert batch.final_sets(h) == ref_sets


def test_empty_and_tiny_traces():
    batch = BatchedLRU()
    h0 = batch.add_stream(np.empty(0, dtype=np.int64), 16, 2)
    h1 = batch.add_stream(np.array([7]), 16, 2)
    h2 = batch.add_stream(np.array([7, 7]), 16, 2)
    batch.run()
    assert batch.hits_of(h0).size == 0
    assert np.array_equal(batch.hits_of(h1), [False])
    assert np.array_equal(batch.hits_of(h2), [False, True])


def test_api_misuse_raises():
    batch = BatchedLRU()
    batch.add_stream(np.array([1, 2, 3]), 16, 2)
    batch.run()
    with pytest.raises(RuntimeError):
        batch.run()
    with pytest.raises(RuntimeError):
        batch.add_stream(np.array([1]), 16, 2)
    with pytest.raises(ValueError):
        BatchedLRU().add_stream(np.array([1]), 0, 2)
    with pytest.raises(ValueError):
        BatchedLRU().add_stream(np.array([1]), 16, 2, seed_sets=[[]])
