"""Golden-file regression tests for the figure generators.

The fig5 golden was captured from the pre-lossy-link code, so its test is
the PR's headline acceptance criterion made executable: with ``loss_rate=0``
(every figure's default) the priced energy, cycles and wall-clock must
equal the pre-loss values **exactly** — not to a tolerance.  JSON float
round-tripping is lossless (shortest-repr), so ``==`` on the parsed
structures is bit-for-bit on every number.

The loss-sweep golden pins the new lossy-channel figure the same way, so
any future change to the retransmission math is a conscious regeneration,
not an accident.  To regenerate after an intentional model change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/bench/test_golden_figures.py

and review the diff like any other source change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.api import Session
from repro.bench.figures import (
    fig5_range_queries,
    fig6_nn_queries,
    fig_loss_sweep,
)
from repro.data.tiger import pa_dataset

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"

N_RUNS = 10


@pytest.fixture(scope="module")
def session():
    return Session(pa_dataset(scale=0.02, seed=1))


def _result_record(result) -> dict:
    return {
        "energy_j": result.energy.as_dict(),
        "cycles": result.cycles.as_dict(),
        "wall_seconds": result.wall_seconds,
        "n_candidates": result.n_candidates,
        "n_results": result.n_results,
    }


def _fig5_records(sweep) -> dict:
    return {
        label: [
            {
                "bandwidth_mbps": cell.bandwidth_mbps,
                "distance_m": cell.distance_m,
                **_result_record(cell.result),
            }
            for cell in cells
        ]
        for label, cells in sweep.items()
    }


def _loss_records(sweep) -> dict:
    return {
        label: [
            {
                "loss_rate": cell.loss_rate,
                "bandwidth_mbps": cell.bandwidth_mbps,
                "distance_m": cell.distance_m,
                **_result_record(cell.result),
                "loss": cell.result.loss.as_dict(),
            }
            for cell in cells
        ]
        for label, cells in sweep.items()
    }


def _check_golden(name: str, data: dict) -> None:
    """Exact-equality comparison against (or regeneration of) a golden."""
    path = GOLDEN_DIR / name
    normalized = json.loads(json.dumps(data, sort_keys=True))
    if REGEN:
        path.write_text(
            json.dumps(normalized, sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
    assert path.exists(), (
        f"golden file {name} missing; run with REPRO_REGEN_GOLDEN=1 to create"
    )
    golden = json.loads(path.read_text(encoding="utf-8"))
    assert normalized == golden, (
        f"{name}: figure output changed — every float must match the golden "
        "exactly; regenerate deliberately with REPRO_REGEN_GOLDEN=1 if the "
        "model change is intended"
    )


class TestFig5Golden:
    def test_fig5_matches_pre_loss_golden_exactly(self, session):
        """The ideal-channel fig5 sweep is bit-for-bit the pre-lossy output.

        The golden was generated before the lossy-link subsystem existed;
        this holds the loss_rate=0 path to exact numeric equality with it.
        """
        sweep = fig5_range_queries(session, n_runs=N_RUNS)
        _check_golden("fig5_pa002_runs10.json", _fig5_records(sweep))

    def test_fig5_scalar_engine_matches_same_golden(self, session):
        """The scalar oracle prices the same grid to the same goldens.

        Not bit-for-bit (summation order differs between engines, as it
        always has) — pinned to 1e-9 relative, the engines' documented
        agreement bound.
        """
        golden = json.loads(
            (GOLDEN_DIR / "fig5_pa002_runs10.json").read_text(encoding="utf-8")
        )
        from repro.core.executor import Policy
        from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS
        from repro.data.workloads import range_queries

        qs = range_queries(session.dataset, N_RUNS)
        policies = Policy.sweep()
        table = session.run(
            qs,
            schemes=ADEQUATE_MEMORY_CONFIGS,
            policies=policies,
            engine="scalar",
        )
        for label, rows in table.by_scheme().items():
            for row, cell in zip(rows, golden[label]):
                want = sum(cell["energy_j"].values())
                assert row.energy_j == pytest.approx(want, rel=1e-9)
                assert row.wall_seconds == pytest.approx(
                    cell["wall_seconds"], rel=1e-9
                )


class TestColumnarGolden:
    """The fused columnar engine reproduces the figure goldens to the byte.

    The fig5 golden predates not just the lossy link but the columnar
    engine itself — so this is the strongest pin available: a plan-free
    single-pass engine reproducing numbers captured from the original
    per-query object pipeline exactly.  The fig6 golden pins the NN sweep
    the same way for both the batched and columnar paths.
    """

    def test_fig5_columnar_matches_pre_loss_golden_exactly(self, session):
        sweep = fig5_range_queries(session, n_runs=N_RUNS, planner="columnar")
        _check_golden("fig5_pa002_runs10.json", _fig5_records(sweep))

    def test_fig6_columnar_matches_golden_exactly(self, session):
        sweep = fig6_nn_queries(session, n_runs=N_RUNS, planner="columnar")
        _check_golden("fig6_pa002_runs10.json", _fig5_records(sweep))

    def test_fig6_batched_matches_same_golden(self, session):
        """Batched and columnar pin to one shared fig6 golden file."""
        sweep = fig6_nn_queries(session, n_runs=N_RUNS)
        _check_golden("fig6_pa002_runs10.json", _fig5_records(sweep))


class TestLossSweepGolden:
    def test_loss_sweep_matches_golden_exactly(self, session):
        sweep = fig_loss_sweep(session, n_runs=N_RUNS)
        _check_golden("loss_sweep_pa002_runs10.json", _loss_records(sweep))

    def test_loss_sweep_zero_rate_row_equals_fig5_2mbps(self, session):
        """The sweep's loss_rate=0 row IS the fig5 2 Mbps cell, exactly."""
        fig5 = fig5_range_queries(session, n_runs=N_RUNS)
        loss = fig_loss_sweep(session, n_runs=N_RUNS)
        for label, cells in loss.items():
            base = cells[0]
            assert base.loss_rate == 0.0
            ref = next(
                c for c in fig5[label] if c.bandwidth_mbps == 2.0
            )
            assert base.result.energy == ref.result.energy
            assert base.result.cycles == ref.result.cycles
            assert base.result.wall_seconds == ref.result.wall_seconds

    def test_loss_monotone_in_rate(self, session):
        """More loss never makes a scheme cheaper or faster."""
        sweep = fig_loss_sweep(session, n_runs=N_RUNS)
        for label, cells in sweep.items():
            energies = [c.energy_j for c in cells]
            cycles = [c.cycles for c in cells]
            assert energies == sorted(energies), label
            assert cycles == sorted(cycles), label
