"""Figure generators run end-to-end at small scale."""

from __future__ import annotations

import pytest

from repro.bench import figures
from repro.constants import BANDWIDTHS_MBPS
from repro.core.executor import Environment


@pytest.fixture()
def small_env(pa_small, pa_small_tree):
    return Environment.create(pa_small, tree=pa_small_tree)


class TestSweepGenerators:
    def test_fig4_structure(self, small_env):
        sweep = figures.fig4_point_queries(small_env, n_runs=5)
        assert len(sweep) == len(figures.POINT_NN_CONFIGS)
        for cells in sweep.values():
            assert [c.bandwidth_mbps for c in cells] == list(BANDWIDTHS_MBPS)

    def test_fig5_covers_all_configs(self, small_env):
        from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS

        sweep = figures.fig5_range_queries(small_env, n_runs=5)
        assert set(sweep) == {c.label for c in ADEQUATE_MEMORY_CONFIGS}

    def test_fig6_two_schemes_only(self, small_env):
        sweep = figures.fig6_nn_queries(small_env, n_runs=5)
        assert len(sweep) == 2

    def test_fig8_uses_faster_clock(self, pa_small):
        sweep = figures.fig8_client_speed(pa_small, n_runs=3, clock_ratio=0.5)
        assert len(sweep) == 6

    def test_fig9_changes_distance_only_energy(self, small_env):
        from repro.core.schemes import Scheme, SchemeConfig

        near = figures.fig9_distance(small_env, n_runs=5, distance_m=100.0)
        far = figures.fig5_range_queries(small_env, n_runs=5)
        label = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True).label
        assert (
            near[label][0].result.energy.nic_tx
            < far[label][0].result.energy.nic_tx
        )
        assert near[label][0].cycles == pytest.approx(far[label][0].cycles)


class TestFig10Generator:
    def test_rows_cover_grid(self, small_env):
        rows = figures.fig10_insufficient_memory(
            small_env, buffers=(64 * 1024,), proximities=(0, 5),
        )
        assert len(rows) == 2
        assert {r.y for r in rows} == {0, 5}
        for r in rows:
            assert r.client_energy_j > 0
            assert r.server_energy_j > 0
            assert r.local_hits + r.misses == r.y + 1
