"""Report rendering: tables, figure sweeps, ASCII charts."""

from __future__ import annotations

import pytest

from repro.bench.figures import Fig10Row
from repro.bench.report import ascii_chart, render_fig10, render_rows, render_sweep
from repro.api import Session
from repro.core.executor import Policy
from repro.core.schemes import Scheme, SchemeConfig
from repro.data.workloads import range_queries


class TestRenderRows:
    def test_aligned_columns(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 222, "bb": "z"}]
        out = render_rows(rows, "T")
        lines = out.splitlines()
        assert lines[0] == "== T =="
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 4

    def test_empty(self):
        assert "(empty)" in render_rows([], "T")


class TestRenderSweep:
    @pytest.fixture(scope="class")
    def sweep(self, pa_small, pa_small_tree):
        from repro.core.executor import Environment

        env = Environment.create(pa_small, tree=pa_small_tree)
        qs = range_queries(pa_small, 3, seed=103)
        return Session(env).run(
            qs,
            schemes=[SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True)],
            policies=Policy.sweep(bandwidths_mbps=(2, 11)),
        ).cells()

    def test_contains_schemes_and_bandwidths(self, sweep):
        out = render_sweep(sweep, "T")
        assert "Fully at the Server" in out
        assert "2.0 Mbps" in out and "11.0 Mbps" in out

    def test_metric_selection(self, sweep):
        energy_only = render_sweep(sweep, "T", metric="energy")
        assert "E[J]" in energy_only and "cyc" not in energy_only
        cycles_only = render_sweep(sweep, "T", metric="cycles")
        assert "cyc" in cycles_only and "E[J]" not in cycles_only

    def test_invalid_metric_raises(self, sweep):
        with pytest.raises(ValueError):
            render_sweep(sweep, "T", metric="watts")


class TestRenderFig10:
    def _rows(self):
        return [
            Fig10Row(1 << 20, 0, 0.5, 1e8, 0.1, 5e7, 0, 1),
            Fig10Row(1 << 20, 100, 0.6, 2e8, 0.7, 1e8, 100, 1),
        ]

    def test_marks_crossover(self):
        out = render_fig10(self._rows(), "T")
        assert "client becomes energy-efficient" in out
        assert "y= 100" in out

    def test_no_crossover_no_marker(self):
        rows = [Fig10Row(1 << 20, 0, 0.9, 1e8, 0.1, 5e7, 0, 1)]
        assert "energy-efficient" not in render_fig10(rows, "T")


class TestAsciiChart:
    def test_basic_shape(self):
        out = ascii_chart(
            {"up": [(0, 0), (1, 1), (2, 2)], "down": [(0, 2), (1, 1), (2, 0)]},
            width=20,
            height=5,
            title="demo",
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert sum(1 for l in lines if l.startswith("|")) == 5
        assert "o=up" in out and "x=down" in out

    def test_extremes_plotted(self):
        out = ascii_chart({"s": [(0, 0), (10, 5)]}, width=10, height=4)
        rows = [l[1:] for l in out.splitlines() if l.startswith("|")]
        assert rows[-1][0] == "o"  # min at bottom-left
        assert rows[0][-1] == "o"  # max at top-right

    def test_flat_series_does_not_divide_by_zero(self):
        out = ascii_chart({"s": [(0, 1), (1, 1)]}, width=8, height=3)
        assert "o" in out

    def test_empty(self):
        assert "(empty chart)" in ascii_chart({}, title="t")

    def test_axis_ranges_in_footer(self):
        out = ascii_chart({"s": [(2, 10), (4, 30)]}, width=8, height=3)
        assert "x: 2..4" in out
        assert "y: 10..30" in out
