"""Batched grid pricer vs the scalar oracle, plan cache, fan-out, ledger."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import MBPS, NetworkConfig
from repro.core.executor import Environment, Policy, plan_query, price_plan
from repro.core.gridrun import (
    PlanCache,
    PlanRequest,
    RunLedger,
    compile_plan,
    dataset_fingerprint,
    framing_key,
    plan_requests,
    price_grid,
    price_workload_grid,
    read_ledger,
    scheme_key,
    workload_key,
)
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data import tiger
from repro.data.workloads import nn_queries, point_queries, range_queries

FS = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True)


@pytest.fixture(scope="module")
def grid_env(pa_small, pa_small_tree) -> Environment:
    """Module-shared environment (hypothesis needs a stable fixture)."""
    return Environment.create(pa_small, tree=pa_small_tree)


@pytest.fixture(scope="module")
def plan_pool(grid_env):
    """A mixed pool of plans: every scheme, every query kind."""
    ds = grid_env.dataset
    pool = []
    for qs in (
        range_queries(ds, 3, seed=11),
        point_queries(ds, 2, seed=12),
        nn_queries(ds, 2, seed=13),
    ):
        for cfg in ADEQUATE_MEMORY_CONFIGS:
            if qs[0].kind.value.startswith("n") and cfg.scheme in (
                Scheme.FILTER_CLIENT_REFINE_SERVER,
                Scheme.FILTER_SERVER_REFINE_CLIENT,
            ):
                continue
            grid_env.reset_caches()
            pool.extend(plan_query(q, cfg, grid_env) for q in qs)
    return pool


def _policy(bw_mbps, dist, nic_sleep, busy, low, mtu, loss, burst, retx_t0):
    return Policy(
        network=NetworkConfig(
            bandwidth_bps=bw_mbps * MBPS,
            distance_m=dist,
            mtu_bytes=mtu,
            loss_rate=loss,
            loss_burst_frames=burst,
            retx_timeout_s=retx_t0,
        ),
        nic_sleep=nic_sleep,
        busy_wait=busy,
        cpu_lowpower=low,
    )


policy_strategy = st.builds(
    _policy,
    bw_mbps=st.floats(min_value=0.05, max_value=30.0, allow_nan=False),
    dist=st.floats(min_value=1.0, max_value=5000.0, allow_nan=False),
    nic_sleep=st.booleans(),
    busy=st.booleans(),
    low=st.booleans(),
    mtu=st.sampled_from([576, 1500, 2272]),
    loss=st.one_of(
        st.just(0.0), st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
    ),
    burst=st.one_of(
        st.none(), st.floats(min_value=1.0, max_value=12.0, allow_nan=False)
    ),
    retx_t0=st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
)


def _assert_cell_matches(ref, got, rel=1e-9):
    for name in ("processor", "nic_tx", "nic_rx", "nic_idle", "nic_sleep"):
        assert math.isclose(
            getattr(got.energy, name),
            getattr(ref.energy, name),
            rel_tol=rel,
            abs_tol=1e-12,
        ), name
    for name in ("processor", "nic_tx", "nic_rx", "wait"):
        assert math.isclose(
            getattr(got.cycles, name),
            getattr(ref.cycles, name),
            rel_tol=rel,
            abs_tol=1e-12,
        ), name
    assert math.isclose(
        got.wall_seconds, ref.wall_seconds, rel_tol=rel, abs_tol=1e-12
    )
    for name in ("retx_tx_frames", "retx_rx_frames", "backoff_s"):
        assert math.isclose(
            getattr(got.loss, name),
            getattr(ref.loss, name),
            rel_tol=rel,
            abs_tol=1e-12,
        ), name
    assert got.messages == ref.messages
    assert np.array_equal(got.answer_ids, ref.answer_ids)


class TestBatchedMatchesScalar:
    @settings(max_examples=30, deadline=None)
    @given(
        policies=st.lists(policy_strategy, min_size=1, max_size=4),
        data=st.data(),
    )
    def test_property_grid_equals_oracle(
        self, grid_env, plan_pool, policies, data
    ):
        """Every cell of a randomized (plans x policies) grid matches the
        scalar ``price_plan`` within 1e-9 relative tolerance."""
        idx = data.draw(
            st.lists(
                st.integers(0, len(plan_pool) - 1),
                min_size=1,
                max_size=5,
                unique=True,
            )
        )
        plans = [plan_pool[i] for i in idx]
        grid = price_grid(plans, policies, grid_env)
        assert grid.shape == (len(plans), len(policies))
        for i, plan in enumerate(plans):
            for j, pol in enumerate(policies):
                ref = price_plan(plan, grid_env, pol)
                _assert_cell_matches(ref, grid.result(i, j))

    def test_workload_sum_matches_oracle_sum(self, grid_env, plan_pool):
        plans = plan_pool[:6]
        policies = Policy.sweep()
        results = price_workload_grid(plans, policies, grid_env)
        for j, pol in enumerate(policies):
            ref_e = sum(
                price_plan(p, grid_env, pol).energy.total() for p in plans
            )
            assert results[j].energy.total() == pytest.approx(ref_e, rel=1e-9)

    def test_dwell_energy_consistent(self, grid_env, plan_pool):
        """Per-state dwell joules re-sum to the energy buckets."""
        grid = price_grid(plan_pool[:4], [Policy()], grid_env)
        d = grid.dwell(0)
        r = grid.combine_policy(0)
        assert d.transmit_j == pytest.approx(r.energy.nic_tx)
        assert d.idle_j == pytest.approx(r.energy.nic_idle)
        assert d.total_seconds() == pytest.approx(r.wall_seconds)

    def test_compile_reused_across_framings(self, grid_env, plan_pool):
        """Policies sharing a wire framing share compiled plans."""
        cache: dict = {}
        pols = [Policy(), Policy(nic_sleep=False), Policy(busy_wait=True)]
        price_grid(plan_pool[:3], pols, grid_env, compile_cache=cache)
        assert len(cache) == 3  # one entry per plan, single framing
        other = Policy(network=NetworkConfig(mtu_bytes=576))
        price_grid(plan_pool[:3], pols + [other], grid_env, compile_cache=cache)
        assert len(cache) == 6  # second framing recompiles each plan

    def test_empty_inputs_rejected(self, grid_env, plan_pool):
        with pytest.raises(ValueError):
            price_grid([], [Policy()], grid_env)
        with pytest.raises(ValueError):
            price_grid(plan_pool[:1], [], grid_env)

    def test_compiled_wait_matches_oracle(self, grid_env, plan_pool):
        c = compile_plan(plan_pool[0], grid_env, Policy().network)
        assert c.wait_s == c.idle_wait_s + c.sleep_wait_s
        assert framing_key(Policy().network) == framing_key(
            Policy().with_bandwidth(11 * MBPS).network
        )


class TestPlanCache:
    def test_same_workload_and_scheme_hits(self, grid_env):
        qs = range_queries(grid_env.dataset, 3, seed=21)
        fp = dataset_fingerprint(grid_env.dataset)
        cache = PlanCache()
        assert cache.get(fp, qs, FS) is None
        grid_env.reset_caches()
        plans = [plan_query(q, FS, grid_env) for q in qs]
        cache.put(fp, qs, FS, plans)
        assert cache.get(fp, qs, FS) is plans
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_different_scheme_misses(self, grid_env):
        qs = range_queries(grid_env.dataset, 2, seed=22)
        fp = dataset_fingerprint(grid_env.dataset)
        cache = PlanCache()
        cache.put(fp, qs, FS, [])
        other = SchemeConfig(Scheme.FULLY_CLIENT)
        assert cache.get(fp, qs, other) is None
        assert scheme_key(FS) != scheme_key(other)

    def test_mutated_dataset_misses(self):
        ds_a = tiger.pa_dataset(scale=0.01, seed=5)
        ds_b = tiger.pa_dataset(scale=0.01, seed=5)
        assert dataset_fingerprint(ds_a) == dataset_fingerprint(ds_b)
        qs = range_queries(ds_a, 2, seed=23)
        cache = PlanCache()
        cache.put(dataset_fingerprint(ds_a), qs, FS, ["sentinel"])
        ds_b.x1[0] += 1.0  # a single moved vertex must invalidate
        assert dataset_fingerprint(ds_a) != dataset_fingerprint(ds_b)
        assert cache.get(dataset_fingerprint(ds_b), qs, FS) is None

    def test_workload_order_matters(self, grid_env):
        qs = range_queries(grid_env.dataset, 3, seed=24)
        assert workload_key(qs) != workload_key(list(reversed(qs)))

    def test_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        for i in range(3):
            cache.put(f"fp{i}", [], FS, [i])
        assert len(cache) == 2
        assert cache.get("fp0", [], FS) is None  # evicted
        assert cache.get("fp2", [], FS) == [2]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)


class TestPlanRequests:
    def test_parallel_matches_serial(self):
        ds_pa = tiger.pa_dataset(scale=0.01, seed=5)
        ds_nyc = tiger.nyc_dataset(scale=0.01, seed=6)
        configs = (FS, SchemeConfig(Scheme.FULLY_CLIENT))
        reqs = [
            PlanRequest(
                dataset=ds,
                queries=tuple(range_queries(ds, 2, seed=25)),
                configs=configs,
            )
            for ds in (ds_pa, ds_nyc)
        ]
        serial = plan_requests(reqs, processes=1)
        fanned = plan_requests(reqs, processes=2)
        policy = Policy()
        for s_out, f_out, ds in zip(serial, fanned, (ds_pa, ds_nyc)):
            env = Environment.create(ds)
            assert set(s_out) == set(f_out)
            for label in s_out:
                e_s = sum(
                    price_plan(p, env, policy).energy.total()
                    for p in s_out[label]
                )
                e_f = sum(
                    price_plan(p, env, policy).energy.total()
                    for p in f_out[label]
                )
                assert e_f == pytest.approx(e_s, rel=1e-12)


class TestRunLedger:
    def test_round_trip_and_timing(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLedger(path=path) as ledger:
            ledger.record("note", msg="hello")
            with ledger.timed("bench", name="x") as extra:
                extra["cells"] = 7
            assert len(ledger.records) == 2
        records = read_ledger(path)
        assert [r["event"] for r in records] == ["note", "bench"]
        assert records[1]["cells"] == 7
        assert records[1]["seconds"] >= 0.0
        assert all("t" in r for r in records)

    def test_in_memory_only(self):
        ledger = RunLedger()
        ledger.record("note", k=1)
        ledger.close()
        assert ledger.records[0]["k"] == 1

    def test_appends_to_existing_file(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLedger(path=path) as ledger:
            ledger.record("note", run=1)
        with RunLedger(path=path) as ledger:
            ledger.record("note", run=2)
        assert [r["run"] for r in read_ledger(path)] == [1, 2]
