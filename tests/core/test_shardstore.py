"""ShardStore: bit-identity to the monolithic tree, residency, admission."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.shardstore import (
    ShardConfig,
    ShardRegion,
    ShardResidencyError,
    ShardStore,
    materialize_entry_range,
)
from repro.data.workloads import locality_workload, oversized_dataset
from repro.core.executor import Environment
from repro.spatial.batchnn import batch_nearest
from repro.spatial.batchtraverse import batch_filter
from repro.spatial.rtree import PackedRTree


@pytest.fixture()
def store(pa_small_tree) -> ShardStore:
    return ShardStore.from_tree(pa_small_tree, ShardConfig(n_shards=8))


def _windows(env, n=16, seed=9):
    """A mixed batch of query windows over the dataset extent."""
    rng = np.random.default_rng(seed)
    ext = env.dataset.extent
    cx = rng.uniform(ext.xmin, ext.xmax, n)
    cy = rng.uniform(ext.ymin, ext.ymax, n)
    w = rng.uniform(0.0, 0.1 * ext.width, n)
    h = rng.uniform(0.0, 0.1 * ext.height, n)
    return cx - w, cy - h, cx + w, cy + h


class TestConfig:
    def test_defaults_valid(self):
        cfg = ShardConfig()
        assert cfg.n_shards == 16 and cfg.on_overflow == "error"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_shards=0),
            dict(n_shards=2.5),
            dict(budget_bytes=0),
            dict(budget_bytes="big"),
            dict(on_overflow="panic"),
            dict(prune_order=0),
            dict(prune_order=32),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ShardConfig(**kwargs)

    def test_store_rejects_plain_dict(self, pa_small_tree):
        with pytest.raises(TypeError):
            ShardStore.from_tree(pa_small_tree, {"n_shards": 4})

    def test_budget_below_largest_shard_rejected(self, pa_small_tree):
        with pytest.raises(ValueError, match="largest shard"):
            ShardStore.from_tree(
                pa_small_tree, ShardConfig(n_shards=4, budget_bytes=1)
            )


class TestMaterialization:
    def test_shard_arrays_match_tree_slices_bitwise(self, pa_small_tree, store):
        tree = pa_small_tree
        cap = tree.node_capacity
        for sid in range(store.n_shards):
            sh = store._materialize(sid)
            lo, hi = sh.entry_lo, sh.entry_hi
            assert np.array_equal(sh.entry_xmin, tree.entry_xmin[lo:hi])
            assert np.array_equal(sh.entry_ymin, tree.entry_ymin[lo:hi])
            assert np.array_equal(sh.entry_xmax, tree.entry_xmax[lo:hi])
            assert np.array_equal(sh.entry_ymax, tree.entry_ymax[lo:hi])
            ll, lh = sh.leaf_lo, sh.leaf_hi
            assert np.array_equal(sh.leaf_xmin, tree.node_xmin[ll:lh])
            assert np.array_equal(sh.leaf_ymin, tree.node_ymin[ll:lh])
            assert np.array_equal(sh.leaf_xmax, tree.node_xmax[ll:lh])
            assert np.array_equal(sh.leaf_ymax, tree.node_ymax[ll:lh])
            assert lo % cap == 0 or sid == 0

    def test_entry_mbrs_match_tree(self, pa_small_tree, store, rng):
        pos = rng.integers(0, pa_small_tree.entry_ids.size, 200)
        got = store.entry_mbrs(pos)
        want = pa_small_tree.entry_mbrs(pos)
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_empty_gathers(self, store):
        for arr in store.entry_mbrs(np.empty(0, dtype=np.int64)):
            assert arr.size == 0
        for arr in store._leaf_mbrs(np.empty(0, dtype=np.int64)):
            assert arr.size == 0

    def test_spine_leaf_rows_are_poisoned(self, store):
        assert np.isnan(store.spine_xmin[: store.n_leaves]).all()
        assert np.isnan(store.spine_ymax[: store.n_leaves]).all()
        # Internal rows stay intact.
        assert np.isfinite(store.spine_xmin[store.n_leaves :]).all()

    def test_shard_ownership_maps(self, store):
        pos = np.arange(store.n_entries, dtype=np.int64)
        sids = store.shard_of_entries(pos)
        assert (np.diff(sids) >= 0).all()
        assert sids[0] == 0 and sids[-1] == store.n_shards - 1
        for sid in range(store.n_shards):
            m = sids == sid
            assert pos[m].min() == store.bounds[sid]
            assert pos[m].max() == store.bounds[sid + 1] - 1


class TestTraversalIdentity:
    def test_batch_filter_bit_identical(self, env_small, store):
        qx0, qy0, qx1, qy1 = _windows(env_small)
        base = batch_filter(env_small.tree, qx0, qy0, qx1, qy1)
        got = store.batch_filter(qx0, qy0, qx1, qy1)
        for field in (
            "visited", "visited_offsets", "cand_positions", "cand_ids",
            "cand_offsets", "mbr_tests",
        ):
            assert np.array_equal(getattr(got, field), getattr(base, field)), field

    def test_batch_filter_empty_batch(self, store):
        e = np.empty(0, dtype=np.float64)
        res = store.batch_filter(e, e, e, e)
        assert res.visited.size == 0 and res.cand_ids.size == 0

    def test_batch_nearest_bit_identical(self, env_small, store, rng):
        ext = env_small.dataset.extent
        px = rng.uniform(ext.xmin, ext.xmax, 12)
        py = rng.uniform(ext.ymin, ext.ymax, 12)
        ks = rng.integers(1, 6, 12)
        base = batch_nearest(env_small.tree, px, py, ks)
        got = store.batch_nearest(px, py, ks)
        for a, b in zip(got.answer_ids, base.answer_ids):
            assert np.array_equal(a, b)
        for a, b in zip(got.trace_ids, base.trace_ids):
            assert np.array_equal(a, b)
        for a, b in zip(got.trace_is_entry, base.trace_is_entry):
            assert np.array_equal(a, b)
        for field in (
            "nodes_visited", "mbr_tests", "candidates_refined",
            "heap_ops", "results_produced",
        ):
            assert np.array_equal(getattr(got, field), getattr(base, field)), field

    def test_batch_nearest_validates(self, store):
        with pytest.raises(ValueError):
            store.batch_nearest(np.zeros(2), np.zeros(3), np.ones(2, dtype=int))
        with pytest.raises(ValueError):
            store.batch_nearest(np.zeros(1), np.zeros(1), np.zeros(1, dtype=int))

    def test_node_bytes_match_tree(self, pa_small_tree, store):
        assert np.array_equal(
            store.node_bytes_array(), pa_small_tree.node_bytes_array()
        )
        assert np.array_equal(
            store.entry_span_start(), pa_small_tree.entry_span_start()
        )


class TestResidency:
    def test_lru_evicts_past_budget(self, pa_small_tree):
        budget = None
        probe = ShardStore.from_tree(pa_small_tree, ShardConfig(n_shards=8))
        budget = int(probe._shard_nbytes.max()) * 2
        store = ShardStore.from_tree(
            pa_small_tree,
            ShardConfig(n_shards=8, budget_bytes=budget, on_overflow="spill"),
        )
        for sid in range(store.n_shards):
            store._materialize(sid)
        assert store._resident_bytes <= budget
        stats = store.stats_dict()
        assert stats["shard_loads"] == store.n_shards
        assert stats["shard_evictions"] >= store.n_shards - 2

    def test_never_evicts_just_used_shard(self, pa_small_tree):
        probe = ShardStore.from_tree(pa_small_tree, ShardConfig(n_shards=8))
        budget = int(probe._shard_nbytes.max())
        store = ShardStore.from_tree(
            pa_small_tree,
            ShardConfig(n_shards=8, budget_bytes=budget, on_overflow="spill"),
        )
        for sid in range(store.n_shards):
            sh = store._materialize(sid)
            assert sid in store._resident  # the shard just gathered stays
            assert sh.sid == sid

    def test_lru_recency_order(self, pa_small_tree):
        probe = ShardStore.from_tree(pa_small_tree, ShardConfig(n_shards=4))
        budget = int(probe._shard_nbytes.max()) * 3
        store = ShardStore.from_tree(
            pa_small_tree, ShardConfig(n_shards=4, budget_bytes=budget)
        )
        store._materialize(0)
        store._materialize(1)
        store._materialize(0)  # refresh 0: now 1 is the LRU victim
        store._materialize(2)
        store._materialize(3)  # must evict 1 (not the refreshed 0)
        assert 1 not in store._resident

    def test_residency_error_and_spill_fallback(self, pa_small_tree, env_small):
        probe = ShardStore.from_tree(pa_small_tree, ShardConfig(n_shards=8))
        budget = int(probe._shard_nbytes.max())
        # A full-extent window needs every shard: over budget by design.
        ext = env_small.dataset.extent
        q = (
            np.array([ext.xmin]), np.array([ext.ymin]),
            np.array([ext.xmax]), np.array([ext.ymax]),
        )
        strict = ShardStore.from_tree(
            pa_small_tree, ShardConfig(n_shards=8, budget_bytes=budget)
        )
        with pytest.raises(ShardResidencyError) as exc:
            strict.batch_filter(*q)
        assert exc.value.needed_bytes > exc.value.budget_bytes
        assert "spill" in str(exc.value)

        spill = ShardStore.from_tree(
            pa_small_tree,
            ShardConfig(n_shards=8, budget_bytes=budget, on_overflow="spill"),
        )
        got = spill.batch_filter(*q)
        base = batch_filter(env_small.tree, *q)
        assert np.array_equal(got.cand_ids, base.cand_ids)
        assert spill.stats_dict()["shard_spills"] == 1
        assert spill._resident_bytes <= budget + int(probe._shard_nbytes.max())

    def test_take_stats_drains_window(self, env_small, store):
        qx0, qy0, qx1, qy1 = _windows(env_small, n=4)
        store.batch_filter(qx0, qy0, qx1, qy1)
        first = store.take_stats()
        assert first["shards_total"] == store.n_shards
        assert 0 < first["shards_touched"] <= store.n_shards
        assert first["shards_pruned"] == store.n_shards - first["shards_touched"]
        assert first["shard_loads"] == first["shards_touched"]
        second = store.take_stats()
        assert second["shards_touched"] == 0
        assert second["shard_loads"] == 0
        # Lifetime stats survive the window drain.
        assert store.stats_dict()["shards_touched"] == first["shards_touched"]

    def test_locality_workload_prunes(self, env_small, store):
        queries = [
            q for q in locality_workload(env_small.dataset, 6, 2, seed=5)
            if hasattr(q, "rect")
        ]
        qx0 = np.array([q.rect.xmin for q in queries])
        qy0 = np.array([q.rect.ymin for q in queries])
        qx1 = np.array([q.rect.xmax for q in queries])
        qy1 = np.array([q.rect.ymax for q in queries])
        for i in range(qx0.size):
            store.batch_filter(qx0[i : i + 1], qy0[i : i + 1],
                               qx1[i : i + 1], qy1[i : i + 1])
        stats = store.stats_dict()
        assert stats["shards_pruned"] >= 1  # locality leaves shards untouched


class TestQueryShards:
    def test_superset_of_touched_shards(self, env_small, store):
        """The plan-time key-range bound admits every shard a traversal's
        key-local gathers actually touch."""
        qx0, qy0, qx1, qy1 = _windows(env_small, n=10, seed=3)
        for i in range(qx0.size):
            bound = set(
                store.query_shards(
                    float(qx0[i]), float(qy0[i]), float(qx1[i]), float(qy1[i])
                ).tolist()
            )
            res = store.batch_filter(
                qx0[i : i + 1], qy0[i : i + 1], qx1[i : i + 1], qy1[i : i + 1]
            )
            touched = set(
                store.shard_of_entries(res.cand_positions).tolist()
            )
            assert touched <= bound

    def test_memoized(self, store):
        a = store.query_shards(0.0, 0.0, 10.0, 10.0)
        b = store.query_shards(0.0, 0.0, 10.0, 10.0)
        assert a is b


class TestMaterializeEntryRange:
    def test_matches_subset_build(self, pa_small_tree):
        tree = pa_small_tree
        lo, hi = 25, 650
        region = materialize_entry_range(tree, lo, hi, name="probe")
        assert isinstance(region, ShardRegion)
        assert np.array_equal(region.global_ids, tree.entry_ids[lo:hi])
        assert region.dataset.size == hi - lo
        assert region.dataset.name == "probe"
        rebuilt = PackedRTree.build(
            tree.dataset.subset(tree.entry_ids[lo:hi], name="probe"),
            node_capacity=tree.node_capacity,
        )
        assert np.array_equal(region.tree.node_xmin, rebuilt.node_xmin)
        assert np.array_equal(region.tree.entry_ids, rebuilt.entry_ids)

    def test_bounds_validation(self, pa_small_tree):
        n = pa_small_tree.entry_ids.size
        for lo, hi in [(-1, 5), (5, 5), (8, 2), (0, n + 1)]:
            with pytest.raises(ValueError):
                materialize_entry_range(pa_small_tree, lo, hi)


class TestOversizedDataset:
    def test_deterministic_and_sized(self):
        a = oversized_dataset(6000, seed=11)
        b = oversized_dataset(6000, seed=11)
        assert a.size == 6000
        assert np.array_equal(a.x1, b.x1) and np.array_equal(a.y2, b.y2)
        assert oversized_dataset(6000, seed=12).x1[0] != a.x1[0]

    def test_validates(self):
        with pytest.raises(ValueError):
            oversized_dataset(0)

    def test_overflows_a_small_budget(self):
        """The generator's reason to exist: a store over it must evict."""
        ds = oversized_dataset(8000, seed=11)
        env = Environment.create(ds)
        probe = ShardStore.from_tree(env.tree, ShardConfig(n_shards=10))
        budget = int(probe._shard_nbytes.max()) * 2
        assert budget < int(probe._shard_nbytes.sum())
        store = ShardStore.from_tree(
            env.tree,
            ShardConfig(n_shards=10, budget_bytes=budget, on_overflow="spill"),
        )
        qx0, qy0, qx1, qy1 = _windows(env, n=24, seed=2)
        base = batch_filter(env.tree, qx0, qy0, qx1, qy1)
        got = store.batch_filter(qx0, qy0, qx1, qy1)
        assert np.array_equal(got.cand_ids, base.cand_ids)
        stats = store.stats_dict()
        assert stats["shard_evictions"] > 0
        assert stats["resident_bytes"] <= budget
