"""Broadcast dissemination (extension; paper reference [15])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.broadcast import BroadcastClient, BroadcastSchedule
from repro.core.executor import Policy, RecvStep, SendStep, WaitStep, price_plan
from repro.core.queries import NNQuery
from repro.data.workloads import point_queries, range_queries
from repro.spatial import bruteforce as bf


@pytest.fixture(scope="module")
def schedule(pa_small, pa_small_tree):
    from repro.core.executor import Environment

    env = Environment.create(pa_small, tree=pa_small_tree)
    return BroadcastSchedule(env, n_chunks=8)


class TestSchedule:
    def test_chunks_partition_entries(self, schedule, pa_small):
        covered = []
        prev_hi = 0
        for ch in schedule.chunks:
            assert ch.entry_lo == prev_hi
            prev_hi = ch.entry_hi
            covered.append(ch.entry_hi - ch.entry_lo)
        assert prev_hi == pa_small.size
        assert sum(covered) == pa_small.size

    def test_offsets_monotone_and_cycle_consistent(self, schedule):
        offsets = [ch.offset_s for ch in schedule.chunks]
        assert offsets == sorted(offsets)
        assert offsets[0] == pytest.approx(schedule.index_air_seconds)
        last = schedule.chunks[-1]
        assert last.offset_s + last.air_seconds == pytest.approx(
            schedule.cycle_seconds
        )

    def test_chunk_bytes_balanced(self, schedule):
        sizes = [ch.payload_bytes for ch in schedule.chunks]
        assert max(sizes) < 1.5 * min(sizes)

    def test_invalid_chunk_counts(self, pa_small, pa_small_tree):
        from repro.core.executor import Environment

        env = Environment.create(pa_small, tree=pa_small_tree)
        with pytest.raises(ValueError):
            BroadcastSchedule(env, n_chunks=0)
        with pytest.raises(ValueError):
            BroadcastSchedule(env, n_chunks=pa_small.size + 1)

    def test_chunk_range_lookup(self, schedule):
        positions = np.asarray([0, 1, 2])
        assert schedule.chunk_range_for_entries(positions) == (0, 0)
        last = len(schedule.env.tree.entry_ids) - 1
        c_lo, c_hi = schedule.chunk_range_for_entries(np.asarray([0, last]))
        assert (c_lo, c_hi) == (0, len(schedule.chunks) - 1)


class TestBroadcastAnswers:
    @pytest.mark.parametrize("air_index", [True, False])
    def test_range_answers_match_oracle(self, schedule, pa_small, air_index):
        client = BroadcastClient(schedule, air_index=air_index)
        for q in range_queries(pa_small, 10, seed=83):
            plan = client.plan(q, phase_s=1.23)
            want = np.sort(bf.range_query(pa_small, q.rect))
            assert np.array_equal(np.sort(plan.answer_ids), want)

    def test_point_answers_match_oracle(self, schedule, pa_small):
        client = BroadcastClient(schedule)
        for q in point_queries(pa_small, 10, seed=85):
            plan = client.plan(q, phase_s=0.5)
            want = np.sort(bf.point_query(pa_small, q.x, q.y, q.eps))
            assert np.array_equal(np.sort(plan.answer_ids), want)

    def test_nn_rejected(self, schedule):
        with pytest.raises(ValueError):
            BroadcastClient(schedule).plan(NNQuery(0, 0))


class TestBroadcastEconomics:
    def test_never_transmits(self, schedule, pa_small):
        client = BroadcastClient(schedule)
        for q in range_queries(pa_small, 5, seed=87):
            plan = client.plan(q, phase_s=2.0)
            assert not any(isinstance(s, SendStep) for s in plan.steps)
            r = price_plan(plan, schedule.env, Policy())
            assert r.energy.nic_tx == 0.0

    def test_air_index_sleeps_while_no_index_idles(self, schedule, pa_small):
        q = range_queries(pa_small, 1, seed=89)[0]
        with_index = BroadcastClient(schedule, air_index=True).plan(q, 0.7)
        without = BroadcastClient(schedule, air_index=False).plan(q, 0.7)
        w_idx = [s for s in with_index.steps if isinstance(s, WaitStep)]
        w_no = [s for s in without.steps if isinstance(s, WaitStep)]
        assert all(not s.radio_listening for s in w_idx)
        assert all(s.radio_listening for s in w_no)

    def test_air_index_saves_idle_energy(self, schedule, pa_small):
        """Same query, same phase: the index-directed client's wait energy
        is the sleep rate, the listener's the idle rate."""
        q = range_queries(pa_small, 1, seed=89)[0]
        policy = Policy()
        e_idx = price_plan(
            BroadcastClient(schedule, air_index=True).plan(q, 0.7),
            schedule.env,
            policy,
        ).energy
        e_no = price_plan(
            BroadcastClient(schedule, air_index=False).plan(q, 0.7),
            schedule.env,
            policy,
        ).energy
        # The listener pays idle power over its whole wait; the index user
        # pays sleep power plus a small index reception.
        assert e_idx.nic_idle < e_no.nic_idle
        assert e_idx.nic_sleep > 0

    def test_wait_bounded_by_cycle(self, schedule, pa_small):
        client = BroadcastClient(schedule, air_index=False)
        for phase in (0.0, 0.3, 0.9):
            q = range_queries(pa_small, 1, seed=91)[0]
            plan = client.plan(q, phase_s=phase * schedule.cycle_seconds)
            wait = sum(s.seconds for s in plan.steps if isinstance(s, WaitStep))
            assert 0.0 <= wait <= schedule.cycle_seconds + 1e-9

    def test_receives_whole_chunks(self, schedule, pa_small):
        client = BroadcastClient(schedule)
        q = range_queries(pa_small, 1, seed=93)[0]
        plan = client.plan(q, phase_s=0.1)
        recv = [s for s in plan.steps if isinstance(s, RecvStep)]
        # index + chunk(s)
        assert len(recv) == 2
        assert recv[-1].payload.nbytes >= min(
            ch.payload_bytes for ch in schedule.chunks
        )

    def test_workload_phases_randomized(self, schedule, pa_small):
        client = BroadcastClient(schedule)
        qs = range_queries(pa_small, 8, seed=95)
        plans = client.plan_workload(qs, seed=5)
        waits = [
            sum(s.seconds for s in p.steps if isinstance(s, WaitStep))
            for p in plans
        ]
        assert len(set(round(w, 9) for w in waits)) > 4  # phases vary


class TestChunkCaching:
    def test_cached_session_answers_match_oracle(self, schedule, pa_small):
        client = BroadcastClient(schedule, cache_chunks=True)
        for q in range_queries(pa_small, 12, seed=97):
            plan = client.plan(q, phase_s=0.4)
            want = np.sort(bf.range_query(pa_small, q.rect))
            assert np.array_equal(np.sort(plan.answer_ids), want)

    def test_repeat_query_hits_cache(self, schedule, pa_small):
        client = BroadcastClient(schedule, cache_chunks=True)
        q = range_queries(pa_small, 1, seed=99)[0]
        client.plan(q, phase_s=0.4)
        receptions_after_first = client.receptions
        client.plan(q, phase_s=0.4)
        assert client.receptions == receptions_after_first
        assert client.local_hits == 1

    def test_cache_hit_never_touches_radio(self, schedule, pa_small):
        client = BroadcastClient(schedule, cache_chunks=True)
        q = range_queries(pa_small, 1, seed=99)[0]
        client.plan(q, phase_s=0.4)
        hit_plan = client.plan(q, phase_s=0.4)
        assert not any(isinstance(s, (RecvStep, WaitStep)) for s in hit_plan.steps)

    def test_no_cache_by_default(self, schedule, pa_small):
        client = BroadcastClient(schedule)
        q = range_queries(pa_small, 1, seed=99)[0]
        client.plan(q, phase_s=0.4)
        client.plan(q, phase_s=0.4)
        assert client.receptions == 2
        assert client.local_hits == 0
