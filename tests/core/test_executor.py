"""Executor: plans, pricing, ledger conservation, policy effects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import DEFAULT_CLIENT, MBPS, MHZ
from repro.core.executor import (
    ClientComputeStep,
    Environment,
    Policy,
    RecvStep,
    RunResult,
    SendStep,
    ServerComputeStep,
    execute,
    plan_query,
    price_plan,
)
from repro.core.queries import NNQuery, PointQuery, RangeQuery
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data.workloads import nn_queries, point_queries, range_queries
from repro.sim.cpu import ClientCPU
from repro.spatial import bruteforce as bf


@pytest.fixture()
def range_q(pa_small):
    return range_queries(pa_small, 1, seed=21)[0]


FC = SchemeConfig(Scheme.FULLY_CLIENT)
FS_ABSENT = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False)
FS_PRESENT = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True)
FC_RS = SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=True)
FS_RC = SchemeConfig(Scheme.FILTER_SERVER_REFINE_CLIENT, data_at_client=True)


class TestPlanShapes:
    def test_fully_client_has_no_communication(self, env_small, range_q):
        plan = plan_query(range_q, FC, env_small)
        assert all(isinstance(s, ClientComputeStep) for s in plan.steps)

    def test_fully_server_step_sequence(self, env_small, range_q):
        plan = plan_query(range_q, FS_ABSENT, env_small)
        kinds = [type(s) for s in plan.steps]
        assert kinds == [SendStep, ServerComputeStep, RecvStep, ClientComputeStep]

    def test_filter_client_sends_candidates(self, env_small, range_q):
        plan = plan_query(range_q, FC_RS, env_small)
        send = next(s for s in plan.steps if isinstance(s, SendStep))
        costs = env_small.dataset.costs
        expected = costs.request_bytes + plan.n_candidates * costs.object_id_bytes
        assert send.payload.nbytes == expected
        assert plan.n_candidates > 0

    def test_filter_server_receives_candidate_ids(self, env_small, range_q):
        plan = plan_query(range_q, FS_RC, env_small)
        recv = next(s for s in plan.steps if isinstance(s, RecvStep))
        costs = env_small.dataset.costs
        assert recv.payload.nbytes == plan.n_candidates * costs.object_id_bytes

    def test_data_absent_receives_records_not_ids(self, env_small, range_q):
        absent = plan_query(range_q, FS_ABSENT, env_small)
        env_small.reset_caches()
        present = plan_query(range_q, FS_PRESENT, env_small)
        r_absent = next(s for s in absent.steps if isinstance(s, RecvStep))
        r_present = next(s for s in present.steps if isinstance(s, RecvStep))
        assert r_absent.payload.nbytes > r_present.payload.nbytes

    def test_nn_fully_server(self, env_small, pa_small):
        q = nn_queries(pa_small, 1, seed=23)[0]
        plan = plan_query(q, FS_PRESENT, env_small)
        kinds = [type(s) for s in plan.steps]
        assert kinds == [SendStep, ServerComputeStep, RecvStep, ClientComputeStep]
        assert plan.n_results == 1

    def test_invalid_scheme_for_nn_raises(self, env_small, pa_small):
        q = nn_queries(pa_small, 1, seed=23)[0]
        with pytest.raises(ValueError):
            plan_query(q, FC_RS, env_small)


class TestAnswerCorrectness:
    @pytest.mark.parametrize("config", ADEQUATE_MEMORY_CONFIGS, ids=lambda c: c.label)
    def test_every_scheme_returns_oracle_answer(self, env_small, pa_small, config):
        for q in range_queries(pa_small, 5, seed=29):
            env_small.reset_caches()
            plan = plan_query(q, config, env_small)
            want = bf.range_query(pa_small, q.rect)
            assert np.array_equal(np.sort(plan.answer_ids), np.sort(want))


class TestPricingConservation:
    def test_wall_time_is_sum_of_cycle_buckets(self, env_small, range_q):
        plan = plan_query(range_q, FS_ABSENT, env_small)
        r = price_plan(plan, env_small, Policy())
        clock = env_small.client_cpu.clock_hz
        # Wall time equals the cycle buckets' duration up to the sleep-exit
        # latencies charged inside the NIC ledger.
        slack = r.wall_seconds - r.cycles.total() / clock
        assert slack >= -1e-12
        assert slack < 5e-3  # a few exit latencies at most

    def test_energy_buckets_all_nonnegative(self, env_small, range_q):
        for cfg in ADEQUATE_MEMORY_CONFIGS:
            env_small.reset_caches()
            r = execute(range_q, cfg, env_small)
            assert min(r.energy.as_dict().values()) >= 0.0
            assert min(r.cycles.as_dict().values()) >= 0.0

    def test_fully_client_nic_only_sleeps(self, env_small, range_q):
        r = execute(range_q, FC, env_small)
        assert r.energy.nic_tx == 0.0
        assert r.energy.nic_rx == 0.0
        assert r.energy.nic_idle == 0.0
        assert r.energy.nic_sleep > 0.0
        assert r.cycles.nic_tx == 0.0 and r.cycles.wait == 0.0

    def test_message_log(self, env_small, range_q):
        r = execute(range_q, FS_ABSENT, env_small)
        directions = [d for d, _ in r.messages]
        assert directions == ["tx", "rx"]


class TestPolicyEffects:
    def test_bandwidth_scales_transfer(self, env_small, range_q):
        plan = plan_query(range_q, FS_ABSENT, env_small)
        slow = price_plan(plan, env_small, Policy().with_bandwidth(2 * MBPS))
        fast = price_plan(plan, env_small, Policy().with_bandwidth(8 * MBPS))
        assert slow.cycles.nic_rx == pytest.approx(4 * fast.cycles.nic_rx, rel=1e-6)
        assert slow.energy.nic_rx == pytest.approx(4 * fast.energy.nic_rx, rel=1e-6)

    def test_distance_scales_tx_energy_only(self, env_small, range_q):
        plan = plan_query(range_q, FS_ABSENT, env_small)
        near = price_plan(plan, env_small, Policy().with_distance(100.0))
        far = price_plan(plan, env_small, Policy().with_distance(1000.0))
        assert far.energy.nic_tx == pytest.approx(
            near.energy.nic_tx * 3.0891 / 1.0891, rel=1e-6
        )
        assert far.energy.nic_rx == pytest.approx(near.energy.nic_rx, rel=1e-9)
        assert far.cycles.total() == pytest.approx(near.cycles.total(), rel=1e-9)

    def test_busy_wait_costs_more_energy_same_cycles(self, env_small, range_q):
        plan = plan_query(range_q, FS_ABSENT, env_small)
        block = price_plan(plan, env_small, Policy(busy_wait=False))
        spin = price_plan(plan, env_small, Policy(busy_wait=True))
        assert spin.energy.processor > block.energy.processor
        assert spin.cycles.total() == pytest.approx(block.cycles.total())

    def test_cpu_lowpower_saves_energy(self, env_small, range_q):
        plan = plan_query(range_q, FS_ABSENT, env_small)
        lp = price_plan(plan, env_small, Policy(cpu_lowpower=True))
        full = price_plan(plan, env_small, Policy(cpu_lowpower=False))
        assert lp.energy.processor < full.energy.processor

    def test_nic_sleep_saves_energy_in_quiet_periods(self, env_small, range_q):
        plan = plan_query(range_q, FC, env_small)
        asleep = price_plan(plan, env_small, Policy(nic_sleep=True))
        awake = price_plan(plan, env_small, Policy(nic_sleep=False))
        assert asleep.energy.total() < awake.energy.total()
        assert awake.energy.nic_idle > 0 and awake.energy.nic_sleep == 0

    def test_faster_client_same_compute_cycles_less_time(self, pa_small, range_q):
        slow_env = Environment.create(
            pa_small, client_cpu=ClientCPU(config=DEFAULT_CLIENT.with_clock(125 * MHZ))
        )
        fast_env = Environment.create(
            pa_small, client_cpu=ClientCPU(config=DEFAULT_CLIENT.with_clock(500 * MHZ))
        )
        rs = execute(range_q, FC, slow_env)
        rf = execute(range_q, FC, fast_env)
        assert rs.cycles.processor == pytest.approx(rf.cycles.processor)
        assert rf.wall_seconds == pytest.approx(rs.wall_seconds / 4, rel=1e-6)


class TestRunResultCombine:
    def test_combine_sums(self, env_small, pa_small):
        qs = range_queries(pa_small, 4, seed=31)
        results = [execute(q, FS_PRESENT, env_small) for q in qs]
        combined = RunResult.combine(results)
        assert combined.energy.total() == pytest.approx(
            sum(r.energy.total() for r in results)
        )
        assert combined.cycles.total() == pytest.approx(
            sum(r.cycles.total() for r in results)
        )
        assert combined.n_results == sum(r.n_results for r in results)
        assert len(combined.messages) == sum(len(r.messages) for r in results)

    def test_combine_empty_raises(self):
        with pytest.raises(ValueError):
            RunResult.combine([])


class TestWaitStep:
    def _plan_with_wait(self, env, listening):
        from repro.core.executor import QueryPlan, WaitStep
        import numpy as np

        return QueryPlan(
            query=None,
            config=FC,
            steps=[WaitStep(0.5, radio_listening=listening)],
            answer_ids=np.empty(0, dtype=np.int64),
            n_candidates=0,
            n_results=0,
        )

    def test_listening_wait_idles_the_radio(self, env_small):
        from repro.core.executor import price_plan

        r = price_plan(self._plan_with_wait(env_small, True), env_small, Policy())
        # 0.5 s of idle plus the 470 us sleep-exit latency (also at idle power).
        assert r.energy.nic_idle == pytest.approx(
            0.100 * (0.5 + 470e-6), rel=1e-6
        )
        assert r.cycles.wait == pytest.approx(0.5 * env_small.client_cpu.clock_hz)

    def test_sleeping_wait_sleeps_the_radio(self, env_small):
        from repro.core.executor import price_plan

        r = price_plan(self._plan_with_wait(env_small, False), env_small, Policy())
        assert r.energy.nic_sleep == pytest.approx(0.5 * 0.0198, rel=1e-6)
        assert r.energy.nic_idle == 0.0

    def test_cpu_blocked_during_wait(self, env_small):
        from repro.core.executor import price_plan

        lp = price_plan(
            self._plan_with_wait(env_small, True), env_small,
            Policy(cpu_lowpower=True),
        )
        full = price_plan(
            self._plan_with_wait(env_small, True), env_small,
            Policy(cpu_lowpower=False),
        )
        assert lp.energy.processor < full.energy.processor
