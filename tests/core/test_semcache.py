"""Property and unit suite for the semantic candidate cache.

Four hypothesis pins, per the module's exactness contract:

* random window sequences (repeats, zooms, shifted overlaps, points) served
  through a :class:`SemanticCache` produce candidate and answer arrays
  **bit-identical** to the uncached planner, per occurrence;
* a containment refine reproduces a fresh traversal's candidate set
  exactly (checked against :func:`batch_filter` directly);
* ``intersect_candidates`` / ``union_candidates`` match brute-force Python
  set algebra, including the ascending packed-position order;
* heavy eviction (capacity 1-3) never changes answers, and capacity 0
  behaves exactly like no cache at all (every verdict a miss, phase
  counters and memory-touch traces identical to uncached);
* the vectorized cache's decision layer (verdicts, source choices, LRU
  motion, eviction order, pinning) mirrors :class:`NaiveSemanticCache`
  under identical serve/insert streams.

Plus direct unit tests of validation, dataset binding, cloning, pinning,
and eviction order.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.batchplan import compute_query_phases
from repro.core.executor import Environment
from repro.core.queries import PointQuery, RangeQuery
from repro.core.semcache import (
    CacheEntry,
    NaiveSemanticCache,
    SemanticCache,
    compute_query_phases_semantic,
    intersect_candidates,
    union_candidates,
)
from repro.data.model import SegmentDataset
from repro.spatial.batchtraverse import batch_filter
from repro.spatial.mbr import MBR

HYP = dict(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_envs(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=5, max_value=80))
    rng = np.random.default_rng(seed)
    cx = rng.uniform(0, 1000, n)
    cy = rng.uniform(0, 1000, n)
    dx = rng.normal(0, 20.0, n)
    dy = rng.normal(0, 20.0, n)
    ds = SegmentDataset("hyp", cx - dx, cy - dy, cx + dx, cy + dy)
    return Environment.create(ds)


def _window(draw):
    x1, x2 = sorted((draw(st.floats(-100, 1100)), draw(st.floats(-100, 1100))))
    y1, y2 = sorted((draw(st.floats(-100, 1100)), draw(st.floats(-100, 1100))))
    return MBR(x1, y1, x2, y2)


@st.composite
def related_window_workloads(draw):
    """Window sequences with repeats, zooms, shifts, and point lookups —
    the relations the cache's verdict classes key on."""
    queries = [RangeQuery(_window(draw))]
    k = draw(st.integers(min_value=1, max_value=8))
    for _ in range(k):
        kind = draw(st.integers(0, 4))
        prev = queries[draw(st.integers(0, len(queries) - 1))]
        base = (
            prev.rect
            if isinstance(prev, RangeQuery)
            else MBR(prev.x, prev.y, prev.x, prev.y)
        )
        if kind == 0:
            queries.append(RangeQuery(_window(draw)))
        elif kind == 1:  # exact repeat
            queries.append(prev)
        elif kind == 2:  # strictly-contained zoom
            fx0 = draw(st.floats(0.0, 0.4))
            fx1 = draw(st.floats(0.6, 1.0))
            fy0 = draw(st.floats(0.0, 0.4))
            fy1 = draw(st.floats(0.6, 1.0))
            w = base.xmax - base.xmin
            h = base.ymax - base.ymin
            queries.append(RangeQuery(MBR(
                base.xmin + fx0 * w, base.ymin + fy0 * h,
                base.xmin + fx1 * w, base.ymin + fy1 * h,
            )))
        elif kind == 3:  # shifted overlap
            w = base.xmax - base.xmin
            dx = draw(st.floats(-0.5, 0.5)) * max(w, 1.0)
            queries.append(RangeQuery(MBR(
                base.xmin + dx, base.ymin, base.xmax + dx, base.ymax,
            )))
        else:  # point inside the base window
            fx = draw(st.floats(0.0, 1.0))
            fy = draw(st.floats(0.0, 1.0))
            queries.append(PointQuery(
                base.xmin + fx * (base.xmax - base.xmin),
                base.ymin + fy * (base.ymax - base.ymin),
            ))
    return queries


# ----------------------------------------------------------------------
# Hypothesis: semantic phases ≡ uncached planning
# ----------------------------------------------------------------------
@given(small_envs(), related_window_workloads())
@settings(**HYP)
def test_hypothesis_semantic_matches_uncached(env, queries):
    base = compute_query_phases(env, queries)
    cache = SemanticCache(64)
    phases, verdicts = compute_query_phases_semantic(env, queries, cache)
    assert len(phases) == len(base) == len(verdicts)
    for qp, want, v in zip(phases, base, verdicts):
        assert v in ("hit", "refine", "miss")
        assert np.array_equal(qp.cand_ids, want.cand_ids)
        assert np.array_equal(qp.answer_ids, want.answer_ids)


@given(small_envs(), related_window_workloads(),
       st.integers(min_value=1, max_value=3))
@settings(**HYP)
def test_hypothesis_eviction_never_changes_answers(env, queries, capacity):
    base = compute_query_phases(env, queries)
    cache = SemanticCache(capacity)
    phases, _ = compute_query_phases_semantic(env, queries, cache)
    assert len(cache) <= capacity
    for qp, want in zip(phases, base):
        assert np.array_equal(qp.cand_ids, want.cand_ids)
        assert np.array_equal(qp.answer_ids, want.answer_ids)


@given(small_envs(), related_window_workloads())
@settings(**HYP)
def test_hypothesis_capacity_zero_is_disabled(env, queries):
    base = compute_query_phases(env, queries)
    cache = SemanticCache(0)
    phases, verdicts = compute_query_phases_semantic(env, queries, cache)
    assert all(v == "miss" for v in verdicts)
    assert len(cache) == 0
    assert cache.hit_rate == 0.0
    for qp, want in zip(phases, base):
        a, b = qp.filter_trace, want.filter_trace
        assert a.counter.counts_dict() == b.counter.counts_dict()
        assert np.array_equal(a.regions, b.regions)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.nbytes, b.nbytes)
        assert np.array_equal(qp.answer_ids, want.answer_ids)


@given(small_envs(), st.data())
@settings(**HYP)
def test_hypothesis_containment_refine_equals_fresh_traversal(env, data):
    """A zoomed window served by refine carries a fresh traversal's exact
    candidate set (same ids, same packed order)."""
    outer = _window(data.draw)
    w = outer.xmax - outer.xmin
    h = outer.ymax - outer.ymin
    inner = MBR(
        outer.xmin + 0.1 * w, outer.ymin + 0.1 * h,
        outer.xmin + 0.9 * w, outer.ymin + 0.9 * h,
    )
    cache = SemanticCache(16)
    phases, verdicts = compute_query_phases_semantic(
        env, [RangeQuery(outer), RangeQuery(inner)], cache
    )
    assert verdicts[0] == "miss"
    assert verdicts[1] == ("hit" if inner == outer else "refine")
    fresh = batch_filter(
        env.tree,
        np.array([inner.xmin]), np.array([inner.ymin]),
        np.array([inner.xmax]), np.array([inner.ymax]),
    )
    assert np.array_equal(phases[1].cand_ids, fresh.cand_ids)


# ----------------------------------------------------------------------
# Hypothesis: candidate-set algebra ≡ brute-force set ops
# ----------------------------------------------------------------------
@st.composite
def candidate_containers(draw):
    """2-4 containers over one position universe with a shared id map."""
    universe = draw(st.lists(
        st.integers(min_value=0, max_value=500),
        min_size=0, max_size=60, unique=True,
    ))
    ids_of = {p: p * 7 + 3 for p in universe}
    n = draw(st.integers(min_value=2, max_value=4))
    containers = []
    for _ in range(n):
        subset = sorted(
            p for p in universe if draw(st.booleans())
        )
        pos = np.array(subset, dtype=np.int64)
        ids = np.array([ids_of[p] for p in subset], dtype=np.int64)
        containers.append((pos, ids))
    return containers


@given(candidate_containers())
@settings(**HYP)
def test_hypothesis_intersect_equals_set_algebra(containers):
    (pa, ia), (pb, ib) = containers[0], containers[1]
    P, I = intersect_candidates(pa, ia, pb, ib)
    want = sorted(set(pa.tolist()) & set(pb.tolist()))
    assert P.tolist() == want
    assert I.tolist() == [p * 7 + 3 for p in want]
    assert np.all(np.diff(P) > 0) or P.size <= 1


@given(candidate_containers())
@settings(**HYP)
def test_hypothesis_union_equals_set_algebra(containers):
    P, I = union_candidates(containers)
    want = sorted(set().union(*(p.tolist() for p, _ in containers)))
    assert P.tolist() == want
    assert I.tolist() == [p * 7 + 3 for p in want]


# ----------------------------------------------------------------------
# Hypothesis: the vectorized decision layer mirrors the naive one
# ----------------------------------------------------------------------
@st.composite
def rect_streams(draw):
    """Serve streams over a coarse grid so repeats/containment/overlap are
    frequent enough to exercise every verdict and the eviction path."""
    k = draw(st.integers(min_value=1, max_value=25))
    rects = []
    for _ in range(k):
        x0 = draw(st.integers(0, 6))
        y0 = draw(st.integers(0, 6))
        w = draw(st.integers(1, 4))
        h = draw(st.integers(1, 4))
        rects.append((float(x0), float(y0), float(x0 + w), float(y0 + h)))
    return rects


@given(rect_streams(), st.integers(min_value=1, max_value=5))
@settings(**HYP)
def test_hypothesis_naive_mirror(rects, capacity):
    extent = MBR(0.0, 0.0, 10.0, 10.0)
    vec = SemanticCache(capacity, pin_bucket_bits=4, pin_hits=3,
                        extent=extent)
    naive = NaiveSemanticCache(capacity, pin_bucket_bits=4, pin_hits=3,
                               extent=extent)
    for rect in rects:
        got = vec.serve(rect)
        want = naive.serve(rect)
        assert got == want
        if got[0] != "hit":
            vec.insert(rect, CacheEntry(rect))
            naive.insert(rect)
        assert list(vec._entries.keys()) == naive.rects()
        assert vec._hot == naive._hot


# ----------------------------------------------------------------------
# Unit: validation, binding, cloning, pinning, eviction order
# ----------------------------------------------------------------------
def test_constructor_validation():
    with pytest.raises(ValueError, match="capacity"):
        SemanticCache(-1)
    with pytest.raises(ValueError, match="pin_bucket_bits"):
        SemanticCache(4, pin_bucket_bits=33)
    with pytest.raises(ValueError, match="pin_hits"):
        SemanticCache(4, pin_hits=0)


def test_bind_rejects_a_different_dataset():
    rng = np.random.default_rng(7)
    a = SegmentDataset("a", *rng.uniform(0, 10, (4, 4)))
    b = SegmentDataset("b", *rng.uniform(0, 10, (4, 4)))
    cache = SemanticCache(4)
    cache.bind(a)
    cache.bind(a)  # idempotent
    with pytest.raises(ValueError, match="different dataset"):
        cache.bind(b)


def test_clone_is_independent():
    extent = MBR(0.0, 0.0, 10.0, 10.0)
    cache = SemanticCache(8, extent=extent)
    cache.insert((0.0, 0.0, 1.0, 1.0), CacheEntry((0.0, 0.0, 1.0, 1.0)))
    cache.serve((0.0, 0.0, 1.0, 1.0))
    clone = cache.clone()
    assert clone.stats_dict() == cache.stats_dict()
    clone.serve((0.0, 0.0, 1.0, 1.0))
    clone.insert((2.0, 2.0, 3.0, 3.0), CacheEntry((2.0, 2.0, 3.0, 3.0)))
    assert cache.hits == 1
    assert len(cache) == 1
    assert clone.hits == 2
    assert len(clone) == 2


def test_stats_dict_shape():
    keys = set(SemanticCache(4).stats_dict())
    assert keys == {
        "entries", "capacity", "payload_bytes", "hits", "refines",
        "misses", "hit_rate", "insertions", "evictions", "pinned_buckets",
        "nodes_visited", "refine_tests", "served_candidates",
    }


def test_lru_eviction_order():
    extent = MBR(0.0, 0.0, 10.0, 10.0)
    cache = SemanticCache(2, extent=extent)
    ra = (0.0, 0.0, 1.0, 1.0)
    rb = (5.0, 5.0, 6.0, 6.0)
    rc = (8.0, 8.0, 9.0, 9.0)
    cache.insert(ra, CacheEntry(ra))
    cache.insert(rb, CacheEntry(rb))
    cache.serve(ra)  # A becomes MRU
    cache.insert(rc, CacheEntry(rc))
    assert set(cache._entries) == {ra, rc}
    assert cache.evictions == 1


def test_pinned_bucket_survives_eviction():
    extent = MBR(0.0, 0.0, 10.0, 10.0)
    cache = SemanticCache(2, pin_bucket_bits=4, pin_hits=2, extent=extent)
    hot = (1.0, 1.0, 1.5, 1.5)
    cache.insert(hot, CacheEntry(hot))
    cache.serve(hot)
    cache.serve(hot)  # bucket reaches pin_hits -> hot
    assert cache.pinned_buckets == 1
    far1 = (8.0, 8.0, 9.0, 9.0)
    far2 = (6.0, 1.0, 7.0, 2.0)
    cache.insert(far1, CacheEntry(far1))
    cache.insert(far2, CacheEntry(far2))  # evicts far1, not the hot entry
    assert hot in cache._entries
    assert far1 not in cache._entries


def test_insert_duplicate_is_a_noop():
    extent = MBR(0.0, 0.0, 10.0, 10.0)
    cache = SemanticCache(4, extent=extent)
    r = (0.0, 0.0, 1.0, 1.0)
    assert cache.insert(r, CacheEntry(r))
    assert not cache.insert(r, CacheEntry(r))
    assert cache.insertions == 1


def test_capacity_zero_insert_refused():
    cache = SemanticCache(0, extent=MBR(0.0, 0.0, 1.0, 1.0))
    assert not cache.insert((0.0, 0.0, 1.0, 1.0),
                            CacheEntry((0.0, 0.0, 1.0, 1.0)))
    assert len(cache) == 0
