"""Policy.sweep grids and the with_loss constructor."""

from __future__ import annotations

import pytest

from repro.constants import BANDWIDTHS_MBPS, MBPS
from repro.core.executor import Policy


class TestSweepGrid:
    def test_default_grid_is_paper_bandwidths_at_one_distance(self):
        policies = Policy.sweep()
        assert [p.network.bandwidth_bps / MBPS for p in policies] == list(
            BANDWIDTHS_MBPS
        )
        assert {p.network.distance_m for p in policies} == {1000.0}
        assert all(p.network.loss_rate == 0.0 for p in policies)

    def test_loss_rates_none_builds_the_exact_pre_loss_grid(self):
        # The default sweep must be indistinguishable from one that never
        # heard of the loss knobs.
        assert Policy.sweep() == Policy.sweep(loss_rates=None)
        assert Policy.sweep(loss_rates=(0.0,)) == Policy.sweep()

    def test_order_is_distance_major_then_loss_then_bandwidth(self):
        policies = Policy.sweep(
            bandwidths_mbps=(2, 11),
            distances_m=(100.0, 1000.0),
            loss_rates=(0.0, 0.1),
        )
        key = [
            (
                p.network.distance_m,
                p.network.loss_rate,
                p.network.bandwidth_bps / MBPS,
            )
            for p in policies
        ]
        assert key == [
            (100.0, 0.0, 2.0),
            (100.0, 0.0, 11.0),
            (100.0, 0.1, 2.0),
            (100.0, 0.1, 11.0),
            (1000.0, 0.0, 2.0),
            (1000.0, 0.0, 11.0),
            (1000.0, 0.1, 2.0),
            (1000.0, 0.1, 11.0),
        ]

    def test_burst_frames_applies_to_every_lossy_policy(self):
        policies = Policy.sweep(loss_rates=(0.05, 0.1), loss_burst_frames=4.0)
        assert [p.network.loss_burst_frames for p in policies] == (
            [4.0] * len(policies)
        )

    def test_invalid_loss_rate_fails_at_sweep_construction(self):
        with pytest.raises(ValueError, match="loss_rate"):
            Policy.sweep(loss_rates=(0.0, 1.5))


class TestWithLoss:
    def test_sets_rate_and_leaves_everything_else(self):
        base = Policy().with_bandwidth(11 * MBPS)
        lossy = base.with_loss(0.05)
        assert lossy.network.loss_rate == 0.05
        assert lossy.network.bandwidth_bps == base.network.bandwidth_bps
        assert lossy.network.retx_timeout_s == base.network.retx_timeout_s
        assert lossy.nic_sleep == base.nic_sleep

    def test_loss_mode_is_respecified_on_every_call(self):
        burst = Policy().with_loss(0.1, burst_frames=5.0)
        assert burst.network.loss_burst_frames == 5.0
        # Omitting burst_frames on the next call reverts to Bernoulli
        # rather than silently inheriting the burst mode.
        assert burst.with_loss(0.1).network.loss_burst_frames is None

    def test_retransmission_knobs(self):
        p = Policy().with_loss(
            0.2, timeout_s=0.05, backoff=3.0, timeout_cap_s=2.0
        )
        assert p.network.retx_timeout_s == 0.05
        assert p.network.retx_backoff == 3.0
        assert p.network.retx_timeout_cap_s == 2.0

    def test_zero_restores_the_ideal_channel(self):
        assert Policy().with_loss(0.1).with_loss(0.0) == Policy()

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError, match="loss_rate"):
            Policy().with_loss(-0.1)
        with pytest.raises(ValueError, match="loss_burst_frames"):
            Policy().with_loss(0.1, burst_frames=0.5)
        with pytest.raises(ValueError, match="retx_backoff"):
            Policy().with_loss(0.1, backoff=0.9)
        with pytest.raises(ValueError, match="retx_timeout_s"):
            Policy().with_loss(0.1, timeout_s=-1.0)
