"""Unit tests for the fused columnar plan→price engine (colplan)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Engine, Session
from repro.core.batchplan import compute_query_phases, plan_workload_batched
from repro.core.colplan import (
    compile_slots,
    compute_query_phases_sharded,
    plan_and_price_columnar,
    price_compiled,
)
from repro.core.executor import (
    ClientComputeStep,
    Policy,
    ServerComputeStep,
    plan_query,
)
from repro.core.gridrun import RunLedger, compile_plan, price_grid
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data.workloads import knn_queries, nn_queries, range_queries

FC = SchemeConfig(Scheme.FULLY_CLIENT)
FS_PRESENT = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True)
NN_CONFIGS = (FC, FS_PRESENT)


def _slot_costs_of(plan):
    """A plan's compute costs in slot order ([pre?, server, post?])."""
    out = []
    for step in plan.steps:
        if isinstance(step, ClientComputeStep):
            out.append(step.cost)
        elif isinstance(step, ServerComputeStep):
            out.append(step)  # compile_slots reads only .cycles
    return out


class TestValidation:
    def test_empty_queries_raise(self, env_small):
        with pytest.raises(ValueError, match="at least one query"):
            plan_and_price_columnar(env_small, [], [FC], [Policy()])

    def test_empty_policies_raise(self, env_small, pa_small):
        qs = range_queries(pa_small, 2)
        with pytest.raises(ValueError, match="at least one policy"):
            plan_and_price_columnar(env_small, qs, [FC], [])

    def test_empty_configs_return_empty(self, env_small, pa_small):
        qs = range_queries(pa_small, 2)
        assert plan_and_price_columnar(env_small, qs, [], [Policy()]) == []

    def test_invalid_scheme_for_query_raises(self, env_small, pa_small):
        qs = nn_queries(pa_small, 2)
        bad = SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER,
                           data_at_client=True)
        with pytest.raises(ValueError):
            plan_and_price_columnar(env_small, qs, [bad], [Policy()])

    def test_plan_grid_rejects_columnar(self, env_small, pa_small):
        qs = range_queries(pa_small, 2)
        with pytest.raises(ValueError, match="never materializes plans"):
            Engine(env_small).plan_grid(qs, [FC], planner="columnar")

    def test_session_scalar_engine_rejects_columnar(self, env_small, pa_small):
        qs = range_queries(pa_small, 2)
        with pytest.raises(ValueError, match="engine='scalar'"):
            Session(env_small).run(
                qs, schemes=[FC], planner="columnar", engine="scalar"
            )


class TestPriceCompiled:
    def _compiled(self, env, n=2):
        qs = range_queries(env.dataset, n)
        [plans] = plan_workload_batched(env, qs, [FS_PRESENT])
        phases = compute_query_phases(env, qs)
        net = Policy().network
        return [
            compile_slots(qp, FS_PRESENT, _slot_costs_of(plan), env, net)
            for qp, plan in zip(phases, plans)
        ]

    def test_empty_inputs_raise(self, env_small):
        compiled = self._compiled(env_small)
        with pytest.raises(ValueError, match="compiled plan"):
            price_compiled([], [Policy()], env_small, Policy().network)
        with pytest.raises(ValueError, match="policy"):
            price_compiled(compiled, [], env_small, Policy().network)

    def test_framing_mismatch_raises(self, env_small):
        import dataclasses

        compiled = self._compiled(env_small)
        base = Policy()
        other = dataclasses.replace(
            base,
            network=dataclasses.replace(base.network, mtu_bytes=576),
        )
        assert other.network.mtu_bytes != Policy().network.mtu_bytes
        with pytest.raises(ValueError, match="framing"):
            price_compiled(
                compiled, [other], env_small, Policy().network
            )

    def test_matches_price_grid(self, env_small):
        qs = range_queries(env_small.dataset, 3)
        [plans] = plan_workload_batched(env_small, qs, [FS_PRESENT])
        policies = [Policy(), Policy().with_bandwidth(2e6)]
        want = price_grid(plans, policies, env_small)
        compiled = self._compiled(env_small, n=3)
        got = price_compiled(compiled, policies, env_small, Policy().network)
        assert np.array_equal(got.energy_processor, want.energy_processor)
        assert np.array_equal(got.wall_s, want.wall_s)
        assert np.array_equal(got.cycles_wait, want.cycles_wait)


class TestCompileSlots:
    @pytest.mark.parametrize("config", list(ADEQUATE_MEMORY_CONFIGS))
    def test_equals_compile_plan_every_scheme(self, env_small, config):
        qs = range_queries(env_small.dataset, 3, seed=44)
        net = Policy().network
        env_small.reset_caches()
        for q in qs:
            plan = plan_query(q, config, env_small)
            want = compile_plan(plan, env_small, net)
            phases = compute_query_phases(env_small, [q])[0]
            got = compile_slots(
                phases, config, _slot_costs_of(plan), env_small, net
            )
            for field in (
                "proc_cycles", "proc_energy_j", "quiet_s", "idle_wait_s",
                "sleep_wait_s", "tx_bits", "rx_bits", "tx_frames",
                "rx_frames", "n_exits_sleep", "n_tx_wake_sleep",
                "n_exits_nosleep", "n_tx_wake_nosleep", "messages",
                "n_candidates", "n_results",
            ):
                assert getattr(got, field) == getattr(want, field), field
            assert np.array_equal(got.answer_ids, want.answer_ids)


class TestShardedPhases:
    def test_serial_fallbacks(self, env_small, pa_small):
        """processes<=1 or tiny workloads must not fork."""
        qs = range_queries(pa_small, 3)
        for processes in (None, 0, 1, 8):  # 8 > len(qs)/2 -> serial too
            phases = compute_query_phases_sharded(
                env_small, qs, processes=processes
            )
            assert len(phases) == len(qs)

    def test_engine_run_columnar(self, env_small, pa_small):
        """Engine.run_columnar returns per-scheme grids + plan ledger events."""
        qs = knn_queries(pa_small, 4)
        ledger = RunLedger()
        engine = Engine(env_small, ledger=ledger)
        grids = engine.run_columnar(qs, NN_CONFIGS, [Policy()])
        assert len(grids) == len(NN_CONFIGS)
        assert all(g.shape == (len(qs), 1) for g in grids)
        plan_events = [r for r in ledger.records if r["event"] == "plan"]
        assert len(plan_events) == len(NN_CONFIGS)
        assert all(r["planner"] == "columnar" for r in plan_events)
