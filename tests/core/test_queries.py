"""Query types."""

from __future__ import annotations

from repro.core.queries import NNQuery, PointQuery, QueryKind, RangeQuery
from repro.spatial.mbr import MBR


class TestKinds:
    def test_point(self):
        q = PointQuery(1.0, 2.0)
        assert q.kind is QueryKind.POINT
        assert q.kind.has_phases
        assert q.focus() == (1.0, 2.0)

    def test_range(self):
        q = RangeQuery(MBR(0, 0, 2, 4))
        assert q.kind is QueryKind.RANGE
        assert q.kind.has_phases
        assert q.focus() == (1.0, 2.0)

    def test_nn_has_no_phases(self):
        q = NNQuery(3.0, 4.0)
        assert q.kind is QueryKind.NEAREST_NEIGHBOR
        assert not q.kind.has_phases
        assert q.focus() == (3.0, 4.0)

    def test_queries_are_hashable_values(self):
        assert PointQuery(1, 2) == PointQuery(1, 2)
        assert len({NNQuery(0, 0), NNQuery(0, 0), NNQuery(1, 0)}) == 2

    def test_point_default_eps_positive(self):
        assert PointQuery(0, 0).eps > 0
