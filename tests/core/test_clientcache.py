"""Insufficient-memory cached-client session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clientcache import ClientCacheSession
from repro.core.executor import (
    ClientComputeStep,
    Policy,
    RecvStep,
    SendStep,
    ServerComputeStep,
    price_plan,
)
from repro.core.queries import NNQuery, PointQuery, RangeQuery
from repro.data.workloads import proximity_sequence, range_queries
from repro.spatial import bruteforce as bf
from repro.spatial.geometry import point_segment_distance_sq
from repro.spatial.mbr import MBR


BUDGET = 256 * 1024


def _anchored_window(ds, i, frac=0.01):
    cx = float(ds.x1[i] + ds.x2[i]) / 2.0
    cy = float(ds.y1[i] + ds.y2[i]) / 2.0
    w = ds.extent.width * frac
    h = ds.extent.height * frac
    return RangeQuery(MBR(cx - w, cy - h, cx + w, cy + h))


class TestSessionBasics:
    def test_first_query_misses(self, env_small, pa_small):
        session = ClientCacheSession(env_small, BUDGET)
        q = _anchored_window(pa_small, pa_small.size // 2)
        plan = session.plan(q)
        assert session.misses == 1 and session.local_hits == 0
        kinds = [type(s) for s in plan.steps]
        assert kinds == [SendStep, ServerComputeStep, RecvStep, ClientComputeStep]

    def test_repeat_query_hits_locally(self, env_small, pa_small):
        session = ClientCacheSession(env_small, BUDGET)
        q = _anchored_window(pa_small, pa_small.size // 2, frac=0.005)
        session.plan(q)
        plan2 = session.plan(q)
        assert session.local_hits == 1
        assert all(isinstance(s, ClientComputeStep) for s in plan2.steps)

    def test_far_jump_evicts_and_misses(self, env_small, pa_small):
        # Anchor the two windows on the spatially extreme segments, with a
        # budget far below the dataset size, so the second query cannot be
        # covered by the first shipment.
        session = ClientCacheSession(env_small, 32 * 1024)
        west = int(np.argmin(pa_small.x1))
        east = int(np.argmax(pa_small.x1))
        session.plan(_anchored_window(pa_small, west, frac=0.002))
        session.plan(_anchored_window(pa_small, east, frac=0.002))
        assert session.misses == 2

    def test_budget_respected(self, env_small, pa_small):
        session = ClientCacheSession(env_small, BUDGET)
        session.plan(_anchored_window(pa_small, pa_small.size // 2, frac=0.005))
        assert session.region is not None
        assert session.region.total_bytes <= BUDGET

    def test_invalid_budget_raises(self, env_small):
        with pytest.raises(ValueError):
            ClientCacheSession(env_small, 0)


class TestAnswerEquivalence:
    def test_range_answers_match_master(self, env_small, pa_small):
        session = ClientCacheSession(env_small, BUDGET)
        for q in proximity_sequence(pa_small, y=6, n_groups=3, seed=41):
            plan = session.plan(q)
            want = bf.range_query(pa_small, q.rect)
            assert np.array_equal(np.sort(plan.answer_ids), np.sort(want)), (
                f"query {q} (hits={session.local_hits}, misses={session.misses})"
            )
        assert session.local_hits > 0  # locality must actually pay off

    def test_point_query_equivalence(self, env_small, pa_small):
        session = ClientCacheSession(env_small, BUDGET)
        i = pa_small.size // 2
        # Warm the cache with a window around segment i, then a point query
        # on its endpoint should be answered locally and exactly.
        session.plan(_anchored_window(pa_small, i, frac=0.01))
        q = PointQuery(float(pa_small.x1[i]), float(pa_small.y1[i]))
        plan = session.plan(q)
        want = bf.point_query(pa_small, q.x, q.y, q.eps)
        assert np.array_equal(np.sort(plan.answer_ids), np.sort(want))

    def test_nn_certified_local_answer_is_exact(self, env_small, pa_small):
        session = ClientCacheSession(env_small, BUDGET)
        i = pa_small.size // 2
        session.plan(_anchored_window(pa_small, i, frac=0.01))
        cx = float(pa_small.x1[i] + pa_small.x2[i]) / 2.0
        cy = float(pa_small.y1[i] + pa_small.y2[i]) / 2.0
        q = NNQuery(cx, cy)
        plan = session.plan(q)
        assert plan.n_results == 1
        got = int(plan.answer_ids[0])
        want = bf.nearest_neighbor(pa_small, cx, cy)
        d_got = point_segment_distance_sq(cx, cy, *pa_small.segment(got))
        d_want = point_segment_distance_sq(cx, cy, *pa_small.segment(want))
        assert d_got == pytest.approx(d_want, rel=1e-12, abs=1e-12)

    def test_nn_outside_coverage_goes_to_server(self, env_small, pa_small):
        session = ClientCacheSession(env_small, BUDGET)
        session.plan(_anchored_window(pa_small, 0, frac=0.004))
        ext = pa_small.extent
        q = NNQuery(ext.xmax - 1.0, ext.ymax - 1.0)
        plan = session.plan(q)
        assert session.misses == 2  # did not trust the local cache
        want = bf.nearest_neighbor(pa_small, q.x, q.y)
        d_got = point_segment_distance_sq(
            q.x, q.y, *pa_small.segment(int(plan.answer_ids[0]))
        )
        d_want = point_segment_distance_sq(q.x, q.y, *pa_small.segment(want))
        assert d_got == pytest.approx(d_want, rel=1e-12, abs=1e-12)


class TestFallback:
    def test_oversized_query_falls_back_to_server(self, env_small, pa_small):
        # A budget so small that the whole-extent query's candidates cannot
        # fit: the session must serve it fully at the server, correctly.
        session = ClientCacheSession(env_small, 4 * 1024)
        q = RangeQuery(pa_small.extent)
        plan = session.plan(q)
        assert session.fallbacks == 1
        want = bf.range_query(pa_small, q.rect)
        assert np.array_equal(np.sort(plan.answer_ids), np.sort(want))
        assert session.region is None  # nothing cached


class TestPricing:
    def test_miss_costs_more_than_hit(self, env_small, pa_small):
        session = ClientCacheSession(env_small, BUDGET)
        q = _anchored_window(pa_small, pa_small.size // 2, frac=0.005)
        miss_plan = session.plan(q)
        hit_plan = session.plan(q)
        policy = Policy()
        miss = price_plan(miss_plan, env_small, policy)
        hit = price_plan(hit_plan, env_small, policy)
        assert miss.energy.total() > 5 * hit.energy.total()
        assert miss.cycles.total() > hit.cycles.total()
        assert hit.energy.nic_tx == 0.0  # hits never touch the radio
