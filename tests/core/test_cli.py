"""CLI surface (python -m repro)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_kinds(self):
        for kind in ("point", "range", "nn"):
            args = build_parser().parse_args(["query", kind])
            assert args.kind == kind

    def test_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.dataset == "PA"
        assert args.scale == 0.1


class TestCommands:
    def test_info(self, capsys):
        assert main(["--scale", "0.02", "info"]) == 0
        out = capsys.readouterr().out
        assert "segments" in out and "index" in out

    def test_info_nyc(self, capsys):
        assert main(["--dataset", "NYC", "--scale", "0.02", "info"]) == 0
        assert "NYC" in capsys.readouterr().out

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["--dataset", "MARS", "info"])

    def test_taxonomy(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "Fully at the Client" in out
        assert "Insufficient Memory" in out

    @pytest.mark.parametrize("kind", ["point", "range", "nn"])
    def test_query(self, capsys, kind):
        assert main(["--scale", "0.02", "query", kind, "--bandwidth", "4"]) == 0
        out = capsys.readouterr().out
        assert "mJ" in out and "ms" in out
        assert "Fully at the Client" in out

    def test_figure_fig4(self, capsys):
        assert main(["--scale", "0.02", "figure", "fig4", "--runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "Mbps" in out and "E[J]" in out

    def test_figure_fig10(self, capsys):
        assert main(["--scale", "0.02", "figure", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "buffer" in out

    def test_figure_unknown_exits(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestBenchCommand:
    def test_help_lists_bench_and_ledger(self, capsys):
        """``python -m repro --help`` advertises bench and its --ledger flag."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "bench" in out
        assert "--ledger" in out
        args = build_parser().parse_args(["bench", "--ledger", "x.jsonl"])
        assert args.ledger == "x.jsonl"
        assert args.sweep == "fig5"

    def test_bench_writes_ledger(self, capsys, tmp_path):
        from repro.core.gridrun import read_ledger

        path = str(tmp_path / "bench.jsonl")
        assert main(
            ["--scale", "0.02", "bench", "--runs", "3", "--ledger", path]
        ) == 0
        out = capsys.readouterr().out
        assert "run-ledger summary" in out
        assert "speedup" in out
        records = read_ledger(path)
        events = {r["event"] for r in records}
        assert {"plan", "price", "run", "speedup"} <= events
        speedup = [r for r in records if r["event"] == "speedup"][-1]
        assert speedup["batched_s"] > 0 and speedup["scalar_s"] > 0
        assert speedup["max_rel_err"] < 1e-9

    def test_bench_in_memory(self, capsys):
        assert main(["--scale", "0.02", "bench", "--runs", "2", "--sweep", "fig6"]) == 0
        assert "price" in capsys.readouterr().out

    def test_serve(self, capsys, tmp_path):
        import json

        from repro.core.gridrun import read_ledger

        ledger = str(tmp_path / "serve.jsonl")
        out_json = str(tmp_path / "serve.json")
        assert main(
            [
                "--scale", "0.02", "serve",
                "--clients", "4", "--duration", "2", "--seed", "3",
                "--ledger", ledger, "--json", out_json,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "latency" in out
        events = {r["event"] for r in read_ledger(ledger)}
        assert {"serve_batch", "outcome", "serve"} <= events
        with open(out_json) as fh:
            record = json.load(fh)
        assert record["planner"] == "batched"
        assert record["n_served"] >= 0
        assert "provenance" in record

    def test_serve_serial_planner(self, capsys):
        assert main(
            [
                "--scale", "0.02", "serve",
                "--clients", "2", "--duration", "1",
                "--planner", "serial", "--rate", "1.5",
            ]
        ) == 0
        assert "serial planner" in capsys.readouterr().out
