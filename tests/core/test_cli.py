"""CLI surface (python -m repro)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_kinds(self):
        for kind in ("point", "range", "nn"):
            args = build_parser().parse_args(["query", kind])
            assert args.kind == kind

    def test_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.dataset == "PA"
        assert args.scale == 0.1


class TestCommands:
    def test_info(self, capsys):
        assert main(["--scale", "0.02", "info"]) == 0
        out = capsys.readouterr().out
        assert "segments" in out and "index" in out

    def test_info_nyc(self, capsys):
        assert main(["--dataset", "NYC", "--scale", "0.02", "info"]) == 0
        assert "NYC" in capsys.readouterr().out

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["--dataset", "MARS", "info"])

    def test_taxonomy(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "Fully at the Client" in out
        assert "Insufficient Memory" in out

    @pytest.mark.parametrize("kind", ["point", "range", "nn"])
    def test_query(self, capsys, kind):
        assert main(["--scale", "0.02", "query", kind, "--bandwidth", "4"]) == 0
        out = capsys.readouterr().out
        assert "mJ" in out and "ms" in out
        assert "Fully at the Client" in out

    def test_figure_fig4(self, capsys):
        assert main(["--scale", "0.02", "figure", "fig4", "--runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "Mbps" in out and "E[J]" in out

    def test_figure_fig10(self, capsys):
        assert main(["--scale", "0.02", "figure", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "buffer" in out

    def test_figure_unknown_exits(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])
