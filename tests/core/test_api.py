"""Session facade: engine/planner equivalence, validation, RunTable."""

from __future__ import annotations

import pytest

from repro.api import RunRow, RunTable, Session, SweepCell
from repro.constants import (
    BANDWIDTHS_MBPS,
    MBPS,
    NetworkConfig,
    NICPowerTable,
)
from repro.core.executor import WAIT_POLICIES, Policy
from repro.core.gridrun import RunLedger
from repro.core.batchplan import plans_equal
from repro.core.queries import KNNQuery
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data.workloads import (
    knn_queries,
    nn_queries,
    proximity_sequence,
    range_queries,
)

FS = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True)
FC = SchemeConfig(Scheme.FULLY_CLIENT)


class TestEngineEquivalence:
    """Scalar and batched planners/pricers stay interchangeable."""

    def test_serial_and_batched_planners_agree(self, env_small, pa_small):
        qs = range_queries(pa_small, 4, seed=31)
        session = Session(env_small)
        batched = session.plan(qs, FS)
        serial = Session(env_small).plan(qs, FS, planner="scalar")
        assert len(batched) == len(serial) == len(qs)
        assert plans_equal(batched, serial)

    def test_scalar_and_batched_engines_agree(self, env_small, pa_small):
        qs = range_queries(pa_small, 4, seed=31)
        session = Session(env_small)
        plans = session.plan(qs, FS)
        for policy in Policy.sweep():
            scalar = session.price(plans, policy, engine="scalar")[0]
            batched = session.price(plans, policy, engine="batched")[0]
            assert batched.energy.total() == pytest.approx(
                scalar.energy.total(), rel=1e-9
            )
            assert batched.cycles.total() == pytest.approx(
                scalar.cycles.total(), rel=1e-9
            )

    def test_run_matches_per_policy_scalar_pricing(self, env_small, pa_small):
        qs = range_queries(pa_small, 3, seed=32)
        configs = ADEQUATE_MEMORY_CONFIGS[:2]
        policies = [
            Policy().with_bandwidth(bw * MBPS) for bw in BANDWIDTHS_MBPS
        ]
        session = Session(env_small)
        table = session.run(qs, schemes=configs, policies=policies)
        cells = table.cells()
        assert set(cells) == {cfg.label for cfg in configs}
        for cfg in configs:
            plans = session.plan(qs, cfg)
            oracle = session.price(plans, policies, engine="scalar")
            for bw, cell, ref in zip(BANDWIDTHS_MBPS, cells[cfg.label], oracle):
                assert cell.bandwidth_mbps == bw
                assert cell.energy_j == pytest.approx(
                    ref.energy.total(), rel=1e-9
                )
                assert cell.cycles == pytest.approx(
                    ref.cycles.total(), rel=1e-9
                )

    def test_plan_cached_deterministic(self, env_small, pa_small):
        qs = proximity_sequence(pa_small, y=4, n_groups=2, seed=33)
        plans_a, cache_a = Session(env_small).plan_cached(qs, 256 * 1024)
        plans_b, cache_b = Session(env_small).plan_cached(qs, 256 * 1024)
        assert len(plans_a) == len(plans_b) == len(qs)
        assert cache_a.local_hits == cache_b.local_hits
        assert cache_a.misses == cache_b.misses


class TestPolicyConstruction:
    def test_sweep_default_is_paper_grid(self):
        policies = Policy.sweep()
        assert [p.network.bandwidth_bps / MBPS for p in policies] == list(
            BANDWIDTHS_MBPS
        )

    def test_sweep_custom_bandwidths_and_distances(self):
        policies = Policy.sweep(
            bandwidths_mbps=(2, 11), distances_m=(100.0, 1000.0)
        )
        assert len(policies) == 4
        assert {p.network.distance_m for p in policies} == {100.0, 1000.0}

    def test_sweep_wait_policies(self):
        for name, flags in WAIT_POLICIES.items():
            p = Policy.sweep(bandwidths_mbps=(2,), wait=name)[0]
            assert p.busy_wait == flags["busy_wait"]
            assert p.cpu_lowpower == flags["cpu_lowpower"]

    def test_unknown_wait_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown wait policy"):
            Policy().with_wait("spinny")
        with pytest.raises(ValueError, match="unknown wait policy"):
            Policy.sweep(wait="spinny")

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth_bps"):
            NetworkConfig(bandwidth_bps=-2.0 * MBPS)
        with pytest.raises(ValueError, match="bandwidth_bps"):
            Policy().with_bandwidth(0.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError, match="distance_m"):
            NetworkConfig(distance_m=-1.0)
        with pytest.raises(ValueError, match="distance_m"):
            Policy().with_distance(-5.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError, match="transmit_1km_w"):
            NICPowerTable(transmit_1km_w=-1.5)
        with pytest.raises(ValueError, match="receive_w"):
            NICPowerTable(receive_w=-0.1)

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            NetworkConfig(2.0 * MBPS)  # noqa: B026 - positional forbidden
        with pytest.raises(TypeError):
            NICPowerTable(1.5)
        with pytest.raises(TypeError):
            Policy(NetworkConfig())

    def test_policy_type_validation(self):
        with pytest.raises(TypeError):
            Policy(network="11mbps")
        with pytest.raises(TypeError):
            Policy(nic_sleep="yes")


class TestSessionRun:
    def test_run_table_shape_and_order(self, env_small, pa_small):
        qs = range_queries(pa_small, 2, seed=34)
        configs = [FC, FS]
        table = Session(env_small).run(qs, schemes=configs)
        assert isinstance(table, RunTable)
        assert len(table) == 2 * len(BANDWIDTHS_MBPS)
        assert table.schemes == [FC.label, FS.label]
        assert isinstance(table[0], RunRow)
        by_scheme = table.by_scheme()
        assert [r.bandwidth_mbps for r in by_scheme[FS.label]] == list(
            BANDWIDTHS_MBPS
        )

    def test_single_query_single_scheme_single_policy(self, env_small, pa_small):
        q = range_queries(pa_small, 1, seed=35)[0]
        table = Session(env_small).run(q, schemes=FS, policies=Policy())
        assert len(table) == 1
        assert table[0].energy_j > 0
        assert table[0].dwell is not None
        assert isinstance(table[0].cell(), SweepCell)

    def test_best_row(self, env_small, pa_small):
        qs = range_queries(pa_small, 2, seed=35)
        table = Session(env_small).run(qs, schemes=[FC, FS])
        best = table.best("energy_j")
        assert best.energy_j == min(r.energy_j for r in table)

    def test_plan_cache_reused_across_runs(self, env_small, pa_small):
        qs = range_queries(pa_small, 2, seed=36)
        session = Session(env_small)
        session.run(qs, schemes=FS, policies=Policy())
        assert session.plan_cache.misses == 1
        session.run(qs, schemes=FS, policies=Policy(nic_sleep=False))
        assert session.plan_cache.hits == 1

    def test_ledger_events(self, env_small, pa_small):
        qs = range_queries(pa_small, 2, seed=37)
        ledger = RunLedger()
        session = Session(env_small, ledger=ledger)
        session.run(qs, schemes=FS, policies=Policy())
        events = [r["event"] for r in ledger.records]
        assert events == ["plan", "price", "run"]
        run_rec = ledger.records[-1]
        assert run_rec["scheme"] == FS.label
        assert "nic" in run_rec and "sleep_exits" in run_rec["nic"]
        assert run_rec["ops"]["results"] >= 0

    def test_bad_engine_rejected(self, env_small, pa_small):
        qs = range_queries(pa_small, 1, seed=38)
        session = Session(env_small)
        with pytest.raises(ValueError, match="unknown engine"):
            session.run(qs, schemes=FS, engine="quantum")
        with pytest.raises(ValueError, match="unknown engine"):
            session.price([], Policy(), engine="quantum")

    def test_bad_source_rejected(self):
        with pytest.raises(TypeError, match="SegmentDataset or an Environment"):
            Session(42)

    def test_session_from_dataset(self, pa_small):
        session = Session(pa_small)
        assert session.dataset is pa_small
        assert session.fingerprint == Session(pa_small).fingerprint


class TestNNWorkloads:
    """NN/k-NN workloads through the Session facade's batched planner."""

    def test_plan_grid_nn_knn_batched_vs_scalar(self, env_small, pa_small):
        qs = nn_queries(pa_small, 4, seed=51) + knn_queries(pa_small, 4, seed=52)
        schemes = [FC, FS]
        batched = Session(env_small).plan_grid(qs, schemes)
        scalar = Session(env_small).plan_grid(qs, schemes, planner="scalar")
        for b, s in zip(batched, scalar):
            assert plans_equal(b, s)

    def test_plan_single_knn_query(self, env_small):
        [plan] = Session(env_small).plan(KNNQuery(0.0, 0.0, k=5), FC)
        assert plan.n_results == 5

    def test_run_knn_grid(self, env_small, pa_small):
        qs = knn_queries(pa_small, 3, seed=53)
        table = Session(env_small).run(
            qs, schemes=[FC, FS], policies=Policy()
        )
        assert len(table) == 2
        assert all(r.energy_j > 0 for r in table)


class TestPlanMaterialization:
    """plan_grid's typed refusal of plan-free planners."""

    def test_columnar_raises_typed_exception(self, env_small, pa_small):
        from repro.api import MATERIALIZING_PLANNERS, PlanMaterializationError

        qs = range_queries(pa_small, 1, seed=61)
        with pytest.raises(PlanMaterializationError) as exc:
            Session(env_small).plan_grid(qs, [FS], planner="columnar")
        err = exc.value
        assert isinstance(err, ValueError)  # backward compatible
        assert err.planner == "columnar"
        assert err.allowed == tuple(MATERIALIZING_PLANNERS)
        assert err.allowed == ("batched", "scalar")
        for name in err.allowed:
            assert repr(name) in str(err)

    def test_unknown_planner_still_generic_error(self, env_small, pa_small):
        qs = range_queries(pa_small, 1, seed=62)
        with pytest.raises(ValueError, match="unknown planner"):
            Session(env_small).plan_grid(qs, [FS], planner="magic")

    def test_cli_surfaces_allowed_planners(self, env_small, pa_small):
        from repro.api import PlanMaterializationError

        qs = range_queries(pa_small, 1, seed=63)
        try:
            Session(env_small).plan_grid(qs, [FS], planner="columnar")
        except PlanMaterializationError as err:
            message = str(err)
        assert "'batched'" in message and "'scalar'" in message
        assert "run_columnar" in message


class TestSemanticCacheWiring:
    """Session/Engine semantic_cache configuration and ledger surface."""

    def test_semantic_cache_requires_type(self, env_small):
        with pytest.raises(TypeError, match="SemanticCache"):
            Session(env_small, semantic_cache=42)

    def test_engine_source_rejects_semantic_cache(self, env_small):
        from repro.api import Engine
        from repro.core.semcache import SemanticCache

        core = Engine(env_small)
        with pytest.raises(TypeError, match="shared Engine"):
            Session(core, semantic_cache=SemanticCache(8))

    def test_semantic_cache_requires_batched_planner(self, env_small, pa_small):
        from repro.core.semcache import SemanticCache

        qs = range_queries(pa_small, 1, seed=64)
        session = Session(env_small, semantic_cache=SemanticCache(8))
        with pytest.raises(ValueError, match="semantic_cache"):
            session.plan_grid(qs, [FS], planner="scalar")

    def test_semantic_cache_property_delegates(self, env_small):
        from repro.core.semcache import SemanticCache

        cache = SemanticCache(8)
        session = Session(env_small, semantic_cache=cache)
        assert session.semantic_cache is cache
        assert Session(env_small).semantic_cache is None

    def test_plan_cache_bypassed_with_semantic_cache(self, env_small, pa_small):
        from repro.core.semcache import SemanticCache

        qs = range_queries(pa_small, 2, seed=65)
        session = Session(env_small, semantic_cache=SemanticCache(8))
        session.run(qs, schemes=FS, policies=Policy())
        session.run(qs, schemes=FS, policies=Policy())
        # Plans depend on evolving cache state, so the plan cache must
        # never be consulted or populated.
        assert session.plan_cache.hits == 0
        assert session.plan_cache.misses == 0

    def test_semcache_ledger_event_and_answers(self, env_small, pa_small):
        from repro.core.semcache import SemanticCache

        qs = range_queries(pa_small, 3, seed=66)
        ledger = RunLedger()
        cached = Session(
            env_small, ledger=ledger, semantic_cache=SemanticCache(8)
        )
        plain = Session(env_small)
        t_cached = cached.run(qs, schemes=FS, policies=Policy())
        t_plain = plain.run(qs, schemes=FS, policies=Policy())
        assert [r.result.n_results for r in t_cached] == [
            r.result.n_results for r in t_plain
        ]
        events = [r for r in ledger.records if r["event"] == "semcache"]
        assert events
        assert events[-1]["misses"] >= 1
        assert events[-1]["entries"] >= 1

    def test_run_columnar_with_semantic_cache(self, env_small, pa_small):
        from repro.core.semcache import SemanticCache

        qs = range_queries(pa_small, 3, seed=67)
        cached = Session(env_small, semantic_cache=SemanticCache(8))
        got = cached.run(
            qs, schemes=FS, policies=Policy(), planner="columnar"
        )
        want = Session(env_small).run(
            qs, schemes=FS, policies=Policy(), planner="columnar"
        )
        assert [r.result.n_results for r in got] == [
            r.result.n_results for r in want
        ]
        assert cached.semantic_cache.lookups == len(qs)
