"""Freshness under server-side updates (extension; paper future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.executor import Policy
from repro.core.freshness import (
    FreshClientSession,
    FreshnessPolicy,
    SessionStats,
    UpdateStream,
)
from repro.data.workloads import proximity_sequence

BUDGET = 192 * 1024


def _session(env, rate, policy, ttl_s=60.0, seed=53):
    stream = UpdateStream(len(env.tree.entry_ids), rate, seed=seed)
    return FreshClientSession(
        env, BUDGET, stream, policy=policy, ttl_s=ttl_s
    )


class TestUpdateStream:
    def test_zero_rate_never_updates(self):
        s = UpdateStream(1000, 0.0)
        assert s.updates_in(0.0, 1e6, 0, 1000) == 0

    def test_counts_grow_with_window(self):
        s = UpdateStream(1000, 5.0, seed=1)
        a = s.updates_in(0.0, 10.0, 0, 1000)
        b = s.updates_in(0.0, 100.0, 0, 1000)
        assert 0 < a < b

    def test_rate_roughly_respected(self):
        s = UpdateStream(1000, 50.0, seed=2)
        n = s.updates_in(0.0, 100.0, 0, 1000)
        assert 3500 < n < 6500  # 5000 expected

    def test_range_restriction(self):
        s = UpdateStream(1000, 50.0, seed=3)
        full = s.updates_in(0.0, 50.0, 0, 1000)
        half = s.updates_in(0.0, 50.0, 0, 500)
        assert 0 < half < full

    def test_deterministic(self):
        a = UpdateStream(1000, 10.0, seed=7)
        b = UpdateStream(1000, 10.0, seed=7)
        assert a.updates_in(0, 20, 0, 1000) == b.updates_in(0, 20, 0, 1000)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            UpdateStream(0, 1.0)
        with pytest.raises(ValueError):
            UpdateStream(10, -1.0)
        with pytest.raises(ValueError):
            UpdateStream(10, 1.0).updates_in(5, 1, 0, 10)


class TestPolicies:
    @pytest.fixture()
    def workload(self, pa_small):
        return proximity_sequence(pa_small, y=15, n_groups=2, seed=59)

    def test_none_policy_accumulates_staleness_under_churn(
        self, env_small, workload
    ):
        stats = _session(env_small, rate=50.0, policy=FreshnessPolicy.NONE).run(
            workload
        )
        assert stats.queries == len(workload)
        assert stats.stale_answers > 0
        assert stats.verifications == 0

    def test_none_policy_fresh_without_updates(self, env_small, workload):
        stats = _session(env_small, rate=0.0, policy=FreshnessPolicy.NONE).run(
            workload
        )
        assert stats.staleness == 0.0

    def test_verify_policy_never_stale(self, env_small, workload):
        stats = _session(env_small, rate=50.0, policy=FreshnessPolicy.VERIFY).run(
            workload
        )
        assert stats.stale_answers == 0
        assert stats.verifications > 0

    def test_verify_costs_more_energy_than_none(self, env_small, workload):
        none = _session(env_small, rate=50.0, policy=FreshnessPolicy.NONE).run(
            workload
        )
        env_small.reset_caches()
        verify = _session(env_small, rate=50.0, policy=FreshnessPolicy.VERIFY).run(
            workload
        )
        assert verify.energy.total() > none.energy.total()

    def test_ttl_bounds_staleness_between_extremes(self, env_small, workload):
        none = _session(env_small, rate=50.0, policy=FreshnessPolicy.NONE).run(
            workload
        )
        env_small.reset_caches()
        ttl = _session(
            env_small, rate=50.0, policy=FreshnessPolicy.TTL, ttl_s=10.0
        ).run(workload)
        assert ttl.refetches > 0
        assert ttl.staleness <= none.staleness

    def test_ttl_expiry_forces_refetch(self, env_small, pa_small):
        qs = proximity_sequence(pa_small, y=6, n_groups=1, seed=61)
        sess = _session(
            env_small, rate=0.0, policy=FreshnessPolicy.TTL, ttl_s=0.5
        )
        # think_time 2 s per query >> ttl 0.5 s: every hit has expired.
        stats = sess.run(qs)
        assert stats.refetches >= len(qs) - 1

    def test_answers_still_exact_under_any_policy(self, env_small, pa_small):
        """Version churn never corrupts the geometry answers themselves."""
        from repro.spatial import bruteforce as bf

        qs = proximity_sequence(pa_small, y=5, n_groups=1, seed=63)
        sess = _session(env_small, rate=20.0, policy=FreshnessPolicy.NONE)
        for q in qs:
            plan = sess.run_query(q)
            want = np.sort(bf.range_query(pa_small, q.rect))
            assert np.array_equal(np.sort(plan.answer_ids), want)

    def test_invalid_session_params(self, env_small):
        stream = UpdateStream(100, 1.0)
        with pytest.raises(ValueError):
            FreshClientSession(env_small, BUDGET, stream, ttl_s=0.0)
        with pytest.raises(ValueError):
            FreshClientSession(env_small, BUDGET, stream, think_time_s=-1.0)


class TestStats:
    def test_empty_stats(self):
        s = SessionStats()
        assert s.queries == 0
        assert s.staleness == 0.0
