"""Scheme advisor: verdicts must match the measured winners."""

from __future__ import annotations

import pytest

from repro.constants import MBPS
from repro.core.advisor import Objective, SchemeAdvisor
from repro.core.executor import Policy
from repro.core.queries import KNNQuery
from repro.core.schemes import Scheme
from repro.data.workloads import nn_queries, point_queries, range_queries


@pytest.fixture()
def advisor(env_small):
    return SchemeAdvisor(env_small)


class TestObjective:
    def test_presets(self):
        assert Objective.battery().energy_weight == 1.0
        assert Objective.latency().energy_weight == 0.0

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            Objective(1.5)


class TestProfiling:
    def test_point_profile_covers_all_schemes(self, advisor, pa_small):
        prof = advisor.profile(point_queries(pa_small, 5, seed=107))
        assert len(prof.plans) == 6

    def test_nn_profile_restricts_to_full_schemes(self, advisor, pa_small):
        prof = advisor.profile(nn_queries(pa_small, 5, seed=109))
        assert len(prof.plans) == 3  # FC + both FS variants

    def test_mixed_kinds_rejected(self, advisor, pa_small):
        qs = point_queries(pa_small, 2) + nn_queries(pa_small, 2)
        with pytest.raises(ValueError):
            advisor.profile(qs)

    def test_empty_rejected(self, advisor):
        with pytest.raises(ValueError):
            advisor.profile([])

    def test_knn_supported(self, advisor, pa_small):
        c = pa_small.extent.center()
        prof = advisor.profile([KNNQuery(c[0], c[1], k=3)])
        assert len(prof.plans) == 3


class TestAdvice:
    def test_point_queries_stay_on_device(self, advisor, pa_small):
        """The paper's conclusion: small-work queries belong on the client,
        for both objectives, at every bandwidth."""
        prof = advisor.profile(point_queries(pa_small, 10, seed=111))
        for bw in (2, 11):
            for obj in (Objective.battery(), Objective.latency()):
                pick = advisor.advise(
                    prof, Policy().with_bandwidth(bw * MBPS), obj
                )
                assert pick.scheme is Scheme.FULLY_CLIENT

    def test_advice_matches_measured_minimum(self, advisor, pa_small):
        """The battery pick must be the argmin of the measured energies."""
        prof = advisor.profile(range_queries(pa_small, 8, seed=113))
        for bw in (2, 6, 11):
            policy = Policy().with_bandwidth(bw * MBPS)
            pick = advisor.advise(prof, policy, Objective.battery())
            scores = advisor.score(prof, policy)
            best = min(scores, key=lambda k: scores[k][0])
            assert pick.label == best

    def test_latency_pick_matches_measured_minimum(self, advisor, pa_small):
        prof = advisor.profile(range_queries(pa_small, 8, seed=113))
        policy = Policy().with_bandwidth(4 * MBPS)
        pick = advisor.advise(prof, policy, Objective.latency())
        scores = advisor.score(prof, policy)
        best = min(scores, key=lambda k: scores[k][1])
        assert pick.label == best

    def test_blend_interpolates(self, advisor, pa_small):
        """A 50/50 blend never picks a scheme dominated on both metrics."""
        prof = advisor.profile(range_queries(pa_small, 8, seed=113))
        policy = Policy().with_bandwidth(4 * MBPS)
        pick = advisor.advise(prof, policy, Objective(0.5))
        scores = advisor.score(prof, policy)
        e, t = scores[pick.label]
        for label, (oe, ot) in scores.items():
            assert not (oe < e and ot < t), f"{label} dominates the pick"

    def test_table_covers_grid(self, advisor, pa_small):
        prof = advisor.profile(range_queries(pa_small, 5, seed=115))
        rows = advisor.advise_table(
            prof,
            bandwidths_bps=[2 * MBPS, 11 * MBPS],
            distances_m=[100.0, 1000.0],
        )
        assert len(rows) == 4
        assert all("pick" in r and r["energy_J"] > 0 for r in rows)
