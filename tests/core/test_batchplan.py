"""Unit tests for the batched multi-query planner's plumbing.

The bit-for-bit planner equality itself is covered by
``tests/integration/test_batchplan_differential.py``; this module pins the
surrounding machinery: the plan-dedup :class:`PhaseDataCache`, the Session
``plan_grid``/``planner=`` surface and its ledger records, and the explicit
query/workload cache keys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session
from repro.core.batchplan import (
    PhaseDataCache,
    plan_workload_batched,
    plans_equal,
)
from repro.core.executor import Environment, plan_query
from repro.core.gridrun import RunLedger, workload_key
from repro.core.queries import PointQuery, RangeQuery, query_key
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS
from repro.data import tiger
from repro.data.workloads import range_queries
from repro.spatial.mbr import MBR

CONFIGS = list(ADEQUATE_MEMORY_CONFIGS[:3])


@pytest.fixture(scope="module")
def env() -> Environment:
    return Environment.create(tiger.pa_dataset(scale=0.05))


@pytest.fixture(scope="module")
def workload(env):
    return range_queries(env.dataset, 12, seed=41)


# ----------------------------------------------------------------------
# PhaseDataCache — the plan-dedup layer
# ----------------------------------------------------------------------
def test_phase_cache_dedups_repeated_queries(env, workload):
    cache = PhaseDataCache(fingerprint="x")
    plan_workload_batched(env, workload, CONFIGS, phase_cache=cache)
    assert cache.misses == len(workload)
    assert cache.hits == 0
    assert len(cache) == len(workload)

    # Same workload again: every phase comes from the cache.
    plan_workload_batched(env, workload, CONFIGS, phase_cache=cache)
    assert cache.hits == len(workload)
    assert cache.misses == len(workload)
    assert cache.hit_rate == 0.5


def test_phase_cache_duplicate_queries_in_one_workload(env):
    q = range_queries(env.dataset, 1, seed=43)[0]
    cache = PhaseDataCache(fingerprint="x")
    plans = plan_workload_batched(env, [q, q, q], CONFIGS, phase_cache=cache)
    # One distinct query -> one phase computation, shared three ways...
    assert len(cache) == 1
    # ...but the *plans* still differ per occurrence (later occurrences see
    # warmer caches), exactly as the scalar walk prices them.
    for config, per_config in zip(CONFIGS, plans):
        env.reset_caches()
        scalar = [plan_query(q, config, env) for _ in range(3)]
        assert plans_equal(per_config, scalar)


def test_phase_cache_plans_match_uncached(env, workload):
    cached = plan_workload_batched(
        env, workload, CONFIGS, phase_cache=PhaseDataCache(fingerprint="x")
    )
    # Warm cache from a prior pass, then replan through it.
    cache = PhaseDataCache(fingerprint="x")
    plan_workload_batched(env, workload, CONFIGS, phase_cache=cache)
    warm = plan_workload_batched(env, workload, CONFIGS, phase_cache=cache)
    for a, b in zip(cached, warm):
        assert plans_equal(a, b)


def test_phase_cache_fifo_bound():
    cache = PhaseDataCache(max_entries=2)
    cache.put(("a",), "A")
    cache.put(("b",), "B")
    cache.put(("c",), "C")  # evicts ("a",)
    assert len(cache) == 2
    assert cache.get(("a",)) is None
    assert cache.get(("c",)) == "C"
    with pytest.raises(ValueError):
        PhaseDataCache(max_entries=0)


# ----------------------------------------------------------------------
# Session surface
# ----------------------------------------------------------------------
def test_session_planner_scalar_matches_batched(env, workload):
    batched = Session(env).plan(workload, CONFIGS[0])
    scalar = Session(env).plan(workload, CONFIGS[0], planner="scalar")
    assert plans_equal(batched, scalar)


def test_session_rejects_unknown_planner(env, workload):
    with pytest.raises(ValueError, match="planner"):
        Session(env).plan(workload, CONFIGS[0], planner="quantum")


def test_plan_grid_one_ledger_event_per_scheme(env, workload):
    ledger = RunLedger()
    session = Session(env, ledger=ledger)
    grid = session.plan_grid(workload, CONFIGS)
    assert len(grid) == len(CONFIGS)
    events = [r for r in ledger.records if r["event"] == "plan"]
    assert len(events) == len(CONFIGS)
    assert all(e["planner"] == "batched" for e in events)
    assert all(not e["cache_hit"] for e in events)

    # Second call: all schemes come from the plan cache.
    session.plan_grid(workload, CONFIGS)
    events = [r for r in ledger.records if r["event"] == "plan"]
    assert all(e["cache_hit"] for e in events[len(CONFIGS):])
    assert all(e["seconds"] == 0.0 for e in events[len(CONFIGS):])


def test_plan_grid_partial_cache_replans_only_missing(env, workload):
    session = Session(env)
    session.plan(workload, CONFIGS[0])
    h0, m0 = session.plan_cache.hits, session.plan_cache.misses
    grid = session.plan_grid(workload, CONFIGS)
    assert session.plan_cache.hits == h0 + 1  # CONFIGS[0] reused
    assert session.plan_cache.misses == m0 + len(CONFIGS) - 1
    # And the reused plans are the same objects the cache held.
    assert plans_equal(grid[0], session.plan(workload, CONFIGS[0]))


def test_plan_warm_not_cached(env, workload):
    session = Session(env)
    warm = session.plan(workload, CONFIGS[0], reset_caches=False)
    assert len(warm) == len(workload)
    # Warm plans bypass the plan cache entirely.
    assert session.plan_cache.hits == 0


def test_phase_cache_bound_to_dataset_fingerprint(env):
    session = Session(env)
    assert session.phase_cache.fingerprint == session.fingerprint


# ----------------------------------------------------------------------
# Explicit cache keys
# ----------------------------------------------------------------------
def test_query_key_distinguishes_kinds_and_fields():
    p = PointQuery(1.0, 2.0)
    r = RangeQuery(MBR(1.0, 2.0, 3.0, 4.0))
    assert query_key(p) != query_key(r)
    assert query_key(p) == query_key(PointQuery(1.0, 2.0))
    assert query_key(p) != query_key(PointQuery(1.0, 2.5))


def test_workload_key_is_explicit_field_tuples():
    qs = [PointQuery(1.0, 2.0), RangeQuery(MBR(0.0, 0.0, 1.0, 1.0))]
    key = workload_key(qs)
    assert key == tuple(query_key(q) for q in qs)
    assert workload_key(list(qs)) == key
    assert workload_key(qs[:1]) != key
