"""The section-4.1 closed-form model."""

from __future__ import annotations

import pytest

from repro.constants import DEFAULT_CLIENT
from repro.core.analytic import PartitionParams, Verdict, evaluate, explain


def _params(**over):
    base = dict(
        bandwidth_bps=2e6,
        c_fully_local=5e6,
        c_local=1e6,
        c_protocol=5e4,
        c_w2=1e5,
        packet_tx_bits=8 * 2000,
        packet_rx_bits=8 * 6000,
    )
    base.update(over)
    return PartitionParams(**base)


class TestFormulas:
    def test_tx_rx_wait_cycles(self):
        p = _params()
        terms = explain(p)
        mhz_c = DEFAULT_CLIENT.clock_hz
        assert terms["C_Tx"] == pytest.approx(p.packet_tx_bits / 2e6 * mhz_c)
        assert terms["C_Rx"] == pytest.approx(p.packet_rx_bits / 2e6 * mhz_c)
        assert terms["C_wait"] == pytest.approx(p.c_w2 / 1e9 * mhz_c)

    def test_partitioned_cycles_composition(self):
        p = _params()
        t = explain(p)
        assert t["partitioned_cycles"] == pytest.approx(
            t["C_Tx"] + t["C_Rx"] + t["C_wait"] + p.c_local + p.c_protocol
        )

    def test_local_energy_uses_client_plus_sleep(self):
        p = _params()
        v = evaluate(p)
        expected = (
            DEFAULT_CLIENT.nominal_power_w + p.nic.sleep_w
        ) * p.c_fully_local / DEFAULT_CLIENT.clock_hz
        assert v.local_energy_j == pytest.approx(expected)


class TestVerdictDirections:
    def test_tiny_offload_huge_local_work_wins_both(self):
        # Enormous local computation, tiny messages: partitioning must win.
        p = _params(c_fully_local=5e9, packet_tx_bits=800, packet_rx_bits=800,
                    c_local=0, c_protocol=1e4)
        v = evaluate(p)
        assert v.wins_performance and v.wins_energy

    def test_huge_messages_tiny_work_loses_both(self):
        # Point-query regime: almost no local work, message costs dominate.
        p = _params(c_fully_local=1e4, c_local=0)
        v = evaluate(p)
        assert not v.wins_performance and not v.wins_energy

    def test_bandwidth_flips_the_verdict(self):
        """There is a crossover bandwidth (the figures' central phenomenon)."""
        base = dict(
            c_fully_local=4e6, c_local=2e5, c_protocol=5e4, c_w2=1e5,
            packet_tx_bits=8 * 330, packet_rx_bits=8 * 7000,
        )
        slow = evaluate(PartitionParams(bandwidth_bps=0.2e6, **base))
        fast = evaluate(PartitionParams(bandwidth_bps=50e6, **base))
        assert not slow.wins_performance
        assert fast.wins_performance

    def test_energy_crossover_needs_more_bandwidth_than_performance(self):
        """The paper's recurring observation: communication is relatively
        more expensive in energy than in time, so the energy win arrives at
        a higher bandwidth.  Scanning bandwidths, the first winning
        bandwidth for energy must be >= the first for performance."""
        base = dict(
            c_fully_local=4e6, c_local=2e5, c_protocol=5e4, c_w2=1e5,
            packet_tx_bits=8 * 330, packet_rx_bits=8 * 7000,
        )
        first_perf = first_energy = None
        for bw in [0.1e6 * (1.3 ** k) for k in range(40)]:
            v = evaluate(PartitionParams(bandwidth_bps=bw, **base))
            if first_perf is None and v.wins_performance:
                first_perf = bw
            if first_energy is None and v.wins_energy:
                first_energy = bw
        assert first_perf is not None and first_energy is not None
        assert first_energy >= first_perf

    def test_shorter_distance_helps_energy_only(self):
        p_far = _params(distance_m=1000.0)
        p_near = _params(distance_m=100.0)
        v_far, v_near = evaluate(p_far), evaluate(p_near)
        assert v_near.partitioned_energy_j < v_far.partitioned_energy_j
        assert v_near.partitioned_cycles == pytest.approx(v_far.partitioned_cycles)

    def test_faster_server_reduces_wait(self):
        slow = evaluate(_params(server_clock_hz=5e8, c_w2=1e8))
        fast = evaluate(_params(server_clock_hz=4e9, c_w2=1e8))
        assert fast.partitioned_cycles < slow.partitioned_cycles


class TestValidation:
    def test_nonpositive_bandwidth_raises(self):
        with pytest.raises(ValueError):
            _params(bandwidth_bps=0)

    def test_negative_cycles_raise(self):
        with pytest.raises(ValueError):
            _params(c_local=-1)

    def test_explain_contains_verdicts(self):
        t = explain(_params())
        assert {"wins_performance", "wins_energy"} <= set(t)
