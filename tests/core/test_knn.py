"""k-nearest-neighbor queries (the paper's 'other spatial queries' future
work) across the whole stack: tree, engine, executor, cached client."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clientcache import ClientCacheSession
from repro.core.executor import plan_query
from repro.core.queries import KNNQuery, QueryKind, RangeQuery
from repro.core.schemes import Scheme, SchemeConfig
from repro.spatial import bruteforce as bf
from repro.spatial.geometry import point_segment_distance_sq
from repro.spatial.mbr import MBR

FC = SchemeConfig(Scheme.FULLY_CLIENT)
FS_PRESENT = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True)
FS_ABSENT = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False)


def _dists(ds, px, py, ids):
    return [point_segment_distance_sq(px, py, *ds.segment(int(i))) for i in ids]


class TestQueryType:
    def test_kind_and_phases(self):
        q = KNNQuery(1.0, 2.0, k=7)
        assert q.kind is QueryKind.NEAREST_NEIGHBOR
        assert not q.kind.has_phases
        assert q.focus() == (1.0, 2.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNNQuery(0, 0, k=0)

    def test_hybrid_schemes_rejected(self):
        q = KNNQuery(0, 0, k=3)
        with pytest.raises(ValueError):
            SchemeConfig(
                Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=True
            ).validate_for(q)


class TestTreeKNN:
    @pytest.mark.parametrize("k", [1, 2, 5, 20])
    def test_matches_oracle_distances(self, pa_small, pa_small_tree, rng, k):
        for _ in range(10):
            px = rng.uniform(pa_small.extent.xmin, pa_small.extent.xmax)
            py = rng.uniform(pa_small.extent.ymin, pa_small.extent.ymax)
            got = pa_small_tree.nearest_neighbors(px, py, k)
            want = bf.k_nearest_neighbors(pa_small, px, py, k)
            assert len(got) == k
            assert np.allclose(
                sorted(_dists(pa_small, px, py, got)),
                sorted(_dists(pa_small, px, py, want)),
                rtol=1e-12,
            )

    def test_ordered_nearest_first(self, pa_small, pa_small_tree):
        c = pa_small.extent.center()
        got = pa_small_tree.nearest_neighbors(c[0], c[1], 15)
        d = _dists(pa_small, c[0], c[1], got)
        assert d == sorted(d)

    def test_k_larger_than_dataset(self, pa_small, pa_small_tree):
        c = pa_small.extent.center()
        got = pa_small_tree.nearest_neighbors(c[0], c[1], pa_small.size + 50)
        assert len(got) == pa_small.size
        assert len(set(got.tolist())) == pa_small.size

    def test_k1_equals_nearest_neighbor(self, pa_small, pa_small_tree, rng):
        for _ in range(10):
            px = rng.uniform(pa_small.extent.xmin, pa_small.extent.xmax)
            py = rng.uniform(pa_small.extent.ymin, pa_small.extent.ymax)
            assert pa_small_tree.nearest_neighbor(px, py) == int(
                pa_small_tree.nearest_neighbors(px, py, 1)[0]
            )

    def test_invalid_k_raises(self, pa_small_tree):
        with pytest.raises(ValueError):
            pa_small_tree.nearest_neighbors(0, 0, 0)


class TestEngineAndExecutor:
    def test_engine_nearest_dispatches_knn(self, env_small, pa_small):
        c = pa_small.extent.center()
        out = env_small.engine.nearest(KNNQuery(c[0], c[1], k=4))
        assert len(out.ids) == 4

    def test_answer_dispatches_knn(self, env_small, pa_small):
        c = pa_small.extent.center()
        out = env_small.engine.answer(KNNQuery(c[0], c[1], k=4))
        assert len(out.ids) == 4

    @pytest.mark.parametrize("config", [FC, FS_PRESENT, FS_ABSENT],
                             ids=lambda c: c.label)
    def test_schemes_agree(self, env_small, pa_small, config):
        c = pa_small.extent.center()
        q = KNNQuery(c[0], c[1], k=6)
        env_small.reset_caches()
        plan = plan_query(q, config, env_small)
        want = bf.k_nearest_neighbors(pa_small, c[0], c[1], 6)
        assert np.allclose(
            sorted(_dists(pa_small, c[0], c[1], plan.answer_ids)),
            sorted(_dists(pa_small, c[0], c[1], want)),
            rtol=1e-12,
        )
        assert plan.n_results == 6

    def test_larger_k_ships_more_bytes_when_data_absent(self, env_small, pa_small):
        c = pa_small.extent.center()
        small = plan_query(KNNQuery(c[0], c[1], k=1), FS_ABSENT, env_small)
        env_small.reset_caches()
        big = plan_query(KNNQuery(c[0], c[1], k=20), FS_ABSENT, env_small)
        rx_small = sum(b for d, b in _payloads(small) if d == "rx")
        rx_big = sum(b for d, b in _payloads(big) if d == "rx")
        assert rx_big > rx_small


def _payloads(plan):
    from repro.core.executor import RecvStep, SendStep

    out = []
    for s in plan.steps:
        if isinstance(s, SendStep):
            out.append(("tx", s.payload.nbytes))
        elif isinstance(s, RecvStep):
            out.append(("rx", s.payload.nbytes))
    return out


class TestCachedClientKNN:
    def test_knn_served_and_certified_locally(self, env_small, pa_small):
        session = ClientCacheSession(env_small, 256 * 1024)
        i = pa_small.size // 2
        cx = float(pa_small.x1[i] + pa_small.x2[i]) / 2.0
        cy = float(pa_small.y1[i] + pa_small.y2[i]) / 2.0
        w = pa_small.extent.width * 0.01
        session.plan(RangeQuery(MBR(cx - w, cy - w, cx + w, cy + w)))
        plan = session.plan(KNNQuery(cx, cy, k=3))
        assert plan.n_results == 3
        want = bf.k_nearest_neighbors(pa_small, cx, cy, 3)
        assert np.allclose(
            sorted(_dists(pa_small, cx, cy, plan.answer_ids)),
            sorted(_dists(pa_small, cx, cy, want)),
            rtol=1e-12,
        )

    def test_huge_k_is_not_certified_locally(self, env_small, pa_small):
        """A k bigger than the shipment can certify must go to the server."""
        session = ClientCacheSession(env_small, 64 * 1024)
        i = pa_small.size // 2
        cx = float(pa_small.x1[i] + pa_small.x2[i]) / 2.0
        cy = float(pa_small.y1[i] + pa_small.y2[i]) / 2.0
        w = pa_small.extent.width * 0.005
        session.plan(RangeQuery(MBR(cx - w, cy - w, cx + w, cy + w)))
        misses_before = session.misses
        plan = session.plan(KNNQuery(cx, cy, k=min(2000, pa_small.size)))
        # Either it round-trips (a miss) or — with a huge shipment — it is
        # served locally; in both cases the distances must be exact.
        want = bf.k_nearest_neighbors(pa_small, cx, cy, min(2000, pa_small.size))
        assert np.allclose(
            sorted(_dists(pa_small, cx, cy, plan.answer_ids)),
            sorted(_dists(pa_small, cx, cy, want)),
            rtol=1e-9,
        )
