"""The filter/refine engine against the brute-force oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import QueryEngine
from repro.core.queries import NNQuery, PointQuery, RangeQuery
from repro.data.workloads import nn_queries, point_queries, range_queries
from repro.sim.trace import OpCounter
from repro.spatial import bruteforce as bf
from repro.spatial.geometry import point_segment_distance_sq
from repro.spatial.mbr import MBR
from repro.spatial.rtree import PackedRTree


@pytest.fixture(scope="module")
def engine(pa_small, pa_small_tree):
    return QueryEngine(pa_small, pa_small_tree)


class TestConstruction:
    def test_builds_tree_when_missing(self, pa_small):
        e = QueryEngine(pa_small)
        assert e.tree.dataset is pa_small

    def test_mismatched_tree_raises(self, pa_small, nyc_small):
        other_tree = PackedRTree.build(nyc_small)
        with pytest.raises(ValueError):
            QueryEngine(pa_small, other_tree)


class TestFilterRefine:
    def test_range_pipeline_matches_oracle(self, engine, pa_small):
        for q in range_queries(pa_small, 15, seed=3, max_area_frac=0.01):
            filt = engine.filter(q)
            ref = engine.refine(q, filt.ids)
            assert np.array_equal(
                np.sort(ref.ids), np.sort(bf.range_query(pa_small, q.rect))
            )
            # Refinement can only shrink the candidate set.
            assert set(ref.ids.tolist()) <= set(filt.ids.tolist())

    def test_point_pipeline_matches_oracle(self, engine, pa_small):
        for q in point_queries(pa_small, 15, seed=5):
            filt = engine.filter(q)
            ref = engine.refine(q, filt.ids)
            want = bf.point_query(pa_small, q.x, q.y, q.eps)
            assert np.array_equal(np.sort(ref.ids), np.sort(want))

    def test_refine_counts_by_query_kind(self, engine, pa_small):
        rq = range_queries(pa_small, 1, seed=7)[0]
        filt = engine.filter(rq)
        counter = OpCounter()
        engine.refine(rq, filt.ids, counter)
        assert counter.range_refine_tests == len(filt.ids)
        assert counter.point_refine_tests == 0
        assert counter.candidates_refined == len(filt.ids)

    def test_refine_empty_candidates(self, engine):
        q = RangeQuery(MBR(0, 0, 1, 1))
        out = engine.refine(q, np.empty(0, dtype=np.int64))
        assert len(out.ids) == 0

    def test_filter_rejects_nn(self, engine):
        with pytest.raises(TypeError):
            engine.filter(NNQuery(0, 0))

    def test_refine_rejects_nn(self, engine):
        with pytest.raises(TypeError):
            engine.refine(NNQuery(0, 0), np.asarray([0]))


class TestNearest:
    def test_matches_oracle(self, engine, pa_small):
        for q in nn_queries(pa_small, 15, seed=9):
            out = engine.nearest(q)
            assert len(out.ids) == 1
            got_d = point_segment_distance_sq(
                q.x, q.y, *pa_small.segment(int(out.ids[0]))
            )
            want = bf.nearest_neighbor(pa_small, q.x, q.y)
            want_d = point_segment_distance_sq(q.x, q.y, *pa_small.segment(want))
            assert got_d == pytest.approx(want_d, rel=1e-12, abs=1e-12)

    def test_nearest_rejects_other_kinds(self, engine):
        with pytest.raises(TypeError):
            engine.nearest(PointQuery(0, 0))


class TestAnswer:
    def test_answer_equals_filter_plus_refine(self, engine, pa_small):
        q = range_queries(pa_small, 1, seed=11)[0]
        combined = engine.answer(q)
        filt = engine.filter(q)
        ref = engine.refine(q, filt.ids)
        assert np.array_equal(np.sort(combined.ids), np.sort(ref.ids))

    def test_answer_counter_accumulates_both_phases(self, engine, pa_small):
        q = range_queries(pa_small, 1, seed=11)[0]
        counter = OpCounter()
        engine.answer(q, counter)
        assert counter.nodes_visited > 0  # filtering happened
        assert counter.candidates_refined > 0  # refinement happened

    def test_answer_dispatches_nn(self, engine, pa_small):
        q = nn_queries(pa_small, 1, seed=13)[0]
        out = engine.answer(q)
        assert len(out.ids) == 1

    def test_refinement_rejects_corner_grazers(self, engine, pa_small):
        """There must exist windows where filtering over-approximates —
        i.e. the two phases are genuinely different computations."""
        found_rejection = False
        for q in range_queries(pa_small, 60, seed=17, max_area_frac=0.0003):
            filt = engine.filter(q)
            ref = engine.refine(q, filt.ids)
            if len(ref.ids) < len(filt.ids):
                found_rejection = True
                break
        assert found_rejection
