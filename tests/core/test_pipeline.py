"""Pipelined workload pricing (cross-query overlap)."""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.core.executor import Policy, price_plan
from repro.core.pipeline import (
    plan_and_price_pipelined,
    price_pipelined_workload,
)
from repro.core.schemes import Scheme, SchemeConfig
from repro.data.workloads import knn_queries, range_queries

FC = SchemeConfig(Scheme.FULLY_CLIENT)
FS_PRESENT = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True)
FS_RC = SchemeConfig(Scheme.FILTER_SERVER_REFINE_CLIENT, data_at_client=True)


class TestSchedule:
    def test_speedup_at_least_one(self, env_small, pa_small):
        qs = range_queries(pa_small, 10, seed=73)
        for cfg in (FC, FS_PRESENT, FS_RC):
            plans = Session(env_small).plan(qs, cfg)
            r = price_pipelined_workload(plans, env_small, Policy())
            assert r.speedup >= 1.0 - 1e-9, cfg.label

    def test_no_overlap_for_fully_client(self, env_small, pa_small):
        """A communication-free workload has one busy resource: no gain."""
        qs = range_queries(pa_small, 8, seed=73)
        plans = Session(env_small).plan(qs, FC)
        r = price_pipelined_workload(plans, env_small, Policy())
        assert r.speedup == pytest.approx(1.0, rel=1e-6)

    def test_overlap_helps_communication_schemes(self, env_small, pa_small):
        """Mixed CPU/NET schemes must overlap: wall < sequential."""
        qs = range_queries(pa_small, 10, seed=73)
        plans = Session(env_small).plan(qs, FS_RC)
        r = price_pipelined_workload(plans, env_small, Policy())
        assert r.speedup > 1.05

    def test_makespan_lower_bound(self, env_small, pa_small):
        """Wall time can never beat the busiest single resource."""
        qs = range_queries(pa_small, 10, seed=73)
        plans = Session(env_small).plan(qs, FS_PRESENT)
        r = price_pipelined_workload(plans, env_small, Policy())
        clock = env_small.client_cpu.clock_hz
        cpu_s = r.cycles.processor / clock
        net_s = (r.cycles.nic_tx + r.cycles.nic_rx) / clock
        assert r.wall_seconds >= max(cpu_s, net_s) - 1e-9

    def test_single_query_matches_sequential(self, env_small, pa_small):
        """One query has nothing to overlap with: wall times agree up to
        the sleep-exit latencies the sequential pricer charges."""
        q = range_queries(pa_small, 1, seed=73)[0]
        plans = Session(env_small).plan([q], FS_PRESENT)
        r = price_pipelined_workload(plans, env_small, Policy())
        seq = price_plan(plans[0], env_small, Policy())
        assert r.wall_seconds == pytest.approx(seq.wall_seconds, abs=2e-3)

    def test_empty_workload_raises(self, env_small):
        with pytest.raises(ValueError):
            price_pipelined_workload([], env_small, Policy())


class TestEnergy:
    def test_activity_energy_matches_sequential(self, env_small, pa_small):
        """Tx/Rx energy is schedule-invariant (same bits, same power)."""
        qs = range_queries(pa_small, 10, seed=73)
        plans = Session(env_small).plan(qs, FS_PRESENT)
        pipe = price_pipelined_workload(plans, env_small, Policy())
        seq_tx = seq_rx = 0.0
        for p in plans:
            r = price_plan(p, env_small, Policy())
            seq_tx += r.energy.nic_tx
            seq_rx += r.energy.nic_rx
        assert pipe.energy.nic_tx == pytest.approx(seq_tx, rel=0.02)
        assert pipe.energy.nic_rx == pytest.approx(seq_rx, rel=1e-6)

    def test_total_energy_close_to_sequential(self, env_small, pa_small):
        """Pipelining buys time, not energy: totals within ~20%."""
        qs = range_queries(pa_small, 10, seed=73)
        plans = Session(env_small).plan(qs, FS_PRESENT)
        pipe = price_pipelined_workload(plans, env_small, Policy())
        seq_total = sum(
            price_plan(p, env_small, Policy()).energy.total() for p in plans
        )
        assert pipe.energy.total() == pytest.approx(seq_total, rel=0.2)

    def test_buckets_nonnegative(self, env_small, pa_small):
        qs = range_queries(pa_small, 6, seed=73)
        plans = Session(env_small).plan(qs, FS_RC)
        r = price_pipelined_workload(plans, env_small, Policy())
        assert min(r.energy.as_dict().values()) >= 0.0
        assert min(r.cycles.as_dict().values()) >= 0.0


class TestNNPipeline:
    """k-NN workloads stream through the batched planner identically."""

    def test_knn_batched_matches_scalar_planner(self, env_small, pa_small):
        qs = knn_queries(pa_small, 6, seed=77)
        batched = plan_and_price_pipelined(env_small, qs, FS_PRESENT)
        scalar = plan_and_price_pipelined(
            env_small, qs, FS_PRESENT, planner="scalar"
        )
        assert batched.wall_seconds == scalar.wall_seconds
        assert batched.energy.total() == scalar.energy.total()

    @pytest.mark.parametrize("config", [FC, FS_PRESENT, FS_RC])
    def test_columnar_planner_matches_batched(self, env_small, pa_small,
                                              config):
        """The columnar feed builds identical task chains: every bucket of
        the scheduled result — and the sequential baseline — is bit-equal."""
        qs = range_queries(pa_small, 8, seed=78)
        batched = plan_and_price_pipelined(env_small, qs, config)
        columnar = plan_and_price_pipelined(
            env_small, qs, config, planner="columnar"
        )
        assert columnar.wall_seconds == batched.wall_seconds
        assert columnar.sequential_wall_seconds == (
            batched.sequential_wall_seconds
        )
        assert columnar.energy == batched.energy
        assert columnar.cycles == batched.cycles

    def test_unknown_planner_raises(self, env_small, pa_small):
        with pytest.raises(ValueError, match="unknown planner"):
            plan_and_price_pipelined(
                env_small, range_queries(pa_small, 2), FC, planner="nope"
            )
