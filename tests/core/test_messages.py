"""Message payload sizing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import DEFAULT_COSTS
from repro.core.messages import (
    Payload,
    data_items_payload,
    extraction_payload,
    id_list_payload,
    request_payload,
    request_with_candidates_payload,
)
from repro.spatial.extract import Extraction


class TestPayloads:
    def test_request_size(self):
        assert request_payload().nbytes == DEFAULT_COSTS.request_bytes

    def test_request_with_memory_availability_is_bigger(self):
        assert (
            request_payload(with_memory_availability=True).nbytes
            > request_payload().nbytes
        )

    def test_candidates_ride_with_request(self):
        n = 450
        p = request_with_candidates_payload(n)
        assert p.nbytes == DEFAULT_COSTS.request_bytes + n * DEFAULT_COSTS.object_id_bytes

    def test_id_list_smaller_than_data_items(self):
        """The data-present optimization: ids are several times smaller than
        full records (the paper's 'saving several bytes')."""
        n = 100
        assert id_list_payload(n).nbytes * 3 < data_items_payload(n).nbytes

    def test_zero_counts(self):
        assert id_list_payload(0).nbytes == 0
        assert data_items_payload(0).nbytes == 0

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            id_list_payload(-1)
        with pytest.raises(ValueError):
            data_items_payload(-1)
        with pytest.raises(ValueError):
            request_with_candidates_payload(-1)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Payload(-1, "bad")

    def test_extraction_payload_includes_data_and_index(self):
        ext = Extraction(
            global_ids=np.arange(10),
            entry_lo=0,
            entry_hi=10,
            data_bytes=760,
            index_bytes=208,
            fits=True,
        )
        p = extraction_payload(ext)
        assert p.nbytes > 760 + 208  # header framing on top
        assert "10 items" in p.description
