"""Legacy sweep-harness shims: equivalence, bookkeeping, deprecation.

These entry points are deprecated in favour of :class:`repro.api.Session`
(the rest of the suite uses the facade); this module deliberately keeps
exercising the shims, asserting both their behaviour and that each one
warns.  The pytest config escalates the shims' DeprecationWarning to an
error, so an unwrapped call anywhere else in the suite fails loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import MBPS
from repro.core.executor import Policy, execute
from repro.core.experiment import (
    SweepCell,
    bandwidth_sweep,
    plan_cached_workload,
    plan_workload,
    price_workload,
)
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data.workloads import proximity_sequence, range_queries

FS = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True)


class TestPlanPriceEquivalence:
    def test_replan_equals_plan_once(self, env_small, pa_small):
        """Pricing a cached plan at bandwidth B equals executing at B."""
        qs = range_queries(pa_small, 5, seed=43)
        with pytest.warns(DeprecationWarning, match="plan_workload"):
            plans = plan_workload(qs, FS, env_small)
        policy = Policy().with_bandwidth(6 * MBPS)
        with pytest.warns(DeprecationWarning, match="price_workload"):
            swept = price_workload(plans, env_small, policy)
        env_small.reset_caches()
        direct = [execute(q, FS, env_small, policy) for q in qs]
        total_e = sum(r.energy.total() for r in direct)
        total_c = sum(r.cycles.total() for r in direct)
        assert swept.energy.total() == pytest.approx(total_e, rel=1e-12)
        assert swept.cycles.total() == pytest.approx(total_c, rel=1e-12)


class TestBandwidthSweep:
    def test_grid_shape(self, env_small, pa_small):
        qs = range_queries(pa_small, 3, seed=47)
        with pytest.warns(DeprecationWarning, match="bandwidth_sweep"):
            out = bandwidth_sweep(
                qs,
                ADEQUATE_MEMORY_CONFIGS[:2],
                env_small,
                bandwidths_mbps=(2, 11),
            )
        assert len(out) == 2
        for cells in out.values():
            assert [c.bandwidth_mbps for c in cells] == [2, 11]

    def test_fully_client_flat_in_bandwidth(self, env_small, pa_small):
        qs = range_queries(pa_small, 3, seed=47)
        fc = SchemeConfig(Scheme.FULLY_CLIENT)
        with pytest.warns(DeprecationWarning, match="bandwidth_sweep"):
            cells = bandwidth_sweep(qs, [fc], env_small)[fc.label]
        energies = {round(c.energy_j, 15) for c in cells}
        assert len(energies) == 1

    def test_communication_schemes_fall_with_bandwidth(self, env_small, pa_small):
        qs = range_queries(pa_small, 3, seed=47)
        with pytest.warns(DeprecationWarning, match="bandwidth_sweep"):
            cells = bandwidth_sweep(qs, [FS], env_small)[FS.label]
        energies = [c.energy_j for c in cells]
        cycles = [c.cycles for c in cells]
        assert energies == sorted(energies, reverse=True)
        assert cycles == sorted(cycles, reverse=True)

    def test_cell_accessors(self, env_small, pa_small):
        qs = range_queries(pa_small, 2, seed=47)
        with pytest.warns(DeprecationWarning, match="bandwidth_sweep"):
            cell = bandwidth_sweep(qs, [FS], env_small)[FS.label][0]
        assert isinstance(cell, SweepCell)
        assert cell.energy_j == cell.result.energy.total()
        assert cell.cycles == cell.result.cycles.total()
        assert cell.distance_m == 1000.0


class TestCachedWorkloadPlanning:
    def test_session_statistics_returned(self, env_small, pa_small):
        qs = proximity_sequence(pa_small, y=4, n_groups=2, seed=49)
        with pytest.warns(DeprecationWarning, match="plan_cached_workload"):
            plans, session = plan_cached_workload(qs, env_small, 256 * 1024)
        assert len(plans) == len(qs)
        assert session.misses >= 1
        # Every query is either a local hit or a miss (fallbacks are a
        # sub-category of misses).
        assert session.local_hits + session.misses == len(qs)
        assert session.fallbacks <= session.misses
