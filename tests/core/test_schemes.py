"""Scheme taxonomy (Table 1) and legality rules."""

from __future__ import annotations

import pytest

from repro.core.queries import NNQuery, PointQuery, RangeQuery
from repro.core.schemes import (
    ADEQUATE_MEMORY_CONFIGS,
    Scheme,
    SchemeConfig,
    table1_rows,
)
from repro.spatial.mbr import MBR


class TestValidation:
    def test_fully_client_requires_data(self):
        with pytest.raises(ValueError):
            SchemeConfig(Scheme.FULLY_CLIENT, data_at_client=False).validate()

    def test_filter_server_refine_client_requires_data(self):
        with pytest.raises(ValueError):
            SchemeConfig(
                Scheme.FILTER_SERVER_REFINE_CLIENT, data_at_client=False
            ).validate()

    def test_all_published_configs_are_valid(self):
        for cfg in ADEQUATE_MEMORY_CONFIGS:
            cfg.validate()

    def test_nn_rejects_hybrid_schemes(self):
        q = NNQuery(0, 0)
        for scheme in (
            Scheme.FILTER_CLIENT_REFINE_SERVER,
            Scheme.FILTER_SERVER_REFINE_CLIENT,
        ):
            with pytest.raises(ValueError):
                SchemeConfig(scheme, data_at_client=True).validate_for(q)

    def test_nn_accepts_full_schemes(self):
        q = NNQuery(0, 0)
        SchemeConfig(Scheme.FULLY_CLIENT).validate_for(q)
        SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False).validate_for(q)

    def test_phase_queries_accept_all_schemes(self):
        for q in (PointQuery(0, 0), RangeQuery(MBR(0, 0, 1, 1))):
            for cfg in ADEQUATE_MEMORY_CONFIGS:
                cfg.validate_for(q)


class TestIndexPlacement:
    def test_index_at_client_matches_paper(self):
        assert SchemeConfig(Scheme.FULLY_CLIENT).index_at_client
        assert SchemeConfig(
            Scheme.FILTER_CLIENT_REFINE_SERVER
        ).index_at_client
        assert not SchemeConfig(
            Scheme.FULLY_SERVER, data_at_client=False
        ).index_at_client
        assert not SchemeConfig(
            Scheme.FILTER_SERVER_REFINE_CLIENT
        ).index_at_client


class TestLabels:
    def test_labels_unique(self):
        labels = [cfg.label for cfg in ADEQUATE_MEMORY_CONFIGS]
        assert len(set(labels)) == len(labels)

    def test_fully_client_label_has_no_variant_suffix(self):
        assert SchemeConfig(Scheme.FULLY_CLIENT).label == "Fully at the Client"


class TestTable1:
    def test_row_count(self):
        assert len(table1_rows()) == 8

    def test_adequate_rows_match_paper(self):
        rows = [r for r in table1_rows() if r["scenario"].startswith("Adequate")]
        assert len(rows) == 6
        both = "At both Client and Server"
        server = "Only at the Server"
        assert {
            (r["computation"], r["index_resides"], r["data_resides"]) for r in rows
        } == {
            ("Fully at the Client", both, both),
            ("Fully at the Server", server, server),
            ("Fully at the Server", server, both),
            ("Filtering at Client, Refinement at Server", both, both),
            ("Filtering at Client, Refinement at Server", both, server),
            ("Filtering at Server, Refinement at Client", server, both),
        }

    def test_insufficient_rows_match_paper(self):
        rows = [r for r in table1_rows() if r["scenario"].startswith("Insufficient")]
        assert len(rows) == 2
        partly = "Partly at Client, Fully at Server"
        assert {
            (r["computation"], r["index_resides"], r["data_resides"]) for r in rows
        } == {
            ("Fully at the Server", "Only at the Server", "Only at the Server"),
            ("Fully at the Client", partly, partly),
        }

    def test_taxonomy_matches_config_list(self):
        """Every adequate-memory Table 1 row has a SchemeConfig and vice
        versa (the data-residence column encodes data_at_client)."""
        rows = [r for r in table1_rows() if r["scenario"].startswith("Adequate")]
        got = {
            (cfg.scheme.label, cfg.data_at_client)
            for cfg in ADEQUATE_MEMORY_CONFIGS
        }
        want = {
            (r["computation"], r["data_resides"] == "At both Client and Server")
            for r in rows
        }
        assert got == want
