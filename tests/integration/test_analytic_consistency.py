"""The section-4.1 closed-form model vs the detailed executor.

The analytic model ignores framing overhead, sleep-exit latencies and cache
effects, so it will not match the executor numerically — but on clear-cut
scenarios (an order of magnitude away from the crossover) the two must agree
on *who wins*, and near the crossover their predicted crossover bandwidths
must be close.
"""

from __future__ import annotations

import pytest

from repro.constants import MBPS
from repro.core.analytic import PartitionParams, evaluate
from repro.core.executor import (
    ClientComputeStep,
    Policy,
    RecvStep,
    SendStep,
    ServerComputeStep,
    plan_query,
    price_plan,
)
from repro.core.schemes import Scheme, SchemeConfig
from repro.data.workloads import point_queries, range_queries
from repro.sim.protocol import packetize

FC = SchemeConfig(Scheme.FULLY_CLIENT)
FS_PRESENT = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True)


def _params_from_plans(fc_plan, part_plan, env, bandwidth_bps) -> PartitionParams:
    """Translate two executor plans into the analytic model's inputs."""
    c_fully_local = sum(
        s.cost.cycles for s in fc_plan.steps if isinstance(s, ClientComputeStep)
    )
    c_local = sum(
        s.cost.cycles for s in part_plan.steps if isinstance(s, ClientComputeStep)
    )
    c_w2 = sum(
        s.cycles for s in part_plan.steps if isinstance(s, ServerComputeStep)
    )
    tx_bits = sum(
        packetize(s.payload.nbytes).wire_bits
        for s in part_plan.steps
        if isinstance(s, SendStep)
    )
    rx_bits = sum(
        packetize(s.payload.nbytes).wire_bits
        for s in part_plan.steps
        if isinstance(s, RecvStep)
    )
    # Protocol cycles priced the same way the executor prices them.
    proto = sum(
        env.client_cpu.protocol(packetize(s.payload.nbytes)).cycles
        for s in part_plan.steps
        if isinstance(s, (SendStep, RecvStep))
    )
    return PartitionParams(
        bandwidth_bps=bandwidth_bps,
        c_fully_local=c_fully_local,
        c_local=c_local,
        c_protocol=proto,
        c_w2=c_w2,
        packet_tx_bits=tx_bits,
        packet_rx_bits=rx_bits,
        client=env.client_cpu.config,
        server_clock_hz=env.server_cpu.clock_hz,
    )


class TestVerdictAgreement:
    def test_point_queries_clear_cut_loss(self, env_small, pa_small):
        """Point queries: both models must say partitioning loses."""
        for q in point_queries(pa_small, 5, seed=91):
            env_small.reset_caches()
            fc_plan = plan_query(q, FC, env_small)
            env_small.reset_caches()
            part_plan = plan_query(q, FS_PRESENT, env_small)
            for bw in (2, 11):
                v = evaluate(
                    _params_from_plans(fc_plan, part_plan, env_small, bw * MBPS)
                )
                pol = Policy().with_bandwidth(bw * MBPS)
                fc_run = price_plan(fc_plan, env_small, pol)
                part_run = price_plan(part_plan, env_small, pol)
                exec_wins_perf = part_run.cycles.total() < fc_run.cycles.total()
                exec_wins_energy = part_run.energy.total() < fc_run.energy.total()
                assert v.wins_performance == exec_wins_perf
                assert v.wins_energy == exec_wins_energy
                assert not exec_wins_perf and not exec_wins_energy

    def test_range_queries_crossovers_close(self, pa_full_env, pa_full):
        """On the full PA range workload, the analytic and executor
        crossover bandwidths for fully-at-server (data present) must land
        within one sweep step of each other."""
        qs = range_queries(pa_full, 100)
        pa_full_env.reset_caches()
        fc_plans = [plan_query(q, FC, pa_full_env) for q in qs]
        pa_full_env.reset_caches()
        part_plans = [plan_query(q, FS_PRESENT, pa_full_env) for q in qs]

        def totals(bw_mbps):
            pol = Policy().with_bandwidth(bw_mbps * MBPS)
            fc_e = fc_c = pt_e = pt_c = 0.0
            for p in fc_plans:
                r = price_plan(p, pa_full_env, pol)
                fc_e += r.energy.total()
                fc_c += r.cycles.total()
            for p in part_plans:
                r = price_plan(p, pa_full_env, pol)
                pt_e += r.energy.total()
                pt_c += r.cycles.total()
            return fc_e, fc_c, pt_e, pt_c

        def analytic_wins(bw_mbps):
            wins_e = wins_c = True
            agg = None
            for fc_p, pt_p in zip(fc_plans, part_plans):
                p = _params_from_plans(fc_p, pt_p, pa_full_env, bw_mbps * MBPS)
                if agg is None:
                    agg = dict(
                        c_fully_local=0.0, c_local=0.0, c_protocol=0.0,
                        c_w2=0.0, packet_tx_bits=0.0, packet_rx_bits=0.0,
                    )
                agg["c_fully_local"] += p.c_fully_local
                agg["c_local"] += p.c_local
                agg["c_protocol"] += p.c_protocol
                agg["c_w2"] += p.c_w2
                agg["packet_tx_bits"] += p.packet_tx_bits
                agg["packet_rx_bits"] += p.packet_rx_bits
            v = evaluate(
                PartitionParams(
                    bandwidth_bps=bw_mbps * MBPS,
                    client=pa_full_env.client_cpu.config,
                    server_clock_hz=pa_full_env.server_cpu.clock_hz,
                    **agg,
                )
            )
            return v.wins_energy, v.wins_performance

        sweep = (2.0, 4.0, 6.0, 8.0, 11.0, 16.0, 24.0)
        exec_first_e = exec_first_c = ana_first_e = ana_first_c = None
        for i, bw in enumerate(sweep):
            fc_e, fc_c, pt_e, pt_c = totals(bw)
            if exec_first_e is None and pt_e < fc_e:
                exec_first_e = i
            if exec_first_c is None and pt_c < fc_c:
                exec_first_c = i
            wa_e, wa_c = analytic_wins(bw)
            if ana_first_e is None and wa_e:
                ana_first_e = i
            if ana_first_c is None and wa_c:
                ana_first_c = i
        assert exec_first_e is not None and ana_first_e is not None
        assert exec_first_c is not None and ana_first_c is not None
        assert abs(exec_first_e - ana_first_e) <= 1
        assert abs(exec_first_c - ana_first_c) <= 1
