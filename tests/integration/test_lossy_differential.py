"""Differential harness: the three lossy-pricing paths must agree.

Three independent implementations price a lossy link:

1. the scalar walk (:func:`repro.core.executor.price_plan`), charging the
   closed-form expected retransmission cost per message;
2. the vectorized grid pricer (:func:`repro.core.gridrun.price_grid`),
   charging the same expectation as broadcast array terms; and
3. the seeded Monte-Carlo oracle (:mod:`repro.core.lossmc`), sampling the
   loss process frame by frame through the *same* walk as (1).

This module pins them against each other: (1) and (2) to 1e-9 relative
(they compute the same expectation, differing only in summation order),
and (3) to (1)/(2) statistically — the sample mean must converge to the
expectation.  It also pins the PR's headline invariant: ``loss_rate=0``
is not merely *close to* the ideal channel, it is the ideal channel,
bit for bit, in both deterministic engines.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import MBPS, NetworkConfig
from repro.core.executor import (
    Environment,
    Policy,
    RunResult,
    plan_query,
    price_plan,
)
from repro.core.gridrun import price_grid
from repro.core.lossmc import mc_mean, simulate_plan, simulate_plans
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS
from repro.data.workloads import range_queries

LOSSY = Policy().with_loss(0.05)
BURSTY = Policy().with_loss(0.05, burst_frames=4.0)


@pytest.fixture(scope="module")
def diff_env(pa_small, pa_small_tree) -> Environment:
    """Module-shared environment (hypothesis needs a stable fixture)."""
    return Environment.create(pa_small, tree=pa_small_tree)


@pytest.fixture(scope="module")
def plans(diff_env):
    """Range-query plans under every adequate-memory configuration."""
    qs = range_queries(diff_env.dataset, 3, seed=21)
    pool = []
    for cfg in ADEQUATE_MEMORY_CONFIGS:
        diff_env.reset_caches()
        pool.extend(plan_query(q, cfg, diff_env) for q in qs)
    return pool


def _assert_identical(a, b):
    """Bitwise equality of every priced number in two RunResults."""
    assert a.energy == b.energy
    assert a.cycles == b.cycles
    assert a.wall_seconds == b.wall_seconds
    assert a.loss == b.loss


def _assert_close(a, b, rel):
    for name in ("processor", "nic_tx", "nic_rx", "nic_idle", "nic_sleep"):
        assert math.isclose(
            getattr(a.energy, name),
            getattr(b.energy, name),
            rel_tol=rel,
            abs_tol=1e-12,
        ), f"energy.{name}"
    for name in ("processor", "nic_tx", "nic_rx", "wait"):
        assert math.isclose(
            getattr(a.cycles, name),
            getattr(b.cycles, name),
            rel_tol=rel,
            abs_tol=1e-12,
        ), f"cycles.{name}"
    assert math.isclose(a.wall_seconds, b.wall_seconds, rel_tol=rel)
    for name in ("retx_tx_frames", "retx_rx_frames", "backoff_s"):
        assert math.isclose(
            getattr(a.loss, name),
            getattr(b.loss, name),
            rel_tol=rel,
            abs_tol=1e-9,
        ), f"loss.{name}"


class TestLossZeroIsTheIdealChannel:
    """loss_rate=0 must reproduce the pre-loss numbers exactly, not nearly."""

    def test_scalar_walk_bit_for_bit(self, diff_env, plans):
        plain = Policy()
        zero = Policy().with_loss(0.0)
        for plan in plans:
            _assert_identical(
                price_plan(plan, diff_env, plain),
                price_plan(plan, diff_env, zero),
            )

    def test_grid_pricer_bit_for_bit(self, diff_env, plans):
        grid = price_grid(plans, [Policy(), Policy().with_loss(0.0)], diff_env)
        for i in range(len(plans)):
            _assert_identical(grid.result(i, 0), grid.result(i, 1))

    def test_ideal_channel_ledger_is_all_zero(self, diff_env, plans):
        grid = price_grid(plans, [Policy()], diff_env)
        for i in range(len(plans)):
            loss = grid.loss(i, 0)
            assert loss.total_retx_frames() == 0.0
            assert loss.backoff_s == 0.0

    def test_mc_oracle_with_zero_loss_is_deterministic(self, diff_env, plans):
        # With p=0 the sampler never draws a loss, so even the Monte-Carlo
        # path collapses to the exact closed-form walk.
        for plan in plans[:3]:
            _assert_identical(
                simulate_plan(
                    plan, diff_env, Policy(), np.random.default_rng(0)
                ),
                price_plan(plan, diff_env, Policy()),
            )


class TestGridMatchesScalarOnLossyLinks:
    @given(
        loss=st.floats(min_value=0.001, max_value=0.6, allow_nan=False),
        burst=st.one_of(
            st.none(), st.floats(min_value=1.0, max_value=10.0, allow_nan=False)
        ),
        bw_mbps=st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
        t0=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
        g=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_lossy_grid_equals_scalar(
        self, diff_env, plans, loss, burst, bw_mbps, t0, g
    ):
        policy = Policy(
            network=NetworkConfig(
                bandwidth_bps=bw_mbps * MBPS,
                loss_rate=loss,
                loss_burst_frames=burst,
                retx_timeout_s=t0,
                retx_backoff=g,
            )
        )
        grid = price_grid(plans[:4], [policy], diff_env)
        for i, plan in enumerate(plans[:4]):
            _assert_close(
                price_plan(plan, diff_env, policy), grid.result(i, 0), rel=1e-9
            )

    def test_workload_column_sum(self, diff_env, plans):
        grid = price_grid(plans, [LOSSY, BURSTY], diff_env)
        for j, policy in enumerate((LOSSY, BURSTY)):
            ref_cells = [price_plan(p, diff_env, policy) for p in plans]
            combined = grid.combine_policy(j)
            assert combined.energy.total() == pytest.approx(
                sum(c.energy.total() for c in ref_cells), rel=1e-9
            )
            assert combined.loss.total_retx_frames() == pytest.approx(
                sum(c.loss.total_retx_frames() for c in ref_cells), rel=1e-9
            )


class TestMonteCarloOracle:
    def test_same_seed_reproduces_exactly(self, diff_env, plans):
        a = mc_mean(plans[0], diff_env, LOSSY, n_runs=20, seed=99)
        b = mc_mean(plans[0], diff_env, LOSSY, n_runs=20, seed=99)
        _assert_identical(a, b)

    @pytest.mark.parametrize("policy", [LOSSY, BURSTY], ids=["bernoulli", "burst"])
    def test_mc_mean_converges_to_expected_cost(self, diff_env, plans, policy):
        # Aggregate the whole plan pool per run: the workload moves enough
        # frames that the sample mean sits well inside the tolerance.  The
        # burst channel's retransmission count is heavy-tailed (geometric
        # with mean L per lost frame), hence the looser bounds there.
        bernoulli = policy.network.loss_burst_frames is None
        want = RunResult.combine(
            [price_plan(p, diff_env, policy) for p in plans]
        )
        assert want.loss.total_retx_frames() > 2.0
        n_runs = 200
        root = np.random.default_rng(7)
        totals = [
            simulate_plans(plans, diff_env, policy, rng)
            for rng in root.spawn(n_runs)
        ]
        k = 1.0 / n_runs
        got_energy = sum(t.energy.total() for t in totals) * k
        got_wall = sum(t.wall_seconds for t in totals) * k
        got_retx = sum(t.loss.total_retx_frames() for t in totals) * k
        got_backoff = sum(t.loss.backoff_s for t in totals) * k
        assert got_energy == pytest.approx(
            want.energy.total(), rel=0.02 if bernoulli else 0.08
        )
        assert got_wall == pytest.approx(
            want.wall_seconds, rel=0.02 if bernoulli else 0.08
        )
        assert got_retx == pytest.approx(
            want.loss.total_retx_frames(), rel=0.1 if bernoulli else 0.25
        )
        assert got_backoff == pytest.approx(
            want.loss.backoff_s, rel=0.1 if bernoulli else 0.25
        )


@pytest.mark.slow
class TestFig5WorkloadDifferential:
    """The PR's acceptance bound on the paper's own workload.

    The vectorized expected-cost pricer must sit within 1% of the seeded
    per-frame Monte-Carlo oracle's mean on the fig5 range-query workload.
    The 1% bound is asserted on the Bernoulli channel, where 400 runs put
    the standard error near 0.2% of the total; the Gilbert-Elliott burst
    channel's per-run energy is heavy-tailed (~32% relative std — a lost
    frame drags a geometric burst of ~3 W retransmissions behind it), so
    its bound is set at three standard errors instead.
    """

    @pytest.mark.parametrize(
        "policy, rel",
        [
            (Policy().with_loss(0.05), 0.01),
            (Policy().with_loss(0.1, burst_frames=5.0), 0.05),
        ],
        ids=["p05-bernoulli", "p10-burst5"],
    )
    def test_grid_within_ci_of_mc_mean(self, diff_env, policy, rel):
        qs = range_queries(diff_env.dataset, 10, seed=5)
        plans = []
        for cfg in ADEQUATE_MEMORY_CONFIGS:
            diff_env.reset_caches()
            plans.extend(plan_query(q, cfg, diff_env) for q in qs)

        grid = price_grid(plans, [policy], diff_env)
        expected = grid.combine_policy(0)

        n_runs = 400
        root = np.random.default_rng(2026)
        totals = [
            simulate_plans(plans, diff_env, policy, rng)
            for rng in root.spawn(n_runs)
        ]
        k = 1.0 / n_runs
        mc_energy = sum(t.energy.total() for t in totals) * k
        mc_cycles = sum(t.cycles.total() for t in totals) * k
        mc_wall = sum(t.wall_seconds for t in totals) * k
        mc_retx = sum(t.loss.total_retx_frames() for t in totals) * k

        assert expected.energy.total() == pytest.approx(mc_energy, rel=rel)
        assert expected.cycles.total() == pytest.approx(mc_cycles, rel=rel)
        assert expected.wall_seconds == pytest.approx(mc_wall, rel=rel)
        assert expected.loss.total_retx_frames() == pytest.approx(
            mc_retx, rel=5 * rel
        )
