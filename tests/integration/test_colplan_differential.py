"""Differential suite: the fused columnar engine vs its two oracles.

:func:`repro.core.colplan.plan_and_price_columnar` promises GridResults
**bit-identical** to pricing the batched planner's object plans through
:func:`repro.core.gridrun.price_grid`, and therefore within the engines'
1e-9 agreement bound of the scalar ``plan_query`` + ``price_plan`` twin.
Every test here runs all three paths on one workload through the shared
oracle layer (:mod:`tests.integration.oracles`) and demands exactly that —
including the simulated cache state all three leave behind.

Covers the fig4/5/6/7 workload shapes, all four query kinds, lossy-link
policy grids, warm-seeded caches, degenerate and empty windows, k past the
dataset size, multiprocessing shards, the Session/ledger surface, and
hypothesis-random workloads over random datasets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.batchplan import plan_workload_batched
from repro.core.colplan import (
    compute_query_phases_sharded,
    plan_and_price_columnar,
)
from repro.core.executor import Environment, Policy, plan_query
from repro.core.gridrun import RunLedger, price_grid
from repro.core.queries import KNNQuery, PointQuery, RangeQuery
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data import tiger
from repro.data.model import SegmentDataset
from repro.data.workloads import (
    knn_queries,
    nn_queries,
    point_queries,
    range_queries,
)
from repro.spatial.mbr import MBR
from tests.integration.oracles import (
    assert_columnar_differential,
    assert_grids_identical,
    assert_tables_identical,
    cache_state,
    run_ledger_shape,
    run_table,
)
from tests.integration.test_batchplan_differential import (
    nn_workloads,
    small_envs,
    window_workloads,
)

NN_CONFIGS = (
    SchemeConfig(Scheme.FULLY_CLIENT),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
)

#: Ideal-channel bandwidth sweep plus a lossy tail — both framings, so the
#: per-framing pricing loop and the retransmission columns are exercised.
LOSSY_POLICIES = tuple(Policy.sweep()) + tuple(
    Policy.sweep(loss_rates=(0.05,))
)


@pytest.fixture(scope="module")
def env() -> Environment:
    return Environment.create(tiger.pa_dataset(scale=0.05))


@pytest.fixture(scope="module")
def nyc_env() -> Environment:
    return Environment.create(tiger.nyc_dataset(scale=0.05))


# ----------------------------------------------------------------------
# The paper workload shapes, under lossy policy grids
# ----------------------------------------------------------------------
def test_fig4_point_workload(env):
    from repro.bench.figures import POINT_NN_CONFIGS

    assert_columnar_differential(
        env, point_queries(env.dataset, 12, seed=4), POINT_NN_CONFIGS,
        LOSSY_POLICIES,
    )


def test_fig5_range_workload(env):
    assert_columnar_differential(
        env, range_queries(env.dataset, 12, seed=5), ADEQUATE_MEMORY_CONFIGS,
        LOSSY_POLICIES,
    )


def test_fig6_nn_workload(env):
    assert_columnar_differential(
        env, nn_queries(env.dataset, 12, seed=6), NN_CONFIGS, LOSSY_POLICIES
    )


def test_fig7_nyc_range_workload(nyc_env):
    assert_columnar_differential(
        nyc_env, range_queries(nyc_env.dataset, 12, seed=7),
        ADEQUATE_MEMORY_CONFIGS, LOSSY_POLICIES,
    )


def test_knn_workload(env):
    assert_columnar_differential(
        env, knn_queries(env.dataset, 12, seed=8), NN_CONFIGS, LOSSY_POLICIES
    )


def test_mixed_query_kinds_one_workload(env):
    ds = env.dataset
    mixed = (
        point_queries(ds, 4, seed=21)
        + range_queries(ds, 4, seed=22)
        + nn_queries(ds, 4, seed=23)
        + knn_queries(ds, 4, seed=25)
    )
    assert_columnar_differential(env, mixed, NN_CONFIGS, LOSSY_POLICIES)


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------
def test_empty_and_degenerate_windows(env):
    ext = env.dataset.extent
    off = ext.width + ext.height
    cx = (ext.xmin + ext.xmax) / 2.0
    cy = (ext.ymin + ext.ymax) / 2.0
    queries = [
        # Far outside the extent: zero candidates, zero answers.
        RangeQuery(MBR(ext.xmax + off, ext.ymax + off,
                       ext.xmax + 2 * off, ext.ymax + 2 * off)),
        PointQuery(ext.xmax + off, ext.ymax + off),
        RangeQuery(MBR(cx, cy, cx, cy)),  # zero-area point window
        RangeQuery(MBR(ext.xmin, cy, ext.xmax, cy)),  # zero-height slab
        RangeQuery(MBR(ext.xmin, ext.ymin, ext.xmax, ext.ymax)),  # everything
    ]
    assert_columnar_differential(env, queries, ADEQUATE_MEMORY_CONFIGS)


def test_knn_k_exceeds_dataset():
    rng = np.random.default_rng(41)
    cx = rng.uniform(0, 100, 12)
    cy = rng.uniform(0, 100, 12)
    ds = SegmentDataset("tiny", cx, cy, cx + 3.0, cy + 3.0)
    small = Environment.create(ds)
    queries = [
        KNNQuery(10.0, 10.0, k=12),
        KNNQuery(50.0, 50.0, k=25),
        KNNQuery(90.0, 5.0, k=100),
    ]
    assert_columnar_differential(small, queries, NN_CONFIGS, LOSSY_POLICIES)


def test_single_query_workload(env):
    assert_columnar_differential(
        env, range_queries(env.dataset, 1, seed=9), ADEQUATE_MEMORY_CONFIGS
    )


def test_warm_cache_parity(env):
    """reset_caches=False continues the live cache state bit-for-bit.

    Two identically warmed twin environments: the batched object path runs
    warm on one, the columnar pass warm on the other; grids and final
    cache states must coincide exactly.
    """
    ds = env.dataset
    warmup = range_queries(ds, 5, seed=31)
    work = range_queries(ds, 10, seed=32) + knn_queries(ds, 5, seed=33)
    cfg = NN_CONFIGS[0]
    policies = list(Policy.sweep())

    def warmed() -> Environment:
        twin = Environment.create(ds)
        twin.reset_caches()
        for q in warmup:
            plan_query(q, cfg, twin)
        return twin

    env_obj, env_col = warmed(), warmed()
    [plans] = plan_workload_batched(env_obj, work, [cfg], reset_caches=False)
    grid_obj = price_grid(plans, policies, env_obj)
    [grid_col] = plan_and_price_columnar(
        env_col, work, [cfg], policies, reset_caches=False
    )
    assert_grids_identical(grid_col, grid_obj)
    assert cache_state(env_col) == cache_state(env_obj)


# ----------------------------------------------------------------------
# Multiprocessing shards
# ----------------------------------------------------------------------
def test_sharded_phases_equal_serial(env):
    queries = range_queries(env.dataset, 9, seed=51) + nn_queries(
        env.dataset, 4, seed=52
    )
    serial = compute_query_phases_sharded(env, queries, processes=None)
    sharded = compute_query_phases_sharded(env, queries, processes=3)
    assert len(serial) == len(sharded)
    for a, b in zip(serial, sharded):
        assert np.array_equal(a.answer_ids, b.answer_ids)
        assert np.array_equal(a.cand_ids, b.cand_ids)
        assert a.is_nn == b.is_nn


def test_sharded_columnar_bit_identical(env):
    queries = range_queries(env.dataset, 10, seed=53)
    policies = list(Policy.sweep())
    serial = plan_and_price_columnar(
        env, queries, ADEQUATE_MEMORY_CONFIGS, policies
    )
    sharded = plan_and_price_columnar(
        env, queries, ADEQUATE_MEMORY_CONFIGS, policies, processes=2
    )
    for a, b in zip(sharded, serial):
        assert_grids_identical(a, b)


# ----------------------------------------------------------------------
# The Session / ledger surface
# ----------------------------------------------------------------------
def test_session_runtable_and_ledger_parity(env):
    queries = range_queries(env.dataset, 10, seed=61)
    policies = list(Policy.sweep())
    led_b, led_c = RunLedger(), RunLedger()
    table_b, state_b = run_table(
        env, queries, ADEQUATE_MEMORY_CONFIGS, policies, ledger=led_b
    )
    table_c, state_c = run_table(
        env, queries, ADEQUATE_MEMORY_CONFIGS, policies,
        planner="columnar", ledger=led_c,
    )
    assert_tables_identical(table_c, table_b)
    assert state_c == state_b
    assert run_ledger_shape(led_c.records) == run_ledger_shape(led_b.records)
    assert any(
        r["event"] == "price" and r["engine"] == "columnar"
        for r in led_c.records
    )


# ----------------------------------------------------------------------
# Hypothesis: random workloads over random datasets
# ----------------------------------------------------------------------
@given(small_envs(), window_workloads())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_hypothesis_random_windows(hyp_env, queries):
    assert_columnar_differential(hyp_env, queries, ADEQUATE_MEMORY_CONFIGS)


@given(small_envs(), nn_workloads())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_hypothesis_random_nn_batches(hyp_env, queries):
    assert_columnar_differential(hyp_env, queries, NN_CONFIGS)
