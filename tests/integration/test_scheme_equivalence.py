"""Every work-partitioning scheme must return the same answers.

Partitioning moves *where* computation happens, never *what* is computed:
for any query, all six adequate-memory configurations and the
insufficient-memory cached client must produce identical answer sets, equal
to the brute-force oracle.  This is the core safety property of the
reproduction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.clientcache import ClientCacheSession
from repro.core.executor import plan_query
from repro.core.queries import QueryKind
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data.workloads import (
    nn_queries,
    point_queries,
    proximity_sequence,
    range_queries,
)
from repro.spatial import bruteforce as bf


class TestAdequateMemoryEquivalence:
    def _assert_all_equal(self, env, queries, configs, oracle):
        for q in queries:
            want = np.sort(oracle(q))
            for cfg in configs:
                env.reset_caches()
                plan = plan_query(q, cfg, env)
                got = np.sort(plan.answer_ids)
                assert np.array_equal(got, want), f"{cfg.label} on {q}"

    def test_range_queries(self, env_small, pa_small):
        self._assert_all_equal(
            env_small,
            range_queries(pa_small, 8, seed=61),
            ADEQUATE_MEMORY_CONFIGS,
            lambda q: bf.range_query(pa_small, q.rect),
        )

    def test_point_queries(self, env_small, pa_small):
        self._assert_all_equal(
            env_small,
            point_queries(pa_small, 8, seed=63),
            ADEQUATE_MEMORY_CONFIGS,
            lambda q: bf.point_query(pa_small, q.x, q.y, q.eps),
        )

    def test_nn_queries(self, env_small, pa_small):
        configs = [
            SchemeConfig(Scheme.FULLY_CLIENT),
            SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
            SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False),
        ]
        from repro.spatial.geometry import point_segment_distance_sq

        for q in nn_queries(pa_small, 8, seed=65):
            answers = []
            for cfg in configs:
                env_small.reset_caches()
                plan = plan_query(q, cfg, env_small)
                assert plan.n_results == 1
                answers.append(int(plan.answer_ids[0]))
            d = [
                point_segment_distance_sq(q.x, q.y, *pa_small.segment(a))
                for a in answers
            ]
            want = bf.nearest_neighbor(pa_small, q.x, q.y)
            want_d = point_segment_distance_sq(q.x, q.y, *pa_small.segment(want))
            for di in d:
                assert di == pytest.approx(want_d, rel=1e-12, abs=1e-12)


class TestInsufficientMemoryEquivalence:
    def test_cached_session_equals_oracle_over_long_session(
        self, env_small, pa_small
    ):
        session = ClientCacheSession(env_small, 192 * 1024)
        for q in proximity_sequence(pa_small, y=10, n_groups=4, seed=67):
            plan = session.plan(q)
            assert q.kind is QueryKind.RANGE
            want = bf.range_query(pa_small, q.rect)
            assert np.array_equal(np.sort(plan.answer_ids), np.sort(want))
        # The session must have exercised both paths.
        assert session.local_hits > 0
        assert session.misses > 0
