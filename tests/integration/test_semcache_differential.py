"""Differential suite: semantic-cached planning vs the uncached planner.

:func:`repro.core.semcache.compute_query_phases_semantic` promises answers
**bit-identical** to uncached planning with op tallies that reflect the
saved traversal work exactly, and the batched/columnar/scalar semantic
paths promise to agree with each other bit for bit.  Every test here runs
one workload through :func:`tests.integration.oracles.
assert_semcache_differential`, which pins all of that — cold cache, warm
cache, scalar twin, columnar pricer, priced energies to 1e-9 — in one
call.

Covers the fig4/5/6/7 workload shapes, all four query kinds (NN/k-NN
route through the ordinary planner and must be untouched by the cache),
the locality browse workload the cache is built for, hand-built
hit/contain/cover window relations, lossy-link policies, eviction churn
at tiny capacities, and the capacity-0 degenerate (bit-identical to
uncached, including simulator state).
"""

from __future__ import annotations

import pytest

from repro.core.executor import Environment, Policy
from repro.core.queries import PointQuery, RangeQuery
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data import tiger
from repro.data.workloads import (
    knn_queries,
    locality_workload,
    nn_queries,
    point_queries,
    range_queries,
)
from repro.spatial.mbr import MBR
from tests.integration.oracles import assert_semcache_differential

NN_CONFIGS = (
    SchemeConfig(Scheme.FULLY_CLIENT),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
)

#: One ideal-channel policy plus one lossy-link policy — enough to pin the
#: priced energies of cached plans on both channel models.
POLICIES = (Policy(), tuple(Policy.sweep(loss_rates=(0.05,)))[0])


@pytest.fixture(scope="module")
def env() -> Environment:
    return Environment.create(tiger.pa_dataset(scale=0.05))


@pytest.fixture(scope="module")
def nyc_env() -> Environment:
    return Environment.create(tiger.nyc_dataset(scale=0.05))


# ----------------------------------------------------------------------
# The paper workload shapes
# ----------------------------------------------------------------------
def test_fig4_point_workload(env):
    from repro.bench.figures import POINT_NN_CONFIGS

    assert_semcache_differential(
        env, point_queries(env.dataset, 12, seed=4), POINT_NN_CONFIGS,
        POLICIES,
    )


def test_fig5_range_workload(env):
    assert_semcache_differential(
        env, range_queries(env.dataset, 12, seed=5),
        ADEQUATE_MEMORY_CONFIGS, POLICIES,
    )


def test_fig6_nn_workload(env):
    assert_semcache_differential(
        env, nn_queries(env.dataset, 12, seed=6), NN_CONFIGS, POLICIES
    )


def test_fig7_nyc_range_workload(nyc_env):
    assert_semcache_differential(
        nyc_env, range_queries(nyc_env.dataset, 12, seed=7),
        ADEQUATE_MEMORY_CONFIGS, POLICIES,
    )


def test_knn_workload(env):
    assert_semcache_differential(
        env, knn_queries(env.dataset, 12, seed=8), NN_CONFIGS, POLICIES
    )


def test_mixed_query_kinds_one_workload(env):
    ds = env.dataset
    mixed = (
        point_queries(ds, 4, seed=21)
        + range_queries(ds, 4, seed=22)
        + nn_queries(ds, 4, seed=23)
        + knn_queries(ds, 4, seed=25)
    )
    assert_semcache_differential(env, mixed, NN_CONFIGS, POLICIES)


# ----------------------------------------------------------------------
# The cache's target workload and hand-built verdict shapes
# ----------------------------------------------------------------------
def test_locality_workload(env):
    assert_semcache_differential(
        env, locality_workload(env.dataset, 8, 2, seed=31), NN_CONFIGS,
        POLICIES,
    )


def test_repeat_nest_and_cover_windows(env):
    """Exact repeats, nested zooms, and a slab cover in one sequence."""
    ext = env.dataset.extent
    w = ext.width / 8
    h = ext.height / 8
    x0 = ext.xmin + 2 * w
    y0 = ext.ymin + 2 * h
    outer = MBR(x0, y0, x0 + 2 * w, y0 + 2 * h)
    inner = MBR(x0 + w / 2, y0 + h / 2, x0 + w, y0 + h)
    left = MBR(x0, y0, x0 + w, y0 + 2 * h)
    right = MBR(x0 + w * 0.8, y0, x0 + 2 * w, y0 + 2 * h)
    spanning = MBR(x0 + w / 4, y0 + h / 4, x0 + 1.5 * w, y0 + 1.5 * h)
    queries = [
        RangeQuery(outer),
        RangeQuery(outer),            # exact repeat -> hit
        RangeQuery(inner),            # nested -> contain refine
        PointQuery(inner.xmin, inner.ymin),  # degenerate window in outer
        RangeQuery(left),
        RangeQuery(right),
        RangeQuery(spanning),         # covered by left|right -> cover
        RangeQuery(inner),            # repeat of a refined window -> hit
    ]
    assert_semcache_differential(env, queries, NN_CONFIGS, POLICIES)


# ----------------------------------------------------------------------
# Eviction churn and the disabled degenerate
# ----------------------------------------------------------------------
def test_tiny_capacity_eviction_churn(env):
    assert_semcache_differential(
        env,
        locality_workload(env.dataset, 8, 2, seed=33),
        NN_CONFIGS,
        POLICIES,
        capacity=2,
    )


def test_capacity_zero_is_uncached(env):
    """Capacity 0 never serves: the oracle's bit-identity leg must fire."""
    assert_semcache_differential(
        env,
        range_queries(env.dataset, 10, seed=13),
        ADEQUATE_MEMORY_CONFIGS,
        POLICIES,
        capacity=0,
    )
