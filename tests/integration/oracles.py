"""Reusable differential-oracle layer for (planner, pricer) pairings.

The repo's correctness story is *differential*: every fast path is pinned
to the scalar per-query twin (``plan_query`` + ``price_plan``), and the
fused columnar engine additionally to the batched object path **bit for
bit**.  This module packages those comparisons so any suite — the
dedicated columnar tests, the batchplan differential suite, hypothesis
property tests — asserts the same contract through the same helpers:

``assert_grids_identical``
    Every array of two :class:`~repro.core.gridrun.GridResult`\\ s equal
    via ``np.array_equal`` (bit-for-bit), plus the compiled shims' answer
    ids / op tallies / message shapes.
``assert_tables_identical`` / ``assert_tables_close``
    :class:`~repro.api.RunTable` equality — exact for engine twins that
    share summation order, 1e-9 relative for the scalar oracle (its
    documented agreement bound), discrete fields exact either way.
``assert_columnar_differential``
    The full three-way pin: columnar ≡ batched exactly, both ≈ scalar,
    and the environment's simulated cache state (hits, misses, LRU set
    contents on both sides) left identical by all three paths.
``run_ledger_shape``
    A ledger event stream reduced to its deterministic fields, so suites
    can require the fused path to emit the same observability records
    without comparing wall-clock timings.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.api import RunTable, Session
from repro.bench.e2ebench import tables_match
from repro.core.batchplan import plan_workload_batched
from repro.core.colplan import plan_and_price_columnar
from repro.core.executor import Environment, Policy, plan_query, price_plan
from repro.core.gridrun import GridResult, price_grid
from repro.core.queries import Query
from repro.core.schemes import SchemeConfig

__all__ = [
    "SCALAR_REL_TOL",
    "assert_columnar_differential",
    "assert_grids_identical",
    "assert_tables_close",
    "assert_tables_identical",
    "cache_state",
    "run_ledger_shape",
    "run_table",
]

#: The engines' documented agreement bound vs the scalar pricer (summation
#: order differs; everything else is exact).
SCALAR_REL_TOL = 1e-9

#: Every numeric plane of a GridResult (all compared bit-for-bit).
_GRID_ARRAYS = (
    "energy_processor", "energy_tx", "energy_rx", "energy_idle",
    "energy_sleep", "cycles_processor", "cycles_tx", "cycles_rx",
    "cycles_wait", "wall_s", "dwell_tx_s", "dwell_rx_s", "dwell_idle_s",
    "dwell_sleep_s", "sleep_exits", "retx_tx_frames", "retx_rx_frames",
    "backoff_s",
)


def cache_state(env: Environment):
    """Everything planning mutates in the environment's simulators."""
    client = env.client_cpu.dcache
    server = env.server_cpu.l1
    return (
        client.hits, client.misses, [list(s) for s in client._sets],
        server.hits, server.misses, [list(s) for s in server._sets],
    )


def assert_grids_identical(grid: GridResult, oracle: GridResult) -> None:
    """Both grids bit-for-bit: every plane, and every compiled shim."""
    assert grid.shape == oracle.shape
    for name in _GRID_ARRAYS:
        a, b = getattr(grid, name), getattr(oracle, name)
        assert np.array_equal(a, b), f"GridResult.{name} differs"
    assert len(grid.compiled) == len(oracle.compiled)
    for c, o in zip(grid.compiled, oracle.compiled):
        assert np.array_equal(c.answer_ids, o.answer_ids)
        assert c.n_candidates == o.n_candidates
        assert c.n_results == o.n_results
        assert tuple(c.messages) == tuple(o.messages)


def assert_tables_identical(table: RunTable, oracle: RunTable) -> None:
    """Row-for-row bit-identity, including the NIC dwell records."""
    ok, worst = tables_match(table, oracle, rel_tol=0.0)
    assert ok, f"RunTables differ (worst rel err {worst:.3e})"
    for a, b in zip(table.rows, oracle.rows):
        assert (a.dwell is None) == (b.dwell is None)


def assert_tables_close(
    table: RunTable, oracle: RunTable, *, rel_tol: float = SCALAR_REL_TOL
) -> None:
    """Numerics to ``rel_tol``; answer ids, tallies and messages exact."""
    ok, worst = tables_match(table, oracle, rel_tol=rel_tol)
    assert ok, f"RunTables disagree beyond {rel_tol} (worst {worst:.3e})"


def run_table(
    env: Environment,
    queries: Sequence[Query],
    configs: Sequence[SchemeConfig],
    policies: Sequence[Policy],
    *,
    planner: str = "batched",
    engine: str = "batched",
    ledger=None,
):
    """One fresh-session run; returns ``(table, cache_state_after)``."""
    session = Session(env, ledger=ledger)
    table = session.run(
        list(queries),
        schemes=list(configs),
        policies=list(policies),
        engine=engine,
        planner=planner,
    )
    return table, cache_state(env)


def run_ledger_shape(records: Sequence[dict]) -> List[dict]:
    """Ledger events minus their non-deterministic fields.

    Drops wall-clock timings (``t``, ``seconds``) and cache-statistics
    fields that depend on how often an engine consults the plan cache;
    keeps everything that must be identical across planner twins —
    event types, schemes, planner/engine labels, workload sizes, and the
    ``run`` events' full numeric payload.
    """
    volatile = {"t", "seconds", "cache_hit", "cache_hits", "cache_misses",
                "cache_hit_rate", "planner", "engine"}
    return [
        {k: v for k, v in rec.items() if k not in volatile}
        for rec in records
    ]


def assert_columnar_differential(
    env: Environment,
    queries: Sequence[Query],
    configs: Sequence[SchemeConfig],
    policies: Optional[Sequence[Policy]] = None,
) -> None:
    """The full three-way pin on one workload, from cold caches.

    1. Scalar twin: per-query plans priced per cell, cache state captured.
    2. Batched object path: one traversal into plans, one grid pricing per
       scheme; plans priced with :func:`price_grid`.
    3. Fused columnar pass: must equal the batched grids **bit for bit**
       (:func:`assert_grids_identical`) and the scalar cells to
       :data:`SCALAR_REL_TOL`; all three leave identical cache state.
    """
    queries = list(queries)
    configs = list(configs)
    policies = list(policies) if policies is not None else [Policy()]

    scalar_cells = []
    for cfg in configs:
        env.reset_caches()
        plans = [plan_query(q, cfg, env) for q in queries]
        scalar_cells.append(
            [[price_plan(p, env, pol) for pol in policies] for p in plans]
        )
    scalar_state = cache_state(env)

    batched_plans = plan_workload_batched(env, queries, configs)
    batched_state = cache_state(env)
    batched_grids = [price_grid(plans, policies, env) for plans in batched_plans]

    columnar_grids = plan_and_price_columnar(env, queries, configs, policies)
    columnar_state = cache_state(env)

    assert batched_state == scalar_state
    assert columnar_state == scalar_state
    assert len(columnar_grids) == len(batched_grids) == len(configs)
    for col, obj, cells in zip(columnar_grids, batched_grids, scalar_cells):
        assert_grids_identical(col, obj)
        for i, per_policy in enumerate(cells):
            for j, want in enumerate(per_policy):
                got = col.result(i, j)
                assert got.energy.total() == _approx(want.energy.total())
                for f in dataclasses.fields(want.energy):
                    assert getattr(got.energy, f.name) == _approx(
                        getattr(want.energy, f.name)
                    )
                for f in dataclasses.fields(want.cycles):
                    assert getattr(got.cycles, f.name) == _approx(
                        getattr(want.cycles, f.name)
                    )
                assert got.wall_seconds == _approx(want.wall_seconds)
                assert got.n_candidates == want.n_candidates
                assert got.n_results == want.n_results
                assert tuple(got.messages) == tuple(want.messages)
                assert np.array_equal(
                    np.asarray(got.answer_ids), np.asarray(want.answer_ids)
                )


def _approx(value: float):
    import pytest

    return pytest.approx(value, rel=SCALAR_REL_TOL, abs=0.0)
