"""Reusable differential-oracle layer for (planner, pricer) pairings.

The repo's correctness story is *differential*: every fast path is pinned
to the scalar per-query twin (``plan_query`` + ``price_plan``), and the
fused columnar engine additionally to the batched object path **bit for
bit**.  This module packages those comparisons so any suite — the
dedicated columnar tests, the batchplan differential suite, hypothesis
property tests — asserts the same contract through the same helpers:

``assert_grids_identical``
    Every array of two :class:`~repro.core.gridrun.GridResult`\\ s equal
    via ``np.array_equal`` (bit-for-bit), plus the compiled shims' answer
    ids / op tallies / message shapes.
``assert_tables_identical`` / ``assert_tables_close``
    :class:`~repro.api.RunTable` equality — exact for engine twins that
    share summation order, 1e-9 relative for the scalar oracle (its
    documented agreement bound), discrete fields exact either way.
``assert_columnar_differential``
    The full three-way pin: columnar ≡ batched exactly, both ≈ scalar,
    and the environment's simulated cache state (hits, misses, LRU set
    contents on both sides) left identical by all three paths.
``run_ledger_shape``
    A ledger event stream reduced to its deterministic fields, so suites
    can require the fused path to emit the same observability records
    without comparing wall-clock timings.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.api import RunTable, Session
from repro.bench.e2ebench import tables_match
from repro.core.batchplan import plan_workload_batched
from repro.core.colplan import plan_and_price_columnar
from repro.core.executor import Environment, Policy, plan_query, price_plan
from repro.core.gridrun import GridResult, price_grid
from repro.core.queries import Query
from repro.core.schemes import SchemeConfig

__all__ = [
    "SCALAR_REL_TOL",
    "assert_columnar_differential",
    "assert_grids_identical",
    "assert_semcache_differential",
    "assert_shard_differential",
    "assert_tables_close",
    "assert_tables_identical",
    "cache_state",
    "run_ledger_shape",
    "run_table",
]

#: The engines' documented agreement bound vs the scalar pricer (summation
#: order differs; everything else is exact).
SCALAR_REL_TOL = 1e-9

#: Every numeric plane of a GridResult (all compared bit-for-bit).
_GRID_ARRAYS = (
    "energy_processor", "energy_tx", "energy_rx", "energy_idle",
    "energy_sleep", "cycles_processor", "cycles_tx", "cycles_rx",
    "cycles_wait", "wall_s", "dwell_tx_s", "dwell_rx_s", "dwell_idle_s",
    "dwell_sleep_s", "sleep_exits", "retx_tx_frames", "retx_rx_frames",
    "backoff_s",
)


def cache_state(env: Environment):
    """Everything planning mutates in the environment's simulators."""
    client = env.client_cpu.dcache
    server = env.server_cpu.l1
    return (
        client.hits, client.misses, [list(s) for s in client._sets],
        server.hits, server.misses, [list(s) for s in server._sets],
    )


def assert_grids_identical(grid: GridResult, oracle: GridResult) -> None:
    """Both grids bit-for-bit: every plane, and every compiled shim."""
    assert grid.shape == oracle.shape
    for name in _GRID_ARRAYS:
        a, b = getattr(grid, name), getattr(oracle, name)
        assert np.array_equal(a, b), f"GridResult.{name} differs"
    assert len(grid.compiled) == len(oracle.compiled)
    for c, o in zip(grid.compiled, oracle.compiled):
        assert np.array_equal(c.answer_ids, o.answer_ids)
        assert c.n_candidates == o.n_candidates
        assert c.n_results == o.n_results
        assert tuple(c.messages) == tuple(o.messages)


def assert_tables_identical(table: RunTable, oracle: RunTable) -> None:
    """Row-for-row bit-identity, including the NIC dwell records."""
    ok, worst = tables_match(table, oracle, rel_tol=0.0)
    assert ok, f"RunTables differ (worst rel err {worst:.3e})"
    for a, b in zip(table.rows, oracle.rows):
        assert (a.dwell is None) == (b.dwell is None)


def assert_tables_close(
    table: RunTable, oracle: RunTable, *, rel_tol: float = SCALAR_REL_TOL
) -> None:
    """Numerics to ``rel_tol``; answer ids, tallies and messages exact."""
    ok, worst = tables_match(table, oracle, rel_tol=rel_tol)
    assert ok, f"RunTables disagree beyond {rel_tol} (worst {worst:.3e})"


def run_table(
    env: Environment,
    queries: Sequence[Query],
    configs: Sequence[SchemeConfig],
    policies: Sequence[Policy],
    *,
    planner: str = "batched",
    engine: str = "batched",
    ledger=None,
):
    """One fresh-session run; returns ``(table, cache_state_after)``."""
    session = Session(env, ledger=ledger)
    table = session.run(
        list(queries),
        schemes=list(configs),
        policies=list(policies),
        engine=engine,
        planner=planner,
    )
    return table, cache_state(env)


def run_ledger_shape(records: Sequence[dict]) -> List[dict]:
    """Ledger events minus their non-deterministic fields.

    Drops wall-clock timings (``t``, ``seconds``) and cache-statistics
    fields that depend on how often an engine consults the plan cache;
    keeps everything that must be identical across planner twins —
    event types, schemes, planner/engine labels, workload sizes, and the
    ``run`` events' full numeric payload.
    """
    volatile = {"t", "seconds", "cache_hit", "cache_hits", "cache_misses",
                "cache_hit_rate", "planner", "engine"}
    return [
        {k: v for k, v in rec.items() if k not in volatile}
        for rec in records
    ]


def assert_columnar_differential(
    env: Environment,
    queries: Sequence[Query],
    configs: Sequence[SchemeConfig],
    policies: Optional[Sequence[Policy]] = None,
) -> None:
    """The full three-way pin on one workload, from cold caches.

    1. Scalar twin: per-query plans priced per cell, cache state captured.
    2. Batched object path: one traversal into plans, one grid pricing per
       scheme; plans priced with :func:`price_grid`.
    3. Fused columnar pass: must equal the batched grids **bit for bit**
       (:func:`assert_grids_identical`) and the scalar cells to
       :data:`SCALAR_REL_TOL`; all three leave identical cache state.
    """
    queries = list(queries)
    configs = list(configs)
    policies = list(policies) if policies is not None else [Policy()]

    scalar_cells = []
    for cfg in configs:
        env.reset_caches()
        plans = [plan_query(q, cfg, env) for q in queries]
        scalar_cells.append(
            [[price_plan(p, env, pol) for pol in policies] for p in plans]
        )
    scalar_state = cache_state(env)

    batched_plans = plan_workload_batched(env, queries, configs)
    batched_state = cache_state(env)
    batched_grids = [price_grid(plans, policies, env) for plans in batched_plans]

    columnar_grids = plan_and_price_columnar(env, queries, configs, policies)
    columnar_state = cache_state(env)

    assert batched_state == scalar_state
    assert columnar_state == scalar_state
    assert len(columnar_grids) == len(batched_grids) == len(configs)
    for col, obj, cells in zip(columnar_grids, batched_grids, scalar_cells):
        assert_grids_identical(col, obj)
        for i, per_policy in enumerate(cells):
            for j, want in enumerate(per_policy):
                got = col.result(i, j)
                assert got.energy.total() == _approx(want.energy.total())
                for f in dataclasses.fields(want.energy):
                    assert getattr(got.energy, f.name) == _approx(
                        getattr(want.energy, f.name)
                    )
                for f in dataclasses.fields(want.cycles):
                    assert getattr(got.cycles, f.name) == _approx(
                        getattr(want.cycles, f.name)
                    )
                assert got.wall_seconds == _approx(want.wall_seconds)
                assert got.n_candidates == want.n_candidates
                assert got.n_results == want.n_results
                assert tuple(got.messages) == tuple(want.messages)
                assert np.array_equal(
                    np.asarray(got.answer_ids), np.asarray(want.answer_ids)
                )


def _approx(value: float):
    import pytest

    return pytest.approx(value, rel=SCALAR_REL_TOL, abs=0.0)


def assert_shard_differential(
    env: Environment,
    queries: Sequence[Query],
    configs: Sequence[SchemeConfig],
    policies: Optional[Sequence[Policy]] = None,
    *,
    sharding=None,
) -> dict:
    """Pin sharded planning to the unsharded engines on one workload.

    Builds fresh sharded environments over ``env``'s own dataset and tree
    (so the packed entry order is shared) and requires, from cold caches:

    1. **Batched twin** — ``plan_workload_batched`` through the shard
       store produces plans bit-identical to the unsharded batched planner
       (``plans_equal``: steps, op tallies, answer ids, messages) and
       leaves identical simulated cache state.
    2. **Priced grids** — ``price_grid`` over the sharded plans equals the
       unsharded grids bit for bit on every numeric plane.
    3. **Columnar twin** — ``plan_and_price_columnar`` with the store
       attached equals the unsharded grids bit for bit, with identical
       cache state (the sharded columnar path runs serially by design).
    4. **Scalar energies** — each sharded cell agrees with the scalar
       per-query pricer within :data:`SCALAR_REL_TOL`.

    ``sharding`` is the :class:`~repro.core.shardstore.ShardConfig` to pin
    (default 8 shards, unbounded residency — pass a budgeted config to
    exercise LRU spills).  Returns the batched store's lifetime stats so
    callers can additionally assert pruning/eviction behavior.
    """
    from repro.core.batchplan import plans_equal
    from repro.core.shardstore import ShardConfig, ShardStore

    queries = list(queries)
    configs = list(configs)
    policies = list(policies) if policies is not None else [Policy()]
    if sharding is None:
        sharding = ShardConfig(n_shards=8)

    env.reset_caches()
    base_plans = plan_workload_batched(env, queries, configs)
    base_state = cache_state(env)
    base_grids = [price_grid(plans, policies, env) for plans in base_plans]

    def sharded_env() -> Environment:
        e = Environment.create(env.dataset, tree=env.tree)
        e.shard_store = ShardStore.from_tree(env.tree, sharding)
        return e

    env_sh = sharded_env()
    sh_plans = plan_workload_batched(env_sh, queries, configs)
    assert cache_state(env_sh) == base_state
    for got_cfg, want_cfg in zip(sh_plans, base_plans):
        assert plans_equal(got_cfg, want_cfg)
    sh_grids = [price_grid(plans, policies, env_sh) for plans in sh_plans]
    for got, want in zip(sh_grids, base_grids):
        assert_grids_identical(got, want)

    env_col = sharded_env()
    col_grids = plan_and_price_columnar(env_col, queries, configs, policies)
    assert cache_state(env_col) == base_state
    for col, want in zip(col_grids, base_grids):
        assert_grids_identical(col, want)

    for cfg_i, cfg in enumerate(configs):
        env.reset_caches()
        for i, q in enumerate(queries):
            want = price_plan(plan_query(q, cfg, env), env, policies[0])
            got = sh_grids[cfg_i].result(i, 0)
            assert got.energy.total() == _approx(want.energy.total())
            assert got.cycles.total() == _approx(want.cycles.total())

    stats = env_sh.shard_store.stats_dict()
    assert stats["shards_touched"] >= 1
    return stats


def assert_semcache_differential(
    env: Environment,
    queries: Sequence[Query],
    configs: Sequence[SchemeConfig],
    policies: Optional[Sequence[Policy]] = None,
    *,
    capacity: int = 4096,
) -> None:
    """Pin semantic-cached planning to uncached planning on one workload.

    Runs the workload four ways and cross-checks them:

    1. **Uncached baseline** — ``plan_workload_batched`` with no cache,
       plans and final simulator state captured.
    2. **Cold semantic pass** — a fresh :class:`SemanticCache`.  Answers
       must be bit-identical to the baseline for every plan.  If the cold
       pass served nothing (``hits + refines == 0``, possible only when
       no within-batch containment fires), the plans and simulator state
       must equal the baseline bit for bit.
    3. **Warm semantic pass** — re-running the workload on the cold
       pass's final cache.  Answers again bit-identical; every cached
       (plan, policy) cell priced by the grid pricer and the scalar
       pricer agrees within :data:`SCALAR_REL_TOL`; miss-verdict and
       NN/k-NN plans are bit-identical to the uncached baseline (served
       plans legitimately carry smaller op tallies — the saved work).
    4. **Scalar semantic twin** — :func:`plan_one_semantic` per query on
       a clone of each pass's starting cache must reproduce that pass's
       plans bit for bit (``plans_equal``) and leave identical simulator
       state; the twin cache's verdict tallies must match the batched
       pass's.

    Op tallies are checked per occurrence against the uncached phase
    data: hits do zero traversal work and scan exactly ``nc`` cached
    ids; refines do zero node visits and at least ``nc`` MBR tests
    (the tested superset); misses are charged identically to the
    uncached planner.  Candidate and answer id arrays are bit-identical
    to uncached in every verdict class.  Finally the fused columnar
    pricer with its own cache clone must equal ``price_grid`` over the
    batched semantic plans bit for bit, cold and warm.
    """
    from repro.core.batchplan import compute_query_phases, plans_equal
    from repro.core.queries import QueryKind
    from repro.core.semcache import (
        SemanticCache,
        compute_query_phases_semantic,
        plan_one_semantic,
    )

    queries = list(queries)
    configs = list(configs)
    policies = list(policies) if policies is not None else [Policy()]

    # 1. Uncached baseline.
    base_plans = plan_workload_batched(env, queries, configs)
    base_state = cache_state(env)
    env.reset_caches()
    base_phases = compute_query_phases(env, queries)

    # 2/3. Cold then warm batched semantic passes.
    cold_cache = SemanticCache(capacity)
    cold_plans = plan_workload_batched(
        env, queries, configs, semantic_cache=cold_cache
    )
    cold_state = cache_state(env)
    cold_stats = cold_cache.stats_dict()
    warm_cache = cold_cache.clone()
    warm_plans = plan_workload_batched(
        env, queries, configs, semantic_cache=warm_cache
    )
    warm_state = cache_state(env)

    for plans in (cold_plans, warm_plans):
        assert len(plans) == len(configs)
        for got_cfg, want_cfg in zip(plans, base_plans):
            for got, want in zip(got_cfg, want_cfg):
                assert np.array_equal(got.answer_ids, want.answer_ids)
                assert got.n_results == want.n_results
    if cold_stats["hits"] + cold_stats["refines"] == 0:
        for got_cfg, want_cfg in zip(cold_plans, base_plans):
            assert plans_equal(got_cfg, want_cfg)
        assert cold_state == base_state

    # Priced energies: grid pricer vs scalar pricer on every cached
    # (plan, policy) cell, within SCALAR_REL_TOL.
    for sem_cfg in warm_plans:
        grid = price_grid(sem_cfg, policies, env)
        for i, plan in enumerate(sem_cfg):
            for j, pol in enumerate(policies):
                got = grid.result(i, j)
                want = price_plan(plan, env, pol)
                assert got.energy.total() == _approx(want.energy.total())
                assert got.n_results == want.n_results

    # 4. Scalar semantic twin, per pass.
    for start, batched_plans, want_state, batched_stats in (
        (SemanticCache(capacity), cold_plans, cold_state, cold_cache),
        (cold_cache.clone(), warm_plans, warm_state, warm_cache),
    ):
        twin = None
        for cfg_i, cfg in enumerate(configs):
            twin = start.clone()
            env.reset_caches()
            twin_plans = [
                plan_one_semantic(q, cfg, env, twin)[0] for q in queries
            ]
            assert plans_equal(twin_plans, batched_plans[cfg_i])
        if twin is not None:
            assert cache_state(env) == want_state
            for key in ("hits", "refines", "misses", "entries",
                        "insertions", "evictions"):
                assert twin.stats_dict()[key] == batched_stats.stats_dict()[key]

    # Per-occurrence verdict/tally pin against the uncached phase data.
    cold_verdicts: List[str] = []
    for start in (SemanticCache(capacity), cold_cache.clone()):
        env.reset_caches()
        phases, verdicts = compute_query_phases_semantic(
            env, queries, start
        )
        if not cold_verdicts:
            cold_verdicts = list(verdicts)
        for q, qp, base_qp, verdict in zip(
            queries, phases, base_phases, verdicts
        ):
            assert np.array_equal(qp.cand_ids, base_qp.cand_ids)
            assert np.array_equal(qp.answer_ids, base_qp.answer_ids)
            if q.kind is QueryKind.NEAREST_NEIGHBOR:
                assert verdict == ""
                continue
            c = qp.filter_trace.counter
            nc = int(qp.cand_ids.size)
            if verdict == "hit":
                assert c.nodes_visited == 0
                assert c.mbr_tests == 0
                assert c.entries_scanned == nc
            elif verdict == "refine":
                assert c.nodes_visited == 0
                assert c.mbr_tests >= nc
                assert c.entries_scanned == nc
            else:
                assert verdict == "miss"
                assert (
                    c.counts_dict()
                    == base_qp.filter_trace.counter.counts_dict()
                )

    # Misses and NN/k-NN queries plan bit-identically to uncached.
    for idx, v in enumerate(cold_verdicts):
        if v in ("miss", ""):
            for cfg_i in range(len(configs)):
                assert plans_equal(
                    [cold_plans[cfg_i][idx]], [base_plans[cfg_i][idx]]
                )

    # Columnar semantic pricing ≡ price_grid over the batched plans.
    for start, batched_plans in (
        (SemanticCache(capacity), cold_plans),
        (cold_cache.clone(), warm_plans),
    ):
        col_cache = start.clone()
        col_grids = plan_and_price_columnar(
            env, queries, configs, policies, semantic_cache=col_cache
        )
        batched_grids = [
            price_grid(plans, policies, env) for plans in batched_plans
        ]
        for col, obj in zip(col_grids, batched_grids):
            assert_grids_identical(col, obj)
        for key in ("hits", "refines", "misses", "entries"):
            want = (cold_cache if start.lookups == 0 else warm_cache)
            assert col_cache.stats_dict()[key] == want.stats_dict()[key]
