"""Differential suite: sharded planning vs the unsharded engines.

Every test routes one workload through
:func:`tests.integration.oracles.assert_shard_differential`, which pins
the shard store's batched and columnar paths to the monolithic planners —
plans (steps, tallies, answer ids), priced grids bit for bit, scalar
energies to 1e-9, and simulator cache state — from cold caches.

Covers the fig4/5/6/7 workload shapes, mixed query kinds, the locality
browse workload pruning is built for, budget-limited residency over a
dataset larger than the budget (LRU spills mid-workload), composition
with the semantic cache and with the query service, and the ledger's
shard fields.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Engine, Session
from repro.core.executor import Environment, Policy
from repro.core.gridrun import RunLedger
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.core.shardstore import ShardConfig, ShardStore
from repro.data import tiger
from repro.data.workloads import (
    knn_queries,
    locality_workload,
    nn_queries,
    oversized_dataset,
    point_queries,
    range_queries,
)
from tests.integration.oracles import assert_shard_differential

NN_CONFIGS = (
    SchemeConfig(Scheme.FULLY_CLIENT),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
)

POLICIES = (Policy(), tuple(Policy.sweep(loss_rates=(0.05,)))[0])


@pytest.fixture(scope="module")
def env() -> Environment:
    return Environment.create(tiger.pa_dataset(scale=0.05))


@pytest.fixture(scope="module")
def nyc_env() -> Environment:
    return Environment.create(tiger.nyc_dataset(scale=0.05))


# ----------------------------------------------------------------------
# The paper workload shapes
# ----------------------------------------------------------------------
def test_fig4_point_workload(env):
    from repro.bench.figures import POINT_NN_CONFIGS

    assert_shard_differential(
        env, point_queries(env.dataset, 12, seed=4), POINT_NN_CONFIGS,
        POLICIES,
    )


def test_fig5_range_workload(env):
    assert_shard_differential(
        env, range_queries(env.dataset, 12, seed=5),
        ADEQUATE_MEMORY_CONFIGS, POLICIES,
    )


def test_fig6_nn_workload(env):
    assert_shard_differential(
        env, nn_queries(env.dataset, 12, seed=6), NN_CONFIGS, POLICIES
    )


def test_fig7_nyc_range_workload(nyc_env):
    assert_shard_differential(
        nyc_env, range_queries(nyc_env.dataset, 12, seed=7),
        ADEQUATE_MEMORY_CONFIGS, POLICIES,
    )


def test_knn_workload(env):
    assert_shard_differential(
        env, knn_queries(env.dataset, 10, seed=8), NN_CONFIGS, POLICIES
    )


def test_mixed_kinds_one_workload(env):
    work = (
        point_queries(env.dataset, 4, seed=1)
        + range_queries(env.dataset, 4, seed=2)
        + nn_queries(env.dataset, 3, seed=3)
        + knn_queries(env.dataset, 3, seed=4)
    )
    assert_shard_differential(env, work, ADEQUATE_MEMORY_CONFIGS[:2])


# ----------------------------------------------------------------------
# Locality: the workload pruning exists for
# ----------------------------------------------------------------------
def test_locality_workload_prunes_shards(env):
    stats = assert_shard_differential(
        env,
        locality_workload(env.dataset, 8, 2, seed=31),
        ADEQUATE_MEMORY_CONFIGS[:1],
        sharding=ShardConfig(n_shards=16),
    )
    assert stats["shards_pruned"] >= 1


def test_shard_count_sweep(env):
    work = range_queries(env.dataset, 8, seed=9)
    for n in (1, 3, 16):
        assert_shard_differential(
            env, work, ADEQUATE_MEMORY_CONFIGS[:1],
            sharding=ShardConfig(n_shards=n),
        )


# ----------------------------------------------------------------------
# Out-of-core: dataset larger than the residency budget
# ----------------------------------------------------------------------
def test_budget_limited_oversized_dataset():
    ds = oversized_dataset(10_000, seed=13)
    env = Environment.create(ds)
    probe = ShardStore.from_tree(env.tree, ShardConfig(n_shards=12))
    budget = int(probe._shard_nbytes.max()) * 2
    assert budget < int(probe._shard_nbytes.sum())
    work = (
        range_queries(ds, 10, seed=14)
        + nn_queries(ds, 4, seed=15)
        + point_queries(ds, 4, seed=16)
    )
    stats = assert_shard_differential(
        env, work, ADEQUATE_MEMORY_CONFIGS[:2],
        sharding=ShardConfig(
            n_shards=12, budget_bytes=budget, on_overflow="spill"
        ),
    )
    assert stats["shard_evictions"] > 0
    assert stats["resident_bytes"] <= budget


# ----------------------------------------------------------------------
# Composition with the API surface
# ----------------------------------------------------------------------
def test_session_sharding_matches_unsharded(env):
    work = range_queries(env.dataset, 10, seed=21)
    base = Session(Environment.create(env.dataset, tree=env.tree)).run(
        work, schemes=ADEQUATE_MEMORY_CONFIGS[:2]
    )
    sharded = Session(
        Environment.create(env.dataset, tree=env.tree),
        sharding=ShardConfig(n_shards=8),
    ).run(work, schemes=ADEQUATE_MEMORY_CONFIGS[:2])
    from repro.bench.e2ebench import tables_match

    ok, worst = tables_match(sharded, base, rel_tol=0.0)
    assert ok, f"sharded RunTable differs (worst rel err {worst:.3e})"


def test_session_rejects_sharding_on_engine_source(env):
    engine = Engine(Environment.create(env.dataset, tree=env.tree))
    with pytest.raises(TypeError, match="sharding"):
        Session(engine, sharding=ShardConfig(n_shards=4))


def test_semcache_composes_with_sharding(env):
    """Semantic-cached planning over a sharded engine stays bit-identical
    to the uncached unsharded baseline, repeats served from the cache."""
    from repro.core.batchplan import plan_workload_batched
    from repro.core.semcache import SemanticCache

    work = locality_workload(env.dataset, 6, 2, seed=41)
    env.reset_caches()
    base = plan_workload_batched(env, work, ADEQUATE_MEMORY_CONFIGS[:1])

    env_sh = Environment.create(env.dataset, tree=env.tree)
    env_sh.shard_store = ShardStore.from_tree(env.tree, ShardConfig(n_shards=8))
    cache = SemanticCache(256)
    got = plan_workload_batched(
        env_sh, work, ADEQUATE_MEMORY_CONFIGS[:1], semantic_cache=cache
    )
    for got_cfg, want_cfg in zip(got, base):
        for g, w in zip(got_cfg, want_cfg):
            assert np.array_equal(g.answer_ids, w.answer_ids)
    stats = cache.stats_dict()
    assert stats["hits"] + stats["refines"] > 0


def test_ledger_records_shard_fields(env):
    ledger = RunLedger()
    session = Session(
        Environment.create(env.dataset, tree=env.tree),
        sharding=ShardConfig(n_shards=8), ledger=ledger,
    )
    session.run(
        range_queries(env.dataset, 6, seed=51),
        schemes=ADEQUATE_MEMORY_CONFIGS[:1],
    )
    plans = [r for r in ledger.records if r.get("event") == "plan"]
    assert plans
    rec = plans[-1]
    assert rec["shards_total"] == 8
    assert 0 <= rec["shards_pruned"] < rec["shards_total"]
    assert rec["shards_pruned"] + rec["shards_touched"] == rec["shards_total"]
    from repro.bench.report import summarize_ledger

    text = summarize_ledger(ledger.records)
    assert "shards" in text and "pruned at plan time" in text
