"""The example scripts must run end-to-end (small scales for speed).

These are subprocess smoke tests: each example is part of the public
deliverable, so a refactor that breaks an import or an API call in one of
them should fail the suite, not a user's first run.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


class TestExamplesRun:
    def test_quickstart(self):
        r = _run("quickstart.py")
        assert r.returncode == 0, r.stderr
        assert "point query" in r.stdout
        assert "Fully at the Client" in r.stdout

    def test_road_atlas_session(self):
        r = _run("road_atlas_session.py", "--scale", "0.05")
        assert r.returncode == 0, r.stderr
        assert "BEST ENERGY" in r.stdout
        assert "BEST TIME" in r.stdout

    def test_battery_planner(self):
        r = _run("battery_planner.py", "--scale", "0.05", "--runs", "10")
        assert r.returncode == 0, r.stderr
        assert "battery pick" in r.stdout
        assert "queries/charge" in r.stdout

    def test_battery_planner_nn(self):
        r = _run(
            "battery_planner.py", "--scale", "0.05", "--runs", "5",
            "--query", "nn",
        )
        assert r.returncode == 0, r.stderr

    def test_insufficient_memory_tour(self):
        r = _run(
            "insufficient_memory_tour.py",
            "--scale", "0.1", "--stops", "1", "--browse", "8",
        )
        assert r.returncode == 0, r.stderr
        assert "always-at-server" in r.stdout
        assert "cached" in r.stdout

    def test_driving_directions(self):
        r = _run("driving_directions.py", "--scale", "0.1")
        assert r.returncode == 0, r.stderr
        assert "route:" in r.stdout
        assert "ask-the-server" in r.stdout

    def test_hot_region_broadcast(self):
        r = _run("hot_region_broadcast.py", "--queries", "20")
        assert r.returncode == 0, r.stderr
        assert "hot region" in r.stdout
        assert "tune once, cache" in r.stdout
