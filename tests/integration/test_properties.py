"""System-level property tests (hypothesis).

These go beyond the per-module property tests: they generate random
datasets, queries, plans and policies, and assert the invariants that hold
across module boundaries — the contracts the executor, indexes and pricing
rely on without ever re-stating them locally.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.constants import MBPS
from repro.core.executor import (
    ClientComputeStep,
    Environment,
    Policy,
    QueryPlan,
    RecvStep,
    SendStep,
    ServerComputeStep,
    WaitStep,
    price_plan,
)
from repro.core.messages import Payload
from repro.core.pipeline import price_pipelined_workload
from repro.core.schemes import Scheme, SchemeConfig
from repro.data.model import SegmentDataset
from repro.sim.cpu import ComputeCost
from repro.spatial import bruteforce as bf
from repro.spatial.buddytree import BuddyTree
from repro.spatial.extract import extract_range, max_entries_within_budget
from repro.spatial.mbr import MBR
from repro.spatial.quadtree import PMRQuadtree
from repro.spatial.rtree import PackedRTree


# ----------------------------------------------------------------------
# Random datasets -> all indexes agree with the oracle
# ----------------------------------------------------------------------
@st.composite
def small_datasets(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=3, max_value=120))
    rng = np.random.default_rng(seed)
    cx = rng.uniform(0, 100, n)
    cy = rng.uniform(0, 100, n)
    dx = rng.normal(0, 2.0, n)
    dy = rng.normal(0, 2.0, n)
    return SegmentDataset("h", cx - dx, cy - dy, cx + dx, cy + dy)


@st.composite
def windows(draw):
    x1, x2 = sorted((draw(st.floats(-10, 110)), draw(st.floats(-10, 110))))
    y1, y2 = sorted((draw(st.floats(-10, 110)), draw(st.floats(-10, 110))))
    return MBR(x1, y1, x2, y2)


class TestIndexOracleAgreement:
    @given(small_datasets(), windows())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_all_indexes_filter_to_supersets_of_the_answer(self, ds, rect):
        answer = set(bf.range_query(ds, rect).tolist())
        rtree = PackedRTree.build(ds, node_capacity=4)
        qtree = PMRQuadtree(ds, splitting_threshold=3)
        btree = BuddyTree(ds, page_capacity=3)
        mbr_filter = set(bf.range_filter(ds, rect).tolist())
        assert set(rtree.range_filter(rect).tolist()) == mbr_filter
        assert set(btree.range_filter(rect).tolist()) == mbr_filter
        q_cand = set(qtree.range_filter(rect).tolist())
        assert answer <= q_cand <= mbr_filter

    @given(small_datasets(), st.floats(0, 100), st.floats(0, 100),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_all_indexes_knn_distances_agree(self, ds, px, py, k):
        from repro.spatial.geometry import point_segment_distance_sq as d2

        want = sorted(
            d2(px, py, *ds.segment(int(i)))
            for i in bf.k_nearest_neighbors(ds, px, py, k)
        )
        for index in (
            PackedRTree.build(ds, node_capacity=4),
            PMRQuadtree(ds, splitting_threshold=3),
            BuddyTree(ds, page_capacity=3),
        ):
            got = sorted(
                d2(px, py, *ds.segment(int(i)))
                for i in index.nearest_neighbors(px, py, k)
            )
            assert len(got) == min(k, ds.size)
            assert np.allclose(got, want[: len(got)], rtol=1e-9, atol=1e-12)


# ----------------------------------------------------------------------
# Random plans -> pricing invariants
# ----------------------------------------------------------------------
def _compute_step(cycles: float) -> ClientComputeStep:
    cost = ComputeCost(
        instructions=cycles, cycles=cycles, energy_j=cycles * 1e-9,
        dcache_accesses=0, dcache_misses=0,
    )
    return ClientComputeStep(cost, "synthetic")


@st.composite
def synthetic_plans(draw):
    steps = [_compute_step(draw(st.floats(0, 1e6)))]
    n_rounds = draw(st.integers(min_value=0, max_value=3))
    for _ in range(n_rounds):
        steps.append(SendStep(Payload(draw(st.integers(0, 100_000)), "tx")))
        steps.append(ServerComputeStep(draw(st.floats(0, 1e7)), "srv"))
        steps.append(RecvStep(Payload(draw(st.integers(0, 500_000)), "rx")))
        steps.append(_compute_step(draw(st.floats(0, 1e5))))
    if draw(st.booleans()):
        steps.append(WaitStep(draw(st.floats(0, 2.0)), draw(st.booleans())))
    return QueryPlan(
        query=None,
        config=SchemeConfig(Scheme.FULLY_CLIENT),
        steps=steps,
        answer_ids=np.empty(0, dtype=np.int64),
        n_candidates=0,
        n_results=0,
    )


@pytest.fixture(scope="module")
def tiny_env():
    rng = np.random.default_rng(5)
    cx, cy = rng.uniform(0, 100, 20), rng.uniform(0, 100, 20)
    ds = SegmentDataset("tiny", cx, cy, cx + 1, cy + 1)
    return Environment.create(ds, tree=PackedRTree.build(ds, node_capacity=4))


class TestPricingProperties:
    @given(synthetic_plans(), st.floats(min_value=1.1, max_value=20.0))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_energy_and_cycles_monotone_in_bandwidth(
        self, tiny_env, plan, factor
    ):
        slow = price_plan(plan, tiny_env, Policy().with_bandwidth(2 * MBPS))
        fast = price_plan(
            plan, tiny_env, Policy().with_bandwidth(2 * MBPS * factor)
        )
        assert fast.cycles.total() <= slow.cycles.total() + 1e-6
        assert fast.energy.total() <= slow.energy.total() + 1e-12

    @given(synthetic_plans(), st.floats(min_value=101.0, max_value=5000.0))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_energy_monotone_in_distance(self, tiny_env, plan, distance):
        near = price_plan(plan, tiny_env, Policy().with_distance(100.0))
        far = price_plan(plan, tiny_env, Policy().with_distance(distance))
        assert far.energy.total() >= near.energy.total() - 1e-12
        assert far.cycles.total() == pytest.approx(near.cycles.total())

    @given(synthetic_plans())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_busy_wait_dominates_blocking(self, tiny_env, plan):
        block = price_plan(plan, tiny_env, Policy(busy_wait=False))
        spin = price_plan(plan, tiny_env, Policy(busy_wait=True))
        assert spin.energy.total() >= block.energy.total() - 1e-15

    @given(st.lists(synthetic_plans(), min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_pipeline_never_slower_and_bounded_below(self, tiny_env, plans):
        r = price_pipelined_workload(plans, tiny_env, Policy())
        assert r.wall_seconds <= r.sequential_wall_seconds + 1e-9
        clock = tiny_env.client_cpu.clock_hz
        cpu_s = r.cycles.processor / clock
        net_s = (r.cycles.nic_tx + r.cycles.nic_rx) / clock
        assert r.wall_seconds >= max(cpu_s, net_s) - 1e-9


# ----------------------------------------------------------------------
# Random extraction budgets
# ----------------------------------------------------------------------
class TestExtractionProperties:
    @given(
        st.integers(min_value=0, max_value=400_000),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_budget_always_respected(self, pa_small_tree, budget, seed):
        tree = pa_small_tree
        rng = np.random.default_rng(seed)
        i = int(rng.integers(0, tree.dataset.size))
        mbr = tree.dataset.segment_mbr(i)
        rect = mbr.expand(tree.dataset.extent.width * 0.01)
        candidates = tree.range_filter(rect)
        ext = extract_range(tree, candidates, *rect.center(), budget)
        if ext.fits:
            assert ext.total_bytes <= budget or budget <= 0
            shipped = set(ext.global_ids.tolist())
            assert set(candidates.tolist()) <= shipped
            assert ext.n_entries == max_entries_within_budget(tree, budget)
        else:
            assert ext.n_entries == 0
