"""Cross-module conservation laws.

The executor composes the CPU models, protocol model and NIC state machine;
these tests assert that nothing leaks at the seams: time, bytes and energy
are conserved end-to-end for every scheme and policy combination.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import MBPS
from repro.core.executor import (
    ClientComputeStep,
    Policy,
    RecvStep,
    SendStep,
    ServerComputeStep,
    plan_query,
    price_plan,
)
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS
from repro.data.workloads import range_queries
from repro.sim.protocol import packetize


@pytest.fixture(scope="module")
def sample_plans(pa_small, pa_small_tree):
    """One plan per scheme over the same query (module-scoped: read-only)."""
    from repro.core.executor import Environment

    env = Environment.create(pa_small, tree=pa_small_tree)
    q = range_queries(pa_small, 1, seed=71)[0]
    plans = []
    for cfg in ADEQUATE_MEMORY_CONFIGS:
        env.reset_caches()
        plans.append((cfg, plan_query(q, cfg, env), env))
    return plans


class TestTimeConservation:
    def test_wall_time_decomposition(self, sample_plans):
        """wall = compute + tx + rx + wait, up to NIC sleep-exit latencies."""
        for cfg, plan, env in sample_plans:
            for bw in (2, 11):
                r = price_plan(plan, env, Policy().with_bandwidth(bw * MBPS))
                clock = env.client_cpu.clock_hz
                bucket_seconds = r.cycles.total() / clock
                n_exits_max = 2 * len(plan.steps)
                assert r.wall_seconds >= bucket_seconds - 1e-12, cfg.label
                assert r.wall_seconds <= bucket_seconds + n_exits_max * 470e-6, (
                    cfg.label
                )


class TestByteConservation:
    def test_message_log_matches_plan_payloads(self, sample_plans):
        for cfg, plan, env in sample_plans:
            r = price_plan(plan, env, Policy())
            plan_payloads = [
                ("tx", s.payload.nbytes) if isinstance(s, SendStep)
                else ("rx", s.payload.nbytes)
                for s in plan.steps
                if isinstance(s, (SendStep, RecvStep))
            ]
            assert list(r.messages) == plan_payloads, cfg.label

    def test_transfer_time_matches_packetization(self, sample_plans):
        """NIC tx/rx seconds equal the packetized wire bits over bandwidth
        (plus at most one sleep-exit latency on the tx side)."""
        for cfg, plan, env in sample_plans:
            bw = 4 * MBPS
            r = price_plan(plan, env, Policy().with_bandwidth(bw))
            tx_bits = sum(
                packetize(s.payload.nbytes, Policy().network).wire_bits
                for s in plan.steps
                if isinstance(s, SendStep)
            )
            rx_bits = sum(
                packetize(s.payload.nbytes, Policy().network).wire_bits
                for s in plan.steps
                if isinstance(s, RecvStep)
            )
            clock = env.client_cpu.clock_hz
            got_tx_s = r.cycles.nic_tx / clock
            got_rx_s = r.cycles.nic_rx / clock
            n_sends = sum(1 for s in plan.steps if isinstance(s, SendStep))
            assert got_tx_s == pytest.approx(
                tx_bits / bw, abs=n_sends * 470e-6 + 1e-12
            ), cfg.label
            assert got_rx_s == pytest.approx(rx_bits / bw, abs=1e-12), cfg.label


class TestEnergyConservation:
    def test_total_energy_decomposes_into_buckets(self, sample_plans):
        for cfg, plan, env in sample_plans:
            r = price_plan(plan, env, Policy())
            assert r.energy.total() == pytest.approx(
                r.energy.processor
                + r.energy.nic_tx
                + r.energy.nic_rx
                + r.energy.nic_idle
                + r.energy.nic_sleep
            )

    def test_processor_energy_at_least_compute_events(self, sample_plans):
        """Blocked-CPU energy only adds to the per-event compute energy."""
        for cfg, plan, env in sample_plans:
            r = price_plan(plan, env, Policy())
            compute_e = sum(
                s.cost.energy_j
                for s in plan.steps
                if isinstance(s, ClientComputeStep)
            )
            assert r.energy.processor >= compute_e - 1e-15, cfg.label

    @given(st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=10, deadline=None)
    def test_energy_scales_inverse_with_bandwidth_for_nic(
        self, sample_plans, factor
    ):
        """NIC tx/rx energy at bandwidth B*f equals (energy at B)/f, up to
        the bandwidth-independent sleep-exit charge."""
        cfg, plan, env = sample_plans[1]  # fully-at-server, data absent
        base_bw = 2 * MBPS
        a = price_plan(plan, env, Policy().with_bandwidth(base_bw))
        b = price_plan(plan, env, Policy().with_bandwidth(base_bw * factor))
        assert b.energy.nic_rx * factor == pytest.approx(a.energy.nic_rx, rel=1e-9)
        assert b.energy.nic_tx * factor == pytest.approx(a.energy.nic_tx, rel=1e-9)


class TestServerWait:
    def test_wait_cycles_scale_with_clock_ratio(self, sample_plans):
        """C_wait = C_w2 * MhzC / MhzS exactly."""
        for cfg, plan, env in sample_plans:
            server_cycles = sum(
                s.cycles for s in plan.steps if isinstance(s, ServerComputeStep)
            )
            r = price_plan(plan, env, Policy())
            expected = (
                server_cycles
                / env.server_cpu.clock_hz
                * env.client_cpu.clock_hz
            )
            assert r.cycles.wait == pytest.approx(expected, rel=1e-12), cfg.label
