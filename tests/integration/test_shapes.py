"""The paper's qualitative results, asserted at full dataset scale.

Each test pins one of the evaluation section's claims (DESIGN.md section 4
lists them).  These run on the full PA/NYC datasets because the crossover
bandwidths only emerge at published cardinality; everything here is still
fast (plans are built once and re-priced per bandwidth).
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.constants import BANDWIDTHS_MBPS, DEFAULT_CLIENT, MBPS, MHZ
from repro.core.executor import Environment, Policy
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data.workloads import (
    nn_queries,
    point_queries,
    proximity_sequence,
    range_queries,
)
from repro.sim.cpu import ClientCPU

FC = SchemeConfig(Scheme.FULLY_CLIENT)
FS_ABSENT = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False)
FS_PRESENT = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True)
FC_RS = SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=True)
FC_RS_ABSENT = SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=False)
FS_RC = SchemeConfig(Scheme.FILTER_SERVER_REFINE_CLIENT, data_at_client=True)


def _by_bw(cells):
    return {c.bandwidth_mbps: c for c in cells}


@pytest.fixture(scope="module")
def range_sweep_pa(pa_full_env, pa_full):
    qs = range_queries(pa_full, 100)
    return Session(pa_full_env).run(
        qs, schemes=ADEQUATE_MEMORY_CONFIGS
    ).cells()


class TestFig4PointQueries:
    """Point queries: partitioning never pays (paper section 6.1.1)."""

    @pytest.fixture(scope="class")
    def sweep(self, pa_full_env, pa_full):
        qs = point_queries(pa_full, 100)
        configs = [FC, FS_ABSENT, FC_RS_ABSENT, FS_RC]
        return Session(pa_full_env).run(qs, schemes=configs).cells()

    def test_fully_client_wins_energy_everywhere(self, sweep):
        fc = sweep[FC.label][0].energy_j
        for cfg in (FS_ABSENT, FC_RS_ABSENT, FS_RC):
            for cell in sweep[cfg.label]:
                assert cell.energy_j > fc, f"{cfg.label} @ {cell.bandwidth_mbps}"

    def test_fully_client_wins_cycles_everywhere(self, sweep):
        fc = sweep[FC.label][0].cycles
        for cfg in (FS_ABSENT, FC_RS_ABSENT, FS_RC):
            for cell in sweep[cfg.label]:
                assert cell.cycles > fc, f"{cfg.label} @ {cell.bandwidth_mbps}"

    def test_schemes_roughly_equal(self, sweep):
        """'we do not find any significant differences between them'."""
        for bw_idx in range(len(BANDWIDTHS_MBPS)):
            es = [
                sweep[cfg.label][bw_idx].energy_j
                for cfg in (FS_ABSENT, FC_RS_ABSENT, FS_RC)
            ]
            assert max(es) < 2.0 * min(es)

    def test_tx_dominates_energy(self, sweep):
        for cfg in (FS_ABSENT, FS_RC):
            for cell in sweep[cfg.label]:
                e = cell.result.energy
                assert e.nic_tx > 0.5 * e.total(), f"{cfg.label}"

    def test_monotone_decreasing_in_bandwidth(self, sweep):
        for cfg in (FS_ABSENT, FC_RS_ABSENT, FS_RC):
            es = [c.energy_j for c in sweep[cfg.label]]
            cs = [c.cycles for c in sweep[cfg.label]]
            assert es == sorted(es, reverse=True)
            assert cs == sorted(cs, reverse=True)


class TestFig5RangeQueriesPA:
    """Range queries on PA: partitioning pays, with metric-dependent winners."""

    def test_fs_present_wins_cycles_at_2mbps(self, range_sweep_pa):
        fc = _by_bw(range_sweep_pa[FC.label])
        fs = _by_bw(range_sweep_pa[FS_PRESENT.label])
        assert fs[2.0].cycles < fc[2.0].cycles

    def test_fs_present_energy_crossover_above_6mbps(self, range_sweep_pa):
        """'it takes over 6 Mbps before it becomes more energy-efficient'."""
        fc = _by_bw(range_sweep_pa[FC.label])
        fs = _by_bw(range_sweep_pa[FS_PRESENT.label])
        assert fs[2.0].energy_j > fc[2.0].energy_j
        assert fs[6.0].energy_j > fc[6.0].energy_j
        assert fs[11.0].energy_j < fc[11.0].energy_j

    def test_filter_client_cycles_crossover_near_4mbps(self, range_sweep_pa):
        """(b) 'beats the cycles of fully at client beyond 4 Mbps'."""
        fc = _by_bw(range_sweep_pa[FC.label])
        b = _by_bw(range_sweep_pa[FC_RS.label])
        assert b[2.0].cycles > fc[2.0].cycles
        assert b[6.0].cycles < fc[6.0].cycles

    def test_filter_client_energy_never_beats_fully_client(self, range_sweep_pa):
        """(b)'s candidate transmit is ruinous on energy at these bandwidths."""
        fc = _by_bw(range_sweep_pa[FC.label])
        b = _by_bw(range_sweep_pa[FC_RS.label])
        for bw in BANDWIDTHS_MBPS:
            assert b[bw].energy_j > fc[bw].energy_j

    def test_energy_and_performance_pick_different_hybrids(self, range_sweep_pa):
        """(b) wins cycles, (c) wins energy — at every bandwidth >= 4 Mbps."""
        b = _by_bw(range_sweep_pa[FC_RS.label])
        c = _by_bw(range_sweep_pa[FS_RC.label])
        for bw in (4.0, 6.0, 8.0, 11.0):
            assert b[bw].cycles < c[bw].cycles, f"@{bw}"
            assert c[bw].energy_j < b[bw].energy_j, f"@{bw}"

    def test_data_present_saves_more_cycles_than_energy(self, range_sweep_pa):
        """Keeping data at the client cuts only the receive leg; Tx power
        dominance means the relative cycle saving exceeds the energy one."""
        absent = _by_bw(range_sweep_pa[FS_ABSENT.label])
        present = _by_bw(range_sweep_pa[FS_PRESENT.label])
        for bw in BANDWIDTHS_MBPS:
            cycle_gain = absent[bw].cycles / present[bw].cycles
            energy_gain = absent[bw].energy_j / present[bw].energy_j
            assert cycle_gain > energy_gain > 1.0, f"@{bw}"

    def test_fs_absent_magnitudes_near_paper(self, range_sweep_pa):
        """Fig 5(a) left bars at 2 Mbps: ~2.5 J and ~1.3e9 cycles."""
        cell = _by_bw(range_sweep_pa[FS_ABSENT.label])[2.0]
        assert 1.5 < cell.energy_j < 3.5
        assert 0.9e9 < cell.cycles < 2.0e9

    def test_filter_client_tx_energy_near_paper(self, range_sweep_pa):
        """Fig 5(b) at 2 Mbps is ~9 J, almost all transmit."""
        cell = _by_bw(range_sweep_pa[FC_RS_ABSENT.label])[2.0]
        assert 6.0 < cell.energy_j < 13.0
        assert cell.result.energy.nic_tx > 0.7 * cell.energy_j


class TestFig6NNQueries:
    """NN queries behave like point queries (tiny selectivity)."""

    @pytest.fixture(scope="class")
    def sweep(self, pa_full_env, pa_full):
        qs = nn_queries(pa_full, 100)
        return Session(pa_full_env).run(qs, schemes=[FC, FS_PRESENT]).cells()

    def test_fully_client_wins_both_metrics(self, sweep):
        fc = sweep[FC.label][0]
        for cell in sweep[FS_PRESENT.label]:
            assert cell.energy_j > fc.energy_j
            assert cell.cycles > fc.cycles


class TestFig7NYCSensitivity:
    """NYC: smaller filter selectivity -> smaller hybrid message volumes."""

    @pytest.fixture(scope="class")
    def sweeps(self, pa_full, nyc_full, range_sweep_pa):
        nyc_env = Environment.create(nyc_full)
        qs = range_queries(nyc_full, 100)
        nyc = Session(nyc_env).run(qs, schemes=ADEQUATE_MEMORY_CONFIGS).cells()
        return range_sweep_pa, nyc

    def test_nyc_selectivity_below_pa(self, sweeps):
        pa, nyc = sweeps
        pa_cand = pa[FC.label][0].result.n_candidates
        nyc_cand = nyc[FC.label][0].result.n_candidates
        assert nyc_cand < pa_cand
        # ...but comparable in order of magnitude (paper's volumes are ~0.7x).
        assert nyc_cand > 0.25 * pa_cand

    def test_nyc_filter_client_tx_lower(self, sweeps):
        """'the transmission energy or cycles in Filtering-at-Client for
        NYC is lower than those for PA'."""
        pa, nyc = sweeps
        for bw_idx in range(len(BANDWIDTHS_MBPS)):
            assert (
                nyc[FC_RS.label][bw_idx].result.energy.nic_tx
                < pa[FC_RS.label][bw_idx].result.energy.nic_tx
            )
            assert (
                nyc[FC_RS.label][bw_idx].result.cycles.nic_tx
                < pa[FC_RS.label][bw_idx].result.cycles.nic_tx
            )

    def test_nyc_filter_server_rx_lower(self, sweeps):
        """'the receive energy or cycles in Filtering-at-Server is lower
        for NYC'."""
        pa, nyc = sweeps
        for bw_idx in range(len(BANDWIDTHS_MBPS)):
            assert (
                nyc[FS_RC.label][bw_idx].result.energy.nic_rx
                < pa[FS_RC.label][bw_idx].result.energy.nic_rx
            )

    def test_same_orderings_hold_on_nyc(self, sweeps):
        """'the trends are similar': the headline Fig 5 orderings."""
        _, nyc = sweeps
        fc = _by_bw(nyc[FC.label])
        fs = _by_bw(nyc[FS_PRESENT.label])
        b = _by_bw(nyc[FC_RS.label])
        c = _by_bw(nyc[FS_RC.label])
        assert fs[2.0].cycles < fc[2.0].cycles
        assert fs[2.0].energy_j > fc[2.0].energy_j
        for bw in (6.0, 8.0, 11.0):
            assert b[bw].cycles < c[bw].cycles
            assert c[bw].energy_j < b[bw].energy_j


class TestFig8ClientSpeed:
    """A faster client helps client-heavy schemes on time, not energy."""

    @pytest.fixture(scope="class")
    def envs(self, pa_full):
        slow = Environment.create(
            pa_full, client_cpu=ClientCPU(config=DEFAULT_CLIENT.with_clock(125 * MHZ))
        )
        fast = Environment.create(
            pa_full, client_cpu=ClientCPU(config=DEFAULT_CLIENT.with_clock(500 * MHZ))
        )
        return slow, fast

    def test_fully_client_time_shrinks_with_clock(self, envs, pa_full):
        slow, fast = envs
        qs = range_queries(pa_full, 30)
        slow_session, fast_session = Session(slow), Session(fast)
        rs = slow_session.price(slow_session.plan(qs, FC), Policy())[0]
        rf = fast_session.price(fast_session.plan(qs, FC), Policy())[0]
        assert rf.wall_seconds == pytest.approx(rs.wall_seconds / 4, rel=0.01)
        # Cycle counts are clock-invariant (Fig. 8 caption).
        assert rf.cycles.processor == pytest.approx(rs.cycles.processor, rel=1e-9)

    def test_energy_nearly_unchanged_by_clock(self, envs, pa_full):
        """'saving on performance with little impact on energy'."""
        slow, fast = envs
        qs = range_queries(pa_full, 30)
        slow_session, fast_session = Session(slow), Session(fast)
        for cfg in (FC, FS_PRESENT):
            rs = slow_session.price(slow_session.plan(qs, cfg), Policy())[0]
            rf = fast_session.price(fast_session.plan(qs, cfg), Policy())[0]
            # The paper: 'the overall energy is not significantly affected'.
            # Second-order effects (blocked power scales with clock, NIC
            # sleep time shrinks with compute time) move totals by ~15-20%.
            assert rf.energy.total() == pytest.approx(rs.energy.total(), rel=0.25)


class TestFig9Distance:
    """100 m vs 1 km: Tx-heavy schemes become far more competitive."""

    def test_tx_energy_scales_with_distance_power(self, pa_full_env, pa_full):
        qs = range_queries(pa_full, 30)
        session = Session(pa_full_env)
        plans = session.plan(qs, FC_RS)
        far, near = session.price(
            plans,
            [Policy().with_distance(1000.0), Policy().with_distance(100.0)],
        )
        assert far.energy.nic_tx / near.energy.nic_tx == pytest.approx(
            3.0891 / 1.0891, rel=1e-6
        )
        assert near.cycles.total() == pytest.approx(far.cycles.total(), rel=1e-9)

    def test_filter_client_becomes_energy_competitive_at_100m(
        self, pa_full_env, pa_full
    ):
        """At 1 km, (b) never beats fully-client energy; at 100 m it gets
        within striking distance at 11 Mbps (the paper: 'much more
        competitive')."""
        qs = range_queries(pa_full, 100)
        session = Session(pa_full_env)
        plans_b = session.plan(qs, FC_RS)
        plans_fc = session.plan(qs, FC)
        pol = Policy().with_bandwidth(11 * MBPS)
        b_far, b_near = session.price(
            plans_b, [pol.with_distance(1000.0), pol.with_distance(100.0)]
        )
        fc = session.price(plans_fc, pol)[0]
        ratio_far = b_far.energy.total() / fc.energy.total()
        ratio_near = b_near.energy.total() / fc.energy.total()
        assert ratio_near < ratio_far / 2


class TestFig10InsufficientMemory:
    """Cached client vs fully-at-server under a proximity workload."""

    @pytest.fixture(scope="class")
    def curves(self, pa_full):
        env = Environment.create(pa_full)
        api = Session(env)
        policy = Policy().with_bandwidth(11 * MBPS)
        out = {}
        for budget in (1 << 20, 2 << 20):
            rows = []
            for y in (0, 40, 80, 120, 160, 200):
                qs = proximity_sequence(pa_full, y=y, n_groups=1, seed=23)
                plans, session = api.plan_cached(qs, budget)
                client = api.price(plans, policy)[0]
                server_plans = api.plan(qs, FS_ABSENT)
                server = api.price(server_plans, policy)[0]
                rows.append((y, client, server, session))
            out[budget] = rows
        return out

    def _energy_crossover(self, rows):
        for y, client, server, _ in rows:
            if client.energy.total() < server.energy.total():
                return y
        return None

    def test_client_becomes_energy_efficient_beyond_threshold(self, curves):
        for budget, rows in curves.items():
            y0, client0, server0, _ = rows[0]
            assert client0.energy.total() > server0.energy.total()
            assert self._energy_crossover(rows) is not None, f"budget {budget}"

    def test_threshold_grows_with_buffer_size(self, curves):
        """Paper: 115 local queries at 1 MB -> 200 at 2 MB."""
        x1 = self._energy_crossover(curves[1 << 20])
        x2 = self._energy_crossover(curves[2 << 20])
        assert x1 is not None and x2 is not None
        assert x2 > x1

    def test_server_wins_cycles_across_the_spectrum(self, curves):
        """'fully at server is a clear winner across the spectrum for
        performance'."""
        for budget, rows in curves.items():
            for y, client, server, _ in rows:
                assert server.cycles.total() < client.cycles.total(), (
                    f"budget {budget}, y={y}"
                )

    def test_locality_actually_hits(self, curves):
        for budget, rows in curves.items():
            _, _, _, session = rows[-1]
            assert session.local_hits >= 190  # y=200 group mostly local
