"""Differential suite: batched multi-query planner vs the scalar walk.

The batched planner's contract is *bit-for-bit* reproduction of the scalar
path: identical candidate sets, answer ids, step costs (which embed the
OpCounter tallies priced through the replayed cache verdicts) and identical
simulated cache state left behind in the environment.  Every test here
plans the same workload both ways and asserts
:func:`repro.core.batchplan.plans_equal` plus cache-state equality.

Covers the fig4 (point), fig5 (range) and fig6 (NN) workload shapes, all
query kinds mixed in one workload, empty-result and degenerate windows, and
hypothesis-generated windows over a random dataset.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.figures import POINT_NN_CONFIGS
from repro.core.batchplan import plan_workload_batched, plans_equal
from repro.core.executor import Environment, plan_query
from repro.core.queries import NNQuery, PointQuery, RangeQuery
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data import tiger
from repro.data.model import SegmentDataset
from repro.data.workloads import nn_queries, point_queries, range_queries
from repro.spatial.mbr import MBR

NN_CONFIGS = (
    SchemeConfig(Scheme.FULLY_CLIENT),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
)

#: Configurations valid for every query kind (used by the mixed workload).
UNIVERSAL_CONFIGS = (
    SchemeConfig(Scheme.FULLY_CLIENT),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
)


@pytest.fixture(scope="module")
def env() -> Environment:
    return Environment.create(tiger.pa_dataset(scale=0.05))


def _cache_state(env: Environment):
    """Everything the planner mutates in the environment's simulators."""
    client = env.client_cpu.dcache
    server = env.server_cpu.l1
    return (
        client.hits, client.misses, [list(s) for s in client._sets],
        server.hits, server.misses, [list(s) for s in server._sets],
    )


def _assert_differential(env, queries, configs):
    """Plan both ways from cold caches; demand full equality."""
    scalar_grid = []
    for cfg in configs:
        env.reset_caches()
        scalar_grid.append([plan_query(q, cfg, env) for q in queries])
    scalar_state = _cache_state(env)

    batched_grid = plan_workload_batched(env, queries, configs)
    batched_state = _cache_state(env)

    assert len(batched_grid) == len(scalar_grid)
    for b, s in zip(batched_grid, scalar_grid):
        assert plans_equal(b, s)
    assert batched_state == scalar_state


# ----------------------------------------------------------------------
# The three paper workload shapes
# ----------------------------------------------------------------------
def test_fig4_point_workload(env):
    _assert_differential(
        env, point_queries(env.dataset, 30, seed=4), POINT_NN_CONFIGS
    )


def test_fig5_range_workload(env):
    _assert_differential(
        env, range_queries(env.dataset, 30, seed=5), ADEQUATE_MEMORY_CONFIGS
    )


def test_fig6_nn_workload(env):
    _assert_differential(
        env, nn_queries(env.dataset, 30, seed=6), NN_CONFIGS
    )


def test_mixed_query_kinds_one_workload(env):
    ds = env.dataset
    mixed = (
        point_queries(ds, 5, seed=21)
        + range_queries(ds, 5, seed=22)
        + nn_queries(ds, 5, seed=23)
        + point_queries(ds, 5, seed=24)
    )
    _assert_differential(env, mixed, UNIVERSAL_CONFIGS)


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------
def test_empty_result_windows(env):
    ext = env.dataset.extent
    off = ext.width + ext.height
    queries = [
        # Far outside the extent: zero candidates, zero answers.
        RangeQuery(MBR(ext.xmax + off, ext.ymax + off,
                       ext.xmax + 2 * off, ext.ymax + 2 * off)),
        # A miss point query in the same dead corner.
        PointQuery(ext.xmax + off, ext.ymax + off),
        # A normal window after the empties (cache state must still match).
        RangeQuery(MBR(ext.xmin, ext.ymin,
                       ext.xmin + ext.width / 3, ext.ymin + ext.height / 3)),
    ]
    _assert_differential(env, queries, ADEQUATE_MEMORY_CONFIGS[:2])


def test_degenerate_windows(env):
    ext = env.dataset.extent
    cx = (ext.xmin + ext.xmax) / 2.0
    cy = (ext.ymin + ext.ymax) / 2.0
    queries = [
        RangeQuery(MBR(cx, cy, cx, cy)),  # zero-area point window
        RangeQuery(MBR(ext.xmin, cy, ext.xmax, cy)),  # zero-height slab
        RangeQuery(MBR(cx, ext.ymin, cx, ext.ymax)),  # zero-width slab
        RangeQuery(MBR(ext.xmin, ext.ymin, ext.xmax, ext.ymax)),  # everything
    ]
    _assert_differential(env, queries, ADEQUATE_MEMORY_CONFIGS)


def test_single_query_workload(env):
    _assert_differential(
        env, range_queries(env.dataset, 1, seed=9), ADEQUATE_MEMORY_CONFIGS
    )


def test_warm_cache_parity(env):
    """reset_caches=False must continue from the live cache state exactly."""
    ds = env.dataset
    warmup = range_queries(ds, 5, seed=31)
    work = range_queries(ds, 10, seed=32)
    cfg = ADEQUATE_MEMORY_CONFIGS[0]

    env.reset_caches()
    for q in warmup:
        plan_query(q, cfg, env)
    scalar = [plan_query(q, cfg, env) for q in work]
    scalar_state = _cache_state(env)

    env.reset_caches()
    for q in warmup:
        plan_query(q, cfg, env)
    [batched] = plan_workload_batched(env, work, [cfg], reset_caches=False)
    batched_state = _cache_state(env)

    assert plans_equal(batched, scalar)
    assert batched_state == scalar_state


# ----------------------------------------------------------------------
# Hypothesis: random windows over a random dataset
# ----------------------------------------------------------------------
@st.composite
def small_envs(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=5, max_value=80))
    rng = np.random.default_rng(seed)
    cx = rng.uniform(0, 1000, n)
    cy = rng.uniform(0, 1000, n)
    dx = rng.normal(0, 20.0, n)
    dy = rng.normal(0, 20.0, n)
    ds = SegmentDataset("hyp", cx - dx, cy - dy, cx + dx, cy + dy)
    return Environment.create(ds)


@st.composite
def window_workloads(draw):
    k = draw(st.integers(min_value=1, max_value=4))
    queries = []
    for _ in range(k):
        x1, x2 = sorted((draw(st.floats(-100, 1100)),
                         draw(st.floats(-100, 1100))))
        y1, y2 = sorted((draw(st.floats(-100, 1100)),
                         draw(st.floats(-100, 1100))))
        queries.append(RangeQuery(MBR(x1, y1, x2, y2)))
    return queries


@given(small_envs(), window_workloads())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_hypothesis_random_windows(hyp_env, queries):
    _assert_differential(hyp_env, queries, ADEQUATE_MEMORY_CONFIGS)
