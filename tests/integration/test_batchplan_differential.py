"""Differential suite: batched multi-query planner vs the scalar walk.

The batched planner's contract is *bit-for-bit* reproduction of the scalar
path: identical candidate sets, answer ids, step costs (which embed the
OpCounter tallies priced through the replayed cache verdicts) and identical
simulated cache state left behind in the environment.  Every test here
plans the same workload both ways and asserts
:func:`repro.core.batchplan.plans_equal` plus cache-state equality.

Covers the fig4 (point), fig5 (range) and fig6 (NN) workload shapes, all
query kinds mixed in one workload, empty-result and degenerate windows, and
hypothesis-generated windows over a random dataset.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.figures import POINT_NN_CONFIGS
from repro.core.batchplan import plan_workload_batched, plans_equal
from repro.core.colplan import plan_and_price_columnar
from repro.core.executor import Environment, Policy, plan_query
from repro.core.gridrun import price_grid
from repro.core.queries import KNNQuery, NNQuery, PointQuery, RangeQuery
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data import tiger
from repro.data.model import SegmentDataset
from repro.data.workloads import (
    knn_queries,
    nn_queries,
    point_queries,
    range_queries,
)
from repro.spatial.mbr import MBR
from tests.integration.oracles import assert_grids_identical

NN_CONFIGS = (
    SchemeConfig(Scheme.FULLY_CLIENT),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
)

#: Configurations valid for every query kind (used by the mixed workload).
UNIVERSAL_CONFIGS = (
    SchemeConfig(Scheme.FULLY_CLIENT),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
)


@pytest.fixture(scope="module")
def env() -> Environment:
    return Environment.create(tiger.pa_dataset(scale=0.05))


def _cache_state(env: Environment):
    """Everything the planner mutates in the environment's simulators."""
    client = env.client_cpu.dcache
    server = env.server_cpu.l1
    return (
        client.hits, client.misses, [list(s) for s in client._sets],
        server.hits, server.misses, [list(s) for s in server._sets],
    )


def _assert_differential(env, queries, configs):
    """Plan both ways from cold caches; demand full equality.

    Also runs the fused columnar engine over the same workload and pins
    its grids bit-for-bit to pricing the batched plans — every workload
    shape this suite covers (mixed kinds, degenerate windows, hypothesis
    randoms) exercises all three paths.
    """
    scalar_grid = []
    for cfg in configs:
        env.reset_caches()
        scalar_grid.append([plan_query(q, cfg, env) for q in queries])
    scalar_state = _cache_state(env)

    batched_grid = plan_workload_batched(env, queries, configs)
    batched_state = _cache_state(env)

    assert len(batched_grid) == len(scalar_grid)
    for b, s in zip(batched_grid, scalar_grid):
        assert plans_equal(b, s)
    assert batched_state == scalar_state

    policies = [Policy()]
    object_grids = [price_grid(plans, policies, env) for plans in batched_grid]
    columnar_grids = plan_and_price_columnar(env, queries, configs, policies)
    assert _cache_state(env) == scalar_state
    for col, obj in zip(columnar_grids, object_grids):
        assert_grids_identical(col, obj)


# ----------------------------------------------------------------------
# The three paper workload shapes
# ----------------------------------------------------------------------
def test_fig4_point_workload(env):
    _assert_differential(
        env, point_queries(env.dataset, 30, seed=4), POINT_NN_CONFIGS
    )


def test_fig5_range_workload(env):
    _assert_differential(
        env, range_queries(env.dataset, 30, seed=5), ADEQUATE_MEMORY_CONFIGS
    )


def test_fig6_nn_workload(env):
    _assert_differential(
        env, nn_queries(env.dataset, 30, seed=6), NN_CONFIGS
    )


def test_knn_workload(env):
    _assert_differential(
        env, knn_queries(env.dataset, 30, seed=7), NN_CONFIGS
    )


def test_mixed_query_kinds_one_workload(env):
    ds = env.dataset
    mixed = (
        point_queries(ds, 5, seed=21)
        + range_queries(ds, 5, seed=22)
        + nn_queries(ds, 5, seed=23)
        + knn_queries(ds, 5, seed=25)
        + point_queries(ds, 5, seed=24)
    )
    _assert_differential(env, mixed, UNIVERSAL_CONFIGS)


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------
def test_empty_result_windows(env):
    ext = env.dataset.extent
    off = ext.width + ext.height
    queries = [
        # Far outside the extent: zero candidates, zero answers.
        RangeQuery(MBR(ext.xmax + off, ext.ymax + off,
                       ext.xmax + 2 * off, ext.ymax + 2 * off)),
        # A miss point query in the same dead corner.
        PointQuery(ext.xmax + off, ext.ymax + off),
        # A normal window after the empties (cache state must still match).
        RangeQuery(MBR(ext.xmin, ext.ymin,
                       ext.xmin + ext.width / 3, ext.ymin + ext.height / 3)),
    ]
    _assert_differential(env, queries, ADEQUATE_MEMORY_CONFIGS[:2])


def test_degenerate_windows(env):
    ext = env.dataset.extent
    cx = (ext.xmin + ext.xmax) / 2.0
    cy = (ext.ymin + ext.ymax) / 2.0
    queries = [
        RangeQuery(MBR(cx, cy, cx, cy)),  # zero-area point window
        RangeQuery(MBR(ext.xmin, cy, ext.xmax, cy)),  # zero-height slab
        RangeQuery(MBR(cx, ext.ymin, cx, ext.ymax)),  # zero-width slab
        RangeQuery(MBR(ext.xmin, ext.ymin, ext.xmax, ext.ymax)),  # everything
    ]
    _assert_differential(env, queries, ADEQUATE_MEMORY_CONFIGS)


def test_single_query_workload(env):
    _assert_differential(
        env, range_queries(env.dataset, 1, seed=9), ADEQUATE_MEMORY_CONFIGS
    )


def test_knn_k_exceeds_dataset():
    """k past the dataset size: every plan returns the whole dataset."""
    rng = np.random.default_rng(41)
    cx = rng.uniform(0, 100, 12)
    cy = rng.uniform(0, 100, 12)
    ds = SegmentDataset("tiny", cx, cy, cx + 3.0, cy + 3.0)
    small = Environment.create(ds)
    queries = [
        KNNQuery(10.0, 10.0, k=12),
        KNNQuery(50.0, 50.0, k=25),
        KNNQuery(90.0, 5.0, k=100),
    ]
    _assert_differential(small, queries, NN_CONFIGS)


def test_nn_distance_ties_colocated_segments():
    """Duplicated segments tie exactly in distance; tie-break replay and
    the answer order (distance, then id) must both survive batching."""
    rng = np.random.default_rng(42)
    cx = rng.uniform(0, 200, 40)
    cy = rng.uniform(0, 200, 40)
    x1 = np.concatenate([cx, cx[:15]])
    y1 = np.concatenate([cy, cy[:15]])
    x2 = np.concatenate([cx + 5.0, cx[:15] + 5.0])
    y2 = np.concatenate([cy + 5.0, cy[:15] + 5.0])
    dup = Environment.create(SegmentDataset("dup", x1, y1, x2, y2))
    queries = [
        KNNQuery(float(x), float(y), k=int(k))
        for x, y, k in zip(
            rng.uniform(0, 200, 12), rng.uniform(0, 200, 12),
            rng.integers(1, 20, 12),
        )
    ]
    _assert_differential(dup, queries, NN_CONFIGS)


def test_nn_query_points_on_endpoints(env):
    """Query points lying exactly on segment endpoints (zero distances)."""
    ds = env.dataset
    idx = [0, 7, 19, 101]
    queries = [NNQuery(float(ds.x1[i]), float(ds.y1[i])) for i in idx]
    queries += [KNNQuery(float(ds.x2[i]), float(ds.y2[i]), k=3) for i in idx]
    _assert_differential(env, queries, NN_CONFIGS)


def test_warm_cache_knn_parity(env):
    """k-NN planned against a live (unreset) client cache must continue
    from that exact state — the NN trace replays through the warm sets."""
    ds = env.dataset
    warmup = nn_queries(ds, 5, seed=33)
    work = knn_queries(ds, 10, seed=34)
    cfg = NN_CONFIGS[0]

    env.reset_caches()
    for q in warmup:
        plan_query(q, cfg, env)
    scalar = [plan_query(q, cfg, env) for q in work]
    scalar_state = _cache_state(env)

    env.reset_caches()
    for q in warmup:
        plan_query(q, cfg, env)
    [batched] = plan_workload_batched(env, work, [cfg], reset_caches=False)
    batched_state = _cache_state(env)

    assert plans_equal(batched, scalar)
    assert batched_state == scalar_state


def test_warm_cache_parity(env):
    """reset_caches=False must continue from the live cache state exactly."""
    ds = env.dataset
    warmup = range_queries(ds, 5, seed=31)
    work = range_queries(ds, 10, seed=32)
    cfg = ADEQUATE_MEMORY_CONFIGS[0]

    env.reset_caches()
    for q in warmup:
        plan_query(q, cfg, env)
    scalar = [plan_query(q, cfg, env) for q in work]
    scalar_state = _cache_state(env)

    env.reset_caches()
    for q in warmup:
        plan_query(q, cfg, env)
    [batched] = plan_workload_batched(env, work, [cfg], reset_caches=False)
    batched_state = _cache_state(env)

    assert plans_equal(batched, scalar)
    assert batched_state == scalar_state


# ----------------------------------------------------------------------
# Hypothesis: random windows over a random dataset
# ----------------------------------------------------------------------
@st.composite
def small_envs(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=5, max_value=80))
    rng = np.random.default_rng(seed)
    cx = rng.uniform(0, 1000, n)
    cy = rng.uniform(0, 1000, n)
    dx = rng.normal(0, 20.0, n)
    dy = rng.normal(0, 20.0, n)
    ds = SegmentDataset("hyp", cx - dx, cy - dy, cx + dx, cy + dy)
    return Environment.create(ds)


@st.composite
def window_workloads(draw):
    k = draw(st.integers(min_value=1, max_value=4))
    queries = []
    for _ in range(k):
        x1, x2 = sorted((draw(st.floats(-100, 1100)),
                         draw(st.floats(-100, 1100))))
        y1, y2 = sorted((draw(st.floats(-100, 1100)),
                         draw(st.floats(-100, 1100))))
        queries.append(RangeQuery(MBR(x1, y1, x2, y2)))
    return queries


@st.composite
def nn_workloads(draw):
    """Mixed NN/k-NN batches, k occasionally past any dataset size."""
    k = draw(st.integers(min_value=1, max_value=6))
    queries = []
    for _ in range(k):
        x = draw(st.floats(-100, 1100))
        y = draw(st.floats(-100, 1100))
        if draw(st.booleans()):
            queries.append(NNQuery(x, y))
        else:
            queries.append(KNNQuery(x, y, k=draw(st.integers(1, 100))))
    return queries


@given(small_envs(), window_workloads())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_hypothesis_random_windows(hyp_env, queries):
    _assert_differential(hyp_env, queries, ADEQUATE_MEMORY_CONFIGS)


@given(small_envs(), nn_workloads())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_hypothesis_random_nn_batches(hyp_env, queries):
    _assert_differential(hyp_env, queries, NN_CONFIGS)
