"""QueryService: construction validation, admission edges, degeneration."""

from __future__ import annotations

import math

import pytest

from repro.api import Engine
from repro.constants import MBPS
from repro.core.executor import Policy
from repro.core.gridrun import PlanCache, RunLedger
from repro.core.queries import NNQuery
from repro.core.schemes import Scheme, SchemeConfig
from repro.data.workloads import ClientProfile, QueryRequest, range_queries
from repro.serve import SERVE_PLANNERS, VERDICTS, QueryService

FS = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True)
FCRS = SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=True)

POLICY = Policy().with_bandwidth(2 * MBPS)


def _profile(cid=0, scheme=FS, **kw):
    return ClientProfile(client_id=cid, policy=POLICY, scheme=scheme, **kw)


def _requests(qs, cid=0, spacing_s=1.0, t0=0.0):
    return [
        QueryRequest(client_id=cid, query=q, arrival_s=t0 + k * spacing_s)
        for k, q in enumerate(qs)
    ]


class TestConstruction:
    def test_from_dataset_and_environment(self, pa_small, env_small):
        assert QueryService(pa_small).engine.dataset is pa_small
        assert QueryService(env_small).engine.env is env_small

    def test_from_shared_engine(self, env_small):
        core = Engine(env_small)
        service = QueryService(core)
        assert service.engine is core

    def test_shared_engine_rejects_cache_and_ledger(self, env_small):
        core = Engine(env_small)
        with pytest.raises(TypeError, match="configured on the shared"):
            QueryService(core, plan_cache=PlanCache())
        with pytest.raises(TypeError, match="configured on the shared"):
            QueryService(core, ledger=RunLedger())

    def test_bad_source_type(self):
        with pytest.raises(TypeError, match="SegmentDataset or an Environment"):
            QueryService(42)

    @pytest.mark.parametrize("kw", [{"max_queue": 0}, {"max_batch": 0},
                                    {"batch_window_s": -0.1}])
    def test_bad_knobs(self, pa_small, kw):
        with pytest.raises(ValueError):
            QueryService(pa_small, **kw)

    def test_planner_list(self):
        assert SERVE_PLANNERS == ("batched", "columnar", "serial")
        assert set(VERDICTS) == {
            "served", "rejected-queue", "rejected-battery"
        }


class TestServeValidation:
    def test_unknown_planner(self, env_small):
        with pytest.raises(ValueError, match="unknown planner"):
            QueryService(env_small).serve([], [_profile()], planner="magic")

    def test_duplicate_client_id(self, env_small):
        with pytest.raises(ValueError, match="duplicate client_id"):
            QueryService(env_small).serve([], [_profile(0), _profile(0)])

    def test_fleet_entry_type(self, env_small):
        with pytest.raises(TypeError, match="ClientProfile"):
            QueryService(env_small).serve([], [POLICY])

    def test_unknown_client_in_stream(self, env_small, pa_small):
        reqs = _requests(range_queries(pa_small, 1, seed=3), cid=7)
        with pytest.raises(ValueError, match="unknown client_id"):
            QueryService(env_small).serve(reqs, [_profile(0)])

    def test_scheme_incompatible_query(self, env_small):
        # Filter-split schemes cannot serve NN queries; the service refuses
        # the stream up front rather than failing mid-batch.
        prof = _profile(0, scheme=FCRS)
        reqs = [
            QueryRequest(
                client_id=0, query=NNQuery(0.0, 0.0), arrival_s=0.0
            )
        ]
        with pytest.raises(ValueError):
            QueryService(env_small).serve(reqs, [prof])


class TestAdmission:
    def test_empty_stream(self, env_small):
        report = QueryService(env_small).serve([], [_profile()])
        assert len(report) == 0
        assert report.n_batches == 0
        assert report.qps == 0.0
        assert report.latency_percentile(50) == 0.0
        s = report.summary()
        assert s["n_requests"] == s["n_served"] == 0

    def test_burst_exceeding_queue_bound(self, env_small, pa_small):
        # Six simultaneous arrivals against a 2-slot queue: two admitted,
        # four bounced, nothing lost or double-counted.
        qs = range_queries(pa_small, 6, seed=5)
        reqs = _requests(qs, spacing_s=0.0)
        service = QueryService(
            env_small, max_queue=2, max_batch=1, batch_window_s=0.0
        )
        report = service.serve(reqs, [_profile()])
        assert len(report) == 6
        assert report.n_served == 2
        assert report.n_rejected_queue == 4
        assert report.n_rejected_battery == 0
        for o in report.outcomes:
            if not o.served:
                assert o.energy_j == 0.0 and o.latency_s == 0.0
                assert o.result is None

    def test_battery_exhaustion(self, env_small, pa_small):
        # A budget below one query's energy admits exactly the first query
        # (spent starts at zero) and rejects the rest on battery.
        qs = range_queries(pa_small, 4, seed=6)
        reqs = _requests(qs, spacing_s=1.0)
        fleet = [_profile(0, battery_j=1e-12)]
        report = QueryService(env_small, batch_window_s=0.0).serve(reqs, fleet)
        assert [o.verdict for o in report.outcomes] == [
            "served",
            "rejected-battery",
            "rejected-battery",
            "rejected-battery",
        ]

    def test_mains_powered_never_battery_rejected(self, env_small, pa_small):
        qs = range_queries(pa_small, 3, seed=6)
        report = QueryService(env_small).serve(
            _requests(qs), [_profile(0)]
        )
        assert report.n_served == 3
        assert math.isinf(_profile(0).battery_j)


class TestSingleClientDegeneration:
    def test_bit_for_bit_vs_session(self, env_small, pa_small):
        """A one-client fleet is exactly a Session run of that stream."""
        qs = range_queries(pa_small, 6, seed=9)
        reqs = _requests(qs, spacing_s=0.5)
        service = QueryService(
            env_small, max_batch=4, batch_window_s=0.25
        )
        report = service.serve(reqs, [_profile(0)], planner="batched")
        assert report.n_served == len(qs)
        assert report.n_batches > 1  # the stream really did split into batches

        core = Engine(env_small)
        plans = core.plan(qs, FS)
        grid = core.price_grid(plans, [POLICY])
        for i, o in enumerate(report.outcomes):
            ref = grid.result(i, 0)
            assert o.answer_ids == tuple(int(a) for a in plans[i].answer_ids)
            assert o.result.energy.total() == ref.energy.total()
            assert o.result.cycles.total() == ref.cycles.total()
            assert o.result.wall_seconds == ref.wall_seconds
            # Priced costs layer contention on top of the Session result.
            assert o.energy_j == o.result.energy.total() + o.contention_j
            assert o.latency_s == o.queue_wait_s + o.result.wall_seconds

    def test_outcome_metadata(self, env_small, pa_small):
        qs = range_queries(pa_small, 3, seed=10)
        report = QueryService(env_small, batch_window_s=0.1).serve(
            _requests(qs), [_profile(0)]
        )
        for o in report.outcomes:
            assert o.scheme == FS.label
            assert o.batch >= 0
            assert o.queue_wait_s >= 0.1 - 1e-12
            assert o.server_s > 0.0
            rec = o.to_record()
            assert rec["verdict"] == "served"
            assert rec["scheme"] == FS.label


class TestLedger:
    def test_serve_records_events(self, env_small, pa_small):
        qs = range_queries(pa_small, 3, seed=12)
        with RunLedger() as ledger:
            service = QueryService(env_small, ledger=ledger)
            service.serve(_requests(qs), [_profile(0)])
            events = [r["event"] for r in ledger.records]
        assert "serve_batch" in events
        assert events.count("outcome") == 3
        assert events[-1] == "serve"
        summary = [r for r in ledger.records if r["event"] == "serve"][-1]
        assert summary["n_served"] == 3
        assert summary["planner"] == "batched"
