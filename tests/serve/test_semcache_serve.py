"""Shared server-side semantic cache under the multi-tenant service.

The cache's serve-layer claim: because every cache decision is a function
of window geometry and arrival order only, micro-batch boundaries are
invisible — serving a stream one query at a time and serving it 64 at a
time produce the same verdict for every request, the same answers, and
the same final cache state.  The serial, batched, and columnar service
planners must agree likewise, and outcomes must surface the semantic
verdict (``QueryOutcome.semcache``, ``to_record()``).
"""

from __future__ import annotations

import pytest

from repro.api import Engine
from repro.core.gridrun import RunLedger
from repro.core.semcache import SEMCACHE_VERDICTS, SemanticCache
from repro.data.workloads import client_fleet, fleet_query_stream
from repro.serve import QueryService

REL = 1e-9


def _stream(pa_small, *, seed=7, n=6, duration=3.0):
    fleet = client_fleet(n, seed=11)
    reqs = fleet_query_stream(
        pa_small, fleet, duration_s=duration, seed=seed, hot_fraction=0.5
    )
    return fleet, reqs


def _semantic_outcomes(report):
    return [o for o in report.outcomes if o.served and o.semcache]


def _compare_semantics(a, b):
    assert len(a) == len(b)
    for x, y in zip(a.outcomes, b.outcomes):
        assert x.client_id == y.client_id
        assert x.verdict == y.verdict
        assert x.semcache == y.semcache
        if not x.served:
            continue
        assert x.answer_ids == y.answer_ids
        assert x.n_results == y.n_results


class TestBatchBoundaryIndependence:
    def test_batch_of_one_equals_batch_of_sixtyfour(self, env_small, pa_small):
        fleet, reqs = _stream(pa_small)
        one = QueryService(
            env_small, max_batch=1, batch_window_s=0.0, max_queue=512,
            semantic_cache=SemanticCache(64),
        )
        many = QueryService(
            env_small, max_batch=64, batch_window_s=1.0, max_queue=512,
            semantic_cache=SemanticCache(64),
        )
        ra = one.serve(reqs, fleet, planner="batched")
        rb = many.serve(reqs, fleet, planner="batched")
        # The big-batch run must actually coalesce, or this proves nothing.
        sizes = {}
        for o in rb.outcomes:
            if o.served:
                sizes.setdefault(o.batch, []).append(o)
        assert any(len(v) > 1 for v in sizes.values())
        _compare_semantics(ra, rb)
        # The cache must have genuinely served something.
        assert any(
            o.semcache in ("hit", "refine") for o in _semantic_outcomes(rb)
        )
        sa = one.engine.semantic_cache.stats_dict()
        sb = many.engine.semantic_cache.stats_dict()
        for key in ("hits", "refines", "misses", "entries", "insertions",
                    "evictions"):
            assert sa[key] == sb[key]

    def test_verdicts_are_legal(self, env_small, pa_small):
        fleet, reqs = _stream(pa_small, seed=29)
        svc = QueryService(
            env_small, batch_window_s=0.5, semantic_cache=SemanticCache(64)
        )
        report = svc.serve(reqs, fleet, planner="batched")
        for o in report.outcomes:
            if o.served:
                assert o.semcache in SEMCACHE_VERDICTS or o.semcache == ""


class TestPlannerEquivalence:
    def test_serial_equals_batched(self, env_small, pa_small):
        fleet, reqs = _stream(pa_small, seed=17)
        batched = QueryService(
            env_small, batch_window_s=0.5, semantic_cache=SemanticCache(64)
        ).serve(reqs, fleet, planner="batched")
        serial = QueryService(
            env_small, batch_window_s=0.5, semantic_cache=SemanticCache(64)
        ).serve(reqs, fleet, planner="serial")
        _compare_semantics(batched, serial)
        for b, s in zip(batched.outcomes, serial.outcomes):
            if b.served:
                assert b.result.energy.total() == pytest.approx(
                    s.result.energy.total(), rel=REL
                )

    def test_columnar_equals_batched(self, env_small, pa_small):
        fleet, reqs = _stream(pa_small, seed=19)
        batched = QueryService(
            env_small, batch_window_s=0.5, semantic_cache=SemanticCache(64)
        ).serve(reqs, fleet, planner="batched")
        columnar = QueryService(
            env_small, batch_window_s=0.5, semantic_cache=SemanticCache(64)
        ).serve(reqs, fleet, planner="columnar")
        _compare_semantics(batched, columnar)
        for b, c in zip(batched.outcomes, columnar.outcomes):
            if b.served:
                assert b.energy_j == c.energy_j


class TestSurfacing:
    def test_outcome_record_has_semcache_field(self, env_small, pa_small):
        fleet, reqs = _stream(pa_small, seed=23)
        svc = QueryService(
            env_small, batch_window_s=0.5, semantic_cache=SemanticCache(64)
        )
        report = svc.serve(reqs, fleet, planner="batched")
        tagged = _semantic_outcomes(report)
        assert tagged
        for o in tagged:
            assert o.to_record()["semcache"] == o.semcache

    def test_no_cache_means_no_semcache_field(self, env_small, pa_small):
        fleet, reqs = _stream(pa_small, seed=23)
        report = QueryService(env_small, batch_window_s=0.5).serve(
            reqs, fleet, planner="batched"
        )
        for o in report.outcomes:
            assert o.semcache == ""
            if o.served:
                assert "semcache" not in o.to_record()

    def test_ledger_semcache_event(self, env_small, pa_small):
        fleet, reqs = _stream(pa_small, seed=27)
        ledger = RunLedger()
        svc = QueryService(
            env_small, ledger=ledger, batch_window_s=0.5,
            semantic_cache=SemanticCache(64),
        )
        svc.serve(reqs, fleet, planner="batched")
        events = [r for r in ledger.records if r["event"] == "semcache"]
        assert events
        stats = svc.engine.semantic_cache.stats_dict()
        assert events[-1]["hits"] == stats["hits"]
        assert events[-1]["entries"] == stats["entries"]

    def test_shared_engine_rejects_semantic_cache(self, env_small):
        core = Engine(env_small, semantic_cache=SemanticCache(8))
        with pytest.raises(TypeError, match="shared Engine"):
            QueryService(core, semantic_cache=SemanticCache(8))
        # The shared Engine's own cache is picked up as-is.
        assert QueryService(core).engine.semantic_cache is core.semantic_cache
