"""Differential suite: micro-batched serving == serial per-client serving.

The service's one correctness claim is that cross-client coalescing is
invisible: the batched planner/pricer path must produce, request for
request, the same admission verdicts, the same answers, the same server
occupancy, and energies equal to the grid pricer's 1e-9 agreement
tolerance as replaying the identical dispatch sequence one query at a time
through the scalar planner/pricer.  Client cache state is pinned
transitively — each query's replayed compute cost depends on the cache
state its predecessors left, so any divergence would surface in a later
query's cycles.
"""

from __future__ import annotations

import pytest

from repro.constants import MBPS
from repro.core.executor import Policy
from repro.core.schemes import Scheme, SchemeConfig
from repro.data.workloads import (
    ClientProfile,
    QueryRequest,
    client_fleet,
    fleet_query_stream,
    range_queries,
)
from repro.serve import QueryService

REL = 1e-9


def _compare(batched, serial):
    assert len(batched) == len(serial)
    for b, s in zip(batched.outcomes, serial.outcomes):
        assert b.client_id == s.client_id
        assert b.verdict == s.verdict
        assert b.arrival_s == s.arrival_s
        if not b.served:
            continue
        assert b.batch == s.batch
        assert b.answer_ids == s.answer_ids
        assert b.n_results == s.n_results
        assert b.server_s == s.server_s
        assert b.queue_wait_s == s.queue_wait_s
        assert b.result.energy.total() == pytest.approx(
            s.result.energy.total(), rel=REL
        )
        assert b.result.cycles.total() == pytest.approx(
            s.result.cycles.total(), rel=REL
        )
        assert b.energy_j == pytest.approx(s.energy_j, rel=REL)
        assert b.latency_s == pytest.approx(s.latency_s, rel=REL)


class TestBatchedMatchesSerial:
    def test_heterogeneous_fleet(self, env_small, pa_small):
        fleet = client_fleet(6, seed=11)
        reqs = fleet_query_stream(
            pa_small, fleet, duration_s=3.0, seed=7, hot_fraction=0.5
        )
        assert len(reqs) >= 6
        service = QueryService(env_small, max_batch=8, batch_window_s=0.5)
        batched = service.serve(reqs, fleet, planner="batched")
        serial = service.serve(reqs, fleet, planner="serial")
        # The stream must genuinely coalesce across clients, or the test
        # proves nothing.
        sizes = {}
        for o in batched.outcomes:
            if o.served:
                sizes.setdefault(o.batch, set()).add(o.client_id)
        assert any(len(cids) > 1 for cids in sizes.values())
        _compare(batched, serial)

    def test_with_battery_rejections(self, env_small, pa_small):
        # Finite budgets make admission state-dependent; both planners must
        # still drain batteries identically.
        fleet = client_fleet(
            5, seed=13, battery_j=0.02, low_battery_fraction=1.0
        )
        reqs = fleet_query_stream(pa_small, fleet, duration_s=4.0, seed=17)
        service = QueryService(env_small, max_batch=8, batch_window_s=0.5)
        batched = service.serve(reqs, fleet, planner="batched")
        serial = service.serve(reqs, fleet, planner="serial")
        assert batched.n_rejected_battery == serial.n_rejected_battery > 0
        _compare(batched, serial)

    def test_with_queue_rejections(self, env_small, pa_small):
        qs = range_queries(pa_small, 10, seed=19)
        policy = Policy().with_bandwidth(2 * MBPS)
        fs = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True)
        fleet = [
            ClientProfile(client_id=c, policy=policy, scheme=fs)
            for c in range(2)
        ]
        reqs = [
            QueryRequest(client_id=k % 2, query=q, arrival_s=0.0)
            for k, q in enumerate(qs)
        ]
        service = QueryService(
            env_small, max_queue=3, max_batch=2, batch_window_s=0.0
        )
        batched = service.serve(reqs, fleet, planner="batched")
        serial = service.serve(reqs, fleet, planner="serial")
        assert batched.n_rejected_queue == serial.n_rejected_queue > 0
        _compare(batched, serial)

    def test_repeat_queries_share_phases(self, env_small, pa_small):
        # Hot queries repeat across clients; phase-cache dedup must not
        # change any client's answer or energy.
        fleet = client_fleet(4, seed=21)
        reqs = fleet_query_stream(
            pa_small, fleet, duration_s=3.0, seed=23,
            hot_fraction=1.0, hot_pool=2,
        )
        keys = {(type(r.query).__name__, repr(r.query)) for r in reqs}
        assert len(keys) < len(reqs)  # the stream really repeats queries
        service = QueryService(env_small, max_batch=16, batch_window_s=1.0)
        _compare(
            service.serve(reqs, fleet, planner="batched"),
            service.serve(reqs, fleet, planner="serial"),
        )


class TestColumnarMatchesBatched:
    """The plan-object-free columnar service is the batched path bit for bit
    (same replay, same compile arithmetic, same grid pricer), and therefore
    matches the serial reference to the same 1e-9 bound."""

    def _exact(self, columnar, batched):
        assert len(columnar) == len(batched)
        for c, b in zip(columnar.outcomes, batched.outcomes):
            assert c.verdict == b.verdict
            assert c.client_id == b.client_id
            if not c.served:
                continue
            for f in ("scheme", "batch", "start_s", "queue_wait_s",
                      "server_s", "latency_s", "energy_j", "contention_j",
                      "answer_ids", "n_results"):
                assert getattr(c, f) == getattr(b, f), f
            assert c.result.energy == b.result.energy
            assert c.result.cycles == b.result.cycles
            assert c.result.wall_seconds == b.result.wall_seconds

    def test_heterogeneous_fleet(self, env_small, pa_small):
        fleet = client_fleet(6, seed=11)
        reqs = fleet_query_stream(
            pa_small, fleet, duration_s=3.0, seed=7, hot_fraction=0.5
        )
        service = QueryService(env_small, max_batch=8, batch_window_s=0.5)
        columnar = service.serve(reqs, fleet, planner="columnar")
        self._exact(columnar, service.serve(reqs, fleet, planner="batched"))
        _compare(columnar, service.serve(reqs, fleet, planner="serial"))

    def test_with_battery_rejections(self, env_small, pa_small):
        fleet = client_fleet(
            5, seed=13, battery_j=0.02, low_battery_fraction=1.0
        )
        reqs = fleet_query_stream(pa_small, fleet, duration_s=4.0, seed=17)
        service = QueryService(env_small, max_batch=8, batch_window_s=0.5)
        columnar = service.serve(reqs, fleet, planner="columnar")
        batched = service.serve(reqs, fleet, planner="batched")
        assert columnar.n_rejected_battery == batched.n_rejected_battery > 0
        self._exact(columnar, batched)
