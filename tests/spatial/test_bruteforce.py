"""The oracle itself: filtering must be a superset of exact answers."""

from __future__ import annotations

import numpy as np

from repro.spatial import bruteforce as bf
from repro.spatial.geometry import point_segment_distance_sq
from repro.spatial.mbr import MBR


class TestFilterRefineContainment:
    def test_range_filter_superset_of_range_query(self, pa_small, rng):
        ext = pa_small.extent
        for _ in range(20):
            w = ext.width * rng.uniform(0.005, 0.1)
            h = ext.height * rng.uniform(0.005, 0.1)
            x = rng.uniform(ext.xmin, ext.xmax - w)
            y = rng.uniform(ext.ymin, ext.ymax - h)
            rect = MBR(x, y, x + w, y + h)
            cand = set(bf.range_filter(pa_small, rect).tolist())
            ans = set(bf.range_query(pa_small, rect).tolist())
            assert ans <= cand

    def test_point_filter_superset_of_point_query(self, pa_small):
        for i in range(0, pa_small.size, max(1, pa_small.size // 30)):
            px, py = float(pa_small.x2[i]), float(pa_small.y2[i])
            cand = set(bf.point_filter(pa_small, px, py).tolist())
            ans = set(bf.point_query(pa_small, px, py).tolist())
            assert ans <= cand
            assert i in ans  # the anchoring segment itself matches

    def test_nearest_neighbor_is_global_minimum(self, pa_small, rng):
        ext = pa_small.extent
        for _ in range(10):
            px = rng.uniform(ext.xmin, ext.xmax)
            py = rng.uniform(ext.ymin, ext.ymax)
            nn = bf.nearest_neighbor(pa_small, px, py)
            d_nn = point_segment_distance_sq(px, py, *pa_small.segment(nn))
            sample = rng.integers(0, pa_small.size, 200)
            for j in sample:
                d_j = point_segment_distance_sq(px, py, *pa_small.segment(int(j)))
                assert d_nn <= d_j + 1e-12

    def test_range_query_empty_window_far_away(self, pa_small):
        ext = pa_small.extent
        rect = MBR(ext.xmax + 1, ext.ymax + 1, ext.xmax + 2, ext.ymax + 2)
        assert len(bf.range_query(pa_small, rect)) == 0
        assert len(bf.range_filter(pa_small, rect)) == 0

    def test_whole_extent_window_returns_all(self, pa_small):
        got = bf.range_query(pa_small, pa_small.extent)
        assert np.array_equal(got, np.arange(pa_small.size))
