"""Packed R-tree: construction, oracle agreement, instrumentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.model import SegmentDataset
from repro.sim.trace import OpCounter
from repro.spatial import bruteforce as bf
from repro.spatial.geometry import point_segment_distance_sq
from repro.spatial.mbr import MBR
from repro.spatial.rtree import PackedRTree
from repro.spatial.stats import check_invariants

from tests.conftest import make_segments


class TestBuild:
    def test_invariants_on_pa(self, pa_small_tree):
        check_invariants(pa_small_tree)

    def test_invariants_on_random(self, rng):
        ds = make_segments(rng, 731)
        check_invariants(PackedRTree.build(ds, node_capacity=7))

    def test_single_segment_tree(self):
        ds = SegmentDataset("one", np.r_[0.0], np.r_[0.0], np.r_[1.0], np.r_[1.0])
        tree = PackedRTree.build(ds)
        assert tree.node_count == 1
        assert tree.height == 1
        assert tree.root == 0
        check_invariants(tree)

    def test_exact_capacity_boundary(self, rng):
        for n in (25, 26, 625, 626):
            ds = make_segments(rng, n)
            tree = PackedRTree.build(ds, node_capacity=25)
            check_invariants(tree)

    def test_capacity_too_small_raises(self, pa_small):
        with pytest.raises(ValueError):
            PackedRTree.build(pa_small, node_capacity=1)

    def test_height_grows_logarithmically(self, rng):
        ds = make_segments(rng, 10_000)
        tree = PackedRTree.build(ds, node_capacity=10)
        # 10k entries at fanout 10: 1000 leaves, 100, 10, 1 -> height 4.
        assert tree.height == 4

    def test_unsorted_build_is_valid_but_looser(self, pa_small):
        sorted_tree = PackedRTree.build(pa_small, sort=True)
        unsorted_tree = PackedRTree.build(pa_small, sort=False)
        check_invariants(unsorted_tree)
        from repro.spatial.stats import tree_stats

        assert (
            tree_stats(sorted_tree).leaf_area_ratio
            < tree_stats(unsorted_tree).leaf_area_ratio
        )

    def test_index_bytes_accounting(self, pa_small_tree):
        t = pa_small_tree
        expected = (
            t.node_count * t.costs.index_node_header_bytes
            + int(t.node_child_count.sum()) * t.costs.index_entry_bytes
        )
        assert t.index_bytes() == expected


class TestRangeFilter:
    def _windows(self, ds, rng, n=25):
        ext = ds.extent
        out = []
        for _ in range(n):
            w = ext.width * rng.uniform(0.01, 0.2)
            h = ext.height * rng.uniform(0.01, 0.2)
            x = rng.uniform(ext.xmin, ext.xmax - w)
            y = rng.uniform(ext.ymin, ext.ymax - h)
            out.append(MBR(x, y, x + w, y + h))
        return out

    def test_matches_oracle(self, pa_small, pa_small_tree, rng):
        for rect in self._windows(pa_small, rng):
            got = np.sort(pa_small_tree.range_filter(rect))
            want = np.sort(bf.range_filter(pa_small, rect))
            assert np.array_equal(got, want)

    def test_whole_extent_returns_everything(self, pa_small, pa_small_tree):
        got = pa_small_tree.range_filter(pa_small.extent)
        assert len(got) == pa_small.size

    def test_empty_region(self, pa_small, pa_small_tree):
        ext = pa_small.extent
        rect = MBR(ext.xmax + 10, ext.ymax + 10, ext.xmax + 20, ext.ymax + 20)
        assert len(pa_small_tree.range_filter(rect)) == 0

    def test_counter_instrumentation(self, pa_small, pa_small_tree):
        counter = OpCounter()
        rect = MBR(
            pa_small.extent.xmin,
            pa_small.extent.ymin,
            pa_small.extent.center()[0],
            pa_small.extent.center()[1],
        )
        ids = pa_small_tree.range_filter(rect, counter)
        assert counter.nodes_visited >= 1
        assert counter.mbr_tests >= counter.nodes_visited  # >=1 test per visit
        assert counter.entries_scanned == len(ids)
        assert len(counter.trace) == counter.nodes_visited

    def test_counter_visits_bounded_by_tree(self, pa_small, pa_small_tree):
        counter = OpCounter(record_trace=False)
        pa_small_tree.range_filter(pa_small.extent, counter)
        assert counter.nodes_visited == pa_small_tree.node_count


class TestPointFilter:
    def test_matches_oracle_on_endpoints(self, pa_small, pa_small_tree):
        for i in range(0, pa_small.size, max(1, pa_small.size // 40)):
            px, py = float(pa_small.x1[i]), float(pa_small.y1[i])
            got = np.sort(pa_small_tree.point_filter(px, py))
            want = np.sort(bf.point_filter(pa_small, px, py))
            assert np.array_equal(got, want)
            assert i in got  # the anchoring segment's own MBR contains it

    def test_far_outside_point(self, pa_small, pa_small_tree):
        ext = pa_small.extent
        got = pa_small_tree.point_filter(ext.xmax + 100, ext.ymax + 100)
        assert len(got) == 0


class TestNearestNeighbor:
    def test_matches_oracle(self, pa_small, pa_small_tree, rng):
        ext = pa_small.extent
        for _ in range(40):
            px = rng.uniform(ext.xmin, ext.xmax)
            py = rng.uniform(ext.ymin, ext.ymax)
            got = pa_small_tree.nearest_neighbor(px, py)
            want = bf.nearest_neighbor(pa_small, px, py)
            d_got = point_segment_distance_sq(px, py, *pa_small.segment(got))
            d_want = point_segment_distance_sq(px, py, *pa_small.segment(want))
            assert d_got == pytest.approx(d_want, rel=1e-12, abs=1e-12)

    def test_point_far_outside_extent(self, pa_small, pa_small_tree):
        ext = pa_small.extent
        px, py = ext.xmax + 5 * ext.width, ext.ymax + 5 * ext.height
        got = pa_small_tree.nearest_neighbor(px, py)
        want = bf.nearest_neighbor(pa_small, px, py)
        d_got = point_segment_distance_sq(px, py, *pa_small.segment(got))
        d_want = point_segment_distance_sq(px, py, *pa_small.segment(want))
        assert d_got == pytest.approx(d_want, rel=1e-12)

    def test_query_on_a_segment_returns_zero_distance(self, pa_small, pa_small_tree):
        i = pa_small.size // 3
        mx = (pa_small.x1[i] + pa_small.x2[i]) / 2
        my = (pa_small.y1[i] + pa_small.y2[i]) / 2
        got = pa_small_tree.nearest_neighbor(float(mx), float(my))
        d = point_segment_distance_sq(float(mx), float(my), *pa_small.segment(got))
        assert d == pytest.approx(0.0, abs=1e-15)

    def test_pruning_visits_few_nodes(self, pa_small, pa_small_tree):
        """Branch-and-bound must not degenerate to a full scan."""
        counter = OpCounter(record_trace=False)
        c = pa_small.extent.center()
        pa_small_tree.nearest_neighbor(c[0], c[1], counter)
        assert counter.nodes_visited < pa_small_tree.node_count / 4
        assert counter.distance_evals < pa_small.size / 10

    def test_counter_results(self, pa_small, pa_small_tree):
        counter = OpCounter(record_trace=False)
        c = pa_small.extent.center()
        best = pa_small_tree.nearest_neighbor(c[0], c[1], counter)
        assert best >= 0
        assert counter.results_produced == 1
        assert counter.heap_ops > 0


class TestEntryHelpers:
    def test_entry_positions_roundtrip(self, pa_small_tree):
        ids = pa_small_tree.entry_ids[::37]
        pos = pa_small_tree.entry_positions_for_ids(ids)
        assert np.array_equal(pa_small_tree.entry_ids[pos], ids)

    def test_estimated_index_bytes_matches_real_build(self, pa_small, pa_small_tree):
        for n in (1, 24, 25, 26, 200, pa_small.size):
            sub = pa_small.subset(np.arange(n))
            real = PackedRTree.build(sub, node_capacity=pa_small_tree.node_capacity)
            est = pa_small_tree.estimated_index_bytes_for_entries(n)
            assert est == real.index_bytes(), f"n={n}"

    def test_estimated_index_bytes_zero(self, pa_small_tree):
        assert pa_small_tree.estimated_index_bytes_for_entries(0) == 0
