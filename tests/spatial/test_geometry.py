"""Unit and property tests for the scalar geometric predicates."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.spatial import geometry as g
from repro.spatial.mbr import MBR

coords = st.floats(
    min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False
)


class TestPointSegmentDistance:
    def test_perpendicular_foot_on_segment(self):
        # Segment (0,0)-(10,0); point above its middle.
        assert g.point_segment_distance(5, 3, 0, 0, 10, 0) == pytest.approx(3.0)

    def test_beyond_endpoint_uses_endpoint(self):
        # The paper's definition: distance to the closest endpoint when the
        # perpendicular misses the segment.
        assert g.point_segment_distance(13, 4, 0, 0, 10, 0) == pytest.approx(5.0)
        assert g.point_segment_distance(-3, 4, 0, 0, 10, 0) == pytest.approx(5.0)

    def test_degenerate_segment(self):
        assert g.point_segment_distance(3, 4, 0, 0, 0, 0) == pytest.approx(5.0)

    def test_point_on_segment_is_zero(self):
        assert g.point_segment_distance(5, 5, 0, 0, 10, 10) == pytest.approx(0.0)

    @given(coords, coords, coords, coords, coords, coords)
    def test_distance_at_most_endpoint_distance(self, px, py, x1, y1, x2, y2):
        d = g.point_segment_distance_sq(px, py, x1, y1, x2, y2)
        d1 = (px - x1) ** 2 + (py - y1) ** 2
        d2 = (px - x2) ** 2 + (py - y2) ** 2
        assert d <= min(d1, d2) + 1e-6 * max(1.0, min(d1, d2))

    @given(coords, coords, coords, coords, coords, coords)
    def test_distance_symmetric_in_endpoints(self, px, py, x1, y1, x2, y2):
        a = g.point_segment_distance_sq(px, py, x1, y1, x2, y2)
        b = g.point_segment_distance_sq(px, py, x2, y2, x1, y1)
        assert a == pytest.approx(b, rel=1e-9, abs=1e-9)


class TestSegmentContainsPoint:
    def test_endpoint_hits(self):
        assert g.segment_contains_point(1, 2, 1, 2, 5, 6)
        assert g.segment_contains_point(5, 6, 1, 2, 5, 6)

    def test_midpoint_hits(self):
        assert g.segment_contains_point(3, 4, 1, 2, 5, 6)

    def test_near_miss_with_eps(self):
        assert not g.segment_contains_point(3, 4.1, 1, 2, 5, 6)
        assert g.segment_contains_point(3, 4.05, 1, 2, 5, 6, eps=0.1)


class TestSegmentsIntersect:
    def test_proper_crossing(self):
        assert g.segments_intersect(0, 0, 2, 2, 0, 2, 2, 0)

    def test_shared_endpoint(self):
        assert g.segments_intersect(0, 0, 1, 1, 1, 1, 2, 0)

    def test_t_junction(self):
        assert g.segments_intersect(0, 0, 2, 0, 1, 0, 1, 5)

    def test_collinear_overlap(self):
        assert g.segments_intersect(0, 0, 2, 0, 1, 0, 3, 0)

    def test_collinear_disjoint(self):
        assert not g.segments_intersect(0, 0, 1, 0, 2, 0, 3, 0)

    def test_parallel_disjoint(self):
        assert not g.segments_intersect(0, 0, 1, 0, 0, 1, 1, 1)

    def test_near_miss(self):
        assert not g.segments_intersect(0, 0, 1, 1, 1.01, 1, 2, 0)

    @given(coords, coords, coords, coords, coords, coords, coords, coords)
    def test_symmetric(self, ax1, ay1, ax2, ay2, bx1, by1, bx2, by2):
        r1 = g.segments_intersect(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2)
        r2 = g.segments_intersect(bx1, by1, bx2, by2, ax1, ay1, ax2, ay2)
        assert r1 == r2


class TestSegmentIntersectsRect:
    RECT = MBR(0, 0, 10, 10)

    def test_endpoint_inside(self):
        assert g.segment_intersects_rect(5, 5, 20, 20, self.RECT)

    def test_both_outside_crossing(self):
        assert g.segment_intersects_rect(-5, 5, 15, 5, self.RECT)

    def test_both_outside_diagonal_crossing(self):
        assert g.segment_intersects_rect(-1, 5, 5, 11, self.RECT)

    def test_corner_graze_miss(self):
        # Passes near the corner but outside: MBR filter would accept it,
        # exact refinement must reject — the case that distinguishes the
        # two phases.
        # Segment (9, 11.5)-(11.5, 9): its MBR (9, 9, 11.5, 11.5) overlaps
        # the window, but the segment passes outside the (10, 10) corner.
        assert MBR.from_segment(9, 11.5, 11.5, 9).intersects(self.RECT)
        assert not g.segment_intersects_rect(9, 11.5, 11.5, 9, self.RECT)

    def test_corner_cut(self):
        # Crosses the top-left corner region: enters through the left edge
        # at y = 9.5 even though both endpoints are outside.
        assert g.segment_intersects_rect(-1, 10.5, 0.5, 9, self.RECT)

    def test_fully_outside_one_side(self):
        assert not g.segment_intersects_rect(11, 0, 12, 10, self.RECT)

    def test_touching_edge(self):
        assert g.segment_intersects_rect(10, 2, 15, 2, self.RECT)

    def test_collinear_with_edge(self):
        assert g.segment_intersects_rect(2, 10, 8, 10, self.RECT)

    def test_fully_inside(self):
        assert g.segment_intersects_rect(1, 1, 2, 2, self.RECT)

    @given(coords, coords, coords, coords)
    def test_mbr_filter_is_sound(self, x1, y1, x2, y2):
        """Exact intersection implies MBR intersection (filter recall)."""
        if g.segment_intersects_rect(x1, y1, x2, y2, self.RECT):
            assert MBR.from_segment(x1, y1, x2, y2).intersects(self.RECT)


class TestSegmentLength:
    def test_pythagorean(self):
        assert g.segment_length(0, 0, 3, 4) == pytest.approx(5.0)

    def test_zero(self):
        assert g.segment_length(1, 1, 1, 1) == 0.0
