"""Differential suite: the batched best-first engine vs the scalar search.

:func:`repro.spatial.batchnn.batch_nearest`'s contract is bit-for-bit
equality with :meth:`repro.spatial.rtree.PackedRTree.nearest_neighbors`
per query: same answer ids in the same order, same OpCounter tallies, and
the same ordered visit/refine log (every index-node touch and candidate
fetch in exact scalar pop order).  Every test here runs both and compares
everything, across the engine's two execution regimes — synchronized
rounds for wide batches and the per-query scalar tail for narrow ones.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.data.model import SegmentDataset
from repro.sim.trace import OpCounter, REGION_DATA
from repro.spatial.batchnn import _SCALAR_TAIL, batch_nearest
from repro.spatial.rtree import PackedRTree


def _random_dataset(seed: int, n: int) -> SegmentDataset:
    rng = np.random.default_rng(seed)
    cx = rng.uniform(0, 1000, n)
    cy = rng.uniform(0, 1000, n)
    dx = rng.normal(0, 15.0, n)
    dy = rng.normal(0, 15.0, n)
    return SegmentDataset("batchnn", cx - dx, cy - dy, cx + dx, cy + dy)


def _assert_matches(tree: PackedRTree, px, py, ks) -> None:
    """Run both searches for every query; demand full equality."""
    px = np.asarray(px, dtype=np.float64)
    py = np.asarray(py, dtype=np.float64)
    ks = np.asarray(ks, dtype=np.int64)
    res = batch_nearest(tree, px, py, ks)
    for i in range(px.size):
        c = OpCounter(record_trace=True)
        ans = tree.nearest_neighbors(float(px[i]), float(py[i]), int(ks[i]), c)
        assert list(ans) == res.answer_ids[i].tolist(), f"answers, query {i}"
        assert c.nodes_visited == res.nodes_visited[i], f"nodes, query {i}"
        assert c.mbr_tests == res.mbr_tests[i], f"mbr_tests, query {i}"
        assert c.candidates_refined == res.candidates_refined[i], (
            f"refined, query {i}"
        )
        assert c.heap_ops == res.heap_ops[i], f"heap_ops, query {i}"
        assert c.results_produced == res.results_produced[i], (
            f"results, query {i}"
        )
        ids = [a.object_id for a in c.trace]
        entry = [a.region == REGION_DATA for a in c.trace]
        assert ids == res.trace_ids[i].tolist(), f"trace ids, query {i}"
        assert entry == res.trace_is_entry[i].tolist(), (
            f"trace regions, query {i}"
        )


@pytest.fixture(scope="module")
def tree() -> PackedRTree:
    return PackedRTree.build(_random_dataset(7, 400))


def test_wide_batch_varied_k(tree):
    """A batch wide enough to exercise the synchronized-round path."""
    rng = np.random.default_rng(11)
    n = 6 * _SCALAR_TAIL
    px = rng.uniform(-50, 1050, n)
    py = rng.uniform(-50, 1050, n)
    ks = rng.integers(1, 10, n)
    _assert_matches(tree, px, py, ks)


def test_narrow_batch_scalar_tail(tree):
    """Batches at or below the tail threshold finish per query."""
    rng = np.random.default_rng(12)
    for n in (1, 2, _SCALAR_TAIL):
        px = rng.uniform(0, 1000, n)
        py = rng.uniform(0, 1000, n)
        _assert_matches(tree, px, py, np.full(n, 3))


def test_k_exceeds_dataset(tree):
    """k past the dataset size returns everything, still bit-identical."""
    n_seg = tree.dataset.x1.size
    px = np.array([10.0, 500.0, 990.0])
    py = np.array([10.0, 500.0, 990.0])
    _assert_matches(tree, px, py, [n_seg, n_seg + 7, 2 * n_seg])


def test_colocated_segments_distance_ties():
    """Duplicate and co-located segments force exact distance ties; the
    tie-break replay (insertion order into the best-heap) must match."""
    base = _random_dataset(13, 60)
    ds = SegmentDataset(
        "ties",
        np.concatenate([base.x1, base.x1[:20], base.x1[:10]]),
        np.concatenate([base.y1, base.y1[:20], base.y1[:10]]),
        np.concatenate([base.x2, base.x2[:20], base.x2[:10]]),
        np.concatenate([base.y2, base.y2[:20], base.y2[:10]]),
    )
    tree = PackedRTree.build(ds)
    rng = np.random.default_rng(14)
    n = 30
    px = rng.uniform(0, 1000, n)
    py = rng.uniform(0, 1000, n)
    ks = rng.integers(1, 25, n)
    _assert_matches(tree, px, py, ks)


def test_query_points_on_endpoints(tree):
    """Query points sitting exactly on segment endpoints (distance 0)."""
    ds = tree.dataset
    idx = np.arange(0, ds.x1.size, 17)
    px = np.concatenate([ds.x1[idx], ds.x2[idx]])
    py = np.concatenate([ds.y1[idx], ds.y2[idx]])
    ks = np.tile([1, 4], idx.size)
    _assert_matches(tree, px, py, ks)


def test_flat_log_views_consistent(tree):
    """Per-query trace arrays are views into the flat log arrays."""
    rng = np.random.default_rng(15)
    n = 20
    px = rng.uniform(0, 1000, n)
    py = rng.uniform(0, 1000, n)
    res = batch_nearest(tree, px, py, np.full(n, 2))
    assert res.log_ends.shape == (n,)
    assert int(res.log_ends[-1]) == res.flat_ids.size == res.flat_is_entry.size
    lo = 0
    for i in range(n):
        hi = int(res.log_ends[i])
        np.testing.assert_array_equal(res.trace_ids[i], res.flat_ids[lo:hi])
        np.testing.assert_array_equal(
            res.trace_is_entry[i], res.flat_is_entry[lo:hi]
        )
        lo = hi


def test_empty_batch(tree):
    res = batch_nearest(
        tree, np.empty(0), np.empty(0), np.empty(0, dtype=np.int64)
    )
    assert res.answer_ids == []
    assert res.nodes_visited.size == 0


def test_validation_errors(tree):
    with pytest.raises(ValueError, match="k must be >= 1"):
        batch_nearest(tree, [0.0], [0.0], [0])
    with pytest.raises(ValueError, match="aligned"):
        batch_nearest(tree, [0.0, 1.0], [0.0], [1])


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    n_seg=st.integers(min_value=1, max_value=120),
    n_q=st.integers(min_value=1, max_value=24),
)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_hypothesis_random_batches(seed, n_seg, n_q):
    """Random datasets, query points and depths, both execution regimes."""
    ds = _random_dataset(seed, n_seg)
    tree = PackedRTree.build(ds)
    rng = np.random.default_rng(seed + 1)
    px = rng.uniform(-100, 1100, n_q)
    py = rng.uniform(-100, 1100, n_q)
    ks = rng.integers(1, n_seg + 3, n_q)
    _assert_matches(tree, px, py, ks)
