"""Vectorized predicates must agree exactly with the scalar reference."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial import geometry as sg
from repro.spatial import vecgeom as vg
from repro.spatial.mbr import MBR

coords = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)


@st.composite
def segment_arrays(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    xs = st.lists(coords, min_size=n, max_size=n)
    return tuple(np.asarray(draw(xs)) for _ in range(4))


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return MBR(x1, y1, x2, y2)


class TestAgainstScalar:
    @given(segment_arrays(), rects())
    @settings(max_examples=60, deadline=None)
    def test_mbr_intersects_rect(self, segs, rect):
        x1, y1, x2, y2 = segs
        mask = vg.mbr_intersects_rect(x1, y1, x2, y2, rect)
        for i in range(len(x1)):
            expected = MBR.from_segment(x1[i], y1[i], x2[i], y2[i]).intersects(rect)
            assert mask[i] == expected

    @given(segment_arrays(), coords, coords)
    @settings(max_examples=60, deadline=None)
    def test_mbr_contains_point(self, segs, px, py):
        x1, y1, x2, y2 = segs
        mask = vg.mbr_contains_point(x1, y1, x2, y2, px, py)
        for i in range(len(x1)):
            expected = MBR.from_segment(x1[i], y1[i], x2[i], y2[i]).contains_point(
                px, py
            )
            assert mask[i] == expected

    @given(segment_arrays(), coords, coords)
    @settings(max_examples=60, deadline=None)
    def test_point_segment_distance_sq(self, segs, px, py):
        x1, y1, x2, y2 = segs
        d = vg.point_segment_distance_sq(px, py, x1, y1, x2, y2)
        for i in range(len(x1)):
            expected = sg.point_segment_distance_sq(
                px, py, x1[i], y1[i], x2[i], y2[i]
            )
            assert d[i] == pytest.approx(expected, rel=1e-12, abs=1e-12)

    @given(segment_arrays(), rects())
    @settings(max_examples=60, deadline=None)
    def test_segments_intersect_rect(self, segs, rect):
        x1, y1, x2, y2 = segs
        mask = vg.segments_intersect_rect(x1, y1, x2, y2, rect)
        for i in range(len(x1)):
            expected = sg.segment_intersects_rect(x1[i], y1[i], x2[i], y2[i], rect)
            assert mask[i] == expected, (
                f"segment {(x1[i], y1[i], x2[i], y2[i])} vs {rect}"
            )


class TestEdgeCases:
    def test_empty_like_behaviour_zero_length_segments(self):
        x = np.array([1.0, 2.0])
        y = np.array([1.0, 2.0])
        d = vg.point_segment_distance_sq(0.0, 0.0, x, y, x, y)
        assert d[0] == pytest.approx(2.0)
        assert d[1] == pytest.approx(8.0)

    def test_contain_point_respects_eps(self):
        x1 = np.array([0.0])
        y1 = np.array([0.0])
        x2 = np.array([10.0])
        y2 = np.array([0.0])
        assert not vg.segments_contain_point(5.0, 0.05, x1, y1, x2, y2, eps=0.01)[0]
        assert vg.segments_contain_point(5.0, 0.05, x1, y1, x2, y2, eps=0.1)[0]

    def test_rect_all_inside_fast_path(self):
        rect = MBR(0, 0, 10, 10)
        x1 = np.array([1.0, 2.0])
        y1 = np.array([1.0, 2.0])
        x2 = np.array([3.0, 4.0])
        y2 = np.array([3.0, 4.0])
        assert vg.segments_intersect_rect(x1, y1, x2, y2, rect).all()

    def test_rect_all_rejected_fast_path(self):
        rect = MBR(0, 0, 1, 1)
        x1 = np.array([5.0, 6.0])
        y1 = np.array([5.0, 6.0])
        x2 = np.array([7.0, 8.0])
        y2 = np.array([7.0, 8.0])
        assert not vg.segments_intersect_rect(x1, y1, x2, y2, rect).any()

    def test_rect_crossing_without_endpoints_inside(self):
        rect = MBR(0, 0, 10, 10)
        x1 = np.array([-5.0, -5.0])
        y1 = np.array([5.0, 20.0])
        x2 = np.array([15.0, 15.0])
        y2 = np.array([5.0, 20.0])
        mask = vg.segments_intersect_rect(x1, y1, x2, y2, rect)
        assert mask[0] and not mask[1]
