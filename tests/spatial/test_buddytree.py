"""Buddy-style index: structure, oracle agreement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.trace import OpCounter
from repro.spatial import bruteforce as bf
from repro.spatial.buddytree import BuddyTree
from repro.spatial.geometry import point_segment_distance_sq
from repro.spatial.mbr import MBR

from tests.conftest import make_segments


@pytest.fixture(scope="module")
def bt(pa_small):
    return BuddyTree(pa_small)


class TestConstruction:
    def test_invalid_capacity(self, pa_small):
        with pytest.raises(ValueError):
            BuddyTree(pa_small, page_capacity=0)

    def test_no_replication(self, bt, pa_small):
        """Every segment is stored exactly once."""
        seen: list = []
        stack = [bt.root]
        while stack:
            n = stack.pop()
            seen.extend(n.seg_ids)
            if not n.is_leaf:
                stack.extend((n.low, n.high))
        assert sorted(seen) == list(range(pa_small.size))

    def test_segments_contained_in_their_region(self, bt, pa_small):
        stack = [bt.root]
        while stack:
            n = stack.pop()
            for seg_id in n.seg_ids:
                assert n.rect.contains(pa_small.segment_mbr(seg_id))
            if not n.is_leaf:
                stack.extend((n.low, n.high))

    def test_halves_are_disjoint_buddies(self, bt):
        stack = [bt.root]
        while stack:
            n = stack.pop()
            if n.is_leaf:
                continue
            assert n.low.rect.intersection_area(n.high.rect) == 0.0
            union = n.low.rect.union(n.high.rect)
            assert union == n.rect
            stack.extend((n.low, n.high))

    def test_spanning_segments_cross_the_cut(self, bt, pa_small):
        stack = [bt.root]
        while stack:
            n = stack.pop()
            if n.is_leaf:
                continue
            for seg_id in n.seg_ids:
                mbr = pa_small.segment_mbr(seg_id)
                assert not n.low.rect.contains(mbr)
                assert not n.high.rect.contains(mbr)
            stack.extend((n.low, n.high))

    def test_index_bytes_linear_in_segments(self, bt, pa_small):
        assert bt.index_bytes() == (
            bt.node_count * bt.costs.index_node_header_bytes
            + pa_small.size * bt.costs.index_entry_bytes
        )


class TestQueries:
    def test_range_filter_matches_whole_dataset_mbr_filter(self, bt, pa_small, rng):
        """Filtering semantics equal the R-tree's: every MBR intersecting
        the window is a candidate (no replication, no misses)."""
        ext = pa_small.extent
        for _ in range(20):
            w = ext.width * rng.uniform(0.01, 0.15)
            h = ext.height * rng.uniform(0.01, 0.15)
            x = rng.uniform(ext.xmin, ext.xmax - w)
            y = rng.uniform(ext.ymin, ext.ymax - h)
            rect = MBR(x, y, x + w, y + h)
            got = bt.range_filter(rect)
            want = bf.range_filter(pa_small, rect)
            assert np.array_equal(got, np.sort(want))

    def test_point_filter_matches_oracle(self, bt, pa_small):
        for i in range(0, pa_small.size, max(1, pa_small.size // 25)):
            px, py = float(pa_small.x1[i]), float(pa_small.y1[i])
            got = bt.point_filter(px, py)
            want = np.sort(bf.point_filter(pa_small, px, py))
            assert np.array_equal(got, want)

    def test_nn_matches_oracle(self, bt, pa_small, rng):
        ext = pa_small.extent
        for _ in range(20):
            px = rng.uniform(ext.xmin, ext.xmax)
            py = rng.uniform(ext.ymin, ext.ymax)
            got = bt.nearest_neighbor(px, py)
            want = bf.nearest_neighbor(pa_small, px, py)
            d_got = point_segment_distance_sq(px, py, *pa_small.segment(got))
            d_want = point_segment_distance_sq(px, py, *pa_small.segment(want))
            assert d_got == pytest.approx(d_want, rel=1e-12, abs=1e-12)

    def test_knn_matches_oracle(self, bt, pa_small, rng):
        ext = pa_small.extent
        for _ in range(6):
            px = rng.uniform(ext.xmin, ext.xmax)
            py = rng.uniform(ext.ymin, ext.ymax)
            got = bt.nearest_neighbors(px, py, 5)
            want = bf.k_nearest_neighbors(pa_small, px, py, 5)
            gd = sorted(
                point_segment_distance_sq(px, py, *pa_small.segment(int(i)))
                for i in got
            )
            wd = sorted(
                point_segment_distance_sq(px, py, *pa_small.segment(int(i)))
                for i in want
            )
            assert np.allclose(gd, wd, rtol=1e-12)

    def test_instrumented(self, bt, pa_small):
        counter = OpCounter()
        bt.range_filter(pa_small.extent, counter)
        # Nodes in the square root's padding (outside the data extent) are
        # legitimately pruned; everything else is visited.
        assert 0 < counter.nodes_visited <= bt.node_count
        assert counter.entries_scanned == pa_small.size
        assert len(counter.trace) == counter.nodes_visited

    def test_on_random_data(self, rng):
        ds = make_segments(rng, 600)
        bt = BuddyTree(ds, page_capacity=8)
        ext = ds.extent
        for _ in range(10):
            w = ext.width * rng.uniform(0.05, 0.3)
            h = ext.height * rng.uniform(0.05, 0.3)
            x = rng.uniform(ext.xmin, ext.xmax - w)
            y = rng.uniform(ext.ymin, ext.ymax - h)
            rect = MBR(x, y, x + w, y + h)
            assert np.array_equal(
                bt.range_filter(rect), np.sort(bf.range_filter(ds, rect))
            )
