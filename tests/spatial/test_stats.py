"""Tree statistics and the invariant checker's own sensitivity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.spatial.rtree import PackedRTree
from repro.spatial.stats import check_invariants, tree_stats

from tests.conftest import make_segments


class TestTreeStats:
    def test_counts(self, pa_small, pa_small_tree):
        s = tree_stats(pa_small_tree)
        assert s.n_segments == pa_small.size
        assert s.n_nodes == pa_small_tree.node_count
        assert s.height == pa_small_tree.height
        assert s.index_bytes == pa_small_tree.index_bytes()
        assert s.data_bytes == pa_small.data_bytes()

    def test_packed_fill_factor_near_one(self, pa_small_tree):
        s = tree_stats(pa_small_tree)
        assert s.fill_factor > 0.95  # packing: only last node per level short

    def test_hilbert_tightens_leaves(self, pa_small):
        s_sorted = tree_stats(PackedRTree.build(pa_small, sort=True))
        s_unsorted = tree_stats(PackedRTree.build(pa_small, sort=False))
        assert s_sorted.leaf_area_ratio < s_unsorted.leaf_area_ratio / 2

    def test_str_mentions_sizes(self, pa_small_tree):
        text = str(tree_stats(pa_small_tree))
        assert "segments" in text and "MB" in text


class TestInvariantChecker:
    def test_passes_on_valid_tree(self, rng):
        check_invariants(PackedRTree.build(make_segments(rng, 500), node_capacity=9))

    def test_detects_corrupted_mbr(self, rng):
        tree = PackedRTree.build(make_segments(rng, 500), node_capacity=9)
        tree.node_xmax[tree.root] += 1.0  # widen: no longer exact union
        with pytest.raises(AssertionError):
            check_invariants(tree)

    def test_detects_corrupted_permutation(self, rng):
        tree = PackedRTree.build(make_segments(rng, 500), node_capacity=9)
        tree.entry_ids[0] = tree.entry_ids[1]  # duplicate id
        with pytest.raises(AssertionError):
            check_invariants(tree)

    def test_detects_corrupted_subtree_counts(self, rng):
        tree = PackedRTree.build(make_segments(rng, 500), node_capacity=9)
        tree.entries_in_subtree[tree.root] += 1
        with pytest.raises(AssertionError):
            check_invariants(tree)
