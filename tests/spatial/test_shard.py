"""Window→Hilbert-key-range decomposition vs the scalar curve oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.hilbert import hilbert_sort_keys, xy_to_d
from repro.spatial.mbr import MBR
from repro.spatial.shard import (
    equi_count_boundaries,
    expanding_key_ranges,
    ranges_overlap_shards,
    window_cell_span,
    window_key_ranges,
    window_shard_ranges,
)


def _oracle_keys(order, x_lo, y_lo, x_hi, y_hi):
    """The window's key set by brute scalar enumeration."""
    return {
        xy_to_d(order, x, y)
        for x in range(x_lo, x_hi + 1)
        for y in range(y_lo, y_hi + 1)
    }


@st.composite
def _cell_windows(draw, max_order=6):
    order = draw(st.integers(min_value=1, max_value=max_order))
    n = 1 << order
    x_lo = draw(st.integers(min_value=0, max_value=n - 1))
    y_lo = draw(st.integers(min_value=0, max_value=n - 1))
    x_hi = draw(st.integers(min_value=x_lo, max_value=n - 1))
    y_hi = draw(st.integers(min_value=y_lo, max_value=n - 1))
    return order, x_lo, y_lo, x_hi, y_hi


class TestWindowKeyRanges:
    @given(_cell_windows())
    @settings(max_examples=120, deadline=None)
    def test_union_tiles_window_exactly(self, win):
        order, x_lo, y_lo, x_hi, y_hi = win
        ranges = window_key_ranges(order, x_lo, y_lo, x_hi, y_hi)
        covered = set()
        for lo, hi in ranges:
            covered.update(range(lo, hi + 1))
        assert covered == _oracle_keys(order, x_lo, y_lo, x_hi, y_hi)

    @given(_cell_windows())
    @settings(max_examples=120, deadline=None)
    def test_sorted_disjoint_maximally_merged(self, win):
        order, x_lo, y_lo, x_hi, y_hi = win
        ranges = window_key_ranges(order, x_lo, y_lo, x_hi, y_hi)
        assert ranges  # a non-empty window always yields at least one range
        for lo, hi in ranges:
            assert lo <= hi
        for (_, h0), (l1, _) in zip(ranges, ranges[1:]):
            # Strictly ascending with a gap: adjacent ranges would have
            # been merged, overlapping ones are a decomposition bug.
            assert l1 > h0 + 1

    @pytest.mark.parametrize("order", [1, 3, 6])
    def test_full_grid_is_one_range(self, order):
        n = 1 << order
        assert window_key_ranges(order, 0, 0, n - 1, n - 1) == [(0, n * n - 1)]

    def test_single_cell(self):
        assert window_key_ranges(3, 5, 2, 5, 2) == [
            (xy_to_d(3, 5, 2), xy_to_d(3, 5, 2))
        ]

    def test_out_of_grid_raises(self):
        with pytest.raises(ValueError):
            window_key_ranges(2, 0, 0, 4, 0)
        with pytest.raises(ValueError):
            window_key_ranges(2, -1, 0, 1, 1)
        with pytest.raises(ValueError):
            window_key_ranges(2, 2, 0, 1, 1)


class TestWindowCellSpan:
    @given(
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_point_window_matches_sort_key_cell(self, order, fx, fy):
        """A degenerate window lands on exactly the cell hilbert_sort_keys
        assigns the same point."""
        extent = MBR(-3.0, 10.0, 7.0, 30.0)
        x = extent.xmin + fx * extent.width
        y = extent.ymin + fy * extent.height
        x_lo, y_lo, x_hi, y_hi = window_cell_span(extent, order, x, y, x, y)
        assert (x_lo, y_lo) == (x_hi, y_hi)
        key = int(
            hilbert_sort_keys(
                np.array([x]), np.array([y]), extent, order=order
            )[0]
        )
        assert key == xy_to_d(order, x_lo, y_lo)

    def test_clips_to_grid(self):
        extent = MBR(0.0, 0.0, 1.0, 1.0)
        span = window_cell_span(extent, 4, -5.0, -5.0, 5.0, 5.0)
        assert span == (0, 0, 15, 15)

    def test_degenerate_extent_raises(self):
        with pytest.raises(ValueError):
            window_cell_span(MBR(0.0, 0.0, 0.0, 1.0), 4, 0.0, 0.0, 0.0, 0.0)


class TestWindowShardRanges:
    @given(_cell_windows(max_order=5), st.integers(min_value=1, max_value=4))
    @settings(max_examples=80, deadline=None)
    def test_coarse_rescale_is_superset_of_exact(self, win, drop):
        """Decomposing at a coarse order and rescaling covers every fine
        key of the window (the hierarchical-superset property admission
        relies on)."""
        order, x_lo, y_lo, x_hi, y_hi = win
        extent = MBR(0.0, 0.0, 1.0, 1.0)
        n = 1 << order
        # A float window hitting exactly the cell window [lo, hi].
        eps = 1.0 / (4.0 * n)
        xmin, xmax = x_lo / n + eps, (x_hi + 1) / n - eps
        ymin, ymax = y_lo / n + eps, (y_hi + 1) / n - eps
        prune = max(1, order - drop)
        coarse = window_shard_ranges(
            extent, order, xmin, ymin, xmax, ymax, prune_order=prune
        )
        fine = set()
        for lo, hi in window_key_ranges(order, x_lo, y_lo, x_hi, y_hi):
            fine.update(range(lo, hi + 1))
        covered = set()
        for lo, hi in coarse:
            covered.update(range(lo, hi + 1))
        assert fine <= covered

    def test_prune_order_above_order_is_clamped(self):
        extent = MBR(0.0, 0.0, 1.0, 1.0)
        a = window_shard_ranges(extent, 4, 0.1, 0.1, 0.4, 0.4, prune_order=9)
        b = window_shard_ranges(extent, 4, 0.1, 0.1, 0.4, 0.4, prune_order=4)
        assert a == b


class TestEquiCountBoundaries:
    @given(
        st.integers(min_value=1, max_value=100_000),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=1024),
    )
    @settings(max_examples=150, deadline=None)
    def test_endpoints_monotone_aligned(self, n, k, align):
        b = equi_count_boundaries(n, k, align)
        assert b[0] == 0 and b[-1] == n
        assert (np.diff(b) > 0).all()
        assert len(b) - 1 <= k
        # Interior cuts land on the alignment; only the two endpoints may
        # break it (the dataset size is whatever it is).
        for cut in b[1:-1].tolist():
            assert cut % align == 0

    def test_even_split_no_alignment(self):
        assert equi_count_boundaries(100, 4).tolist() == [0, 25, 50, 75, 100]

    def test_small_dataset_collapses_shards(self):
        # 1000 entries, align 625: only one interior cut fits.
        b = equi_count_boundaries(1000, 8, 625)
        assert b.tolist() == [0, 625, 1000]

    def test_validation(self):
        with pytest.raises(ValueError):
            equi_count_boundaries(0, 4)
        with pytest.raises(ValueError):
            equi_count_boundaries(10, 0)
        with pytest.raises(ValueError):
            equi_count_boundaries(10, 2, 0)


class TestRangesOverlapShards:
    @given(
        st.integers(min_value=1, max_value=12),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=400),
                st.integers(min_value=0, max_value=400),
            ),
            min_size=0,
            max_size=8,
        ),
        st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_bruteforce(self, m, raw_ranges, data):
        # Shard spans: contiguous slices of an ascending (with duplicates)
        # key array, exactly how ShardStore derives them.
        keys = np.sort(
            np.asarray(
                data.draw(
                    st.lists(
                        st.integers(min_value=0, max_value=400),
                        min_size=m,
                        max_size=m * 8,
                    )
                ),
                dtype=np.int64,
            )
        )
        cuts = np.unique(
            np.concatenate(
                [[0], np.sort(
                    data.draw(
                        st.lists(
                            st.integers(min_value=1, max_value=max(1, keys.size - 1)),
                            min_size=0, max_size=m - 1,
                        )
                    )
                ).astype(np.int64), [keys.size]]
            )
        )
        lo = keys[cuts[:-1]]
        hi = keys[cuts[1:] - 1]
        ranges = [(min(a, b), max(a, b)) for a, b in raw_ranges]
        got = ranges_overlap_shards(ranges, lo, hi).tolist()
        want = [
            s
            for s in range(lo.size)
            if any(r0 <= hi[s] and r1 >= lo[s] for r0, r1 in ranges)
        ]
        assert got == want

    def test_empty_inputs(self):
        assert ranges_overlap_shards(
            [], np.array([0]), np.array([5])
        ).size == 0
        assert ranges_overlap_shards(
            [(0, 1)], np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        ).size == 0

    def test_boundary_key_hits_both_shards(self):
        # A duplicate key straddling a cut: both shards own it.
        lo = np.array([0, 10], dtype=np.int64)
        hi = np.array([10, 20], dtype=np.int64)
        assert ranges_overlap_shards([(10, 10)], lo, hi).tolist() == [0, 1]


class TestExpandingKeyRanges:
    def test_terminates_with_full_span(self):
        extent = MBR(0.0, 0.0, 1.0, 1.0)
        rings = list(expanding_key_ranges(extent, 8, 0.3, 0.7))
        radii = [r for r, _ in rings]
        assert radii == sorted(radii)
        assert rings[-1][1] == [(0, (1 << 16) - 1)]

    def test_first_ring_is_point_cell(self):
        extent = MBR(0.0, 0.0, 1.0, 1.0)
        r0, ranges0 = next(iter(expanding_key_ranges(extent, 8, 0.5, 0.5)))
        assert r0 == 0.0
        assert len(ranges0) == 1
        assert ranges0[0][0] == ranges0[0][1]

    def test_bad_growth_raises(self):
        extent = MBR(0.0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            list(expanding_key_ranges(extent, 8, 0.5, 0.5, growth=1.0))
