"""Spatial join between two line-segment layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.tiger import waterways_dataset
from repro.sim.trace import OpCounter
from repro.spatial.join import bruteforce_join, refine_join, rtree_join
from repro.spatial.rtree import PackedRTree

from tests.conftest import make_segments


@pytest.fixture(scope="module")
def layers(pa_small):
    rivers = waterways_dataset(pa_small, n_rivers=6, seed=5)
    return (
        pa_small,
        rivers,
        PackedRTree.build(pa_small),
        PackedRTree.build(rivers),
    )


class TestJoinCorrectness:
    def test_filter_then_refine_matches_oracle(self, layers):
        roads, rivers, ta, tb = layers
        candidates = rtree_join(ta, tb)
        result = refine_join(ta, tb, candidates)
        oracle = bruteforce_join(roads, rivers)
        got = {tuple(p) for p in result.tolist()}
        want = {tuple(p) for p in oracle.tolist()}
        assert got == want
        assert len(want) > 0  # rivers must actually cross roads

    def test_candidates_are_mbr_pairs(self, layers):
        roads, rivers, ta, tb = layers
        candidates = rtree_join(ta, tb)
        # Every candidate pair's MBRs intersect; spot-check a sample.
        for ia, ib in candidates[:: max(1, len(candidates) // 50)]:
            assert roads.segment_mbr(int(ia)).intersects(
                rivers.segment_mbr(int(ib))
            )

    def test_candidates_superset_of_answers(self, layers):
        roads, rivers, ta, tb = layers
        candidates = {tuple(p) for p in rtree_join(ta, tb).tolist()}
        oracle = {tuple(p) for p in bruteforce_join(roads, rivers).tolist()}
        assert oracle <= candidates

    def test_symmetric_cardinality(self, layers):
        roads, rivers, ta, tb = layers
        ab = refine_join(ta, tb, rtree_join(ta, tb))
        ba = refine_join(tb, ta, rtree_join(tb, ta))
        assert len(ab) == len(ba)
        assert {tuple(p) for p in ab.tolist()} == {
            (b, a) for a, b in ba.tolist()
        }

    def test_disjoint_layers_empty(self, rng):
        a = make_segments(rng, 50, extent=(0, 0, 100, 100))
        b = make_segments(rng, 50, extent=(1000, 1000, 1100, 1100))
        got = rtree_join(PackedRTree.build(a), PackedRTree.build(b))
        assert got.shape == (0, 2)

    def test_mixed_heights(self, rng):
        """Trees of different heights exercise the mixed-level descent."""
        big = make_segments(rng, 900)
        small = make_segments(rng, 12)
        ta = PackedRTree.build(big, node_capacity=5)   # tall
        tb = PackedRTree.build(small, node_capacity=25)  # single leaf
        assert ta.height > tb.height
        candidates = rtree_join(ta, tb)
        got = refine_join(ta, tb, candidates)
        want = bruteforce_join(big, small)
        assert {tuple(p) for p in got.tolist()} == {
            tuple(p) for p in want.tolist()
        }

    def test_self_join_contains_shared_endpoints(self, rng):
        ds = make_segments(rng, 80)
        tree = PackedRTree.build(ds, node_capacity=6)
        pairs = refine_join(tree, tree, rtree_join(tree, tree))
        got = {tuple(p) for p in pairs.tolist()}
        # Reflexive pairs: every segment intersects itself.
        for i in range(ds.size):
            assert (i, i) in got


class TestJoinInstrumentation:
    def test_counters_populate(self, layers):
        _, _, ta, tb = layers
        counter = OpCounter(record_trace=False)
        candidates = rtree_join(ta, tb, counter)
        assert counter.nodes_visited > 0
        assert counter.mbr_tests > 0
        refine_counter = OpCounter(record_trace=False)
        refine_join(ta, tb, candidates, refine_counter)
        assert refine_counter.range_refine_tests == len(candidates)
        assert refine_counter.results_produced > 0

    def test_sync_traversal_beats_nested_loop(self, layers):
        """The join must not degenerate into |A| x |B| MBR tests."""
        roads, rivers, ta, tb = layers
        counter = OpCounter(record_trace=False)
        rtree_join(ta, tb, counter)
        assert counter.mbr_tests < roads.size * rivers.size / 10

    def test_empty_refine(self, layers):
        _, _, ta, tb = layers
        out = refine_join(ta, tb, np.empty((0, 2), dtype=np.int64))
        assert out.shape == (0, 2)


class TestWaterways:
    def test_spans_extent(self, pa_small):
        rivers = waterways_dataset(pa_small, n_rivers=4, seed=7)
        assert rivers.extent.height >= pa_small.extent.height * 0.9

    def test_deterministic(self, pa_small):
        a = waterways_dataset(pa_small, seed=9)
        b = waterways_dataset(pa_small, seed=9)
        assert np.array_equal(a.x1, b.x1)

    def test_invalid_count(self, pa_small):
        with pytest.raises(ValueError):
            waterways_dataset(pa_small, n_rivers=0)
