"""Hilbert curve: bijection, locality, vectorized/scalar agreement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.hilbert import d_to_xy, hilbert_sort_keys, xy_to_d, xy_to_d_bulk
from repro.spatial.mbr import MBR


class TestScalarBijection:
    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_full_bijection(self, order):
        n = 1 << order
        seen = set()
        for x in range(n):
            for y in range(n):
                d = xy_to_d(order, x, y)
                assert d_to_xy(order, d) == (x, y)
                seen.add(d)
        assert seen == set(range(n * n))

    @given(st.integers(min_value=1, max_value=12), st.data())
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_random(self, order, data):
        n = 1 << order
        x = data.draw(st.integers(min_value=0, max_value=n - 1))
        y = data.draw(st.integers(min_value=0, max_value=n - 1))
        assert d_to_xy(order, xy_to_d(order, x, y)) == (x, y)

    def test_order_one_canonical_curve(self):
        # The canonical order-1 Hilbert curve: (0,0)->(0,1)->(1,1)->(1,0).
        assert [d_to_xy(1, d) for d in range(4)] == [(0, 0), (0, 1), (1, 1), (1, 0)]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            xy_to_d(2, 4, 0)
        with pytest.raises(ValueError):
            xy_to_d(2, 0, -1)
        with pytest.raises(ValueError):
            d_to_xy(2, 16)


class TestLocality:
    @pytest.mark.parametrize("order", [2, 4, 6])
    def test_consecutive_indices_are_grid_neighbors(self, order):
        """The curve's defining property: successive cells are adjacent."""
        n = 1 << order
        px, py = d_to_xy(order, 0)
        for d in range(1, n * n):
            x, y = d_to_xy(order, d)
            assert abs(x - px) + abs(y - py) == 1, f"jump at d={d}"
            px, py = x, y

    def test_locality_beats_row_major(self):
        """Mean spatial distance between index-adjacent cells must be 1 for
        Hilbert; row-major order jumps a full row width at wrap points, so
        its mean exceeds 1 — the property that makes packed leaves tight."""
        order = 5
        n = 1 << order
        hilbert_total = sum(
            abs(d_to_xy(order, d)[0] - d_to_xy(order, d - 1)[0])
            + abs(d_to_xy(order, d)[1] - d_to_xy(order, d - 1)[1])
            for d in range(1, n * n)
        )
        row_major_total = sum(
            (1 if (i % n) != 0 else (n - 1) + 1) for i in range(1, n * n)
        )
        assert hilbert_total < row_major_total


class TestBulkEquivalence:
    """xy_to_d_bulk vs the scalar oracle — same indices, same rejections."""

    @pytest.mark.parametrize("order", [1, 2, 5])
    def test_exhaustive_small_grids(self, order):
        n = 1 << order
        gx, gy = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        keys = xy_to_d_bulk(order, gx.ravel(), gy.ravel())
        expect = [xy_to_d(order, int(x), int(y))
                  for x, y in zip(gx.ravel(), gy.ravel())]
        assert keys.tolist() == expect

    @given(st.integers(min_value=1, max_value=31), st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_cells_match_scalar(self, order, data):
        n = 1 << order
        cells = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                min_size=1,
                max_size=40,
            )
        )
        xs = np.array([c[0] for c in cells], dtype=np.uint64)
        ys = np.array([c[1] for c in cells], dtype=np.uint64)
        keys = xy_to_d_bulk(order, xs, ys)
        assert keys.tolist() == [xy_to_d(order, x, y) for x, y in cells]

    def test_out_of_grid_raises(self):
        with pytest.raises(ValueError):
            xy_to_d_bulk(2, np.array([0, 4]), np.array([0, 0]))
        with pytest.raises(ValueError):
            xy_to_d_bulk(2, np.array([0]), np.array([7]))

    def test_bad_order_and_shape_raise(self):
        with pytest.raises(ValueError):
            xy_to_d_bulk(0, np.zeros(1, dtype=np.uint64), np.zeros(1, dtype=np.uint64))
        with pytest.raises(ValueError):
            xy_to_d_bulk(32, np.zeros(1, dtype=np.uint64), np.zeros(1, dtype=np.uint64))
        with pytest.raises(ValueError):
            xy_to_d_bulk(4, np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.uint64))

    def test_empty_input(self):
        assert xy_to_d_bulk(8, np.empty(0), np.empty(0)).size == 0


class TestVectorized:
    def test_matches_scalar_on_grid_points(self, rng):
        order = 8
        n = 1 << order
        extent = MBR(0.0, 0.0, 1.0, 1.0)
        xs = rng.random(500)
        ys = rng.random(500)
        keys = hilbert_sort_keys(xs, ys, extent, order=order)
        for i in range(0, 500, 17):
            gx = min(int(xs[i] * n), n - 1)
            gy = min(int(ys[i] * n), n - 1)
            assert int(keys[i]) == xy_to_d(order, gx, gy)

    def test_extent_scaling(self):
        """Points on the extent boundary map into the grid, not past it."""
        extent = MBR(-10.0, 5.0, 30.0, 25.0)
        xs = np.array([-10.0, 30.0, 10.0])
        ys = np.array([5.0, 25.0, 15.0])
        keys = hilbert_sort_keys(xs, ys, extent, order=10)
        assert (keys < np.uint64(1) << np.uint64(20)).all()

    def test_bad_order_raises(self):
        with pytest.raises(ValueError):
            hilbert_sort_keys(np.zeros(1), np.zeros(1), MBR(0, 0, 1, 1), order=0)
        with pytest.raises(ValueError):
            hilbert_sort_keys(np.zeros(1), np.zeros(1), MBR(0, 0, 1, 1), order=32)

    def test_degenerate_extent_raises(self):
        with pytest.raises(ValueError):
            hilbert_sort_keys(np.zeros(1), np.zeros(1), MBR(0, 0, 0, 1))

    def test_sorting_random_points_groups_neighbors(self, rng):
        """After a Hilbert sort, consecutive points are spatially close on
        average — the property the packed bulk-load exploits."""
        extent = MBR(0.0, 0.0, 1.0, 1.0)
        xs = rng.random(2000)
        ys = rng.random(2000)
        keys = hilbert_sort_keys(xs, ys, extent)
        order_idx = np.argsort(keys)
        sx, sy = xs[order_idx], ys[order_idx]
        sorted_mean = np.mean(np.hypot(np.diff(sx), np.diff(sy)))
        unsorted_mean = np.mean(np.hypot(np.diff(xs), np.diff(ys)))
        assert sorted_mean < unsorted_mean / 5
