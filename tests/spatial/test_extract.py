"""Budgeted subtree extraction (paper Figure 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.trace import OpCounter
from repro.spatial import bruteforce as bf
from repro.spatial.extract import Extraction, extract_range, max_entries_within_budget
from repro.spatial.mbr import MBR
from repro.spatial.rtree import PackedRTree


def _some_window(ds, frac=0.05, anchor_segment=None):
    """A window anchored on a segment midpoint, so it is never empty."""
    i = ds.size // 2 if anchor_segment is None else anchor_segment
    cx = float(ds.x1[i] + ds.x2[i]) / 2.0
    cy = float(ds.y1[i] + ds.y2[i]) / 2.0
    ext = ds.extent
    w, h = ext.width * frac, ext.height * frac
    return MBR(cx - w, cy - h, cx + w, cy + h)


class TestBudgetSizing:
    def test_zero_budget(self, pa_small_tree):
        assert max_entries_within_budget(pa_small_tree, 0) == 0
        assert max_entries_within_budget(pa_small_tree, -5) == 0

    def test_everything_fits_with_huge_budget(self, pa_small, pa_small_tree):
        n = max_entries_within_budget(pa_small_tree, 1 << 40)
        assert n == pa_small.size

    def test_monotone_in_budget(self, pa_small_tree):
        sizes = [
            max_entries_within_budget(pa_small_tree, b)
            for b in (0, 1_000, 10_000, 100_000, 1_000_000)
        ]
        assert sizes == sorted(sizes)

    def test_result_actually_fits_and_is_maximal(self, pa_small_tree):
        t = pa_small_tree
        for budget in (5_000, 50_000, 123_456):
            n = max_entries_within_budget(t, budget)
            total = (
                n * t.costs.segment_record_bytes
                + t.estimated_index_bytes_for_entries(n)
            )
            assert total <= budget
            if n < len(t.entry_ids):
                bigger = (
                    (n + 1) * t.costs.segment_record_bytes
                    + t.estimated_index_bytes_for_entries(n + 1)
                )
                assert bigger > budget


class TestExtractRange:
    def test_covers_candidates(self, pa_small, pa_small_tree):
        rect = _some_window(pa_small)
        candidates = pa_small_tree.range_filter(rect)
        assert len(candidates) > 0
        ext = extract_range(
            pa_small_tree, candidates, *rect.center(), budget_bytes=512 * 1024
        )
        assert ext.fits
        shipped = set(ext.global_ids.tolist())
        assert set(candidates.tolist()) <= shipped

    def test_respects_budget(self, pa_small, pa_small_tree):
        rect = _some_window(pa_small, frac=0.02)
        candidates = pa_small_tree.range_filter(rect)
        for budget in (64 * 1024, 256 * 1024):
            ext = extract_range(
                pa_small_tree, candidates, *rect.center(), budget_bytes=budget
            )
            if ext.fits:
                assert ext.total_bytes <= budget

    def test_ships_contiguous_entry_range(self, pa_small, pa_small_tree):
        rect = _some_window(pa_small, frac=0.03)
        candidates = pa_small_tree.range_filter(rect)
        ext = extract_range(
            pa_small_tree, candidates, *rect.center(), budget_bytes=512 * 1024
        )
        expected = pa_small_tree.entry_ids[ext.entry_lo : ext.entry_hi]
        assert np.array_equal(ext.global_ids, expected)

    def test_fills_budget_with_proximate_items(self, pa_small, pa_small_tree):
        """The shipment should be larger than the bare candidate run —
        'certain nodes on either side of it based on how much data the
        client can hold'."""
        rect = _some_window(pa_small, frac=0.02)
        candidates = pa_small_tree.range_filter(rect)
        budget = 512 * 1024
        ext = extract_range(
            pa_small_tree, candidates, *rect.center(), budget_bytes=budget
        )
        assert ext.n_entries > len(candidates)
        assert ext.n_entries == max_entries_within_budget(pa_small_tree, budget)

    def test_too_small_budget_does_not_fit(self, pa_small, pa_small_tree):
        rect = _some_window(pa_small, frac=0.2)
        candidates = pa_small_tree.range_filter(rect)
        assert len(candidates) > 10
        ext = extract_range(
            pa_small_tree, candidates, *rect.center(), budget_bytes=500
        )
        assert not ext.fits
        assert ext.n_entries == 0
        assert len(ext.global_ids) == 0

    def test_empty_candidates_anchor_on_query(self, pa_small, pa_small_tree):
        ext_box = pa_small.extent
        # A point in the extent corner region — no candidates.
        px, py = ext_box.xmin + 1e-9, ext_box.ymin + 1e-9
        ext = extract_range(
            pa_small_tree,
            np.empty(0, dtype=np.int64),
            px,
            py,
            budget_bytes=128 * 1024,
        )
        assert ext.fits
        assert ext.n_entries > 0
        # The shipment should be anchored near the query point: the closest
        # shipped segment must be reasonably near.
        sub = pa_small.subset(ext.global_ids)
        d = min(
            np.hypot(sub.x1 - px, sub.y1 - py).min(),
            np.hypot(sub.x2 - px, sub.y2 - py).min(),
        )
        all_d = min(
            np.hypot(pa_small.x1 - px, pa_small.y1 - py).min(),
            np.hypot(pa_small.x2 - px, pa_small.y2 - py).min(),
        )
        assert d <= all_d * 10 + 0.05 * pa_small.extent.width

    def test_server_work_is_counted(self, pa_small, pa_small_tree):
        rect = _some_window(pa_small)
        candidates = pa_small_tree.range_filter(rect)
        counter = OpCounter(record_trace=False)
        ext = extract_range(
            pa_small_tree, candidates, *rect.center(), 512 * 1024, counter
        )
        assert counter.entries_scanned == ext.n_entries
        assert counter.nodes_visited > 0

    def test_byte_accounting(self, pa_small, pa_small_tree):
        rect = _some_window(pa_small)
        candidates = pa_small_tree.range_filter(rect)
        ext = extract_range(
            pa_small_tree, candidates, *rect.center(), budget_bytes=512 * 1024
        )
        t = pa_small_tree
        assert ext.data_bytes == ext.n_entries * t.costs.segment_record_bytes
        assert ext.index_bytes == t.estimated_index_bytes_for_entries(ext.n_entries)
        assert ext.total_bytes == ext.data_bytes + ext.index_bytes

    def test_local_answer_equals_master_answer(self, pa_small, pa_small_tree):
        """Answering the anchoring query on the shipped subset must yield
        the master answer — the shipment covers all candidates."""
        rect = _some_window(pa_small, frac=0.03)
        candidates = pa_small_tree.range_filter(rect)
        ext = extract_range(
            pa_small_tree, candidates, *rect.center(), budget_bytes=1 << 20
        )
        sub = pa_small.subset(ext.global_ids)
        local = bf.range_query(sub, rect)
        global_answer = bf.range_query(pa_small, rect)
        mapped = np.sort(ext.global_ids[local])
        assert np.array_equal(mapped, np.sort(global_answer))


class TestCoverageRect:
    def test_anchor_covered_range_grows(self, pa_small, pa_small_tree):
        from repro.spatial.extract import coverage_rect

        rect = _some_window(pa_small, frac=0.02)
        candidates = pa_small_tree.range_filter(rect)
        ext = extract_range(
            pa_small_tree, candidates, *rect.center(), budget_bytes=1 << 19
        )
        cov = coverage_rect(pa_small_tree, rect, ext.entry_lo, ext.entry_hi)
        # Coverage includes (at least) the anchoring window.
        assert cov.contains(rect)

    def test_coverage_guarantee_holds(self, pa_small, pa_small_tree):
        """Every master segment whose MBR intersects the coverage rect lies
        inside the shipped entry range — the local-answer guarantee."""
        from repro.spatial.extract import coverage_rect

        rect = _some_window(pa_small, frac=0.02)
        candidates = pa_small_tree.range_filter(rect)
        ext = extract_range(
            pa_small_tree, candidates, *rect.center(), budget_bytes=1 << 19
        )
        cov = coverage_rect(pa_small_tree, rect, ext.entry_lo, ext.entry_hi)
        ids = bf.range_filter(pa_small, cov)
        pos = pa_small_tree.entry_positions_for_ids(ids)
        assert (pos >= ext.entry_lo).all()
        assert (pos < ext.entry_hi).all()

    def test_whole_dataset_range_covers_everything(self, pa_small, pa_small_tree):
        from repro.spatial.extract import coverage_rect

        rect = _some_window(pa_small, frac=0.01)
        cov = coverage_rect(pa_small_tree, rect, 0, pa_small.size)
        assert cov.contains(pa_small.extent) or cov == pa_small.extent

    def test_probe_charged(self, pa_small, pa_small_tree):
        from repro.spatial.extract import coverage_rect

        rect = _some_window(pa_small, frac=0.02)
        candidates = pa_small_tree.range_filter(rect)
        ext = extract_range(
            pa_small_tree, candidates, *rect.center(), budget_bytes=1 << 19
        )
        calls = []
        coverage_rect(
            pa_small_tree, rect, ext.entry_lo, ext.entry_hi,
            probe=lambda: calls.append(1),
        )
        assert len(calls) >= 2  # at least the initial check plus the search
