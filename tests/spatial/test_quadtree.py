"""PMR quadtree: structure, oracle agreement, PMR-specific properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.trace import OpCounter
from repro.spatial import bruteforce as bf
from repro.spatial.geometry import point_segment_distance_sq
from repro.spatial.mbr import MBR
from repro.spatial.quadtree import PMRQuadtree

from tests.conftest import make_segments


@pytest.fixture(scope="module")
def qt(pa_small):
    return PMRQuadtree(pa_small)


class TestConstruction:
    def test_invalid_params(self, pa_small):
        with pytest.raises(ValueError):
            PMRQuadtree(pa_small, splitting_threshold=0)
        with pytest.raises(ValueError):
            PMRQuadtree(pa_small, max_depth=0)

    def test_depth_bounded(self, qt):
        assert 1 <= qt.depth() <= qt.max_depth

    def test_replication_factor_at_least_one(self, qt):
        assert qt.replication_factor() >= 1.0

    def test_every_segment_stored_somewhere(self, qt, pa_small):
        seen = set()
        stack = [qt.root]
        while stack:
            cell = stack.pop()
            if cell.is_leaf:
                seen.update(cell.seg_ids)
            else:
                stack.extend(cell.children)
        assert seen == set(range(pa_small.size))

    def test_leaves_respect_threshold_or_depth_cap(self, qt):
        """A leaf may exceed the threshold only transiently via the no-
        cascade rule or at the depth cap; it can never exceed it by more
        than the number of post-split insertions, which for our insert-all
        build means: an over-full leaf must sit at max depth, or have been
        left over-full by at most the PMR one-split-per-insert rule (its
        occupancy stays below 2x threshold in practice on street data)."""
        stack = [qt.root]
        while stack:
            cell = stack.pop()
            if cell.is_leaf:
                if cell.depth < qt.max_depth:
                    assert len(cell.seg_ids) <= 2 * qt.splitting_threshold
            else:
                stack.extend(cell.children)

    def test_children_partition_parent(self, qt):
        stack = [qt.root]
        while stack:
            cell = stack.pop()
            if cell.is_leaf:
                continue
            union = MBR.union_of([c.rect for c in cell.children])
            assert union == cell.rect
            area = sum(c.rect.area() for c in cell.children)
            assert area == pytest.approx(cell.rect.area(), rel=1e-12)
            stack.extend(cell.children)

    def test_index_bytes_positive_and_counts_replication(self, qt, pa_small):
        plain = (
            qt.node_count * qt.costs.index_node_header_bytes
            + pa_small.size * qt.costs.index_entry_bytes
        )
        assert qt.index_bytes() > 0
        # Replication means stored entries >= one per segment.
        assert qt.index_bytes() >= plain - qt.node_count * 4 * qt.costs.index_entry_bytes


class TestQueries:
    def test_range_answers_match_oracle(self, qt, pa_small, rng):
        ext = pa_small.extent
        for _ in range(25):
            w = ext.width * rng.uniform(0.01, 0.15)
            h = ext.height * rng.uniform(0.01, 0.15)
            x = rng.uniform(ext.xmin, ext.xmax - w)
            y = rng.uniform(ext.ymin, ext.ymax - h)
            rect = MBR(x, y, x + w, y + h)
            cand = qt.range_filter(rect)
            want = bf.range_query(pa_small, rect)
            # Filtering must not lose any true answer...
            assert set(want.tolist()) <= set(cand.tolist())
            # ...and is at least as precise as the whole-dataset MBR filter.
            assert len(cand) <= len(bf.range_filter(pa_small, rect))

    def test_point_candidates_superset_of_answers(self, qt, pa_small):
        for i in range(0, pa_small.size, max(1, pa_small.size // 30)):
            px, py = float(pa_small.x1[i]), float(pa_small.y1[i])
            cand = set(qt.point_filter(px, py).tolist())
            want = set(bf.point_query(pa_small, px, py).tolist())
            assert want <= cand
            assert i in cand

    def test_nn_matches_oracle(self, qt, pa_small, rng):
        ext = pa_small.extent
        for _ in range(25):
            px = rng.uniform(ext.xmin, ext.xmax)
            py = rng.uniform(ext.ymin, ext.ymax)
            got = qt.nearest_neighbor(px, py)
            want = bf.nearest_neighbor(pa_small, px, py)
            d_got = point_segment_distance_sq(px, py, *pa_small.segment(got))
            d_want = point_segment_distance_sq(px, py, *pa_small.segment(want))
            assert d_got == pytest.approx(d_want, rel=1e-12, abs=1e-12)

    def test_knn_matches_oracle_distances(self, qt, pa_small, rng):
        ext = pa_small.extent
        for _ in range(8):
            px = rng.uniform(ext.xmin, ext.xmax)
            py = rng.uniform(ext.ymin, ext.ymax)
            got = qt.nearest_neighbors(px, py, 7)
            want = bf.k_nearest_neighbors(pa_small, px, py, 7)
            gd = sorted(
                point_segment_distance_sq(px, py, *pa_small.segment(int(i)))
                for i in got
            )
            wd = sorted(
                point_segment_distance_sq(px, py, *pa_small.segment(int(i)))
                for i in want
            )
            assert np.allclose(gd, wd, rtol=1e-12)

    def test_instrumentation(self, qt, pa_small):
        counter = OpCounter()
        ext = pa_small.extent
        c = ext.center()
        rect = MBR(c[0] - ext.width * 0.05, c[1] - ext.height * 0.05,
                   c[0] + ext.width * 0.05, c[1] + ext.height * 0.05)
        qt.range_filter(rect, counter)
        assert counter.nodes_visited > 0
        assert counter.mbr_tests > 0
        assert len(counter.trace) == counter.nodes_visited

    def test_empty_region(self, qt, pa_small):
        ext = pa_small.extent
        rect = MBR(ext.xmax + 10, ext.ymax + 10, ext.xmax + 20, ext.ymax + 20)
        assert len(qt.range_filter(rect)) == 0


class TestOnRandomData:
    def test_oracle_agreement_random(self, rng):
        ds = make_segments(rng, 400)
        qt = PMRQuadtree(ds, splitting_threshold=4)
        ext = ds.extent
        for _ in range(15):
            w = ext.width * rng.uniform(0.05, 0.3)
            h = ext.height * rng.uniform(0.05, 0.3)
            x = rng.uniform(ext.xmin, ext.xmax - w)
            y = rng.uniform(ext.ymin, ext.ymax - h)
            rect = MBR(x, y, x + w, y + h)
            cand = set(qt.range_filter(rect).tolist())
            want = set(bf.range_query(ds, rect).tolist())
            assert want <= cand
