"""batch_filter vs the scalar PackedRTree traversal — exactness unit tests.

The batched planner replays index-node access traces through the cache
models, so :func:`repro.spatial.batchtraverse.batch_filter` must reproduce
not just the scalar candidate *sets* but the scalar DFS node *order* and
the per-query MBR-test tallies.  These tests pin all three against the
scalar filters (which record their own order via ``OpCounter``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.trace import REGION_INDEX, OpCounter
from repro.spatial.batchtraverse import batch_filter
from repro.spatial.mbr import MBR
from repro.spatial.rtree import PackedRTree


def _random_dataset(seed: int, n: int):
    from repro.data.model import SegmentDataset

    rng = np.random.default_rng(seed)
    cx = rng.uniform(0, 1000, n)
    cy = rng.uniform(0, 1000, n)
    dx = rng.normal(0, 15.0, n)
    dy = rng.normal(0, 15.0, n)
    return SegmentDataset("t", cx - dx, cy - dy, cx + dx, cy + dy)


@pytest.fixture(scope="module")
def tree() -> PackedRTree:
    return PackedRTree.build(_random_dataset(3, 400), node_capacity=8)


def _scalar_visits(tree: PackedRTree, rect: MBR):
    """Scalar candidates + DFS-preorder visited nodes + MBR-test tally."""
    counter = OpCounter(record_trace=True)
    cands = tree.range_filter(rect, counter)
    visited = [a.object_id for a in counter.iter_trace()
               if a.region == REGION_INDEX]
    return cands, np.asarray(visited, dtype=np.int64), counter.mbr_tests


def _windows(tree: PackedRTree, seed: int, n: int):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(-50, 1050, (n, 2))
    ys = rng.uniform(-50, 1050, (n, 2))
    return [MBR(min(x), min(y), max(x), max(y)) for x, y in zip(xs, ys)]


def _run_batch(tree, rects):
    return batch_filter(
        tree,
        np.array([r.xmin for r in rects]),
        np.array([r.ymin for r in rects]),
        np.array([r.xmax for r in rects]),
        np.array([r.ymax for r in rects]),
    )


def test_candidates_match_scalar_order(tree):
    rects = _windows(tree, 7, 40)
    res = _run_batch(tree, rects)
    assert res.n_queries == len(rects)
    for i, rect in enumerate(rects):
        cands, _, _ = _scalar_visits(tree, rect)
        assert np.array_equal(res.candidates_of(i), cands)


def test_visited_nodes_match_scalar_dfs_preorder(tree):
    rects = _windows(tree, 8, 40)
    res = _run_batch(tree, rects)
    for i, rect in enumerate(rects):
        _, visited, _ = _scalar_visits(tree, rect)
        assert np.array_equal(res.nodes_of(i), visited)


def test_mbr_test_tallies_match_scalar(tree):
    rects = _windows(tree, 9, 40)
    res = _run_batch(tree, rects)
    for i, rect in enumerate(rects):
        _, _, tests = _scalar_visits(tree, rect)
        assert res.mbr_tests[i] == tests


def test_point_queries_as_degenerate_windows(tree):
    rng = np.random.default_rng(10)
    px = rng.uniform(0, 1000, 40)
    py = rng.uniform(0, 1000, 40)
    res = batch_filter(tree, px, py, px, py)
    for i in range(len(px)):
        counter = OpCounter(record_trace=True)
        cands = tree.point_filter(float(px[i]), float(py[i]), counter)
        visited = [a.object_id for a in counter.iter_trace()
                   if a.region == REGION_INDEX]
        assert np.array_equal(res.candidates_of(i), cands)
        assert np.array_equal(res.nodes_of(i), np.asarray(visited, np.int64))
        assert res.mbr_tests[i] == counter.mbr_tests


def test_no_match_window_visits_root_only(tree):
    res = _run_batch(tree, [MBR(5000.0, 5000.0, 6000.0, 6000.0)])
    assert res.candidates_of(0).size == 0
    assert np.array_equal(res.nodes_of(0), np.array([tree.root]))


def test_whole_extent_window_matches_everything(tree):
    res = _run_batch(tree, [MBR(-100.0, -100.0, 1100.0, 1100.0)])
    cands, visited, _ = _scalar_visits(tree, MBR(-100.0, -100.0, 1100.0, 1100.0))
    assert np.array_equal(res.candidates_of(0), cands)
    assert np.array_equal(res.nodes_of(0), visited)
    assert len(res.candidates_of(0)) == len(tree.entry_ids)


def test_empty_workload(tree):
    res = batch_filter(
        tree, np.empty(0), np.empty(0), np.empty(0), np.empty(0)
    )
    assert res.n_queries == 0
    assert res.visited.size == 0
    assert res.cand_ids.size == 0


@pytest.mark.parametrize("capacity", [2, 4, 25])
def test_capacity_sweep(capacity):
    ds = _random_dataset(11, 150)
    t = PackedRTree.build(ds, node_capacity=capacity)
    rects = _windows(t, 12, 15)
    res = _run_batch(t, rects)
    for i, rect in enumerate(rects):
        cands, visited, tests = _scalar_visits(t, rect)
        assert np.array_equal(res.candidates_of(i), cands)
        assert np.array_equal(res.nodes_of(i), visited)
        assert res.mbr_tests[i] == tests
