"""Unit and property tests for the MBR value type."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.spatial.mbr import MBR

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def mbrs(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return MBR(x1, y1, x2, y2)


class TestConstruction:
    def test_valid(self):
        b = MBR(0, 1, 2, 3)
        assert b.as_tuple() == (0, 1, 2, 3)

    def test_degenerate_point_is_legal(self):
        b = MBR.from_point(5.0, -3.0)
        assert b.area() == 0.0
        assert b.contains_point(5.0, -3.0)

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            MBR(1, 0, 0, 1)
        with pytest.raises(ValueError):
            MBR(0, 1, 1, 0)

    def test_from_segment_orders_endpoints(self):
        b = MBR.from_segment(3, 4, 1, 2)
        assert b.as_tuple() == (1, 2, 3, 4)

    def test_union_of_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.union_of([])

    def test_union_of_covers_all(self):
        boxes = [MBR(0, 0, 1, 1), MBR(2, -1, 3, 0.5), MBR(-5, 0, 0, 2)]
        u = MBR.union_of(boxes)
        assert all(u.contains(b) for b in boxes)
        assert u.as_tuple() == (-5, -1, 3, 2)

    def test_iter_yields_tuple_order(self):
        assert list(MBR(1, 2, 3, 4)) == [1, 2, 3, 4]


class TestPredicates:
    def test_intersects_overlapping(self):
        assert MBR(0, 0, 2, 2).intersects(MBR(1, 1, 3, 3))

    def test_intersects_touching_edge(self):
        assert MBR(0, 0, 1, 1).intersects(MBR(1, 0, 2, 1))

    def test_intersects_touching_corner(self):
        assert MBR(0, 0, 1, 1).intersects(MBR(1, 1, 2, 2))

    def test_disjoint(self):
        assert not MBR(0, 0, 1, 1).intersects(MBR(1.01, 0, 2, 1))
        assert not MBR(0, 0, 1, 1).intersects(MBR(0, 1.01, 1, 2))

    def test_contains_point_boundary(self):
        b = MBR(0, 0, 1, 1)
        assert b.contains_point(0, 0)
        assert b.contains_point(1, 1)
        assert not b.contains_point(1.0001, 0.5)

    def test_contains_self(self):
        b = MBR(0, 0, 1, 1)
        assert b.contains(b)

    def test_contains_strict_subset(self):
        assert MBR(0, 0, 10, 10).contains(MBR(1, 1, 2, 2))
        assert not MBR(1, 1, 2, 2).contains(MBR(0, 0, 10, 10))

    @given(mbrs(), mbrs())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(mbrs(), mbrs())
    def test_contains_implies_intersects(self, a, b):
        if a.contains(b):
            assert a.intersects(b)


class TestMeasures:
    def test_area_and_margin(self):
        b = MBR(0, 0, 3, 4)
        assert b.area() == 12
        assert b.margin() == 7
        assert b.center() == (1.5, 2.0)

    def test_union_commutes(self):
        a, b = MBR(0, 0, 1, 1), MBR(2, 2, 3, 3)
        assert a.union(b) == b.union(a)

    @given(mbrs(), mbrs())
    def test_union_contains_operands(self, a, b):
        u = a.union(b)
        assert u.contains(a) and u.contains(b)

    @given(mbrs(), mbrs())
    def test_union_area_superadditive_when_disjoint(self, a, b):
        if not a.intersects(b):
            assert a.union(b).area() >= a.area() + b.area() - 1e-6

    def test_intersection_area(self):
        assert MBR(0, 0, 2, 2).intersection_area(MBR(1, 1, 3, 3)) == 1.0
        assert MBR(0, 0, 1, 1).intersection_area(MBR(5, 5, 6, 6)) == 0.0

    @given(mbrs(), mbrs())
    def test_intersection_area_bounded(self, a, b):
        ia = a.intersection_area(b)
        assert 0 <= ia <= min(a.area(), b.area()) + 1e-9

    def test_expand(self):
        assert MBR(0, 0, 1, 1).expand(1).as_tuple() == (-1, -1, 2, 2)

    def test_expand_negative_raises(self):
        with pytest.raises(ValueError):
            MBR(0, 0, 1, 1).expand(-0.1)


class TestDistances:
    def test_mindist_inside_is_zero(self):
        assert MBR(0, 0, 2, 2).mindist(1, 1) == 0.0

    def test_mindist_axis_aligned(self):
        assert MBR(0, 0, 1, 1).mindist(3, 0.5) == pytest.approx(2.0)
        assert MBR(0, 0, 1, 1).mindist(0.5, -4) == pytest.approx(4.0)

    def test_mindist_corner(self):
        assert MBR(0, 0, 1, 1).mindist(4, 5) == pytest.approx(math.hypot(3, 4))

    @given(mbrs(), coords, coords)
    def test_mindist_le_maxdist(self, b, x, y):
        assert b.mindist_sq(x, y) <= b.maxdist_sq(x, y) + 1e-9

    @given(mbrs(), coords, coords)
    def test_mindist_is_lower_bound_to_corners(self, b, x, y):
        """MINDIST never exceeds the distance to any point of the box —
        spot-check with the four corners and the center."""
        md = b.mindist_sq(x, y)
        pts = [
            (b.xmin, b.ymin), (b.xmin, b.ymax),
            (b.xmax, b.ymin), (b.xmax, b.ymax), b.center(),
        ]
        for px, py in pts:
            d = (px - x) ** 2 + (py - y) ** 2
            assert md <= d + 1e-6 * max(1.0, abs(d))
