"""Figure 10: insufficient client memory — caching vs always-at-server.

Paper shape: with enough spatial proximity (y follow-up queries near each
anchor) the cached client becomes *energy*-cheaper than shipping every query
to the server — beyond y~115 for a 1 MB buffer and y~200 for 2 MB — while
the server stays the *performance* winner across the whole sweep (energy
and performance optimize in opposite directions here).
"""

from __future__ import annotations

from repro.bench.figures import fig10_insufficient_memory
from repro.bench.report import ascii_chart, render_fig10


def test_fig10_insufficient_memory(benchmark, pa_env, save_report):
    rows = benchmark.pedantic(
        fig10_insufficient_memory, args=(pa_env,), rounds=1, iterations=1
    )
    charts = []
    for budget in (1 << 20, 2 << 20):
        pts = [r for r in rows if r.buffer_bytes == budget]
        charts.append(
            ascii_chart(
                {
                    "client": [(r.y, r.client_energy_j) for r in pts],
                    "server": [(r.y, r.server_energy_j) for r in pts],
                },
                title=f"energy (J) vs spatial proximity y — {budget >> 20} MB buffer",
                y_label="J",
            )
        )
    save_report(
        "fig10_insufficient_memory",
        render_fig10(rows, "Figure 10: Insufficient Memory, Range Queries, 11 Mbps")
        + "\n\n" + "\n\n".join(charts),
    )

    def crossover(budget):
        for r in rows:
            if r.buffer_bytes == budget and r.client_energy_j < r.server_energy_j:
                return r.y
        return None

    x1 = crossover(1 << 20)
    x2 = crossover(2 << 20)
    assert x1 is not None and x2 is not None
    assert x2 > x1  # bigger shipment needs more proximity to amortize
    # Server wins performance across the spectrum.
    for r in rows:
        assert r.server_cycles < r.client_cycles
