"""Figure 7: dataset sensitivity — range queries on NYC.

NYC's smaller filter selectivity shrinks the hybrid schemes' message
volumes (the paper: the filter-at-client transmit and the filter-at-server
receive are both lower than on PA), while the Figure 5 orderings persist.
"""

from __future__ import annotations

from repro.bench.figures import fig5_range_queries
from repro.bench.report import render_sweep
from repro.core.schemes import Scheme, SchemeConfig

FC = SchemeConfig(Scheme.FULLY_CLIENT).label
FS_PRESENT = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True).label
B = SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=True).label
C = SchemeConfig(Scheme.FILTER_SERVER_REFINE_CLIENT, data_at_client=True).label


def test_fig7_range_queries_nyc(benchmark, nyc_env, pa_env, save_report):
    sweep = benchmark.pedantic(
        fig5_range_queries, args=(nyc_env,), rounds=1, iterations=1
    )
    save_report(
        "fig7_range_nyc",
        render_sweep(sweep, "Figure 7: Range Queries, NYC, C/S=1/8, 1 km"),
    )
    pa_sweep = fig5_range_queries(pa_env)
    for i in range(len(sweep[B])):
        # Hybrid message legs strictly cheaper than PA's (smaller selectivity).
        assert (
            sweep[B][i].result.energy.nic_tx
            < pa_sweep[B][i].result.energy.nic_tx
        )
        assert (
            sweep[C][i].result.energy.nic_rx
            < pa_sweep[C][i].result.energy.nic_rx
        )
    by_bw = {lab: {c.bandwidth_mbps: c for c in cells} for lab, cells in sweep.items()}
    assert by_bw[FS_PRESENT][2.0].cycles < by_bw[FC][2.0].cycles
