"""Micro-benchmarks of the substrate hot paths.

These are honest pytest-benchmark timings (multiple rounds) of the pieces
that dominate the figure benches' wall clock: Hilbert encoding, packed
bulk-load, the three query traversals, and the D-cache replay.  Useful for
tracking performance regressions in the library itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import QueryEngine
from repro.data.workloads import nn_queries, point_queries, range_queries
from repro.sim.cache import CacheSim
from repro.sim.cpu import ClientCPU
from repro.sim.trace import OpCounter
from repro.spatial.hilbert import hilbert_sort_keys
from repro.spatial.rtree import PackedRTree


@pytest.fixture(scope="module")
def pa_tree(pa_full):
    return PackedRTree.build(pa_full)


@pytest.fixture(scope="module")
def pa_engine(pa_full, pa_tree):
    return QueryEngine(pa_full, pa_tree)


def test_micro_hilbert_encode(benchmark, pa_full):
    cx, cy = pa_full.centers()
    keys = benchmark(hilbert_sort_keys, cx, cy, pa_full.extent)
    assert len(keys) == pa_full.size


def test_micro_bulk_load(benchmark, pa_full):
    tree = benchmark(PackedRTree.build, pa_full)
    assert tree.node_count > 5000


def test_micro_range_filter(benchmark, pa_full, pa_tree):
    rects = [q.rect for q in range_queries(pa_full, 50)]

    def run():
        total = 0
        for rect in rects:
            total += len(pa_tree.range_filter(rect))
        return total

    total = benchmark(run)
    assert total > 0


def test_micro_point_filter(benchmark, pa_full, pa_tree):
    pts = [(q.x, q.y) for q in point_queries(pa_full, 200)]

    def run():
        total = 0
        for x, y in pts:
            total += len(pa_tree.point_filter(x, y))
        return total

    assert benchmark(run) > 0


def test_micro_nearest_neighbor(benchmark, pa_full, pa_tree):
    pts = [(q.x, q.y) for q in nn_queries(pa_full, 100)]

    def run():
        acc = 0
        for x, y in pts:
            acc += pa_tree.nearest_neighbor(x, y)
        return acc

    assert benchmark(run) >= 0


def test_micro_full_query_with_instrumentation(benchmark, pa_full, pa_engine):
    qs = range_queries(pa_full, 20)

    def run():
        n = 0
        for q in qs:
            counter = OpCounter()
            out = pa_engine.answer(q, counter)
            n += len(out.ids)
        return n

    assert benchmark(run) > 0


def test_micro_cache_replay(benchmark, pa_full, pa_engine):
    q = range_queries(pa_full, 1)[0]
    counter = OpCounter()
    pa_engine.answer(q, counter)
    cpu = ClientCPU()

    def run():
        cpu.reset_cache()
        return cpu.compute(counter)

    cost = benchmark(run)
    assert cost.cycles > 0


def test_micro_cache_sim_throughput(benchmark):
    rng = np.random.default_rng(7)
    trace = [(int(a), 32) for a in rng.integers(0, 1 << 20, 20_000)]

    def run():
        c = CacheSim(8 * 1024, 4, 32)
        return c.run_trace(trace)

    hits, misses = benchmark(run)
    # Each 32-byte access at an arbitrary byte address touches 1 or 2 lines.
    assert 20_000 <= hits + misses <= 40_000
