"""Extension bench: pipelined client/server execution (paper future work).

Quantifies the paper's suggestion to "exploit parallelism between client
and server executions": with queries streamed FIFO, the client computes
query i+1 while query i's request is in flight.  The paper's sequential
measurements are conservative exactly by the speedups shown here; energy is
essentially unchanged (the same work happens, just packed tighter).
"""

from __future__ import annotations

from repro.bench.report import render_rows
from repro.constants import BANDWIDTHS_MBPS, MBPS
from repro.core.executor import Policy
from repro.api import Session
from repro.core.pipeline import price_pipelined_workload
from repro.core.schemes import Scheme, SchemeConfig
from repro.data.workloads import range_queries

CONFIGS = (
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
    SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=True),
    SchemeConfig(Scheme.FILTER_SERVER_REFINE_CLIENT, data_at_client=True),
)


def test_ext_pipelining(benchmark, pa_env, pa_full, save_report):
    qs = range_queries(pa_full, 100)
    session = Session(pa_env)
    all_plans = {cfg.label: session.plan(qs, cfg) for cfg in CONFIGS}

    def run():
        rows = []
        for label, plans in all_plans.items():
            for bw in (2.0, 11.0):
                policy = Policy().with_bandwidth(bw * MBPS)
                pipe = price_pipelined_workload(plans, pa_env, policy)
                seq = session.price(plans, policy, engine="scalar")[0]
                rows.append(
                    {
                        "scheme": label,
                        "Mbps": bw,
                        "sequential_s": f"{seq.wall_seconds:.3f}",
                        "pipelined_s": f"{pipe.wall_seconds:.3f}",
                        "speedup": f"{pipe.speedup:.2f}x",
                        "energy_delta": f"{pipe.energy.total() / seq.energy.total() - 1:+.1%}",
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_pipelining",
        render_rows(rows, "Extension: pipelined vs sequential execution (100 range queries, PA)"),
    )
    # Every communication scheme must gain and stay energy-neutral-ish.
    for r in rows:
        assert float(r["speedup"].rstrip("x")) >= 1.0
        assert abs(float(r["energy_delta"].rstrip("%"))) < 25.0
    # At least one configuration shows a solid (>1.3x) win.
    assert any(float(r["speedup"].rstrip("x")) > 1.3 for r in rows)
