"""Figure 5: range queries on PA — the paper's headline result.

Paper shape: work partitioning pays for range queries.  Fully-at-server
with data present beats fully-at-client on cycles already at 2 Mbps but
needs more than 6 Mbps to win on energy; among the hybrids, performance
picks filter-at-client/refine-at-server while energy picks
filter-at-server/refine-at-client.
"""

from __future__ import annotations

from repro.bench.figures import fig5_range_queries
from repro.bench.report import render_sweep
from repro.core.schemes import Scheme, SchemeConfig

FC = SchemeConfig(Scheme.FULLY_CLIENT).label
FS_PRESENT = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True).label
B = SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=True).label
C = SchemeConfig(Scheme.FILTER_SERVER_REFINE_CLIENT, data_at_client=True).label


def test_fig5_range_queries_pa(benchmark, pa_env, save_report):
    sweep = benchmark.pedantic(
        fig5_range_queries, args=(pa_env,), rounds=1, iterations=1
    )
    save_report(
        "fig5_range_pa",
        render_sweep(sweep, "Figure 5: Range Queries, PA, C/S=1/8, 1 km"),
    )
    by_bw = {lab: {c.bandwidth_mbps: c for c in cells} for lab, cells in sweep.items()}
    # Cycles: fully-at-server (data present) wins at 2 Mbps already.
    assert by_bw[FS_PRESENT][2.0].cycles < by_bw[FC][2.0].cycles
    # Energy: it takes over 6 Mbps for the same scheme to win on energy.
    assert by_bw[FS_PRESENT][6.0].energy_j > by_bw[FC][6.0].energy_j
    assert by_bw[FS_PRESENT][11.0].energy_j < by_bw[FC][11.0].energy_j
    # The two metrics pick different hybrid winners.
    for bw in (4.0, 6.0, 8.0, 11.0):
        assert by_bw[B][bw].cycles < by_bw[C][bw].cycles
        assert by_bw[C][bw].energy_j < by_bw[B][bw].energy_j
