"""Figure 9: energy at 100 m client/base-station distance.

Transmit power drops from ~3 W to ~1 W at 100 m, so the transmit-heavy
schemes (filter-at-client foremost) become far more energy-competitive;
cycles are unaffected.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import fig5_range_queries, fig9_distance
from repro.bench.report import render_sweep
from repro.core.schemes import Scheme, SchemeConfig

B = SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=True).label
FS = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True).label


def test_fig9_distance_100m(benchmark, pa_env, save_report):
    sweep_near = benchmark.pedantic(
        fig9_distance, args=(pa_env,), kwargs={"distance_m": 100.0},
        rounds=1, iterations=1,
    )
    save_report(
        "fig9_range_pa_100m",
        render_sweep(
            sweep_near,
            "Figure 9: Range Queries, PA, 100 m transmit distance (energy)",
            metric="energy",
        ),
    )
    sweep_far = fig5_range_queries(pa_env)
    for label in (B, FS):
        for near, far in zip(sweep_near[label], sweep_far[label]):
            assert near.result.energy.nic_tx == pytest.approx(
                far.result.energy.nic_tx * 1.0891 / 3.0891, rel=1e-6
            )
            assert near.cycles == pytest.approx(far.cycles, rel=1e-9)
