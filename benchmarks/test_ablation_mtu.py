"""Ablation: MTU sensitivity.

Smaller frames mean proportionally more header bytes on the wire and more
per-frame protocol work at the client.  The paper fixes a 1500-byte MTU;
this bench shows how much that choice matters for the receive-heavy
fully-at-server (data absent) execution.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.report import render_rows
from repro.constants import DEFAULT_NETWORK, MBPS
from repro.core.executor import Policy
from repro.api import Session
from repro.core.schemes import Scheme, SchemeConfig
from repro.data.workloads import range_queries

FS_ABSENT = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False)
MTUS = (296, 576, 1500, 9000)


def test_ablation_mtu(benchmark, pa_env, pa_full, save_report):
    qs = range_queries(pa_full, 100)
    session = Session(pa_env)
    plans = session.plan(qs, FS_ABSENT)

    def run():
        rows = []
        for mtu in MTUS:
            net = replace(DEFAULT_NETWORK, mtu_bytes=mtu, bandwidth_bps=2 * MBPS)
            r = session.price(plans, Policy(network=net), engine="scalar")[0]
            rows.append(
                {
                    "mtu_bytes": mtu,
                    "energy_J": f"{r.energy.total():.4f}",
                    "cycles": f"{r.cycles.total():.4e}",
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_mtu",
        render_rows(rows, "Ablation: MTU sweep (fully at server, data absent, 2 Mbps)"),
    )
    # Bigger frames are strictly cheaper on both metrics.
    energies = [float(r["energy_J"]) for r in rows]
    cycles = [float(r["cycles"]) for r in rows]
    assert energies == sorted(energies, reverse=True)
    assert cycles == sorted(cycles, reverse=True)
    # But the 296 -> 1500 difference stays under 25%: packetization is a
    # second-order effect next to payload volume.
    assert energies[0] < 1.25 * energies[2]
