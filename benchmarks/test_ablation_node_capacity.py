"""Ablation: R-tree node capacity.

Fanout trades index size against traversal behaviour: small nodes mean a
deep tree with many visits, huge nodes mean scanning long entry runs.  This
bench sweeps the capacity and reports index size, tree height, and the
fully-at-client cost of the standard range workload.
"""

from __future__ import annotations

from repro.bench.report import render_rows
from repro.core.executor import Environment, Policy, plan_query, price_plan
from repro.core.schemes import Scheme, SchemeConfig
from repro.data.workloads import range_queries
from repro.spatial.rtree import PackedRTree

FC = SchemeConfig(Scheme.FULLY_CLIENT)
CAPACITIES = (5, 10, 25, 50, 100, 200)


def test_ablation_node_capacity(benchmark, pa_full, save_report):
    qs = range_queries(pa_full, 30)

    def run():
        rows = []
        for cap in CAPACITIES:
            tree = PackedRTree.build(pa_full, node_capacity=cap)
            env = Environment.create(pa_full, tree=tree)
            total_c = 0.0
            nodes = 0
            for q in qs:
                plan = plan_query(q, FC, env)
                r = price_plan(plan, env, Policy())
                total_c += r.cycles.total()
            rows.append(
                {
                    "capacity": cap,
                    "height": tree.height,
                    "index_MB": f"{tree.index_bytes() / 1e6:.2f}",
                    "client_cycles": f"{total_c:.3e}",
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_node_capacity",
        render_rows(rows, "Ablation: node capacity sweep (fully at client, 30 range queries)"),
    )
    # Height decreases monotonically with fanout.
    heights = [r["height"] for r in rows]
    assert heights == sorted(heights, reverse=True)
    # The default (25) must not be more than 40% off the best capacity
    # measured — i.e. it sits on the flat part of the curve.
    cycles = {r["capacity"]: float(r["client_cycles"]) for r in rows}
    assert cycles[25] < 1.4 * min(cycles.values())
