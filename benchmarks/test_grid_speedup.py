"""Batched grid pricer vs the scalar oracle on the Figure 5 sweep.

The acceptance bar for the batched runtime: pricing the fig5 bandwidth
sweep (six Table 1 configurations x five bandwidths over a 100-query range
workload on full-scale PA) through :func:`repro.core.gridrun.price_grid`
must run at least 3x faster wall-clock than the per-step scalar walk, with
both engines timed through the run-ledger and agreeing to 1e-9.
"""

from __future__ import annotations

from repro.api import Session
from repro.bench.report import summarize_ledger
from repro.core.executor import Policy
from repro.core.gridrun import RunLedger
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS
from repro.data.workloads import DEFAULT_RUNS, range_queries

SPEEDUP_FLOOR = 3.0


def test_fig5_sweep_batched_speedup(pa_env, save_report, save_json):
    qs = range_queries(pa_env.dataset, DEFAULT_RUNS)
    policies = Policy.sweep()
    ledger = RunLedger()
    session = Session(pa_env, ledger=ledger)

    # Plan once up front so both engines price identical cached plans and
    # the ledger's price events time pricing alone.
    for cfg in ADEQUATE_MEMORY_CONFIGS:
        session.plan(qs, cfg)

    batched = session.run(
        qs, schemes=ADEQUATE_MEMORY_CONFIGS, policies=policies
    )
    scalar = session.run(
        qs, schemes=ADEQUATE_MEMORY_CONFIGS, policies=policies,
        engine="scalar",
    )

    batched_s = sum(
        r["seconds"]
        for r in ledger.records
        if r["event"] == "price" and r["engine"] == "batched"
    )
    scalar_s = sum(
        r["seconds"]
        for r in ledger.records
        if r["event"] == "price" and r["engine"] == "scalar"
    )
    speedup = scalar_s / batched_s
    worst = max(
        abs(b.energy_j - s.energy_j) / s.energy_j
        for b, s in zip(batched, scalar)
    )
    ledger.record(
        "speedup",
        label="fig5 bandwidth sweep (full PA)",
        batched_s=batched_s,
        scalar_s=scalar_s,
        speedup=speedup,
        max_rel_err=worst,
    )
    save_report("grid_speedup", summarize_ledger(ledger.records))
    save_json(
        "BENCH_grid",
        {
            "benchmark": "grid_speedup",
            "dataset": pa_env.dataset.name,
            "sweep": "fig5",
            "n_queries": len(qs),
            "n_configs": len(ADEQUATE_MEMORY_CONFIGS),
            "scalar_seconds": scalar_s,
            "batched_seconds": batched_s,
            "speedup": speedup,
            "max_rel_err": worst,
        },
    )

    assert worst < 1e-9
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched pricing only {speedup:.1f}x faster "
        f"({batched_s:.3f}s vs {scalar_s:.3f}s scalar)"
    )
