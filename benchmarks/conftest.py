"""Shared fixtures for the figure-reproduction benchmarks.

Full-scale datasets and environments are built once per session; each bench
regenerates one paper table/figure, times it with pytest-benchmark, prints
the paper-shaped table and archives it under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.bench.provenance import stamp_record
from repro.core.executor import Environment
from repro.data import tiger

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def pa_full():
    """The full 139 006-segment PA dataset."""
    return tiger.pa_dataset(scale=1.0, seed=1)


@pytest.fixture(scope="session")
def nyc_full():
    """The full 38 778-segment NYC dataset."""
    return tiger.nyc_dataset(scale=1.0, seed=2)


@pytest.fixture(scope="session")
def pa_env(pa_full) -> Environment:
    """Environment over full PA (benches must reset caches per workload —
    the sweep harness does this automatically)."""
    return Environment.create(pa_full)


@pytest.fixture(scope="session")
def nyc_env(nyc_full) -> Environment:
    """Environment over full NYC."""
    return Environment.create(nyc_full)


@pytest.fixture(scope="session")
def save_report():
    """Write a rendered table to benchmarks/results/<name>.txt and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save


@pytest.fixture(scope="session")
def save_json():
    """Write a machine-readable record to benchmarks/results/<name>.json.

    Every record is stamped with a ``provenance`` block (git SHA, UTC
    timestamp, platform, Python/NumPy versions) so archived numbers stay
    attributable across PRs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, record: dict) -> pathlib.Path:
        path = RESULTS_DIR / f"{name}.json"
        with path.open("w") as fh:
            json.dump(stamp_record(record), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    return _save
