"""Figure 6: nearest-neighbor queries on PA.

The NN search has no separate filtering/refinement phases, so only the two
'fully at' executions apply; with its tiny selectivity it behaves like the
point query — fully-at-client wins both metrics at every bandwidth.
"""

from __future__ import annotations

from repro.bench.figures import fig6_nn_queries
from repro.bench.report import render_sweep
from repro.core.schemes import Scheme, SchemeConfig

FC = SchemeConfig(Scheme.FULLY_CLIENT).label
FS = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True).label


def test_fig6_nn_queries(benchmark, pa_env, save_report):
    sweep = benchmark.pedantic(
        fig6_nn_queries, args=(pa_env,), rounds=1, iterations=1
    )
    save_report(
        "fig6_nn_pa",
        render_sweep(sweep, "Figure 6: Nearest Neighbor Queries, PA, C/S=1/8, 1 km"),
    )
    fc = sweep[FC][0]
    for cell in sweep[FS]:
        assert cell.energy_j > fc.energy_j
        assert cell.cycles > fc.cycles
