"""Ablation: Hilbert-sorted packing vs unsorted bulk load.

Why packed R-trees sort by Hilbert value (Kamel & Faloutsos): without the
sort, leaf MBRs sprawl across the extent, filtering visits many more nodes,
and the client pays for it in cycles and energy.  This bench builds both
trees over the full PA dataset and compares fully-at-client range queries.
"""

from __future__ import annotations

from repro.bench.report import render_rows
from repro.core.executor import Environment, Policy, plan_query, price_plan
from repro.core.schemes import Scheme, SchemeConfig
from repro.data.workloads import range_queries
from repro.spatial.rtree import PackedRTree
from repro.spatial.stats import tree_stats

FC = SchemeConfig(Scheme.FULLY_CLIENT)


def test_ablation_hilbert_packing(benchmark, pa_full, save_report):
    qs = range_queries(pa_full, 50)

    def run():
        rows = []
        for sort in (True, False):
            tree = PackedRTree.build(pa_full, sort=sort)
            env = Environment.create(pa_full, tree=tree)
            policy = Policy()
            total_e = total_c = nodes = 0.0
            for q in qs:
                plan = plan_query(q, FC, env)
                r = price_plan(plan, env, policy)
                total_e += r.energy.total()
                total_c += r.cycles.total()
            stats = tree_stats(tree)
            rows.append(
                {
                    "packing": "hilbert" if sort else "unsorted",
                    "leaf_area_ratio": f"{stats.leaf_area_ratio:.2f}",
                    "energy_J": f"{total_e:.4f}",
                    "cycles": f"{total_c:.3e}",
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_hilbert",
        render_rows(rows, "Ablation: Hilbert-sorted vs unsorted packing (fully at client, 50 range queries)"),
    )
    hilbert, unsorted_ = rows
    assert float(hilbert["cycles"]) < float(unsorted_["cycles"])
    assert float(hilbert["energy_J"]) < float(unsorted_["energy_J"])
    assert float(hilbert["leaf_area_ratio"]) < float(unsorted_["leaf_area_ratio"])
