"""Tables 2-4: NIC power states and the client/server configurations.

Prints the configuration tables the simulation substrate instantiates and
times the NIC state machine on a representative activity script (the only
measurable work these tables drive directly).
"""

from __future__ import annotations

from repro.bench.report import render_rows
from repro.constants import DEFAULT_CLIENT, DEFAULT_NIC_POWER, DEFAULT_SERVER
from repro.sim.nic import NIC


def test_table2_nic_states(benchmark, save_report):
    t = DEFAULT_NIC_POWER

    def exercise_nic():
        nic = NIC(power_table=t, distance_m=1000.0)
        for _ in range(100):
            nic.transmit(8 * 330, 2e6)
            nic.idle(1e-4)
            nic.receive(8 * 7000, 2e6)
            nic.sleep(1e-3)
        return nic

    nic = benchmark(exercise_nic)
    assert nic.total_energy_j() > 0
    rows = [
        {"state": "TRANSMIT", "power_mw": f"{t.transmit_1km_w * 1e3:.1f} @1km / {t.transmit_100m_w * 1e3:.1f} @100m", "exit_latency": "-"},
        {"state": "RECEIVE", "power_mw": f"{t.receive_w * 1e3:.0f}", "exit_latency": "-"},
        {"state": "IDLE", "power_mw": f"{t.idle_w * 1e3:.0f}", "exit_latency": "0 s"},
        {"state": "SLEEP", "power_mw": f"{t.sleep_w * 1e3:.1f}", "exit_latency": f"{t.sleep_exit_latency_s * 1e6:.0f} us"},
    ]
    save_report("table2_nic_states", render_rows(rows, "Table 2: NIC Power States"))


def test_tables3_4_machine_configs(benchmark, save_report):
    c, s = DEFAULT_CLIENT, DEFAULT_SERVER

    def snapshot():
        return (c.clock_hz, s.clock_hz)

    benchmark(snapshot)
    client_rows = [
        {"parameter": "Clock", "value": f"{c.clock_hz / 1e6:.0f} MHz (MhzS/8 default; /4 /2 /1 swept)"},
        {"parameter": "Organization", "value": "single-issue 5-stage pipelined integer datapath"},
        {"parameter": "I-Cache", "value": f"{c.icache_bytes // 1024} KB {c.cache_assoc}-way, {c.cache_line_bytes} B lines"},
        {"parameter": "D-Cache", "value": f"{c.dcache_bytes // 1024} KB {c.cache_assoc}-way, {c.cache_line_bytes} B lines"},
        {"parameter": "Cache hit latency", "value": f"{c.cache_hit_cycles} cycle"},
        {"parameter": "Memory", "value": f"{c.memory_bytes // (1 << 20)} MB, {c.memory_latency_cycles}-cycle latency"},
        {"parameter": "Supply voltage", "value": f"{c.supply_voltage} V (0.35 micron)"},
    ]
    server_rows = [
        {"parameter": "Clock", "value": f"{s.clock_hz / 1e6:.0f} MHz"},
        {"parameter": "Issue width", "value": f"{s.issue_width} (effective IPC {s.effective_ipc})"},
        {"parameter": "Memory", "value": f"{s.memory_bytes // (1 << 20)} MB"},
        {"parameter": "L1 model", "value": "32 KB 2-way 64 B lines; misses cost an L2 hit"},
    ]
    save_report(
        "table3_client_config",
        render_rows(client_rows, "Table 3: Client Configuration"),
    )
    save_report(
        "table4_server_config",
        render_rows(server_rows, "Table 4: Server Configuration"),
    )
