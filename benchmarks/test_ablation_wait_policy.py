"""Ablation: busy-wait vs blocking receive (paper section 5.2).

The paper reports that blocking the CPU during receives (waking on the NIC
interrupt) "cut the energy consumption in this operation by more than half"
versus spinning on the message-queue state, and uses blocking throughout
its results.  This bench reproduces that comparison on the fully-at-server
range workload, where the client spends most of its time waiting.
"""

from __future__ import annotations

from repro.bench.report import render_rows
from repro.constants import BANDWIDTHS_MBPS, MBPS
from repro.core.executor import Policy
from repro.api import Session
from repro.core.schemes import Scheme, SchemeConfig
from repro.data.workloads import range_queries

FS_ABSENT = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False)


def test_ablation_wait_policy(benchmark, pa_env, pa_full, save_report):
    qs = range_queries(pa_full, 100)
    session = Session(pa_env)
    plans = session.plan(qs, FS_ABSENT)

    def run():
        rows = []
        for bw in BANDWIDTHS_MBPS:
            block = session.price(
                plans, Policy(busy_wait=False).with_bandwidth(bw * MBPS),
                engine="scalar",
            )[0]
            spin = session.price(
                plans, Policy(busy_wait=True).with_bandwidth(bw * MBPS),
                engine="scalar",
            )[0]
            rows.append(
                {
                    "bandwidth_mbps": bw,
                    "blocking_proc_J": f"{block.energy.processor:.4f}",
                    "busywait_proc_J": f"{spin.energy.processor:.4f}",
                    "proc_energy_saving": f"{1 - block.energy.processor / spin.energy.processor:.1%}",
                    "cycles_identical": block.cycles.total() == spin.cycles.total(),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_wait_policy",
        render_rows(rows, "Ablation: blocking vs busy-wait receive (fully at server, data absent)"),
    )
    # Blocking must cut the communication-time processor energy by >half.
    for r in rows:
        assert float(r["proc_energy_saving"].rstrip("%")) > 50.0
        assert r["cycles_identical"]
