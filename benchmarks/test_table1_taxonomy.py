"""Table 1: the work-partitioning and data-placement taxonomy.

Regenerates the taxonomy table from :mod:`repro.core.schemes` and times the
validation machinery (trivially fast; the table itself is the artifact).
"""

from __future__ import annotations

from repro.bench.report import render_rows
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, table1_rows


def test_table1_taxonomy(benchmark, save_report):
    rows = benchmark(table1_rows)
    assert len(rows) == 8
    save_report("table1_taxonomy", render_rows(rows, "Table 1: Work Partitioning and Data Placement Choices"))
    # Cross-check: the executable configs cover the adequate-memory rows.
    assert len(ADEQUATE_MEMORY_CONFIGS) == 6
