"""Extension bench: index-structure comparison (reference [2]).

The paper adopts its packed R-tree from a prior VLDB 2001 study that
compared spatial access methods — PMR quadtrees, packed R-trees, buddy
trees — for memory-resident data on energy and performance.  This bench
reproduces that comparison for all three structures: fully-at-client
execution of the three query workloads, priced by the same client CPU
model, plus the structural numbers (index size, replication).

Run at 30% dataset scale: the PMR build is a Python-loop insertion
(O(n * depth) exact segment/cell tests), and the comparison's per-query
ratios are scale-stable.
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import render_rows
from repro.data import tiger
from repro.data.workloads import nn_queries, point_queries, range_queries
from repro.sim.cpu import ClientCPU
from repro.sim.trace import OpCounter
from repro.spatial import bruteforce as bf
from repro.spatial import vecgeom
from repro.spatial.quadtree import PMRQuadtree
from repro.spatial.rtree import PackedRTree

SCALE = 0.3
N_QUERIES = 50


def _price_fully_client(index, ds, queries, kind):
    """Filter + refine (or NN) every query on ``index``; price on a fresh
    client CPU; return (energy_J, cycles, answers_hash)."""
    cpu = ClientCPU()
    total_energy = total_cycles = 0.0
    answer_check = 0
    for q in queries:
        counter = OpCounter()
        if kind == "nn":
            ids = index.nearest_neighbors(q.x, q.y, 1, counter)
        else:
            if kind == "range":
                cand = index.range_filter(q.rect, counter)
            else:
                cand = index.point_filter(q.x, q.y, counter)
            # Shared refinement (identical for both indexes).
            cand = np.asarray(cand, dtype=np.int64)
            for seg_id in cand:
                counter.refine_candidate(int(seg_id), ds.costs.segment_record_bytes)
            if cand.size:
                x1, y1 = ds.x1[cand], ds.y1[cand]
                x2, y2 = ds.x2[cand], ds.y2[cand]
                if kind == "range":
                    counter.range_refine_tests += int(cand.size)
                    mask = vecgeom.segments_intersect_rect(x1, y1, x2, y2, q.rect)
                else:
                    counter.point_refine_tests += int(cand.size)
                    mask = vecgeom.segments_contain_point(
                        q.x, q.y, x1, y1, x2, y2, q.eps
                    )
                ids = cand[mask]
            else:
                ids = cand
            counter.results_produced += int(ids.size)
        cost = cpu.compute(counter)
        total_energy += cost.energy_j
        total_cycles += cost.cycles
        answer_check += int(np.sort(ids).sum())
    return total_energy, total_cycles, answer_check


def test_ext_index_structure_comparison(benchmark, save_report):
    from repro.spatial.buddytree import BuddyTree

    ds = tiger.pa_dataset(scale=SCALE)
    indexes = {
        "rtree": PackedRTree.build(ds),
        "pmr": PMRQuadtree(ds),
        "buddy": BuddyTree(ds),
    }
    workloads = {
        "point": point_queries(ds, N_QUERIES),
        "range": range_queries(ds, N_QUERIES),
        "nn": nn_queries(ds, N_QUERIES),
    }

    def run():
        rows = []
        for kind, qs in workloads.items():
            row = {"workload": kind}
            hashes = {}
            for name, index in indexes.items():
                e, c, h = _price_fully_client(index, ds, qs, kind)
                row[f"{name}_energy_mJ"] = f"{e * 1e3:.3f}"
                row[f"{name}_cycles"] = f"{c:.3e}"
                hashes[name] = h
            row["same_answers"] = (kind == "nn") or (
                len(set(hashes.values())) == 1
            )
            rows.append(row)
        rtree, qtree, btree = indexes["rtree"], indexes["pmr"], indexes["buddy"]
        rows.append(
            {
                "workload": "(structure)",
                "rtree_energy_mJ": f"index {rtree.index_bytes() / 1e6:.2f} MB",
                "pmr_energy_mJ": f"index {qtree.index_bytes() / 1e6:.2f} MB",
                "buddy_energy_mJ": f"index {btree.index_bytes() / 1e6:.2f} MB",
                "rtree_cycles": "replication 1.00",
                "pmr_cycles": f"replication {qtree.replication_factor():.2f}",
                "buddy_cycles": "replication 1.00",
                "same_answers": "-",
            }
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_index_compare",
        render_rows(
            rows,
            f"Extension: packed R-tree vs PMR quadtree vs buddy tree "
            f"(fully at client, PA x{SCALE})",
        ),
    )
    # Point/range answers identical across all three indexes (NN compared
    # by distance in the unit tests; hash equality can differ on ties).
    for r in rows[:2]:
        assert r["same_answers"] is True
    # PMR replication makes its index strictly larger than the others.
    qtree = indexes["pmr"]
    assert qtree.index_bytes() > indexes["rtree"].index_bytes()
    assert qtree.index_bytes() > indexes["buddy"].index_bytes()
    # All three land within an order of magnitude on every workload — the
    # [2] study's conclusion that structure choice shifts, but does not
    # transform, client-side cost.
    for r in rows[:3]:
        base = float(r["rtree_cycles"])
        for name in ("pmr", "buddy"):
            ratio = float(r[f"{name}_cycles"]) / base
            assert 0.1 < ratio < 10.0, (r["workload"], name, ratio)
