"""Figure 4: point queries on PA — energy and cycles vs bandwidth.

Paper shape: the communication cost of even one small request/response
round-trip dwarfs the point query's tiny computation, so every partitioned
scheme loses to fully-at-client on both metrics at every bandwidth, and the
partitioned schemes are nearly indistinguishable from each other.
"""

from __future__ import annotations

from repro.bench.figures import POINT_NN_CONFIGS, fig4_point_queries
from repro.bench.report import render_sweep
from repro.core.schemes import Scheme


def test_fig4_point_queries(benchmark, pa_env, save_report):
    sweep = benchmark.pedantic(
        fig4_point_queries, args=(pa_env,), rounds=1, iterations=1
    )
    save_report(
        "fig4_point_pa",
        render_sweep(sweep, "Figure 4: Point Queries, PA, C/S=1/8, 1 km"),
    )
    fc_label = POINT_NN_CONFIGS[0].label
    fc_energy = sweep[fc_label][0].energy_j
    fc_cycles = sweep[fc_label][0].cycles
    for cfg in POINT_NN_CONFIGS[1:]:
        for cell in sweep[cfg.label]:
            assert cell.energy_j > fc_energy
            assert cell.cycles > fc_cycles
