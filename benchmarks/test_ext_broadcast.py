"""Extension bench: broadcast vs on-demand delivery (paper future work,
modeled on reference [15] — 'Energy Efficient Indexing on Air').

The paper's related-work section frames broadcast for "some piece of
information that is widely shared ... (and the amount of information to be
disseminated is not too large)".  So the realistic scenario is a **hot
region**: the server cyclically airs a popular neighbourhood (downtown, an
event area) while clients browse inside it.  Clients never key their
transmitter; with the air index they sleep to their slot.

This bench builds a ~150 KB hot region from the PA atlas, fires a focused
range-query workload inside it, and compares per-client energy/latency of:

* on-demand fully-at-server (each query a round trip),
* hot-region broadcast with the air index (sleep discipline),
* hot-region broadcast without it (idle-listen),

across chunk granularities, at the paper's 2 Mbps / 1 km operating point
(where the 3 W transmitter makes on-demand requests expensive).  A second
series scales the whole dataset instead of the hot region, showing where
broadcast stops paying — the "not too large" caveat, quantified.
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import render_rows
from repro.constants import MBPS
from repro.core.broadcast import BroadcastClient, BroadcastSchedule
from repro.core.executor import Environment, Policy
from repro.api import Session
from repro.core.queries import RangeQuery
from repro.core.schemes import Scheme, SchemeConfig
from repro.data.workloads import proximity_sequence
from repro.spatial.extract import coverage_rect, extract_range
from repro.spatial.mbr import MBR

ON_DEMAND = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False)
HOT_REGION_BYTES = 150 * 1024


def _hot_region_env(pa_env):
    """A sub-environment over a popular ~150 KB neighbourhood, plus the
    coverage rectangle inside which broadcast answers are provably complete."""
    master = pa_env.dataset
    i = master.size // 2
    ax = float(master.x1[i] + master.x2[i]) / 2.0
    ay = float(master.y1[i] + master.y2[i]) / 2.0
    seed_rect = MBR(ax - 500, ay - 500, ax + 500, ay + 500)
    cands = pa_env.tree.range_filter(seed_rect)
    ext = extract_range(pa_env.tree, cands, ax, ay, HOT_REGION_BYTES)
    assert ext.fits
    cov = coverage_rect(pa_env.tree, seed_rect, ext.entry_lo, ext.entry_hi)
    sub = master.subset(ext.global_ids, name="PA-hot")
    return Environment.create(sub), cov, ext.global_ids


def _workload_inside(master, cov, n=60, seed=43):
    """Small browse windows strictly inside the covered hot region."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        w = cov.width * rng.uniform(0.05, 0.2)
        h = cov.height * rng.uniform(0.05, 0.2)
        x = rng.uniform(cov.xmin, cov.xmax - w)
        y = rng.uniform(cov.ymin, cov.ymax - h)
        out.append(RangeQuery(MBR(x, y, x + w, y + h)))
    return out


def test_ext_broadcast_hot_region(benchmark, pa_env, pa_full, save_report):
    policy = Policy().with_bandwidth(2 * MBPS)
    hot_env, cov, hot_ids = _hot_region_env(pa_env)
    qs = _workload_inside(pa_full, cov)
    session = Session(pa_env)
    hot_session = Session(hot_env)
    on_demand_plans = session.plan(qs, ON_DEMAND)

    def run():
        rows = []
        od = session.price(on_demand_plans, policy, engine="scalar")[0]
        rows.append(
            {
                "delivery": "on-demand (fully at server)",
                "chunks": "-",
                "energy_J": f"{od.energy.total():.4f}",
                "tx_J": f"{od.energy.nic_tx:.4f}",
                "latency_s": f"{od.wall_seconds:.2f}",
                "receptions": len(qs),
            }
        )
        for n_chunks in (4, 16, 64):
            sched = BroadcastSchedule(
                hot_env, n_chunks=n_chunks, network=policy.network
            )
            variants = (
                ("tune per query (air index)", dict(air_index=True)),
                ("tune per query (no index)", dict(air_index=False)),
                ("tune once + cache chunks", dict(air_index=True, cache_chunks=True)),
            )
            for label, kwargs in variants:
                client = BroadcastClient(sched, **kwargs)
                plans = client.plan_workload(qs, seed=41)
                r = hot_session.price(plans, policy, engine="scalar")[0]
                rows.append(
                    {
                        "delivery": "broadcast: " + label,
                        "chunks": n_chunks,
                        "energy_J": f"{r.energy.total():.4f}",
                        "tx_J": f"{r.energy.nic_tx:.4f}",
                        "latency_s": f"{r.wall_seconds:.2f}",
                        "receptions": client.receptions,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_broadcast",
        render_rows(
            rows,
            "Extension: hot-region broadcast vs on-demand "
            f"(~{HOT_REGION_BYTES // 1024} KB region, 60 focused range queries, 2 Mbps, 1 km)",
        ),
    )
    # Broadcast never transmits.
    for r in rows[1:]:
        assert float(r["tx_J"]) == 0.0
    # Tune-once-and-cache broadcast beats on-demand on energy: one slot
    # wait amortized over the whole browse session, zero transmit.
    od_energy = float(rows[0]["energy_J"])
    cached = [r for r in rows if "cache" in r["delivery"]]
    assert min(float(r["energy_J"]) for r in cached) < od_energy
    # At coarse/medium granularity a handful of receptions serves the whole
    # session; too-fine chunks cannot cover the browse area and degenerate
    # to per-query tuning (visible in the table — a finding in itself).
    assert min(r["receptions"] for r in cached) < len(on_demand_plans) / 4
    # The air index strictly beats idle listening at equal granularity
    # (per-query tuning, where the wait discipline dominates).
    by_key = {(r["delivery"], r["chunks"]): float(r["energy_J"]) for r in rows[1:]}
    for n_chunks in (4, 16, 64):
        assert (
            by_key[("broadcast: tune per query (air index)", n_chunks)]
            < by_key[("broadcast: tune per query (no index)", n_chunks)]
        )


def test_ext_broadcast_answers_complete(pa_env, pa_full, benchmark):
    """Broadcast answers inside the coverage rectangle equal the master
    oracle's (the correctness side of the hot-region construction)."""
    from repro.spatial import bruteforce as bf

    hot_env, cov, hot_ids = _hot_region_env(pa_env)
    sched = BroadcastSchedule(hot_env, n_chunks=8)
    client = BroadcastClient(sched)
    qs = _workload_inside(pa_full, cov, n=20, seed=47)

    def run():
        checked = 0
        for q in qs:
            plan = client.plan(q, phase_s=0.2)
            got = np.sort(hot_ids[plan.answer_ids])
            want = np.sort(bf.range_query(pa_full, q.rect))
            assert np.array_equal(got, want)
            checked += 1
        return checked

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 20
