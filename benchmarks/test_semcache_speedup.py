"""Semantic candidate cache vs uncached planning on the locality workload.

The acceptance bar for the semantic cache (this PR's tentpole gate): on
the locality-skewed browse workload over full-scale PA — drifting hot
region, nested zooms, back-navigation repeats — a fresh
:class:`SemanticCache` must cut charged R-tree node visits by at least
**30%** versus ``semantic_cache=None`` while leaving every answer
bit-identical, and the priced client energy under the fully-client scheme
(where the client pays for all filter work) must measurably drop.

The machine-readable record lands in
``benchmarks/results/BENCH_semcache.json``.
"""

from __future__ import annotations

import numpy as np

from repro.api import Session
from repro.core.batchplan import compute_query_phases
from repro.core.executor import Policy
from repro.core.schemes import Scheme, SchemeConfig
from repro.core.semcache import SemanticCache, compute_query_phases_semantic
from repro.data.workloads import locality_workload

NODE_REDUCTION_FLOOR = 0.30

FC = SchemeConfig(Scheme.FULLY_CLIENT)


def test_locality_workload_semcache_speedup(pa_env, save_report, save_json):
    queries = locality_workload(pa_env.dataset, 40, 3, seed=31)
    policy = Policy()

    pa_env.reset_caches()
    uncached = compute_query_phases(pa_env, queries)
    nodes_uncached = sum(
        int(qp.filter_trace.counter.nodes_visited) for qp in uncached
    )
    cache = SemanticCache(4096)
    pa_env.reset_caches()
    semantic, verdicts = compute_query_phases_semantic(
        pa_env, queries, cache
    )
    nodes_semantic = sum(
        int(qp.filter_trace.counter.nodes_visited) for qp in semantic
    )
    answers_equal = all(
        np.array_equal(a.answer_ids, b.answer_ids)
        for a, b in zip(semantic, uncached)
    )
    node_reduction = 1.0 - nodes_semantic / nodes_uncached

    base_row = Session(pa_env).run(
        queries, schemes=FC, policies=policy
    ).rows[0]
    sem_row = Session(pa_env, semantic_cache=SemanticCache(4096)).run(
        queries, schemes=FC, policies=policy
    ).rows[0]
    energy_reduction = 1.0 - sem_row.energy_j / base_row.energy_j

    stats = cache.stats_dict()
    record = {
        "workload": "locality",
        "dataset": pa_env.dataset.name,
        "scale": 1.0,
        "n_queries": len(queries),
        "capacity": 4096,
        "scheme": FC.label,
        "answers_equal": answers_equal,
        "nodes_uncached": nodes_uncached,
        "nodes_semantic": nodes_semantic,
        "node_reduction": node_reduction,
        "energy_uncached_j": base_row.energy_j,
        "energy_semantic_j": sem_row.energy_j,
        "energy_reduction": energy_reduction,
        "verdicts": {
            v: sum(1 for x in verdicts if x == v)
            for v in ("hit", "refine", "miss")
        },
        "cache": stats,
    }
    save_report("semcache_speedup", "\n".join([
        "semantic candidate cache -- full-scale PA locality workload",
        f"queries : {len(queries)}",
        (
            f"verdicts: {record['verdicts']['hit']} hit / "
            f"{record['verdicts']['refine']} refine / "
            f"{record['verdicts']['miss']} miss "
            f"(hit rate {stats['hit_rate']:.1%})"
        ),
        (
            f"nodes   : {nodes_uncached} -> {nodes_semantic} "
            f"({node_reduction:.1%} fewer R-tree node visits)"
        ),
        (
            f"energy  : {base_row.energy_j:.4f} J -> "
            f"{sem_row.energy_j:.4f} J ({energy_reduction:.1%} less)"
        ),
    ]))
    save_json("BENCH_semcache", record)

    assert answers_equal, "cached answers differ from uncached planning"
    assert node_reduction >= NODE_REDUCTION_FLOOR, (
        f"node-visit reduction {node_reduction:.1%} below the "
        f"{NODE_REDUCTION_FLOOR:.0%} gate "
        f"({nodes_uncached} -> {nodes_semantic})"
    )
    assert sem_row.energy_j < base_row.energy_j, (
        f"semantic cache did not reduce client energy "
        f"({base_row.energy_j:.6f} J -> {sem_row.energy_j:.6f} J)"
    )
