"""Batched best-first NN/k-NN planner vs the scalar loop on fig6 PA.

The acceptance bar for the batched NN engine (this PR's tentpole gate):
planning the 100-query full-scale PA nearest-neighbor workload under both
NN-admissible schemes through
:func:`repro.core.batchplan.plan_workload_batched` must be at least **3x**
faster wall-clock than the per-query scalar walk, with every plan
bit-identical (answer ids, op tallies, priced energy/cycles — checked by
:func:`repro.core.batchplan.plans_equal` inside the measurement routine).

The machine-readable record lands in ``benchmarks/results/BENCH_nn.json``;
a k-NN row rides along so depth-``k`` searches are timed too.
"""

from __future__ import annotations

from repro.bench.planbench import (
    NN_CONFIGS,
    measure_plan_speedup,
    measure_plan_speedup_kinds,
    render_plan_speedup,
    render_plan_speedup_kinds,
)
from repro.data.workloads import DEFAULT_RUNS, nn_queries

NN_SPEEDUP_FLOOR = 3.0


def test_fig6_workload_batched_nn_speedup(pa_env, save_report, save_json):
    qs = nn_queries(pa_env.dataset, DEFAULT_RUNS)
    record = measure_plan_speedup(pa_env, qs, NN_CONFIGS, repeats=5)
    record["sweep"] = "fig6"
    record["scale"] = 1.0
    save_report("nn_speedup", render_plan_speedup(record))
    save_json("BENCH_nn", record)

    assert record["plans_equal"], "batched NN plans differ from scalar plans"
    assert record["speedup"] >= NN_SPEEDUP_FLOOR, (
        f"batched NN planning only {record['speedup']:.2f}x faster "
        f"({record['batched_seconds']:.3f}s vs "
        f"{record['scalar_seconds']:.3f}s scalar)"
    )


def test_knn_workload_batched_speedup(pa_env, save_report, save_json):
    """k-NN (varied k) must also beat the scalar walk — no gate as tight as
    fig6's, but a slowdown or plan mismatch fails here before it can hide."""
    record = measure_plan_speedup_kinds(
        pa_env, ["knn"], runs=DEFAULT_RUNS, repeats=3
    )
    record["scale"] = 1.0
    save_report("knn_speedup", render_plan_speedup_kinds(record))
    save_json("BENCH_knn", record)

    assert record["plans_equal"], "batched k-NN plans differ from scalar"
    assert record["min_speedup"] >= 2.0, (
        f"batched k-NN planning only {record['min_speedup']:.2f}x faster"
    )
