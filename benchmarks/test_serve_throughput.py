"""Multi-tenant service: micro-batched vs serial per-client serving.

The acceptance bar for the query service (this PR's tentpole gate): serving
a 120-client heterogeneous fleet's 30-second arrival stream over full-scale
PA through the cross-client micro-batching path must be at least **3x**
faster wall-clock than serving the identical dispatch sequence one query at
a time through the scalar planner/pricer — while producing the same
verdicts and answers for every request (energies agree to the grid pricer's
1e-9 tolerance; the exhaustive per-field differential lives in
``tests/serve/test_differential.py``).

Each planner is timed over ``REPEATS`` fresh services and scored by its
*minimum* wall time, the standard estimator for noisy shared hosts — the
minimum is the run least perturbed by unrelated load.

The machine-readable record lands in
``benchmarks/results/BENCH_serve.json``.
"""

from __future__ import annotations

from repro.data.workloads import client_fleet, fleet_query_stream
from repro.serve import QueryService

SERVE_SPEEDUP_FLOOR = 3.0
N_CLIENTS = 120
DURATION_S = 30.0
REPEATS = 3
SERVICE_KNOBS = dict(max_queue=4096, max_batch=1024, batch_window_s=3.0)


def _render(record: dict) -> str:
    lines = [
        "Multi-tenant serve throughput: micro-batched vs serial "
        f"({record['n_clients']} clients, {record['n_requests']} requests)",
        "",
        f"{'planner':10s} {'wall_s (min of ' + str(REPEATS) + ')':>22s} "
        f"{'qps':>10s} {'p50 lat':>10s} {'p99 lat':>10s}",
    ]
    for planner in ("batched", "serial"):
        s = record[planner]
        lines.append(
            f"{planner:10s} {record[planner + '_seconds']:>22.3f} "
            f"{s['qps']:>10.1f} {s['p50_latency_s']:>9.2f}s "
            f"{s['p99_latency_s']:>9.2f}s"
        )
    lines += [
        "",
        f"speedup          : {record['speedup']:.2f}x "
        f"(gate >= {SERVE_SPEEDUP_FLOOR:.1f}x)",
        f"outcomes equal   : {record['outcomes_equal']}",
        f"max energy relerr: {record['max_energy_rel_err']:.2e}",
        f"served/rejected  : {record['batched']['n_served']} / "
        f"{record['batched']['n_rejected_queue']} queue, "
        f"{record['batched']['n_rejected_battery']} battery",
    ]
    return "\n".join(lines)


def _outcomes_match(batched, serial):
    """Verdicts and answers request-for-request; worst energy divergence."""
    if len(batched) != len(serial):
        return False, float("inf")
    worst = 0.0
    for b, s in zip(batched.outcomes, serial.outcomes):
        if (
            b.client_id != s.client_id
            or b.verdict != s.verdict
            or b.answer_ids != s.answer_ids
        ):
            return False, float("inf")
        if b.served and s.result.energy.total() > 0:
            ref = s.result.energy.total()
            worst = max(worst, abs(b.result.energy.total() - ref) / ref)
    return True, worst


def test_serve_microbatching_speedup(pa_env, save_report, save_json):
    fleet = client_fleet(N_CLIENTS, seed=5)
    requests = fleet_query_stream(
        pa_env.dataset, fleet, duration_s=DURATION_S, seed=7, hot_fraction=0.6
    )

    reports = {"batched": [], "serial": []}
    # Alternate planners across repeats so slow drift in host load hits
    # both sides equally; score each by its fastest (least-perturbed) run.
    for _ in range(REPEATS):
        for planner in ("batched", "serial"):
            service = QueryService(pa_env, **SERVICE_KNOBS)
            reports[planner].append(
                service.serve(requests, fleet, planner=planner)
            )

    best = {
        planner: min(runs, key=lambda r: r.wall_seconds)
        for planner, runs in reports.items()
    }
    equal, worst_rel = _outcomes_match(best["batched"], best["serial"])
    speedup = best["serial"].wall_seconds / best["batched"].wall_seconds

    record = {
        "n_clients": N_CLIENTS,
        "duration_s": DURATION_S,
        "repeats": REPEATS,
        "n_requests": len(requests),
        "service": dict(SERVICE_KNOBS),
        "batched": best["batched"].summary(),
        "serial": best["serial"].summary(),
        "batched_seconds": best["batched"].wall_seconds,
        "serial_seconds": best["serial"].wall_seconds,
        "batched_seconds_all": [r.wall_seconds for r in reports["batched"]],
        "serial_seconds_all": [r.wall_seconds for r in reports["serial"]],
        "speedup": speedup,
        "outcomes_equal": equal,
        "max_energy_rel_err": worst_rel,
    }
    save_report("serve_throughput", _render(record))
    save_json("BENCH_serve", record)

    assert equal, "batched service outcomes differ from serial serving"
    assert worst_rel < 1e-9, f"energy divergence {worst_rel:.2e} exceeds 1e-9"
    assert speedup >= SERVE_SPEEDUP_FLOOR, (
        f"micro-batched serving only {speedup:.2f}x faster "
        f"({best['batched'].wall_seconds:.3f}s vs "
        f"{best['serial'].wall_seconds:.3f}s serial)"
    )
