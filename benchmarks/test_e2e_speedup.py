"""Fused columnar engine vs the scalar pipeline, end to end, on fig5 PA.

The acceptance bar for the columnar engine (this PR's tentpole gate): the
full workload→RunTable pipeline — 100 full-scale PA range queries under
all six Table 1 adequate-memory configurations, priced over the standard
bandwidth sweep — through ``Session.run(planner="columnar")`` must be at
least **10x** faster wall-clock than the per-query scalar planner+pricer,
with the RunTables bit-identical to the batched object path and within
1e-9 of the scalar oracle (checked on the warm-up pass inside
:func:`repro.bench.e2ebench.measure_e2e_speedup`).

The machine-readable record lands in ``benchmarks/results/BENCH_e2e.json``.
"""

from __future__ import annotations

from repro.bench.e2ebench import measure_e2e_speedup, render_e2e_speedup
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS
from repro.data.workloads import DEFAULT_RUNS, range_queries

E2E_SPEEDUP_FLOOR = 10.0


def test_fig5_workload_columnar_e2e_speedup(pa_env, save_report, save_json):
    qs = range_queries(pa_env.dataset, DEFAULT_RUNS)
    record = measure_e2e_speedup(
        pa_env, qs, ADEQUATE_MEMORY_CONFIGS, repeats=3
    )
    record["sweep"] = "fig5"
    record["scale"] = 1.0
    save_report("e2e_speedup", render_e2e_speedup(record))
    save_json("BENCH_e2e", record)

    assert record["columnar_exact_vs_batched"], (
        "columnar RunTable differs from the batched object path"
    )
    assert record["tables_match"], (
        f"columnar disagrees with the scalar oracle beyond "
        f"{record['rel_tol']:g} (worst {record['max_rel_err_vs_scalar']:.2e})"
    )
    assert record["columnar_vs_scalar"] >= E2E_SPEEDUP_FLOOR, (
        f"columnar end-to-end only {record['columnar_vs_scalar']:.2f}x faster "
        f"({record['columnar_seconds']:.3f}s vs "
        f"{record['scalar_seconds']:.3f}s scalar)"
    )
