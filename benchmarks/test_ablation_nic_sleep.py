"""Ablation: NIC SLEEP discipline.

The paper's protocol puts the NIC to SLEEP "before sending the request and
after getting back the data ... when we are sure that there will be no
incoming message", paying the 470 us exit latency, and keeps it IDLE only
while a server response may arrive.  This bench quantifies what that
discipline is worth against an always-IDLE radio.
"""

from __future__ import annotations

from repro.bench.report import render_rows
from repro.constants import MBPS
from repro.core.executor import Policy
from repro.api import Session
from repro.core.schemes import Scheme, SchemeConfig
from repro.data.workloads import range_queries

CONFIGS = (
    SchemeConfig(Scheme.FULLY_CLIENT),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
)


def test_ablation_nic_sleep(benchmark, pa_env, pa_full, save_report):
    qs = range_queries(pa_full, 100)
    session = Session(pa_env)
    all_plans = {cfg.label: session.plan(qs, cfg) for cfg in CONFIGS}

    def run():
        rows = []
        for label, plans in all_plans.items():
            asleep = session.price(
                plans, Policy(nic_sleep=True).with_bandwidth(2 * MBPS),
                engine="scalar",
            )[0]
            idle = session.price(
                plans, Policy(nic_sleep=False).with_bandwidth(2 * MBPS),
                engine="scalar",
            )[0]
            rows.append(
                {
                    "scheme": label,
                    "sleep_total_J": f"{asleep.energy.total():.4f}",
                    "idle_total_J": f"{idle.energy.total():.4f}",
                    "saving": f"{1 - asleep.energy.total() / idle.energy.total():.1%}",
                    "sleep_exits_cost_s": f"{asleep.wall_seconds - idle.wall_seconds:+.4f}",
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_nic_sleep",
        render_rows(rows, "Ablation: NIC SLEEP vs always-IDLE during quiet periods (2 Mbps)"),
    )
    # Fully-at-client gains the most: its NIC would otherwise idle for the
    # whole computation.
    fc_saving = float(rows[0]["saving"].rstrip("%"))
    fs_saving = float(rows[1]["saving"].rstrip("%"))
    assert fc_saving > fs_saving > 0.0
