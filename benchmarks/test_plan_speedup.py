"""Batched multi-query planner vs the scalar plan_query loop on fig5 PA.

The acceptance bar for the batched planner (the PR's tentpole gate):
planning the 100-query full-scale PA range workload under all six Table 1
adequate-memory configurations through
:func:`repro.core.batchplan.plan_workload_batched` must be at least **5x**
faster wall-clock than the per-query scalar walk, with every plan
bit-identical (candidate ids, answer ids, step costs — checked by
:func:`repro.core.batchplan.plans_equal` inside the measurement routine).

The machine-readable record lands in ``benchmarks/results/BENCH_plan.json``.
"""

from __future__ import annotations

from repro.bench.planbench import measure_plan_speedup, render_plan_speedup
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS
from repro.data.workloads import DEFAULT_RUNS, range_queries

PLAN_SPEEDUP_FLOOR = 5.0


def test_fig5_workload_batched_plan_speedup(pa_env, save_report, save_json):
    qs = range_queries(pa_env.dataset, DEFAULT_RUNS)
    record = measure_plan_speedup(
        pa_env, qs, ADEQUATE_MEMORY_CONFIGS, repeats=3
    )
    record["sweep"] = "fig5"
    record["scale"] = 1.0
    save_report("plan_speedup", render_plan_speedup(record))
    save_json("BENCH_plan", record)

    assert record["plans_equal"], "batched plans differ from scalar plans"
    assert record["speedup"] >= PLAN_SPEEDUP_FLOOR, (
        f"batched planning only {record['speedup']:.2f}x faster "
        f"({record['batched_seconds']:.3f}s vs "
        f"{record['scalar_seconds']:.3f}s scalar)"
    )
