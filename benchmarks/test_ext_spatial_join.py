"""Extension bench: partitioning a spatial join ("find every bridge").

The paper's future work asks for "consideration of other spatial queries";
the natural next one for line-segment road atlases is the layer join —
roads x rivers = bridge/culvert sites.  The join has the same two-phase
shape the paper partitions on (synchronized-traversal MBR filtering, then
exact segment-segment refinement), so all four Table 1 schemes apply.

This bench runs the PA roads x waterways join under each scheme across the
bandwidth sweep.  The join amplifies the paper's range-query findings: its
candidate set is large relative to the per-query request, so the hybrids'
message legs — candidate *pairs* are two object references wide — dominate
even more sharply than in Figure 5.
"""

from __future__ import annotations

import numpy as np

from repro.bench.report import render_rows
from repro.constants import BANDWIDTHS_MBPS, MBPS
from repro.core.executor import (
    ClientComputeStep,
    Environment,
    Policy,
    QueryPlan,
    RecvStep,
    SendStep,
    ServerComputeStep,
    price_plan,
)
from repro.core.messages import Payload, request_payload
from repro.core.schemes import Scheme, SchemeConfig
from repro.data.tiger import waterways_dataset
from repro.sim.trace import OpCounter
from repro.spatial.join import refine_join, rtree_join
from repro.spatial.rtree import PackedRTree

#: Wire size of one candidate/result pair: two 16-byte object references.
PAIR_BYTES = 32
ROADS_SCALE_NOTE = "full PA roads x 12 waterways"


def _join_plans(env_roads: Environment, rivers_tree: PackedRTree):
    """Build the four scheme plans for the roads x rivers join."""
    costs = env_roads.dataset.costs
    roads_tree = env_roads.tree

    filt_counter = OpCounter(record_trace=False)
    candidates = rtree_join(roads_tree, rivers_tree, filt_counter)
    ref_counter = OpCounter(record_trace=False)
    results = refine_join(roads_tree, rivers_tree, candidates, ref_counter)
    full_counter = filt_counter.copy_counts()
    full_counter.merge(ref_counter.copy_counts())

    client = env_roads.client_cpu
    server = env_roads.server_cpu
    n_cand, n_res = len(candidates), len(results)

    def mk(steps):
        return QueryPlan(
            query=None,
            config=SchemeConfig(Scheme.FULLY_CLIENT),
            steps=steps,
            answer_ids=np.empty(0, dtype=np.int64),
            n_candidates=n_cand,
            n_results=n_res,
        )

    plans = {}
    env_roads.reset_caches()
    plans["Fully at the Client"] = mk(
        [ClientComputeStep(client.compute(full_counter), "join at client")]
    )
    env_roads.reset_caches()
    plans["Fully at the Server (ids back)"] = mk(
        [
            SendStep(request_payload(costs)),
            ServerComputeStep(server.compute(full_counter).cycles, "join"),
            RecvStep(Payload(n_res * PAIR_BYTES, "result pairs")),
        ]
    )
    env_roads.reset_caches()
    plans["Filtering at Client, Refinement at Server"] = mk(
        [
            ClientComputeStep(client.compute(filt_counter), "MBR join"),
            SendStep(
                Payload(
                    costs.request_bytes + n_cand * PAIR_BYTES, "candidate pairs"
                )
            ),
            ServerComputeStep(server.compute(ref_counter).cycles, "refine"),
            RecvStep(Payload(n_res * PAIR_BYTES, "result pairs")),
        ]
    )
    env_roads.reset_caches()
    plans["Filtering at Server, Refinement at Client"] = mk(
        [
            SendStep(request_payload(costs)),
            ServerComputeStep(server.compute(filt_counter).cycles, "MBR join"),
            RecvStep(Payload(n_cand * PAIR_BYTES, "candidate pairs")),
            ClientComputeStep(client.compute(ref_counter), "refine at client"),
        ]
    )
    return plans, n_cand, n_res


def test_ext_spatial_join(benchmark, pa_env, pa_full, save_report):
    rivers = waterways_dataset(pa_full, n_rivers=12, seed=5)
    rivers_tree = PackedRTree.build(rivers)
    plans, n_cand, n_res = _join_plans(pa_env, rivers_tree)

    def run():
        rows = []
        for label, plan in plans.items():
            for bw in BANDWIDTHS_MBPS:
                r = price_plan(
                    plan, pa_env, Policy().with_bandwidth(bw * MBPS)
                )
                rows.append(
                    {
                        "scheme": label,
                        "Mbps": bw,
                        "energy_J": f"{r.energy.total():.4f}",
                        "cycles": f"{r.cycles.total():.3e}",
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_spatial_join",
        render_rows(
            rows,
            f"Extension: roads x rivers join ({ROADS_SCALE_NOTE}; "
            f"{n_cand} candidate pairs -> {n_res} crossings)",
        ),
    )
    by = {(r["scheme"], r["Mbps"]): r for r in rows}
    fc = float(by[("Fully at the Client", 2.0)]["energy_J"])
    # The join is compute-heavy: offloading it fully wins cycles at every
    # bandwidth, like the range query's fully-at-server path...
    for bw in BANDWIDTHS_MBPS:
        assert float(
            by[("Fully at the Server (ids back)", bw)]["cycles"]
        ) < float(by[("Fully at the Client", bw)]["cycles"])
    # ...while the candidate-pair transmit keeps filter-at-client the worst
    # scheme on energy at every bandwidth (the Figure 5(b) effect, amplified).
    for bw in BANDWIDTHS_MBPS:
        energies = {s: float(by[(s, bw)]["energy_J"]) for s, _ in by if _ == bw}
        assert (
            energies["Filtering at Client, Refinement at Server"]
            == max(energies.values())
        )
    assert n_res > 0
