"""Ablation: CPU low-power mode while blocked (paper section 5.2).

"Many mobile versions of processors offer multiple power modes ... this
option gives a saving between 10-20% of energy savings in several cases" —
the paper enables it whenever the client blocks on communication.  This
bench measures the whole-run saving on the communication-heavy schemes.
"""

from __future__ import annotations

from repro.bench.report import render_rows
from repro.constants import MBPS
from repro.core.executor import Policy
from repro.api import Session
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme
from repro.data.workloads import range_queries


def test_ablation_cpu_lowpower(benchmark, pa_env, pa_full, save_report):
    qs = range_queries(pa_full, 100)
    comm_configs = [
        c for c in ADEQUATE_MEMORY_CONFIGS if c.scheme is not Scheme.FULLY_CLIENT
    ]
    session = Session(pa_env)
    all_plans = {
        cfg.label: session.plan(qs, cfg) for cfg in comm_configs
    }

    def run():
        rows = []
        for label, plans in all_plans.items():
            on = session.price(
                plans, Policy(cpu_lowpower=True).with_bandwidth(2 * MBPS),
                engine="scalar",
            )[0]
            off = session.price(
                plans, Policy(cpu_lowpower=False).with_bandwidth(2 * MBPS),
                engine="scalar",
            )[0]
            rows.append(
                {
                    "scheme": label,
                    "lowpower_total_J": f"{on.energy.total():.4f}",
                    "fullpower_total_J": f"{off.energy.total():.4f}",
                    "total_saving": f"{1 - on.energy.total() / off.energy.total():.1%}",
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_cpu_lowpower",
        render_rows(rows, "Ablation: CPU low-power mode while blocked (2 Mbps, 1 km)"),
    )
    # Savings visible but bounded (the NIC dominates total energy).
    for r in rows:
        saving = float(r["total_saving"].rstrip("%"))
        assert 0.0 < saving < 35.0
