"""Extension bench: consistency policies under server-side churn.

The paper's caching results assume static data; its future work asks what
happens "when data is frequently modified (and the latest copy needs to be
obtained from the server)".  This bench sweeps the server update rate and
reports, per consistency policy, the client's energy and the fraction of
stale answers — making the freshness/energy trade-off explicit:

* NONE keeps the cached client's energy advantage but serves stale answers
  as churn grows;
* VERIFY eliminates staleness but pays a transmit per local hit, eroding
  the advantage;
* TTL sits between, tunable by its expiry.
"""

from __future__ import annotations

from repro.bench.report import render_rows
from repro.constants import MBPS
from repro.core.executor import Policy
from repro.core.freshness import FreshClientSession, FreshnessPolicy, UpdateStream
from repro.data.workloads import proximity_sequence

BUDGET = 1 << 20
RATES = (0.0, 1.0, 10.0, 100.0)


def test_ext_freshness(benchmark, pa_env, pa_full, save_report):
    qs = proximity_sequence(pa_full, y=80, n_groups=2, seed=67)
    pricing = Policy().with_bandwidth(11 * MBPS)

    def run():
        rows = []
        for rate in RATES:
            for policy in FreshnessPolicy:
                pa_env.reset_caches()
                stream = UpdateStream(
                    len(pa_env.tree.entry_ids), rate, seed=71
                )
                sess = FreshClientSession(
                    pa_env, BUDGET, stream, policy=policy,
                    pricing=pricing, ttl_s=120.0,
                )
                stats = sess.run(qs)
                rows.append(
                    {
                        "updates_per_s": rate,
                        "policy": policy.value,
                        "energy_J": f"{stats.energy.total():.4f}",
                        "stale_frac": f"{stats.staleness:.1%}",
                        "refetches": stats.refetches,
                        "verifications": stats.verifications,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_freshness",
        render_rows(rows, "Extension: consistency policy vs server update rate "
                          "(162 proximate range queries, 1 MB buffer, 11 Mbps)"),
    )
    by = {(r["updates_per_s"], r["policy"]): r for r in rows}
    # VERIFY is never stale; NONE goes stale under churn.
    for rate in RATES:
        assert by[(rate, "verify")]["stale_frac"] == "0.0%"
    assert float(by[(100.0, "none")]["stale_frac"].rstrip("%")) > 10.0
    # At zero churn all policies are staleness-free and NONE is cheapest.
    assert by[(0.0, "none")]["stale_frac"] == "0.0%"
    e_none = float(by[(0.0, "none")]["energy_J"])
    e_verify = float(by[(0.0, "verify")]["energy_J"])
    assert e_none < e_verify
