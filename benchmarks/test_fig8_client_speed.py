"""Figure 8: impact of client CPU speed (MhzC = MhzS/2).

A 4x faster client shrinks the wall-clock of client-heavy schemes (cycle
counts are denominated in the new, faster clock: wire time converts to 4x
the cycles while compute cycles stay put) with little impact on energy.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import fig5_range_queries, fig8_client_speed
from repro.bench.report import render_sweep
from repro.core.schemes import Scheme, SchemeConfig

FC = SchemeConfig(Scheme.FULLY_CLIENT).label
B = SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=True).label


def test_fig8_client_speed(benchmark, pa_full, pa_env, save_report):
    sweep_fast = benchmark.pedantic(
        fig8_client_speed, args=(pa_full,), kwargs={"clock_ratio": 0.5},
        rounds=1, iterations=1,
    )
    save_report(
        "fig8_range_pa_cs_half",
        render_sweep(
            sweep_fast,
            "Figure 8: Range Queries, PA, C/S=1/2 (cycles in the 500 MHz clock)",
        ),
    )
    sweep_slow = fig5_range_queries(pa_env)
    # Fully-at-client compute cycles are clock-invariant...
    fast_fc = sweep_fast[FC][0].result
    slow_fc = sweep_slow[FC][0].result
    assert fast_fc.cycles.processor == pytest.approx(
        slow_fc.cycles.processor, rel=0.02
    )
    # ...so its wall time shrinks 4x.
    assert fast_fc.wall_seconds == pytest.approx(slow_fc.wall_seconds / 4, rel=0.02)
    # Communication legs take 4x the (faster) cycles at the same bandwidth.
    fast_b = sweep_fast[B][0].result
    slow_b = sweep_slow[B][0].result
    assert fast_b.cycles.nic_tx == pytest.approx(4 * slow_b.cycles.nic_tx, rel=0.02)
    # Energy moves only second-order.
    assert fast_b.energy.total() == pytest.approx(slow_b.energy.total(), rel=0.3)
