"""Shard-store pruning vs the monolithic engine on the locality workload.

The acceptance bar for Hilbert key-range sharding (this PR's tentpole
gate): on the locality-skewed browse workload over full-scale PA, a
16-shard :class:`ShardStore` must leave at least **50%** of its shards
unmaterialized (plan-time pruning), keep every answer bit-identical to
the monolithic planner, and cost at most **1.1x** the unsharded
wall-clock (best of three passes) — out-of-core residency must not tax
in-core planning.

The machine-readable record lands in
``benchmarks/results/BENCH_shard.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.batchplan import compute_query_phases
from repro.core.executor import Environment
from repro.core.shardstore import ShardConfig, ShardStore
from repro.data.workloads import locality_workload

PRUNE_FLOOR = 0.50
WALL_CEILING = 1.10
N_SHARDS = 16


def _best_of(env, queries, repeat=3):
    best = float("inf")
    phases = None
    for _ in range(repeat):
        env.reset_caches()
        t0 = time.perf_counter()
        phases = compute_query_phases(env, queries)
        best = min(best, time.perf_counter() - t0)
    return best, phases


def test_locality_workload_shard_pruning(pa_env, save_report, save_json):
    queries = locality_workload(pa_env.dataset, 40, 3, seed=31)

    base_s, base = _best_of(pa_env, queries)

    env_sh = Environment.create(pa_env.dataset, tree=pa_env.tree)
    store = ShardStore.from_tree(pa_env.tree, ShardConfig(n_shards=N_SHARDS))
    env_sh.shard_store = store
    shard_s, sharded = _best_of(env_sh, queries)

    answers_equal = all(
        np.array_equal(a.answer_ids, b.answer_ids)
        for a, b in zip(sharded, base)
    )
    stats = store.stats_dict()
    prune_rate = stats["shards_pruned"] / stats["shards_total"]
    slowdown = shard_s / base_s

    record = {
        "workload": "locality",
        "dataset": pa_env.dataset.name,
        "scale": 1.0,
        "n_queries": len(queries),
        "n_shards": stats["shards_total"],
        "answers_equal": answers_equal,
        "shards_pruned": stats["shards_pruned"],
        "prune_rate": prune_rate,
        "shard_loads": stats["shard_loads"],
        "base_wall_s": base_s,
        "shard_wall_s": shard_s,
        "slowdown": slowdown,
        "gates": {
            "min_prune_rate": PRUNE_FLOOR,
            "max_slowdown": WALL_CEILING,
        },
    }
    save_report("shard_speedup", "\n".join([
        "hilbert key-range sharding -- full-scale PA locality workload",
        f"queries : {len(queries)}",
        (
            f"shards  : {stats['shards_pruned']}/{stats['shards_total']} "
            f"pruned ({prune_rate:.1%}), {stats['shard_loads']} loads"
        ),
        (
            f"wall    : {base_s:.3f} s unsharded -> {shard_s:.3f} s sharded "
            f"({slowdown:.2f}x)"
        ),
    ]))
    save_json("BENCH_shard", record)

    assert answers_equal, "sharded answers differ from the monolithic planner"
    assert prune_rate >= PRUNE_FLOOR, (
        f"prune rate {prune_rate:.1%} below the {PRUNE_FLOOR:.0%} gate "
        f"({stats['shards_pruned']}/{stats['shards_total']})"
    )
    assert slowdown <= WALL_CEILING, (
        f"sharded planning {slowdown:.2f}x unsharded exceeds the "
        f"{WALL_CEILING:.2f}x ceiling ({base_s:.3f} s -> {shard_s:.3f} s)"
    )
