"""Extension bench: the scheme advisor's policy table at full scale.

The paper hopes its findings "provide a more systematic way of designing
and implementing applications"; the advisor is that system.  This bench
profiles the full-scale PA range workload once and prints the advised
scheme over the (bandwidth, distance) grid for both objectives, asserting
the picks reproduce the paper's headline winners.
"""

from __future__ import annotations

from repro.bench.report import render_rows
from repro.constants import BANDWIDTHS_MBPS, MBPS
from repro.core.advisor import Objective, SchemeAdvisor
from repro.core.executor import Policy
from repro.core.schemes import Scheme
from repro.data.workloads import range_queries


def test_ext_advisor_policy_table(benchmark, pa_env, pa_full, save_report):
    advisor = SchemeAdvisor(pa_env)
    profile = advisor.profile(range_queries(pa_full, 100))

    def run():
        rows = []
        for distance in (100.0, 1000.0):
            for bw in BANDWIDTHS_MBPS:
                policy = (
                    Policy().with_bandwidth(bw * MBPS).with_distance(distance)
                )
                battery = advisor.advise(profile, policy, Objective.battery())
                latency = advisor.advise(profile, policy, Objective.latency())
                rows.append(
                    {
                        "distance_m": distance,
                        "Mbps": bw,
                        "battery_pick": battery.label,
                        "latency_pick": latency.label,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_advisor",
        render_rows(
            rows, "Extension: advised scheme per operating point (PA range queries)"
        ),
    )
    by = {(r["distance_m"], r["Mbps"]): r for r in rows}
    # Fig 5 headline: at 1 km / 2 Mbps battery stays on the device while
    # latency already prefers the server...
    assert by[(1000.0, 2.0)]["battery_pick"] == "Fully at the Client"
    assert "Server" in by[(1000.0, 2.0)]["latency_pick"]
    # ...and by 11 Mbps both objectives agree on offloading.
    assert "Server" in by[(1000.0, 11.0)]["battery_pick"]
    # Shorter transmit distance can only move the battery crossover earlier.
    def battery_crossover(distance):
        for bw in BANDWIDTHS_MBPS:
            if "Server" in by[(distance, bw)]["battery_pick"]:
                return bw
        return float("inf")

    assert battery_crossover(100.0) <= battery_crossover(1000.0)
