"""Synthetic TIGER-like road-network datasets.

The paper evaluates on two line-segment extracts of the US Census TIGER
database:

* **PA** — 139 006 street segments of four rural counties in southern
  Pennsylvania (Fulton, Franklin, Bedford, Huntingdon), ~10.06 MB.
* **NYC** — 38 778 street segments of New York City and Union County, NJ,
  ~7.09 MB (denser, smaller extent, and with *smaller filter selectivity*,
  which section 6.1.2 shows makes the hybrid partitioning schemes more
  competitive).

TIGER extracts cannot be bundled here (offline environment), so this module
synthesizes road networks with the properties the experiments actually
exercise (DESIGN.md section 2):

1. matching segment cardinality (parameterizable via ``scale``),
2. clustered density — towns with rectangular street grids connected by
   rural roads (PA) versus one dominant dense urban grid with diagonal
   avenues (NYC); the workload generator places query windows
   density-weighted, as the paper does, so clustering matters,
3. street segments that share endpoints at intersections (point-query
   workloads pick segment endpoints and must hit multiple streets).

Generation is deterministic given a seed and fully vectorized (the PA network
builds in well under a second at full scale).
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.data.model import SegmentDataset
from repro.spatial.mbr import MBR

__all__ = [
    "PA_SEGMENTS",
    "NYC_SEGMENTS",
    "pa_dataset",
    "nyc_dataset",
    "waterways_dataset",
    "grid_town",
    "street_name",
]

#: Published cardinalities of the paper's datasets.
PA_SEGMENTS = 139_006
NYC_SEGMENTS = 38_778


def grid_town(
    rng: np.random.Generator,
    cx: float,
    cy: float,
    rows: int,
    cols: int,
    cell: float,
    jitter: float = 0.08,
    angle: float | None = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Street-grid segments for one town centered at ``(cx, cy)``.

    A ``rows x cols`` block grid produces one segment per block edge —
    horizontal streets split at every intersection (as TIGER polyline pieces
    are) — with the intersection points jittered by ``jitter`` of a cell so
    the grid is not artificially perfect.  Jitter is applied to the shared
    intersection points, not per segment, so streets still meet exactly at
    endpoints.  When ``angle`` is given the whole grid is rotated around the
    town center (Manhattan's grid is ~29 degrees off true north).

    Returns the four coordinate columns ``(x1, y1, x2, y2)``.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    # Intersection lattice, jittered once and shared by adjacent edges.
    xs = (np.arange(cols + 1) - cols / 2.0) * cell
    ys = (np.arange(rows + 1) - rows / 2.0) * cell
    gx, gy = np.meshgrid(xs, ys)  # shape (rows+1, cols+1)
    gx = gx + rng.uniform(-jitter * cell, jitter * cell, gx.shape)
    gy = gy + rng.uniform(-jitter * cell, jitter * cell, gy.shape)

    if angle is not None:
        ca, sa = math.cos(angle), math.sin(angle)
        rx = gx * ca - gy * sa
        ry = gx * sa + gy * ca
        gx, gy = rx, ry
    gx = gx + cx
    gy = gy + cy

    # Horizontal edges: (r, c) -> (r, c+1); vertical: (r, c) -> (r+1, c).
    hx1 = gx[:, :-1].ravel()
    hy1 = gy[:, :-1].ravel()
    hx2 = gx[:, 1:].ravel()
    hy2 = gy[:, 1:].ravel()
    vx1 = gx[:-1, :].ravel()
    vy1 = gy[:-1, :].ravel()
    vx2 = gx[1:, :].ravel()
    vy2 = gy[1:, :].ravel()
    return (
        np.concatenate([hx1, vx1]),
        np.concatenate([hy1, vy1]),
        np.concatenate([hx2, vx2]),
        np.concatenate([hy2, vy2]),
    )


def _polyline(
    rng: np.random.Generator,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
    n_pieces: int,
    wiggle: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """A wiggly rural road from ``(x0, y0)`` to ``(x1, y1)`` in ``n_pieces``."""
    t = np.linspace(0.0, 1.0, n_pieces + 1)
    px = x0 + (x1 - x0) * t
    py = y0 + (y1 - y0) * t
    # Perpendicular wiggle, zero at both ends so roads still meet towns.
    length = math.hypot(x1 - x0, y1 - y0)
    if length > 0:
        nx, ny = -(y1 - y0) / length, (x1 - x0) / length
        amp = rng.normal(0.0, wiggle * length, n_pieces + 1) * np.sin(np.pi * t)
        px = px + nx * amp
        py = py + ny * amp
    return px[:-1], py[:-1], px[1:], py[1:]


def _assemble(
    name: str,
    parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
    target: int,
    rng: np.random.Generator,
) -> SegmentDataset:
    """Concatenate generated parts and trim to exactly ``target`` segments.

    Trimming drops a uniform random subset so spatial coverage is preserved;
    generators are parameterized to overshoot the target by a few percent.
    """
    x1 = np.concatenate([p[0] for p in parts])
    y1 = np.concatenate([p[1] for p in parts])
    x2 = np.concatenate([p[2] for p in parts])
    y2 = np.concatenate([p[3] for p in parts])
    n = len(x1)
    if n < target:
        raise ValueError(
            f"generator undershoot: produced {n} segments, need {target}; "
            "increase the generator densities"
        )
    keep = rng.permutation(n)[:target]
    keep.sort()  # keep a deterministic, locality-preserving order
    return SegmentDataset(name=name, x1=x1[keep], y1=y1[keep], x2=x2[keep], y2=y2[keep])


def pa_dataset(scale: float = 1.0, seed: int = 1) -> SegmentDataset:
    """PA-like rural network: scattered towns with grids plus rural roads.

    ``scale`` shrinks the segment count (and town count) proportionally;
    tests use ``scale≈0.02`` for speed while benches use full scale.  The
    extent is ~140 km x 90 km in meters, comparable to four rural counties.
    """
    if not (0 < scale <= 1.0):
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    target = max(200, int(round(PA_SEGMENTS * scale)))
    rng = np.random.default_rng(seed)
    extent = MBR(0.0, 0.0, 140_000.0, 90_000.0)

    parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    produced = 0

    # Four county seats (large towns) plus many villages, sized by a
    # heavy-tailed distribution: a few big grids, many small ones.
    n_towns = max(6, int(round(90 * math.sqrt(scale))))
    town_x = rng.uniform(extent.xmin + 5_000, extent.xmax - 5_000, n_towns)
    town_y = rng.uniform(extent.ymin + 5_000, extent.ymax - 5_000, n_towns)
    town_size = np.clip(rng.pareto(1.6, n_towns) + 1.0, 1.0, 12.0)
    # Scale town grid sizes so total segment budget lands ~8% above target.
    base = math.sqrt((target * 1.08 * 0.75) / (n_towns * town_size.mean() ** 2 * 2))
    for i in range(n_towns):
        side = max(2, int(round(base * town_size[i])))
        cell = rng.uniform(80.0, 140.0)
        parts.append(
            grid_town(
                rng,
                float(town_x[i]),
                float(town_y[i]),
                rows=side,
                cols=side,
                cell=cell,
                angle=float(rng.uniform(0, math.pi / 2)),
            )
        )
        produced += 2 * side * (side + 1)

    # Rural connector roads between nearby towns (~25% of the budget).
    rural_budget = int(target * 1.08) - produced
    order = np.argsort(town_x)
    i = 0
    while rural_budget > 0:
        a = int(order[i % n_towns])
        b = int(order[(i + 1) % n_towns])
        n_pieces = int(rng.integers(20, 60))
        parts.append(
            _polyline(
                rng,
                float(town_x[a]), float(town_y[a]),
                float(town_x[b]), float(town_y[b]),
                n_pieces,
                wiggle=0.02,
            )
        )
        rural_budget -= n_pieces
        i += 1
        if i > 10_000:  # pragma: no cover - generator safety valve
            break

    return _assemble("PA", parts, target, rng)


def nyc_dataset(scale: float = 1.0, seed: int = 2) -> SegmentDataset:
    """NYC-like urban network: one dominant dense grid plus a second cluster.

    A Manhattan-style rotated grid carries most of the segments; a smaller
    Union-County-like grid sits to the southwest; diagonal avenues cross the
    main grid.  Extent ~40 km x 40 km.
    """
    if not (0 < scale <= 1.0):
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    target = max(200, int(round(NYC_SEGMENTS * scale)))
    rng = np.random.default_rng(seed)

    parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []

    # Main grid: ~70% of segments. rows x cols with 2*r*c edges ~ budget.
    # Manhattan-sized blocks (~70 m cells) packed into a long narrow island;
    # the harbor/water emptiness separating the boroughs from Union County
    # keeps the *extent* much larger than the built-up area, as in the TIGER
    # extract — which is what gives NYC per-query candidate volumes
    # comparable to (though below) PA's under extent-relative window sizes.
    main_budget = int(target * 1.08 * 0.70)
    aspect = 4.0  # long, narrow island grid
    cols = max(2, int(math.sqrt(main_budget / (2 * aspect))))
    rows = max(2, int(cols * aspect))
    parts.append(
        grid_town(
            rng, 38_000.0, 34_000.0, rows=rows, cols=cols, cell=70.0,
            jitter=0.04, angle=math.radians(29.0),
        )
    )

    # Union-County-like cluster to the southwest: ~25%.
    side = max(2, int(math.sqrt(int(target * 1.08 * 0.25) / 2)))
    parts.append(
        grid_town(
            rng, 9_000.0, 8_000.0, rows=side, cols=side, cell=90.0,
            jitter=0.07, angle=math.radians(10.0),
        )
    )

    # Diagonal avenues (Broadway-style) through the main grid: the rest.
    for _ in range(6):
        x0 = rng.uniform(28_000, 36_000)
        y0 = 14_000.0
        x1 = x0 + rng.uniform(6_000, 14_000)
        y1 = 52_000.0
        parts.append(_polyline(rng, x0, y0, x1, y1, int(rng.integers(60, 120)), 0.01))

    return _assemble("NYC", parts, target, rng)


def waterways_dataset(
    roads: SegmentDataset, n_rivers: int = 12, seed: int = 5
) -> SegmentDataset:
    """A second layer of river/creek polylines crossing the road extent.

    Used by the spatial-join experiments ("find every bridge"): rivers are
    long wiggly polylines spanning the roads' extent, so joining the two
    layers yields the road-river crossings.  Segment pieces are ~road-scale
    so the join's candidate volumes are realistic.
    """
    if n_rivers < 1:
        raise ValueError(f"n_rivers must be >= 1, got {n_rivers}")
    rng = np.random.default_rng(seed)
    ext = roads.extent
    parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    total = 0
    for r in range(n_rivers):
        vertical = r % 2 == 0
        if vertical:
            x0 = rng.uniform(ext.xmin, ext.xmax)
            x1 = min(max(x0 + rng.normal(0, ext.width * 0.2), ext.xmin), ext.xmax)
            y0, y1 = ext.ymin, ext.ymax
        else:
            y0 = rng.uniform(ext.ymin, ext.ymax)
            y1 = min(max(y0 + rng.normal(0, ext.height * 0.2), ext.ymin), ext.ymax)
            x0, x1 = ext.xmin, ext.xmax
        n_pieces = int(rng.integers(60, 160))
        parts.append(_polyline(rng, x0, y0, x1, y1, n_pieces, wiggle=0.05))
        total += n_pieces
    x1c = np.concatenate([p[0] for p in parts])
    y1c = np.concatenate([p[1] for p in parts])
    x2c = np.concatenate([p[2] for p in parts])
    y2c = np.concatenate([p[3] for p in parts])
    return SegmentDataset(
        name=f"{roads.name}-waterways", x1=x1c, y1=y1c, x2=x2c, y2=y2c
    )


_NAME_STEMS = (
    "Oak", "Maple", "Chestnut", "Walnut", "Market", "Church", "Mill", "High",
    "Ridge", "Valley", "Spring", "Juniata", "Tuscarora", "Broad", "Union",
    "Liberty", "Franklin", "Bedford", "Fulton", "Hunting",
)
_NAME_SUFFIXES = ("St", "Ave", "Rd", "Ln", "Pike", "Blvd", "Way", "Dr")


def street_name(segment_id: int) -> str:
    """A deterministic synthetic street name for a segment id.

    The stored byte-size model (:attr:`repro.constants.CostModel.
    segment_record_bytes`) already accounts for a fixed-width name payload;
    names are synthesized on demand rather than stored, so examples can print
    human-readable answers without inflating memory.
    """
    stem = _NAME_STEMS[segment_id % len(_NAME_STEMS)]
    suffix = _NAME_SUFFIXES[(segment_id // len(_NAME_STEMS)) % len(_NAME_SUFFIXES)]
    number = (segment_id * 7919) % 900 + 100
    return f"{stem} {suffix} (block {number})"
