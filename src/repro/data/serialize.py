"""Wire/storage encoding of segments, object references and indexes.

The cost model prices messages by a byte-size model
(:class:`repro.constants.CostModel`): 76 B per stored segment record, 16 B
per object reference, 20 B per index entry.  This module makes those
numbers *real*: it defines the actual binary layouts and encodes/decodes
them, and the tests assert that the encoded sizes equal the modeled sizes —
so a layout change that breaks the calibration fails loudly.

Layouts (little-endian):

* **Segment record** (76 B): 4 x float32 endpoint coordinates (16 B),
  uint32 id (4 B), 56 B fixed-width name/attribute payload.
* **Object reference** (16 B): uint32 id plus the 4-coordinate MBR
  quantized to 3 bytes per coordinate on the dataset grid (24-bit cells —
  the same quantization the index MBR tests run on).
* **Index entry** (20 B): 4 x float32 MBR + uint32 child pointer.
* **Index node** (8 B header): uint16 level, uint16 count, uint32 first
  child offset.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

import numpy as np

from repro.constants import CostModel
from repro.data.model import SegmentDataset
from repro.data.tiger import street_name
from repro.spatial.mbr import MBR
from repro.spatial.rtree import PackedRTree

__all__ = [
    "encode_segment",
    "decode_segment",
    "encode_object_ref",
    "decode_object_ref",
    "encode_segments",
    "encode_object_refs",
    "encode_index",
    "quantize_coord",
    "dequantize_coord",
]

_SEGMENT_STRUCT = struct.Struct("<4fI56s")
_REF_STRUCT = struct.Struct("<I12s")
_ENTRY_STRUCT = struct.Struct("<4fI")
_NODE_HEADER_STRUCT = struct.Struct("<HHI")

#: 24-bit quantization grid per axis.
_QUANT_CELLS = (1 << 24) - 1


def quantize_coord(value: float, lo: float, hi: float) -> int:
    """Map ``value`` in ``[lo, hi]`` onto the 24-bit grid (clamping)."""
    if hi <= lo:
        raise ValueError("quantization interval must have positive width")
    t = (value - lo) / (hi - lo)
    return max(0, min(_QUANT_CELLS, int(round(t * _QUANT_CELLS))))


def dequantize_coord(q: int, lo: float, hi: float) -> float:
    """Inverse of :func:`quantize_coord` (to grid-cell precision)."""
    return lo + (q / _QUANT_CELLS) * (hi - lo)


# ----------------------------------------------------------------------
# Segment records
# ----------------------------------------------------------------------
def encode_segment(ds: SegmentDataset, seg_id: int) -> bytes:
    """One 76-byte segment record, with its synthetic name payload."""
    x1, y1, x2, y2 = ds.segment(seg_id)
    name = street_name(seg_id).encode("utf-8")[:56].ljust(56, b"\0")
    return _SEGMENT_STRUCT.pack(x1, y1, x2, y2, seg_id, name)


def decode_segment(blob: bytes) -> Tuple[float, float, float, float, int, str]:
    """Decode a segment record; returns coords, id and name."""
    x1, y1, x2, y2, seg_id, name = _SEGMENT_STRUCT.unpack(blob)
    return (x1, y1, x2, y2, seg_id, name.rstrip(b"\0").decode("utf-8"))


def encode_segments(ds: SegmentDataset, ids: Sequence[int]) -> bytes:
    """A data-items message body: concatenated segment records."""
    return b"".join(encode_segment(ds, int(i)) for i in ids)


# ----------------------------------------------------------------------
# Object references
# ----------------------------------------------------------------------
def encode_object_ref(ds: SegmentDataset, seg_id: int) -> bytes:
    """One 16-byte object reference: id + quantized MBR."""
    mbr = ds.segment_mbr(seg_id)
    ext = ds.extent
    qx1 = quantize_coord(mbr.xmin, ext.xmin, ext.xmax)
    qy1 = quantize_coord(mbr.ymin, ext.ymin, ext.ymax)
    qx2 = quantize_coord(mbr.xmax, ext.xmin, ext.xmax)
    qy2 = quantize_coord(mbr.ymax, ext.ymin, ext.ymax)
    packed = (
        qx1.to_bytes(3, "little")
        + qy1.to_bytes(3, "little")
        + qx2.to_bytes(3, "little")
        + qy2.to_bytes(3, "little")
    )
    return _REF_STRUCT.pack(seg_id, packed)


def decode_object_ref(
    blob: bytes, extent: MBR
) -> Tuple[int, MBR]:
    """Decode an object reference to its id and (grid-precision) MBR."""
    seg_id, packed = _REF_STRUCT.unpack(blob)
    qs = [int.from_bytes(packed[i : i + 3], "little") for i in (0, 3, 6, 9)]
    return seg_id, MBR(
        dequantize_coord(qs[0], extent.xmin, extent.xmax),
        dequantize_coord(qs[1], extent.ymin, extent.ymax),
        dequantize_coord(qs[2], extent.xmin, extent.xmax),
        dequantize_coord(qs[3], extent.ymin, extent.ymax),
    )


def encode_object_refs(ds: SegmentDataset, ids: Sequence[int]) -> bytes:
    """A candidate/result-id message body: concatenated references."""
    return b"".join(encode_object_ref(ds, int(i)) for i in ids)


# ----------------------------------------------------------------------
# Index
# ----------------------------------------------------------------------
def encode_index(tree: PackedRTree) -> bytes:
    """Serialize a packed R-tree: per node, an 8-byte header plus its
    occupied 20-byte entries.

    The encoded length equals :meth:`PackedRTree.index_bytes` exactly
    (property-tested) — the number the extraction-shipment budgeting and
    the broadcast chunk sizing rely on.
    """
    out: List[bytes] = []
    for node in range(tree.node_count):
        level = int(tree.node_level[node])
        start = int(tree.node_child_start[node])
        count = int(tree.node_child_count[node])
        out.append(_NODE_HEADER_STRUCT.pack(level, count, start))
        for off in range(start, start + count):
            if level == 0:
                out.append(
                    _ENTRY_STRUCT.pack(
                        tree.entry_xmin[off],
                        tree.entry_ymin[off],
                        tree.entry_xmax[off],
                        tree.entry_ymax[off],
                        int(tree.entry_ids[off]),
                    )
                )
            else:
                out.append(
                    _ENTRY_STRUCT.pack(
                        tree.node_xmin[off],
                        tree.node_ymin[off],
                        tree.node_xmax[off],
                        tree.node_ymax[off],
                        off,
                    )
                )
    return b"".join(out)
