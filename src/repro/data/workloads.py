"""Query workload and client-fleet generators (paper sections 5.4 and 6.2).

Adequate-memory experiments use 100 runs per query type, each run with
different parameters:

* **Point queries** — "we randomly pick one of the end points of line
  segments in the dataset to compose the query": guaranteed hits, and at a
  street intersection several segments share the endpoint.
* **Range queries** — window size between 0.01% and 1% of the spatial
  extent's area, aspect ratio 0.25-4, and the *location chosen from the
  distribution of the dataset itself* ("a denser region is likely to have
  more query windows"): we anchor each window on the midpoint of a uniformly
  chosen segment, which samples space proportionally to segment density.
* **Nearest-neighbor queries** — "we randomly place the point in the spatial
  extent".

The insufficient-memory experiment (section 6.2) fires a *proximity
sequence*: one query at a random location followed by ``y`` queries "very
close to that" (satisfiable from the shipped region), repeated per group;
``y`` is the spatial-proximity parameter swept in Figure 10.

The service arc adds the *fleet* generators: :func:`client_fleet` draws a
population of heterogeneous :class:`ClientProfile` records (mixed schemes,
bandwidths, distances, loss rates, arrival rates and battery budgets) and
:func:`fleet_query_stream` turns a fleet into a merged, time-ordered stream
of :class:`QueryRequest` arrivals — the input :class:`repro.serve.QueryService`
consumes.  A shared *hot pool* of point/range queries gives the stream
cross-client repetition, the dedup opportunity micro-batching exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import BANDWIDTHS_MBPS, MBPS
from repro.core.executor import Policy
from repro.core.queries import KNNQuery, NNQuery, PointQuery, Query, RangeQuery
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data.model import SegmentDataset
from repro.spatial.mbr import MBR

__all__ = [
    "point_queries",
    "range_queries",
    "nn_queries",
    "knn_queries",
    "proximity_sequence",
    "locality_workload",
    "ClientProfile",
    "QueryRequest",
    "client_fleet",
    "fleet_query_stream",
    "oversized_dataset",
    "QUERY_KINDS",
    "DEFAULT_RUNS",
]

#: The paper's workload size per query type.
DEFAULT_RUNS = 100


def point_queries(
    ds: SegmentDataset, n: int = DEFAULT_RUNS, seed: int = 11
) -> List[PointQuery]:
    """``n`` point queries anchored on random segment endpoints."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, ds.size, size=n)
    which_end = rng.integers(0, 2, size=n)
    out: List[PointQuery] = []
    for i, e in zip(idx, which_end):
        if e == 0:
            out.append(PointQuery(float(ds.x1[i]), float(ds.y1[i])))
        else:
            out.append(PointQuery(float(ds.x2[i]), float(ds.y2[i])))
    return out


def _window_at(
    ds: SegmentDataset,
    rng: np.random.Generator,
    cx: float,
    cy: float,
    min_area_frac: float,
    max_area_frac: float,
) -> RangeQuery:
    """One range window centered near ``(cx, cy)`` with the paper's size and
    aspect distributions, clamped into the dataset extent."""
    ext = ds.extent
    # Log-uniform size: the paper's 0.01%..1% spans two decades.
    area = ext.area() * math.exp(
        rng.uniform(math.log(min_area_frac), math.log(max_area_frac))
    )
    aspect = math.exp(rng.uniform(math.log(0.25), math.log(4.0)))
    w = math.sqrt(area * aspect)
    h = area / w
    w = min(w, ext.width)
    h = min(h, ext.height)
    xmin = min(max(cx - w / 2.0, ext.xmin), ext.xmax - w)
    ymin = min(max(cy - h / 2.0, ext.ymin), ext.ymax - h)
    return RangeQuery(MBR(xmin, ymin, xmin + w, ymin + h))


def range_queries(
    ds: SegmentDataset,
    n: int = DEFAULT_RUNS,
    seed: int = 13,
    min_area_frac: float = 0.000015,
    max_area_frac: float = 0.0015,
) -> List[RangeQuery]:
    """``n`` density-weighted range queries.

    The paper states window sizes of "0.01% to 1% of the spatial extent";
    our synthetic networks are denser inside their towns than the rural
    TIGER extracts, so the default window-area range here is one decade
    smaller, chosen so the *filter selectivity* (and therefore the per-query
    message volumes the figures are built from) matches what the paper's
    Figure 5 bars imply: ~400-500 candidates per range query on the PA
    dataset.  Pass the paper's literal fractions to override.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not (0 < min_area_frac <= max_area_frac <= 1.0):
        raise ValueError("area fractions must satisfy 0 < min <= max <= 1")
    rng = np.random.default_rng(seed)
    anchors = rng.integers(0, ds.size, size=n)
    out: List[RangeQuery] = []
    for i in anchors:
        cx = float(ds.x1[i] + ds.x2[i]) / 2.0
        cy = float(ds.y1[i] + ds.y2[i]) / 2.0
        out.append(_window_at(ds, rng, cx, cy, min_area_frac, max_area_frac))
    return out


def nn_queries(
    ds: SegmentDataset, n: int = DEFAULT_RUNS, seed: int = 17
) -> List[NNQuery]:
    """``n`` NN queries at uniformly random points in the extent."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(ds.extent.xmin, ds.extent.xmax, size=n)
    ys = rng.uniform(ds.extent.ymin, ds.extent.ymax, size=n)
    return [NNQuery(float(x), float(y)) for x, y in zip(xs, ys)]


def knn_queries(
    ds: SegmentDataset, n: int = DEFAULT_RUNS, seed: int = 18, max_k: int = 8
) -> List[KNNQuery]:
    """``n`` k-NN queries at uniformly random points, ``k`` uniform in
    ``[1, max_k]`` so the workload mixes single-NN with deeper searches."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(ds.extent.xmin, ds.extent.xmax, size=n)
    ys = rng.uniform(ds.extent.ymin, ds.extent.ymax, size=n)
    ks = rng.integers(1, max_k + 1, size=n)
    return [
        KNNQuery(float(x), float(y), int(k)) for x, y, k in zip(xs, ys, ks)
    ]


def proximity_sequence(
    ds: SegmentDataset,
    y: int,
    n_groups: int = 1,
    seed: int = 19,
    local_radius_frac: float = 0.01,
    min_area_frac: float = 0.00005,
    max_area_frac: float = 0.0005,
) -> List[Query]:
    """The section-6.2 workload: per group, one anchor range query followed
    by ``y`` queries within ``local_radius_frac`` of the anchor.

    The follow-up windows are small (the magnify-and-browse pattern of a
    road-atlas session) so that, once the server has shipped the anchor's
    neighbourhood, they can be answered from client memory.  ``y = 0``
    degenerates to independent anchor queries.
    """
    if y < 0:
        raise ValueError(f"y must be >= 0, got {y}")
    if n_groups <= 0:
        raise ValueError(f"n_groups must be positive, got {n_groups}")
    rng = np.random.default_rng(seed)
    ext = ds.extent
    radius = local_radius_frac * min(ext.width, ext.height)
    out: List[Query] = []
    anchors = rng.integers(0, ds.size, size=n_groups)
    for i in anchors:
        ax = float(ds.x1[i] + ds.x2[i]) / 2.0
        ay = float(ds.y1[i] + ds.y2[i]) / 2.0
        out.append(_window_at(ds, rng, ax, ay, min_area_frac, max_area_frac))
        for _ in range(y):
            theta = rng.uniform(0, 2 * math.pi)
            r = radius * math.sqrt(rng.uniform(0, 1))
            out.append(
                _window_at(
                    ds, rng,
                    ax + r * math.cos(theta), ay + r * math.sin(theta),
                    min_area_frac, max_area_frac,
                )
            )
    return out


def locality_workload(
    ds: SegmentDataset,
    n_groups: int = 40,
    zoom_depth: int = 3,
    *,
    seed: int = 31,
    repeat_fraction: float = 0.25,
    point_fraction: float = 0.2,
    drift_frac: float = 0.04,
    min_area_frac: float = 0.004,
    max_area_frac: float = 0.02,
) -> List[Query]:
    """A locality-skewed browse workload: hot-region drift + window zooms.

    The semantic cache's target pattern.  A hot center random-walks across
    the extent (``drift_frac`` of the extent per group — a user panning a
    road atlas); each group opens a base window there and zooms in
    ``zoom_depth`` times, every zoom window *strictly contained* in its
    parent (the semantic cache answers it by refining the parent's
    candidates).  ``repeat_fraction`` of groups re-issue an earlier group's
    base window verbatim (back navigation — exact hits);
    ``point_fraction`` of zoom steps instead drop a point query inside the
    current window (points are degenerate windows, so containment algebra
    covers them too).  Seed-deterministic: the same arguments always
    produce the same query list.
    """
    if n_groups <= 0:
        raise ValueError(f"n_groups must be positive, got {n_groups}")
    if zoom_depth < 0:
        raise ValueError(f"zoom_depth must be >= 0, got {zoom_depth}")
    if not (0.0 <= repeat_fraction <= 1.0):
        raise ValueError(
            f"repeat_fraction must be in [0, 1], got {repeat_fraction}"
        )
    if not (0.0 <= point_fraction <= 1.0):
        raise ValueError(
            f"point_fraction must be in [0, 1], got {point_fraction}"
        )
    if not (0 < min_area_frac <= max_area_frac <= 1.0):
        raise ValueError("area fractions must satisfy 0 < min <= max <= 1")
    rng = np.random.default_rng(seed)
    ext = ds.extent
    cx = rng.uniform(ext.xmin, ext.xmax)
    cy = rng.uniform(ext.ymin, ext.ymax)
    out: List[Query] = []
    history: List[RangeQuery] = []
    for _ in range(n_groups):
        cx = min(max(cx + rng.normal(0.0, drift_frac * ext.width), ext.xmin), ext.xmax)
        cy = min(max(cy + rng.normal(0.0, drift_frac * ext.height), ext.ymin), ext.ymax)
        if history and rng.uniform() < repeat_fraction:
            # Back navigation: revisit an earlier viewport verbatim.
            out.append(history[int(rng.integers(0, len(history)))])
            continue
        base = _window_at(ds, rng, cx, cy, min_area_frac, max_area_frac)
        history.append(base)
        out.append(base)
        win = base.rect
        for _ in range(zoom_depth):
            if rng.uniform() < point_fraction:
                # Inspect a feature inside the current viewport.
                out.append(
                    PointQuery(
                        float(rng.uniform(win.xmin, win.xmax)),
                        float(rng.uniform(win.ymin, win.ymax)),
                    )
                )
                continue
            # Zoom: a sub-window strictly inside the current one.
            shrink = rng.uniform(0.4, 0.75)
            w = (win.xmax - win.xmin) * shrink
            h = (win.ymax - win.ymin) * shrink
            x0 = rng.uniform(win.xmin, win.xmax - w)
            y0 = rng.uniform(win.ymin, win.ymax - h)
            win = MBR(x0, y0, x0 + w, y0 + h)
            out.append(RangeQuery(win))
    return out


# ----------------------------------------------------------------------
# Out-of-core datasets (the shard store's target scale)
# ----------------------------------------------------------------------
def oversized_dataset(
    n_segments: int = 20_000, *, seed: int = 7, name: Optional[str] = None
) -> SegmentDataset:
    """A synthetic dataset sized to overflow a shard residency budget.

    Scatters jittered street-grid towns across a wide extent and threads
    wiggly roads between them (the TIGER generator's idiom, at arbitrary
    cardinality), so the segment distribution is clustered the way the
    shard store's equi-count Hilbert cuts expect.  Built for the
    out-of-core differential tests: pick a
    :class:`~repro.core.shardstore.ShardConfig` budget below the dataset's
    total shard bytes and the residency LRU must evict mid-workload while
    answers stay bit-identical.  Seed-deterministic.
    """
    if n_segments < 1:
        raise ValueError(f"n_segments must be >= 1, got {n_segments}")
    from repro.data.tiger import _assemble, _polyline, grid_town

    rng = np.random.default_rng(seed)
    span = 40_000.0  # meters; ~county-sized extent
    n_towns = max(4, n_segments // 2_000)
    centers = rng.uniform(-span / 2.0, span / 2.0, size=(n_towns, 2))
    # One town's grid yields ~2*rows*cols segments; overshoot ~15% so the
    # uniform trim in _assemble has slack.
    per_town = max(1, math.ceil(n_segments * 1.15 / n_towns))
    side = max(2, math.ceil(math.sqrt(per_town / 2.0)))
    parts = []
    for i in range(n_towns):
        cx, cy = float(centers[i, 0]), float(centers[i, 1])
        parts.append(
            grid_town(
                rng, cx, cy, side, side, cell=120.0,
                angle=float(rng.uniform(0.0, math.pi / 2.0)),
            )
        )
        nxt = centers[(i + 1) % n_towns]
        parts.append(
            _polyline(
                rng, cx, cy, float(nxt[0]), float(nxt[1]),
                n_pieces=24, wiggle=0.03,
            )
        )
    return _assemble(
        name if name is not None else f"oversized-{n_segments}",
        parts, n_segments, rng,
    )


# ----------------------------------------------------------------------
# Client fleets (the multi-tenant service workload)
# ----------------------------------------------------------------------
#: Query kinds a client mix may contain.
QUERY_KINDS = ("point", "range", "nn", "knn")

#: Schemes under which NN/k-NN queries are illegal (filter/refine cannot be
#: split for best-first search; mirrors ``SchemeConfig.validate_for``).
_NO_NN_SCHEMES = (
    Scheme.FILTER_CLIENT_REFINE_SERVER,
    Scheme.FILTER_SERVER_REFINE_CLIENT,
)


@dataclass(frozen=True, kw_only=True)
class ClientProfile:
    """One simulated client of the multi-tenant service.

    A profile fixes everything about a client the service needs: its
    partitioning scheme, its pricing :class:`~repro.core.executor.Policy`
    (bandwidth, distance, loss, wait flags), its mean query rate, the query
    kinds it issues, and its energy budget.  ``battery_j`` is the admission
    budget — once a client's served queries have spent it, further queries
    are rejected (``inf`` = mains-powered, never rejected on energy).
    """

    client_id: int
    policy: Policy
    scheme: SchemeConfig
    rate_qps: float = 1.0
    mix: Tuple[str, ...] = ("point", "range")
    battery_j: float = math.inf

    def __post_init__(self) -> None:
        if not isinstance(self.client_id, int) or self.client_id < 0:
            raise ValueError(
                f"client_id must be a non-negative int, got {self.client_id!r}"
            )
        if not isinstance(self.policy, Policy):
            raise TypeError(
                f"policy must be a Policy, got {type(self.policy).__name__}"
            )
        if not isinstance(self.scheme, SchemeConfig):
            raise TypeError(
                f"scheme must be a SchemeConfig, got {type(self.scheme).__name__}"
            )
        if not self.rate_qps > 0:
            raise ValueError(f"rate_qps must be positive, got {self.rate_qps}")
        mix = tuple(self.mix)
        object.__setattr__(self, "mix", mix)
        if not mix:
            raise ValueError("mix must name at least one query kind")
        for kind in mix:
            if kind not in QUERY_KINDS:
                raise ValueError(
                    f"unknown query kind {kind!r}; choose from {QUERY_KINDS}"
                )
        if self.scheme.scheme in _NO_NN_SCHEMES and (
            "nn" in mix or "knn" in mix
        ):
            raise ValueError(
                f"scheme {self.scheme.label!r} cannot serve NN/k-NN queries; "
                "drop 'nn'/'knn' from the mix"
            )
        if not self.battery_j > 0:
            raise ValueError(
                f"battery_j must be positive (inf = unbudgeted), got "
                f"{self.battery_j}"
            )


@dataclass(frozen=True, kw_only=True)
class QueryRequest:
    """One query arriving at the service from one client."""

    client_id: int
    query: Query
    arrival_s: float

    def __post_init__(self) -> None:
        if not isinstance(self.query, Query):
            raise TypeError(
                f"query must be a Query, got {type(self.query).__name__}"
            )
        if not self.arrival_s >= 0:
            raise ValueError(
                f"arrival_s must be >= 0, got {self.arrival_s}"
            )


def client_fleet(
    n_clients: int,
    *,
    seed: int = 23,
    schemes: Optional[Sequence[SchemeConfig]] = None,
    bandwidths_mbps: Sequence[float] = BANDWIDTHS_MBPS,
    distances_m: Sequence[float] = (100.0, 500.0, 1000.0),
    loss_rates: Sequence[float] = (0.0, 0.0, 0.01),
    rate_qps: Tuple[float, float] = (0.5, 2.0),
    battery_j: Optional[float] = None,
    low_battery_fraction: float = 0.25,
) -> List[ClientProfile]:
    """A heterogeneous population of ``n_clients`` service clients.

    Each client draws a scheme from ``schemes`` (default: the six
    adequate-memory configurations), a policy from the bandwidth / distance
    / loss grids, a Poisson rate log-uniform in ``rate_qps``, and a query
    mix compatible with its scheme (filter-split schemes never draw
    NN/k-NN).  With ``battery_j`` set, ``low_battery_fraction`` of the
    fleet gets a finite energy budget near that value; everyone else is
    mains-powered.
    """
    if n_clients <= 0:
        raise ValueError(f"n_clients must be positive, got {n_clients}")
    if not (0 < rate_qps[0] <= rate_qps[1]):
        raise ValueError(
            f"rate_qps must satisfy 0 < lo <= hi, got {rate_qps}"
        )
    if not (0.0 <= low_battery_fraction <= 1.0):
        raise ValueError(
            f"low_battery_fraction must be in [0, 1], got {low_battery_fraction}"
        )
    configs = list(ADEQUATE_MEMORY_CONFIGS if schemes is None else schemes)
    if not configs:
        raise ValueError("schemes must name at least one SchemeConfig")
    mixes: Tuple[Tuple[str, ...], ...] = (
        ("point", "range"),
        ("range",),
        ("point", "range", "nn", "knn"),
        ("nn", "knn"),
    )
    rng = np.random.default_rng(seed)
    fleet: List[ClientProfile] = []
    for cid in range(n_clients):
        scheme = configs[int(rng.integers(len(configs)))]
        legal = [
            m
            for m in mixes
            if not (
                scheme.scheme in _NO_NN_SCHEMES
                and ("nn" in m or "knn" in m)
            )
        ]
        mix = legal[int(rng.integers(len(legal)))]
        policy = (
            Policy()
            .with_bandwidth(
                float(bandwidths_mbps[int(rng.integers(len(bandwidths_mbps)))])
                * MBPS
            )
            .with_distance(float(distances_m[int(rng.integers(len(distances_m)))]))
        )
        loss = float(loss_rates[int(rng.integers(len(loss_rates)))])
        if loss > 0.0:
            policy = policy.with_loss(loss)
        rate = float(
            math.exp(
                rng.uniform(math.log(rate_qps[0]), math.log(rate_qps[1]))
            )
        )
        budget = math.inf
        if battery_j is not None and rng.uniform() < low_battery_fraction:
            budget = float(battery_j * rng.uniform(0.5, 1.5))
        fleet.append(
            ClientProfile(
                client_id=cid,
                policy=policy,
                scheme=scheme,
                rate_qps=rate,
                mix=mix,
                battery_j=budget,
            )
        )
    return fleet


def _one_query(
    ds: SegmentDataset, rng: np.random.Generator, kind: str, max_k: int = 8
) -> Query:
    """One fresh query of ``kind``, drawn like the workload generators."""
    ext = ds.extent
    if kind == "point":
        i = int(rng.integers(ds.size))
        if rng.integers(2) == 0:
            return PointQuery(float(ds.x1[i]), float(ds.y1[i]))
        return PointQuery(float(ds.x2[i]), float(ds.y2[i]))
    if kind == "range":
        i = int(rng.integers(ds.size))
        cx = float(ds.x1[i] + ds.x2[i]) / 2.0
        cy = float(ds.y1[i] + ds.y2[i]) / 2.0
        return _window_at(ds, rng, cx, cy, 0.000015, 0.0015)
    if kind == "nn":
        return NNQuery(
            float(rng.uniform(ext.xmin, ext.xmax)),
            float(rng.uniform(ext.ymin, ext.ymax)),
        )
    if kind == "knn":
        return KNNQuery(
            float(rng.uniform(ext.xmin, ext.xmax)),
            float(rng.uniform(ext.ymin, ext.ymax)),
            int(rng.integers(1, max_k + 1)),
        )
    raise ValueError(f"unknown query kind {kind!r}; choose from {QUERY_KINDS}")


def fleet_query_stream(
    ds: SegmentDataset,
    fleet: Sequence[ClientProfile],
    *,
    duration_s: float,
    seed: int = 29,
    hot_fraction: float = 0.4,
    hot_pool: int = 32,
) -> List[QueryRequest]:
    """The fleet's merged arrival stream over ``duration_s`` seconds.

    Each client fires a Poisson process at its ``rate_qps``; each arrival
    draws a kind from the client's mix, then either a shared *hot* query
    (probability ``hot_fraction``, point/range kinds only — the road-atlas
    landmarks everyone looks at) or a fresh one.  Hot queries repeat across
    clients, which is the cross-client dedup opportunity the service's
    micro-batching exploits.  Per-client draws are seeded by
    ``(seed, client_id)``, so a sub-fleet's stream is independent of the
    rest of the fleet.  Returns arrivals sorted by time.
    """
    if not fleet:
        raise ValueError("fleet must contain at least one ClientProfile")
    if not duration_s > 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if not (0.0 <= hot_fraction <= 1.0):
        raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    if hot_pool < 0:
        raise ValueError(f"hot_pool must be >= 0, got {hot_pool}")
    pool_rng = np.random.default_rng(seed)
    pools = {
        "point": [_one_query(ds, pool_rng, "point") for _ in range(hot_pool)],
        "range": [_one_query(ds, pool_rng, "range") for _ in range(hot_pool)],
    }
    out: List[QueryRequest] = []
    for profile in fleet:
        rng = np.random.default_rng([seed, profile.client_id])
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / profile.rate_qps))
            if t >= duration_s:
                break
            kind = profile.mix[int(rng.integers(len(profile.mix)))]
            pool = pools.get(kind)
            if pool and rng.uniform() < hot_fraction:
                query = pool[int(rng.integers(len(pool)))]
            else:
                query = _one_query(ds, rng, kind)
            out.append(
                QueryRequest(
                    client_id=profile.client_id, query=query, arrival_s=t
                )
            )
    out.sort(key=lambda r: (r.arrival_s, r.client_id))
    return out
