"""Query workload generators (paper section 5.4 and 6.2).

Adequate-memory experiments use 100 runs per query type, each run with
different parameters:

* **Point queries** — "we randomly pick one of the end points of line
  segments in the dataset to compose the query": guaranteed hits, and at a
  street intersection several segments share the endpoint.
* **Range queries** — window size between 0.01% and 1% of the spatial
  extent's area, aspect ratio 0.25-4, and the *location chosen from the
  distribution of the dataset itself* ("a denser region is likely to have
  more query windows"): we anchor each window on the midpoint of a uniformly
  chosen segment, which samples space proportionally to segment density.
* **Nearest-neighbor queries** — "we randomly place the point in the spatial
  extent".

The insufficient-memory experiment (section 6.2) fires a *proximity
sequence*: one query at a random location followed by ``y`` queries "very
close to that" (satisfiable from the shipped region), repeated per group;
``y`` is the spatial-proximity parameter swept in Figure 10.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.core.queries import KNNQuery, NNQuery, PointQuery, Query, RangeQuery
from repro.data.model import SegmentDataset
from repro.spatial.mbr import MBR

__all__ = [
    "point_queries",
    "range_queries",
    "nn_queries",
    "knn_queries",
    "proximity_sequence",
    "DEFAULT_RUNS",
]

#: The paper's workload size per query type.
DEFAULT_RUNS = 100


def point_queries(
    ds: SegmentDataset, n: int = DEFAULT_RUNS, seed: int = 11
) -> List[PointQuery]:
    """``n`` point queries anchored on random segment endpoints."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, ds.size, size=n)
    which_end = rng.integers(0, 2, size=n)
    out: List[PointQuery] = []
    for i, e in zip(idx, which_end):
        if e == 0:
            out.append(PointQuery(float(ds.x1[i]), float(ds.y1[i])))
        else:
            out.append(PointQuery(float(ds.x2[i]), float(ds.y2[i])))
    return out


def _window_at(
    ds: SegmentDataset,
    rng: np.random.Generator,
    cx: float,
    cy: float,
    min_area_frac: float,
    max_area_frac: float,
) -> RangeQuery:
    """One range window centered near ``(cx, cy)`` with the paper's size and
    aspect distributions, clamped into the dataset extent."""
    ext = ds.extent
    # Log-uniform size: the paper's 0.01%..1% spans two decades.
    area = ext.area() * math.exp(
        rng.uniform(math.log(min_area_frac), math.log(max_area_frac))
    )
    aspect = math.exp(rng.uniform(math.log(0.25), math.log(4.0)))
    w = math.sqrt(area * aspect)
    h = area / w
    w = min(w, ext.width)
    h = min(h, ext.height)
    xmin = min(max(cx - w / 2.0, ext.xmin), ext.xmax - w)
    ymin = min(max(cy - h / 2.0, ext.ymin), ext.ymax - h)
    return RangeQuery(MBR(xmin, ymin, xmin + w, ymin + h))


def range_queries(
    ds: SegmentDataset,
    n: int = DEFAULT_RUNS,
    seed: int = 13,
    min_area_frac: float = 0.000015,
    max_area_frac: float = 0.0015,
) -> List[RangeQuery]:
    """``n`` density-weighted range queries.

    The paper states window sizes of "0.01% to 1% of the spatial extent";
    our synthetic networks are denser inside their towns than the rural
    TIGER extracts, so the default window-area range here is one decade
    smaller, chosen so the *filter selectivity* (and therefore the per-query
    message volumes the figures are built from) matches what the paper's
    Figure 5 bars imply: ~400-500 candidates per range query on the PA
    dataset.  Pass the paper's literal fractions to override.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not (0 < min_area_frac <= max_area_frac <= 1.0):
        raise ValueError("area fractions must satisfy 0 < min <= max <= 1")
    rng = np.random.default_rng(seed)
    anchors = rng.integers(0, ds.size, size=n)
    out: List[RangeQuery] = []
    for i in anchors:
        cx = float(ds.x1[i] + ds.x2[i]) / 2.0
        cy = float(ds.y1[i] + ds.y2[i]) / 2.0
        out.append(_window_at(ds, rng, cx, cy, min_area_frac, max_area_frac))
    return out


def nn_queries(
    ds: SegmentDataset, n: int = DEFAULT_RUNS, seed: int = 17
) -> List[NNQuery]:
    """``n`` NN queries at uniformly random points in the extent."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(ds.extent.xmin, ds.extent.xmax, size=n)
    ys = rng.uniform(ds.extent.ymin, ds.extent.ymax, size=n)
    return [NNQuery(float(x), float(y)) for x, y in zip(xs, ys)]


def knn_queries(
    ds: SegmentDataset, n: int = DEFAULT_RUNS, seed: int = 18, max_k: int = 8
) -> List[KNNQuery]:
    """``n`` k-NN queries at uniformly random points, ``k`` uniform in
    ``[1, max_k]`` so the workload mixes single-NN with deeper searches."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(ds.extent.xmin, ds.extent.xmax, size=n)
    ys = rng.uniform(ds.extent.ymin, ds.extent.ymax, size=n)
    ks = rng.integers(1, max_k + 1, size=n)
    return [
        KNNQuery(float(x), float(y), int(k)) for x, y, k in zip(xs, ys, ks)
    ]


def proximity_sequence(
    ds: SegmentDataset,
    y: int,
    n_groups: int = 1,
    seed: int = 19,
    local_radius_frac: float = 0.01,
    min_area_frac: float = 0.00005,
    max_area_frac: float = 0.0005,
) -> List[Query]:
    """The section-6.2 workload: per group, one anchor range query followed
    by ``y`` queries within ``local_radius_frac`` of the anchor.

    The follow-up windows are small (the magnify-and-browse pattern of a
    road-atlas session) so that, once the server has shipped the anchor's
    neighbourhood, they can be answered from client memory.  ``y = 0``
    degenerates to independent anchor queries.
    """
    if y < 0:
        raise ValueError(f"y must be >= 0, got {y}")
    if n_groups <= 0:
        raise ValueError(f"n_groups must be positive, got {n_groups}")
    rng = np.random.default_rng(seed)
    ext = ds.extent
    radius = local_radius_frac * min(ext.width, ext.height)
    out: List[Query] = []
    anchors = rng.integers(0, ds.size, size=n_groups)
    for i in anchors:
        ax = float(ds.x1[i] + ds.x2[i]) / 2.0
        ay = float(ds.y1[i] + ds.y2[i]) / 2.0
        out.append(_window_at(ds, rng, ax, ay, min_area_frac, max_area_frac))
        for _ in range(y):
            theta = rng.uniform(0, 2 * math.pi)
            r = radius * math.sqrt(rng.uniform(0, 1))
            out.append(
                _window_at(
                    ds, rng,
                    ax + r * math.cos(theta), ay + r * math.sin(theta),
                    min_area_frac, max_area_frac,
                )
            )
    return out
