"""Datasets and workloads.

* :class:`repro.data.model.SegmentDataset` — line-segment dataset container.
* :mod:`repro.data.tiger` — synthetic TIGER-like road networks (PA, NYC).
* :mod:`repro.data.workloads` — the paper's query workload generators.
"""

from repro.data.model import SegmentDataset

__all__ = ["SegmentDataset"]
