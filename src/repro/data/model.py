"""Dataset container and byte-size model for line-segment spatial data.

A :class:`SegmentDataset` holds the road-atlas line segments as parallel NumPy
column arrays (structure-of-arrays, per the HPC guides: contiguous columns
vectorize and cache well), plus the metadata the rest of the system needs —
the spatial extent and the byte-size model that message construction and the
insufficient-memory budgeting use.

The byte-size model matches the paper's published dataset sizes: the PA
dataset (139 006 segments) occupies about 10.06 MB, i.e. ~76 bytes per stored
segment (four float32 coordinates plus an id and a fixed-width name payload).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.constants import DEFAULT_COSTS, CostModel
from repro.spatial.mbr import MBR

__all__ = ["SegmentDataset"]


@dataclass
class SegmentDataset:
    """Immutable-by-convention container of ``n`` line segments.

    Attributes
    ----------
    name:
        Human-readable dataset label (``"PA"``, ``"NYC"``, …).
    x1, y1, x2, y2:
        Endpoint coordinate columns, each shape ``(n,)`` float64.
    extent:
        The MBR of the whole dataset (precomputed at construction).
    costs:
        The byte-size model used for size accounting.
    """

    name: str
    x1: np.ndarray
    y1: np.ndarray
    x2: np.ndarray
    y2: np.ndarray
    extent: MBR = field(init=False)
    costs: CostModel = field(default=DEFAULT_COSTS)

    def __post_init__(self) -> None:
        cols = (self.x1, self.y1, self.x2, self.y2)
        n = len(self.x1)
        if any(len(c) != n for c in cols):
            raise ValueError("coordinate columns must have equal length")
        if n == 0:
            raise ValueError("a dataset must contain at least one segment")
        for attr in ("x1", "y1", "x2", "y2"):
            setattr(self, attr, np.ascontiguousarray(getattr(self, attr), dtype=np.float64))
        self.extent = MBR(
            float(min(self.x1.min(), self.x2.min())),
            float(min(self.y1.min(), self.y2.min())),
            float(max(self.x1.max(), self.x2.max())),
            float(max(self.y1.max(), self.y2.max())),
        )

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.x1)

    @property
    def size(self) -> int:
        """Number of segments."""
        return len(self.x1)

    def segment(self, i: int) -> tuple[float, float, float, float]:
        """Endpoints of segment ``i`` as plain floats."""
        return (
            float(self.x1[i]),
            float(self.y1[i]),
            float(self.x2[i]),
            float(self.y2[i]),
        )

    def segment_mbr(self, i: int) -> MBR:
        """MBR of segment ``i``."""
        return MBR.from_segment(*self.segment(i))

    def centers(self) -> tuple[np.ndarray, np.ndarray]:
        """Center points of every segment's MBR (Hilbert sort keys use these)."""
        return (self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0

    def subset(self, ids: Sequence[int] | np.ndarray, name: str | None = None) -> "SegmentDataset":
        """A new dataset containing only the segments in ``ids``.

        The returned dataset re-derives its extent from the subset.  Used by
        the insufficient-memory path, where the server ships a spatially
        proximate slice of the master dataset to the client.
        """
        idx = np.asarray(ids, dtype=np.intp)
        if idx.size == 0:
            raise ValueError("subset() requires at least one segment id")
        return SegmentDataset(
            name=name if name is not None else f"{self.name}-subset",
            x1=self.x1[idx],
            y1=self.y1[idx],
            x2=self.x2[idx],
            y2=self.y2[idx],
            costs=self.costs,
        )

    # ------------------------------------------------------------------
    # Byte-size model
    # ------------------------------------------------------------------
    def data_bytes(self, count: int | None = None) -> int:
        """Stored size of ``count`` segments (whole dataset by default)."""
        n = self.size if count is None else count
        return n * self.costs.segment_record_bytes

    def id_bytes(self, count: int) -> int:
        """Wire size of a list of ``count`` object identifiers."""
        return count * self.costs.object_id_bytes
