"""Level-synchronous batched filtering over the packed R-tree.

The scalar filters in :mod:`repro.spatial.rtree` walk one query at a time
down the tree with a Python stack.  This module traverses a whole workload
of window/point queries at once, exploiting the structure-of-arrays layout
the tree was designed for: the live frontier is a flat array of
``(query, node)`` pairs, and each tree level is expanded with one NumPy
broadcast of every frontier node's children against its query's window.
Point queries ride the same code path as degenerate windows
``(px, py, px, py)`` — the comparisons are term-for-term the scalar
``point_filter`` test, so the matched sets are identical.

Exactness contract (the batched planner depends on it):

* the *set* of visited nodes and matched entries per query equals the
  scalar traversal's, because each (node, window) test is the same four
  float comparisons;
* the *order* of visited nodes per query equals the scalar DFS preorder.
  Level-synchronous expansion produces BFS order, so visited nodes are
  re-sorted by ``(entry-span start, -level)`` — span starts nest (an
  ancestor shares its first child's span start and has strictly higher
  level; disjoint subtrees have disjoint spans in traversal order), which
  makes that sort key exactly preorder;
* candidates per query are ordered by packed entry position, which is the
  scalar DFS leaf-scan order (leaves are visited left to right).

Everything returned is CSR-shaped: concatenated arrays plus per-query
offsets, ready for bulk refinement and trace assembly without per-query
Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spatial.rtree import PackedRTree

__all__ = ["BatchFilterResult", "batch_filter"]


@dataclass(frozen=True)
class BatchFilterResult:
    """Per-query traversal output in CSR form (query-major, offsets aligned)."""

    #: Visited node ids in scalar DFS preorder, all queries concatenated.
    visited: np.ndarray
    #: ``(n_queries + 1,)`` offsets into :attr:`visited`.
    visited_offsets: np.ndarray
    #: Matched entry positions (packed order, ascending per query).
    cand_positions: np.ndarray
    #: Matched segment ids, aligned with :attr:`cand_positions`.
    cand_ids: np.ndarray
    #: ``(n_queries + 1,)`` offsets into the candidate arrays.
    cand_offsets: np.ndarray
    #: Per-query MBR-test tallies (one per child of every visited node).
    mbr_tests: np.ndarray

    @property
    def n_queries(self) -> int:
        """Number of queries this batch covered."""
        return len(self.visited_offsets) - 1

    def nodes_of(self, i: int) -> np.ndarray:
        """Query ``i``'s visited nodes in DFS preorder."""
        return self.visited[self.visited_offsets[i] : self.visited_offsets[i + 1]]

    def candidates_of(self, i: int) -> np.ndarray:
        """Query ``i``'s candidate segment ids in scalar filter order."""
        return self.cand_ids[self.cand_offsets[i] : self.cand_offsets[i + 1]]


def _csr_offsets(group: np.ndarray, n_groups: int) -> np.ndarray:
    """``(n_groups + 1,)`` offsets of sorted group labels."""
    counts = np.bincount(group, minlength=n_groups) if group.size else np.zeros(
        n_groups, dtype=np.int64
    )
    offsets = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def batch_filter(
    tree: PackedRTree,
    qxmin: np.ndarray,
    qymin: np.ndarray,
    qxmax: np.ndarray,
    qymax: np.ndarray,
) -> BatchFilterResult:
    """Filter ``n`` windows against the tree in one level-synchronous sweep.

    A point query is passed as the degenerate window ``(px, py, px, py)``:
    ``node_xmin <= qxmax`` then reads ``node_xmin <= px`` and so on — the
    exact comparisons of ``point_filter``.
    """
    qxmin = np.asarray(qxmin, dtype=np.float64)
    qymin = np.asarray(qymin, dtype=np.float64)
    qxmax = np.asarray(qxmax, dtype=np.float64)
    qymax = np.asarray(qymax, dtype=np.float64)
    nq = len(qxmin)
    empty_i64 = np.empty(0, dtype=np.int64)
    if nq == 0:
        z = np.zeros(1, dtype=np.int64)
        return BatchFilterResult(
            visited=empty_i64, visited_offsets=z,
            cand_positions=empty_i64, cand_ids=empty_i64, cand_offsets=z,
            mbr_tests=empty_i64,
        )

    # Frontier: (query, node) pairs, one uniform tree level at a time.
    fq = np.arange(nq, dtype=np.int64)
    fn = np.full(nq, tree.root, dtype=np.int64)
    vq_parts = [fq]
    vn_parts = [fn]
    cand_q = empty_i64
    cand_pos = empty_i64
    while fn.size:
        counts = tree.node_child_count[fn].astype(np.int64)
        starts = tree.node_child_start[fn].astype(np.int64)
        total = int(counts.sum())
        run_starts = np.cumsum(counts) - counts
        child = np.repeat(starts - run_starts, counts) + np.arange(total, dtype=np.int64)
        cq = np.repeat(fq, counts)
        if tree.node_level[fn[0]] == 0:
            # Leaf frontier: children are packed entry positions.
            hit = (
                (tree.entry_xmin[child] <= qxmax[cq])
                & (tree.entry_xmax[child] >= qxmin[cq])
                & (tree.entry_ymin[child] <= qymax[cq])
                & (tree.entry_ymax[child] >= qymin[cq])
            )
            cand_q = cq[hit]
            cand_pos = child[hit]
            break
        hit = (
            (tree.node_xmin[child] <= qxmax[cq])
            & (tree.node_xmax[child] >= qxmin[cq])
            & (tree.node_ymin[child] <= qymax[cq])
            & (tree.node_ymax[child] >= qymin[cq])
        )
        fq = cq[hit]
        fn = child[hit]
        vq_parts.append(fq)
        vn_parts.append(fn)

    vq = np.concatenate(vq_parts)
    vn = np.concatenate(vn_parts)
    mbr_tests = np.bincount(
        vq, weights=tree.node_child_count[vn], minlength=nq
    ).astype(np.int64)

    # BFS -> DFS preorder: (query, span start, -level).
    spans = tree.entry_span_start()
    order = np.lexsort((-tree.node_level[vn].astype(np.int64), spans[vn], vq))
    visited = vn[order]
    visited_offsets = _csr_offsets(vq, nq)

    order = np.lexsort((cand_pos, cand_q))
    cand_q = cand_q[order]
    cand_pos = cand_pos[order]
    return BatchFilterResult(
        visited=visited,
        visited_offsets=visited_offsets,
        cand_positions=cand_pos,
        cand_ids=tree.entry_ids[cand_pos],
        cand_offsets=_csr_offsets(cand_q, nq),
        mbr_tests=mbr_tests,
    )
