"""Linear-scan reference implementations (the test oracle).

Every R-tree query must return exactly what a whole-dataset scan returns:
these functions define that ground truth.  They are also the honest baseline
for "how much does the index actually buy you" sanity checks.

Filtering and refinement are exposed separately, mirroring the two query
phases, so tests can validate each phase of the engine independently:

* ``*_filter`` functions apply only the MBR predicate (candidates),
* ``*_refine``/exact functions apply the exact geometric predicate (answers).
"""

from __future__ import annotations

import numpy as np

from repro.data.model import SegmentDataset
from repro.spatial import vecgeom
from repro.spatial.geometry import DEFAULT_EPS
from repro.spatial.mbr import MBR

__all__ = [
    "range_filter",
    "range_query",
    "point_filter",
    "point_query",
    "nearest_neighbor",
    "k_nearest_neighbors",
]


def range_filter(ds: SegmentDataset, rect: MBR) -> np.ndarray:
    """Ids of segments whose MBR intersects ``rect`` (filter phase oracle)."""
    mask = vecgeom.mbr_intersects_rect(ds.x1, ds.y1, ds.x2, ds.y2, rect)
    return np.nonzero(mask)[0].astype(np.int64)


def range_query(ds: SegmentDataset, rect: MBR) -> np.ndarray:
    """Ids of segments that exactly intersect the window ``rect``."""
    mask = vecgeom.segments_intersect_rect(ds.x1, ds.y1, ds.x2, ds.y2, rect)
    return np.nonzero(mask)[0].astype(np.int64)


def point_filter(ds: SegmentDataset, px: float, py: float) -> np.ndarray:
    """Ids of segments whose MBR contains the point (filter phase oracle)."""
    mask = vecgeom.mbr_contains_point(ds.x1, ds.y1, ds.x2, ds.y2, px, py)
    return np.nonzero(mask)[0].astype(np.int64)


def point_query(
    ds: SegmentDataset, px: float, py: float, eps: float = DEFAULT_EPS
) -> np.ndarray:
    """Ids of segments passing within ``eps`` of the point."""
    mask = vecgeom.segments_contain_point(px, py, ds.x1, ds.y1, ds.x2, ds.y2, eps)
    return np.nonzero(mask)[0].astype(np.int64)


def nearest_neighbor(ds: SegmentDataset, px: float, py: float) -> int:
    """Id of the segment nearest to the point (ties: lowest id)."""
    d = vecgeom.point_segment_distance_sq(px, py, ds.x1, ds.y1, ds.x2, ds.y2)
    return int(np.argmin(d))


def k_nearest_neighbors(
    ds: SegmentDataset, px: float, py: float, k: int
) -> np.ndarray:
    """Ids of the ``k`` nearest segments, nearest first (ties: lowest id)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    d = vecgeom.point_segment_distance_sq(px, py, ds.x1, ds.y1, ds.x2, ds.y2)
    k = min(k, ds.size)
    # argsort is stable, so equal distances break toward the lower id.
    return np.argsort(d, kind="stable")[:k].astype(np.int64)
