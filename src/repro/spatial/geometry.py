"""Exact geometric predicates on line segments (the refinement step).

Road-atlas datasets are dominated by line segments (street polyline pieces),
and the three queries of the paper refine candidates with exactly three
primitives, implemented here:

* :func:`segment_contains_point` — point query refinement: does a segment pass
  through a query point (within a tolerance)?
* :func:`segment_intersects_rect` — range (window) query refinement: does a
  segment intersect an axis-aligned rectangle?
* :func:`point_segment_distance` — nearest-neighbor metric: perpendicular
  distance to the segment when the foot of the perpendicular lies on it,
  distance to the nearer endpoint otherwise (the paper's definition).

These are the scalar reference implementations; :mod:`repro.spatial.vecgeom`
provides NumPy-vectorized equivalents used by the brute-force oracle and the
dataset generators.  Tolerances are explicit parameters because point queries
on floating-point road data are meaningless at exact-zero tolerance.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.spatial.mbr import MBR

__all__ = [
    "DEFAULT_EPS",
    "segment_contains_point",
    "segment_intersects_rect",
    "segments_intersect",
    "point_segment_distance_sq",
    "point_segment_distance",
    "segment_length",
]

#: Default tolerance for point-on-segment membership, in dataset coordinate
#: units.  Datasets produced by :mod:`repro.data.tiger` use a unit square
#: extent, so this is ~1e-9 of the extent: effectively "exact" for endpoints
#: chosen from the data, while still robust to float rounding.
DEFAULT_EPS = 1e-9


def segment_length(x1: float, y1: float, x2: float, y2: float) -> float:
    """Euclidean length of the segment ``(x1, y1)-(x2, y2)``."""
    return math.hypot(x2 - x1, y2 - y1)


def point_segment_distance_sq(
    px: float, py: float, x1: float, y1: float, x2: float, y2: float
) -> float:
    """Squared distance from point ``(px, py)`` to segment ``(x1,y1)-(x2,y2)``.

    Uses the standard projection parameterization: the foot of the
    perpendicular at parameter ``t`` is clamped to ``[0, 1]`` so that the
    result is the perpendicular distance when the perpendicular meets the
    segment and the distance to the closest endpoint otherwise — exactly the
    nearest-neighbor distance definition in the paper.
    """
    dx = x2 - x1
    dy = y2 - y1
    len_sq = dx * dx + dy * dy
    if len_sq == 0.0:
        # Degenerate segment: a point.
        ex = px - x1
        ey = py - y1
        return ex * ex + ey * ey
    t = ((px - x1) * dx + (py - y1) * dy) / len_sq
    if t < 0.0:
        t = 0.0
    elif t > 1.0:
        t = 1.0
    cx = x1 + t * dx
    cy = y1 + t * dy
    ex = px - cx
    ey = py - cy
    return ex * ex + ey * ey


def point_segment_distance(
    px: float, py: float, x1: float, y1: float, x2: float, y2: float
) -> float:
    """Distance from a point to a segment (see the squared variant)."""
    return math.sqrt(point_segment_distance_sq(px, py, x1, y1, x2, y2))


def segment_contains_point(
    px: float,
    py: float,
    x1: float,
    y1: float,
    x2: float,
    y2: float,
    eps: float = DEFAULT_EPS,
) -> bool:
    """True when the segment passes within ``eps`` of the point.

    This is the refinement predicate of the point query: "all line segments
    that intersect a given point", with a tolerance making it robust on float
    coordinates (streets meeting at an intersection share an endpoint exactly
    in the datasets, so endpoint-anchored query workloads are exact).
    """
    return point_segment_distance_sq(px, py, x1, y1, x2, y2) <= eps * eps


def _orient(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> float:
    """Signed area orientation of the triangle ``a, b, c``."""
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def segments_intersect(
    ax1: float, ay1: float, ax2: float, ay2: float,
    bx1: float, by1: float, bx2: float, by2: float,
) -> bool:
    """True when segments ``a`` and ``b`` intersect (including touching).

    Standard orientation test with collinear-overlap handling; used by the
    window-clip refinement and exposed for spatial-join style extensions.
    """
    d1 = _orient(bx1, by1, bx2, by2, ax1, ay1)
    d2 = _orient(bx1, by1, bx2, by2, ax2, ay2)
    d3 = _orient(ax1, ay1, ax2, ay2, bx1, by1)
    d4 = _orient(ax1, ay1, ax2, ay2, bx2, by2)
    if ((d1 > 0 and d2 < 0) or (d1 < 0 and d2 > 0)) and (
        (d3 > 0 and d4 < 0) or (d3 < 0 and d4 > 0)
    ):
        return True

    def on_segment(px, py, qx, qy, rx, ry) -> bool:
        # r collinear with pq: does r lie within the pq bounding box?
        return min(px, qx) <= rx <= max(px, qx) and min(py, qy) <= ry <= max(py, qy)

    if d1 == 0 and on_segment(bx1, by1, bx2, by2, ax1, ay1):
        return True
    if d2 == 0 and on_segment(bx1, by1, bx2, by2, ax2, ay2):
        return True
    if d3 == 0 and on_segment(ax1, ay1, ax2, ay2, bx1, by1):
        return True
    if d4 == 0 and on_segment(ax1, ay1, ax2, ay2, bx2, by2):
        return True
    return False


# Cohen-Sutherland outcodes for the window clip test.
_INSIDE, _LEFT, _RIGHT, _BOTTOM, _TOP = 0, 1, 2, 4, 8


def _outcode(x: float, y: float, rect: MBR) -> int:
    code = _INSIDE
    if x < rect.xmin:
        code |= _LEFT
    elif x > rect.xmax:
        code |= _RIGHT
    if y < rect.ymin:
        code |= _BOTTOM
    elif y > rect.ymax:
        code |= _TOP
    return code


def segment_intersects_rect(
    x1: float, y1: float, x2: float, y2: float, rect: MBR
) -> bool:
    """True when the segment intersects the axis-aligned window ``rect``.

    Cohen-Sutherland style: trivially accept when an endpoint is inside,
    trivially reject when both endpoints share an outside half-plane, and
    otherwise test the segment against the (up to four) window edges.  This is
    the range-query refinement predicate, and its FP-operation count is what
    :attr:`repro.constants.CostModel.fp_per_range_refine` prices.
    """
    code1 = _outcode(x1, y1, rect)
    code2 = _outcode(x2, y2, rect)
    if code1 == _INSIDE or code2 == _INSIDE:
        return True
    if code1 & code2:
        return False
    # Non-trivial: test against window edges.
    corners: Tuple[Tuple[float, float, float, float], ...] = (
        (rect.xmin, rect.ymin, rect.xmax, rect.ymin),  # bottom
        (rect.xmax, rect.ymin, rect.xmax, rect.ymax),  # right
        (rect.xmax, rect.ymax, rect.xmin, rect.ymax),  # top
        (rect.xmin, rect.ymax, rect.xmin, rect.ymin),  # left
    )
    for ex1, ey1, ex2, ey2 in corners:
        if segments_intersect(x1, y1, x2, y2, ex1, ey1, ex2, ey2):
            return True
    return False
