"""Hilbert space-filling curve encoding for two-dimensional points.

Kamel and Faloutsos's packed R-tree sorts the data items by the Hilbert value
of their MBR centers before bulk-loading the tree bottom-up; the curve's
locality (points close on the curve are close in space) is what gives the
packed tree its tight, low-overlap leaf MBRs.

This module provides:

* :func:`xy_to_d` / :func:`d_to_xy` — the classic iterative quadrant-rotation
  bijection between grid coordinates ``(x, y)`` on a ``2**order``-sized grid
  and the curve index ``d`` (scalar, exact integers).
* :func:`hilbert_sort_keys` — vectorized NumPy encoding of float coordinates
  (normalized into the dataset extent) used for sorting large datasets; this
  is the hot path of the bulk load, so it is fully vectorized per the HPC
  guides (no Python loop over points — only over the ``order`` bit levels).
"""

from __future__ import annotations

import numpy as np

from repro.spatial.mbr import MBR

__all__ = [
    "DEFAULT_ORDER",
    "xy_to_d",
    "xy_to_d_bulk",
    "d_to_xy",
    "hilbert_sort_keys",
]

#: Default curve order: a 2^16 x 2^16 grid gives sub-meter resolution on a
#: county-scale extent, far below street-segment length, so ties are rare.
DEFAULT_ORDER = 16


def xy_to_d(order: int, x: int, y: int) -> int:
    """Hilbert index of grid cell ``(x, y)`` on a ``2**order`` grid.

    Raises :class:`ValueError` when the coordinates fall outside the grid —
    an out-of-range coordinate silently wraps in many published snippets and
    destroys the locality property.

    Note the flip in the quadrant rotation uses the *full* grid size ``n``:
    because ``n`` is a power of two, ``n - 1 - x`` complements every bit of
    ``x`` below ``n``, which is what the recurrence needs even though only
    bits below the current level remain relevant.
    """
    n = 1 << order
    if not (0 <= x < n and 0 <= y < n):
        raise ValueError(f"({x}, {y}) outside the {n}x{n} Hilbert grid")
    d = 0
    s = n >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        if ry == 0:
            if rx == 1:
                x = n - 1 - x
                y = n - 1 - y
            x, y = y, x
        s >>= 1
    return d


def d_to_xy(order: int, d: int) -> tuple[int, int]:
    """Grid cell ``(x, y)`` of Hilbert index ``d`` (inverse of :func:`xy_to_d`).

    Builds the coordinates from the least-significant quadrant upward; at each
    level the partial coordinates are below ``s``, so the flip here uses the
    sub-square size ``s`` rather than the full grid.
    """
    n = 1 << order
    if not (0 <= d < n * n):
        raise ValueError(f"Hilbert index {d} outside the order-{order} curve")
    x = y = 0
    t = d
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


def xy_to_d_bulk(order: int, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Hilbert indices for integer grid cells, vectorized over the arrays.

    Exact-integer bulk counterpart of :func:`xy_to_d`: same quadrant-rotation
    recurrence, same :class:`ValueError` on out-of-grid coordinates, but the
    loop runs over the ``order`` bit levels while NumPy handles the per-point
    work.  The scalar function is kept as the differential oracle; the
    equivalence test lives in ``tests/spatial/test_hilbert.py``.  Output
    dtype is ``uint64``, exact for ``order <= 31``.
    """
    if order <= 0 or order > 31:
        raise ValueError(f"order must be in [1, 31], got {order}")
    x = np.asarray(xs, dtype=np.uint64)
    y = np.asarray(ys, dtype=np.uint64)
    if x.shape != y.shape:
        raise ValueError("xs and ys must have the same shape")
    n = np.uint64(1) << np.uint64(order)
    if x.size and (int(x.max()) >= int(n) or int(y.max()) >= int(n)):
        bad = int(np.argmax((x >= n) | (y >= n)))
        raise ValueError(
            f"({int(x.flat[bad])}, {int(y.flat[bad])}) outside the "
            f"{int(n)}x{int(n)} Hilbert grid"
        )
    d = np.zeros(x.shape, dtype=np.uint64)
    one = np.uint64(1)
    zero = np.uint64(0)
    s = n >> one
    while s > 0:
        rx = np.where((x & s) > 0, one, zero)
        ry = np.where((y & s) > 0, one, zero)
        d += s * s * ((np.uint64(3) * rx) ^ ry)
        # Quadrant rotation, vectorized: flip over the full grid (bitwise
        # complement below n) where rx == 1 and ry == 0, then swap where
        # ry == 0 — mirroring the scalar xy_to_d exactly.
        swap = ry == zero
        flip = swap & (rx == one)
        x_f = np.where(flip, n - one - x, x)
        y_f = np.where(flip, n - one - y, y)
        x_new = np.where(swap, y_f, x_f)
        y_new = np.where(swap, x_f, y_f)
        x, y = x_new, y_new
        s >>= one
    return d


def hilbert_sort_keys(
    xs: np.ndarray,
    ys: np.ndarray,
    extent: MBR,
    order: int = DEFAULT_ORDER,
) -> np.ndarray:
    """Hilbert indices for float points, vectorized over the whole array.

    ``xs``/``ys`` are mapped onto the ``2**order`` grid spanning ``extent``
    (points on the max edge land in the last cell), then encoded with
    :func:`xy_to_d_bulk`.  Output dtype is ``uint64``, exact for
    ``order <= 31``.

    Agreement with the scalar :func:`xy_to_d` is property-tested.
    """
    if extent.width <= 0 or extent.height <= 0:
        raise ValueError("extent must have positive area for Hilbert scaling")
    nf = float(1 << order)
    gx = np.clip((np.asarray(xs, dtype=np.float64) - extent.xmin)
                 / extent.width * nf, 0, nf - 1).astype(np.uint64)
    gy = np.clip((np.asarray(ys, dtype=np.float64) - extent.ymin)
                 / extent.height * nf, 0, nf - 1).astype(np.uint64)
    return xy_to_d_bulk(order, gx, gy)
