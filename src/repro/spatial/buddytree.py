"""Buddy-tree-style index: non-overlapping binary space partition.

The third structure in the paper's reference [2] comparison is the buddy
tree (Seeger & Kriegel, VLDB '90): a dynamic structure whose directory
rectangles are drawn from a recursive *buddy* decomposition of space —
halving one axis at a time — so sibling regions never overlap (unlike the
R-tree) and the directory adapts to the data (unlike a plain grid).

This module implements the static, bulk-loaded core of that design point
for the index comparison:

* space is split recursively into **buddy halves** (alternating axis,
  midpoint cuts — every region is reachable by halving, the buddy-system
  invariant);
* a node splits while it holds more than ``page_capacity`` segments *and*
  splitting actually separates them;
* a segment lives in the **smallest buddy region that fully contains it**
  (the MX-CIF discipline): spanning segments sit at interior nodes, so
  nothing is replicated (the quadtree's cost) and nothing overlaps (the
  R-tree's cost) — the buddy tree's characteristic trade: queries must
  inspect the spanning lists of every node on their search path.

This is a faithful *static* rendition of the buddy design point rather
than the full dynamic insertion algorithm (the paper's datasets are static
and bulk-loaded, like its packed R-tree).  Queries are instrumented with
the same :class:`~repro.sim.trace.OpCounter` events as the other indexes.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, TYPE_CHECKING

import numpy as np

from repro.constants import DEFAULT_COSTS, CostModel
from repro.sim.trace import OpCounter
from repro.spatial import geometry
from repro.spatial.mbr import MBR

if TYPE_CHECKING:  # circular at runtime, see rtree.py
    from repro.data.model import SegmentDataset

__all__ = ["BuddyTree", "DEFAULT_PAGE_CAPACITY"]

#: Segments per page before a region splits.
DEFAULT_PAGE_CAPACITY = 16
#: Maximum halvings (region side = extent / 2^(depth/2)).
_MAX_DEPTH = 32


class _Node:
    """One buddy region: spanning segments plus optional two halves."""

    __slots__ = ("node_id", "rect", "depth", "seg_ids", "low", "high")

    def __init__(self, node_id: int, rect: MBR, depth: int) -> None:
        self.node_id = node_id
        self.rect = rect
        self.depth = depth
        self.seg_ids: List[int] = []
        self.low: Optional["_Node"] = None
        self.high: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.low is None


class BuddyTree:
    """A bulk-loaded buddy-style index over a :class:`SegmentDataset`."""

    def __init__(
        self,
        dataset: "SegmentDataset",
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
        costs: CostModel = DEFAULT_COSTS,
    ) -> None:
        if page_capacity < 1:
            raise ValueError(f"page_capacity must be >= 1, got {page_capacity}")
        self.dataset = dataset
        self.page_capacity = page_capacity
        self.costs = costs
        self._next_id = 0
        ext = dataset.extent
        side = max(ext.width, ext.height)
        root_rect = MBR(ext.xmin, ext.ymin, ext.xmin + side, ext.ymin + side)
        self.root = self._build(root_rect, list(range(dataset.size)), 0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _halves(self, rect: MBR, depth: int) -> tuple[MBR, MBR]:
        """The two buddy halves (alternate the split axis by depth)."""
        cx, cy = rect.center()
        if depth % 2 == 0:
            return (
                MBR(rect.xmin, rect.ymin, cx, rect.ymax),
                MBR(cx, rect.ymin, rect.xmax, rect.ymax),
            )
        return (
            MBR(rect.xmin, rect.ymin, rect.xmax, cy),
            MBR(rect.xmin, cy, rect.xmax, rect.ymax),
        )

    def _build(self, rect: MBR, seg_ids: List[int], depth: int) -> _Node:
        node = _Node(self._next_id, rect, depth)
        self._next_id += 1
        if len(seg_ids) <= self.page_capacity or depth >= _MAX_DEPTH:
            node.seg_ids = seg_ids
            return node
        lo_rect, hi_rect = self._halves(rect, depth)
        ds = self.dataset
        spanning: List[int] = []
        lo_ids: List[int] = []
        hi_ids: List[int] = []
        for seg_id in seg_ids:
            mbr = ds.segment_mbr(seg_id)
            if lo_rect.contains(mbr):
                lo_ids.append(seg_id)
            elif hi_rect.contains(mbr):
                hi_ids.append(seg_id)
            else:
                spanning.append(seg_id)  # crosses the cut: stays here
        if not lo_ids and not hi_ids:
            # Splitting separates nothing: keep the page whole.
            node.seg_ids = seg_ids
            return node
        node.seg_ids = spanning
        node.low = self._build(lo_rect, lo_ids, depth + 1)
        node.high = self._build(hi_rect, hi_ids, depth + 1)
        return node

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Total buddy regions allocated."""
        return self._next_id

    def depth(self) -> int:
        """Maximum node depth."""
        best = 0
        stack = [self.root]
        while stack:
            n = stack.pop()
            best = max(best, n.depth)
            if not n.is_leaf:
                stack.extend((n.low, n.high))
        return best

    def index_bytes(self) -> int:
        """Stored size: headers plus one entry per segment (no replication)."""
        return (
            self.node_count * self.costs.index_node_header_bytes
            + self.dataset.size * self.costs.index_entry_bytes
        )

    def _node_bytes(self, node: _Node) -> int:
        n = len(node.seg_ids) + (0 if node.is_leaf else 2)
        return self.costs.index_node_header_bytes + n * self.costs.index_entry_bytes

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _scan_node(
        self, node: _Node, predicate, counter: OpCounter, out: List[int]
    ) -> None:
        counter.mbr_tests += len(node.seg_ids)
        for seg_id in node.seg_ids:
            if predicate(self.dataset.segment_mbr(seg_id)):
                counter.entries_scanned += 1
                out.append(seg_id)

    def range_filter(
        self, rect: MBR, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """Candidate ids whose MBR intersects the window."""
        counter = counter if counter is not None else OpCounter(record_trace=False)
        out: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            counter.visit_node(node.node_id, self._node_bytes(node))
            self._scan_node(node, lambda m: m.intersects(rect), counter, out)
            if not node.is_leaf:
                counter.mbr_tests += 2
                if node.low.rect.intersects(rect):
                    stack.append(node.low)
                if node.high.rect.intersects(rect):
                    stack.append(node.high)
        return np.asarray(sorted(out), dtype=np.int64)

    def point_filter(
        self, px: float, py: float, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """Candidate ids whose MBR contains the point."""
        counter = counter if counter is not None else OpCounter(record_trace=False)
        out: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            counter.visit_node(node.node_id, self._node_bytes(node))
            self._scan_node(
                node, lambda m: m.contains_point(px, py), counter, out
            )
            if not node.is_leaf:
                counter.mbr_tests += 2
                if node.low.rect.contains_point(px, py):
                    stack.append(node.low)
                if node.high.rect.contains_point(px, py):
                    stack.append(node.high)
        return np.asarray(sorted(out), dtype=np.int64)

    def nearest_neighbors(
        self,
        px: float,
        py: float,
        k: int = 1,
        counter: Optional[OpCounter] = None,
    ) -> np.ndarray:
        """Ids of the ``k`` nearest segments, nearest first.

        Best-first over buddy regions by MINDIST; a node's spanning
        segments are evaluated when the node is popped (their distance can
        be anything within the node's region, so the node's MINDIST is the
        valid lower bound for them too).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        counter = counter if counter is not None else OpCounter(record_trace=False)
        ds = self.dataset
        best: List[tuple] = []

        def kth() -> float:
            return -best[0][0] if len(best) >= k else math.inf

        tiebreak = 0
        heap: List[tuple] = [(0.0, tiebreak, self.root)]
        counter.heap_ops += 1
        while heap:
            dist_sq, _, node = heapq.heappop(heap)
            counter.heap_ops += 1
            if dist_sq > kth():
                break
            counter.visit_node(node.node_id, self._node_bytes(node))
            for seg_id in node.seg_ids:
                # Spanning lists can be long (the structure's weak spot);
                # prune each entry by its own MBR's MINDIST before paying
                # for an exact distance.
                counter.mbr_tests += 1
                mbr = ds.segment_mbr(seg_id)
                if mbr.mindist_sq(px, py) > kth():
                    continue
                counter.refine_candidate(seg_id, self.costs.segment_record_bytes)
                counter.distance_evals += 1
                d = geometry.point_segment_distance_sq(px, py, *ds.segment(seg_id))
                if d < kth():
                    heapq.heappush(best, (-d, seg_id))
                    if len(best) > k:
                        heapq.heappop(best)
                    counter.heap_ops += 1
            if not node.is_leaf:
                counter.mbr_tests += 2
                for child in (node.low, node.high):
                    md = child.rect.mindist_sq(px, py)
                    if md > kth():
                        continue
                    tiebreak += 1
                    heapq.heappush(heap, (md, tiebreak, child))
                    counter.heap_ops += 1
        ordered = sorted(best, key=lambda t: (-t[0], t[1]))
        counter.results_produced += len(ordered)
        return np.asarray([seg_id for _, seg_id in ordered], dtype=np.int64)

    def nearest_neighbor(
        self, px: float, py: float, counter: Optional[OpCounter] = None
    ) -> int:
        """Id of the nearest segment (k = 1 convenience)."""
        out = self.nearest_neighbors(px, py, 1, counter)
        return int(out[0]) if len(out) else -1
