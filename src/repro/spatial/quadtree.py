"""PMR quadtree for line segments (Nelson & Samet).

The paper's prior study [2] ("Analyzing Energy Behavior of Spatial Access
Methods for Memory-Resident Data", VLDB 2001) compared three index
structures — PMR quadtrees, packed R-trees and buddy trees — and the paper
adopts its packed R-tree "as a reference point".  This module implements the
PMR quadtree so that the comparison can be reproduced in the fully-at-client
setting (see ``benchmarks/test_ext_index_compare.py``).

**Structure.**  A region quadtree over the dataset extent: each segment is
inserted into every leaf cell it intersects.  When an insertion makes a
leaf's occupancy exceed the *splitting threshold*, the leaf splits once into
four quadrants (its segments are redistributed), but — the PMR rule —
existing overflow does not cascade: a cell splits at most once per
insertion, which bounds the tree against pathological inputs; a maximum
depth guards degenerate stacks of coincident segments.

**Queries.**  Point and window queries descend the cells intersecting the
predicate region and collect segment ids; because a segment is stored in
every cell it crosses, range queries must deduplicate.  The k-NN search is
best-first over cells by MINDIST, evaluating exact distances at the leaves,
mirroring the R-tree's search so the instrumented cost comparison is
apples-to-apples.  All traversals tally the same
:class:`~repro.sim.trace.OpCounter` events the R-tree tallies.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, TYPE_CHECKING

import numpy as np

from repro.constants import DEFAULT_COSTS, CostModel
from repro.sim.trace import OpCounter
from repro.spatial import geometry
from repro.spatial.mbr import MBR

if TYPE_CHECKING:  # circular at runtime, see rtree.py
    from repro.data.model import SegmentDataset

__all__ = ["PMRQuadtree", "DEFAULT_SPLITTING_THRESHOLD", "DEFAULT_MAX_DEPTH"]

#: The classic PMR splitting threshold.
DEFAULT_SPLITTING_THRESHOLD = 8
#: Depth cap (cells of extent/2^16 side are far below segment length).
DEFAULT_MAX_DEPTH = 16


class _Cell:
    """One quadtree cell: either a leaf with segment ids or four children."""

    __slots__ = ("cell_id", "rect", "depth", "children", "seg_ids")

    def __init__(self, cell_id: int, rect: MBR, depth: int) -> None:
        self.cell_id = cell_id
        self.rect = rect
        self.depth = depth
        self.children: Optional[List["_Cell"]] = None
        self.seg_ids: List[int] = []

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class PMRQuadtree:
    """A PMR quadtree over a :class:`SegmentDataset`."""

    def __init__(
        self,
        dataset: "SegmentDataset",
        splitting_threshold: int = DEFAULT_SPLITTING_THRESHOLD,
        max_depth: int = DEFAULT_MAX_DEPTH,
        costs: CostModel = DEFAULT_COSTS,
    ) -> None:
        if splitting_threshold < 1:
            raise ValueError(
                f"splitting_threshold must be >= 1, got {splitting_threshold}"
            )
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.dataset = dataset
        self.splitting_threshold = splitting_threshold
        self.max_depth = max_depth
        self.costs = costs
        self._next_id = 0
        # Square root cell covering the extent (quadtrees decompose a square).
        ext = dataset.extent
        side = max(ext.width, ext.height)
        self.root = self._new_cell(
            MBR(ext.xmin, ext.ymin, ext.xmin + side, ext.ymin + side), 0
        )
        for seg_id in range(dataset.size):
            self._insert(seg_id)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _new_cell(self, rect: MBR, depth: int) -> _Cell:
        cell = _Cell(self._next_id, rect, depth)
        self._next_id += 1
        return cell

    def _segment_intersects_cell(self, seg_id: int, rect: MBR) -> bool:
        x1, y1, x2, y2 = self.dataset.segment(seg_id)
        if not MBR.from_segment(x1, y1, x2, y2).intersects(rect):
            return False
        return geometry.segment_intersects_rect(x1, y1, x2, y2, rect)

    def _quadrants(self, rect: MBR) -> List[MBR]:
        cx, cy = rect.center()
        return [
            MBR(rect.xmin, rect.ymin, cx, cy),
            MBR(cx, rect.ymin, rect.xmax, cy),
            MBR(rect.xmin, cy, cx, rect.ymax),
            MBR(cx, cy, rect.xmax, rect.ymax),
        ]

    def _split(self, cell: _Cell) -> None:
        cell.children = [
            self._new_cell(q, cell.depth + 1) for q in self._quadrants(cell.rect)
        ]
        ids, cell.seg_ids = cell.seg_ids, []
        for child in cell.children:
            for seg_id in ids:
                if self._segment_intersects_cell(seg_id, child.rect):
                    child.seg_ids.append(seg_id)

    def _insert(self, seg_id: int) -> None:
        stack = [self.root]
        while stack:
            cell = stack.pop()
            if not self._segment_intersects_cell(seg_id, cell.rect):
                continue
            if cell.is_leaf:
                cell.seg_ids.append(seg_id)
                # PMR rule: split once when the insertion overflows the
                # threshold; no cascading re-splits.
                if (
                    len(cell.seg_ids) > self.splitting_threshold
                    and cell.depth < self.max_depth
                ):
                    self._split(cell)
            else:
                stack.extend(cell.children)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Total cells allocated."""
        return self._next_id

    def depth(self) -> int:
        """Maximum leaf depth."""
        best = 0
        stack = [self.root]
        while stack:
            cell = stack.pop()
            if cell.is_leaf:
                best = max(best, cell.depth)
            else:
                stack.extend(cell.children)
        return best

    def index_bytes(self) -> int:
        """Stored size: per-cell header plus one entry per stored id.

        A segment crossing ``k`` leaves is stored ``k`` times — the PMR
        quadtree's replication overhead, one of the axes the [2] comparison
        measured.
        """
        headers = entries = 0
        stack = [self.root]
        while stack:
            cell = stack.pop()
            headers += 1
            if cell.is_leaf:
                entries += len(cell.seg_ids)
            else:
                stack.extend(cell.children)
        return (
            headers * self.costs.index_node_header_bytes
            + entries * self.costs.index_entry_bytes
        )

    def replication_factor(self) -> float:
        """Mean number of leaves each segment is stored in."""
        entries = 0
        stack = [self.root]
        while stack:
            cell = stack.pop()
            if cell.is_leaf:
                entries += len(cell.seg_ids)
            else:
                stack.extend(cell.children)
        return entries / self.dataset.size

    def _cell_bytes(self, cell: _Cell) -> int:
        n = len(cell.seg_ids) if cell.is_leaf else 4
        return self.costs.index_node_header_bytes + n * self.costs.index_entry_bytes

    # ------------------------------------------------------------------
    # Queries (filtering)
    # ------------------------------------------------------------------
    def range_filter(
        self, rect: MBR, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """Candidate ids for a window query (deduplicated).

        Candidates are segments stored in leaves intersecting the window
        whose own MBR also intersects it — the same MBR-level filter the
        R-tree applies, so refinement work is comparable.
        """
        counter = counter if counter is not None else OpCounter(record_trace=False)
        ds = self.dataset
        out: set = set()
        stack = [self.root]
        while stack:
            cell = stack.pop()
            counter.visit_node(cell.cell_id, self._cell_bytes(cell))
            if cell.is_leaf:
                counter.mbr_tests += len(cell.seg_ids)
                for seg_id in cell.seg_ids:
                    if seg_id in out:
                        continue
                    if ds.segment_mbr(seg_id).intersects(rect):
                        counter.entries_scanned += 1
                        out.add(seg_id)
            else:
                counter.mbr_tests += 4
                for child in cell.children:
                    if child.rect.intersects(rect):
                        stack.append(child)
        return np.asarray(sorted(out), dtype=np.int64)

    def point_filter(
        self, px: float, py: float, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """Candidate ids for a point query.

        A point lies in one leaf (or on the seam of up to four); all seam
        leaves are visited so boundary points behave like the R-tree's.
        """
        counter = counter if counter is not None else OpCounter(record_trace=False)
        ds = self.dataset
        out: set = set()
        stack = [self.root]
        while stack:
            cell = stack.pop()
            counter.visit_node(cell.cell_id, self._cell_bytes(cell))
            if cell.is_leaf:
                counter.mbr_tests += len(cell.seg_ids)
                for seg_id in cell.seg_ids:
                    if seg_id in out:
                        continue
                    if ds.segment_mbr(seg_id).contains_point(px, py):
                        counter.entries_scanned += 1
                        out.add(seg_id)
            else:
                counter.mbr_tests += 4
                for child in cell.children:
                    if child.rect.contains_point(px, py):
                        stack.append(child)
        return np.asarray(sorted(out), dtype=np.int64)

    # ------------------------------------------------------------------
    # Nearest neighbor
    # ------------------------------------------------------------------
    def nearest_neighbors(
        self,
        px: float,
        py: float,
        k: int = 1,
        counter: Optional[OpCounter] = None,
    ) -> np.ndarray:
        """Ids of the ``k`` nearest segments, nearest first."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        counter = counter if counter is not None else OpCounter(record_trace=False)
        ds = self.dataset
        best: List[tuple] = []  # max-heap: (-dist_sq, seg_id)
        evaluated: set = set()

        def kth() -> float:
            return -best[0][0] if len(best) >= k else math.inf

        tiebreak = 0
        heap: List[tuple] = [(0.0, tiebreak, self.root)]
        counter.heap_ops += 1
        while heap:
            dist_sq, _, cell = heapq.heappop(heap)
            counter.heap_ops += 1
            if dist_sq > kth():
                break
            counter.visit_node(cell.cell_id, self._cell_bytes(cell))
            if cell.is_leaf:
                for seg_id in cell.seg_ids:
                    if seg_id in evaluated:
                        continue
                    evaluated.add(seg_id)
                    counter.refine_candidate(
                        seg_id, self.costs.segment_record_bytes
                    )
                    counter.distance_evals += 1
                    d = geometry.point_segment_distance_sq(
                        px, py, *ds.segment(seg_id)
                    )
                    if d < kth():
                        heapq.heappush(best, (-d, seg_id))
                        if len(best) > k:
                            heapq.heappop(best)
                        counter.heap_ops += 1
            else:
                counter.mbr_tests += 4
                for child in cell.children:
                    md = child.rect.mindist_sq(px, py)
                    if md > kth():
                        continue
                    tiebreak += 1
                    heapq.heappush(heap, (md, tiebreak, child))
                    counter.heap_ops += 1
        ordered = sorted(best, key=lambda t: (-t[0], t[1]))
        counter.results_produced += len(ordered)
        return np.asarray([seg_id for _, seg_id in ordered], dtype=np.int64)

    def nearest_neighbor(
        self, px: float, py: float, counter: Optional[OpCounter] = None
    ) -> int:
        """Id of the nearest segment (k = 1 convenience)."""
        out = self.nearest_neighbors(px, py, 1, counter)
        return int(out[0]) if len(out) else -1
