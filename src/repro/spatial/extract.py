"""Budgeted subtree extraction — the server side of "fully at the client"
under insufficient client memory (paper Figure 2).

When the client cannot hold the whole dataset, it sends the server a query
*plus its memory availability*.  The server traverses its master packed
R-tree once, picking (a) the data items and nodes that satisfy the predicate
and (b) proximate items "on either side" of the predicate path, until the
shipment (data records + a fresh packed index over them) fills the client's
budget.  The client answers the current query — and, with luck, spatially
proximate future queries — entirely from this shipment.

Because the tree is Hilbert-packed, "on either side of the predicate path"
has a crisp meaning: the packed entry order *is* the Hilbert order, so the
entries adjacent to the candidate run are exactly the spatially proximate
ones.  Extraction therefore reduces to choosing a contiguous entry range
``[lo, hi)`` that covers every candidate and is grown symmetrically to the
byte budget.  The packed-tree size recurrence
(:meth:`~repro.spatial.rtree.PackedRTree.estimated_index_bytes_for_entries`)
prices the shipped index without building it, so sizing needs no second pass
— matching the paper's "in just one pass down the index structure, since the
packed R-tree can give reasonable estimates of how many data items and index
nodes are present within a given subtree".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.trace import OpCounter
from repro.spatial.rtree import PackedRTree

__all__ = [
    "Extraction",
    "extract_range",
    "max_entries_within_budget",
    "coverage_rect",
]


@dataclass(frozen=True)
class Extraction:
    """Result of a budgeted extraction.

    ``fits`` is False when even the bare candidate set exceeds the client's
    budget, in which case nothing is shipped and the caller must execute the
    query at the server instead.
    """

    #: Global segment ids shipped to the client (packed/Hilbert order).
    global_ids: np.ndarray
    #: Entry-range bounds in the master tree's packed order.
    entry_lo: int
    entry_hi: int
    #: Byte accounting of the shipment.
    data_bytes: int
    index_bytes: int
    #: Whether the shipment fits the budget (see class docstring).
    fits: bool

    @property
    def total_bytes(self) -> int:
        """Data plus index bytes on the wire / in client memory."""
        return self.data_bytes + self.index_bytes

    @property
    def n_entries(self) -> int:
        """Number of shipped segments."""
        return int(self.entry_hi - self.entry_lo)


def max_entries_within_budget(tree: PackedRTree, budget_bytes: int) -> int:
    """Largest entry count whose data + packed index fit ``budget_bytes``.

    Monotone in the entry count, so a binary search over ``[0, N]`` suffices.
    """
    if budget_bytes <= 0:
        return 0

    def total(n: int) -> int:
        return n * tree.costs.segment_record_bytes + (
            tree.estimated_index_bytes_for_entries(n)
        )

    lo, hi = 0, len(tree.entry_ids)
    if total(hi) <= budget_bytes:
        return hi
    # Invariant: total(lo) <= budget < total(hi).
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if total(mid) <= budget_bytes:
            lo = mid
        else:
            hi = mid
    return lo


def _anchor_position(tree: PackedRTree, px: float, py: float) -> int:
    """Packed-order position nearest to ``(px, py)``.

    Used when a query produced no candidates (an empty window): extraction
    still ships the region *around* the query so proximate follow-up queries
    can hit.  A greedy MINDIST descent from the root lands on the closest
    leaf; its first entry position is the anchor.
    """
    node = tree.root
    while tree.node_level[node] != 0:
        s = int(tree.node_child_start[node])
        c = int(tree.node_child_count[node])
        sl = slice(s, s + c)
        dx = np.maximum(
            np.maximum(tree.node_xmin[sl] - px, px - tree.node_xmax[sl]), 0.0
        )
        dy = np.maximum(
            np.maximum(tree.node_ymin[sl] - py, py - tree.node_ymax[sl]), 0.0
        )
        node = s + int(np.argmin(dx * dx + dy * dy))
    return int(tree.node_child_start[node])


def extract_range(
    tree: PackedRTree,
    candidates: np.ndarray,
    anchor_x: float,
    anchor_y: float,
    budget_bytes: int,
    counter: Optional[OpCounter] = None,
) -> Extraction:
    """Choose the entry range to ship for a query with the given candidates.

    Parameters
    ----------
    tree:
        The server's master packed R-tree.
    candidates:
        Global segment ids produced by filtering the query on the master
        index (may be empty).
    anchor_x, anchor_y:
        The query's focus point (window center / query point); anchors the
        shipment when ``candidates`` is empty.
    budget_bytes:
        The client's stated memory availability.
    counter:
        Server-side :class:`OpCounter`; the extraction's own work — scanning
        the shipped entries into the outgoing message and emitting the fresh
        index nodes — is tallied here (the ``w2`` extra work of the paper).
    """
    counter = counter if counter is not None else OpCounter(record_trace=False)
    n_total = len(tree.entry_ids)
    max_n = max_entries_within_budget(tree, budget_bytes)

    if len(candidates) > 0:
        pos = tree.entry_positions_for_ids(np.asarray(candidates, dtype=np.int64))
        lo = int(pos.min())
        hi = int(pos.max()) + 1
    else:
        a = _anchor_position(tree, anchor_x, anchor_y)
        lo, hi = a, a  # empty; expansion below grows around the anchor

    needed = hi - lo
    if needed > max_n:
        # The client cannot hold even the candidate run: nothing is shipped.
        return Extraction(
            global_ids=np.empty(0, dtype=np.int64),
            entry_lo=lo,
            entry_hi=lo,
            data_bytes=0,
            index_bytes=0,
            fits=False,
        )

    # Grow symmetrically to the budget, clamping at the dataset's ends and
    # reclaiming unused slack from a clamped side.
    extra = max_n - needed
    grow_lo = extra // 2
    new_lo = lo - grow_lo
    if new_lo < 0:
        new_lo = 0
    new_hi = new_lo + max_n
    if new_hi > n_total:
        new_hi = n_total
        new_lo = max(0, new_hi - max_n)
    lo, hi = new_lo, new_hi

    n_ship = hi - lo
    ids = tree.entry_ids[lo:hi].copy()
    data_bytes = n_ship * tree.costs.segment_record_bytes
    index_bytes = tree.estimated_index_bytes_for_entries(n_ship)

    # Server work: copy each shipped entry into the outgoing message and emit
    # the fresh index bottom-up (node visits approximate the emission cost).
    counter.entries_scanned += n_ship
    if n_ship > 0:
        emitted_nodes = 0
        count = n_ship
        while True:
            nodes = math.ceil(count / tree.node_capacity)
            emitted_nodes += nodes
            if nodes == 1:
                break
            count = nodes
        counter.nodes_visited += emitted_nodes
        counter.mbr_tests += n_ship  # MBR recomputation during packing

    return Extraction(
        global_ids=ids,
        entry_lo=lo,
        entry_hi=hi,
        data_bytes=data_bytes,
        index_bytes=index_bytes,
        fits=True,
    )


def coverage_rect(
    tree: PackedRTree,
    anchor: "MBR",
    entry_lo: int,
    entry_hi: int,
    probe=None,
) -> "MBR":
    """Largest anchor-centered rectangle fully covered by an entry range.

    "Covered" means every master segment whose MBR intersects the rectangle
    lies inside the shipped packed-order range ``[entry_lo, entry_hi)`` —
    the guarantee that makes client-local answers provably equal to master
    answers (used by both the insufficient-memory cache and the broadcast
    hot-region construction).  Found by doubling then binary search over
    vectorized master scans; ``probe``, when given, is called once per scan
    so the caller can charge the work to the server's counter.
    """
    from repro.spatial import bruteforce
    from repro.spatial.mbr import MBR

    master = tree.dataset
    ext = master.extent

    def covered(rect: MBR) -> bool:
        if probe is not None:
            probe()
        ids = bruteforce.range_filter(master, rect)
        if ids.size == 0:
            return True
        pos = tree.entry_positions_for_ids(ids)
        return bool((pos >= entry_lo).all() and (pos < entry_hi).all())

    cx, cy = anchor.center()

    def rect_at(scale: float) -> MBR:
        w = max(anchor.width, 1e-9) * scale / 2.0
        h = max(anchor.height, 1e-9) * scale / 2.0
        return MBR(
            max(ext.xmin, cx - w),
            max(ext.ymin, cy - h),
            min(ext.xmax, cx + w),
            min(ext.ymax, cy + h),
        )

    if not covered(rect_at(1.0)):
        # A degenerate anchor (e.g. an empty window) may sit over data that
        # was not shipped; the guarantee collapses to the anchor point.
        return MBR.from_point(cx, cy)
    lo_s, hi_s = 1.0, 2.0
    while covered(rect_at(hi_s)):
        lo_s = hi_s
        hi_s *= 2.0
        if hi_s > 1e6:  # the whole extent is covered
            return rect_at(lo_s)
    for _ in range(20):
        mid = (lo_s + hi_s) / 2.0
        if covered(rect_at(mid)):
            lo_s = mid
        else:
            hi_s = mid
    return rect_at(lo_s)
