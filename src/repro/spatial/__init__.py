"""Spatial substrate: geometry, Hilbert curve, packed R-tree, extraction.

Public surface re-exported here; see the individual modules for detail:

* :class:`repro.spatial.mbr.MBR` — minimum bounding rectangles.
* :mod:`repro.spatial.geometry` / :mod:`repro.spatial.vecgeom` — exact
  segment predicates (scalar reference + vectorized).
* :mod:`repro.spatial.hilbert` — Hilbert curve encode/decode.
* :class:`repro.spatial.rtree.PackedRTree` — the paper's index structure.
* :mod:`repro.spatial.extract` — budgeted subtree extraction (Figure 2).
* :mod:`repro.spatial.bruteforce` — linear-scan oracle.
* :mod:`repro.spatial.stats` — tree statistics and invariant checker.
"""

from repro.spatial.mbr import MBR
from repro.spatial.rtree import DEFAULT_NODE_CAPACITY, PackedRTree
from repro.spatial.extract import (
    Extraction,
    coverage_rect,
    extract_range,
    max_entries_within_budget,
)
from repro.spatial.quadtree import PMRQuadtree
from repro.spatial.buddytree import BuddyTree

__all__ = [
    "MBR",
    "PackedRTree",
    "PMRQuadtree",
    "BuddyTree",
    "DEFAULT_NODE_CAPACITY",
    "Extraction",
    "coverage_rect",
    "extract_range",
    "max_entries_within_budget",
]
