"""Batched best-first NN/k-NN search over the packed R-tree.

:meth:`repro.spatial.rtree.PackedRTree.nearest_neighbors` runs Roussopoulos
branch-and-bound one heap expansion at a time — a Python loop per query that
dominates planning time on NN workloads.  :func:`batch_nearest` runs the
*same* search for a whole batch of queries together, round-synchronized:

* each round, every still-active query drains its priority queue in exact
  scalar pop order (entries are refined inline against precomputed exact
  distances) until it pops an index node;
* the popped nodes of all queries are then expanded at once — child MINDIST
  lower bounds (:func:`repro.spatial.vecgeom.mbr_mindist_sq`) and, for leaf
  children, exact point-to-segment distances
  (:func:`repro.spatial.vecgeom.point_segment_distance_sq`) are computed in
  a handful of NumPy calls over the concatenated child sets;
* children surviving each query's best-so-far bound become sorted *runs*.

The per-query priority queue never stores individual pushes: the scalar heap
pops items in ``(mindist, tiebreak)`` order, and within one expanded node the
pushed children are already sorted that way (internal nodes push in slice
order, leaves in stable-argsort order — tiebreaks are assigned in push
order).  So each node contributes one sorted run, and a tiny k-way-merge
heap over run heads reproduces the scalar pop sequence exactly — ``O(pops)``
heap traffic instead of ``O(pushes)``, with push costs tallied
arithmetically.

The replay contract (what :mod:`repro.core.batchplan` prices) is bit-for-bit
equality with the scalar search per query: answer ids in the same order, the
op tallies (``nodes_visited``, ``mbr_tests``, ``candidates_refined``,
``distance_evals``, ``heap_ops``, ``results_produced``), and the ordered
visit/refine log — every index-node touch and candidate-segment fetch in
exact scalar order, which is what the cache replay consumes.  The
differential suite enforces this on paper workloads and hypothesis-random
batches, including distance ties (co-located segments) and k larger than the
dataset.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.spatial import vecgeom

__all__ = ["BatchNNResult", "batch_nearest"]


@dataclass
class BatchNNResult:
    """Per-query outputs of one batched NN/k-NN search.

    ``answer_ids[i]`` are query ``i``'s result ids, nearest first (scalar
    order, including the ``(distance, id)`` final sort).  The visit/refine
    log is ``(trace_is_entry[i], trace_ids[i])``: in pop order, ``True``
    rows are candidate-segment refinements (data-region touches), ``False``
    rows are index-node visits.  Count arrays are the scalar OpCounter
    tallies; ``distance_evals`` always equals ``candidates_refined`` for
    this query kind.
    """

    answer_ids: List[np.ndarray]
    trace_is_entry: List[np.ndarray]
    trace_ids: List[np.ndarray]
    nodes_visited: np.ndarray
    mbr_tests: np.ndarray
    candidates_refined: np.ndarray
    heap_ops: np.ndarray
    results_produced: np.ndarray
    # The per-query trace arrays above are views into these flat logs;
    # query ``i`` owns rows ``[log_ends[i-1], log_ends[i])``.  Consumers
    # that post-process the whole batch (the planner's phase builder) work
    # on the flat arrays directly instead of re-concatenating the views.
    flat_is_entry: np.ndarray = None  # type: ignore[assignment]
    flat_ids: np.ndarray = None  # type: ignore[assignment]
    log_ends: np.ndarray = None  # type: ignore[assignment]


class _SearchState:
    """One query's live search: runs, merge heap, best-k, and tallies."""

    __slots__ = (
        "px", "py", "k", "kth", "tb", "best", "rheap",
        "runs_md", "runs_tb", "runs_id", "runs_aux", "runs_entry", "runs_pos",
        "heap_ops", "nodes_visited", "mbr_tests", "refined",
        "log_entry", "log_id",
    )

    def __init__(self, px: float, py: float, k: int, root: int) -> None:
        self.px = px
        self.py = py
        self.k = k
        self.kth = math.inf
        self.tb = 0
        self.best: List[tuple] = []  # (-dist_sq, seg_id), max-heap of k best
        # The merge heap holds one (mindist, tiebreak, run_index) head per
        # non-exhausted run; the root starts as its own single-item run,
        # mirroring the scalar initial push (heap_ops = 1, tiebreak 0).
        self.rheap: List[tuple] = [(0.0, 0, 0)]
        self.runs_md: List[list] = [[0.0]]
        self.runs_tb: List[list] = [[0]]
        self.runs_id: List[list] = [[root]]
        self.runs_aux: List[Optional[list]] = [None]
        self.runs_entry: List[bool] = [False]
        self.runs_pos: List[int] = [0]
        self.heap_ops = 1
        self.nodes_visited = 0
        self.mbr_tests = 0
        self.refined = 0
        self.log_entry: List[bool] = []
        self.log_id: List[int] = []


def _drain(st: _SearchState) -> int:
    """Pop in scalar order until a node needs expansion; -1 when finished.

    Every processed pop and the terminating bound-crossing pop cost one
    ``heap_ops`` each, exactly as the scalar loop counts them; a naturally
    exhausted queue ends without an extra op (the scalar ``while heap``
    test).
    """
    rheap = st.rheap
    runs_md = st.runs_md
    runs_tb = st.runs_tb
    runs_id = st.runs_id
    runs_aux = st.runs_aux
    runs_entry = st.runs_entry
    runs_pos = st.runs_pos
    log_entry = st.log_entry
    log_id = st.log_id
    heappop = heapq.heappop
    heappush = heapq.heappush
    while rheap:
        md, tb, ri = rheap[0]
        if md > st.kth:
            # Everything remaining is at least this far: the scalar loop
            # pops this item, sees the bound crossed, and breaks.
            st.heap_ops += 1
            return -1
        st.heap_ops += 1
        pos = runs_pos[ri]
        mds = runs_md[ri]
        nxt = pos + 1
        if nxt < len(mds):
            # Advance the run in place: replacing the head is one sift
            # instead of a pop plus a push.
            runs_pos[ri] = nxt
            heapq.heapreplace(rheap, (mds[nxt], runs_tb[ri][nxt], ri))
        else:
            heappop(rheap)
        ident = runs_id[ri][pos]
        if runs_entry[ri]:
            log_entry.append(True)
            log_id.append(ident)
            st.refined += 1
            d = runs_aux[ri][pos]
            if d < st.kth:
                best = st.best
                heappush(best, (-d, ident))
                if len(best) > st.k:
                    heappop(best)
                st.heap_ops += 1
                if len(best) >= st.k:
                    st.kth = -best[0][0]
        else:
            log_entry.append(False)
            log_id.append(ident)
            st.nodes_visited += 1
            return ident
    return -1


_ARANGE = np.arange(0, dtype=np.int64)


def _arange_upto(n: int) -> np.ndarray:
    """A growing cached ``arange`` — callers slice views off the front.

    Each round needs several consecutive-integer arrays (row ids, child
    offsets, within-row ranks); reusing one buffer keeps those allocations
    out of the per-round overhead.
    """
    global _ARANGE
    if _ARANGE.size < n:
        _ARANGE = np.arange(max(n, 2 * _ARANGE.size), dtype=np.int64)
    return _ARANGE


class _MbrTable:
    """Node and leaf-entry MBR columns concatenated once per tree.

    One MINDIST kernel call then covers a round's mixed internal/leaf
    children: node ``i`` sits at combined index ``i``, entry ``j`` at
    ``n_nodes + j``.  Cached on the tree instance (packed trees are
    immutable after bulk load) and amortized over every search.
    """

    __slots__ = ("n_nodes", "xmin", "ymin", "xmax", "ymax")

    def __init__(self, tree) -> None:
        self.n_nodes = int(tree.node_xmin.size)
        self.xmin = np.concatenate([tree.node_xmin, tree.entry_xmin])
        self.ymin = np.concatenate([tree.node_ymin, tree.entry_ymin])
        self.xmax = np.concatenate([tree.node_xmax, tree.entry_xmax])
        self.ymax = np.concatenate([tree.node_ymax, tree.entry_ymax])

    @classmethod
    def for_tree(cls, tree) -> "_MbrTable":
        cached = getattr(tree, "_batchnn_mbrs", None)
        if (
            cached is None
            or cached.xmin.size != tree.node_xmin.size + tree.entry_xmin.size
        ):
            cached = cls(tree)
            tree._batchnn_mbrs = cached
        return cached


def _expand_round(
    tree, mbrs: _MbrTable, pend: List[_SearchState], nodes: List[int]
) -> None:
    """Expand one popped node per pending state with shared NumPy kernels.

    Each state contributes exactly one node (internal or leaf); children of
    all nodes are concatenated, bounded with MINDIST, pruned against each
    state's best-so-far, sorted per state by ``(mindist, slice offset)``,
    and attached as one run per state.

    Tie-break fidelity: the scalar loop pushes an *internal* node's
    surviving children in slice order (tiebreaks follow slice order, the
    run is that set sorted by ``(mindist, offset)``), but walks a *leaf*'s
    entries in stable-argsort MINDIST order and stops at the first past the
    bound (survivors are the same ``mindist <= kth`` set, tiebreaks follow
    the sorted order).  Both cases keep the same survivor set and sorted
    run; only the tiebreak numbering differs, chosen per state below.
    Exact segment distances for surviving leaf entries — what the scalar
    search evaluates one by one at entry-pop time — are computed here in
    one vectorized call and carried alongside the runs.
    """
    ds = tree.dataset
    m = len(pend)
    nodes_arr = np.asarray(nodes, dtype=np.int64)
    leaf = tree.node_level[nodes_arr] == 0
    n_int = m - int(np.count_nonzero(leaf))
    # Renumber states internal-first: rows stay sorted after pruning, so
    # kept internal children occupy a contiguous prefix and every
    # leaf-specific step below is a slice instead of a scatter.  Rounds
    # that are all-internal or all-leaf are already partitioned.
    if 0 < n_int < m and leaf[:n_int].any():
        reorder = np.argsort(leaf, kind="stable")
        nodes_arr = nodes_arr[reorder]
        pend = [pend[i] for i in reorder.tolist()]
        leaf = leaf[reorder]
    starts = tree.node_child_start[nodes_arr]
    counts = tree.node_child_count[nodes_arr]
    for st, c in zip(pend, counts.tolist()):
        st.mbr_tests += c
    total = int(counts.sum())
    if total == 0:
        return
    ends = np.cumsum(counts)
    base = starts - (ends - counts)
    if n_int < m:
        # Children indexed straight into the combined MBR table: internal
        # children keep their node index, leaf entries are offset by n_nodes.
        base[n_int:] += mbrs.n_nodes
    rows = np.repeat(_arange_upto(m)[:m], counts)
    idx = _arange_upto(total)[:total] + np.repeat(base, counts)
    qx = np.fromiter((st.px for st in pend), np.float64, count=m)
    qy = np.fromiter((st.py for st in pend), np.float64, count=m)
    kth = np.fromiter((st.kth for st in pend), np.float64, count=m)
    tb_base = np.fromiter((st.tb for st in pend), np.int64, count=m)

    md = vecgeom.mbr_mindist_sq(
        qx[rows], qy[rows],
        mbrs.xmin[idx], mbrs.ymin[idx], mbrs.xmax[idx], mbrs.ymax[idx],
    )

    keep = md <= kth[rows]
    rowk = rows[keep]
    mdk = md[keep]
    idxk = idx[keep]
    cnt = np.bincount(rowk, minlength=m)
    offs = np.cumsum(cnt) - cnt
    # Within one state idxk ascends with slice offset, so it is the exact
    # (mindist, offset) tie key.
    order = np.lexsort((idxk, mdk, rowk))
    rows_s = rowk[order]
    md_s = mdk[order]
    idx_s = idxk[order]
    # Kept internal children are rowk < n_int, a prefix of both the kept
    # and the sorted arrays (rowk and rows_s are nondecreasing).
    k_int = int(np.searchsorted(rowk, n_int))
    ar = _arange_upto(rowk.size)
    # Internal tiebreaks follow slice (push) order — rank before sorting,
    # then permute; the first k_int slots of ``order`` index that prefix.
    rank_pre = ar[:k_int] - offs[rowk[:k_int]]
    tb_int = (tb_base[rowk[:k_int]] + 1 + rank_pre)[order[:k_int]]
    # Leaf tiebreaks follow the sorted order.
    tb_leaf = (
        tb_base[rows_s[k_int:]]
        + 1
        + ar[k_int:rowk.size]
        - offs[rows_s[k_int:]]
    )

    aux_l: Optional[list] = None
    if k_int < rowk.size:
        seg = tree.entry_ids[idx_s[k_int:] - mbrs.n_nodes].astype(
            np.int64, copy=False
        )
        d = vecgeom.point_segment_distance_sq(
            qx[rows_s[k_int:]], qy[rows_s[k_int:]],
            ds.x1[seg], ds.y1[seg], ds.x2[seg], ds.y2[seg],
        )
        aux_l = d.tolist()
        id_l = idx_s[:k_int].tolist() + seg.tolist()
    else:
        id_l = idx_s.tolist()

    md_l = md_s.tolist()
    tb_l = tb_int.tolist() + tb_leaf.tolist()
    pos = 0
    for st, c, is_leaf in zip(pend, cnt.tolist(), leaf.tolist()):
        if c == 0:
            continue
        end = pos + c
        mds = md_l[pos:end]
        tbs = tb_l[pos:end]
        ri = len(st.runs_md)
        st.runs_md.append(mds)
        st.runs_tb.append(tbs)
        st.runs_id.append(id_l[pos:end])
        st.runs_aux.append(aux_l[pos - k_int:end - k_int] if is_leaf else None)
        st.runs_entry.append(is_leaf)
        st.runs_pos.append(0)
        heapq.heappush(st.rheap, (mds[0], tbs[0], ri))
        st.tb += c
        st.heap_ops += c
        pos = end


# Below this many still-active queries a synchronized round is mostly
# fixed NumPy-call overhead; the survivors finish one at a time instead.
_SCALAR_TAIL = 8


def _expand_one(tree, st: _SearchState, node: int) -> None:
    """Expand one node for one state — the single-query round.

    Used for the tail of a batch (the few deepest searches), where a
    synchronized round's fixed cost outweighs its sharing.  Matches the
    scalar expansion exactly: same MINDIST kernel on the child slice, leaf
    children kept as the stable-argsort prefix within the bound, internal
    children kept in slice order (tiebreaks assigned in push order) then
    laid out as a ``(mindist, tiebreak)``-sorted run.
    """
    ds = tree.dataset
    s = int(tree.node_child_start[node])
    c = int(tree.node_child_count[node])
    st.mbr_tests += c
    if c == 0:
        return
    sl = slice(s, s + c)
    kth = st.kth
    is_leaf = bool(tree.node_level[node] == 0)
    if is_leaf:
        mind = vecgeom.mbr_mindist_sq(
            st.px, st.py,
            tree.entry_xmin[sl], tree.entry_ymin[sl],
            tree.entry_xmax[sl], tree.entry_ymax[sl],
        )
        order = np.argsort(mind, kind="stable")
        md_s = mind[order]
        # The scalar loop pushes the sorted prefix and breaks at the first
        # child past the bound (the bound is fixed while pushing).
        n_keep = int(np.searchsorted(md_s, kth, side="right"))
        if n_keep == 0:
            return
        seg = tree.entry_ids[s + order[:n_keep]]
        d = vecgeom.point_segment_distance_sq(
            st.px, st.py, ds.x1[seg], ds.y1[seg], ds.x2[seg], ds.y2[seg],
        )
        mds = md_s[:n_keep].tolist()
        ids = seg.tolist()
        aux: Optional[list] = d.tolist()
        tbs = list(range(st.tb + 1, st.tb + 1 + n_keep))
    else:
        mind = vecgeom.mbr_mindist_sq(
            st.px, st.py,
            tree.node_xmin[sl], tree.node_ymin[sl],
            tree.node_xmax[sl], tree.node_ymax[sl],
        )
        kept = np.nonzero(mind <= kth)[0]
        n_keep = int(kept.size)
        if n_keep == 0:
            return
        mk = mind[kept]
        order = np.argsort(mk, kind="stable")
        mds = mk[order].tolist()
        ids = (kept[order] + s).tolist()
        # Tiebreaks follow slice (push) order; the run is re-sorted by
        # (mindist, tiebreak) — stable argsort keeps ties in push order.
        base = st.tb + 1
        tbs = [base + r for r in order.tolist()]
        aux = None
    ri = len(st.runs_md)
    st.runs_md.append(mds)
    st.runs_tb.append(tbs)
    st.runs_id.append(ids)
    st.runs_aux.append(aux)
    st.runs_entry.append(is_leaf)
    st.runs_pos.append(0)
    heapq.heappush(st.rheap, (mds[0], tbs[0], ri))
    st.tb += n_keep
    st.heap_ops += n_keep


def batch_nearest(tree, px, py, ks) -> BatchNNResult:
    """Best-first (k-)NN for every query at once, bit-identical per query.

    ``px``/``py``/``ks`` are aligned arrays: query ``i`` asks for the
    ``ks[i]`` segments nearest to ``(px[i], py[i])``.  Equivalent, query by
    query, to ``tree.nearest_neighbors(px[i], py[i], ks[i], counter)`` —
    same answer ids, tallies, and visit/refine order (see module docstring
    for the contract and the differential tests that enforce it).
    """
    px = np.asarray(px, dtype=np.float64)
    py = np.asarray(py, dtype=np.float64)
    ks = np.asarray(ks, dtype=np.int64)
    if not (px.shape == py.shape == ks.shape):
        raise ValueError("px, py and ks must be aligned 1-d arrays")
    if ks.size and int(ks.min()) < 1:
        bad = int(ks[ks < 1][0])
        raise ValueError(f"k must be >= 1, got {bad}")
    root = tree.root
    states = [
        _SearchState(float(px[i]), float(py[i]), int(ks[i]), root)
        for i in range(px.size)
    ]
    mbrs = _MbrTable.for_tree(tree)

    pend: List[_SearchState] = []
    nodes: List[int] = []
    for st in states:
        node = _drain(st)
        if node >= 0:
            pend.append(st)
            nodes.append(node)
    while pend:
        if len(pend) <= _SCALAR_TAIL:
            # Round synchronization is only a batching device — each state
            # is independent, so the stragglers just run to completion.
            for st, node in zip(pend, nodes):
                while node >= 0:
                    _expand_one(tree, st, node)
                    node = _drain(st)
            break
        _expand_round(tree, mbrs, pend, nodes)
        nxt: List[_SearchState] = []
        nxt_nodes: List[int] = []
        for st in pend:
            node = _drain(st)
            if node >= 0:
                nxt.append(st)
                nxt_nodes.append(node)
        pend, nodes = nxt, nxt_nodes

    return _finalize(states)


def _finalize(states: List[_SearchState]) -> BatchNNResult:
    """Completed per-query states folded into one :class:`BatchNNResult`.

    Shared by the round-synchronized search above and the shard store's
    residency-bounded search (:mod:`repro.core.shardstore`), which runs
    the same ``_drain``/expand loop against lazily-loaded shards.
    Finalizes into flat arrays once, handing out per-query views: the
    per-query lists are tiny, so hundreds of small array constructions
    would cost more than the searches themselves.
    """
    n = len(states)
    ans_flat: List[int] = []
    log_entry_flat: List[bool] = []
    log_id_flat: List[int] = []
    ans_ends = np.empty(n, dtype=np.int64)
    log_ends = np.empty(n, dtype=np.int64)
    for i, st in enumerate(states):
        ordered = sorted(st.best, key=lambda t: (-t[0], t[1]))
        st.best = ordered  # reused below for results_produced
        ans_flat.extend(seg_id for _, seg_id in ordered)
        log_entry_flat.extend(st.log_entry)
        log_id_flat.extend(st.log_id)
        ans_ends[i] = len(ans_flat)
        log_ends[i] = len(log_id_flat)
    ans_arr = np.asarray(ans_flat, dtype=np.int64)
    ent_arr = np.asarray(log_entry_flat, dtype=bool)
    ids_arr = np.asarray(log_id_flat, dtype=np.int64)
    a_lo = 0
    l_lo = 0
    answers: List[np.ndarray] = []
    t_entry: List[np.ndarray] = []
    t_ids: List[np.ndarray] = []
    for i in range(n):
        a_hi = int(ans_ends[i])
        l_hi = int(log_ends[i])
        answers.append(ans_arr[a_lo:a_hi])
        t_entry.append(ent_arr[l_lo:l_hi])
        t_ids.append(ids_arr[l_lo:l_hi])
        a_lo, l_lo = a_hi, l_hi
    return BatchNNResult(
        answer_ids=answers,
        trace_is_entry=t_entry,
        trace_ids=t_ids,
        nodes_visited=np.fromiter(
            (st.nodes_visited for st in states), np.int64, count=n
        ),
        mbr_tests=np.fromiter(
            (st.mbr_tests for st in states), np.int64, count=n
        ),
        candidates_refined=np.fromiter(
            (st.refined for st in states), np.int64, count=n
        ),
        heap_ops=np.fromiter(
            (st.heap_ops for st in states), np.int64, count=n
        ),
        results_produced=np.fromiter(
            (len(st.best) for st in states), np.int64, count=n
        ),
        flat_is_entry=ent_arr,
        flat_ids=ids_arr,
        log_ends=log_ends,
    )
