"""Hilbert key-range decomposition and shard-boundary algebra.

SpatialPathDB-style key-range partitioning splits a Hilbert-sorted dataset
into contiguous key ranges ("shards"); scalable query processing then needs
the inverse map — from a query window to the curve ranges it can touch — so
untouched shards can be skipped at plan time.  This module provides the
pure geometry of that map:

* :func:`window_key_ranges` — exact window→curve-range decomposition: the
  sorted, disjoint, merged set of Hilbert index ranges whose cells tile a
  grid-aligned window exactly.  The recursion mirrors the quadrant-rotation
  state machine of :func:`repro.spatial.hilbert.xy_to_d` (within a quadrant
  the curve is contiguous, so a fully-covered quadrant emits one range).
* :func:`window_cell_span` — a float window mapped to inclusive grid-cell
  bounds under exactly the scaling :func:`~repro.spatial.hilbert.
  hilbert_sort_keys` applies to segment centers.
* :func:`window_shard_ranges` — the two combined at a configurable
  *pruning order*: decomposing at a coarse order keeps the range count
  small (the curve is hierarchical, so each coarse cell is one contiguous
  block of fine keys), and the scaled result is a superset tiling of the
  exact fine-order ranges.
* :func:`equi_count_boundaries` / :func:`ranges_overlap_shards` — the
  shard-boundary side: equi-count cuts over the sorted keys (snapped to a
  packing alignment) and the range×boundary overlap join.
* :func:`expanding_key_ranges` — the NN/k-NN frontier: key ranges of
  growing windows around a query point, for residency admission and
  prefetch ordering of best-first searches whose reach is not known a
  priori.

Everything here is exact integer geometry over the curve; which shards a
query *actually* loads is decided by the MBR-driven traversal in
:mod:`repro.core.shardstore` (a node's MBR can overhang its key range, so
key overlap alone is not an exact visit predicate — see MODEL.md §9.11).
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.spatial.hilbert import DEFAULT_ORDER
from repro.spatial.mbr import MBR

__all__ = [
    "DEFAULT_PRUNE_ORDER",
    "window_key_ranges",
    "window_cell_span",
    "window_shard_ranges",
    "equi_count_boundaries",
    "ranges_overlap_shards",
    "expanding_key_ranges",
]

#: Default decomposition order for shard pruning: 2^8 cells per axis keeps
#: the recursion a few hundred nodes for county-scale windows while still
#: resolving shard boundaries far finer than any equi-count cut.
DEFAULT_PRUNE_ORDER = 8

#: Hilbert-order quadrant visit sequence: (rx, ry) in increasing digit
#: ``(3*rx) ^ ry`` — the order the curve itself enters the quadrants, which
#: makes the decomposition's emission order ascending by construction.
_QUADRANTS = ((0, 0), (0, 1), (1, 1), (1, 0))


def window_key_ranges(
    order: int, x_lo: int, y_lo: int, x_hi: int, y_hi: int
) -> List[Tuple[int, int]]:
    """Exact Hilbert ranges tiling the inclusive cell window, sorted+merged.

    Returns ``[(d_lo, d_hi), ...]`` (both ends inclusive) such that the
    union of the ranges is exactly ``{xy_to_d(order, x, y)}`` over the
    window's cells, the ranges are disjoint, ascending, and no two are
    adjacent (maximally merged).  Property-tested against the scalar
    :func:`~repro.spatial.hilbert.xy_to_d` oracle.

    The recursion carries the same quadrant rotation as ``xy_to_d``; a
    sub-square fully covered by the window is emitted as one contiguous
    range (``side**2`` keys) without descending further, so the output
    size is bounded by the window perimeter times the order, not its area.
    """
    n = 1 << order
    if not (0 <= x_lo <= x_hi < n and 0 <= y_lo <= y_hi < n):
        raise ValueError(
            f"cell window ({x_lo},{y_lo})..({x_hi},{y_hi}) outside the "
            f"{n}x{n} order-{order} grid"
        )
    out: List[Tuple[int, int]] = []

    def rec(side: int, d_base: int, xlo: int, xhi: int, ylo: int, yhi: int) -> None:
        if xlo == 0 and ylo == 0 and xhi == side - 1 and yhi == side - 1:
            out.append((d_base, d_base + side * side - 1))
            return
        s = side >> 1
        for rx, ry in _QUADRANTS:
            qx0 = max(xlo, rx * s)
            qx1 = min(xhi, rx * s + s - 1)
            qy0 = max(ylo, ry * s)
            qy1 = min(yhi, ry * s + s - 1)
            if qx0 > qx1 or qy0 > qy1:
                continue
            lx0, lx1 = qx0 - rx * s, qx1 - rx * s
            ly0, ly1 = qy0 - ry * s, qy1 - ry * s
            if ry == 0:
                if rx == 1:
                    lx0, lx1 = s - 1 - lx1, s - 1 - lx0
                    ly0, ly1 = s - 1 - ly1, s - 1 - ly0
                lx0, ly0 = ly0, lx0
                lx1, ly1 = ly1, lx1
            rec(s, d_base + s * s * ((3 * rx) ^ ry), lx0, lx1, ly0, ly1)

    rec(n, 0, x_lo, x_hi, y_lo, y_hi)
    # Quadrants are visited in curve order, so ``out`` is already sorted
    # and disjoint; only adjacent ranges remain to merge.
    merged: List[Tuple[int, int]] = []
    for lo, hi in out:
        if merged and merged[-1][1] + 1 == lo:
            merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


def window_cell_span(
    extent: MBR,
    order: int,
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
) -> Tuple[int, int, int, int]:
    """Inclusive grid-cell bounds ``(x_lo, y_lo, x_hi, y_hi)`` of a window.

    Uses exactly the :func:`~repro.spatial.hilbert.hilbert_sort_keys`
    scaling (clip into the grid, points on the max edge land in the last
    cell), so a segment center inside the window always maps into the
    span.  Degenerate windows (points) map to a single cell.
    """
    if extent.width <= 0 or extent.height <= 0:
        raise ValueError("extent must have positive area for Hilbert scaling")
    nf = float(1 << order)

    def cell(v: float, lo: float, span: float) -> int:
        return int(min(max((v - lo) / span * nf, 0.0), nf - 1.0))

    return (
        cell(xmin, extent.xmin, extent.width),
        cell(ymin, extent.ymin, extent.height),
        cell(xmax, extent.xmin, extent.width),
        cell(ymax, extent.ymin, extent.height),
    )


def window_shard_ranges(
    extent: MBR,
    order: int,
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
    prune_order: int = DEFAULT_PRUNE_ORDER,
) -> List[Tuple[int, int]]:
    """Key ranges (at ``order`` resolution) covering a float window.

    Decomposes at ``min(prune_order, order)`` and rescales each coarse
    range to fine keys: a coarse cell's fine keys are exactly the block
    ``[d << 2*(order-p), ((d+1) << 2*(order-p)) - 1]`` (the curve is
    hierarchical — the top ``p`` levels fix the leading key digits).  The
    result is a superset tiling of the exact fine decomposition: every
    fine cell the window touches is covered, plus the remainder of any
    partially-covered coarse cell.
    """
    p = min(prune_order, order)
    x_lo, y_lo, x_hi, y_hi = window_cell_span(extent, p, xmin, ymin, xmax, ymax)
    shift = 2 * (order - p)
    return [
        (lo << shift, ((hi + 1) << shift) - 1)
        for lo, hi in window_key_ranges(p, x_lo, y_lo, x_hi, y_hi)
    ]


def equi_count_boundaries(
    n_entries: int, n_shards: int, align: int = 1
) -> np.ndarray:
    """Entry-position cuts splitting ``n_entries`` sorted keys equi-count.

    Returns ascending boundary positions ``b`` with ``b[0] == 0`` and
    ``b[-1] == n_entries``; shard ``s`` owns packed positions
    ``[b[s], b[s+1])``.  Interior cuts are snapped to the nearest multiple
    of ``align`` (the packed tree's node alignment — ``capacity**2`` keeps
    every leaf *and* every level-1 subtree within one shard) and
    deduplicated, so fewer than ``n_shards`` shards come back when the
    dataset is too small to honor the alignment.
    """
    if n_entries < 1:
        raise ValueError(f"n_entries must be >= 1, got {n_entries}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if align < 1:
        raise ValueError(f"align must be >= 1, got {align}")
    cuts = [0]
    for i in range(1, n_shards):
        b = round(i * n_entries / n_shards / align) * align
        b = min(max(b, 0), n_entries)
        if b > cuts[-1] and b < n_entries:
            cuts.append(b)
    cuts.append(n_entries)
    return np.asarray(cuts, dtype=np.int64)


def ranges_overlap_shards(
    ranges: Sequence[Tuple[int, int]],
    shard_key_lo: np.ndarray,
    shard_key_hi: np.ndarray,
) -> np.ndarray:
    """Sorted ids of shards whose key span meets any of ``ranges``.

    ``shard_key_lo``/``shard_key_hi`` are the per-shard inclusive key
    spans, ascending by shard (contiguous shards of a sorted key array —
    spans may share endpoint keys when duplicate keys straddle a cut, in
    which case both shards are reported).
    """
    m = int(shard_key_lo.size)
    if m == 0 or not ranges:
        return np.empty(0, dtype=np.int64)
    hit = np.zeros(m, dtype=bool)
    for lo, hi in ranges:
        # First shard whose span end reaches lo; last whose start is <= hi.
        first = int(np.searchsorted(shard_key_hi, lo, side="left"))
        last = int(np.searchsorted(shard_key_lo, hi, side="right")) - 1
        if first <= last:
            hit[first : last + 1] = True
    return np.nonzero(hit)[0].astype(np.int64)


def expanding_key_ranges(
    extent: MBR,
    order: int,
    px: float,
    py: float,
    prune_order: int = DEFAULT_PRUNE_ORDER,
    growth: float = 2.0,
) -> Iterator[Tuple[float, List[Tuple[int, int]]]]:
    """Key ranges of square windows growing around ``(px, py)``.

    Yields ``(radius, ranges)`` pairs: the first ring is the query point's
    own cell, then half-width doubles (``growth``) until one window covers
    the whole extent, whose full key span is the final yield.  Best-first
    NN searches use this as the admission/prefetch frontier — the curve
    ranges a search *may* touch when it has reached a given radius —
    without fixing the actual traversal, which remains MINDIST-driven.
    """
    if growth <= 1.0:
        raise ValueError(f"growth must be > 1, got {growth}")
    yield 0.0, window_shard_ranges(extent, order, px, py, px, py, prune_order)
    radius = max(extent.width, extent.height) / float(1 << min(prune_order, order))
    span = math.hypot(extent.width, extent.height)
    while radius < span:
        yield radius, window_shard_ranges(
            extent, order,
            px - radius, py - radius, px + radius, py + radius,
            prune_order,
        )
        radius *= growth
    n_keys = 1 << (2 * order)
    yield span, [(0, n_keys - 1)]
