"""Minimum bounding rectangles (MBRs) for two-dimensional spatial data.

The MBR is the workhorse of the filtering step: every index node of the packed
R-tree covers a rectangular region represented by the MBR of its subtree, and
filtering tests query predicates against these rectangles before any exact
geometry is evaluated.

:class:`MBR` is an immutable value type with the algebra the R-tree and the
nearest-neighbor search need: intersection and containment predicates,
union/expansion, area/margin, and the ``MINDIST`` lower bound of Roussopoulos
et al. used to order and prune the branch-and-bound NN search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

__all__ = ["MBR"]


@dataclass(frozen=True, slots=True)
class MBR:
    """An axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``.

    Degenerate rectangles (zero width and/or height) are legal — a point or a
    horizontal/vertical segment has a degenerate MBR.  Construction validates
    ordering so that malformed rectangles fail fast rather than silently
    returning empty query answers.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if not (self.xmin <= self.xmax and self.ymin <= self.ymax):
            raise ValueError(
                f"malformed MBR: ({self.xmin}, {self.ymin}, {self.xmax}, {self.ymax})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, x: float, y: float) -> "MBR":
        """The degenerate MBR of a single point."""
        return cls(x, y, x, y)

    @classmethod
    def from_segment(cls, x1: float, y1: float, x2: float, y2: float) -> "MBR":
        """The MBR of a line segment given by its two endpoints."""
        return cls(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))

    @classmethod
    def union_of(cls, boxes: Iterable["MBR"]) -> "MBR":
        """The smallest MBR covering every box in ``boxes``.

        Raises :class:`ValueError` on an empty iterable — there is no identity
        rectangle, and silently producing one hides bulk-load bugs.
        """
        it = iter(boxes)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("union_of() requires at least one MBR") from None
        xmin, ymin, xmax, ymax = first.xmin, first.ymin, first.xmax, first.ymax
        for b in it:
            if b.xmin < xmin:
                xmin = b.xmin
            if b.ymin < ymin:
                ymin = b.ymin
            if b.xmax > xmax:
                xmax = b.xmax
            if b.ymax > ymax:
                ymax = b.ymax
        return cls(xmin, ymin, xmax, ymax)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def intersects(self, other: "MBR") -> bool:
        """True when the two rectangles share at least a boundary point."""
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
        )

    def contains_point(self, x: float, y: float) -> bool:
        """True when ``(x, y)`` lies inside or on the boundary."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def contains(self, other: "MBR") -> bool:
        """True when ``other`` lies entirely within this rectangle."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        """Horizontal extent."""
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        """Vertical extent."""
        return self.ymax - self.ymin

    def area(self) -> float:
        """Rectangle area (zero for degenerate rectangles)."""
        return self.width * self.height

    def margin(self) -> float:
        """Half-perimeter (the R*-tree 'margin' measure)."""
        return self.width + self.height

    def center(self) -> Tuple[float, float]:
        """The rectangle's center point."""
        return ((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def union(self, other: "MBR") -> "MBR":
        """The smallest rectangle covering both operands."""
        return MBR(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def intersection_area(self, other: "MBR") -> float:
        """Area of overlap with ``other`` (zero when disjoint)."""
        w = min(self.xmax, other.xmax) - max(self.xmin, other.xmin)
        h = min(self.ymax, other.ymax) - max(self.ymin, other.ymin)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    def expand(self, amount: float) -> "MBR":
        """A copy grown by ``amount`` on every side (``amount`` >= 0)."""
        if amount < 0:
            raise ValueError(f"expand amount must be non-negative, got {amount!r}")
        return MBR(
            self.xmin - amount,
            self.ymin - amount,
            self.xmax + amount,
            self.ymax + amount,
        )

    # ------------------------------------------------------------------
    # Distances (nearest-neighbor support)
    # ------------------------------------------------------------------
    def mindist_sq(self, x: float, y: float) -> float:
        """Squared MINDIST: least squared distance from ``(x, y)`` to this box.

        Zero when the point is inside the rectangle.  This is the classic
        lower bound used to order and prune the branch-and-bound NN search:
        no object inside the box can be closer than ``sqrt(mindist_sq)``.
        """
        dx = 0.0
        if x < self.xmin:
            dx = self.xmin - x
        elif x > self.xmax:
            dx = x - self.xmax
        dy = 0.0
        if y < self.ymin:
            dy = self.ymin - y
        elif y > self.ymax:
            dy = y - self.ymax
        return dx * dx + dy * dy

    def mindist(self, x: float, y: float) -> float:
        """MINDIST: least distance from ``(x, y)`` to this rectangle."""
        return math.sqrt(self.mindist_sq(x, y))

    def maxdist_sq(self, x: float, y: float) -> float:
        """Squared distance from ``(x, y)`` to the farthest rectangle corner.

        An upper bound on the distance to any object contained in the box;
        useful for pruning heuristics and tested as an invariant against
        :meth:`mindist_sq`.
        """
        dx = max(abs(x - self.xmin), abs(x - self.xmax))
        dy = max(abs(y - self.ymin), abs(y - self.ymax))
        return dx * dx + dy * dy

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def as_tuple(self) -> Tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)``."""
        return (self.xmin, self.ymin, self.xmax, self.ymax)

    def __iter__(self) -> Iterator[float]:
        return iter(self.as_tuple())
