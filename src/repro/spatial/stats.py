"""Structural statistics and invariant checks for packed R-trees.

Two consumers:

* **Reports/benches** — dataset and index size accounting printed alongside
  the figures (the paper quotes 10.06 MB / 3.56 MB for PA data / index).
* **Tests** — :func:`check_invariants` walks the whole tree and verifies the
  structural properties every query relies on; the property-based tests call
  it on randomly generated datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spatial.rtree import PackedRTree

__all__ = ["TreeStats", "tree_stats", "check_invariants"]


@dataclass(frozen=True)
class TreeStats:
    """Summary statistics of one packed R-tree."""

    n_segments: int
    n_nodes: int
    n_leaves: int
    height: int
    node_capacity: int
    index_bytes: int
    data_bytes: int
    #: Mean occupied fraction of node capacity (packing should be ~1.0).
    fill_factor: float
    #: Sum of leaf MBR areas divided by the extent area — lower is tighter;
    #: the Hilbert ablation bench compares this between sorted and unsorted
    #: packings.
    leaf_area_ratio: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.n_segments} segments, {self.n_nodes} nodes "
            f"(height {self.height}, cap {self.node_capacity}, "
            f"fill {self.fill_factor:.3f}), index "
            f"{self.index_bytes / 1e6:.2f} MB, data {self.data_bytes / 1e6:.2f} MB"
        )


def tree_stats(tree: PackedRTree) -> TreeStats:
    """Compute :class:`TreeStats` for ``tree``."""
    leaves = tree.node_level == 0
    n_leaves = int(leaves.sum())
    areas = (tree.node_xmax - tree.node_xmin) * (tree.node_ymax - tree.node_ymin)
    extent_area = tree.dataset.extent.area()
    leaf_area_ratio = (
        float(areas[leaves].sum() / extent_area) if extent_area > 0 else float("nan")
    )
    return TreeStats(
        n_segments=tree.dataset.size,
        n_nodes=tree.node_count,
        n_leaves=n_leaves,
        height=tree.height,
        node_capacity=tree.node_capacity,
        index_bytes=tree.index_bytes(),
        data_bytes=tree.dataset.data_bytes(),
        fill_factor=float(tree.node_child_count.mean() / tree.node_capacity),
        leaf_area_ratio=leaf_area_ratio,
    )


def check_invariants(tree: PackedRTree) -> None:
    """Assert every structural invariant of a packed R-tree.

    Raises :class:`AssertionError` with a descriptive message on the first
    violation.  Checked properties:

    1. ``entry_ids`` is a permutation of the dataset ids.
    2. Every node's child count is in ``[1, capacity]``.
    3. Every child MBR (node or entry) is contained in its parent's MBR, and
       the parent MBR is exactly the union of its children's.
    4. Child ranges of a level partition the level below exactly once.
    5. ``entries_in_subtree`` sums match actual leaf contents.
    6. Levels increase by one from child to parent; the root is the unique
       top-level node.
    """
    n = tree.dataset.size
    perm = np.sort(tree.entry_ids)
    assert np.array_equal(perm, np.arange(n)), "entry_ids is not a permutation"

    counts = tree.node_child_count
    assert counts.min() >= 1, "empty node"
    assert counts.max() <= tree.node_capacity, "overfull node"

    seen_children = np.zeros(tree.node_count, dtype=np.int32)
    seen_entries = np.zeros(n, dtype=np.int32)
    for node in range(tree.node_count):
        s = int(tree.node_child_start[node])
        c = int(tree.node_child_count[node])
        sl = slice(s, s + c)
        if tree.node_level[node] == 0:
            seen_entries[sl] += 1
            assert tree.node_xmin[node] == tree.entry_xmin[sl].min(), (
                f"leaf {node} xmin is not the union of its entries"
            )
            assert tree.node_ymin[node] == tree.entry_ymin[sl].min(), (
                f"leaf {node} ymin is not the union of its entries"
            )
            assert tree.node_xmax[node] == tree.entry_xmax[sl].max(), (
                f"leaf {node} xmax is not the union of its entries"
            )
            assert tree.node_ymax[node] == tree.entry_ymax[sl].max(), (
                f"leaf {node} ymax is not the union of its entries"
            )
            expected = c
        else:
            seen_children[sl] += 1
            assert (tree.node_level[sl] == tree.node_level[node] - 1).all(), (
                f"node {node} has children at the wrong level"
            )
            assert tree.node_xmin[node] == tree.node_xmin[sl].min(), (
                f"node {node} xmin is not the union of its children"
            )
            assert tree.node_ymin[node] == tree.node_ymin[sl].min(), (
                f"node {node} ymin is not the union of its children"
            )
            assert tree.node_xmax[node] == tree.node_xmax[sl].max(), (
                f"node {node} xmax is not the union of its children"
            )
            assert tree.node_ymax[node] == tree.node_ymax[sl].max(), (
                f"node {node} ymax is not the union of its children"
            )
            expected = int(tree.entries_in_subtree[sl].sum())
        assert tree.entries_in_subtree[node] == expected, (
            f"node {node} entries_in_subtree mismatch"
        )

    # Every entry appears in exactly one leaf; every non-root node has
    # exactly one parent.
    assert (seen_entries == 1).all(), "entries not partitioned by leaves"
    root = tree.root
    non_root = np.arange(tree.node_count) != root
    assert (seen_children[non_root] == 1).all(), "non-root node without unique parent"
    assert seen_children[root] == 0, "root has a parent"
    assert tree.node_level[root] == tree.node_level.max(), "root is not top level"
