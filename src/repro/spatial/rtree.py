"""Hilbert-packed R-tree over line segments (Kamel & Faloutsos, CIKM '93).

The paper's index structure: the (static, known a priori) segment dataset is
sorted by the Hilbert value of each segment's MBR center, then the tree is
bulk-loaded bottom-up, level by level — consecutive runs of ``node_capacity``
sorted items form a leaf, consecutive runs of leaves form the next level, and
so on up to a single root.  Packing produces full nodes (except the last of
each level) and, thanks to Hilbert locality, tight low-overlap MBRs.

Implementation notes
---------------------
The tree is stored as a structure of NumPy arrays rather than linked node
objects: children of every node occupy a contiguous index range, so a node is
just ``(level, child_start, child_count)`` plus its MBR held in four parallel
coordinate arrays.  This layout

* makes the per-node child MBR tests vectorizable (a slice compare instead of
  a Python loop — the bulk-load and filtering hot paths per the HPC guides),
* gives every node a stable integer id, which the :class:`~repro.sim.trace.
  OpCounter` trace and the D-cache simulator use to form synthetic addresses,
* makes subtree statistics (``entries_in_subtree``) O(1) to precompute, which
  the one-pass extraction algorithm of the insufficient-memory scenario needs
  to estimate shipment sizes without a second traversal (paper section 4).

Queries are *filtering only* here: they return candidate segment ids whose
MBRs satisfy the predicate.  Exact refinement lives in the query engine
(:mod:`repro.core.engine`), because where refinement runs — client or server —
is precisely what the paper partitions.  The nearest-neighbor search is the
exception: following the paper (and Roussopoulos et al.), it has no separate
phases and returns the exact nearest segment directly.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.constants import CostModel
from repro.sim.trace import OpCounter

if TYPE_CHECKING:  # circular at runtime: data.model uses spatial.mbr
    from repro.data.model import SegmentDataset
from repro.spatial import geometry, vecgeom
from repro.spatial.hilbert import DEFAULT_ORDER, hilbert_sort_keys
from repro.spatial.mbr import MBR

__all__ = ["PackedRTree", "DEFAULT_NODE_CAPACITY"]

#: Default fanout.  With 20-byte entries and an 8-byte header this makes a
#: node ~508 bytes; on the PA dataset the resulting index is ~3 MB, matching
#: the paper's reported 3.56 MB index to first order.
DEFAULT_NODE_CAPACITY = 25


@dataclass
class PackedRTree:
    """A bulk-loaded packed R-tree bound to a :class:`SegmentDataset`.

    Use :meth:`build` to construct; the raw ``__init__`` exists for internal
    use and tests.  All node arrays are aligned: index ``i`` describes node
    ``i``; leaves come first, the root is the last node.
    """

    dataset: SegmentDataset
    node_capacity: int
    #: Hilbert-sorted permutation of segment ids (the packed leaf entries).
    entry_ids: np.ndarray
    #: Per-node MBR coordinate columns.
    node_xmin: np.ndarray
    node_ymin: np.ndarray
    node_xmax: np.ndarray
    node_ymax: np.ndarray
    #: Tree level of each node (0 = leaf).
    node_level: np.ndarray
    #: First child index: for leaves an offset into ``entry_ids``; for
    #: internal nodes an offset into the node arrays.
    node_child_start: np.ndarray
    #: Number of children (entries for leaves, child nodes otherwise).
    node_child_count: np.ndarray
    #: Leaf entries contained in each node's subtree (for extraction sizing).
    entries_in_subtree: np.ndarray
    #: Nodes contained in each node's subtree, self included.
    nodes_in_subtree: np.ndarray
    #: Per-segment MBRs in *entry order* (aligned with ``entry_ids``);
    #: precomputed so leaf scans are vectorized slices.
    entry_xmin: np.ndarray
    entry_ymin: np.ndarray
    entry_xmax: np.ndarray
    entry_ymax: np.ndarray
    costs: CostModel

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: SegmentDataset,
        node_capacity: int = DEFAULT_NODE_CAPACITY,
        hilbert_order: int = DEFAULT_ORDER,
        sort: bool = True,
    ) -> "PackedRTree":
        """Bulk-load a packed R-tree over ``dataset``.

        Parameters
        ----------
        node_capacity:
            Maximum entries per node (>= 2).
        hilbert_order:
            Hilbert-curve order used for the sort keys.
        sort:
            When False, skip the Hilbert sort and pack segments in dataset
            order — the strawman the packing ablation bench compares against.
        """
        if node_capacity < 2:
            raise ValueError(f"node_capacity must be >= 2, got {node_capacity}")
        n = dataset.size
        if sort:
            cx, cy = dataset.centers()
            keys = hilbert_sort_keys(cx, cy, dataset.extent, order=hilbert_order)
            entry_ids = np.argsort(keys, kind="stable").astype(np.int64)
        else:
            entry_ids = np.arange(n, dtype=np.int64)

        # Per-entry MBRs in entry order.
        ex1 = dataset.x1[entry_ids]
        ey1 = dataset.y1[entry_ids]
        ex2 = dataset.x2[entry_ids]
        ey2 = dataset.y2[entry_ids]
        entry_xmin = np.minimum(ex1, ex2)
        entry_xmax = np.maximum(ex1, ex2)
        entry_ymin = np.minimum(ey1, ey2)
        entry_ymax = np.maximum(ey1, ey2)

        # --- Level 0: leaves over consecutive entry runs -----------------
        cap = node_capacity
        xmin_parts: List[np.ndarray] = []
        ymin_parts: List[np.ndarray] = []
        xmax_parts: List[np.ndarray] = []
        ymax_parts: List[np.ndarray] = []
        level_parts: List[np.ndarray] = []
        start_parts: List[np.ndarray] = []
        count_parts: List[np.ndarray] = []
        entries_parts: List[np.ndarray] = []

        def grouped_reduce(arr: np.ndarray, op, count: int) -> np.ndarray:
            """Reduce ``arr`` in runs of ``cap`` (vectorized via reduceat)."""
            starts = np.arange(0, count, cap)
            return op.reduceat(arr, starts)

        n_leaves = math.ceil(n / cap)
        leaf_starts = np.arange(0, n, cap, dtype=np.int64)
        leaf_counts = np.minimum(cap, n - leaf_starts).astype(np.int64)
        xmin_parts.append(grouped_reduce(entry_xmin, np.minimum, n))
        ymin_parts.append(grouped_reduce(entry_ymin, np.minimum, n))
        xmax_parts.append(grouped_reduce(entry_xmax, np.maximum, n))
        ymax_parts.append(grouped_reduce(entry_ymax, np.maximum, n))
        level_parts.append(np.zeros(n_leaves, dtype=np.int32))
        start_parts.append(leaf_starts)
        count_parts.append(leaf_counts)
        entries_parts.append(leaf_counts.astype(np.int64))

        # --- Upper levels: pack the previous level's nodes ---------------
        level = 0
        prev_offset = 0  # node-id offset of the previous level
        prev_count = n_leaves
        prev_xmin = xmin_parts[-1]
        prev_ymin = ymin_parts[-1]
        prev_xmax = xmax_parts[-1]
        prev_ymax = ymax_parts[-1]
        prev_entries = entries_parts[-1]
        while prev_count > 1:
            level += 1
            m = math.ceil(prev_count / cap)
            starts = np.arange(0, prev_count, cap, dtype=np.int64)
            counts = np.minimum(cap, prev_count - starts).astype(np.int64)
            xmin = np.minimum.reduceat(prev_xmin, starts)
            ymin = np.minimum.reduceat(prev_ymin, starts)
            xmax = np.maximum.reduceat(prev_xmax, starts)
            ymax = np.maximum.reduceat(prev_ymax, starts)
            entries = np.add.reduceat(prev_entries, starts)
            xmin_parts.append(xmin)
            ymin_parts.append(ymin)
            xmax_parts.append(xmax)
            ymax_parts.append(ymax)
            level_parts.append(np.full(m, level, dtype=np.int32))
            start_parts.append(starts + prev_offset)
            count_parts.append(counts)
            entries_parts.append(entries)
            prev_offset += prev_count
            prev_count = m
            prev_xmin, prev_ymin, prev_xmax, prev_ymax = xmin, ymin, xmax, ymax
            prev_entries = entries

        node_xmin = np.concatenate(xmin_parts)
        node_ymin = np.concatenate(ymin_parts)
        node_xmax = np.concatenate(xmax_parts)
        node_ymax = np.concatenate(ymax_parts)
        node_level = np.concatenate(level_parts)
        node_child_start = np.concatenate(start_parts)
        node_child_count = np.concatenate(count_parts)
        entries_in_subtree = np.concatenate(entries_parts)

        # Nodes-in-subtree: leaves are 1; each internal node is 1 + sum of
        # its children's values.  Children precede parents in the layout, so
        # one forward pass suffices.
        total_nodes = len(node_level)
        nodes_in_subtree = np.ones(total_nodes, dtype=np.int64)
        for i in range(n_leaves, total_nodes):
            s = node_child_start[i]
            c = node_child_count[i]
            nodes_in_subtree[i] = 1 + int(nodes_in_subtree[s : s + c].sum())

        return cls(
            dataset=dataset,
            node_capacity=cap,
            entry_ids=entry_ids,
            node_xmin=node_xmin,
            node_ymin=node_ymin,
            node_xmax=node_xmax,
            node_ymax=node_ymax,
            node_level=node_level,
            node_child_start=node_child_start,
            node_child_count=node_child_count,
            entries_in_subtree=entries_in_subtree,
            nodes_in_subtree=nodes_in_subtree,
            entry_xmin=entry_xmin,
            entry_ymin=entry_ymin,
            entry_xmax=entry_xmax,
            entry_ymax=entry_ymax,
            costs=dataset.costs,
        )

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Total number of nodes."""
        return len(self.node_level)

    @property
    def root(self) -> int:
        """Node id of the root (always the last node)."""
        return self.node_count - 1

    @property
    def height(self) -> int:
        """Number of levels (1 for a single-leaf tree)."""
        return int(self.node_level[self.root]) + 1

    def node_mbr(self, node: int) -> MBR:
        """The MBR of node ``node``."""
        return MBR(
            float(self.node_xmin[node]),
            float(self.node_ymin[node]),
            float(self.node_xmax[node]),
            float(self.node_ymax[node]),
        )

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` is a leaf."""
        return self.node_level[node] == 0

    def node_bytes(self, node: int) -> int:
        """Stored size of one node (header + occupied entries)."""
        return (
            self.costs.index_node_header_bytes
            + int(self.node_child_count[node]) * self.costs.index_entry_bytes
        )

    def index_bytes(self) -> int:
        """Total stored size of the index."""
        return (
            self.node_count * self.costs.index_node_header_bytes
            + int(self.node_child_count.sum()) * self.costs.index_entry_bytes
        )

    def entry_mbrs(self, positions: np.ndarray):
        """Entry MBR columns gathered for packed ``positions``.

        The monolithic half of the traversal-source protocol shared with
        :class:`repro.core.shardstore.ShardStore.entry_mbrs` — callers that
        accept either source read entry boxes through this one gather.
        """
        return (
            self.entry_xmin[positions],
            self.entry_ymin[positions],
            self.entry_xmax[positions],
            self.entry_ymax[positions],
        )

    def node_bytes_array(self) -> np.ndarray:
        """Per-node stored sizes, :meth:`node_bytes` vectorized (cached)."""
        sizes = getattr(self, "_node_bytes_array", None)
        if sizes is None:
            sizes = (
                self.costs.index_node_header_bytes
                + self.node_child_count.astype(np.int64) * self.costs.index_entry_bytes
            )
            self._node_bytes_array = sizes
        return sizes

    def entry_span_start(self) -> np.ndarray:
        """Per-node position of its subtree's first packed entry (cached).

        A leaf's span starts at its ``node_child_start``; an internal node
        inherits its first child's span start (children are contiguous and
        ordered).  Sorting visited nodes of one query by ``(span start,
        -level)`` reproduces the scalar depth-first preorder, which is how
        the batched traversal recovers the exact scalar trace order.
        """
        spans = getattr(self, "_entry_span_start", None)
        if spans is None:
            spans = np.empty(self.node_count, dtype=np.int64)
            leaf = self.node_level == 0
            spans[leaf] = self.node_child_start[leaf]
            # Children precede parents level by level, so one pass per level
            # upward resolves every internal node vectorized.
            for lvl in range(1, self.height):
                sel = self.node_level == lvl
                spans[sel] = spans[self.node_child_start[sel]]
            self._entry_span_start = spans
        return spans

    # ------------------------------------------------------------------
    # Filtering queries
    # ------------------------------------------------------------------
    def range_filter(
        self, rect: MBR, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """Candidate ids for a window query: segments whose MBR meets ``rect``.

        Depth-first traversal from the root, exactly as the paper describes;
        every visited node, MBR test and scanned entry is tallied in
        ``counter`` when one is supplied.
        """
        counter = counter if counter is not None else OpCounter(record_trace=False)
        out: List[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            counter.visit_node(node, self.node_bytes(node))
            s = int(self.node_child_start[node])
            c = int(self.node_child_count[node])
            counter.mbr_tests += c
            if self.node_level[node] == 0:
                sl = slice(s, s + c)
                hit = (
                    (self.entry_xmin[sl] <= rect.xmax)
                    & (self.entry_xmax[sl] >= rect.xmin)
                    & (self.entry_ymin[sl] <= rect.ymax)
                    & (self.entry_ymax[sl] >= rect.ymin)
                )
                matched = self.entry_ids[sl][hit]
                counter.entries_scanned += int(hit.sum())
                if matched.size:
                    out.append(matched)
            else:
                sl = slice(s, s + c)
                hit = (
                    (self.node_xmin[sl] <= rect.xmax)
                    & (self.node_xmax[sl] >= rect.xmin)
                    & (self.node_ymin[sl] <= rect.ymax)
                    & (self.node_ymax[sl] >= rect.ymin)
                )
                # Push in reverse so traversal order matches a recursive DFS.
                children = np.nonzero(hit)[0] + s
                stack.extend(int(ch) for ch in children[::-1])
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def point_filter(
        self, px: float, py: float, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """Candidate ids for a point query: segments whose MBR contains it."""
        counter = counter if counter is not None else OpCounter(record_trace=False)
        out: List[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            counter.visit_node(node, self.node_bytes(node))
            s = int(self.node_child_start[node])
            c = int(self.node_child_count[node])
            counter.mbr_tests += c
            sl = slice(s, s + c)
            if self.node_level[node] == 0:
                hit = (
                    (self.entry_xmin[sl] <= px)
                    & (px <= self.entry_xmax[sl])
                    & (self.entry_ymin[sl] <= py)
                    & (py <= self.entry_ymax[sl])
                )
                matched = self.entry_ids[sl][hit]
                counter.entries_scanned += int(hit.sum())
                if matched.size:
                    out.append(matched)
            else:
                hit = (
                    (self.node_xmin[sl] <= px)
                    & (px <= self.node_xmax[sl])
                    & (self.node_ymin[sl] <= py)
                    & (py <= self.node_ymax[sl])
                )
                children = np.nonzero(hit)[0] + s
                stack.extend(int(ch) for ch in children[::-1])
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    # ------------------------------------------------------------------
    # Nearest-neighbor query (no separate filter/refine phases)
    # ------------------------------------------------------------------
    def nearest_neighbor(
        self, px: float, py: float, counter: Optional[OpCounter] = None
    ) -> int:
        """Id of the segment nearest to ``(px, py)``.

        Branch-and-bound best-first search (Roussopoulos et al. [24], the
        strategy the paper adopts): a priority queue ordered by MINDIST holds
        both nodes and data entries; a node whose MINDIST exceeds the best
        exact distance found so far is pruned without being visited.  Exact
        point-to-segment distances are evaluated only for leaf entries, and
        tallied as ``distance_evals`` (this is the query's refinement-like
        work, inseparable from its traversal).
        """
        out = self.nearest_neighbors(px, py, 1, counter)
        return int(out[0]) if len(out) else -1

    def nearest_neighbors(
        self,
        px: float,
        py: float,
        k: int = 1,
        counter: Optional[OpCounter] = None,
    ) -> np.ndarray:
        """Ids of the ``k`` segments nearest to ``(px, py)``, nearest first.

        The k-NN generalization of the branch-and-bound search (one of the
        'other spatial queries' the paper's future work names): pruning uses
        the k-th best exact distance found so far, so the search degrades
        gracefully from the paper's k=1 case.  Returns fewer than ``k`` ids
        only when the dataset is smaller than ``k``.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        counter = counter if counter is not None else OpCounter(record_trace=False)
        ds = self.dataset
        # Max-heap (negated distances) of the k best exact hits so far.
        best: List[tuple] = []  # (-dist_sq, seg_id)

        def kth_dist_sq() -> float:
            return -best[0][0] if len(best) >= k else math.inf
        # Heap items: (mindist_sq, tiebreak, is_entry, id)
        tiebreak = 0
        heap: List[tuple] = [(0.0, tiebreak, False, self.root)]
        counter.heap_ops += 1
        while heap:
            dist_sq, _, is_entry, ident = heapq.heappop(heap)
            counter.heap_ops += 1
            if dist_sq > kth_dist_sq():
                # Everything remaining is at least this far: done.
                break
            if is_entry:
                seg_id = ident
                counter.refine_candidate(seg_id, self.costs.segment_record_bytes)
                counter.distance_evals += 1
                d = geometry.point_segment_distance_sq(px, py, *ds.segment(seg_id))
                if d < kth_dist_sq():
                    heapq.heappush(best, (-d, seg_id))
                    if len(best) > k:
                        heapq.heappop(best)
                    counter.heap_ops += 1
                continue
            node = ident
            counter.visit_node(node, self.node_bytes(node))
            s = int(self.node_child_start[node])
            c = int(self.node_child_count[node])
            counter.mbr_tests += c
            sl = slice(s, s + c)
            if self.node_level[node] == 0:
                mind = vecgeom.mbr_mindist_sq(
                    px, py,
                    self.entry_xmin[sl], self.entry_ymin[sl],
                    self.entry_xmax[sl], self.entry_ymax[sl],
                )
                for off in np.argsort(mind, kind="stable"):
                    md = float(mind[off])
                    if md > kth_dist_sq():
                        break
                    tiebreak += 1
                    heapq.heappush(
                        heap, (md, tiebreak, True, int(self.entry_ids[s + off]))
                    )
                    counter.heap_ops += 1
            else:
                mind = vecgeom.mbr_mindist_sq(
                    px, py,
                    self.node_xmin[sl], self.node_ymin[sl],
                    self.node_xmax[sl], self.node_ymax[sl],
                )
                for off in range(c):
                    md = float(mind[off])
                    if md > kth_dist_sq():
                        continue
                    tiebreak += 1
                    heapq.heappush(heap, (md, tiebreak, False, s + off))
                    counter.heap_ops += 1
        ordered = sorted(best, key=lambda t: (-t[0], t[1]))
        counter.results_produced += len(ordered)
        return np.asarray([seg_id for _, seg_id in ordered], dtype=np.int64)

    # ------------------------------------------------------------------
    # Entry-range helpers (used by the extraction algorithm)
    # ------------------------------------------------------------------
    def entry_positions_for_ids(self, ids: np.ndarray) -> np.ndarray:
        """Positions in the packed entry order of the given segment ids."""
        # entry_ids is a permutation: invert it once, lazily.
        inv = getattr(self, "_inverse_perm", None)
        if inv is None:
            inv = np.empty(len(self.entry_ids), dtype=np.int64)
            inv[self.entry_ids] = np.arange(len(self.entry_ids), dtype=np.int64)
            self._inverse_perm = inv
        return inv[np.asarray(ids, dtype=np.int64)]

    def estimated_index_bytes_for_entries(self, n_entries: int) -> int:
        """Size of a packed index over ``n_entries`` (extraction budgeting).

        Uses the packed-tree recurrence exactly (full nodes except the last
        per level), so the estimate equals the true size of the index the
        server would actually build and ship — property-tested against a
        real build.
        """
        if n_entries <= 0:
            return 0
        total_entries = 0
        total_nodes = 0
        count = n_entries
        while True:
            nodes = math.ceil(count / self.node_capacity)
            total_entries += count
            total_nodes += nodes
            if nodes == 1:
                break
            count = nodes
        return (
            total_nodes * self.costs.index_node_header_bytes
            + total_entries * self.costs.index_entry_bytes
        )
