"""NumPy-vectorized geometric predicates over arrays of line segments.

The scalar predicates in :mod:`repro.spatial.geometry` are the readable
reference; these vectorized equivalents operate on the column arrays of a
:class:`repro.data.model.SegmentDataset` (``x1, y1, x2, y2`` each of shape
``(n,)``) and are used where whole-dataset scans occur:

* the brute-force oracle (:mod:`repro.spatial.bruteforce`) that tests validate
  the R-tree against,
* workload generation (density-weighted window placement needs fast counting),
* bulk refinement inside the query engine, where the candidate set can be
  thousands of segments per range query.

Per the HPC guides, hot loops are vectorized with masks rather than Python
loops; all functions are allocation-conscious (no hidden copies of the input
columns) and return boolean masks or float arrays aligned with the inputs.
"""

from __future__ import annotations

import numpy as np

from repro.spatial.mbr import MBR

__all__ = [
    "mbr_intersects_rect",
    "mbr_contains_point",
    "mbr_mindist_sq",
    "point_segment_distance_sq",
    "segments_contain_point",
    "segments_contain_points",
    "segments_intersect_rect",
    "segments_intersect_rects",
]


def mbr_intersects_rect(
    x1: np.ndarray, y1: np.ndarray, x2: np.ndarray, y2: np.ndarray, rect: MBR
) -> np.ndarray:
    """Mask of segments whose MBR intersects ``rect`` (the filter predicate)."""
    sxmin = np.minimum(x1, x2)
    sxmax = np.maximum(x1, x2)
    symin = np.minimum(y1, y2)
    symax = np.maximum(y1, y2)
    return (
        (sxmin <= rect.xmax)
        & (sxmax >= rect.xmin)
        & (symin <= rect.ymax)
        & (symax >= rect.ymin)
    )


def mbr_contains_point(
    x1: np.ndarray, y1: np.ndarray, x2: np.ndarray, y2: np.ndarray,
    px: float, py: float,
) -> np.ndarray:
    """Mask of segments whose MBR contains the point ``(px, py)``."""
    sxmin = np.minimum(x1, x2)
    sxmax = np.maximum(x1, x2)
    symin = np.minimum(y1, y2)
    symax = np.maximum(y1, y2)
    return (sxmin <= px) & (px <= sxmax) & (symin <= py) & (py <= symax)


def mbr_mindist_sq(
    px: np.ndarray, py: np.ndarray,
    xmin: np.ndarray, ymin: np.ndarray, xmax: np.ndarray, ymax: np.ndarray,
) -> np.ndarray:
    """Squared MINDIST from points to boxes, elementwise (Roussopoulos).

    Row ``i`` is the squared distance from ``(px[i], py[i])`` to the nearest
    point of box ``i`` (zero when the point lies inside).  The expression —
    ``max(max(lo - p, p - hi), 0)`` per axis, then the sum of squares — is
    the exact arithmetic of the best-first NN loop in
    :meth:`repro.spatial.rtree.PackedRTree.nearest_neighbors`, evaluated in
    the same operation order so the batched search reproduces its bounds bit
    for bit.
    """
    dx = np.maximum(np.maximum(xmin - px, px - xmax), 0.0)
    dy = np.maximum(np.maximum(ymin - py, py - ymax), 0.0)
    return dx * dx + dy * dy


def point_segment_distance_sq(
    px: float, py: float,
    x1: np.ndarray, y1: np.ndarray, x2: np.ndarray, y2: np.ndarray,
) -> np.ndarray:
    """Squared point-to-segment distances for every segment (vectorized).

    Mirrors :func:`repro.spatial.geometry.point_segment_distance_sq` exactly,
    including the degenerate zero-length-segment case; equality of the two is
    property-tested.
    """
    dx = x2 - x1
    dy = y2 - y1
    len_sq = dx * dx + dy * dy
    ex0 = px - x1
    ey0 = py - y1
    # Guard the division for degenerate segments; their t is irrelevant
    # because the clamped projection collapses to the first endpoint anyway.
    safe_len = np.where(len_sq == 0.0, 1.0, len_sq)
    t = (ex0 * dx + ey0 * dy) / safe_len
    t = np.where(len_sq == 0.0, 0.0, np.clip(t, 0.0, 1.0))
    cx = x1 + t * dx
    cy = y1 + t * dy
    ex = px - cx
    ey = py - cy
    return ex * ex + ey * ey


def segments_contain_point(
    px: float, py: float,
    x1: np.ndarray, y1: np.ndarray, x2: np.ndarray, y2: np.ndarray,
    eps: float = 1e-9,
) -> np.ndarray:
    """Mask of segments passing within ``eps`` of ``(px, py)``."""
    return point_segment_distance_sq(px, py, x1, y1, x2, y2) <= eps * eps


def segments_contain_points(
    px: np.ndarray, py: np.ndarray,
    x1: np.ndarray, y1: np.ndarray, x2: np.ndarray, y2: np.ndarray,
    eps: np.ndarray,
) -> np.ndarray:
    """Row-wise :func:`segments_contain_point`: one query point per segment.

    All arguments are aligned ``(n,)`` arrays; row ``i`` tests segment ``i``
    against point ``(px[i], py[i])`` with tolerance ``eps[i]``.  Every
    arithmetic operation is the same elementwise expression the per-query
    function evaluates, so the masks agree bit for bit — the batched
    planner's bulk refinement depends on this (property-tested).
    """
    return point_segment_distance_sq(px, py, x1, y1, x2, y2) <= eps * eps


def _cross_sign(ax, ay, bx, by, cx, cy):
    """Vectorized orientation of triangles ``(a, b, c)`` (sign of cross)."""
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def segments_intersect_rect(
    x1: np.ndarray, y1: np.ndarray, x2: np.ndarray, y2: np.ndarray, rect: MBR
) -> np.ndarray:
    """Mask of segments that truly intersect the window ``rect``.

    Vectorized Cohen-Sutherland: trivial accept when an endpoint lies in the
    window, trivial reject when both endpoints share an outside half-plane,
    and an exact segment-vs-window-edge orientation test for the remainder.
    Matches :func:`repro.spatial.geometry.segment_intersects_rect` (tested
    property-wise against it).
    """
    in1 = (
        (rect.xmin <= x1) & (x1 <= rect.xmax) & (rect.ymin <= y1) & (y1 <= rect.ymax)
    )
    in2 = (
        (rect.xmin <= x2) & (x2 <= rect.xmax) & (rect.ymin <= y2) & (y2 <= rect.ymax)
    )
    result = in1 | in2

    both_left = (x1 < rect.xmin) & (x2 < rect.xmin)
    both_right = (x1 > rect.xmax) & (x2 > rect.xmax)
    both_below = (y1 < rect.ymin) & (y2 < rect.ymin)
    both_above = (y1 > rect.ymax) & (y2 > rect.ymax)
    rejected = both_left | both_right | both_below | both_above

    undecided = ~result & ~rejected
    if not np.any(undecided):
        return result

    ux1, uy1 = x1[undecided], y1[undecided]
    ux2, uy2 = x2[undecided], y2[undecided]
    hit = np.zeros(ux1.shape, dtype=bool)
    edges = (
        (rect.xmin, rect.ymin, rect.xmax, rect.ymin),
        (rect.xmax, rect.ymin, rect.xmax, rect.ymax),
        (rect.xmax, rect.ymax, rect.xmin, rect.ymax),
        (rect.xmin, rect.ymax, rect.xmin, rect.ymin),
    )
    for ex1, ey1, ex2, ey2 in edges:
        d1 = _cross_sign(ex1, ey1, ex2, ey2, ux1, uy1)
        d2 = _cross_sign(ex1, ey1, ex2, ey2, ux2, uy2)
        d3 = _cross_sign(ux1, uy1, ux2, uy2, ex1, ey1)
        d4 = _cross_sign(ux1, uy1, ux2, uy2, ex2, ey2)
        proper = ((d1 > 0) != (d2 > 0)) & ((d3 > 0) != (d4 > 0)) & (d1 != 0) & (d2 != 0) & (d3 != 0) & (d4 != 0)
        # Collinear touching: endpoint of one on the other. The undecided set
        # has both endpoints strictly outside the window, so only the segment
        # grazing an edge collinearly matters; treat d==0 plus bbox overlap.
        graze = (d1 == 0) | (d2 == 0) | (d3 == 0) | (d4 == 0)
        if np.any(graze):
            bxmin, bxmax = min(ex1, ex2), max(ex1, ex2)
            bymin, bymax = min(ey1, ey2), max(ey1, ey2)
            overlap = (
                (np.minimum(ux1, ux2) <= bxmax)
                & (np.maximum(ux1, ux2) >= bxmin)
                & (np.minimum(uy1, uy2) <= bymax)
                & (np.maximum(uy1, uy2) >= bymin)
            )
            # A zero orientation with bbox overlap can still be a miss for
            # non-collinear configurations; fall back to the scalar test for
            # this rare residue to stay exact.
            residue = graze & overlap & ~proper
            if np.any(residue):
                from repro.spatial.geometry import segments_intersect

                idx = np.nonzero(residue)[0]
                for i in idx:
                    if segments_intersect(
                        float(ux1[i]), float(uy1[i]), float(ux2[i]), float(uy2[i]),
                        ex1, ey1, ex2, ey2,
                    ):
                        proper[i] = True
        hit |= proper
    result[np.nonzero(undecided)[0][hit]] = True
    return result


def segments_intersect_rects(
    x1: np.ndarray, y1: np.ndarray, x2: np.ndarray, y2: np.ndarray,
    rxmin: np.ndarray, rymin: np.ndarray, rxmax: np.ndarray, rymax: np.ndarray,
) -> np.ndarray:
    """Row-wise :func:`segments_intersect_rect`: one window per segment.

    All arguments are aligned ``(n,)`` arrays; row ``i`` clips segment ``i``
    against window ``(rxmin[i], rymin[i], rxmax[i], rymax[i])``.  The
    batched planner concatenates every query's candidate set and refines
    them in one call, so each row must evaluate exactly the elementwise
    arithmetic of the per-query function — including the scalar
    :func:`repro.spatial.geometry.segments_intersect` fallback for the rare
    collinear-graze residue (equality is property-tested).
    """
    in1 = (rxmin <= x1) & (x1 <= rxmax) & (rymin <= y1) & (y1 <= rymax)
    in2 = (rxmin <= x2) & (x2 <= rxmax) & (rymin <= y2) & (y2 <= rymax)
    result = in1 | in2

    both_left = (x1 < rxmin) & (x2 < rxmin)
    both_right = (x1 > rxmax) & (x2 > rxmax)
    both_below = (y1 < rymin) & (y2 < rymin)
    both_above = (y1 > rymax) & (y2 > rymax)
    rejected = both_left | both_right | both_below | both_above

    undecided = ~result & ~rejected
    if not np.any(undecided):
        return result

    u = np.nonzero(undecided)[0]
    ux1, uy1 = x1[u], y1[u]
    ux2, uy2 = x2[u], y2[u]
    uxmin, uymin = rxmin[u], rymin[u]
    uxmax, uymax = rxmax[u], rymax[u]
    hit = np.zeros(ux1.shape, dtype=bool)
    edges = (
        (uxmin, uymin, uxmax, uymin),
        (uxmax, uymin, uxmax, uymax),
        (uxmax, uymax, uxmin, uymax),
        (uxmin, uymax, uxmin, uymin),
    )
    for ex1, ey1, ex2, ey2 in edges:
        d1 = _cross_sign(ex1, ey1, ex2, ey2, ux1, uy1)
        d2 = _cross_sign(ex1, ey1, ex2, ey2, ux2, uy2)
        d3 = _cross_sign(ux1, uy1, ux2, uy2, ex1, ey1)
        d4 = _cross_sign(ux1, uy1, ux2, uy2, ex2, ey2)
        proper = ((d1 > 0) != (d2 > 0)) & ((d3 > 0) != (d4 > 0)) & (d1 != 0) & (d2 != 0) & (d3 != 0) & (d4 != 0)
        graze = (d1 == 0) | (d2 == 0) | (d3 == 0) | (d4 == 0)
        if np.any(graze):
            bxmin, bxmax = np.minimum(ex1, ex2), np.maximum(ex1, ex2)
            bymin, bymax = np.minimum(ey1, ey2), np.maximum(ey1, ey2)
            overlap = (
                (np.minimum(ux1, ux2) <= bxmax)
                & (np.maximum(ux1, ux2) >= bxmin)
                & (np.minimum(uy1, uy2) <= bymax)
                & (np.maximum(uy1, uy2) >= bymin)
            )
            residue = graze & overlap & ~proper
            if np.any(residue):
                from repro.spatial.geometry import segments_intersect

                idx = np.nonzero(residue)[0]
                for i in idx:
                    if segments_intersect(
                        float(ux1[i]), float(uy1[i]), float(ux2[i]), float(uy2[i]),
                        float(ex1[i]), float(ey1[i]), float(ex2[i]), float(ey2[i]),
                    ):
                        proper[i] = True
        hit |= proper
    result[u[hit]] = True
    return result
