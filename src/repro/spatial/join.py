"""Spatial join between two line-segment layers (R-tree join).

Line-segment databases support more than single-layer lookups: joining two
layers — roads against rivers gives bridge/culvert sites, roads against
rail gives level crossings — is the classic next query ([13, 14] study
exactly these line-segment operations; the paper's future work asks for
"consideration of other spatial queries").

The join follows the same two-phase shape the paper partitions on:

* **Filtering** — :func:`rtree_join`: synchronized depth-first traversal of
  the two packed R-trees (Brinkhoff-style): a pair of nodes is descended
  only when their MBRs intersect, producing candidate id pairs whose
  *entry* MBRs intersect.
* **Refinement** — :func:`refine_join`: the exact segment-segment
  intersection test on every candidate pair.

Both phases tally the usual :class:`~repro.sim.trace.OpCounter` events, so
the executor's pricing machinery applies unchanged; the join bench compares
fully-at-client vs fully-at-server execution the same way the figures do.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.sim.trace import OpCounter
from repro.spatial import geometry
from repro.spatial.rtree import PackedRTree

__all__ = ["rtree_join", "refine_join", "bruteforce_join"]


def _children(tree: PackedRTree, node: int) -> Tuple[int, int, bool]:
    """(start, count, is_leaf) of a node."""
    return (
        int(tree.node_child_start[node]),
        int(tree.node_child_count[node]),
        bool(tree.node_level[node] == 0),
    )


def _boxes(tree: PackedRTree, node: int):
    """Child boxes of a node (entry boxes for leaves)."""
    s, c, leaf = _children(tree, node)
    sl = slice(s, s + c)
    if leaf:
        return (
            tree.entry_xmin[sl], tree.entry_ymin[sl],
            tree.entry_xmax[sl], tree.entry_ymax[sl],
            tree.entry_ids[sl], True, s,
        )
    return (
        tree.node_xmin[sl], tree.node_ymin[sl],
        tree.node_xmax[sl], tree.node_ymax[sl],
        None, False, s,
    )


def rtree_join(
    tree_a: PackedRTree,
    tree_b: PackedRTree,
    counter: Optional[OpCounter] = None,
) -> np.ndarray:
    """Candidate pairs ``(id_a, id_b)`` whose segment MBRs intersect.

    Synchronized traversal: starting from the two roots, every node pair
    with intersecting MBRs expands into the cross product of its
    *intersecting* children; mixed levels descend the non-leaf side.  The
    result is an ``(n, 2)`` int64 array (empty when the layers' extents are
    disjoint).
    """
    counter = counter if counter is not None else OpCounter(record_trace=False)
    out: List[Tuple[int, int]] = []
    ra, rb = tree_a.root, tree_b.root
    counter.mbr_tests += 1
    if not tree_a.node_mbr(ra).intersects(tree_b.node_mbr(rb)):
        return np.empty((0, 2), dtype=np.int64)
    stack: List[Tuple[int, int]] = [(ra, rb)]
    while stack:
        na, nb = stack.pop()
        counter.visit_node(na, tree_a.node_bytes(na))
        counter.visit_node(nb, tree_b.node_bytes(nb))
        ax1, ay1, ax2, ay2, a_ids, a_leaf, a_s = _boxes(tree_a, na)
        bx1, by1, bx2, by2, b_ids, b_leaf, b_s = _boxes(tree_b, nb)
        if a_leaf and b_leaf:
            # Pairwise entry tests, vectorized over B's entries per A entry.
            for i in range(len(ax1)):
                hit = (
                    (ax1[i] <= bx2) & (bx1 <= ax2[i])
                    & (ay1[i] <= by2) & (by1 <= ay2[i])
                )
                counter.mbr_tests += len(bx1)
                hits = np.nonzero(hit)[0]
                counter.entries_scanned += int(hits.size)
                ia = int(a_ids[i])
                for j in hits:
                    out.append((ia, int(b_ids[j])))
        elif not a_leaf and not b_leaf:
            for i in range(len(ax1)):
                hit = (
                    (ax1[i] <= bx2) & (bx1 <= ax2[i])
                    & (ay1[i] <= by2) & (by1 <= ay2[i])
                )
                counter.mbr_tests += len(bx1)
                for j in np.nonzero(hit)[0]:
                    stack.append((a_s + i, b_s + int(j)))
        elif a_leaf:
            # Mixed level: descend B under this whole leaf.
            box = tree_a.node_mbr(na)
            hit = (
                (box.xmin <= bx2) & (bx1 <= box.xmax)
                & (box.ymin <= by2) & (by1 <= box.ymax)
            )
            counter.mbr_tests += len(bx1)
            for j in np.nonzero(hit)[0]:
                stack.append((na, b_s + int(j)))
        else:
            # Mixed level: descend A under this whole leaf of B.
            box = tree_b.node_mbr(nb)
            hit = (
                (ax1 <= box.xmax) & (box.xmin <= ax2)
                & (ay1 <= box.ymax) & (box.ymin <= ay2)
            )
            counter.mbr_tests += len(ax1)
            for i in np.nonzero(hit)[0]:
                stack.append((a_s + int(i), nb))
    if not out:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(sorted(set(out)), dtype=np.int64)


def refine_join(
    tree_a: PackedRTree,
    tree_b: PackedRTree,
    pairs: np.ndarray,
    counter: Optional[OpCounter] = None,
) -> np.ndarray:
    """Pairs whose segments exactly intersect (the join's refinement)."""
    counter = counter if counter is not None else OpCounter(record_trace=False)
    if pairs.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    ds_a, ds_b = tree_a.dataset, tree_b.dataset
    out: List[Tuple[int, int]] = []
    for ia, ib in pairs:
        counter.refine_candidate(int(ia), ds_a.costs.segment_record_bytes)
        counter.range_refine_tests += 1
        if geometry.segments_intersect(
            *ds_a.segment(int(ia)), *ds_b.segment(int(ib))
        ):
            out.append((int(ia), int(ib)))
    counter.results_produced += len(out)
    if not out:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(out, dtype=np.int64)


def bruteforce_join(ds_a, ds_b) -> np.ndarray:
    """Oracle: all exactly-intersecting pairs by full cross product.

    Quadratic — only usable on test-sized layers.
    """
    out: List[Tuple[int, int]] = []
    for ia in range(ds_a.size):
        seg_a = ds_a.segment(ia)
        mbr_a = ds_a.segment_mbr(ia)
        for ib in range(ds_b.size):
            if not mbr_a.intersects(ds_b.segment_mbr(ib)):
                continue
            if geometry.segments_intersect(*seg_a, *ds_b.segment(ib)):
                out.append((ia, ib))
    if not out:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(out, dtype=np.int64)
