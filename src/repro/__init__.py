"""repro — reproduction of *Energy and Performance Considerations in Work
Partitioning for Mobile Spatial Queries* (Gurumurthi et al., IPPS 2003).

A mobile client (PDA-class, wireless NIC, battery-powered) answers spatial
queries over a Hilbert-packed R-tree of road-atlas line segments; the work
can be partitioned with a resource-rich server at the filtering/refinement
phase boundary.  This package provides:

* the spatial substrate (:mod:`repro.spatial`): geometry, Hilbert curve,
  packed R-tree, budgeted subtree extraction;
* datasets and workloads (:mod:`repro.data`): synthetic TIGER-like PA/NYC
  road networks, the paper's query generators;
* the simulation substrate (:mod:`repro.sim`): client/server CPU cost and
  energy models, D-cache simulator, NIC power-state machine, TCP/IP
  packetization;
* the work-partitioning core (:mod:`repro.core`): schemes, executor,
  insufficient-memory cached client, analytic trade-off model, sweeps;
* figure generators (:mod:`repro.bench`) regenerating every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import quick_environment, Session
    from repro.core import RangeQuery, SchemeConfig, Scheme
    from repro.spatial import MBR

    session = Session(quick_environment(scale=0.05))  # small PA-like dataset
    q = RangeQuery(MBR(40_000, 30_000, 44_000, 33_000))
    table = session.run(
        q, schemes=SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True)
    )
    for row in table:   # one row per (scheme, bandwidth) point
        print(row.bandwidth_mbps, "Mbps:", row.energy_j, "J,", row.cycles, "cycles")
"""

from repro.api import Engine, RunRow, RunTable, Session
from repro.constants import (
    BANDWIDTHS_MBPS,
    DEFAULT_CLIENT,
    DEFAULT_COSTS,
    DEFAULT_NETWORK,
    DEFAULT_NIC_POWER,
    DEFAULT_SERVER,
)
from repro.core import (
    ADEQUATE_MEMORY_CONFIGS,
    Environment,
    NNQuery,
    PointQuery,
    Policy,
    Query,
    QueryEngine,
    RangeQuery,
    RunResult,
    Scheme,
    SchemeConfig,
    execute,
)
from repro.core.shardstore import ShardConfig, ShardResidencyError, ShardStore
from repro.data import SegmentDataset
from repro.data.workloads import ClientProfile, QueryRequest, client_fleet, fleet_query_stream
from repro.serve import QueryOutcome, QueryService, ServiceReport
from repro.spatial import MBR, PackedRTree

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Session",
    "Engine",
    "RunTable",
    "RunRow",
    "QueryService",
    "QueryOutcome",
    "ServiceReport",
    "ClientProfile",
    "QueryRequest",
    "client_fleet",
    "fleet_query_stream",
    "BANDWIDTHS_MBPS",
    "DEFAULT_CLIENT",
    "DEFAULT_COSTS",
    "DEFAULT_NETWORK",
    "DEFAULT_NIC_POWER",
    "DEFAULT_SERVER",
    "ADEQUATE_MEMORY_CONFIGS",
    "Environment",
    "NNQuery",
    "PointQuery",
    "Policy",
    "Query",
    "QueryEngine",
    "RangeQuery",
    "RunResult",
    "Scheme",
    "SchemeConfig",
    "ShardConfig",
    "ShardResidencyError",
    "ShardStore",
    "execute",
    "SegmentDataset",
    "MBR",
    "PackedRTree",
    "quick_environment",
]


def quick_environment(dataset: str = "PA", scale: float = 0.05, seed: int = 1):
    """A ready-to-use :class:`Environment` over a synthetic dataset.

    ``dataset`` is ``"PA"`` or ``"NYC"``; ``scale`` shrinks the published
    cardinality (1.0 = full size).  Convenience for examples and exploration.
    """
    from repro.data import tiger

    if dataset.upper() == "PA":
        ds = tiger.pa_dataset(scale=scale, seed=seed)
    elif dataset.upper() == "NYC":
        ds = tiger.nyc_dataset(scale=scale, seed=seed)
    else:
        raise ValueError(f"unknown dataset {dataset!r} (use 'PA' or 'NYC')")
    return Environment.create(ds)
