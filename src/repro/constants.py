"""Paper constants and calibrated cost-model parameters.

Everything configurable in the reproduction lives here, grouped by the paper
table it came from:

* :class:`NICPowerTable` — Table 2 (NIC power states, LMX3162-derived model).
* :class:`ClientConfig` — Table 3 (mobile client: single-issue 5-stage integer
  pipeline, 16 KB I-cache / 8 KB D-cache, 100-cycle memory, 3.3 V, 0.35 micron).
* :class:`ServerConfig` — Table 4 (4-issue superscalar at 1 GHz).
* :class:`CostModel` — the calibrated operation-level instruction/energy costs
  used by :mod:`repro.sim.cpu` in place of the cycle-accurate SimplePower
  simulator (see DESIGN.md section 2 for the substitution rationale).

The sweep grids of the evaluation section (bandwidths, clock ratios,
transmission distances, cache-buffer sizes) are module-level tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "MBPS",
    "MHZ",
    "BANDWIDTHS_MBPS",
    "CLIENT_CLOCK_RATIOS",
    "DISTANCES_M",
    "BUFFER_SIZES_BYTES",
    "NICPowerTable",
    "ClientConfig",
    "ServerConfig",
    "NetworkConfig",
    "CostModel",
    "DEFAULT_NIC_POWER",
    "DEFAULT_CLIENT",
    "DEFAULT_SERVER",
    "DEFAULT_NETWORK",
    "DEFAULT_COSTS",
]

#: Bits per second in one megabit per second.
MBPS = 1_000_000.0

#: Cycles per second in one megahertz.
MHZ = 1_000_000.0

#: Wireless bandwidth sweep of the evaluation section (Mbps).
BANDWIDTHS_MBPS = (2.0, 4.0, 6.0, 8.0, 11.0)

#: Client clock expressed as a fraction of the server clock (Table 3 sweep).
CLIENT_CLOCK_RATIOS = (1 / 8, 1 / 4, 1 / 2, 1 / 1)

#: Client-to-base-station transmission distances studied (meters).
DISTANCES_M = (100.0, 1000.0)

#: Client memory buffers for the insufficient-memory scenario (bytes).
BUFFER_SIZES_BYTES = (1 * 1024 * 1024, 2 * 1024 * 1024)


@dataclass(frozen=True, kw_only=True)
class NICPowerTable:
    """Wireless NIC power states (paper Table 2, in watts).

    The transmit power depends on the physical distance between the client and
    the base station; the two anchor points published in the paper are 1089.1 mW
    at 100 m and 3089.1 mW at 1 km.  :mod:`repro.sim.radio` interpolates between
    (and extrapolates around) these anchors with a path-loss model.

    Construction is keyword-only and validated: powers and latencies must be
    non-negative (a negative power would silently corrupt every energy ledger
    downstream).
    """

    #: Transmit power at the 1 km anchor distance (W).
    transmit_1km_w: float = 3.0891
    #: Transmit power at the 100 m anchor distance (W).
    transmit_100m_w: float = 1.0891
    #: Receive power (W).
    receive_w: float = 0.165
    #: Idle power — carrier sensing possible, zero exit latency (W).
    idle_w: float = 0.100
    #: Sleep power — radio off, cannot sense incoming traffic (W).
    sleep_w: float = 0.0198
    #: Latency to exit the SLEEP state into an active state (seconds).
    sleep_exit_latency_s: float = 470e-6
    #: Latency to exit the IDLE state (seconds; zero per Table 2).
    idle_exit_latency_s: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "transmit_1km_w",
            "transmit_100m_w",
            "receive_w",
            "idle_w",
            "sleep_w",
            "sleep_exit_latency_s",
            "idle_exit_latency_s",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")


@dataclass(frozen=True)
class ClientConfig:
    """Mobile-client hardware configuration (paper Table 3).

    The client is a single-issue five-stage pipelined *integer* datapath: all
    floating-point geometry is software-emulated, which is why refinement is so
    much more expensive per operation on the client than on the server (and why
    offloading refinement pays off for range queries).
    """

    #: Client clock in Hz. Default MhzS/8 = 125 MHz, matching the figures.
    clock_hz: float = 125.0 * MHZ
    #: Instruction-cache size (bytes): 16 KB, 4-way, 32 B lines.
    icache_bytes: int = 16 * 1024
    #: Data-cache size (bytes): 8 KB, 4-way, 32 B lines.
    dcache_bytes: int = 8 * 1024
    #: Cache associativity for both caches.
    cache_assoc: int = 4
    #: Cache line size (bytes) for both caches.
    cache_line_bytes: int = 32
    #: Cache hit latency (cycles).
    cache_hit_cycles: int = 1
    #: DRAM access latency (cycles).
    memory_latency_cycles: int = 100
    #: Client DRAM size (bytes): 32 MB.
    memory_bytes: int = 32 * 1024 * 1024
    #: Supply voltage (V) — used by the energy model.
    supply_voltage: float = 3.3
    #: Nominal total client power excluding the NIC, in watts, at the default
    #: clock.  This is the ``P_client`` of section 4.1 (datapath + clock +
    #: caches + buses + DRAM).  Derived from the per-event energies of
    #: :class:`CostModel`; kept here as the headline number used by the
    #: analytic model.  Scales linearly with clock frequency.  The figure is
    #: *dynamic* energy of a small 0.35 micron core in the SimplePower style
    #: — tens of milliwatts, far below a whole-PDA power rail — and is what
    #: makes wireless transmission (3 W at 1 km) so dominant in the results.
    nominal_power_w: float = 0.070
    #: Fraction of ``nominal_power_w`` drawn in the CPU low-power (halted)
    #: mode used while blocked on the NIC.  The paper reports 10-20% energy
    #: savings from this mode in communication-heavy runs.
    lowpower_fraction: float = 0.12

    def power_at(self, clock_hz: float | None = None) -> float:
        """Dynamic client power (W) at ``clock_hz`` (defaults to own clock)."""
        hz = self.clock_hz if clock_hz is None else clock_hz
        return self.nominal_power_w * (hz / (125.0 * MHZ))

    def with_clock(self, clock_hz: float) -> "ClientConfig":
        """A copy of this config running at ``clock_hz``."""
        return replace(self, clock_hz=clock_hz)


@dataclass(frozen=True)
class ServerConfig:
    """Server hardware configuration (paper Table 4).

    Only cycles matter at the server (the paper assumes it is resource-rich, so
    its energy is not accounted); we model it as a 4-issue superscalar with
    native floating-point units and a deep cache hierarchy summarized by an
    effective instructions-per-cycle figure.
    """

    #: Server clock in Hz (1 GHz).
    clock_hz: float = 1000.0 * MHZ
    #: Issue width (informational; folded into ``effective_ipc``).
    issue_width: int = 4
    #: Effective sustained IPC on this integer+FP pointer-chasing workload.
    #: 4-wide machines of the era sustain well under their peak on index
    #: traversals; 1.8 is a standard figure for pointer+FP mixes.
    effective_ipc: float = 1.8
    #: Server memory (bytes): 128 MB — always adequate in this study.
    memory_bytes: int = 128 * 1024 * 1024


@dataclass(frozen=True, kw_only=True)
class NetworkConfig:
    """Wireless link and protocol parameters (paper section 5.2).

    Construction is keyword-only and validated: the bandwidth must be
    positive and the distance must be positive (the radio model has no
    physical reading for a non-positive distance), so malformed sweeps fail
    at construction rather than deep inside a pricing walk.

    The paper's channel is ideal — errors are folded into the effective
    bandwidth.  The ``loss_*`` / ``retx_*`` fields relax that: a stationary
    per-frame loss rate (i.i.d. Bernoulli, or Gilbert-Elliott bursts of
    mean length ``loss_burst_frames``) with TCP-like retransmission under
    capped exponential backoff.  ``loss_rate=0`` (the default) reproduces
    the ideal channel bit for bit; :mod:`repro.sim.lossy` prices the rest.
    """

    #: Effective delivered bandwidth ``B`` in bits/second. Channel errors and
    #: MAC effects are folded into this figure, per the paper.
    bandwidth_bps: float = 2.0 * MBPS
    #: Client-to-base-station distance (m); selects the Tx power.
    distance_m: float = 1000.0
    #: Maximum transmission unit (bytes per frame on the wireless link).
    mtu_bytes: int = 1500
    #: TCP header bytes per segment.
    tcp_header_bytes: int = 20
    #: IP header bytes per packet.
    ip_header_bytes: int = 20
    #: Link-layer framing overhead per frame (preamble + CRC), bytes.
    link_header_bytes: int = 34
    #: Fixed client instructions to initiate a send or receive (syscall, driver).
    per_message_instructions: int = 4_000
    #: Client instructions per frame for protocol processing (checksum,
    #: segmentation, copies) — the ``C_protocol`` component of section 4.1.
    per_frame_instructions: int = 1_800
    #: Client instructions per payload byte (buffer copies + checksumming).
    per_byte_instructions: float = 0.25
    #: Stationary per-frame loss probability in [0, 1).  0 = ideal channel.
    loss_rate: float = 0.0
    #: Mean loss-burst length in frames for the Gilbert-Elliott burst mode;
    #: ``None`` selects i.i.d. Bernoulli losses.  Must be >= 1 when set.
    loss_burst_frames: float | None = None
    #: Dwell before the first retransmission of a lost frame (seconds).
    retx_timeout_s: float = 0.02
    #: Timeout growth factor per consecutive loss of the same frame (>= 1).
    retx_backoff: float = 2.0
    #: Ceiling on the backed-off timeout (seconds).
    retx_timeout_cap_s: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError(
                f"bandwidth_bps must be positive, got {self.bandwidth_bps!r}"
            )
        if not (0.0 <= self.loss_rate < 1.0):
            raise ValueError(
                f"loss_rate must be in [0, 1), got {self.loss_rate!r}"
            )
        if self.loss_burst_frames is not None and not (
            1.0 <= self.loss_burst_frames < float("inf")
        ):
            raise ValueError(
                "loss_burst_frames must be a finite value >= 1 (or None for "
                f"Bernoulli losses), got {self.loss_burst_frames!r}"
            )
        if self.retx_backoff < 1.0:
            raise ValueError(
                f"retx_backoff must be >= 1, got {self.retx_backoff!r}"
            )
        for name in ("retx_timeout_s", "retx_timeout_cap_s"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")
        if self.distance_m <= 0:
            raise ValueError(
                f"distance_m must be positive, got {self.distance_m!r}"
            )
        if self.mtu_bytes <= 0:
            raise ValueError(f"mtu_bytes must be positive, got {self.mtu_bytes!r}")
        for name in (
            "tcp_header_bytes",
            "ip_header_bytes",
            "link_header_bytes",
            "per_message_instructions",
            "per_frame_instructions",
            "per_byte_instructions",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")


@dataclass(frozen=True)
class CostModel:
    """Calibrated operation-level costs for the client CPU model.

    Instruction counts per abstract operation recorded by
    :class:`repro.sim.trace.OpCounter`.  The geometry operations carry the
    floating-point *operation* counts separately so the client (software FP
    emulation) and server (native FP) price them differently.

    Energy-per-event figures are in joules and reflect a 3.3 V / 0.35 micron
    design in the style of the SimplePower technology files: they are chosen so
    that the aggregate client power lands at
    :attr:`ClientConfig.nominal_power_w` for a typical instruction mix.
    """

    # ------------------------------------------------------------------
    # Instruction costs (integer instructions per abstract event)
    # ------------------------------------------------------------------
    #: Fixed overhead per visited index node (call, load header, loop setup).
    instr_per_node_visit: int = 40
    #: Integer instructions per MBR overlap/containment/MINDIST test.  Index
    #: MBRs are stored on the quantized integer grid (the same 3-bytes-per-
    #: coordinate encoding the wire references use), so these tests run on
    #: the integer datapath — no FP emulation; this is why filtering is cheap
    #: on the client relative to refinement, as the paper observes.
    instr_per_mbr_test: int = 28
    #: FP operations per MBR test (zero: quantized integer compares).
    fp_per_mbr_test: int = 0
    #: Integer instructions per leaf entry scanned into the candidate list.
    instr_per_entry_scan: int = 12
    #: Integer instructions per candidate refined (load segment, set up).
    instr_per_refine_setup: int = 80
    #: FP operations per point-vs-segment exact test (dot products, cross).
    fp_per_point_refine: int = 14
    #: FP operations per segment-vs-window exact test (Cohen-Sutherland style
    #: clip: outcodes plus up to four edge intersections).
    fp_per_range_refine: int = 56
    #: FP operations per point-to-segment distance evaluation (NN search).
    fp_per_distance: int = 22
    #: Integer instructions per priority-queue operation in the NN search.
    instr_per_heap_op: int = 45
    #: Integer instructions per result id appended/copied.
    instr_per_result: int = 10
    #: Cycles per software-emulated FP operation on the integer-only client.
    #: Double-precision SoftFloat-class emulation (unpack, align, normalize,
    #: repack) runs 100-400 cycles per operation on a 5-stage integer core;
    #: 170 is a mid-range figure for the compare/add/mul mix of the geometry
    #: kernels, and is the single biggest client/server asymmetry.
    client_fp_emulation_cycles: int = 170
    #: Cycles per FP operation on the server (native units, pipelined).
    server_fp_cycles: float = 1.0

    # ------------------------------------------------------------------
    # Energy per event on the client (joules), SimplePower-style buckets
    # ------------------------------------------------------------------
    #: Datapath + clock energy per executed instruction/cycle.
    energy_per_cycle_j: float = 0.35e-9
    #: I-cache access energy per instruction.
    energy_per_icache_access_j: float = 0.175e-9
    #: D-cache access energy per data access.
    energy_per_dcache_access_j: float = 0.50e-9
    #: Bus + DRAM energy per cache-line fill from memory.
    energy_per_memory_access_j: float = 14.0e-9

    # ------------------------------------------------------------------
    # Data layout (byte-size model; matches the paper's dataset/index sizes)
    # ------------------------------------------------------------------
    #: Bytes per stored line segment (4 float32 coords + id + name payload):
    #: calibrated to PA = 139006 segments ~ 10.06 MB.
    segment_record_bytes: int = 76
    #: Bytes per R-tree index entry (MBR as 4 float32 + child pointer).
    index_entry_bytes: int = 20
    #: Bytes per index-node header.
    index_node_header_bytes: int = 8
    #: Bytes per object *reference* exchanged in messages: a 4-byte id plus a
    #: 12-byte quantized MBR (3 bytes per coordinate on the dataset grid), so
    #: the receiver can place/refine candidates without a lookup round-trip.
    object_id_bytes: int = 16
    #: Bytes per query request message payload (query struct, session and
    #: display state, authentication).
    request_bytes: int = 256

    def client_cycles_for_fp(self, fp_ops: float) -> float:
        """Client cycles to execute ``fp_ops`` software-emulated FP operations."""
        return fp_ops * self.client_fp_emulation_cycles

    def server_cycles_for_fp(self, fp_ops: float) -> float:
        """Server cycles for ``fp_ops`` native FP operations."""
        return fp_ops * self.server_fp_cycles


#: Default instances used throughout the library and benches.
DEFAULT_NIC_POWER = NICPowerTable()
DEFAULT_CLIENT = ClientConfig()
DEFAULT_SERVER = ServerConfig()
DEFAULT_NETWORK = NetworkConfig()
DEFAULT_COSTS = CostModel()
