"""Multi-tenant query service: admission, micro-batching, contention pricing.

The paper prices one client against one server.  :class:`QueryService`
promotes that to serving scale: a fleet of heterogeneous clients
(:class:`~repro.data.workloads.ClientProfile`) submits a time-ordered stream
of :class:`~repro.data.workloads.QueryRequest` arrivals, and the service

1. **admits** each arrival — rejecting it when the bounded arrival queue is
   full (``max_queue``) or the client's energy budget is spent
   (``battery_j``),
2. **coalesces** admitted queries across clients into micro-batches (up to
   ``max_batch`` queries, formed after a ``batch_window_s`` collection
   window), planned by one batched traversal and priced by one vectorized
   grid call — the cross-client amortization the batched planner/pricer
   were built for, and
3. **prices contention** with a simple queueing/service-time model over
   :class:`~repro.sim.server.ServerCPU`: the server is a single resource,
   so each query's server-side compute serializes within its batch, and a
   query's extra wait (batch formation + earlier batch members' server
   time) is charged at the client's blocked power — NIC idle plus the CPU's
   wait-policy power, exactly the rates a
   :class:`~repro.core.executor.WaitStep` would burn.

Every request yields one typed :class:`QueryOutcome` (admission verdict,
latency, energy, contention), collected in a :class:`ServiceReport` and,
when the engine has a :class:`~repro.core.gridrun.RunLedger`, recorded as
``outcome`` / ``serve_batch`` / ``serve`` events.

**Semantics.** Each client is its own physical device: it sees a private
client D-cache, cold at fleet start and warming across its own queries in
arrival order (the batched replay continues each client's cache state
across micro-batches via warm seeding).  The server is one physical
machine: its L1 is *shared service state*, warming across every served
query in dispatch order, whoever issued it.  Serving is therefore
*plan-for-plan identical* to serving the same dispatch sequence one query
at a time — ``planner="serial"`` runs that reference implementation, and
the differential suite pins the two together; a single-client fleet
degenerates to today's ``Session`` results bit for bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api import Engine
from repro.core.batchplan import (
    CacheGeometry,
    _assemble_plan,
    _make_stream,
    _query_phase_slots,
    compute_query_phases,
)
from repro.core.executor import (
    Environment,
    QueryPlan,
    RunResult,
    ServerComputeStep,
    plan_query,
    price_plan,
)
from repro.core.gridrun import PlanCache, RunLedger
from repro.core.queries import Query
from repro.data.model import SegmentDataset
from repro.data.workloads import ClientProfile, QueryRequest
from repro.sim.cache import BatchedLRU, CacheSim

__all__ = [
    "QueryService",
    "QueryOutcome",
    "ServiceReport",
    "SERVE_PLANNERS",
    "VERDICTS",
]

#: Service planners: ``"batched"`` coalesces each micro-batch through the
#: batched planner/pricer (the point of the service); ``"columnar"`` runs
#: the same replay but compiles and prices each micro-batch straight from
#: the slot costs (:mod:`repro.core.colplan`) without materializing plan
#: objects; ``"serial"`` is the per-query scalar reference the
#: differential suite compares against.
SERVE_PLANNERS = ("batched", "columnar", "serial")

#: Admission verdicts a request can receive.
VERDICTS = ("served", "rejected-queue", "rejected-battery")


@dataclass(frozen=True, kw_only=True)
class QueryOutcome:
    """One request's fate: admission verdict plus its priced costs.

    For served requests ``latency_s`` is queueing delay (batch formation
    plus server contention) + the plan's own wall time, and ``energy_j`` is
    the plan's client energy + ``contention_j`` (the blocked-power cost of
    the queueing delay).  Rejected requests carry zero costs.
    """

    client_id: int
    query: Query
    verdict: str
    arrival_s: float
    scheme: str = ""
    batch: int = -1
    start_s: float = 0.0
    queue_wait_s: float = 0.0
    server_s: float = 0.0
    latency_s: float = 0.0
    energy_j: float = 0.0
    contention_j: float = 0.0
    answer_ids: Tuple[int, ...] = ()
    n_results: int = 0
    #: Semantic-cache verdict ("hit" / "refine" / "miss") when the service
    #: runs with a shared semantic cache; "" otherwise (and for NN queries).
    semcache: str = ""
    result: Optional[RunResult] = field(default=None, compare=False)

    @property
    def served(self) -> bool:
        """Whether the request was admitted and answered."""
        return self.verdict == "served"

    def to_record(self) -> dict:
        """This outcome as a flat dict (ledger ``outcome`` events)."""
        rec = {
            "client_id": self.client_id,
            "verdict": self.verdict,
            "arrival_s": self.arrival_s,
        }
        if self.served:
            rec.update(
                scheme=self.scheme,
                batch=self.batch,
                queue_wait_s=self.queue_wait_s,
                server_s=self.server_s,
                latency_s=self.latency_s,
                energy_j=self.energy_j,
                contention_j=self.contention_j,
                n_results=self.n_results,
            )
            if self.semcache:
                rec["semcache"] = self.semcache
        return rec


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass(frozen=True)
class ServiceReport:
    """Everything one :meth:`QueryService.serve` call produced."""

    outcomes: Tuple[QueryOutcome, ...]
    planner: str
    n_batches: int
    #: Real (host) seconds the serve call took — the throughput the
    #: benchmark gates, not a simulated quantity.
    wall_seconds: float
    #: Simulated seconds from t=0 to the last served query's completion.
    makespan_s: float
    #: Lifetime shard pruning/residency counters
    #: (:meth:`repro.core.shardstore.ShardStore.stats_dict`) when the
    #: engine shards; ``None`` otherwise.
    shard: Optional[dict] = None

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def served(self) -> List[QueryOutcome]:
        """The served outcomes, in arrival order."""
        return [o for o in self.outcomes if o.served]

    @property
    def n_served(self) -> int:
        """How many requests were admitted and answered."""
        return sum(1 for o in self.outcomes if o.served)

    @property
    def n_rejected_queue(self) -> int:
        """How many requests bounced off the full arrival queue."""
        return sum(1 for o in self.outcomes if o.verdict == "rejected-queue")

    @property
    def n_rejected_battery(self) -> int:
        """How many requests were refused for a spent energy budget."""
        return sum(1 for o in self.outcomes if o.verdict == "rejected-battery")

    @property
    def qps(self) -> float:
        """Simulated sustained throughput: served queries per makespan second."""
        if self.makespan_s <= 0.0:
            return 0.0
        return self.n_served / self.makespan_s

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of served latency (seconds)."""
        return _percentile([o.latency_s for o in self.served], q)

    def energy_percentile(self, q: float) -> float:
        """The ``q``-th percentile of served per-query energy (joules)."""
        return _percentile([o.energy_j for o in self.served], q)

    @property
    def total_energy_j(self) -> float:
        """Total client energy spent across the fleet (served queries)."""
        return sum(o.energy_j for o in self.served)

    @property
    def shard_prune_rate(self) -> float:
        """Lifetime fraction of shards never touched (0.0 when unsharded)."""
        if not self.shard or not self.shard.get("shards_total"):
            return 0.0
        return self.shard["shards_pruned"] / self.shard["shards_total"]

    def summary(self) -> dict:
        """The report's aggregates as a flat dict (ledger / BENCH JSON)."""
        if self.shard is not None:
            return {**self._base_summary(), "shard": dict(self.shard)}
        return self._base_summary()

    def _base_summary(self) -> dict:
        return {
            "planner": self.planner,
            "n_requests": len(self.outcomes),
            "n_served": self.n_served,
            "n_rejected_queue": self.n_rejected_queue,
            "n_rejected_battery": self.n_rejected_battery,
            "n_batches": self.n_batches,
            "qps": self.qps,
            "makespan_s": self.makespan_s,
            "wall_seconds": self.wall_seconds,
            "p50_latency_s": self.latency_percentile(50),
            "p99_latency_s": self.latency_percentile(99),
            "p50_energy_j": self.energy_percentile(50),
            "p99_energy_j": self.energy_percentile(99),
            "total_energy_j": self.total_energy_j,
        }


def _cold_clone(sim: CacheSim) -> CacheSim:
    """A fresh, cold cache with ``sim``'s geometry."""
    return CacheSim(sim.n_sets * sim.assoc * sim.line_bytes, sim.assoc, sim.line_bytes)


class _ClientState:
    """One client's service-side state: virtual D-cache + energy meter.

    The sim starts cold at fleet start and warms across the client's own
    queries only — each client device is independent, whoever else shares
    its micro-batches.  (The server's L1 is *service* state, shared across
    the fleet; :meth:`QueryService.serve` owns it.)
    """

    __slots__ = ("profile", "sim", "spent_j")

    def __init__(self, profile: ClientProfile, env: Environment) -> None:
        self.profile = profile
        self.sim = _cold_clone(env.client_cpu.dcache)
        self.spent_j = 0.0


def _blocked_power_w(policy, env: Environment) -> float:
    """Watts a client burns while blocked waiting (NIC idle + wait-policy CPU).

    The same rates ``gridrun._PolicyColumns`` charges for a plan's own wait
    steps, applied here to service queueing delay.
    """
    nominal = env.client_cpu.config.power_at()
    busy = policy.busy_wait or not policy.cpu_lowpower
    cpu_w = nominal if busy else nominal * env.client_cpu.config.lowpower_fraction
    return policy.nic_power.idle_w + cpu_w


class QueryService:
    """Serve a client fleet's query stream over one shared :class:`Engine`.

    ``source`` is a :class:`~repro.data.model.SegmentDataset`, a ready
    :class:`~repro.core.executor.Environment`, or an
    :class:`~repro.api.Engine` to share with a
    :class:`~repro.api.Session` (plan/phase/compile caches and ledger are
    then common; the ``plan_cache``/``ledger`` keywords must stay unset).

    ``max_queue`` bounds the arrival queue (arrivals beyond it are
    rejected), ``max_batch`` caps micro-batch size, and ``batch_window_s``
    is the collection window: a batch is dispatched no earlier than its
    oldest member's arrival plus the window (and no earlier than the
    server coming free).
    """

    def __init__(
        self,
        source: Union[SegmentDataset, Environment, Engine],
        *,
        max_queue: int = 256,
        max_batch: int = 64,
        batch_window_s: float = 0.05,
        plan_cache: Optional[PlanCache] = None,
        ledger: Optional[RunLedger] = None,
        semantic_cache=None,
        sharding=None,
    ) -> None:
        if isinstance(source, Engine):
            if (
                plan_cache is not None
                or ledger is not None
                or semantic_cache is not None
                or sharding is not None
            ):
                raise TypeError(
                    "plan_cache, ledger, semantic_cache and sharding are "
                    "configured on the shared Engine; do not pass them again"
                )
            self.engine = source
        elif isinstance(source, (SegmentDataset, Environment)):
            self.engine = Engine(
                source,
                plan_cache=plan_cache,
                ledger=ledger,
                semantic_cache=semantic_cache,
                sharding=sharding,
            )
        else:
            raise TypeError(
                "QueryService() takes a SegmentDataset or an Environment "
                f"(or a shared Engine), got {type(source).__name__}"
            )
        if not isinstance(max_queue, int) or max_queue < 1:
            raise ValueError(f"max_queue must be an int >= 1, got {max_queue!r}")
        if not isinstance(max_batch, int) or max_batch < 1:
            raise ValueError(f"max_batch must be an int >= 1, got {max_batch!r}")
        if not batch_window_s >= 0.0:
            raise ValueError(
                f"batch_window_s must be >= 0, got {batch_window_s!r}"
            )
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s

    # ------------------------------------------------------------------
    def serve(
        self,
        requests: Sequence[QueryRequest],
        fleet: Sequence[ClientProfile],
        *,
        planner: str = "batched",
    ) -> ServiceReport:
        """Run the arrival stream to completion; one outcome per request.

        Requests are processed in arrival order.  Each loop turn opens the
        next dispatch instant (oldest waiting arrival + the batch window,
        or the server's free time if later), admits every arrival up to it
        against the queue bound and each client's battery budget, then
        serves up to ``max_batch`` queued queries as one micro-batch.
        ``planner`` selects the coalesced batched path, the fused
        columnar path (same replay, no plan objects), or the per-query
        serial reference (:data:`SERVE_PLANNERS`); all yield identical
        answers and cache states, and energies equal to the pricers'
        agreement tolerance.
        """
        if planner not in SERVE_PLANNERS:
            raise ValueError(
                f"unknown planner {planner!r}; choose from {SERVE_PLANNERS}"
            )
        profiles: Dict[int, ClientProfile] = {}
        for p in fleet:
            if not isinstance(p, ClientProfile):
                raise TypeError(
                    f"fleet entries must be ClientProfile, got {type(p).__name__}"
                )
            if p.client_id in profiles:
                raise ValueError(f"duplicate client_id {p.client_id} in fleet")
            profiles[p.client_id] = p
        reqs = sorted(requests, key=lambda r: (r.arrival_s, r.client_id))
        for r in reqs:
            prof = profiles.get(r.client_id)
            if prof is None:
                raise ValueError(
                    f"request references unknown client_id {r.client_id}"
                )
            prof.scheme.validate_for(r.query)

        env = self.engine.env
        states = {cid: _ClientState(p, env) for cid, p in profiles.items()}
        server_sim = _cold_clone(env.server_cpu.l1)
        outcomes: List[Optional[QueryOutcome]] = [None] * len(reqs)
        queue: List[int] = []
        t_free = 0.0
        i, n = 0, len(reqs)
        n_batches = 0
        t0 = time.perf_counter()
        while i < n or queue:
            head = queue[0] if queue else i
            t_start = max(reqs[head].arrival_s + self.batch_window_s, t_free)
            while i < n and reqs[i].arrival_s <= t_start:
                r = reqs[i]
                st = states[r.client_id]
                if st.spent_j >= st.profile.battery_j:
                    outcomes[i] = QueryOutcome(
                        client_id=r.client_id,
                        query=r.query,
                        verdict="rejected-battery",
                        arrival_s=r.arrival_s,
                    )
                elif len(queue) >= self.max_queue:
                    outcomes[i] = QueryOutcome(
                        client_id=r.client_id,
                        query=r.query,
                        verdict="rejected-queue",
                        arrival_s=r.arrival_s,
                    )
                else:
                    queue.append(i)
                i += 1
            batch = queue[: self.max_batch]
            del queue[: self.max_batch]
            if not batch:
                continue
            n_batches += 1
            batch_reqs = [reqs[k] for k in batch]
            if planner == "columnar":
                served = self._serve_columnar(batch_reqs, states, server_sim)
            else:
                if planner == "batched":
                    plans, verdicts = self._plan_batch(
                        batch_reqs, states, server_sim
                    )
                    results = self._price_batch(batch_reqs, plans, states)
                else:
                    plans, results, verdicts = self._serve_serial(
                        batch_reqs, states, server_sim
                    )
                served = [
                    (
                        sum(
                            s.cycles
                            for s in plan.steps
                            if isinstance(s, ServerComputeStep)
                        ),
                        tuple(int(a) for a in plan.answer_ids),
                        plan.n_results,
                        result,
                        verdict,
                    )
                    for plan, result, verdict in zip(plans, results, verdicts)
                ]
            # Contention: server-side compute serializes within the batch.
            clock = env.server_cpu.clock_hz
            cursor = 0.0
            for k, idx in enumerate(batch):
                r = reqs[idx]
                st = states[r.client_id]
                server_cycles, answer_ids, n_results, result, semv = served[k]
                server_s = server_cycles / clock
                delay = (t_start - r.arrival_s) + cursor
                cursor += server_s
                contention_j = delay * _blocked_power_w(st.profile.policy, env)
                energy_j = result.energy.total() + contention_j
                st.spent_j += energy_j
                outcomes[idx] = QueryOutcome(
                    client_id=r.client_id,
                    query=r.query,
                    verdict="served",
                    arrival_s=r.arrival_s,
                    scheme=st.profile.scheme.label,
                    batch=n_batches - 1,
                    start_s=t_start,
                    queue_wait_s=delay,
                    server_s=server_s,
                    latency_s=delay + result.wall_seconds,
                    energy_j=energy_j,
                    contention_j=contention_j,
                    answer_ids=answer_ids,
                    n_results=n_results,
                    semcache=semv,
                    result=result,
                )
            t_free = t_start + cursor
            self.engine.record(
                "serve_batch",
                planner=planner,
                batch=n_batches - 1,
                n=len(batch),
                n_clients=len({reqs[k].client_id for k in batch}),
                t_start_s=t_start,
                server_s=cursor,
            )
        wall = time.perf_counter() - t0
        done = [o for o in outcomes if o is not None]
        makespan = max(
            (o.arrival_s + o.latency_s for o in done if o.served), default=0.0
        )
        store = getattr(self.engine.env, "shard_store", None)
        report = ServiceReport(
            outcomes=tuple(done),
            planner=planner,
            n_batches=n_batches,
            wall_seconds=wall,
            makespan_s=makespan,
            shard=store.stats_dict() if store is not None else None,
        )
        if self.engine.ledger is not None:
            for o in report.outcomes:
                self.engine.record("outcome", **o.to_record())
            if self.engine.semantic_cache is not None:
                self.engine.record(
                    "semcache",
                    dataset=self.engine.dataset.name,
                    **self.engine.semantic_cache.stats_dict(),
                )
            self.engine.record("serve", **report.summary())
        return report

    # ------------------------------------------------------------------
    def _replay_batch(
        self,
        batch_reqs: List[QueryRequest],
        states: Dict[int, _ClientState],
        server_sim: CacheSim,
    ):
        """Traverse and replay one micro-batch; no plan objects yet.

        One phase computation covers every distinct query in the batch
        (cross-client dedup through the engine's phase cache); one
        :class:`~repro.sim.cache.BatchedLRU` replays every client's private
        D-cache stream plus the single shared server-L1 stream together,
        each warm-seeded from its saved state so every timeline continues
        exactly where the last batch left it.  The environment's own caches
        are never touched; the per-client sims and ``server_sim`` are
        advanced in place.  Returns ``(phases, slots, slot_costs,
        verdicts)`` with one entry per request — the shared front half of
        both the batched (plan-object) and columnar service paths.

        With a shared semantic cache on the engine, phase data comes from
        :func:`~repro.core.semcache.compute_query_phases_semantic` — the
        cache advances sequentially in dispatch order, so outcomes are
        independent of where micro-batch boundaries fall — and ``verdicts``
        carries each request's hit/refine/miss (else all ``""``).
        """
        engine = self.engine
        env = engine.env
        costs = env.dataset.costs
        client_cpu, server_cpu = env.client_cpu, env.server_cpu
        geoms = {
            "client": CacheGeometry.of(client_cpu.dcache, client_cpu.costs),
            "server": CacheGeometry.of(server_cpu.l1, server_cpu.costs),
        }
        if engine.semantic_cache is not None:
            from repro.core.semcache import compute_query_phases_semantic

            phases, verdicts = compute_query_phases_semantic(
                env,
                [r.query for r in batch_reqs],
                engine.semantic_cache,
                engine.phase_cache,
            )
        else:
            phases = compute_query_phases(
                env, [r.query for r in batch_reqs], engine.phase_cache
            )
            verdicts = [""] * len(batch_reqs)
        slots = [
            _query_phase_slots(qp, states[r.client_id].profile.scheme, costs)
            for qp, r in zip(phases, batch_reqs)
        ]
        per_client: Dict[int, List[int]] = {}
        for k, r in enumerate(batch_reqs):
            per_client.setdefault(r.client_id, []).append(k)
        lru = BatchedLRU()
        # One private client stream per client; one shared server stream.
        client_streams: Dict[int, object] = {}
        if client_cpu.use_cache_sim:
            for cid, idxs in per_client.items():
                traces = [
                    trace
                    for k in idxs
                    for side, trace in slots[k]
                    if side == "client"
                ]
                if not traces:
                    continue
                # Defensive copy: BatchedLRU keeps the seed lists it is given.
                seed = [list(ways) for ways in states[cid].sim._sets]
                client_streams[cid] = _make_stream(
                    lru, traces, geoms["client"], seed
                )
        server_stream = None
        if server_cpu.use_cache_sim:
            server_traces = [
                trace
                for s in slots
                for side, trace in s
                if side == "server"
            ]
            if server_traces:
                seed = [list(ways) for ways in server_sim._sets]
                server_stream = _make_stream(
                    lru, server_traces, geoms["server"], seed
                )
        lru.run()
        for stream in client_streams.values():
            stream.finish(lru)
        if server_stream is not None:
            server_stream.finish(lru)
        slot_costs: List[list] = []
        client_seq = {cid: 0 for cid in per_client}
        server_seq = 0
        for k, r in enumerate(batch_reqs):
            cid = r.client_id
            query_costs = []
            for side, trace in slots[k]:
                if side == "client":
                    stream = client_streams.get(cid)
                    if stream is not None:
                        h, m = stream.phase_hm(client_seq[cid])
                        query_costs.append(
                            client_cpu.compute_replayed(trace.counter, h, m)
                        )
                    else:
                        # No cache simulation: the scalar path's fallback
                        # estimate uses only the counts.
                        query_costs.append(client_cpu.compute(trace.counter))
                    client_seq[cid] += 1
                else:
                    if server_stream is not None:
                        h, m = server_stream.phase_hm(server_seq)
                        query_costs.append(
                            server_cpu.compute_replayed(trace.counter, h, m)
                        )
                    else:
                        query_costs.append(server_cpu.compute(trace.counter))
                    server_seq += 1
            slot_costs.append(query_costs)
        for cid, stream in client_streams.items():
            sim = states[cid].sim
            sim._sets = lru.final_sets(stream.handle)
            sim.hits += stream.hits_total
            sim.misses += stream.misses_total
        if server_stream is not None:
            server_sim._sets = lru.final_sets(server_stream.handle)
            server_sim.hits += server_stream.hits_total
            server_sim.misses += server_stream.misses_total
        return phases, slots, slot_costs, verdicts

    def _plan_batch(
        self,
        batch_reqs: List[QueryRequest],
        states: Dict[int, _ClientState],
        server_sim: CacheSim,
    ) -> Tuple[List[QueryPlan], List[str]]:
        """Plan one micro-batch through the batched machinery."""
        phases, slots, slot_costs, verdicts = self._replay_batch(
            batch_reqs, states, server_sim
        )
        costs = self.engine.env.dataset.costs
        plans = [
            _assemble_plan(
                r.query,
                states[r.client_id].profile.scheme,
                phases[k],
                costs,
                slot_costs[k],
            )
            for k, r in enumerate(batch_reqs)
        ]
        return plans, verdicts

    def _serve_columnar(
        self,
        batch_reqs: List[QueryRequest],
        states: Dict[int, _ClientState],
        server_sim: CacheSim,
    ) -> List[Tuple[float, Tuple[int, ...], int, RunResult, str]]:
        """Serve one micro-batch through the fused columnar compile/price.

        Same replay as :meth:`_plan_batch`, but each query compiles
        straight from its slot costs (:func:`~repro.core.colplan.compile_slots`)
        and the batch prices per policy group through
        :func:`~repro.core.colplan.price_compiled` — no
        :class:`~repro.core.executor.QueryPlan` objects exist.  Returns one
        ``(server_cycles, answer_ids, n_results, result, semcache)`` tuple
        per request, bit-identical to the batched path's.
        """
        from repro.core.colplan import compile_slots, price_compiled

        phases, slots, slot_costs, verdicts = self._replay_batch(
            batch_reqs, states, server_sim
        )
        env = self.engine.env
        compiled = []
        server_cycles = []
        for k, r in enumerate(batch_reqs):
            prof = states[r.client_id].profile
            compiled.append(
                compile_slots(
                    phases[k],
                    prof.scheme,
                    slot_costs[k],
                    env,
                    prof.policy.network,
                )
            )
            server_cycles.append(
                sum(
                    cost.cycles
                    for (side, _), cost in zip(slots[k], slot_costs[k])
                    if side == "server"
                )
            )
        groups: Dict[object, List[int]] = {}
        for k, r in enumerate(batch_reqs):
            groups.setdefault(states[r.client_id].profile.policy, []).append(k)
        results: List[Optional[RunResult]] = [None] * len(batch_reqs)
        for policy, idxs in groups.items():
            grid = price_compiled(
                [compiled[k] for k in idxs], [policy], env, policy.network
            )
            for row, k in enumerate(idxs):
                results[k] = grid.result(row, 0)
        return [
            (
                server_cycles[k],
                tuple(int(a) for a in compiled[k].answer_ids),
                compiled[k].n_results,
                results[k],
                verdicts[k],
            )
            for k in range(len(batch_reqs))
        ]

    def _price_batch(
        self,
        batch_reqs: List[QueryRequest],
        plans: List[QueryPlan],
        states: Dict[int, _ClientState],
    ) -> List[RunResult]:
        """Price one micro-batch: one vectorized grid call per distinct policy.

        Policies are hashable, so the batch's plans group by policy and each
        group prices in one call — every cell computed is a cell used
        (pricing the full plans x policies grid would waste a factor of the
        policy count).
        """
        groups: Dict[object, List[int]] = {}
        for k, r in enumerate(batch_reqs):
            groups.setdefault(states[r.client_id].profile.policy, []).append(k)
        results: List[Optional[RunResult]] = [None] * len(plans)
        for policy, idxs in groups.items():
            grid = self.engine.price_grid([plans[k] for k in idxs], [policy])
            for row, k in enumerate(idxs):
                results[k] = grid.result(row, 0)
        return results  # type: ignore[return-value]

    def _serve_serial(
        self,
        batch_reqs: List[QueryRequest],
        states: Dict[int, _ClientState],
        server_sim: CacheSim,
    ) -> Tuple[List[QueryPlan], List[RunResult], List[str]]:
        """The per-query scalar reference: swap in each query's caches.

        With a shared semantic cache the scalar walk goes through
        :func:`~repro.core.semcache.plan_one_semantic` — the same cache
        instance, advanced one query at a time, which is exactly the
        sequential semantics the batched path reproduces.
        """
        engine = self.engine
        env = engine.env
        client, server = env.client_cpu, env.server_cpu
        saved = (client.dcache, server.l1)
        plans: List[QueryPlan] = []
        results: List[RunResult] = []
        verdicts: List[str] = []
        try:
            server.l1 = server_sim
            for r in batch_reqs:
                st = states[r.client_id]
                client.dcache = st.sim
                if engine.semantic_cache is not None:
                    from repro.core.semcache import plan_one_semantic

                    plan, verdict = plan_one_semantic(
                        r.query, st.profile.scheme, env, engine.semantic_cache
                    )
                else:
                    plan = plan_query(r.query, st.profile.scheme, env)
                    verdict = ""
                plans.append(plan)
                verdicts.append(verdict)
                results.append(price_plan(plan, env, st.profile.policy))
        finally:
            client.dcache, server.l1 = saved
        return plans, results, verdicts
