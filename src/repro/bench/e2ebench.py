"""End-to-end workload→RunTable benchmark: fused columnar vs the object paths.

Where :mod:`repro.bench.planbench` times *planning* alone, this measures the
whole pipeline a caller actually pays for — :meth:`repro.api.Session.run`
from a raw workload to a finished :class:`~repro.api.RunTable` — under three
engine/planner pairings:

``scalar``
    ``planner="scalar", engine="scalar"`` — the per-query reference: one
    :func:`~repro.core.executor.plan_query` walk and one
    :func:`~repro.core.executor.price_plan` call per (query, scheme, policy).
``batched``
    ``planner="batched", engine="batched"`` — batched traversal into plan
    objects, then the vectorized grid pricer.
``columnar``
    ``planner="columnar", engine="batched"`` — the fused
    :func:`~repro.core.colplan.plan_and_price_columnar` pass (no plan
    objects at all).

Methodology matches planbench: every side runs once untimed (page-fault
warm-up is not engine work) and that warm-up pass doubles as the parity
check — columnar must match batched **bit for bit** and the scalar
reference to ``rel_tol``; then ``repeats`` timed rounds interleaved in one
process, minimum per side.  Each timed round constructs a fresh
:class:`~repro.api.Session` (fresh plan/phase/compile caches) so no side
amortizes another's warm state; the environment itself is shared because
``Session.run`` resets the cache sims per workload.

One measurement routine shared by ``repro planbench --planner columnar``,
the ``benchmarks/test_e2e_speedup.py`` gate (which archives
``BENCH_e2e.json``) and the CI bench-smoke step.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.api import RunTable, Session
from repro.core.executor import Environment, Policy
from repro.core.queries import Query
from repro.core.schemes import SchemeConfig

__all__ = [
    "E2E_SIDES",
    "measure_e2e_speedup",
    "measure_e2e_speedup_kinds",
    "render_e2e_speedup",
    "render_e2e_speedup_kinds",
    "run_table_once",
    "tables_match",
]

#: Side name -> the (planner, engine) pair :meth:`Session.run` gets.
E2E_SIDES: Dict[str, Tuple[str, str]] = {
    "scalar": ("scalar", "scalar"),
    "batched": ("batched", "batched"),
    "columnar": ("columnar", "batched"),
}


def run_table_once(
    env: Environment,
    queries: Sequence[Query],
    configs: Sequence[SchemeConfig],
    policies: Sequence[Policy],
    *,
    planner: str = "batched",
    engine: str = "batched",
) -> Tuple[RunTable, float]:
    """One cold workload→RunTable pass; returns ``(table, seconds)``.

    A fresh :class:`Session` per call means fresh plan/phase/compile
    caches — the measurement is the full cost a new session pays, not an
    incremental re-price.
    """
    session = Session(env)
    t0 = time.perf_counter()
    table = session.run(
        list(queries),
        schemes=list(configs),
        policies=list(policies),
        engine=engine,
        planner=planner,
    )
    return table, time.perf_counter() - t0


def _max_rel(a, b) -> float:
    """Worst relative difference across a value tree.

    Recurses through dataclasses, tuples/lists and numpy arrays; floats
    contribute ``|a-b| / max(|a|,|b|)``; discrete leaves (ints, strings,
    bools, int arrays) must match exactly and contribute ``inf`` when they
    do not, so one bad verdict can never average away.
    """
    if a is None or b is None:
        return 0.0 if a is b else float("inf")
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a, b = np.asarray(a), np.asarray(b)
        if a.shape != b.shape:
            return float("inf")
        if np.issubdtype(a.dtype, np.floating) or np.issubdtype(
            b.dtype, np.floating
        ):
            denom = np.maximum(np.abs(a), np.abs(b))
            diff = np.abs(a.astype(np.float64) - b.astype(np.float64))
            with np.errstate(invalid="ignore", divide="ignore"):
                rel = np.where(denom > 0.0, diff / denom, diff)
            return float(rel.max()) if rel.size else 0.0
        return 0.0 if np.array_equal(a, b) else float("inf")
    if isinstance(a, bool) or isinstance(b, bool):
        return 0.0 if a == b else float("inf")
    if isinstance(a, float) or isinstance(b, float):
        if a == b:
            return 0.0
        denom = max(abs(a), abs(b))
        return abs(a - b) / denom if denom > 0.0 else float("inf")
    if isinstance(a, (int, str)):
        return 0.0 if a == b else float("inf")
    if dataclasses.is_dataclass(a):
        if type(a) is not type(b):
            return float("inf")
        return max(
            (
                _max_rel(getattr(a, f.name), getattr(b, f.name))
                for f in dataclasses.fields(a)
            ),
            default=0.0,
        )
    if isinstance(a, (tuple, list)):
        if not isinstance(b, (tuple, list)) or len(a) != len(b):
            return float("inf")
        return max((_max_rel(x, y) for x, y in zip(a, b)), default=0.0)
    return 0.0 if a == b else float("inf")


def tables_match(
    table: RunTable, oracle: RunTable, *, rel_tol: float = 0.0
) -> Tuple[bool, float]:
    """Compare two RunTables row for row; returns ``(ok, max_rel_err)``.

    Rows must line up by (scheme, policy); every numeric field of each
    row's :class:`~repro.core.executor.RunResult` must agree to
    ``rel_tol`` relative error (``0.0`` = bit-identical) and every
    discrete field (answer ids, op tallies, message shapes) exactly.
    NIC dwell is compared only when both sides carry one — the scalar
    engine reports none.
    """
    if len(table.rows) != len(oracle.rows):
        return False, float("inf")
    worst = 0.0
    for a, b in zip(table.rows, oracle.rows):
        if a.scheme != b.scheme or a.policy != b.policy:
            return False, float("inf")
        worst = max(worst, _max_rel(a.result, b.result))
        if a.dwell is not None and b.dwell is not None:
            worst = max(worst, _max_rel(a.dwell, b.dwell))
    return worst <= rel_tol, worst


def measure_e2e_speedup(
    env: Environment,
    queries: Sequence[Query],
    configs: Sequence[SchemeConfig],
    policies: Optional[Sequence[Policy]] = None,
    *,
    repeats: int = 3,
    rel_tol: float = 1e-9,
) -> Dict[str, object]:
    """Time scalar vs batched vs columnar end-to-end on one workload.

    Returns the ``BENCH_e2e.json`` payload::

        {"benchmark": "e2e_speedup", "dataset": ..., "n_queries": ...,
         "n_configs": ..., "n_policies": ..., "repeats": ..., "rel_tol": ...,
         "scalar_seconds": ..., "batched_seconds": ..., "columnar_seconds": ...,
         "columnar_vs_scalar": ..., "batched_vs_scalar": ...,
         "columnar_vs_batched": ...,
         "tables_match": <all parity checks passed>,
         "columnar_exact_vs_batched": ..., "max_rel_err_vs_scalar": ...}

    Parity is established on the warm-up pass: columnar vs batched must be
    bit-identical, columnar vs the scalar reference within ``rel_tol``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    queries = list(queries)
    configs = list(configs)
    policies = list(policies) if policies is not None else Policy.sweep()

    # Warm-up (untimed) + the differential checks.
    tables = {
        side: run_table_once(
            env, queries, configs, policies, planner=planner, engine=engine
        )[0]
        for side, (planner, engine) in E2E_SIDES.items()
    }
    exact_ok, _ = tables_match(tables["columnar"], tables["batched"])
    scalar_ok, scalar_err = tables_match(
        tables["columnar"], tables["scalar"], rel_tol=rel_tol
    )

    seconds = {side: float("inf") for side in E2E_SIDES}
    for _ in range(repeats):
        for side, (planner, engine) in E2E_SIDES.items():
            _, s = run_table_once(
                env, queries, configs, policies, planner=planner, engine=engine
            )
            seconds[side] = min(seconds[side], s)

    def ratio(num: float, den: float) -> float:
        return num / den if den > 0 else float("inf")

    return {
        "benchmark": "e2e_speedup",
        "dataset": env.dataset.name,
        "n_queries": len(queries),
        "n_configs": len(configs),
        "n_policies": len(policies),
        "repeats": repeats,
        "rel_tol": rel_tol,
        "scalar_seconds": seconds["scalar"],
        "batched_seconds": seconds["batched"],
        "columnar_seconds": seconds["columnar"],
        "columnar_vs_scalar": ratio(seconds["scalar"], seconds["columnar"]),
        "batched_vs_scalar": ratio(seconds["scalar"], seconds["batched"]),
        "columnar_vs_batched": ratio(seconds["batched"], seconds["columnar"]),
        "tables_match": bool(exact_ok and scalar_ok),
        "columnar_exact_vs_batched": bool(exact_ok),
        "max_rel_err_vs_scalar": scalar_err,
    }


def measure_e2e_speedup_kinds(
    env: Environment,
    kinds: Sequence[str],
    *,
    runs: int = 100,
    repeats: int = 3,
    rel_tol: float = 1e-9,
) -> Dict[str, object]:
    """Per-kind end-to-end timing, one :func:`measure_e2e_speedup` per kind.

    Each kind gets the same paper workload and scheme grid the per-kind
    planbench uses (:func:`repro.bench.planbench._kind_workload`), priced
    over the standard bandwidth sweep.  Returns::

        {"benchmark": "e2e_speedup_kinds", "dataset": ..., "runs": ...,
         "repeats": ..., "kinds": {"range": {<measure_e2e_speedup row>}, ...},
         "tables_match": <all kinds>, "min_speedup": <worst columnar_vs_scalar>}
    """
    from repro.bench.planbench import _kind_workload

    kinds = list(kinds)
    if not kinds:
        raise ValueError("kinds must name at least one query kind")
    rows: Dict[str, Dict[str, object]] = {}
    for kind in kinds:
        queries, configs = _kind_workload(env, kind, runs)
        rows[kind] = measure_e2e_speedup(
            env, queries, configs, repeats=repeats, rel_tol=rel_tol
        )
    return {
        "benchmark": "e2e_speedup_kinds",
        "dataset": env.dataset.name,
        "runs": runs,
        "repeats": repeats,
        "kinds": rows,
        "tables_match": all(r["tables_match"] for r in rows.values()),
        "min_speedup": min(r["columnar_vs_scalar"] for r in rows.values()),
    }


def render_e2e_speedup(record: Dict[str, object]) -> str:
    """One human-readable block for a :func:`measure_e2e_speedup` record."""
    lines = [
        "e2e_speedup: workload -> RunTable, fused columnar vs object paths",
        f"  dataset      : {record['dataset']}"
        f"  ({record['n_queries']} queries x {record['n_configs']} configs"
        f" x {record['n_policies']} policies, min of {record['repeats']})",
        f"  scalar       : {record['scalar_seconds']:.3f} s",
        f"  batched      : {record['batched_seconds']:.3f} s"
        f"  ({record['batched_vs_scalar']:.2f}x)",
        f"  columnar     : {record['columnar_seconds']:.3f} s"
        f"  ({record['columnar_vs_scalar']:.2f}x scalar,"
        f" {record['columnar_vs_batched']:.2f}x batched)",
        f"  tables match : {record['tables_match']}"
        f"  (exact vs batched: {record['columnar_exact_vs_batched']},"
        f" worst rel err vs scalar: {record['max_rel_err_vs_scalar']:.2e})",
    ]
    return "\n".join(lines)


def render_e2e_speedup_kinds(record: Dict[str, object]) -> str:
    """Per-kind table for a :func:`measure_e2e_speedup_kinds` record."""
    lines = [
        "e2e_speedup_kinds: workload -> RunTable per query kind",
        f"  dataset : {record['dataset']}"
        f"  ({record['runs']} queries/kind, min of {record['repeats']})",
        "  kind   scalar_s  columnar_s  vs_scalar  vs_batched  tables_match",
    ]
    for kind, row in record["kinds"].items():
        lines.append(
            f"  {kind:<6} {row['scalar_seconds']:>8.3f} "
            f"{row['columnar_seconds']:>11.3f} "
            f"{row['columnar_vs_scalar']:>8.2f}x "
            f"{row['columnar_vs_batched']:>10.2f}x  {row['tables_match']}"
        )
    return "\n".join(lines)
