"""Provenance stamps for benchmark artifacts.

Every ``BENCH_*.json`` carries a ``provenance`` block — git SHA, UTC
timestamp, platform, Python and NumPy versions — so the perf trajectory
archived under ``benchmarks/results/`` stays attributable across PRs: a
regression (or a suspicious speedup) can be pinned to the commit and the
machine that produced the number.
"""

from __future__ import annotations

import datetime
import platform
import subprocess
from typing import Dict

import numpy as np

__all__ = ["provenance", "stamp_record"]


def _git_sha() -> str:
    """The repository HEAD SHA, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def provenance() -> Dict[str, str]:
    """Provenance fields for a benchmark record, computed at call time."""
    return {
        "git_sha": _git_sha(),
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def stamp_record(record: Dict[str, object]) -> Dict[str, object]:
    """Return ``record`` with a ``provenance`` block added (not in place).

    An existing ``provenance`` key is preserved — re-stamping a loaded
    record must not overwrite where the numbers actually came from.
    """
    if "provenance" in record:
        return dict(record)
    out = dict(record)
    out["provenance"] = provenance()
    return out
