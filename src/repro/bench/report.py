"""Text rendering of the figure data as paper-shaped tables.

The paper's figures are stacked bar charts (energy) and (cycles) per scheme
per bandwidth; these renderers print the same series as aligned text tables
— one row per scheme, one column per bandwidth, with the per-bucket
breakdown — so the benchmark output can be read directly against the paper
and archived in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Union

from repro.api import SweepCell
from repro.bench.figures import Fig10Row, LossCell
from repro.core.gridrun import read_ledger

__all__ = [
    "render_sweep",
    "render_loss_sweep",
    "render_fig10",
    "render_rows",
    "ascii_chart",
    "summarize_ledger",
]


def ascii_chart(
    series: Dict[str, List[tuple]],
    width: int = 68,
    height: int = 14,
    title: str = "",
    y_label: str = "",
) -> str:
    """Plot ``{name: [(x, y), ...]}`` as an ASCII scatter/line chart.

    No plotting backend is available offline, and the paper's figures are
    easiest to compare as curves: this renders each series with its own
    glyph on a shared linear grid, with axis ranges in the footer.  Used by
    the figure benches so the archived reports show the crossovers at a
    glance.
    """
    if not series or all(not pts for pts in series.values()):
        return f"{title}\n(empty chart)"
    glyphs = "ox+*#@%&"
    all_pts = [p for pts in series.values() for p in pts]
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, pts), glyph in zip(series.items(), glyphs):
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(
        f" x: {x_lo:g}..{x_hi:g}   y: {y_lo:.3g}..{y_hi:.3g}"
        + (f" ({y_label})" if y_label else "")
    )
    legend = "   ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), glyphs)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def _fmt_energy(cell: SweepCell) -> str:
    e = cell.result.energy
    return (
        f"{e.total():8.3f} (p{e.processor:7.3f} t{e.nic_tx:7.3f} "
        f"r{e.nic_rx:7.3f} i{e.nic_idle:6.3f})"
    )


def _fmt_cycles(cell: SweepCell) -> str:
    c = cell.result.cycles
    return (
        f"{c.total():9.3e} (p{c.processor:8.2e} t{c.nic_tx:8.2e} "
        f"r{c.nic_rx:8.2e} w{c.wait:7.1e})"
    )


def render_sweep(
    sweep: Dict[str, List[SweepCell]],
    title: str,
    metric: str = "both",
) -> str:
    """Render a schemes x bandwidths sweep as a text table.

    ``metric`` is ``"energy"``, ``"cycles"`` or ``"both"``.  Buckets are
    abbreviated p(rocessor) / t(x) / r(x) / i(dle) / w(ait).
    """
    if metric not in ("energy", "cycles", "both"):
        raise ValueError(f"unknown metric {metric!r}")
    lines = [f"== {title} =="]
    first = next(iter(sweep.values()))
    header_meta = first[0].result
    lines.append(
        f"   workload: {header_meta.n_candidates} filter candidates, "
        f"{header_meta.n_results} results in total"
    )
    for label, cells in sweep.items():
        lines.append(f"-- {label}")
        for cell in cells:
            parts = [f"   {cell.bandwidth_mbps:5.1f} Mbps"]
            if metric in ("energy", "both"):
                parts.append(f"E[J] {_fmt_energy(cell)}")
            if metric in ("cycles", "both"):
                parts.append(f"cyc {_fmt_cycles(cell)}")
            lines.append("  ".join(parts))
    return "\n".join(lines)


def render_loss_sweep(
    sweep: Dict[str, List[LossCell]],
    title: str,
) -> str:
    """Render a schemes x loss-rates sweep with the retransmission ledger.

    One row per loss rate: total energy and cycles, then the loss ledger —
    retransmitted frames per direction and backoff dwell — so the cost of
    the degrading link is visible next to what it did to the totals.
    """
    lines = [f"== {title} =="]
    first = next(iter(sweep.values()))
    lines.append(
        f"   fixed {first[0].bandwidth_mbps:g} Mbps, "
        f"{first[0].distance_m:g} m; loss rate sweeps down the rows"
    )
    for label, cells in sweep.items():
        lines.append(f"-- {label}")
        for cell in cells:
            loss = cell.result.loss
            lines.append(
                f"   p={cell.loss_rate:5.3f}  E[J] {cell.energy_j:8.3f}  "
                f"cyc {cell.cycles:9.3e}  "
                f"retx tx={loss.retx_tx_frames:7.2f} "
                f"rx={loss.retx_rx_frames:7.2f}  "
                f"backoff={loss.backoff_s:7.3f}s"
            )
    return "\n".join(lines)


def render_fig10(rows: Iterable[Fig10Row], title: str) -> str:
    """Render the Figure 10 proximity curves, marking energy crossovers."""
    lines = [f"== {title} =="]
    rows = list(rows)
    for budget in sorted({r.buffer_bytes for r in rows}):
        lines.append(f"-- buffer {budget // (1 << 20)} MB")
        crossed = False
        for r in (r for r in rows if r.buffer_bytes == budget):
            marker = ""
            if not crossed and r.client_energy_j < r.server_energy_j:
                marker = "  <- client becomes energy-efficient"
                crossed = True
            lines.append(
                f"   y={r.y:4d}  client E={r.client_energy_j:7.4f} J "
                f"cyc={r.client_cycles:10.3e} | server "
                f"E={r.server_energy_j:7.4f} J cyc={r.server_cycles:10.3e} "
                f"| hits={r.local_hits} misses={r.misses}{marker}"
            )
    return "\n".join(lines)


def summarize_ledger(source: Union[str, List[dict]]) -> str:
    """Summarize a run-ledger: phase timings, cache rates, NIC dwell.

    ``source`` is a ledger file path or an in-memory record list
    (:attr:`repro.core.gridrun.RunLedger.records`).  The summary folds the
    event stream back into the quantities the ISSUE's observability layer
    promises: per-phase op counts and wall-clock, plan-cache hit rates,
    per-engine pricing throughput, per-NIC-state joules/seconds, and any
    recorded speedups.
    """
    records = read_ledger(source) if isinstance(source, str) else list(source)
    lines = ["== run-ledger summary =="]
    if not records:
        lines.append("(empty ledger)")
        return "\n".join(lines)

    counts: Dict[str, int] = {}
    for rec in records:
        counts[rec.get("event", "?")] = counts.get(rec.get("event", "?"), 0) + 1
    lines.append(
        "events  : "
        + "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    )

    plans = [r for r in records if r.get("event") == "plan"]
    if plans:
        total_s = sum(r.get("seconds", 0.0) for r in plans)
        queries = sum(r.get("n_queries", 0) for r in plans)
        last = plans[-1]
        lines.append(
            f"plan    : {len(plans)} workloads, {queries} queries, "
            f"{total_s:.3f} s; cache hit rate "
            f"{last.get('cache_hit_rate', 0.0):.0%} "
            f"({last.get('cache_hits', 0)} hits / "
            f"{last.get('cache_misses', 0)} misses)"
        )
        sharded = [r for r in plans if r.get("shards_total")]
        if sharded:
            # Per-event rate averaged, not summed: one planning call emits
            # one event per scheme carrying the same counter window.
            rate = sum(
                r["shards_pruned"] / r["shards_total"] for r in sharded
            ) / len(sharded)
            last = sharded[-1]
            lines.append(
                f"shards  : {rate:.0%} pruned at plan time "
                f"(avg over {len(sharded)} plan events; last: "
                f"{last['shards_pruned']}/{last['shards_total']} pruned, "
                f"{last.get('shards_resident', 0)} resident, "
                f"{last.get('shard_loads', 0)} loads, "
                f"{last.get('shard_evictions', 0)} evictions)"
            )

    prices = [r for r in records if r.get("event") == "price"]
    for engine in sorted({r.get("engine", "?") for r in prices}):
        rows = [r for r in prices if r.get("engine") == engine]
        cells = sum(r.get("n_plans", 0) * r.get("n_policies", 0) for r in rows)
        total_s = sum(r.get("seconds", 0.0) for r in rows)
        rate = f"{cells / total_s:,.0f} cells/s" if total_s > 0 else "-"
        lines.append(
            f"price   : [{engine}] {len(rows)} grids, {cells} cells, "
            f"{total_s:.3f} s ({rate})"
        )

    runs = [r for r in records if r.get("event") == "run"]
    if runs:
        total_e = sum(
            sum(r.get("energy_j", {}).values()) for r in runs
        )
        lines.append(
            f"run     : {len(runs)} (scheme, policy) cells, "
            f"{total_e:.3f} J total client energy"
        )
        dwell: Dict[str, float] = {}
        exits = 0
        for r in runs:
            nic = r.get("nic")
            if not nic:
                continue
            for k, v in nic.items():
                if k == "sleep_exits":
                    exits += int(v)
                else:
                    dwell[k] = dwell.get(k, 0.0) + v
        if dwell:
            secs = " ".join(
                f"{s.split('_')[0]}={dwell.get(s, 0.0):.3f}s"
                for s in ("transmit_s", "receive_s", "idle_s", "sleep_s")
            )
            joules = " ".join(
                f"{s.split('_')[0]}={dwell.get(s, 0.0):.3f}J"
                for s in ("transmit_j", "receive_j", "idle_j", "sleep_j")
            )
            lines.append(f"nic     : {secs}")
            lines.append(f"          {joules}  sleep_exits={exits}")

    for r in records:
        if r.get("event") == "speedup":
            lines.append(
                f"speedup : {r.get('label', '?')} batched "
                f"{r.get('batched_s', 0.0):.3f} s vs scalar "
                f"{r.get('scalar_s', 0.0):.3f} s -> "
                f"{r.get('speedup', 0.0):.1f}x"
            )
        elif r.get("event") in ("bench", "note"):
            detail = {
                k: v for k, v in r.items() if k not in ("event", "t")
            }
            lines.append(f"{r['event']:8s}: {detail}")
    return "\n".join(lines)


def render_rows(rows: Iterable[dict], title: str) -> str:
    """Render a list of homogeneous dict rows as an aligned table."""
    rows = list(rows)
    if not rows:
        return f"== {title} ==\n(empty)"
    cols = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r[c])) for r in rows)) for c in cols
    }
    lines = [f"== {title} =="]
    lines.append("  ".join(str(c).ljust(widths[c]) for c in cols))
    for r in rows:
        lines.append("  ".join(str(r[c]).ljust(widths[c]) for c in cols))
    return "\n".join(lines)
