"""Text rendering of the figure data as paper-shaped tables.

The paper's figures are stacked bar charts (energy) and (cycles) per scheme
per bandwidth; these renderers print the same series as aligned text tables
— one row per scheme, one column per bandwidth, with the per-bucket
breakdown — so the benchmark output can be read directly against the paper
and archived in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.bench.figures import Fig10Row
from repro.core.experiment import SweepCell

__all__ = ["render_sweep", "render_fig10", "render_rows", "ascii_chart"]


def ascii_chart(
    series: Dict[str, List[tuple]],
    width: int = 68,
    height: int = 14,
    title: str = "",
    y_label: str = "",
) -> str:
    """Plot ``{name: [(x, y), ...]}`` as an ASCII scatter/line chart.

    No plotting backend is available offline, and the paper's figures are
    easiest to compare as curves: this renders each series with its own
    glyph on a shared linear grid, with axis ranges in the footer.  Used by
    the figure benches so the archived reports show the crossovers at a
    glance.
    """
    if not series or all(not pts for pts in series.values()):
        return f"{title}\n(empty chart)"
    glyphs = "ox+*#@%&"
    all_pts = [p for pts in series.values() for p in pts]
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, pts), glyph in zip(series.items(), glyphs):
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(
        f" x: {x_lo:g}..{x_hi:g}   y: {y_lo:.3g}..{y_hi:.3g}"
        + (f" ({y_label})" if y_label else "")
    )
    legend = "   ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), glyphs)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def _fmt_energy(cell: SweepCell) -> str:
    e = cell.result.energy
    return (
        f"{e.total():8.3f} (p{e.processor:7.3f} t{e.nic_tx:7.3f} "
        f"r{e.nic_rx:7.3f} i{e.nic_idle:6.3f})"
    )


def _fmt_cycles(cell: SweepCell) -> str:
    c = cell.result.cycles
    return (
        f"{c.total():9.3e} (p{c.processor:8.2e} t{c.nic_tx:8.2e} "
        f"r{c.nic_rx:8.2e} w{c.wait:7.1e})"
    )


def render_sweep(
    sweep: Dict[str, List[SweepCell]],
    title: str,
    metric: str = "both",
) -> str:
    """Render a schemes x bandwidths sweep as a text table.

    ``metric`` is ``"energy"``, ``"cycles"`` or ``"both"``.  Buckets are
    abbreviated p(rocessor) / t(x) / r(x) / i(dle) / w(ait).
    """
    if metric not in ("energy", "cycles", "both"):
        raise ValueError(f"unknown metric {metric!r}")
    lines = [f"== {title} =="]
    first = next(iter(sweep.values()))
    header_meta = first[0].result
    lines.append(
        f"   workload: {header_meta.n_candidates} filter candidates, "
        f"{header_meta.n_results} results in total"
    )
    for label, cells in sweep.items():
        lines.append(f"-- {label}")
        for cell in cells:
            parts = [f"   {cell.bandwidth_mbps:5.1f} Mbps"]
            if metric in ("energy", "both"):
                parts.append(f"E[J] {_fmt_energy(cell)}")
            if metric in ("cycles", "both"):
                parts.append(f"cyc {_fmt_cycles(cell)}")
            lines.append("  ".join(parts))
    return "\n".join(lines)


def render_fig10(rows: Iterable[Fig10Row], title: str) -> str:
    """Render the Figure 10 proximity curves, marking energy crossovers."""
    lines = [f"== {title} =="]
    rows = list(rows)
    for budget in sorted({r.buffer_bytes for r in rows}):
        lines.append(f"-- buffer {budget // (1 << 20)} MB")
        crossed = False
        for r in (r for r in rows if r.buffer_bytes == budget):
            marker = ""
            if not crossed and r.client_energy_j < r.server_energy_j:
                marker = "  <- client becomes energy-efficient"
                crossed = True
            lines.append(
                f"   y={r.y:4d}  client E={r.client_energy_j:7.4f} J "
                f"cyc={r.client_cycles:10.3e} | server "
                f"E={r.server_energy_j:7.4f} J cyc={r.server_cycles:10.3e} "
                f"| hits={r.local_hits} misses={r.misses}{marker}"
            )
    return "\n".join(lines)


def render_rows(rows: Iterable[dict], title: str) -> str:
    """Render a list of homogeneous dict rows as an aligned table."""
    rows = list(rows)
    if not rows:
        return f"== {title} ==\n(empty)"
    cols = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(str(r[c])) for r in rows)) for c in cols
    }
    lines = [f"== {title} =="]
    lines.append("  ".join(str(c).ljust(widths[c]) for c in cols))
    for r in rows:
        lines.append("  ".join(str(r[c]).ljust(widths[c]) for c in cols))
    return "\n".join(lines)
