"""Planning-speed benchmark: batched multi-query planner vs the scalar walk.

One measurement routine shared by the ``repro planbench`` CLI command, the
``benchmarks/test_plan_speedup.py`` gate and the CI bench-smoke step, so all
three report the same methodology:

* both planners run once untimed first (the first large-allocation pass pays
  page-fault warm-up that is not planner work);
* then ``repeats`` timed rounds, scalar and batched interleaved in the same
  process, taking the **minimum** per planner (the standard noise-robust
  statistic for a deterministic workload);
* the batched plans are checked bit-for-bit against the scalar plans with
  :func:`repro.core.batchplan.plans_equal` before any timing is reported.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from repro.core.batchplan import plan_workload_batched, plans_equal
from repro.core.executor import Environment, QueryPlan, plan_query
from repro.core.queries import Query
from repro.core.schemes import SchemeConfig

__all__ = ["measure_plan_speedup", "render_plan_speedup"]


def measure_plan_speedup(
    env: Environment,
    queries: Sequence[Query],
    configs: Sequence[SchemeConfig],
    *,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time scalar vs batched planning of ``queries`` x ``configs``.

    Returns a machine-readable record (the ``BENCH_plan.json`` payload)::

        {"benchmark": "plan_speedup", "dataset": ..., "n_queries": ...,
         "n_configs": ..., "repeats": ..., "scalar_seconds": ...,
         "batched_seconds": ..., "speedup": ..., "plans_equal": ...}

    ``plans_equal`` is verified on the warm-up pass; the timed rounds replan
    from scratch each time (``reset_caches=True`` semantics on both sides).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    queries = list(queries)
    configs = list(configs)

    def scalar_once() -> List[List[QueryPlan]]:
        grid: List[List[QueryPlan]] = []
        for cfg in configs:
            env.reset_caches()
            grid.append([plan_query(q, cfg, env) for q in queries])
        return grid

    def batched_once() -> List[List[QueryPlan]]:
        return plan_workload_batched(env, queries, configs)

    # Warm-up (untimed) + the differential check.
    scalar_grid = scalar_once()
    batched_grid = batched_once()
    equal = all(
        plans_equal(b, s) for b, s in zip(batched_grid, scalar_grid)
    )

    scalar_s = float("inf")
    batched_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        scalar_once()
        scalar_s = min(scalar_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        batched_once()
        batched_s = min(batched_s, time.perf_counter() - t0)

    return {
        "benchmark": "plan_speedup",
        "dataset": env.dataset.name,
        "n_queries": len(queries),
        "n_configs": len(configs),
        "repeats": repeats,
        "scalar_seconds": scalar_s,
        "batched_seconds": batched_s,
        "speedup": scalar_s / batched_s if batched_s > 0 else float("inf"),
        "plans_equal": equal,
    }


def render_plan_speedup(record: Dict[str, object]) -> str:
    """One human-readable block for a :func:`measure_plan_speedup` record."""
    lines = [
        "plan_speedup: batched multi-query planner vs scalar plan_query loop",
        f"  dataset      : {record['dataset']}"
        f"  ({record['n_queries']} queries x {record['n_configs']} configs,"
        f" min of {record['repeats']})",
        f"  scalar       : {record['scalar_seconds']:.3f} s",
        f"  batched      : {record['batched_seconds']:.3f} s",
        f"  speedup      : {record['speedup']:.2f}x",
        f"  plans equal  : {record['plans_equal']}",
    ]
    return "\n".join(lines)
