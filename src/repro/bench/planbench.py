"""Planning-speed benchmark: batched multi-query planner vs the scalar walk.

One measurement routine shared by the ``repro planbench`` CLI command, the
``benchmarks/test_plan_speedup.py`` gate and the CI bench-smoke step, so all
three report the same methodology:

* both planners run once untimed first (the first large-allocation pass pays
  page-fault warm-up that is not planner work);
* then ``repeats`` timed rounds, scalar and batched interleaved in the same
  process, taking the **minimum** per planner (the standard noise-robust
  statistic for a deterministic workload);
* the batched plans are checked bit-for-bit against the scalar plans with
  :func:`repro.core.batchplan.plans_equal` before any timing is reported.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from repro.core.batchplan import plan_workload_batched, plans_equal
from repro.core.executor import Environment, QueryPlan, plan_query
from repro.core.queries import Query
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig

__all__ = [
    "NN_CONFIGS",
    "PLAN_KINDS",
    "measure_plan_speedup",
    "measure_plan_speedup_kinds",
    "render_plan_speedup",
    "render_plan_speedup_kinds",
]

#: The two schemes NN/k-NN queries admit (no filter/refine split exists for
#: best-first search, so the FILTER_* schemes are rejected by validate_for).
NN_CONFIGS: tuple = (
    SchemeConfig(Scheme.FULLY_CLIENT),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
)

#: Query kinds the per-kind planbench can time (the ``--kinds`` selector).
PLAN_KINDS: tuple = ("point", "range", "nn", "knn")


def measure_plan_speedup(
    env: Environment,
    queries: Sequence[Query],
    configs: Sequence[SchemeConfig],
    *,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time scalar vs batched planning of ``queries`` x ``configs``.

    Returns a machine-readable record (the ``BENCH_plan.json`` payload)::

        {"benchmark": "plan_speedup", "dataset": ..., "n_queries": ...,
         "n_configs": ..., "repeats": ..., "scalar_seconds": ...,
         "batched_seconds": ..., "speedup": ..., "plans_equal": ...}

    ``plans_equal`` is verified on the warm-up pass; the timed rounds replan
    from scratch each time (``reset_caches=True`` semantics on both sides).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    queries = list(queries)
    configs = list(configs)

    def scalar_once() -> List[List[QueryPlan]]:
        grid: List[List[QueryPlan]] = []
        for cfg in configs:
            env.reset_caches()
            grid.append([plan_query(q, cfg, env) for q in queries])
        return grid

    def batched_once() -> List[List[QueryPlan]]:
        return plan_workload_batched(env, queries, configs)

    # Warm-up (untimed) + the differential check.
    scalar_grid = scalar_once()
    batched_grid = batched_once()
    equal = all(
        plans_equal(b, s) for b, s in zip(batched_grid, scalar_grid)
    )

    scalar_s = float("inf")
    batched_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        scalar_once()
        scalar_s = min(scalar_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        batched_once()
        batched_s = min(batched_s, time.perf_counter() - t0)

    return {
        "benchmark": "plan_speedup",
        "dataset": env.dataset.name,
        "n_queries": len(queries),
        "n_configs": len(configs),
        "repeats": repeats,
        "scalar_seconds": scalar_s,
        "batched_seconds": batched_s,
        "speedup": scalar_s / batched_s if batched_s > 0 else float("inf"),
        "plans_equal": equal,
    }


def _kind_workload(env: Environment, kind: str, runs: int):
    """The (queries, configs) pair one ``--kinds`` entry times."""
    from repro.bench.figures import POINT_NN_CONFIGS
    from repro.data.workloads import (
        knn_queries, nn_queries, point_queries, range_queries,
    )

    if kind == "point":
        return point_queries(env.dataset, runs), list(POINT_NN_CONFIGS)
    if kind == "range":
        return range_queries(env.dataset, runs), list(ADEQUATE_MEMORY_CONFIGS)
    if kind == "nn":
        return nn_queries(env.dataset, runs), list(NN_CONFIGS)
    if kind == "knn":
        return knn_queries(env.dataset, runs), list(NN_CONFIGS)
    raise ValueError(f"unknown query kind {kind!r}; expected one of {PLAN_KINDS}")


def measure_plan_speedup_kinds(
    env: Environment,
    kinds: Sequence[str],
    *,
    runs: int = 100,
    repeats: int = 3,
) -> Dict[str, object]:
    """Per-kind scalar-vs-batched timing, one row per query kind.

    Each kind gets its own workload (paper generators) and its own scheme
    grid, measured independently with :func:`measure_plan_speedup`, so a
    regression in one query kind cannot hide behind another's speedup.
    Returns the ``BENCH_nn.json``-style record::

        {"benchmark": "plan_speedup_kinds", "dataset": ..., "runs": ...,
         "repeats": ..., "kinds": {"nn": {<measure_plan_speedup row>}, ...},
         "plans_equal": <all kinds>, "min_speedup": <worst kind>}
    """
    kinds = list(kinds)
    if not kinds:
        raise ValueError("kinds must name at least one query kind")
    rows: Dict[str, Dict[str, object]] = {}
    for kind in kinds:
        queries, configs = _kind_workload(env, kind, runs)
        rows[kind] = measure_plan_speedup(
            env, queries, configs, repeats=repeats
        )
    return {
        "benchmark": "plan_speedup_kinds",
        "dataset": env.dataset.name,
        "runs": runs,
        "repeats": repeats,
        "kinds": rows,
        "plans_equal": all(r["plans_equal"] for r in rows.values()),
        "min_speedup": min(r["speedup"] for r in rows.values()),
    }


def render_plan_speedup(record: Dict[str, object]) -> str:
    """One human-readable block for a :func:`measure_plan_speedup` record."""
    lines = [
        "plan_speedup: batched multi-query planner vs scalar plan_query loop",
        f"  dataset      : {record['dataset']}"
        f"  ({record['n_queries']} queries x {record['n_configs']} configs,"
        f" min of {record['repeats']})",
        f"  scalar       : {record['scalar_seconds']:.3f} s",
        f"  batched      : {record['batched_seconds']:.3f} s",
        f"  speedup      : {record['speedup']:.2f}x",
        f"  plans equal  : {record['plans_equal']}",
    ]
    return "\n".join(lines)


def render_plan_speedup_kinds(record: Dict[str, object]) -> str:
    """Per-kind table for a :func:`measure_plan_speedup_kinds` record."""
    lines = [
        "plan_speedup_kinds: batched planner vs scalar loop, per query kind",
        f"  dataset : {record['dataset']}"
        f"  ({record['runs']} queries/kind, min of {record['repeats']})",
        "  kind   scalar_s  batched_s  speedup  plans_equal",
    ]
    for kind, row in record["kinds"].items():
        lines.append(
            f"  {kind:<6} {row['scalar_seconds']:>8.3f} "
            f"{row['batched_seconds']:>10.3f} "
            f"{row['speedup']:>7.2f}x  {row['plans_equal']}"
        )
    return "\n".join(lines)
