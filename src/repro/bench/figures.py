"""Generators that regenerate each figure of the paper's evaluation.

Every function runs the corresponding experiment — the same workloads, the
same schemes, the same parameter grid as the paper — and returns the sweep
structure (``{scheme label: [SweepCell, ...]}`` or figure-specific rows)
that :mod:`repro.bench.report` renders as the paper-shaped table.

All sweeps route through :class:`repro.api.Session` and its batched grid
pricer: each workload x scheme is planned once (through the session's plan
cache) and every bandwidth is priced in one vectorized pass.  Pass a
``session`` to share plan/compile caches and a run-ledger across figures;
passing a bare environment still works and creates a throwaway session.

The benchmark files under ``benchmarks/`` call these with full-scale
datasets and record wall-clock via pytest-benchmark; EXPERIMENTS.md captures
the printed output against the paper's reported values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

from repro.api import Session, SweepCell
from repro.constants import BANDWIDTHS_MBPS, DEFAULT_CLIENT, MBPS, MHZ
from repro.core.executor import Environment, Policy
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data.model import SegmentDataset
from repro.data.workloads import (
    DEFAULT_RUNS,
    nn_queries,
    point_queries,
    proximity_sequence,
    range_queries,
)
from repro.sim.cpu import ClientCPU

__all__ = [
    "POINT_NN_CONFIGS",
    "fig4_point_queries",
    "fig5_range_queries",
    "fig6_nn_queries",
    "fig8_client_speed",
    "fig9_distance",
    "fig10_insufficient_memory",
    "fig_loss_sweep",
    "Fig10Row",
    "LossCell",
    "LOSS_RATES",
]

#: Configurations shown for point queries in Figure 4: the paper omits the
#: data-present variants because point-query selectivity is so small that
#: they are indistinguishable (section 6.1.1).
POINT_NN_CONFIGS: tuple = (
    SchemeConfig(Scheme.FULLY_CLIENT),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False),
    SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=False),
    SchemeConfig(Scheme.FILTER_SERVER_REFINE_CLIENT, data_at_client=True),
)


def _session(source: Union[Environment, Session]) -> Session:
    """Figures accept a Session (shared caches/ledger) or a bare env."""
    return source if isinstance(source, Session) else Session(source)


def _sweep(
    session: Session,
    queries,
    configs: Sequence[SchemeConfig],
    base_policy: Policy,
    bandwidths_mbps: Sequence[float] = BANDWIDTHS_MBPS,
    planner: str = "batched",
) -> Dict[str, List[SweepCell]]:
    """The evaluation section's standard grid, via the batched engine
    (``planner="columnar"`` routes through the fused columnar pass)."""
    policies = [base_policy.with_bandwidth(bw * MBPS) for bw in bandwidths_mbps]
    table = session.run(
        queries, schemes=configs, policies=policies, planner=planner
    )
    return {
        label: [
            SweepCell(
                config_label=label,
                bandwidth_mbps=bw,
                distance_m=row.policy.network.distance_m,
                result=row.result,
            )
            for bw, row in zip(bandwidths_mbps, rows)
        ]
        for label, rows in table.by_scheme().items()
    }


def fig4_point_queries(
    env: Union[Environment, Session],
    n_runs: int = DEFAULT_RUNS,
    base_policy: Policy = Policy(),
) -> Dict[str, List[SweepCell]]:
    """Figure 4: point queries, PA, schemes x bandwidths at C/S=1/8, 1 km."""
    session = _session(env)
    qs = point_queries(session.dataset, n_runs)
    return _sweep(session, qs, POINT_NN_CONFIGS, base_policy)


def fig5_range_queries(
    env: Union[Environment, Session],
    n_runs: int = DEFAULT_RUNS,
    base_policy: Policy = Policy(),
    planner: str = "batched",
) -> Dict[str, List[SweepCell]]:
    """Figure 5 (PA) / Figure 7 (NYC): range queries, all six Table 1
    configurations x bandwidths."""
    session = _session(env)
    qs = range_queries(session.dataset, n_runs)
    return _sweep(
        session, qs, ADEQUATE_MEMORY_CONFIGS, base_policy, planner=planner
    )


def fig6_nn_queries(
    env: Union[Environment, Session],
    n_runs: int = DEFAULT_RUNS,
    base_policy: Policy = Policy(),
    planner: str = "batched",
) -> Dict[str, List[SweepCell]]:
    """Figure 6: NN queries — only the two 'fully at' schemes apply."""
    session = _session(env)
    qs = nn_queries(session.dataset, n_runs)
    configs = (
        SchemeConfig(Scheme.FULLY_CLIENT),
        SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
    )
    return _sweep(session, qs, configs, base_policy, planner=planner)


def fig8_client_speed(
    dataset: SegmentDataset,
    n_runs: int = DEFAULT_RUNS,
    clock_ratio: float = 0.5,
    base_policy: Policy = Policy(),
) -> Dict[str, List[SweepCell]]:
    """Figure 8: the Figure 5 experiment with MhzC = clock_ratio * MhzS."""
    server_mhz = 1000.0
    client = ClientCPU(
        config=DEFAULT_CLIENT.with_clock(server_mhz * clock_ratio * MHZ)
    )
    env = Environment.create(dataset, client_cpu=client)
    session = Session(env)
    qs = range_queries(dataset, n_runs)
    return _sweep(session, qs, ADEQUATE_MEMORY_CONFIGS, base_policy)


def fig9_distance(
    env: Union[Environment, Session],
    n_runs: int = DEFAULT_RUNS,
    distance_m: float = 100.0,
) -> Dict[str, List[SweepCell]]:
    """Figure 9: the Figure 5 energy experiment at 100 m transmit range."""
    return fig5_range_queries(
        env, n_runs, base_policy=Policy().with_distance(distance_m)
    )


#: Default frame-loss grid for the lossy-channel companion sweep: ideal
#: channel first (so the sweep embeds its own Figure 5 baseline), then
#: loss rates spanning a clean office link to a badly faded edge of range.
LOSS_RATES: tuple = (0.0, 0.01, 0.02, 0.05, 0.1)


@dataclass(frozen=True)
class LossCell:
    """One (scheme, loss rate) point of the loss-sweep companion figure."""

    config_label: str
    loss_rate: float
    bandwidth_mbps: float
    distance_m: float
    result: object  # RunResult

    @property
    def energy_j(self) -> float:
        """Total client energy over the workload."""
        return self.result.energy.total()

    @property
    def cycles(self) -> float:
        """Total end-to-end client cycles over the workload."""
        return self.result.cycles.total()


def fig_loss_sweep(
    env: Union[Environment, Session],
    n_runs: int = DEFAULT_RUNS,
    loss_rates: Sequence[float] = LOSS_RATES,
    bandwidth_mbps: float = 2.0,
    burst_frames: Union[float, None] = None,
    base_policy: Policy = Policy(),
) -> Dict[str, List[LossCell]]:
    """Loss-sweep companion to Figure 5: range queries, fixed bandwidth,
    frame-loss rate on the x-axis.

    The paper's scheme rankings assume an ideal channel; this sweep shows
    how they shift as the link degrades — retransmissions tax the schemes
    that move the most bytes, so the data-shipping variants fall off first.
    The default 2 Mbps operating point is the paper's low-bandwidth regime,
    where the rankings are closest and loss flips them soonest.
    ``burst_frames`` switches the channel from i.i.d. Bernoulli losses to
    Gilbert-Elliott bursts of that mean length.
    """
    session = _session(env)
    qs = range_queries(session.dataset, n_runs)
    policies = [
        base_policy.with_bandwidth(bandwidth_mbps * MBPS).with_loss(
            rate, burst_frames=burst_frames
        )
        for rate in loss_rates
    ]
    table = session.run(qs, schemes=ADEQUATE_MEMORY_CONFIGS, policies=policies)
    return {
        label: [
            LossCell(
                config_label=label,
                loss_rate=rate,
                bandwidth_mbps=bandwidth_mbps,
                distance_m=row.policy.network.distance_m,
                result=row.result,
            )
            for rate, row in zip(loss_rates, rows)
        ]
        for label, rows in table.by_scheme().items()
    }


@dataclass(frozen=True)
class Fig10Row:
    """One spatial-proximity point of the Figure 10 curves."""

    buffer_bytes: int
    y: int
    client_energy_j: float
    client_cycles: float
    server_energy_j: float
    server_cycles: float
    local_hits: int
    misses: int


def fig10_insufficient_memory(
    env: Union[Environment, Session],
    buffers: Sequence[int] = (1 << 20, 2 << 20),
    proximities: Sequence[int] = (0, 20, 40, 60, 80, 100, 120, 140, 160, 180, 200),
    bandwidth_mbps: float = 11.0,
    seed: int = 23,
) -> List[Fig10Row]:
    """Figure 10: cached-client vs fully-at-server over proximity sweeps.

    The paper does not state the bandwidth for this experiment; we use
    11 Mbps, at which the measured energy crossovers land nearest the
    published ones (EXPERIMENTS.md discusses the sensitivity).
    """
    session = _session(env)
    policy = Policy().with_bandwidth(bandwidth_mbps * MBPS)
    server_cfg = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False)
    rows: List[Fig10Row] = []
    for budget in buffers:
        for y in proximities:
            qs = proximity_sequence(session.dataset, y=y, n_groups=1, seed=seed)
            plans, cache_session = session.plan_cached(qs, budget)
            client = session.price(plans, policy)[0]
            server_plans = session.plan(qs, server_cfg)
            server = session.price(server_plans, policy)[0]
            rows.append(
                Fig10Row(
                    buffer_bytes=budget,
                    y=y,
                    client_energy_j=client.energy.total(),
                    client_cycles=client.cycles.total(),
                    server_energy_j=server.energy.total(),
                    server_cycles=server.cycles.total(),
                    local_hits=cache_session.local_hits,
                    misses=cache_session.misses,
                )
            )
    return rows
