"""Generators that regenerate each figure of the paper's evaluation.

Every function runs the corresponding experiment — the same workloads, the
same schemes, the same parameter grid as the paper — and returns the sweep
structure (``{scheme label: [SweepCell, ...]}`` or figure-specific rows)
that :mod:`repro.bench.report` renders as the paper-shaped table.

The benchmark files under ``benchmarks/`` call these with full-scale
datasets and record wall-clock via pytest-benchmark; EXPERIMENTS.md captures
the printed output against the paper's reported values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.constants import BANDWIDTHS_MBPS, DEFAULT_CLIENT, MBPS, MHZ
from repro.core.executor import Environment, Policy
from repro.core.experiment import (
    SweepCell,
    bandwidth_sweep,
    plan_cached_workload,
    plan_workload,
    price_workload,
)
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig
from repro.data.model import SegmentDataset
from repro.data.workloads import (
    DEFAULT_RUNS,
    nn_queries,
    point_queries,
    proximity_sequence,
    range_queries,
)
from repro.sim.cpu import ClientCPU

__all__ = [
    "POINT_NN_CONFIGS",
    "fig4_point_queries",
    "fig5_range_queries",
    "fig6_nn_queries",
    "fig8_client_speed",
    "fig9_distance",
    "fig10_insufficient_memory",
    "Fig10Row",
]

#: Configurations shown for point queries in Figure 4: the paper omits the
#: data-present variants because point-query selectivity is so small that
#: they are indistinguishable (section 6.1.1).
POINT_NN_CONFIGS: tuple = (
    SchemeConfig(Scheme.FULLY_CLIENT),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False),
    SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=False),
    SchemeConfig(Scheme.FILTER_SERVER_REFINE_CLIENT, data_at_client=True),
)


def fig4_point_queries(
    env: Environment,
    n_runs: int = DEFAULT_RUNS,
    base_policy: Policy = Policy(),
) -> Dict[str, List[SweepCell]]:
    """Figure 4: point queries, PA, schemes x bandwidths at C/S=1/8, 1 km."""
    qs = point_queries(env.dataset, n_runs)
    return bandwidth_sweep(qs, POINT_NN_CONFIGS, env, base_policy)


def fig5_range_queries(
    env: Environment,
    n_runs: int = DEFAULT_RUNS,
    base_policy: Policy = Policy(),
) -> Dict[str, List[SweepCell]]:
    """Figure 5 (PA) / Figure 7 (NYC): range queries, all six Table 1
    configurations x bandwidths."""
    qs = range_queries(env.dataset, n_runs)
    return bandwidth_sweep(qs, ADEQUATE_MEMORY_CONFIGS, env, base_policy)


def fig6_nn_queries(
    env: Environment,
    n_runs: int = DEFAULT_RUNS,
    base_policy: Policy = Policy(),
) -> Dict[str, List[SweepCell]]:
    """Figure 6: NN queries — only the two 'fully at' schemes apply."""
    qs = nn_queries(env.dataset, n_runs)
    configs = (
        SchemeConfig(Scheme.FULLY_CLIENT),
        SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
    )
    return bandwidth_sweep(qs, configs, env, base_policy)


def fig8_client_speed(
    dataset: SegmentDataset,
    n_runs: int = DEFAULT_RUNS,
    clock_ratio: float = 0.5,
    base_policy: Policy = Policy(),
) -> Dict[str, List[SweepCell]]:
    """Figure 8: the Figure 5 experiment with MhzC = clock_ratio * MhzS."""
    server_mhz = 1000.0
    client = ClientCPU(
        config=DEFAULT_CLIENT.with_clock(server_mhz * clock_ratio * MHZ)
    )
    env = Environment.create(dataset, client_cpu=client)
    qs = range_queries(dataset, n_runs)
    return bandwidth_sweep(qs, ADEQUATE_MEMORY_CONFIGS, env, base_policy)


def fig9_distance(
    env: Environment,
    n_runs: int = DEFAULT_RUNS,
    distance_m: float = 100.0,
) -> Dict[str, List[SweepCell]]:
    """Figure 9: the Figure 5 energy experiment at 100 m transmit range."""
    return fig5_range_queries(
        env, n_runs, base_policy=Policy().with_distance(distance_m)
    )


@dataclass(frozen=True)
class Fig10Row:
    """One spatial-proximity point of the Figure 10 curves."""

    buffer_bytes: int
    y: int
    client_energy_j: float
    client_cycles: float
    server_energy_j: float
    server_cycles: float
    local_hits: int
    misses: int


def fig10_insufficient_memory(
    env: Environment,
    buffers: Sequence[int] = (1 << 20, 2 << 20),
    proximities: Sequence[int] = (0, 20, 40, 60, 80, 100, 120, 140, 160, 180, 200),
    bandwidth_mbps: float = 11.0,
    seed: int = 23,
) -> List[Fig10Row]:
    """Figure 10: cached-client vs fully-at-server over proximity sweeps.

    The paper does not state the bandwidth for this experiment; we use
    11 Mbps, at which the measured energy crossovers land nearest the
    published ones (EXPERIMENTS.md discusses the sensitivity).
    """
    policy = Policy().with_bandwidth(bandwidth_mbps * MBPS)
    server_cfg = SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False)
    rows: List[Fig10Row] = []
    for budget in buffers:
        for y in proximities:
            qs = proximity_sequence(env.dataset, y=y, n_groups=1, seed=seed)
            plans, session = plan_cached_workload(qs, env, budget)
            client = price_workload(plans, env, policy)
            server_plans = plan_workload(qs, server_cfg, env)
            server = price_workload(server_plans, env, policy)
            rows.append(
                Fig10Row(
                    buffer_bytes=budget,
                    y=y,
                    client_energy_j=client.energy.total(),
                    client_cycles=client.cycles.total(),
                    server_energy_j=server.energy.total(),
                    server_cycles=server.cycles.total(),
                    local_hits=session.local_hits,
                    misses=session.misses,
                )
            )
    return rows
