"""Figure and table generators for the paper's evaluation section.

* :mod:`repro.bench.figures` — one generator per paper figure, returning
  structured rows the benchmark harness prints and checks.
* :mod:`repro.bench.report` — text rendering of paper-shaped tables.
"""

from repro.bench.figures import (
    fig4_point_queries,
    fig5_range_queries,
    fig6_nn_queries,
    fig8_client_speed,
    fig9_distance,
    fig10_insufficient_memory,
)
from repro.bench.report import render_sweep, render_fig10

__all__ = [
    "fig4_point_queries",
    "fig5_range_queries",
    "fig6_nn_queries",
    "fig8_client_speed",
    "fig9_distance",
    "fig10_insufficient_memory",
    "render_sweep",
    "render_fig10",
]
