"""Data freshness under server-side updates — the paper's "examining issues
when data is frequently modified (and the latest copy needs to be obtained
from the server)" future work.

The paper's experiments hold the dataset static (caches are downloaded once,
"perhaps even before the user goes on the road").  Here the server mutates
segments over simulated time — a Poisson stream of updates at a configurable
rate — and the client's cached region can go **stale**.  Three consistency
policies bracket the design space:

* :attr:`FreshnessPolicy.NONE` — serve local hits blindly; cheapest, but a
  fraction of answers is stale (measured, not hidden).
* :attr:`FreshnessPolicy.TTL` — a cached region older than ``ttl_s`` is
  dropped and re-fetched on the next query; bounds staleness by the TTL at
  the cost of periodic re-shipments.
* :attr:`FreshnessPolicy.VERIFY` — every local hit first round-trips a tiny
  version-check to the server (request + 1-byte verdict); zero staleness,
  but each "free" local query now costs a transmit — eroding exactly the
  energy advantage the section-6.2 caching bought.

Staleness is tracked at the packed-entry level: an update at simulated time
``t`` touches one master entry position; a cached region fetched at ``t0``
is stale at ``t`` iff some update in ``(t0, t]`` falls inside its shipped
entry range.  Geometry is left untouched (the answers' *content* is not the
point — their version is), so every other invariant of the system keeps
holding.

The session composes :class:`~repro.core.clientcache.ClientCacheSession`
with a simulated clock: each query advances time by its *priced* wall
duration plus a think-time gap, so higher-rate update streams genuinely
interleave with longer sessions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.clientcache import INSUFFICIENT_CLIENT_CONFIG, ClientCacheSession
from repro.core.executor import (
    Environment,
    Policy,
    QueryPlan,
    RecvStep,
    SendStep,
    ServerComputeStep,
    price_plan,
)
from repro.core.messages import Payload
from repro.core.queries import Query
from repro.sim.metrics import CycleBreakdown, EnergyBreakdown

__all__ = [
    "UpdateStream",
    "FreshnessPolicy",
    "SessionStats",
    "FreshClientSession",
]

#: Version-check request payload (query region digest + cached version).
_VERIFY_REQUEST_BYTES = 32
#: Version-check verdict payload.
_VERIFY_REPLY_BYTES = 1
#: Server cycles to check a region's version (a hash-table lookup).
_VERIFY_SERVER_CYCLES = 2_000.0


class UpdateStream:
    """A deterministic Poisson stream of server-side updates.

    Each event updates one master packed-entry position, drawn uniformly
    (every street is equally likely to change — closures, renames, edits).
    Event times and positions are materialized lazily in chunks so long
    simulations stay O(events seen).
    """

    def __init__(
        self, n_entries: int, rate_per_s: float, seed: int = 53
    ) -> None:
        if n_entries < 1:
            raise ValueError(f"n_entries must be >= 1, got {n_entries}")
        if rate_per_s < 0:
            raise ValueError(f"rate_per_s must be >= 0, got {rate_per_s}")
        self.n_entries = n_entries
        self.rate_per_s = rate_per_s
        self._rng = np.random.default_rng(seed)
        self._times: List[float] = []
        self._positions: List[int] = []
        self._horizon = 0.0

    def _extend_to(self, t: float) -> None:
        if self.rate_per_s == 0:
            self._horizon = max(self._horizon, t)
            return
        while self._horizon < t:
            gap = float(self._rng.exponential(1.0 / self.rate_per_s))
            self._horizon += gap
            self._times.append(self._horizon)
            self._positions.append(int(self._rng.integers(0, self.n_entries)))

    def updates_in(
        self, t0: float, t1: float, lo: int, hi: int
    ) -> int:
        """Number of updates in ``(t0, t1]`` touching positions ``[lo, hi)``."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        self._extend_to(t1)
        times = np.asarray(self._times)
        pos = np.asarray(self._positions)
        if times.size == 0:
            return 0
        mask = (times > t0) & (times <= t1) & (pos >= lo) & (pos < hi)
        return int(mask.sum())

    def positions_in(self, t0: float, t1: float) -> np.ndarray:
        """Entry positions updated in ``(t0, t1]`` (with repeats collapsed)."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        self._extend_to(t1)
        times = np.asarray(self._times)
        pos = np.asarray(self._positions, dtype=np.int64)
        if times.size == 0:
            return np.empty(0, dtype=np.int64)
        mask = (times > t0) & (times <= t1)
        return np.unique(pos[mask])


class FreshnessPolicy(enum.Enum):
    """Client-side consistency disciplines (see module docstring)."""

    NONE = "none"
    TTL = "ttl"
    VERIFY = "verify"


@dataclass
class SessionStats:
    """Aggregate outcome of a freshness session."""

    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    cycles: CycleBreakdown = field(default_factory=CycleBreakdown)
    wall_seconds: float = 0.0
    fresh_answers: int = 0
    stale_answers: int = 0
    refetches: int = 0
    verifications: int = 0

    @property
    def queries(self) -> int:
        """Total queries served."""
        return self.fresh_answers + self.stale_answers

    @property
    def staleness(self) -> float:
        """Fraction of answers served from out-of-date data."""
        return self.stale_answers / self.queries if self.queries else 0.0


class FreshClientSession:
    """An insufficient-memory client session under an update stream."""

    def __init__(
        self,
        env: Environment,
        budget_bytes: int,
        updates: UpdateStream,
        policy: FreshnessPolicy = FreshnessPolicy.NONE,
        pricing: Policy = Policy(),
        ttl_s: float = 60.0,
        think_time_s: float = 2.0,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        if think_time_s < 0:
            raise ValueError(f"think_time_s must be >= 0, got {think_time_s}")
        self.env = env
        self.cache = ClientCacheSession(env, budget_bytes)
        self.updates = updates
        self.policy = policy
        self.pricing = pricing
        self.ttl_s = ttl_s
        self.think_time_s = think_time_s
        self.now_s = 0.0
        self.fetched_at_s: Optional[float] = None
        self.stats = SessionStats()

    # ------------------------------------------------------------------
    def _region_stale(self) -> bool:
        """Whether *any* cached entry is out of date (VERIFY's criterion:
        the server's region version has moved)."""
        region = self.cache.region
        if region is None or self.fetched_at_s is None:
            return False
        return (
            self.updates.updates_in(
                self.fetched_at_s, self.now_s, region.entry_lo, region.entry_hi
            )
            > 0
        )

    def _answer_stale(self, answer_ids: np.ndarray) -> bool:
        """Whether this particular answer contains an updated segment —
        the user-visible staleness the statistics report."""
        if self.fetched_at_s is None or answer_ids.size == 0:
            return False
        updated = self.updates.positions_in(self.fetched_at_s, self.now_s)
        if updated.size == 0:
            return False
        answer_pos = self.env.tree.entry_positions_for_ids(
            np.asarray(answer_ids, dtype=np.int64)
        )
        return bool(np.isin(answer_pos, updated).any())

    def _verify_plan(self, query: Query) -> QueryPlan:
        """The tiny version-check round trip of the VERIFY policy."""
        steps = [
            SendStep(Payload(_VERIFY_REQUEST_BYTES, "version check")),
            ServerComputeStep(_VERIFY_SERVER_CYCLES, "version lookup"),
            RecvStep(Payload(_VERIFY_REPLY_BYTES, "version verdict")),
        ]
        return QueryPlan(
            query=query,
            config=INSUFFICIENT_CLIENT_CONFIG,
            steps=steps,
            answer_ids=np.empty(0, dtype=np.int64),
            n_candidates=0,
            n_results=0,
        )

    def _account(self, plan: QueryPlan) -> float:
        r = price_plan(plan, self.env, self.pricing)
        self.stats.energy = self.stats.energy + r.energy
        self.stats.cycles = self.stats.cycles + r.cycles
        self.stats.wall_seconds += r.wall_seconds
        return r.wall_seconds

    # ------------------------------------------------------------------
    def run_query(self, query: Query) -> QueryPlan:
        """Serve one query under the session's consistency policy."""
        self.now_s += self.think_time_s

        would_hit = self.cache._can_answer_locally(query)
        if would_hit:
            if self.policy is FreshnessPolicy.TTL:
                assert self.fetched_at_s is not None
                if self.now_s - self.fetched_at_s > self.ttl_s:
                    self.cache.region = None  # expired: force a re-fetch
                    self.stats.refetches += 1
                    would_hit = False
            elif self.policy is FreshnessPolicy.VERIFY:
                self.stats.verifications += 1
                self.now_s += self._account(self._verify_plan(query))
                if self._region_stale():
                    self.cache.region = None
                    self.stats.refetches += 1
                    would_hit = False

        plan = self.cache.plan(query)
        elapsed = self._account(plan)
        if not would_hit:
            # A (re-)fetch delivers the server's current version.
            self.fetched_at_s = self.now_s + elapsed
        self.now_s += elapsed

        served_from_cache = would_hit
        if (
            served_from_cache
            and self.policy is not FreshnessPolicy.VERIFY
            and self._answer_stale(plan.answer_ids)
        ):
            self.stats.stale_answers += 1
        else:
            self.stats.fresh_answers += 1
        return plan

    def run(self, queries: Sequence[Query]) -> SessionStats:
        """Serve a whole workload; returns the aggregate statistics."""
        for q in queries:
            self.run_query(q)
        return self.stats
