"""Instrumented query engine: the filtering and refinement phases.

One :class:`QueryEngine` binds a dataset to its packed R-tree and exposes the
two demarcated phases of spatial query processing:

* :meth:`QueryEngine.filter` — traverse the index, return candidate ids
  (segments whose MBR satisfies the predicate);
* :meth:`QueryEngine.refine` — run the exact geometric predicate on each
  candidate, return the answer ids;

plus :meth:`QueryEngine.nearest` for the phase-less NN query.  Every phase
takes an :class:`~repro.sim.trace.OpCounter` and tallies its abstract
operations and data touches there; *where* the counter is priced — on the
client CPU model or the server's — is exactly the work-partitioning decision
the executor makes.  The engine itself is placement-agnostic: the same code
"runs" on both sides, as the paper's single query implementation did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.model import SegmentDataset
from repro.sim.trace import REGION_RESULT, OpCounter
from repro.spatial import vecgeom
from repro.spatial.rtree import PackedRTree
from repro.core.queries import KNNQuery, NNQuery, PointQuery, Query, QueryKind, RangeQuery

__all__ = ["QueryEngine", "PhaseOutput"]


@dataclass(frozen=True)
class PhaseOutput:
    """Ids produced by one phase plus the counter that accumulated its work."""

    ids: np.ndarray
    counter: OpCounter


class QueryEngine:
    """Filter/refine engine over one dataset + index pair."""

    def __init__(self, dataset: SegmentDataset, tree: Optional[PackedRTree] = None):
        self.dataset = dataset
        self.tree = tree if tree is not None else PackedRTree.build(dataset)
        if self.tree.dataset is not dataset:
            raise ValueError("tree was built over a different dataset")

    # ------------------------------------------------------------------
    # Phase 1: filtering
    # ------------------------------------------------------------------
    def filter(self, query: Query, counter: Optional[OpCounter] = None) -> PhaseOutput:
        """Index traversal producing candidate ids.

        Raises for NN queries — they have no separate filtering step; use
        :meth:`nearest`.
        """
        counter = counter if counter is not None else OpCounter()
        if isinstance(query, RangeQuery):
            ids = self.tree.range_filter(query.rect, counter)
        elif isinstance(query, PointQuery):
            ids = self.tree.point_filter(query.x, query.y, counter)
        else:
            raise TypeError(
                f"{type(query).__name__} has no separate filtering phase"
            )
        return PhaseOutput(ids=ids, counter=counter)

    # ------------------------------------------------------------------
    # Phase 2: refinement
    # ------------------------------------------------------------------
    def refine(
        self,
        query: Query,
        candidates: np.ndarray,
        counter: Optional[OpCounter] = None,
    ) -> PhaseOutput:
        """Exact geometry on each candidate, producing the answer ids.

        The candidate records are touched in the data region (cache-model
        traffic) and each exact test is tallied with its query-specific
        geometry counter (point tests are far cheaper than window clips).
        """
        counter = counter if counter is not None else OpCounter()
        ds = self.dataset
        cand = np.asarray(candidates, dtype=np.int64)
        for seg_id in cand:
            counter.refine_candidate(int(seg_id), ds.costs.segment_record_bytes)
        if cand.size == 0:
            return PhaseOutput(ids=cand, counter=counter)

        x1 = ds.x1[cand]
        y1 = ds.y1[cand]
        x2 = ds.x2[cand]
        y2 = ds.y2[cand]
        if isinstance(query, RangeQuery):
            counter.range_refine_tests += int(cand.size)
            mask = vecgeom.segments_intersect_rect(x1, y1, x2, y2, query.rect)
        elif isinstance(query, PointQuery):
            counter.point_refine_tests += int(cand.size)
            mask = vecgeom.segments_contain_point(
                query.x, query.y, x1, y1, x2, y2, query.eps
            )
        else:
            raise TypeError(f"{type(query).__name__} has no refinement phase")
        answers = cand[mask]
        counter.results_produced += int(answers.size)
        for seg_id in answers:
            counter.touch(REGION_RESULT, int(seg_id), ds.costs.object_id_bytes)
        return PhaseOutput(ids=answers, counter=counter)

    # ------------------------------------------------------------------
    # Nearest neighbor (single fused phase)
    # ------------------------------------------------------------------
    def nearest(self, query, counter: Optional[OpCounter] = None) -> PhaseOutput:
        """Branch-and-bound (k-)NN search; ids ordered nearest first."""
        counter = counter if counter is not None else OpCounter()
        if isinstance(query, KNNQuery):
            ids = self.tree.nearest_neighbors(query.x, query.y, query.k, counter)
        elif isinstance(query, NNQuery):
            ids = self.tree.nearest_neighbors(query.x, query.y, 1, counter)
        else:
            raise TypeError(
                f"nearest() requires an NNQuery or KNNQuery, got {type(query).__name__}"
            )
        return PhaseOutput(ids=ids, counter=counter)

    # ------------------------------------------------------------------
    # Convenience: full local answer
    # ------------------------------------------------------------------
    def answer(self, query: Query, counter: Optional[OpCounter] = None) -> PhaseOutput:
        """Filter + refine (or NN search) in one call; the 'fully at one
        side' execution path."""
        counter = counter if counter is not None else OpCounter()
        if query.kind is QueryKind.NEAREST_NEIGHBOR:
            return self.nearest(query, counter)
        filtered = self.filter(query, counter)
        return self.refine(query, filtered.ids, counter)
