"""Seeded Monte-Carlo oracle for lossy-link pricing.

:func:`repro.core.executor.price_plan` charges the *expected* cost of
retransmissions in closed form; this module runs the same plan walk with a
seeded :class:`repro.sim.lossy.LossyChannel` drawing per-frame loss
outcomes instead.  Because both paths share one walk (the oracle literally
calls ``price_plan`` with a channel), every deterministic term — compute,
protocol processing, first transmissions, server waits — is byte-identical,
and the only stochastic difference is the retransmission tail.  Averaging
many seeded runs must therefore converge to the closed-form numbers, which
is exactly what the differential test suite asserts (within binomial
confidence bounds) for both the scalar and the vectorized grid pricer.

This is a test oracle and a research tool, not a fast path: it simulates
every frame of every message.  Use the expected-cost engines for sweeps.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from repro.core.executor import Environment, Policy, QueryPlan, RunResult, price_plan
from repro.sim.lossy import LossyChannel
from repro.sim.metrics import LossStats

__all__ = ["simulate_plan", "simulate_plans", "mc_mean"]


def simulate_plan(
    plan: QueryPlan,
    env: Environment,
    policy: Policy,
    rng: np.random.Generator,
) -> RunResult:
    """Price ``plan`` once with per-frame sampled losses.

    The returned :class:`RunResult` carries the *realized* retransmission
    counts and backoff dwell in its ``loss`` ledger (integral frame counts,
    unlike the fractional expectations of the closed-form path).
    """
    channel = LossyChannel(policy.network, rng)
    return price_plan(plan, env, policy, channel=channel)


def simulate_plans(
    plans: Sequence[QueryPlan],
    env: Environment,
    policy: Policy,
    rng: np.random.Generator,
) -> RunResult:
    """One sampled pricing pass over a workload, summed like a workload run."""
    results = [simulate_plan(p, env, policy, rng) for p in plans]
    return RunResult.combine(results)


def mc_mean(
    plan: QueryPlan,
    env: Environment,
    policy: Policy,
    n_runs: int,
    seed: Optional[int] = 0,
) -> RunResult:
    """Average ``n_runs`` independent sampled pricings of one plan.

    Each run draws from its own :func:`numpy.random.default_rng` spawn so
    runs are independent yet the whole estimate is reproducible from
    ``seed``.  The averaged breakdowns estimate the closed-form expectation
    with standard error shrinking as ``1/sqrt(n_runs)``.
    """
    if n_runs <= 0:
        raise ValueError(f"n_runs must be positive, got {n_runs!r}")
    root = np.random.default_rng(seed)
    results: List[RunResult] = [
        simulate_plan(plan, env, policy, rng) for rng in root.spawn(n_runs)
    ]
    total = RunResult.combine(results)
    k = 1.0 / n_runs
    return replace(
        total,
        energy=total.energy.scaled(k),
        cycles=total.cycles.scaled(k),
        wall_seconds=total.wall_seconds * k,
        loss=LossStats(
            retx_tx_frames=total.loss.retx_tx_frames * k,
            retx_rx_frames=total.loss.retx_rx_frames * k,
            backoff_s=total.loss.backoff_s * k,
        ),
    )
