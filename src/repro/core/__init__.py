"""The paper's contribution: work partitioning for mobile spatial queries.

Public surface:

* :mod:`repro.core.queries` — point / range / NN query types.
* :mod:`repro.core.engine` — instrumented filter/refine engine.
* :mod:`repro.core.schemes` — the Table 1 partitioning taxonomy.
* :mod:`repro.core.executor` — plan/price execution of a query under a
  scheme (energy + cycle breakdowns).
* :mod:`repro.core.clientcache` — insufficient-memory cached client.
* :mod:`repro.core.analytic` — the section-4.1 closed-form model.

Workload sweeps run through the :class:`repro.api.Session` facade (the
``repro.core.experiment`` shims were removed after a deprecation cycle).
"""

from repro.core.engine import QueryEngine
from repro.core.executor import Environment, Policy, RunResult, execute
from repro.core.queries import (
    KNNQuery,
    NNQuery,
    PointQuery,
    Query,
    QueryKind,
    RangeQuery,
)
from repro.core.schemes import ADEQUATE_MEMORY_CONFIGS, Scheme, SchemeConfig

__all__ = [
    "QueryEngine",
    "Environment",
    "Policy",
    "RunResult",
    "execute",
    "KNNQuery",
    "NNQuery",
    "PointQuery",
    "Query",
    "QueryKind",
    "RangeQuery",
    "ADEQUATE_MEMORY_CONFIGS",
    "Scheme",
    "SchemeConfig",
]
