"""Workload sweep harness: plan once, price across parameter grids.

The figures sweep bandwidth (all), client clock ratio (Fig. 8), transmit
distance (Fig. 9), buffer size and proximity (Fig. 10) over 100-query
workloads and several schemes.  Query plans are independent of bandwidth,
distance and power policy (:mod:`repro.core.executor`), so this harness:

1. plans each workload x scheme combination once (caches cold-started at
   the workload boundary, warm within it — as on the device),
2. re-prices those plans for every policy point in the sweep,
3. returns :class:`SweepCell` records carrying the summed breakdowns, which
   the figure generators and shape tests consume directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.constants import BANDWIDTHS_MBPS, MBPS
from repro.core.clientcache import ClientCacheSession
from repro.core.executor import (
    Environment,
    Policy,
    QueryPlan,
    RunResult,
    plan_query,
    price_plan,
)
from repro.core.queries import Query
from repro.core.schemes import SchemeConfig

__all__ = [
    "SweepCell",
    "plan_workload",
    "price_workload",
    "bandwidth_sweep",
    "plan_cached_workload",
]


@dataclass(frozen=True)
class SweepCell:
    """One (scheme, policy) point of a sweep: the summed workload result."""

    config_label: str
    bandwidth_mbps: float
    distance_m: float
    result: RunResult

    @property
    def energy_j(self) -> float:
        """Total client energy over the workload."""
        return self.result.energy.total()

    @property
    def cycles(self) -> float:
        """Total end-to-end client cycles over the workload."""
        return self.result.cycles.total()


def plan_workload(
    queries: Sequence[Query],
    config: SchemeConfig,
    env: Environment,
    reset_caches: bool = True,
) -> List[QueryPlan]:
    """Plan every query of a workload under one scheme, in order."""
    if reset_caches:
        env.reset_caches()
    return [plan_query(q, config, env) for q in queries]


def price_workload(
    plans: Iterable[QueryPlan], env: Environment, policy: Policy
) -> RunResult:
    """Price a planned workload under one policy; returns the summed result."""
    results = [price_plan(p, env, policy) for p in plans]
    return RunResult.combine(results)


def bandwidth_sweep(
    queries: Sequence[Query],
    configs: Sequence[SchemeConfig],
    env: Environment,
    base_policy: Policy = Policy(),
    bandwidths_mbps: Sequence[float] = BANDWIDTHS_MBPS,
) -> Dict[str, List[SweepCell]]:
    """The evaluation section's standard grid: schemes x bandwidths.

    Returns ``{scheme label: [SweepCell per bandwidth]}``; plans are built
    once per scheme and re-priced per bandwidth.
    """
    out: Dict[str, List[SweepCell]] = {}
    for config in configs:
        plans = plan_workload(queries, config, env)
        cells: List[SweepCell] = []
        for bw in bandwidths_mbps:
            policy = base_policy.with_bandwidth(bw * MBPS)
            result = price_workload(plans, env, policy)
            cells.append(
                SweepCell(
                    config_label=config.label,
                    bandwidth_mbps=bw,
                    distance_m=policy.network.distance_m,
                    result=result,
                )
            )
        out[config.label] = cells
    return out


def plan_cached_workload(
    queries: Sequence[Query],
    env: Environment,
    budget_bytes: int,
    reset_caches: bool = True,
) -> tuple[List[QueryPlan], ClientCacheSession]:
    """Plan a workload under the insufficient-memory cached-client scheme.

    Returns the plans plus the session (whose hit/miss statistics the
    Figure 10 bench reports).
    """
    if reset_caches:
        env.reset_caches()
    session = ClientCacheSession(env, budget_bytes)
    return session.plan_sequence(list(queries)), session
