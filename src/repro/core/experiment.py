"""Deprecated workload sweep entry points — use :class:`repro.api.Session`.

The seed exposed four loose functions here; the facade in :mod:`repro.api`
replaces them all (and adds plan caching, batched pricing and the
run-ledger).  They remain as thin shims so existing scripts keep working,
each emitting a :class:`DeprecationWarning` and delegating to a session:

* :func:`plan_workload` -> :meth:`repro.api.Session.plan`
* :func:`price_workload` -> :meth:`repro.api.Session.price` (scalar engine,
  bit-identical to the seed's per-step walk)
* :func:`bandwidth_sweep` -> :meth:`repro.api.Session.run` (batched engine)
* :func:`plan_cached_workload` -> :meth:`repro.api.Session.plan_cached`

:class:`SweepCell` now lives in :mod:`repro.api`; it is re-exported here
for backward compatibility.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, Sequence

from repro.api import Session, SweepCell
from repro.constants import BANDWIDTHS_MBPS, MBPS
from repro.core.clientcache import ClientCacheSession
from repro.core.executor import Environment, Policy, QueryPlan, RunResult
from repro.core.queries import Query
from repro.core.schemes import SchemeConfig

__all__ = [
    "SweepCell",
    "plan_workload",
    "price_workload",
    "bandwidth_sweep",
    "plan_cached_workload",
]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def plan_workload(
    queries: Sequence[Query],
    config: SchemeConfig,
    env: Environment,
    reset_caches: bool = True,
) -> List[QueryPlan]:
    """Deprecated: use :meth:`repro.api.Session.plan`."""
    _deprecated("plan_workload()", "repro.api.Session.plan()")
    return Session(env).plan(queries, config, reset_caches=reset_caches)


def price_workload(
    plans: Iterable[QueryPlan], env: Environment, policy: Policy
) -> RunResult:
    """Deprecated: use :meth:`repro.api.Session.price`."""
    _deprecated("price_workload()", "repro.api.Session.price()")
    return Session(env).price(list(plans), policy, engine="scalar")[0]


def bandwidth_sweep(
    queries: Sequence[Query],
    configs: Sequence[SchemeConfig],
    env: Environment,
    base_policy: Policy = Policy(),
    bandwidths_mbps: Sequence[float] = BANDWIDTHS_MBPS,
) -> Dict[str, List[SweepCell]]:
    """Deprecated: use :meth:`repro.api.Session.run`.

    Returns ``{scheme label: [SweepCell per bandwidth]}`` exactly as the
    seed did, now priced through the batched grid engine.
    """
    _deprecated("bandwidth_sweep()", "repro.api.Session.run()")
    policies = [base_policy.with_bandwidth(bw * MBPS) for bw in bandwidths_mbps]
    table = Session(env).run(queries, schemes=configs, policies=policies)
    out: Dict[str, List[SweepCell]] = {}
    for label, rows in table.by_scheme().items():
        out[label] = [
            SweepCell(
                config_label=label,
                bandwidth_mbps=bw,
                distance_m=row.policy.network.distance_m,
                result=row.result,
            )
            for bw, row in zip(bandwidths_mbps, rows)
        ]
    return out


def plan_cached_workload(
    queries: Sequence[Query],
    env: Environment,
    budget_bytes: int,
    reset_caches: bool = True,
) -> tuple[List[QueryPlan], ClientCacheSession]:
    """Deprecated: use :meth:`repro.api.Session.plan_cached`."""
    _deprecated("plan_cached_workload()", "repro.api.Session.plan_cached()")
    return Session(env).plan_cached(
        queries, budget_bytes, reset_caches=reset_caches
    )
