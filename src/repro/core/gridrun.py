"""Workload-scale batched pricing runtime.

The evaluation is a grid — schemes x queries x bandwidths x distances x
wait policies — but :func:`repro.core.executor.price_plan` walks one
(plan, policy) pair at a time through a per-step Python loop, so a figure
bench re-walks thousands of tiny plans serially.  This module prices the
whole grid at once:

1. :func:`compile_plan` walks a plan **symbolically, once**, reducing it to
   a handful of policy-independent aggregates (compute cycles/joules, wire
   bits per direction, NIC-quiet and wait dwell seconds, sleep-exit counts
   under both NIC disciplines).  The walk mirrors ``price_plan`` statement
   for statement; a property test asserts the two agree to float tolerance
   on randomized grids.
2. :func:`price_grid` broadcasts those aggregates against per-policy
   scalars (bandwidth, transmit power, blocked-CPU power, NIC state powers)
   as NumPy arrays, producing every (plan, policy) cell in one shot;
   :func:`price_workload_grid` sums the aggregates over the workload first
   and prices M policies in O(N + M) instead of O(N * M).
3. :class:`PlanCache` memoizes planning per (dataset fingerprint, workload,
   scheme) so sweeps and repeated benches never re-plan, and
   :func:`plan_requests` fans plan construction out across datasets with
   ``multiprocessing``.
4. :class:`RunLedger` records what happened — per-phase op counts, per-NIC-
   state joules/seconds (:class:`repro.sim.metrics.NICDwell`), plan-cache
   hit rates, wall-clock timings — as JSON-lines for
   ``repro bench --ledger`` and :func:`repro.bench.report.summarize_ledger`.

The scalar ``price_plan`` remains the oracle; everything here is an exact
algebraic regrouping of its arithmetic.  The aggregates work because the
step walk's policy dependence is affine: transfer time is ``wire_bits / B``,
NIC energy is ``power x dwell``, blocked-CPU energy is ``power x blocked
seconds``, and the only nonlinearity — the NIC sleep/idle state machine —
depends on a single boolean (``Policy.nic_sleep``), so both variants are
compiled up front.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import IO, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import NetworkConfig
from repro.core.executor import (
    ClientComputeStep,
    Environment,
    Policy,
    QueryPlan,
    RecvStep,
    RunResult,
    SendStep,
    ServerComputeStep,
    WaitStep,
)
from repro.core.batchplan import plan_workload_batched
from repro.core.queries import Query, query_key
from repro.core.schemes import SchemeConfig
from repro.data.model import SegmentDataset
from repro.sim.lossy import expected_retx
from repro.sim.metrics import CycleBreakdown, EnergyBreakdown, LossStats, NICDwell
from repro.sim.protocol import packetize
from repro.sim.radio import RadioModel

__all__ = [
    "CompiledPlan",
    "PlanAggregates",
    "compile_plan",
    "framing_key",
    "GridResult",
    "price_grid",
    "price_workload_grid",
    "dataset_fingerprint",
    "workload_key",
    "scheme_key",
    "PlanCache",
    "PlanRequest",
    "plan_requests",
    "RunLedger",
    "read_ledger",
]


# ----------------------------------------------------------------------
# Plan compilation
# ----------------------------------------------------------------------
def framing_key(net: NetworkConfig) -> Tuple[int, int, int, int]:
    """The part of a network config that changes a plan's wire footprint.

    :func:`repro.sim.protocol.packetize` only reads the MTU and the three
    header sizes; policies sharing these four values share compiled plans
    even when they differ in bandwidth, distance or discipline flags.
    """
    return (
        net.mtu_bytes,
        net.tcp_header_bytes,
        net.ip_header_bytes,
        net.link_header_bytes,
    )


@dataclass(frozen=True)
class CompiledPlan:
    """One plan's policy-independent aggregates (for one wire framing).

    The two ``*_sleep`` / ``*_nosleep`` counter pairs capture the only
    policy nonlinearity: how often the NIC crosses out of SLEEP (each
    crossing costs the exit latency at idle power) under the two
    ``Policy.nic_sleep`` disciplines.
    """

    #: Client compute + protocol cycles (the figures' Processor cycles).
    proc_cycles: float
    #: Client compute + protocol energy, excluding blocked-CPU energy.
    proc_energy_j: float
    #: Seconds the NIC is quiet (client computing / protocol processing);
    #: spent in SLEEP or IDLE depending on ``Policy.nic_sleep``.
    quiet_s: float
    #: Seconds waiting with the radio listening (server compute, indexed
    #: broadcast waits with no timing knowledge).
    idle_wait_s: float
    #: Seconds waiting with the radio off (index-directed broadcast waits).
    sleep_wait_s: float
    #: Total bits on the wire, client -> server.
    tx_bits: float
    #: Total bits on the wire, server -> client.
    rx_bits: float
    #: Total MTU frames on the wire, client -> server (lossy-link pricing
    #: scales retransmissions and backoff by frame counts).
    tx_frames: float
    #: Total MTU frames on the wire, server -> client.
    rx_frames: float
    #: SLEEP exits when the policy sleeps the NIC between activities.
    n_exits_sleep: int
    #: ...of which happen inside ``transmit()`` (charged to NIC-Tx time).
    n_tx_wake_sleep: int
    #: SLEEP exits when the policy keeps the NIC idling instead.
    n_exits_nosleep: int
    n_tx_wake_nosleep: int
    #: ``(direction, payload_bytes)`` application-message log, in step order.
    messages: Tuple[tuple, ...]
    answer_ids: np.ndarray
    n_candidates: int
    n_results: int

    @property
    def wait_s(self) -> float:
        """Blocked-on-the-world seconds (the cycle bars' ``wait`` bucket)."""
        return self.idle_wait_s + self.sleep_wait_s


# NIC states for the symbolic walk (private mirror of sim.nic.NICState —
# only SLEEP matters for exit counting, but keeping all four makes the walk
# read like the executor's).
_SLEEP, _IDLE, _TRANSMIT, _RECEIVE = range(4)


def compile_plan(
    plan: QueryPlan, env: Environment, network: NetworkConfig
) -> CompiledPlan:
    """Reduce one plan to its batched-pricing aggregates.

    ``network`` supplies the wire framing (MTU + headers) — normally the
    policy's network; protocol *instruction* rates come from the client CPU
    model's own network config, exactly as in the scalar walk.
    """
    client = env.client_cpu
    proc_cycles = 0.0
    proc_energy = 0.0
    quiet_s = 0.0
    idle_wait_s = 0.0
    sleep_wait_s = 0.0
    tx_bits = 0.0
    rx_bits = 0.0
    tx_frames = 0.0
    rx_frames = 0.0
    messages: List[tuple] = []
    # One symbolic NIC state machine per nic_sleep discipline; index 0 is
    # nic_sleep=True, index 1 is nic_sleep=False.
    state = [_SLEEP, _SLEEP]
    exits = [0, 0]
    tx_wakes = [0, 0]

    def quiet(seconds: float) -> None:
        """``nic_quiet``: SLEEP under discipline 0, IDLE under 1."""
        nonlocal quiet_s
        quiet_s += seconds
        state[0] = _SLEEP
        if state[1] == _SLEEP:
            exits[1] += 1
        state[1] = _IDLE

    def wake_to(new_state: int, in_transmit: bool = False) -> None:
        for v in (0, 1):
            if state[v] == _SLEEP:
                exits[v] += 1
                if in_transmit:
                    tx_wakes[v] += 1
            state[v] = new_state

    for step in plan.steps:
        if isinstance(step, ClientComputeStep):
            proc_cycles += step.cost.cycles
            proc_energy += step.cost.energy_j
            quiet(client.seconds(step.cost.cycles))
        elif isinstance(step, SendStep):
            msg = packetize(step.payload.nbytes, network)
            messages.append(("tx", step.payload.nbytes))
            proto = client.protocol(msg)
            proc_cycles += proto.cycles
            proc_energy += proto.energy_j
            quiet(client.seconds(proto.cycles))
            wake_to(_TRANSMIT, in_transmit=True)
            tx_bits += msg.wire_bits
            tx_frames += msg.n_frames
        elif isinstance(step, ServerComputeStep):
            idle_wait_s += env.server_cpu.seconds(step.cycles)
            wake_to(_IDLE)
        elif isinstance(step, WaitStep):
            if step.radio_listening:
                idle_wait_s += step.seconds
                wake_to(_IDLE)
            else:
                sleep_wait_s += step.seconds
                state[0] = state[1] = _SLEEP
        elif isinstance(step, RecvStep):
            msg = packetize(step.payload.nbytes, network)
            messages.append(("rx", step.payload.nbytes))
            # A receive out of SLEEP wakes via idle(0.0) in the scalar walk.
            wake_to(_RECEIVE)
            rx_bits += msg.wire_bits
            rx_frames += msg.n_frames
            proto = client.protocol(msg)
            proc_cycles += proto.cycles
            proc_energy += proto.energy_j
            quiet(client.seconds(proto.cycles))
        else:  # pragma: no cover - defensive, mirrors price_plan
            raise TypeError(f"unknown plan step {step!r}")

    return CompiledPlan(
        proc_cycles=proc_cycles,
        proc_energy_j=proc_energy,
        quiet_s=quiet_s,
        idle_wait_s=idle_wait_s,
        sleep_wait_s=sleep_wait_s,
        tx_bits=tx_bits,
        rx_bits=rx_bits,
        tx_frames=tx_frames,
        rx_frames=rx_frames,
        n_exits_sleep=exits[0],
        n_tx_wake_sleep=tx_wakes[0],
        n_exits_nosleep=exits[1],
        n_tx_wake_nosleep=tx_wakes[1],
        messages=tuple(messages),
        answer_ids=plan.answer_ids,
        n_candidates=plan.n_candidates,
        n_results=plan.n_results,
    )


# ----------------------------------------------------------------------
# Grid pricing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _PolicyColumns:
    """Per-policy scalars as (M,) arrays, ready to broadcast."""

    bandwidth_bps: np.ndarray
    tx_power_w: np.ndarray
    receive_w: np.ndarray
    idle_w: np.ndarray
    sleep_w: np.ndarray
    exit_latency_s: np.ndarray
    blocked_power_w: np.ndarray
    #: Expected retransmissions per wire frame (0 on an ideal channel).
    retx_per_frame: np.ndarray
    #: Expected backoff dwell per wire frame, seconds.
    backoff_per_frame_s: np.ndarray
    #: 0 where nic_sleep=True, 1 where nic_sleep=False (variant index).
    variant: np.ndarray

    @classmethod
    def build(cls, policies: Sequence[Policy], env: Environment) -> "_PolicyColumns":
        nominal = env.client_cpu.config.power_at()
        lp = env.client_cpu.config.lowpower_fraction
        bw, txp, rxw, idw, slw, lat, blk, var = [], [], [], [], [], [], [], []
        rpf, bpf = [], []
        for p in policies:
            bw.append(p.network.bandwidth_bps)
            txp.append(
                RadioModel(power_table=p.nic_power).transmit_power_w(
                    p.network.distance_m
                )
            )
            rxw.append(p.nic_power.receive_w)
            idw.append(p.nic_power.idle_w)
            slw.append(p.nic_power.sleep_w)
            lat.append(p.nic_power.sleep_exit_latency_s)
            busy = p.busy_wait or not p.cpu_lowpower
            blk.append(nominal if busy else nominal * lp)
            retx = expected_retx(p.network)
            rpf.append(retx.retx_per_frame)
            bpf.append(retx.backoff_per_frame_s)
            var.append(0 if p.nic_sleep else 1)
        f = np.asarray
        return cls(
            bandwidth_bps=f(bw, dtype=np.float64),
            tx_power_w=f(txp, dtype=np.float64),
            receive_w=f(rxw, dtype=np.float64),
            idle_w=f(idw, dtype=np.float64),
            sleep_w=f(slw, dtype=np.float64),
            exit_latency_s=f(lat, dtype=np.float64),
            blocked_power_w=f(blk, dtype=np.float64),
            retx_per_frame=f(rpf, dtype=np.float64),
            backoff_per_frame_s=f(bpf, dtype=np.float64),
            variant=f(var, dtype=np.intp),
        )


@dataclass
class GridResult:
    """Every bucket of an N-plans x M-policies pricing grid, as arrays.

    ``energy_*`` map onto :class:`EnergyBreakdown` buckets, ``cycles_*``
    onto :class:`CycleBreakdown`; ``dwell_*`` are the per-NIC-state seconds
    the ledger reports.  :meth:`result` materializes any single cell as the
    scalar executor's :class:`RunResult`; :meth:`combine_policy` sums a
    policy's column over the workload.
    """

    plans: List[QueryPlan]
    policies: List[Policy]
    compiled: List[CompiledPlan]
    energy_processor: np.ndarray
    energy_tx: np.ndarray
    energy_rx: np.ndarray
    energy_idle: np.ndarray
    energy_sleep: np.ndarray
    cycles_processor: np.ndarray
    cycles_tx: np.ndarray
    cycles_rx: np.ndarray
    cycles_wait: np.ndarray
    wall_s: np.ndarray
    dwell_tx_s: np.ndarray
    dwell_rx_s: np.ndarray
    dwell_idle_s: np.ndarray
    dwell_sleep_s: np.ndarray
    sleep_exits: np.ndarray
    retx_tx_frames: np.ndarray
    retx_rx_frames: np.ndarray
    backoff_s: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        """(n_plans, n_policies)."""
        return self.energy_processor.shape

    # ------------------------------------------------------------------
    def _energy(self, i, j) -> EnergyBreakdown:
        return EnergyBreakdown(
            processor=float(self.energy_processor[i, j]),
            nic_tx=float(self.energy_tx[i, j]),
            nic_rx=float(self.energy_rx[i, j]),
            nic_idle=float(self.energy_idle[i, j]),
            nic_sleep=float(self.energy_sleep[i, j]),
        )

    def _cycles(self, i, j) -> CycleBreakdown:
        return CycleBreakdown(
            processor=float(self.cycles_processor[i, j]),
            nic_tx=float(self.cycles_tx[i, j]),
            nic_rx=float(self.cycles_rx[i, j]),
            wait=float(self.cycles_wait[i, j]),
        )

    def loss(self, i: int, j: int) -> LossStats:
        """The (plan i, policy j) cell's lossy-link ledger."""
        return LossStats(
            retx_tx_frames=float(self.retx_tx_frames[i, j]),
            retx_rx_frames=float(self.retx_rx_frames[i, j]),
            backoff_s=float(self.backoff_s[i, j]),
        )

    def result(self, i: int, j: int) -> RunResult:
        """The (plan i, policy j) cell as a scalar-walk-shaped RunResult."""
        c = self.compiled[i]
        return RunResult(
            energy=self._energy(i, j),
            cycles=self._cycles(i, j),
            wall_seconds=float(self.wall_s[i, j]),
            answer_ids=c.answer_ids,
            n_candidates=c.n_candidates,
            n_results=c.n_results,
            messages=c.messages,
            loss=self.loss(i, j),
        )

    def combine_policy(self, j: int) -> RunResult:
        """Policy ``j``'s column summed over the workload (plan order)."""
        ids = [c.answer_ids for c in self.compiled]
        msgs: List[tuple] = []
        for c in self.compiled:
            msgs.extend(c.messages)
        return RunResult(
            energy=EnergyBreakdown(
                processor=float(self.energy_processor[:, j].sum()),
                nic_tx=float(self.energy_tx[:, j].sum()),
                nic_rx=float(self.energy_rx[:, j].sum()),
                nic_idle=float(self.energy_idle[:, j].sum()),
                nic_sleep=float(self.energy_sleep[:, j].sum()),
            ),
            cycles=CycleBreakdown(
                processor=float(self.cycles_processor[:, j].sum()),
                nic_tx=float(self.cycles_tx[:, j].sum()),
                nic_rx=float(self.cycles_rx[:, j].sum()),
                wait=float(self.cycles_wait[:, j].sum()),
            ),
            wall_seconds=float(self.wall_s[:, j].sum()),
            answer_ids=(
                np.concatenate(ids) if ids else np.empty(0, dtype=np.int64)
            ),
            n_candidates=sum(c.n_candidates for c in self.compiled),
            n_results=sum(c.n_results for c in self.compiled),
            messages=tuple(msgs),
            loss=LossStats(
                retx_tx_frames=float(self.retx_tx_frames[:, j].sum()),
                retx_rx_frames=float(self.retx_rx_frames[:, j].sum()),
                backoff_s=float(self.backoff_s[:, j].sum()),
            ),
        )

    def dwell(self, j: int) -> NICDwell:
        """Policy ``j``'s per-NIC-state dwell, summed over the workload."""
        return NICDwell(
            transmit_s=float(self.dwell_tx_s[:, j].sum()),
            receive_s=float(self.dwell_rx_s[:, j].sum()),
            idle_s=float(self.dwell_idle_s[:, j].sum()),
            sleep_s=float(self.dwell_sleep_s[:, j].sum()),
            transmit_j=float(self.energy_tx[:, j].sum()),
            receive_j=float(self.energy_rx[:, j].sum()),
            idle_j=float(self.energy_idle[:, j].sum()),
            sleep_j=float(self.energy_sleep[:, j].sum()),
            sleep_exits=int(self.sleep_exits[:, j].sum()),
        )


@dataclass(frozen=True)
class PlanAggregates:
    """:class:`CompiledPlan` fields as (N,) columns for one wire framing.

    The columnar planner (:mod:`repro.core.colplan`) produces these arrays
    directly from trace columns — without per-query plan objects — and both
    engines price them through :func:`_price_framing_into`, so the two
    paths are arithmetically identical by construction.
    """

    proc_cycles: np.ndarray
    proc_energy_j: np.ndarray
    quiet_s: np.ndarray
    idle_wait_s: np.ndarray
    sleep_wait_s: np.ndarray
    tx_bits: np.ndarray
    rx_bits: np.ndarray
    tx_frames: np.ndarray
    rx_frames: np.ndarray
    #: (N, 2) SLEEP-exit counts, column 0 = nic_sleep, column 1 = no-sleep.
    exits2: np.ndarray
    #: (N, 2) exits charged inside ``transmit()``, same column layout.
    txwake2: np.ndarray

    @classmethod
    def from_compiled(cls, compiled: Sequence[CompiledPlan]) -> "PlanAggregates":
        a = lambda attr: np.asarray(  # noqa: E731
            [getattr(c, attr) for c in compiled], dtype=np.float64
        )
        return cls(
            proc_cycles=a("proc_cycles"),
            proc_energy_j=a("proc_energy_j"),
            quiet_s=a("quiet_s"),
            idle_wait_s=a("idle_wait_s"),
            sleep_wait_s=a("sleep_wait_s"),
            tx_bits=a("tx_bits"),
            rx_bits=a("rx_bits"),
            tx_frames=a("tx_frames"),
            rx_frames=a("rx_frames"),
            exits2=np.asarray(
                [[c.n_exits_sleep, c.n_exits_nosleep] for c in compiled],
                dtype=np.float64,
            ),
            txwake2=np.asarray(
                [[c.n_tx_wake_sleep, c.n_tx_wake_nosleep] for c in compiled],
                dtype=np.float64,
            ),
        )


def _empty_grid(plans, policies, compiled, n: int, m: int) -> GridResult:
    """A zero-filled GridResult to be populated per framing group."""
    shape = (n, m)
    z = lambda: np.zeros(shape, dtype=np.float64)  # noqa: E731
    return GridResult(
        plans=plans,
        policies=policies,
        compiled=compiled,
        energy_processor=z(),
        energy_tx=z(),
        energy_rx=z(),
        energy_idle=z(),
        energy_sleep=z(),
        cycles_processor=z(),
        cycles_tx=z(),
        cycles_rx=z(),
        cycles_wait=z(),
        wall_s=z(),
        dwell_tx_s=z(),
        dwell_rx_s=z(),
        dwell_idle_s=z(),
        dwell_sleep_s=z(),
        sleep_exits=np.zeros(shape, dtype=np.int64),
        retx_tx_frames=z(),
        retx_rx_frames=z(),
        backoff_s=z(),
    )


def _price_framing_into(
    grid: GridResult,
    agg: PlanAggregates,
    cols: _PolicyColumns,
    cols_j: Sequence[int],
    clock: float,
    retx_unit,
) -> None:
    """Fill ``grid``'s columns ``cols_j`` from one framing's aggregates.

    This is the whole policy broadcast: every statement below is an exact
    algebraic regrouping of ``price_plan``'s scalar walk (see module
    docstring), so any producer of :class:`PlanAggregates` — compiled plan
    objects or the columnar planner's trace arrays — prices identically.
    """
    j = np.asarray(cols_j, dtype=np.intp)
    bw = cols.bandwidth_bps[j]
    lat = cols.exit_latency_s[j]
    var = cols.variant[j]  # 0 = nic_sleep, 1 = nic idles

    proc_cycles = agg.proc_cycles
    proc_energy = agg.proc_energy_j
    quiet = agg.quiet_s
    idle_wait = agg.idle_wait_s
    sleep_wait = agg.sleep_wait_s
    txb = agg.tx_bits
    rxb = agg.rx_bits
    wait_s = idle_wait + sleep_wait
    exits = agg.exits2[:, var]  # (N, Mf)
    txwake = agg.txwake2[:, var]

    # Lossy-link expectations: retransmitted bits ride the transfer's
    # power state, backoff idles the radio, reprocessing charges the
    # CPU — the exact algebraic regrouping of ``price_plan``'s
    # ``lossy_tail`` (all terms are identically zero at loss_rate=0,
    # preserving ideal-channel results bit for bit).
    r = cols.retx_per_frame[j][None, :]
    bo = cols.backoff_per_frame_s[j][None, :]
    txf = agg.tx_frames
    rxf = agg.rx_frames
    retx_tx_s = txb[:, None] * r / bw[None, :]
    retx_rx_s = rxb[:, None] * r / bw[None, :]
    backoff_s = (txf + rxf)[:, None] * bo
    retx_frames = (txf + rxf)[:, None] * r

    tx_s = txb[:, None] / bw[None, :] + retx_tx_s
    rx_s = rxb[:, None] / bw[None, :] + retx_rx_s
    tx_elapsed = tx_s + txwake * lat[None, :]
    quiet_idle = quiet[:, None] * (var == 1)[None, :]
    quiet_sleep = quiet[:, None] * (var == 0)[None, :]
    idle_s = idle_wait[:, None] + quiet_idle + exits * lat[None, :] + backoff_s
    sleep_s = sleep_wait[:, None] + quiet_sleep
    blocked_s = wait_s[:, None] + tx_elapsed + rx_s + backoff_s

    grid.energy_processor[:, j] = (
        proc_energy[:, None]
        + cols.blocked_power_w[j][None, :] * blocked_s
        + retx_frames * retx_unit.energy_j
    )
    grid.energy_tx[:, j] = cols.tx_power_w[j][None, :] * tx_s
    grid.energy_rx[:, j] = cols.receive_w[j][None, :] * rx_s
    grid.energy_idle[:, j] = cols.idle_w[j][None, :] * idle_s
    grid.energy_sleep[:, j] = cols.sleep_w[j][None, :] * sleep_s
    grid.cycles_processor[:, j] = proc_cycles[:, None] + retx_frames * retx_unit.cycles
    grid.cycles_tx[:, j] = tx_elapsed * clock
    grid.cycles_rx[:, j] = rx_s * clock
    grid.cycles_wait[:, j] = (wait_s[:, None] + backoff_s) * clock
    grid.wall_s[:, j] = tx_s + rx_s + idle_s + sleep_s
    grid.dwell_tx_s[:, j] = tx_s
    grid.dwell_rx_s[:, j] = rx_s
    grid.dwell_idle_s[:, j] = idle_s
    grid.dwell_sleep_s[:, j] = sleep_s
    grid.sleep_exits[:, j] = exits.astype(np.int64)
    grid.retx_tx_frames[:, j] = txf[:, None] * r
    grid.retx_rx_frames[:, j] = rxf[:, None] * r
    grid.backoff_s[:, j] = backoff_s


def _compile_for(
    plans: Sequence[QueryPlan],
    env: Environment,
    network: NetworkConfig,
    cache: Optional[Dict[tuple, Tuple[QueryPlan, CompiledPlan]]] = None,
) -> List[CompiledPlan]:
    """Compile ``plans`` under one framing, reusing ``cache`` when given."""
    key = framing_key(network)
    out = []
    for plan in plans:
        if cache is not None:
            # Key by object identity, but pin the plan in the entry: a
            # bare id() key goes stale once the plan is garbage-collected
            # and CPython hands its address to a different plan.
            ck = (id(plan), key)
            hit = cache.get(ck)
            if hit is None or hit[0] is not plan:
                hit = (plan, compile_plan(plan, env, network))
                cache[ck] = hit
            out.append(hit[1])
        else:
            out.append(compile_plan(plan, env, network))
    return out


def price_grid(
    plans: Sequence[QueryPlan],
    policies: Sequence[Policy],
    env: Environment,
    *,
    compile_cache: Optional[Dict[tuple, Tuple[QueryPlan, CompiledPlan]]] = None,
) -> GridResult:
    """Price the full plans x policies grid in one vectorized pass.

    Matches :func:`repro.core.executor.price_plan` cell-for-cell to float
    tolerance (property-tested).  Policies may mix bandwidths, distances,
    power tables, framings and discipline flags freely; plans are compiled
    once per distinct wire framing.
    """
    plans = list(plans)
    policies = list(policies)
    if not plans:
        raise ValueError("price_grid() requires at least one plan")
    if not policies:
        raise ValueError("price_grid() requires at least one policy")
    n, m = len(plans), len(policies)
    clock = env.client_cpu.clock_hz

    cols = _PolicyColumns.build(policies, env)

    # Static per-plan aggregates, grouped by wire framing.  Columns sharing
    # a framing share one compiled array set.
    by_framing: Dict[tuple, List[int]] = {}
    for j, p in enumerate(policies):
        by_framing.setdefault(framing_key(p.network), []).append(j)

    compiled_ref: List[CompiledPlan] = [None] * n  # type: ignore[list-item]
    grid = _empty_grid(plans, policies, compiled_ref, n, m)

    # Per-frame retransmission protocol unit cost (cycles/joules for one
    # reprocessed frame); linear in the frame count, like the scalar walk's
    # ``client.retx_protocol(extra_frames)``.
    retx_unit = env.client_cpu.retx_protocol(1.0)

    for fkey, cols_j in by_framing.items():
        net = policies[cols_j[0]].network
        compiled = _compile_for(plans, env, net, compile_cache)
        for i, c in enumerate(compiled):
            compiled_ref[i] = c
        agg = PlanAggregates.from_compiled(compiled)
        _price_framing_into(grid, agg, cols, cols_j, clock, retx_unit)

    return grid


def price_workload_grid(
    plans: Sequence[QueryPlan],
    policies: Sequence[Policy],
    env: Environment,
    *,
    compile_cache: Optional[Dict[tuple, Tuple[QueryPlan, CompiledPlan]]] = None,
) -> List[RunResult]:
    """Workload-summed results, one per policy, in policy order.

    The fast path for sweeps: per-plan detail is folded into workload
    aggregates *before* pricing, so M policy points cost O(N + M) rather
    than O(N x M) after compilation.
    """
    grid = price_grid(plans, policies, env, compile_cache=compile_cache)
    return [grid.combine_policy(j) for j in range(len(grid.policies))]


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
def dataset_fingerprint(ds: SegmentDataset) -> str:
    """A content hash of a dataset: geometry, cardinality, cost model.

    Any mutation of the coordinate arrays (or a differently calibrated cost
    model) changes the fingerprint, so cached plans can never be served for
    data they were not planned against.
    """
    h = hashlib.sha1()
    h.update(ds.name.encode())
    h.update(str(ds.size).encode())
    for arr in (ds.x1, ds.y1, ds.x2, ds.y2):
        h.update(np.ascontiguousarray(arr).tobytes())
    h.update(repr(ds.costs).encode())
    return h.hexdigest()


def workload_key(queries: Sequence[Query]) -> Tuple[tuple, ...]:
    """A hashable key for an ordered query sequence.

    Plans within a workload are order-dependent (the client D-cache warms
    across queries, as it does on the device), so the cache unit is the
    whole ordered workload, not the single query.  Each element is the
    query's explicit field tuple (:func:`repro.core.queries.query_key`) —
    kind tag plus coordinates — rather than a ``repr`` string, so the key
    survives cosmetic ``__repr__`` changes and never conflates queries whose
    floats print alike.
    """
    return tuple(query_key(q) for q in queries)


def scheme_key(config: SchemeConfig) -> Tuple[str, bool]:
    """A hashable key for a scheme configuration."""
    return (config.scheme.value, config.data_at_client)


class PlanCache:
    """LRU cache of planned workloads.

    Keyed on (dataset fingerprint, ordered workload, scheme): the exact
    inputs that determine a plan list.  Hit/miss counts feed the run-ledger
    (``plan`` events carry the rates).
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: Dict[tuple, List[QueryPlan]] = {}
        self._order: List[tuple] = []
        self.hits = 0
        self.misses = 0

    def _key(
        self, fingerprint: str, queries: Sequence[Query], config: SchemeConfig
    ) -> tuple:
        return (fingerprint, workload_key(queries), scheme_key(config))

    def get(
        self, fingerprint: str, queries: Sequence[Query], config: SchemeConfig
    ) -> Optional[List[QueryPlan]]:
        """The cached plan list, or None (counts a hit/miss either way)."""
        key = self._key(fingerprint, queries, config)
        plans = self._entries.get(key)
        if plans is None:
            self.misses += 1
            return None
        self.hits += 1
        self._order.remove(key)
        self._order.append(key)
        return plans

    def put(
        self,
        fingerprint: str,
        queries: Sequence[Query],
        config: SchemeConfig,
        plans: List[QueryPlan],
    ) -> None:
        """Store a planned workload, evicting the least recently used."""
        key = self._key(fingerprint, queries, config)
        if key not in self._entries:
            self._order.append(key)
        self._entries[key] = plans
        while len(self._order) > self.max_entries:
            evicted = self._order.pop(0)
            del self._entries[evicted]

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when never consulted)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


# ----------------------------------------------------------------------
# Multiprocessing plan fan-out
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanRequest:
    """One dataset's planning job: every (query, scheme) of its workload."""

    dataset: SegmentDataset
    queries: Tuple[Query, ...]
    configs: Tuple[SchemeConfig, ...]


def _plan_one_request(req: PlanRequest) -> Dict[str, List[QueryPlan]]:
    """Build an environment and plan every scheme of one request.

    Runs in a worker process under :func:`plan_requests`; the expensive
    parts (R-tree build, engine runs, D-cache replay) all happen here, and
    only the (picklable) plans travel back.
    """
    env = Environment.create(req.dataset)
    queries = list(req.queries)
    configs = list(req.configs)
    planned = plan_workload_batched(env, queries, configs)
    return {
        config.label: plans for config, plans in zip(configs, planned)
    }


def plan_requests(
    requests: Sequence[PlanRequest], processes: Optional[int] = None
) -> List[Dict[str, List[QueryPlan]]]:
    """Plan several datasets' workloads, fanning out across processes.

    ``processes=None`` or ``<= 1`` plans serially in-process (bit-identical
    to the fan-out — workers run the same code on the same inputs).  With
    more, a ``fork`` pool (falling back to the platform default start
    method) maps one worker per request.
    """
    reqs = list(requests)
    if processes is None or processes <= 1 or len(reqs) <= 1:
        return [_plan_one_request(r) for r in reqs]
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ctx.Pool(processes=min(processes, len(reqs))) as pool:
        return pool.map(_plan_one_request, reqs)


# ----------------------------------------------------------------------
# Run ledger
# ----------------------------------------------------------------------
class RunLedger:
    """Structured JSON-lines record of a pricing run.

    Every event is one JSON object per line with at least ``event`` (the
    type) and ``t`` (seconds since the ledger was opened).  Event types
    written by the runtime:

    ``plan``
        One workload planned: ``dataset``, ``scheme``, ``n_queries``,
        ``seconds``, ``cache_hit``, ``cache_hits``, ``cache_misses``,
        ``cache_hit_rate``.  When the environment carries a shard store
        (:class:`repro.core.shardstore.ShardStore`) additionally the
        per-call residency window: ``shards_total``, ``shards_touched``,
        ``shards_pruned``, ``shards_resident``, ``shard_loads``,
        ``shard_evictions``, ``shard_spills``.
    ``price``
        One grid priced: ``engine`` (batched/scalar), ``n_plans``,
        ``n_policies``, ``seconds``.
    ``run``
        One (scheme, policy) cell's totals: ``scheme``, ``bandwidth_mbps``,
        ``distance_m``, ``energy_j`` (per bucket), ``cycles`` (per bucket),
        ``wall_seconds``, ``nic`` (per-state seconds/joules + sleep exits
        from :class:`NICDwell`), ``ops`` (candidates/results/messages).
        On a lossy link (``loss_rate > 0``) additionally ``loss_rate`` and
        ``loss`` (retransmitted frames per direction + backoff dwell from
        :class:`repro.sim.metrics.LossStats`); ideal-channel records keep
        their pre-loss shape exactly.
    ``semcache``
        Semantic candidate-cache state after a planning pass (written when
        an :class:`~repro.api.Engine` has a ``semantic_cache``):
        ``dataset`` plus the cache's ``stats_dict()`` — ``entries``,
        ``capacity``, ``payload_bytes``, ``hits``, ``refines``,
        ``misses``, ``hit_rate``, ``insertions``, ``evictions``,
        ``pinned_buckets``, ``nodes_visited``, ``refine_tests``,
        ``served_candidates``.
    ``bench`` / ``speedup`` / ``note``
        Free-form timings written by the CLI and the benches.

    Use as a context manager, or call :meth:`close` explicitly when backed
    by a path.  All records also stay in memory (:attr:`records`) so tests
    and summaries can read them without re-parsing the file.
    """

    def __init__(
        self, path: Optional[str] = None, stream: Optional[IO[str]] = None
    ) -> None:
        self.path = path
        self._stream = stream
        self._owns_stream = False
        if path is not None and stream is None:
            self._stream = open(path, "a", encoding="utf-8")
            self._owns_stream = True
        self._t0 = time.perf_counter()
        self.records: List[dict] = []

    # ------------------------------------------------------------------
    def record(self, event: str, **fields) -> dict:
        """Append one event; returns the record (also kept in memory)."""
        rec = {"event": event, "t": round(time.perf_counter() - self._t0, 6)}
        rec.update(fields)
        self.records.append(rec)
        if self._stream is not None:
            self._stream.write(json.dumps(rec) + "\n")
            self._stream.flush()
        return rec

    @contextmanager
    def timed(self, event: str, **fields):
        """Time a block and record it with its ``seconds``.

        Yields a dict the block may add fields to before the write.
        """
        extra: dict = {}
        start = time.perf_counter()
        try:
            yield extra
        finally:
            fields.update(extra)
            self.record(event, seconds=time.perf_counter() - start, **fields)

    def close(self) -> None:
        """Flush and close the backing stream (if this ledger opened it)."""
        if self._stream is not None and self._owns_stream:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_ledger(path: str) -> List[dict]:
    """Parse a JSON-lines ledger file back into event records."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
