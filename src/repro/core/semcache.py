"""Cross-query semantic candidate cache with containment/overlap algebra.

:class:`~repro.core.batchplan.PhaseDataCache` only dedups *byte-identical*
queries: two viewport windows that overlap by 99% still re-traverse the
R-tree from the root.  This module caches **filtering results keyed on
query structure** — each entry is a window rectangle plus the exact
candidate set its traversal produced — and serves later windows from
spatial relationships instead of identity:

``hit``
    The window was cached verbatim; its candidate set is returned as-is.
``refine`` (containment)
    The window is contained in one or more cached windows.  Because a
    traversal's candidate set is exactly ``{entries whose MBR intersects
    the window}`` — node MBRs bound their descendants, so the tree prunes
    nothing that intersects — the contained window's candidates are
    recoverable with one bulk MBR pass over the cached set, no traversal.
    With two containing windows the two candidate sets are intersected
    first (set algebra on packed entry positions), shrinking the tested
    set.
``refine`` (cover)
    The window is covered by the union of cached windows that each span
    its full extent on one axis (a greedy interval cover on the other
    axis, capped at :data:`MAX_UNION_SOURCES` sources).  The union of
    their candidate sets is a superset of the window's candidates, so the
    same bulk MBR pass is exact.
``miss``
    No algebraic route exists; the window traverses the tree normally and
    its result is inserted.

**Exactness.**  Candidate sets are stored as *packed entry positions* in
ascending order — the scalar DFS leaf-scan order
(:class:`~repro.spatial.batchtraverse.BatchFilterResult`) — and every set
operation (intersect, union, refine mask) preserves that order, so a
served candidate array is **bit-identical** to what a fresh traversal
would return: same ids, same order, hence bit-identical answers after
refinement.  What changes is the *filter phase accounting*: the cached
payload is a packed array ordered by entry position, so a hit scans
``nc`` packed result ids sequentially (zero node visits, zero MBR
tests); a refine performs ``|tested set|`` MBR tests against the packed
candidate records — one sequential pass, zero node visits; a miss is
charged exactly as the uncached planner charges it.  Packed-position
addressing is what makes a served lookup cheaper than the traversal it
replaces: the touches coalesce into dense cache lines instead of the
scattered node reads of a root-to-leaf walk.
The differential oracles (:mod:`tests.integration.oracles`) pin all of
this against the uncached planner and the scalar semantic twin.

**Eviction and pinning.**  Capacity is measured in *entries* and enforced
by LRU — but windows whose Hilbert key bucket (the key of the window
center on the dataset's :func:`~repro.spatial.hilbert` curve, truncated to
``pin_bucket_bits``) has served at least ``pin_hits`` lookups are *hot*
and skipped by eviction, so a drifting workload's hot region stays
resident.  All cache decisions — verdicts, source selection, LRU motion,
eviction, pinning — are functions of window **geometry and order only**
(never of candidate payloads), which is what makes the cache's behaviour
independent of micro-batch boundaries: serving queries one at a time and
serving them 64 at a time produce the same verdict sequence and the same
final cache, a property the serve suite asserts.

:class:`NaiveSemanticCache` is the pure-Python reference for the decision
layer (linear scans, no NumPy); the hypothesis suite pins the vectorized
cache's verdicts, source choices, and eviction order against it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batchplan import (
    CacheGeometry,
    PhaseDataCache,
    PhaseTrace,
    QueryPhases,
    _assemble_plan,
    _counts,
    _phases_with_filter,
    _pr_phases,
    _query_phase_slots,
    compute_query_phases,
)
from repro.core.executor import Environment, QueryPlan
from repro.core.gridrun import dataset_fingerprint
from repro.core.queries import Query, QueryKind, RangeQuery, query_key
from repro.core.schemes import SchemeConfig
from repro.sim.trace import REGION_RESULT
from repro.spatial import vecgeom
from repro.spatial.batchtraverse import batch_filter
from repro.spatial.hilbert import DEFAULT_ORDER, xy_to_d

__all__ = [
    "SemanticCache",
    "NaiveSemanticCache",
    "CacheEntry",
    "SEMCACHE_VERDICTS",
    "MAX_UNION_SOURCES",
    "compute_query_phases_semantic",
    "plan_query_semantic",
    "intersect_candidates",
    "union_candidates",
]

#: Verdicts a semantic lookup can produce, in decreasing reuse order.
SEMCACHE_VERDICTS = ("hit", "refine", "miss")

#: Cap on the number of cached windows a union cover may stitch together —
#: beyond this the union's tested set usually exceeds a traversal's cost.
MAX_UNION_SOURCES = 8

#: Ledger accounting: bytes per cached candidate (position + id, both
#: int64) and fixed per-entry overhead (rect, bucket, bookkeeping).
_BYTES_PER_CANDIDATE = 16
_ENTRY_OVERHEAD_BYTES = 96

#: Refine-time block pruning: cached candidates are packed in ascending
#: entry-position order, and the R-tree is Hilbert-packed, so runs of
#: consecutive candidates are spatially clustered.  Each cached entry
#: lazily builds one bounding box per ``_BLOCK`` candidates; a refine
#: tests blocks first and only descends into blocks whose box intersects
#: the window — exact (a block box bounds every member MBR) and it keeps
#: the tested set near the window's own candidate count instead of the
#: source's.
_BLOCK = 64
_BYTES_PER_BLOCK = 32
_EMPTY_POS = np.empty(0, dtype=np.int64)


def _rect_of(q: Query) -> Tuple[float, float, float, float]:
    """A query's filter window; a point query is its degenerate window."""
    if isinstance(q, RangeQuery):
        r = q.rect
        return (float(r.xmin), float(r.ymin), float(r.xmax), float(r.ymax))
    return (float(q.x), float(q.y), float(q.x), float(q.y))


def _hilbert_bucket(
    rect: Tuple[float, float, float, float], extent, bits: int
) -> int:
    """Hilbert key bucket of a window's center on the dataset extent."""
    if extent is None or extent.width <= 0 or extent.height <= 0:
        return 0
    cx = 0.5 * (rect[0] + rect[2])
    cy = 0.5 * (rect[1] + rect[3])
    nf = float(1 << DEFAULT_ORDER)
    gx = int(min(max((cx - extent.xmin) / extent.width * nf, 0.0), nf - 1.0))
    gy = int(min(max((cy - extent.ymin) / extent.height * nf, 0.0), nf - 1.0))
    return xy_to_d(DEFAULT_ORDER, gx, gy) >> (2 * DEFAULT_ORDER - bits)


def intersect_candidates(
    pos_a: np.ndarray, ids_a: np.ndarray, pos_b: np.ndarray, ids_b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Set intersection of two candidate sets, keyed on packed positions.

    Both inputs are ascending (traversal order); the output is too, so the
    intersected set still matches a fresh traversal's candidate order.
    """
    common, ia, _ib = np.intersect1d(
        pos_a, pos_b, assume_unique=True, return_indices=True
    )
    return common, ids_a[ia]


def union_candidates(
    parts: Sequence[Tuple[np.ndarray, np.ndarray]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Set union of candidate sets, keyed on packed positions (ascending)."""
    pos = np.concatenate([p for p, _ in parts])
    ids = np.concatenate([i for _, i in parts])
    upos, first = np.unique(pos, return_index=True)
    return upos, ids[first]


class CacheEntry:
    """One cached window: its rect plus the traversal's candidate set.

    ``positions`` are packed entry positions ascending (scalar leaf-scan
    order) and ``ids`` the aligned segment ids; both stay ``None`` while a
    just-inserted window's traversal is still pending within a batch.
    ``blocks`` is the lazily-built per-:data:`_BLOCK` bounding-box summary
    a refine consults to prune the tested set (never mutated once built,
    so copies may share it).
    """

    __slots__ = ("rect", "positions", "ids", "bucket", "seq", "blocks")

    def __init__(
        self,
        rect: Tuple[float, float, float, float],
        positions: Optional[np.ndarray] = None,
        ids: Optional[np.ndarray] = None,
    ) -> None:
        self.rect = rect
        self.positions = positions
        self.ids = ids
        self.bucket = 0
        self.seq = -1
        self.blocks = None

    def copy(self) -> "CacheEntry":
        e = CacheEntry(self.rect, self.positions, self.ids)
        e.bucket = self.bucket
        e.seq = self.seq
        e.blocks = self.blocks
        return e

    @property
    def nbytes(self) -> int:
        n = 0 if self.positions is None else int(self.positions.size)
        return _ENTRY_OVERHEAD_BYTES + _BYTES_PER_CANDIDATE * n


class SemanticCache:
    """The vectorized cross-query candidate cache (see module docstring).

    ``capacity`` bounds the entry count (0 disables the cache: every lookup
    misses and nothing is stored).  ``pin_bucket_bits`` sets the Hilbert
    bucket granularity (``2**bits`` buckets over the curve) and ``pin_hits``
    the serve count at which a bucket becomes hot (pinned against LRU
    eviction).  The cache lazily binds to the first dataset it serves (by
    content fingerprint) and refuses any other.
    """

    def __init__(
        self,
        capacity: int = 4096,
        *,
        pin_bucket_bits: int = 6,
        pin_hits: int = 4,
        extent=None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if not (0 <= pin_bucket_bits <= 2 * DEFAULT_ORDER):
            raise ValueError(
                f"pin_bucket_bits must be in [0, {2 * DEFAULT_ORDER}], "
                f"got {pin_bucket_bits}"
            )
        if pin_hits < 1:
            raise ValueError(f"pin_hits must be >= 1, got {pin_hits}")
        self.capacity = capacity
        self.pin_bucket_bits = pin_bucket_bits
        self.pin_hits = pin_hits
        self.extent = extent
        self.fingerprint: Optional[str] = None
        self._ds_id: Optional[int] = None
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self._seq = 0
        self._bucket_hits: Dict[int, int] = {}
        self._hot: set = set()
        # Lazily rebuilt window matrix for the vectorized geometry tests.
        self._dirty = True
        self._W: Optional[np.ndarray] = None
        self._seqs: Optional[np.ndarray] = None
        self._keys: List[tuple] = []
        # Statistics (the ledger's ``semcache`` event payload).
        self.hits = 0
        self.refines = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.nodes_visited = 0
        self.refine_tests = 0
        self.served_candidates = 0

    # ------------------------------------------------------------------
    def bind(self, dataset) -> None:
        """Bind to (or verify against) a dataset by content fingerprint."""
        if self._ds_id == id(dataset):
            return
        fp = dataset_fingerprint(dataset)
        if self.fingerprint is None:
            self.fingerprint = fp
        elif fp != self.fingerprint:
            raise ValueError(
                "SemanticCache is bound to a different dataset "
                f"(fingerprint {self.fingerprint[:12]}... != {fp[:12]}...)"
            )
        self._ds_id = id(dataset)
        if self.extent is None:
            self.extent = dataset.extent

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, key: tuple) -> CacheEntry:
        """The live entry for ``key`` (must be present)."""
        return self._entries[key]

    @property
    def lookups(self) -> int:
        """Total serve calls so far."""
        return self.hits + self.refines + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (hit or refine)."""
        total = self.lookups
        return (self.hits + self.refines) / total if total else 0.0

    @property
    def payload_bytes(self) -> int:
        """Resident candidate-array bytes (the ledger's capacity charge)."""
        return sum(e.nbytes for e in self._entries.values())

    @property
    def pinned_buckets(self) -> int:
        """How many Hilbert buckets are currently hot (pinned)."""
        return len(self._hot)

    def stats_dict(self) -> dict:
        """Statistics snapshot (the ledger ``semcache`` event payload)."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "payload_bytes": self.payload_bytes,
            "hits": self.hits,
            "refines": self.refines,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "pinned_buckets": self.pinned_buckets,
            "nodes_visited": self.nodes_visited,
            "refine_tests": self.refine_tests,
            "served_candidates": self.served_candidates,
        }

    def clone(self) -> "SemanticCache":
        """A deep copy (entries, recency order, pin state, statistics)."""
        c = SemanticCache(
            self.capacity,
            pin_bucket_bits=self.pin_bucket_bits,
            pin_hits=self.pin_hits,
            extent=self.extent,
        )
        c.fingerprint = self.fingerprint
        c._ds_id = self._ds_id
        for k, e in self._entries.items():
            c._entries[k] = e.copy()
        c._seq = self._seq
        c._bucket_hits = dict(self._bucket_hits)
        c._hot = set(self._hot)
        c.hits, c.refines, c.misses = self.hits, self.refines, self.misses
        c.insertions, c.evictions = self.insertions, self.evictions
        c.nodes_visited = self.nodes_visited
        c.refine_tests = self.refine_tests
        c.served_candidates = self.served_candidates
        return c

    # ------------------------------------------------------------------
    def _matrix(self) -> Tuple[np.ndarray, np.ndarray, List[tuple]]:
        if self._dirty:
            self._keys = list(self._entries.keys())
            self._W = (
                np.array(self._keys, dtype=np.float64)
                if self._keys
                else np.empty((0, 4), dtype=np.float64)
            )
            self._seqs = np.array(
                [self._entries[k].seq for k in self._keys], dtype=np.int64
            )
            self._dirty = False
        return self._W, self._seqs, self._keys

    def match(
        self, rect: Tuple[float, float, float, float]
    ) -> Tuple[str, str, Tuple[tuple, ...]]:
        """Geometry-only lookup: ``(verdict, mode, source keys)``.

        ``mode`` is ``"exact"`` (hit), ``"contain"`` (refine from one or
        two containing windows; two means intersect-then-mask), or
        ``"cover"`` (refine from a union interval cover).  Does not mutate
        the cache.
        """
        if rect in self._entries:
            return "hit", "exact", (rect,)
        if not self._entries:
            return "miss", "", ()
        W, seqs, keys = self._matrix()
        xmin, ymin, xmax, ymax = rect
        contains = (
            (W[:, 0] <= xmin)
            & (W[:, 1] <= ymin)
            & (W[:, 2] >= xmax)
            & (W[:, 3] >= ymax)
        )
        if contains.any():
            idx = np.nonzero(contains)[0]
            areas = (W[idx, 2] - W[idx, 0]) * (W[idx, 3] - W[idx, 1])
            order = np.lexsort((seqs[idx], areas))
            chosen = idx[order[:2]]
            return "refine", "contain", tuple(keys[int(j)] for j in chosen)
        cover = self._slab_cover(W, seqs, keys, rect, transpose=False)
        if cover is None:
            cover = self._slab_cover(W, seqs, keys, rect, transpose=True)
        if cover is not None:
            return "refine", "cover", cover
        return "miss", "", ()

    def _slab_cover(
        self,
        W: np.ndarray,
        seqs: np.ndarray,
        keys: List[tuple],
        rect: Tuple[float, float, float, float],
        *,
        transpose: bool,
    ) -> Optional[Tuple[tuple, ...]]:
        """Greedy union cover: cached windows spanning the window's full
        extent on one axis whose intervals cover it on the other."""
        xmin, ymin, xmax, ymax = rect
        if transpose:
            xmin, ymin, xmax, ymax = ymin, xmin, ymax, xmax
            a0, a1, b0, b1 = 1, 0, 3, 2
        else:
            a0, a1, b0, b1 = 0, 1, 2, 3
        spans = (
            (W[:, a1] <= ymin)
            & (W[:, b1] >= ymax)
            & (W[:, a0] <= xmax)
            & (W[:, b0] >= xmin)
        )
        idx = np.nonzero(spans)[0]
        if idx.size == 0:
            return None
        starts = W[idx, a0]
        ends = W[idx, b0]
        order = np.lexsort((seqs[idx], -ends, starts))
        starts, ends, idx = starts[order], ends[order], idx[order]
        chosen: List[int] = []
        covered = xmin
        i, n = 0, starts.size
        while covered < xmax:
            best = -1
            best_end = covered
            while i < n and starts[i] <= covered:
                if ends[i] > best_end:
                    best_end = float(ends[i])
                    best = i
                i += 1
            if best < 0:
                return None
            chosen.append(best)
            covered = best_end
            if len(chosen) > MAX_UNION_SOURCES:
                return None
        if not chosen:
            return None
        return tuple(keys[int(idx[j])] for j in chosen)

    def serve(
        self, rect: Tuple[float, float, float, float]
    ) -> Tuple[str, str, Tuple[tuple, ...]]:
        """One lookup: :meth:`match` plus statistics, LRU, and pin updates."""
        verdict, mode, keys = self.match(rect)
        if verdict == "hit":
            self.hits += 1
        elif verdict == "refine":
            self.refines += 1
        else:
            self.misses += 1
        for k in keys:
            self._entries.move_to_end(k)
        if verdict != "miss":
            b = _hilbert_bucket(rect, self.extent, self.pin_bucket_bits)
            count = self._bucket_hits.get(b, 0) + 1
            self._bucket_hits[b] = count
            if count >= self.pin_hits:
                self._hot.add(b)
        return verdict, mode, keys

    def insert(
        self, rect: Tuple[float, float, float, float], entry: CacheEntry
    ) -> bool:
        """Insert a (possibly payload-pending) entry; evict to capacity."""
        if self.capacity <= 0:
            return False
        if rect in self._entries:
            self._entries.move_to_end(rect)
            return False
        entry.bucket = _hilbert_bucket(rect, self.extent, self.pin_bucket_bits)
        entry.seq = self._seq
        self._seq += 1
        self._entries[rect] = entry
        self.insertions += 1
        self._dirty = True
        while len(self._entries) > self.capacity:
            self._evict_one()
        return True

    def _evict_one(self) -> None:
        """Drop the LRU entry, skipping hot (pinned) Hilbert buckets."""
        victim = None
        for k, e in self._entries.items():
            if e.bucket not in self._hot:
                victim = k
                break
        if victim is None:
            # Everything is pinned: the capacity bound still holds.
            victim = next(iter(self._entries))
        del self._entries[victim]
        self.evictions += 1
        self._dirty = True


class NaiveSemanticCache:
    """Pure-Python reference for the cache's *decision* layer.

    Same verdicts, source choices, recency motion, insertion and eviction
    order as :class:`SemanticCache` — implemented with linear scans over a
    recency-ordered list, no NumPy.  Stores window geometry only (the
    candidate-set algebra is pinned separately against brute-force set
    ops); the hypothesis suite drives both caches with identical
    serve/insert sequences and asserts identical behaviour.
    """

    def __init__(
        self,
        capacity: int = 4096,
        *,
        pin_bucket_bits: int = 6,
        pin_hits: int = 4,
        extent=None,
    ) -> None:
        self.capacity = capacity
        self.pin_bucket_bits = pin_bucket_bits
        self.pin_hits = pin_hits
        self.extent = extent
        # (rect, seq, bucket), LRU first / MRU last.
        self._entries: List[Tuple[tuple, int, int]] = []
        self._seq = 0
        self._bucket_hits: Dict[int, int] = {}
        self._hot: set = set()

    def rects(self) -> List[tuple]:
        """Entry rects in recency order (LRU first)."""
        return [rect for rect, _seq, _b in self._entries]

    def match(self, rect) -> Tuple[str, str, Tuple[tuple, ...]]:
        for r, _seq, _b in self._entries:
            if r == rect:
                return "hit", "exact", (rect,)
        if not self._entries:
            return "miss", "", ()
        xmin, ymin, xmax, ymax = rect
        containing = []
        for r, seq, _b in self._entries:
            if r[0] <= xmin and r[1] <= ymin and r[2] >= xmax and r[3] >= ymax:
                area = (r[2] - r[0]) * (r[3] - r[1])
                containing.append((area, seq, r))
        if containing:
            containing.sort(key=lambda t: (t[0], t[1]))
            return "refine", "contain", tuple(r for _a, _s, r in containing[:2])
        cover = self._cover(rect, transpose=False)
        if cover is None:
            cover = self._cover(rect, transpose=True)
        if cover is not None:
            return "refine", "cover", cover
        return "miss", "", ()

    def _cover(self, rect, *, transpose: bool) -> Optional[Tuple[tuple, ...]]:
        xmin, ymin, xmax, ymax = rect
        if transpose:
            xmin, ymin, xmax, ymax = ymin, xmin, ymax, xmax
        spanning = []
        for r, seq, _b in self._entries:
            lo = (r[1], r[0], r[3], r[2]) if transpose else r
            if (
                lo[1] <= ymin
                and lo[3] >= ymax
                and lo[0] <= xmax
                and lo[2] >= xmin
            ):
                spanning.append((lo[0], -lo[2], seq, r))
        if not spanning:
            return None
        spanning.sort()
        chosen: List[tuple] = []
        covered = xmin
        i, n = 0, len(spanning)
        while covered < xmax:
            best = None
            best_end = covered
            while i < n and spanning[i][0] <= covered:
                end = -spanning[i][1]
                if end > best_end:
                    best_end = end
                    best = spanning[i][3]
                i += 1
            if best is None:
                return None
            chosen.append(best)
            covered = best_end
            if len(chosen) > MAX_UNION_SOURCES:
                return None
        return tuple(chosen) if chosen else None

    def serve(self, rect) -> Tuple[str, str, Tuple[tuple, ...]]:
        verdict, mode, keys = self.match(rect)
        for k in keys:
            for pos, (r, seq, b) in enumerate(self._entries):
                if r == k:
                    self._entries.append(self._entries.pop(pos))
                    break
        if verdict != "miss":
            b = _hilbert_bucket(rect, self.extent, self.pin_bucket_bits)
            count = self._bucket_hits.get(b, 0) + 1
            self._bucket_hits[b] = count
            if count >= self.pin_hits:
                self._hot.add(b)
        return verdict, mode, keys

    def insert(self, rect) -> bool:
        if self.capacity <= 0:
            return False
        for pos, (r, _seq, _b) in enumerate(self._entries):
            if r == rect:
                self._entries.append(self._entries.pop(pos))
                return False
        bucket = _hilbert_bucket(rect, self.extent, self.pin_bucket_bits)
        self._entries.append((rect, self._seq, bucket))
        self._seq += 1
        while len(self._entries) > self.capacity:
            victim = None
            for pos, (_r, _seq, b) in enumerate(self._entries):
                if b not in self._hot:
                    victim = pos
                    break
            self._entries.pop(victim if victim is not None else 0)
        return True


# ----------------------------------------------------------------------
# Semantic phase computation
# ----------------------------------------------------------------------
def _pruned_source(
    src, entry: CacheEntry, rect: Tuple[float, float, float, float]
) -> Tuple[np.ndarray, np.ndarray, int, np.ndarray]:
    """Exact block-pruned superset of ``entry``'s candidates inside ``rect``.

    Returns ``(positions, ids, blocks_tested, block_positions)``.  A block
    box bounds every member entry's MBR, so dropping non-intersecting
    blocks can never drop a candidate of ``rect`` — the survivor set is
    still a superset that the leaf predicate then masks exactly.  Sources
    at or below one block are returned whole (no pruning pass to charge).

    ``src`` is the traversal source — the packed tree or a shard store —
    consumed through the shared ``entry_mbrs`` gather, whose values are
    bit-identical either way.
    """
    P, I = entry.positions, entry.ids
    n = int(P.size)
    if n <= _BLOCK:
        return P, I, 0, _EMPTY_POS
    if entry.blocks is None:
        starts = np.arange(0, n, _BLOCK, dtype=np.int64)
        ex0, ey0, ex1, ey1 = src.entry_mbrs(P)
        entry.blocks = (
            P[starts],
            np.minimum.reduceat(ex0, starts),
            np.minimum.reduceat(ey0, starts),
            np.maximum.reduceat(ex1, starts),
            np.maximum.reduceat(ey1, starts),
        )
    bpos, bx0, by0, bx1, by1 = entry.blocks
    xmin, ymin, xmax, ymax = rect
    hit = (bx0 <= xmax) & (bx1 >= xmin) & (by0 <= ymax) & (by1 >= ymin)
    nb = int(hit.size)
    if hit.all():
        return P, I, nb, bpos
    sizes = np.full(nb, _BLOCK, dtype=np.int64)
    sizes[-1] = n - _BLOCK * (nb - 1)
    mask = np.repeat(hit, sizes)
    return P[mask], I[mask], nb, bpos


def _window_mask(
    src, positions: np.ndarray, rect: Tuple[float, float, float, float]
) -> np.ndarray:
    """The traversal's leaf-entry predicate over packed positions.

    Term for term the test :func:`~repro.spatial.batchtraverse.batch_filter`
    applies at the leaf frontier, so masking a candidate superset with it
    reproduces a fresh traversal's candidate set exactly.  ``src`` is the
    packed tree or a shard store (same ``entry_mbrs`` values either way).
    """
    xmin, ymin, xmax, ymax = rect
    ex0, ey0, ex1, ey1 = src.entry_mbrs(positions)
    return (ex0 <= xmax) & (ex1 >= xmin) & (ey0 <= ymax) & (ey1 >= ymin)


def compute_query_phases_semantic(
    env: Environment,
    queries: Sequence[Query],
    cache: SemanticCache,
    phase_cache: Optional[PhaseDataCache] = None,
) -> Tuple[List[QueryPhases], List[str]]:
    """Phase data for every query, consulting the semantic cache.

    The semantic twin of :func:`~repro.core.batchplan.compute_query_phases`
    for point/range queries (NN/k-NN queries are placement- and
    cache-independent and route through the ordinary batched path, via
    ``phase_cache``).  Sequential semantics: each query's lookup sees every
    earlier query's insertion, including within this call — which is what
    makes the result independent of how a workload is split into batches.
    Returns ``(phases, verdicts)`` with one verdict per query
    (:data:`SEMCACHE_VERDICTS` for point/range, ``""`` for NN).

    Answers are bit-identical to the uncached path always; hits and
    refines differ only in their filter-phase accounting (see the module
    docstring), and misses are charged identically to the uncached
    planner.
    """
    cache.bind(env.dataset)
    ds = env.dataset
    tree = env.tree
    store = getattr(env, "shard_store", None)
    src = tree if store is None else store
    costs = ds.costs
    n = len(queries)
    out: List[Optional[QueryPhases]] = [None] * n
    verdicts = [""] * n
    nn_idx = [
        i for i, q in enumerate(queries)
        if q.kind is QueryKind.NEAREST_NEIGHBOR
    ]
    if nn_idx:
        nn_phases = compute_query_phases(
            env, [queries[i] for i in nn_idx], phase_cache
        )
        for i, qp in zip(nn_idx, nn_phases):
            out[i] = qp
    pr_idx = [i for i in range(n) if out[i] is None]
    if not pr_idx:
        return out, verdicts  # type: ignore[return-value]

    # Pass 1 — sequential, geometry-only cache decisions (verdict, source
    # capture, LRU/pin/eviction simulation).  Source entries are captured
    # by reference here: later evictions cannot invalidate them.
    pend: List[tuple] = []
    miss_j: List[int] = []
    for j, i in enumerate(pr_idx):
        rect = _rect_of(queries[i])
        verdict, mode, keys = cache.serve(rect)
        verdicts[i] = verdict
        sources = [cache.entry(k) for k in keys]
        if verdict == "hit":
            own = sources[0]
        else:
            own = CacheEntry(rect)
            cache.insert(rect, own)
            if verdict == "miss":
                miss_j.append(j)
        pend.append((rect, verdict, mode, sources, own))

    # Pass 2 — one batched traversal over the misses only.
    node_bytes = src.node_bytes_array()
    trav = None
    miss_rank: Dict[int, int] = {}
    if miss_j:
        arr = np.array([pend[j][0] for j in miss_j], dtype=np.float64)
        trav = (
            batch_filter(tree, arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])
            if store is None
            else store.batch_filter(arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])
        )
        cache.nodes_visited += int(trav.visited.size)
        for t, j in enumerate(miss_j):
            miss_rank[j] = t
            own = pend[j][4]
            o0, o1 = int(trav.cand_offsets[t]), int(trav.cand_offsets[t + 1])
            own.positions = trav.cand_positions[o0:o1]
            own.ids = trav.cand_ids[o0:o1]

    # Pass 3 — resolve served payloads in sequence order (a refine's
    # sources were filled by pass 2 or by an earlier iteration here).
    tested: List[Optional[Tuple[np.ndarray, int, np.ndarray]]] = (
        [None] * len(pend)
    )
    for j, (rect, verdict, mode, sources, own) in enumerate(pend):
        if verdict != "refine":
            continue
        pruned = [_pruned_source(src, s, rect) for s in sources]
        n_blocks = sum(p[2] for p in pruned)
        block_pos = np.concatenate([p[3] for p in pruned])
        if mode == "contain" and len(sources) == 2:
            P, I = intersect_candidates(
                pruned[0][0], pruned[0][1], pruned[1][0], pruned[1][1]
            )
        elif mode == "cover":
            P, I = union_candidates([(p[0], p[1]) for p in pruned])
        else:
            P, I = pruned[0][0], pruned[0][1]
        keep = _window_mask(src, P, rect)
        own.positions = P[keep]
        own.ids = I[keep]
        tested[j] = (P, n_blocks, block_pos)
        cache.refine_tests += n_blocks + int(P.size)

    # Pass 4 — one bulk answer refinement, mirroring the uncached
    # ``_compute_phases`` element for element (point eps applies here).
    m = len(pr_idx)
    qx0 = np.empty(m)
    qy0 = np.empty(m)
    qx1 = np.empty(m)
    qy1 = np.empty(m)
    is_range = np.zeros(m, dtype=bool)
    px = np.zeros(m)
    py = np.zeros(m)
    eps = np.zeros(m)
    for j, i in enumerate(pr_idx):
        q = queries[i]
        if isinstance(q, RangeQuery):
            r = q.rect
            qx0[j], qy0[j], qx1[j], qy1[j] = r.xmin, r.ymin, r.xmax, r.ymax
            is_range[j] = True
        else:
            qx0[j] = qx1[j] = px[j] = q.x
            qy0[j] = qy1[j] = py[j] = q.y
            eps[j] = q.eps
    cand_list = [pend[j][4].ids for j in range(m)]
    cand = (
        np.concatenate(cand_list) if cand_list else np.empty(0, dtype=np.int64)
    )
    counts = np.array([c.size for c in cand_list], dtype=np.int64)
    rq = np.repeat(np.arange(m, dtype=np.int64), counts)
    x1 = ds.x1[cand]
    y1 = ds.y1[cand]
    x2 = ds.x2[cand]
    y2 = ds.y2[cand]
    mask = np.zeros(cand.size, dtype=bool)
    range_rows = is_range[rq]
    if np.any(range_rows):
        sel = np.nonzero(range_rows)[0]
        qq = rq[sel]
        mask[sel] = vecgeom.segments_intersect_rects(
            x1[sel], y1[sel], x2[sel], y2[sel],
            qx0[qq], qy0[qq], qx1[qq], qy1[qq],
        )
    if cand.size and np.any(~range_rows):
        sel = np.nonzero(~range_rows)[0]
        qq = rq[sel]
        mask[sel] = vecgeom.segments_contain_points(
            px[qq], py[qq], x1[sel], y1[sel], x2[sel], y2[sel], eps[qq],
        )

    # Pass 5 — per-query phase data: misses replay the traversal exactly
    # as the uncached planner does; hits/refines get the semantic filter
    # accounting and the standard refine/answer construction.
    offs = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(counts, out=offs[1:])
    for j, i in enumerate(pr_idx):
        q = queries[i]
        key = query_key(q)
        rect, verdict, mode, sources, own = pend[j]
        o0, o1 = int(offs[j]), int(offs[j + 1])
        c_ids = cand[o0:o1]
        a_ids = c_ids[mask[o0:o1]]
        nc = int(c_ids.size)
        if verdict == "miss":
            t = miss_rank[j]
            out[i] = _pr_phases(
                key, q, trav.nodes_of(t), node_bytes, c_ids, a_ids,
                int(trav.mbr_tests[t]), costs,
            )
            continue
        cache.served_candidates += nc
        if verdict == "hit":
            # Sequential scan of the packed cached id array: nc
            # result-region touches addressed by packed entry position,
            # zero node visits, zero MBR tests.
            filter_trace = PhaseTrace(
                _counts(entries_scanned=nc),
                np.full(nc, REGION_RESULT, dtype=np.int8),
                own.positions.astype(np.int64),
                np.full(nc, costs.object_id_bytes, dtype=np.int64),
            )
        else:
            # One MBR test per surviving block and candidate, zero node
            # visits: block summaries prune whole runs, then a single
            # pass over the packed (position, id, MBR) payload, all
            # addressed by entry position so runs coalesce into lines.
            P, n_blocks, block_pos = tested[j]
            filter_trace = PhaseTrace(
                _counts(mbr_tests=n_blocks + int(P.size), entries_scanned=nc),
                np.full(n_blocks + P.size, REGION_RESULT, dtype=np.int8),
                np.concatenate([block_pos, P]).astype(np.int64),
                np.concatenate([
                    np.full(n_blocks, _BYTES_PER_BLOCK, dtype=np.int64),
                    np.full(P.size, _BYTES_PER_CANDIDATE, dtype=np.int64),
                ]),
            )
        out[i] = _phases_with_filter(key, q, filter_trace, c_ids, a_ids, costs)
    return out, verdicts  # type: ignore[return-value]


# ----------------------------------------------------------------------
# The scalar semantic twin
# ----------------------------------------------------------------------
def plan_one_semantic(
    query: Query,
    config: SchemeConfig,
    env: Environment,
    cache: SemanticCache,
) -> Tuple[QueryPlan, str]:
    """One query planned semantically with scalar cache replay.

    The per-query reference the differential suite pins the batched and
    columnar semantic paths against: phase data from
    :func:`compute_query_phases_semantic` (single-query call), traces
    replayed line by line through the environment's *live*
    :class:`~repro.sim.cache.CacheSim` objects, steps assembled by the
    same branch structure as ``plan_query``.  Returns the plan plus this
    query's semantic verdict.
    """
    config.validate_for(query)
    phases, verdicts = compute_query_phases_semantic(env, [query], cache)
    qp = phases[0]
    costs = env.dataset.costs
    client, server = env.client_cpu, env.server_cpu
    slot_costs = []
    for side, trace in _query_phase_slots(qp, config, costs):
        cpu = client if side == "client" else server
        sim = client.dcache if side == "client" else server.l1
        if cpu.use_cache_sim:
            geom = CacheGeometry.of(sim, cpu.costs)
            h = m = 0
            for line in trace.lines_for(geom).tolist():
                if sim.access_line(int(line)):
                    h += 1
                else:
                    m += 1
            slot_costs.append(cpu.compute_replayed(trace.counter, h, m))
        else:
            slot_costs.append(cpu.compute(trace.counter))
    return _assemble_plan(query, config, qp, costs, slot_costs), verdicts[0]


def plan_query_semantic(
    query: Query,
    config: SchemeConfig,
    env: Environment,
    cache: SemanticCache,
) -> QueryPlan:
    """The plan half of :func:`plan_one_semantic` (the oracle twin)."""
    return plan_one_semantic(query, config, env, cache)[0]
