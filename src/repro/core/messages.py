"""Message payload construction for client/server communication.

Every work-partitioning scheme exchanges a characteristic set of messages;
their *sizes* drive both transfer time and NIC energy, so they are modeled
explicitly from the byte-size model in :class:`repro.constants.CostModel`:

* a **request** carries the query parameters (and, under insufficient
  memory, the client's memory availability);
* a **candidate-id list** ships filtering output to the server (the message
  the paper singles out as making filter-at-client expensive on energy);
* a **result-id list** suffices when the actual data resides at the client
  ("the server can simply send a list of object ids after refinement instead
  of the data items themselves, thus saving several bytes");
* a **data-item list** ships full segment records when the client lacks them;
* an **extraction shipment** carries data records plus a fresh packed index
  (insufficient-memory scenario).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import DEFAULT_COSTS, CostModel
from repro.spatial.extract import Extraction

__all__ = [
    "Payload",
    "request_payload",
    "request_with_candidates_payload",
    "id_list_payload",
    "data_items_payload",
    "extraction_payload",
]

#: Bytes carrying the client's memory availability in an insufficient-memory
#: request (a 4-byte integer).
_MEMORY_AVAILABILITY_BYTES = 4
#: Bytes of framing in an extraction shipment (counts, extent, tree shape).
_EXTRACTION_HEADER_BYTES = 32


@dataclass(frozen=True)
class Payload:
    """An application-level message payload."""

    nbytes: int
    description: str

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"negative payload size {self.nbytes!r}")


def request_payload(costs: CostModel = DEFAULT_COSTS, with_memory_availability: bool = False) -> Payload:
    """The query request message (client -> server)."""
    n = costs.request_bytes
    if with_memory_availability:
        n += _MEMORY_AVAILABILITY_BYTES
    return Payload(n, "query request")


def request_with_candidates_payload(
    n_candidates: int, costs: CostModel = DEFAULT_COSTS
) -> Payload:
    """Request plus the candidate ids from client-side filtering.

    This is the large transmit of "filtering at client, refinement at
    server": the candidate list rides to the server so it can refine.
    """
    if n_candidates < 0:
        raise ValueError(f"negative candidate count {n_candidates!r}")
    return Payload(
        costs.request_bytes + n_candidates * costs.object_id_bytes,
        f"request + {n_candidates} candidate ids",
    )


def id_list_payload(n_ids: int, costs: CostModel = DEFAULT_COSTS) -> Payload:
    """A bare list of object ids (server -> client when data is local)."""
    if n_ids < 0:
        raise ValueError(f"negative id count {n_ids!r}")
    return Payload(n_ids * costs.object_id_bytes, f"{n_ids} object ids")


def data_items_payload(n_items: int, costs: CostModel = DEFAULT_COSTS) -> Payload:
    """Full segment records (server -> client when data is absent there)."""
    if n_items < 0:
        raise ValueError(f"negative item count {n_items!r}")
    return Payload(n_items * costs.segment_record_bytes, f"{n_items} data items")


def extraction_payload(extraction: Extraction) -> Payload:
    """An insufficient-memory shipment: data records + fresh packed index."""
    return Payload(
        extraction.total_bytes + _EXTRACTION_HEADER_BYTES,
        f"extraction of {extraction.n_entries} items "
        f"({extraction.index_bytes} B index)",
    )
