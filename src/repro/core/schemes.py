"""The work-partitioning taxonomy of Table 1.

Work partitions only at the filtering/refinement boundary (arbitrary-point
migration would ship too much state — paper section 4), giving four schemes
in the adequate-memory scenario, two of which come in data-present /
data-absent variants, plus the two insufficient-memory executions:

=============================  =======================  =====================
Computation                    Index resides            Data resides
=============================  =======================  =====================
*Adequate memory at client*
Fully at client                client + server          client + server
Fully at server                server only              server only
Fully at server                server only              client + server
Filter client, refine server   client + server          client + server
Filter client, refine server   client + server          server only
Filter server, refine client   server only              client + server
*Insufficient memory at client*
Fully at server                server only              server only
Fully at client (cached)       partly client / server   partly client / server
=============================  =======================  =====================

:class:`SchemeConfig` encodes one row; :func:`table1_rows` regenerates the
table (the Table 1 bench prints it); :meth:`SchemeConfig.validate_for`
enforces the paper's legality rules (e.g. NN queries have no phases, so only
the two "fully at" schemes apply to them).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

from repro.core.queries import Query, QueryKind

__all__ = ["Scheme", "SchemeConfig", "ADEQUATE_MEMORY_CONFIGS", "table1_rows"]


class Scheme(Enum):
    """Where the two query phases execute."""

    FULLY_CLIENT = "fully_client"
    FULLY_SERVER = "fully_server"
    FILTER_CLIENT_REFINE_SERVER = "filter_client_refine_server"
    FILTER_SERVER_REFINE_CLIENT = "filter_server_refine_client"

    @property
    def label(self) -> str:
        """Human-readable name matching the paper's figure captions."""
        return {
            Scheme.FULLY_CLIENT: "Fully at the Client",
            Scheme.FULLY_SERVER: "Fully at the Server",
            Scheme.FILTER_CLIENT_REFINE_SERVER: "Filtering at Client, Refinement at Server",
            Scheme.FILTER_SERVER_REFINE_CLIENT: "Filtering at Server, Refinement at Client",
        }[self]


@dataclass(frozen=True)
class SchemeConfig:
    """A scheme plus its data-placement variant.

    ``data_at_client`` selects whether the actual segment records are present
    on the client: when True the server ships bare object ids; when False it
    must ship full data items.  Placement is constrained per scheme (see
    :meth:`validate`).
    """

    scheme: Scheme
    data_at_client: bool = True

    def validate(self) -> None:
        """Raise :class:`ValueError` for combinations outside Table 1."""
        if self.scheme is Scheme.FULLY_CLIENT and not self.data_at_client:
            raise ValueError("fully-at-client requires the data at the client")
        if self.scheme is Scheme.FILTER_SERVER_REFINE_CLIENT and not self.data_at_client:
            raise ValueError(
                "filter-at-server/refine-at-client is only studied with the "
                "data already at the client (the other two schemes cover "
                "shipping filtered items from the server)"
            )

    def validate_for(self, query: Query) -> None:
        """Additionally check the scheme applies to this query type."""
        self.validate()
        if query.kind is QueryKind.NEAREST_NEIGHBOR and self.scheme in (
            Scheme.FILTER_CLIENT_REFINE_SERVER,
            Scheme.FILTER_SERVER_REFINE_CLIENT,
        ):
            raise ValueError(
                "the NN query has no separate filtering and refinement "
                "steps, so phase-boundary partitioning does not apply"
            )

    @property
    def index_at_client(self) -> bool:
        """Whether the scheme needs the index resident on the client."""
        return self.scheme in (
            Scheme.FULLY_CLIENT,
            Scheme.FILTER_CLIENT_REFINE_SERVER,
        )

    @property
    def label(self) -> str:
        """Scheme label plus the data-placement variant."""
        suffix = " (data at client)" if self.data_at_client else " (data at server only)"
        if self.scheme is Scheme.FULLY_CLIENT:
            return self.scheme.label
        return self.scheme.label + suffix


#: Every adequate-memory configuration the paper evaluates, in Table 1 order.
ADEQUATE_MEMORY_CONFIGS: tuple[SchemeConfig, ...] = (
    SchemeConfig(Scheme.FULLY_CLIENT, data_at_client=True),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=False),
    SchemeConfig(Scheme.FULLY_SERVER, data_at_client=True),
    SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=True),
    SchemeConfig(Scheme.FILTER_CLIENT_REFINE_SERVER, data_at_client=False),
    SchemeConfig(Scheme.FILTER_SERVER_REFINE_CLIENT, data_at_client=True),
)


def table1_rows() -> List[dict]:
    """Regenerate Table 1 as structured rows.

    Each row maps the three column headers of the paper's table to strings;
    the Table 1 bench prints them and a test pins the row set.
    """
    rows: List[dict] = []

    def row(scenario: str, computation: str, index: str, data: str) -> dict:
        return {
            "scenario": scenario,
            "computation": computation,
            "index_resides": index,
            "data_resides": data,
        }

    both = "At both Client and Server"
    server = "Only at the Server"
    rows.append(row("Adequate Memory at Client", "Fully at the Client", both, both))
    rows.append(row("Adequate Memory at Client", "Fully at the Server", server, server))
    rows.append(row("Adequate Memory at Client", "Fully at the Server", server, both))
    rows.append(
        row(
            "Adequate Memory at Client",
            "Filtering at Client, Refinement at Server",
            both,
            both,
        )
    )
    rows.append(
        row(
            "Adequate Memory at Client",
            "Filtering at Client, Refinement at Server",
            both,
            server,
        )
    )
    rows.append(
        row(
            "Adequate Memory at Client",
            "Filtering at Server, Refinement at Client",
            server,
            both,
        )
    )
    rows.append(
        row("Insufficient Memory at Client", "Fully at the Server", server, server)
    )
    rows.append(
        row(
            "Insufficient Memory at Client",
            "Fully at the Client",
            "Partly at Client, Fully at Server",
            "Partly at Client, Fully at Server",
        )
    )
    return rows
